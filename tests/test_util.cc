/**
 * @file
 * Tests for RNG determinism/statistics, the stats helpers (including the
 * Poisson block-probability math behind the layout generator example in
 * paper Sec. VI), the thread pool's exception contract, the Status
 * result type and the deadline/degradation-ledger primitives.
 */

#include <atomic>
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "util/deadline.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace surf {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, GeometricSkipMeanMatches)
{
    Rng rng(7);
    const double p = 0.01;
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometricSkip(p));
    // Mean of the geometric (number of failures before success) is (1-p)/p.
    EXPECT_NEAR(total / n, (1 - p) / p, 4.0);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(8);
    for (double lambda : {0.3, 3.0, 80.0}) {
        double total = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            total += static_cast<double>(rng.poisson(lambda));
        EXPECT_NEAR(total / n, lambda, 5 * std::sqrt(lambda / n) + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(9);
    auto sample = rng.sampleWithoutReplacement(50, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::vector<bool> seen(50, false);
    for (uint32_t v : sample) {
        ASSERT_LT(v, 50u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Stats, BinomialEstimate)
{
    const auto est = estimateBinomial(25, 100);
    EXPECT_DOUBLE_EQ(est.p, 0.25);
    EXPECT_NEAR(est.stderr, std::sqrt(0.25 * 0.75 / 100), 1e-12);
}

TEST(Stats, PerRoundRateInvertsCompounding)
{
    const double p_round = 0.001;
    const uint64_t rounds = 50;
    const double p_shot = 1 - std::pow(1 - p_round, rounds);
    EXPECT_NEAR(perRoundRate(p_shot, rounds), p_round, 1e-12);
    EXPECT_EQ(perRoundRate(1.0, 10), 1.0);
    EXPECT_EQ(perRoundRate(0.0, 10), 0.0);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 - 2.0 * x);
    const auto [a, b] = linearFit(xs, ys);
    EXPECT_NEAR(a, 3.0, 1e-9);
    EXPECT_NEAR(b, -2.0, 1e-9);
}

TEST(Stats, PoissonPmfSumsToOne)
{
    const double lambda = 2.5;
    double total = 0;
    for (unsigned k = 0; k < 60; ++k)
        total += poissonPmf(lambda, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Stats, PaperLayoutExample)
{
    // Paper Sec. VI: d=27 code, rho = 0.1Hz/26, T = 25ms.
    // lambda = 2 d^2 rho T ~= 0.14; with Delta_d = 4 and D = 4,
    // p_block = 1 - p(0) - p(1) ~= 0.0089 < 0.01.
    const double rho = 0.1 / 26.0;
    const double T = 25e-3;
    const int d = 27;
    const double lambda = 2.0 * d * d * rho * T;
    EXPECT_NEAR(lambda, 0.14, 0.005);
    const double p_block = poissonTail(lambda, 1);
    EXPECT_LT(p_block, 0.01);
    EXPECT_NEAR(p_block, 0.0089, 0.0015);
}

TEST(ThreadPool, RethrowsFirstTaskException)
{
    // Regression: a throwing task used to escape the worker thread and
    // terminate the process. The pool must capture the first exception,
    // abandon the remaining tasks, and rethrow on the calling thread.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(64, [&](size_t t, size_t) {
            if (t == 7)
                throw std::runtime_error("task 7 failed");
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "parallelFor swallowed the task exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 7 failed");
    }
    // Unclaimed tasks are abandoned once the exception is recorded.
    EXPECT_LT(ran.load(), 64);
}

TEST(ThreadPool, UsableAfterTaskException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     8, [&](size_t, size_t) { throw StatusError(
                         Status::dataLoss("stream ended")); }),
                 StatusError);
    // The pool must come back clean: later jobs run all their tasks and
    // report no stale error.
    std::atomic<int> ran{0};
    pool.parallelFor(32, [&](size_t, size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, InlineExecutionPropagatesException)
{
    ThreadPool pool(1); // caller-only pool: tasks run inline
    EXPECT_THROW(pool.parallelFor(
                     4, [&](size_t, size_t) {
                         throw std::logic_error("inline");
                     }),
                 std::logic_error);
}

TEST(Status, CarriesCodeAndMessage)
{
    const Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.str(), "OK");
    const Status bad = Status::invalidArgument("d must be >= 2");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(bad.str(), "INVALID_ARGUMENT: d must be >= 2");
}

TEST(Status, StatusOrRoundTrips)
{
    StatusOr<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 42);
    StatusOr<int> bad(Status::dataLoss("truncated"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
    EXPECT_THROW(bad.value(), StatusError);
}

TEST(Deadline, VirtualClockIsDeterministic)
{
    DecodeDeadline dl;
    dl.configure(1000, /*virtualClock=*/true);
    EXPECT_TRUE(dl.armed());
    dl.beginStage(500); // stall below budget
    EXPECT_EQ(dl.stageElapsedNs(), 500u);
    EXPECT_FALSE(dl.expired());
    dl.beginStage(1500); // stall past budget
    EXPECT_EQ(dl.stageElapsedNs(), 1500u);
    EXPECT_TRUE(dl.expired());
}

TEST(Deadline, DisarmedNeverExpires)
{
    DecodeDeadline dl; // softNs = 0
    dl.beginStage(uint64_t{1} << 40);
    EXPECT_FALSE(dl.armed());
    EXPECT_FALSE(dl.expired());
}

TEST(Deadline, LedgerRecordsLadderTrips)
{
    DegradationLedger led;
    EXPECT_TRUE(led.empty());
    ShotLadderTrace trace;
    trace.reset();
    trace.note(kStageBlossom, 2000, /*expired=*/true);
    trace.note(kStageRows, 700, /*expired=*/false);
    trace.answer = kStageRows;
    led.record(trace);
    EXPECT_EQ(led.ladderDecodes, 1u);
    EXPECT_EQ(led.degradedDecodes, 1u);
    EXPECT_EQ(led.stageAttempts[kStageBlossom], 1u);
    EXPECT_EQ(led.stageTimeouts[kStageBlossom], 1u);
    EXPECT_EQ(led.stageCompleted[kStageRows], 1u);
    EXPECT_EQ(led.stageLatency[kStageRows].samples, 1u);
    EXPECT_EQ(led.stageLatency[kStageRows].maxNs, 700u);

    DegradationLedger other;
    other.record(trace);
    led.merge(other);
    EXPECT_EQ(led.ladderDecodes, 2u);
    EXPECT_EQ(led.stageAttempts[kStageRows], 2u);
    EXPECT_FALSE(led.summary().empty());
}

TEST(Deadline, HistogramQuantiles)
{
    LatencyHistogram h;
    for (uint64_t ns : {100u, 200u, 400u, 100000u})
        h.add(ns);
    EXPECT_EQ(h.samples, 4u);
    EXPECT_EQ(h.maxNs, 100000u);
    EXPECT_GT(h.meanNs(), 0.0);
    // The p50 upper bound must not be dragged up to the outlier bucket.
    EXPECT_LE(h.quantileUpperBoundNs(0.5), 512u);
    EXPECT_GE(h.quantileUpperBoundNs(0.99), 65536u);
}

} // namespace
} // namespace surf
