/**
 * @file
 * Tests for RNG determinism/statistics and the stats helpers, including
 * the Poisson block-probability math behind the layout generator example
 * in paper Sec. VI.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/stats.hh"

namespace surf {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, GeometricSkipMeanMatches)
{
    Rng rng(7);
    const double p = 0.01;
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometricSkip(p));
    // Mean of the geometric (number of failures before success) is (1-p)/p.
    EXPECT_NEAR(total / n, (1 - p) / p, 4.0);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(8);
    for (double lambda : {0.3, 3.0, 80.0}) {
        double total = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            total += static_cast<double>(rng.poisson(lambda));
        EXPECT_NEAR(total / n, lambda, 5 * std::sqrt(lambda / n) + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(9);
    auto sample = rng.sampleWithoutReplacement(50, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::vector<bool> seen(50, false);
    for (uint32_t v : sample) {
        ASSERT_LT(v, 50u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Stats, BinomialEstimate)
{
    const auto est = estimateBinomial(25, 100);
    EXPECT_DOUBLE_EQ(est.p, 0.25);
    EXPECT_NEAR(est.stderr, std::sqrt(0.25 * 0.75 / 100), 1e-12);
}

TEST(Stats, PerRoundRateInvertsCompounding)
{
    const double p_round = 0.001;
    const uint64_t rounds = 50;
    const double p_shot = 1 - std::pow(1 - p_round, rounds);
    EXPECT_NEAR(perRoundRate(p_shot, rounds), p_round, 1e-12);
    EXPECT_EQ(perRoundRate(1.0, 10), 1.0);
    EXPECT_EQ(perRoundRate(0.0, 10), 0.0);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 - 2.0 * x);
    const auto [a, b] = linearFit(xs, ys);
    EXPECT_NEAR(a, 3.0, 1e-9);
    EXPECT_NEAR(b, -2.0, 1e-9);
}

TEST(Stats, PoissonPmfSumsToOne)
{
    const double lambda = 2.5;
    double total = 0;
    for (unsigned k = 0; k < 60; ++k)
        total += poissonPmf(lambda, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Stats, PaperLayoutExample)
{
    // Paper Sec. VI: d=27 code, rho = 0.1Hz/26, T = 25ms.
    // lambda = 2 d^2 rho T ~= 0.14; with Delta_d = 4 and D = 4,
    // p_block = 1 - p(0) - p(1) ~= 0.0089 < 0.01.
    const double rho = 0.1 / 26.0;
    const double T = 25e-3;
    const int d = 27;
    const double lambda = 2.0 * d * d * rho * T;
    EXPECT_NEAR(lambda, 0.14, 0.005);
    const double p_block = poissonTail(lambda, 1);
    EXPECT_LT(p_block, 0.01);
    EXPECT_NEAR(p_block, 0.0089, 0.0015);
}

} // namespace
} // namespace surf
