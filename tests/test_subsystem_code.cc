/**
 * @file
 * Tests for the algebraic subsystem-code layer: Theorem-1 validation,
 * Definition-4 measurement-set validation, and the exact coset oracle.
 */

#include <gtest/gtest.h>

#include "pauli/coset.hh"
#include "pauli/subsystem_code.hh"

namespace surf {
namespace {

/**
 * The [[4,1,2]] surface code (smallest planar code, k=1): qubits indexed
 * as the 2x2 rotated patch (1,1),(1,3),(3,1),(3,3).
 */
SubsystemCode
fourQubitCode()
{
    SubsystemCode code(4);
    code.addStabilizer(PauliString::fromString("XXXX"));
    code.addStabilizer(PauliString::fromString("ZIZI"));
    code.addStabilizer(PauliString::fromString("IZIZ"));
    code.addLogicalPair(PauliString::fromString("XIXI"),
                        PauliString::fromString("ZZII"));
    return code;
}

TEST(SubsystemCode, FourQubitCodeValidates)
{
    const auto code = fourQubitCode();
    const auto r = code.validate();
    EXPECT_TRUE(r.ok) << r.reason;
}

TEST(SubsystemCode, DetectsNonCommutingStabilizers)
{
    SubsystemCode code(2);
    code.addStabilizer(PauliString::fromString("XI"));
    code.addLogicalPair(PauliString::fromString("IX"),
                        PauliString::fromString("IZ"));
    EXPECT_TRUE(code.validate().ok);

    SubsystemCode bad(2);
    bad.addStabilizer(PauliString::fromString("XX"));
    bad.addLogicalPair(PauliString::fromString("XI"),
                       PauliString::fromString("ZI"));
    const auto r = bad.validate();
    EXPECT_FALSE(r.ok);
}

TEST(SubsystemCode, DetectsDependentGenerators)
{
    SubsystemCode code(3);
    code.addStabilizer(PauliString::fromString("ZZI"));
    code.addStabilizer(PauliString::fromString("IZZ"));
    // The product of the two above: dependent.
    code.addStabilizer(PauliString::fromString("ZIZ"));
    // Make counting work: n-k-l = 3 requires k=l=0... with k=0 there is no
    // logical pair; validation must flag dependence (or counting).
    const auto r = code.validate();
    EXPECT_FALSE(r.ok);
}

TEST(SubsystemCode, DetectsBadLogicalPair)
{
    SubsystemCode code(2);
    code.addStabilizer(PauliString::fromString("ZZ"));
    // XI commutes with ZI? No: XI vs ZI anti-commute -- but the pair
    // below COMMUTES with each other, which is the failure mode tested.
    code.addLogicalPair(PauliString::fromString("XX"),
                        PauliString::fromString("XX"));
    const auto r = code.validate();
    EXPECT_FALSE(r.ok);
}

TEST(SubsystemCode, BaconShorStyleGaugeCode)
{
    // A 2x2 Bacon-Shor-like subsystem code: 4 qubits, 1 logical, 1 gauge.
    // Stabilizers: XXXX, ZZZZ. Gauge pair: XXII / ZIZI.
    SubsystemCode code(4);
    code.addStabilizer(PauliString::fromString("XXXX"));
    code.addStabilizer(PauliString::fromString("ZZZZ"));
    code.addLogicalPair(PauliString::fromString("XIXI"),
                        PauliString::fromString("ZZII"));
    code.addGaugePair(PauliString::fromString("XXII"),
                      PauliString::fromString("ZIZI"));
    const auto r = code.validate();
    EXPECT_TRUE(r.ok) << r.reason;

    // Measurement set: measure the gauge operators; stabilizers inferred.
    const auto meas = code.validateMeasurementSet(
        {},
        {PauliString::fromString("XXII"), PauliString::fromString("IIXX"),
         PauliString::fromString("ZIZI"), PauliString::fromString("IZIZ")});
    EXPECT_TRUE(meas.ok) << meas.reason;
}

TEST(SubsystemCode, MeasurementSetRejectsLogicalLeak)
{
    const auto code = fourQubitCode();
    // Measuring the logical Z would destroy the superposition: Definition 4
    // condition (2) must reject it (it is not in the gauge group).
    const auto r = code.validateMeasurementSet(
        {}, {PauliString::fromString("ZZII")});
    EXPECT_FALSE(r.ok);
}

TEST(SubsystemCode, MeasurementSetRequiresRecoverability)
{
    const auto code = fourQubitCode();
    // Measuring only one stabilizer leaves the others unrecoverable.
    const auto r = code.validateMeasurementSet(
        {PauliString::fromString("XXXX")}, {});
    EXPECT_FALSE(r.ok);
    // Measuring all generators passes.
    const auto ok = code.validateMeasurementSet(
        {PauliString::fromString("XXXX"), PauliString::fromString("ZIZI"),
         PauliString::fromString("IZIZ")},
        {});
    EXPECT_TRUE(ok.ok) << ok.reason;
}

TEST(SubsystemCode, GroupMembership)
{
    const auto code = fourQubitCode();
    EXPECT_TRUE(code.inStabilizerGroup(PauliString::fromString("ZZZZ")));
    EXPECT_FALSE(code.inStabilizerGroup(PauliString::fromString("ZIIZ")));
    EXPECT_TRUE(code.inCentralizerOfStabilizers(
        PauliString::fromString("ZIIZ")));
    EXPECT_FALSE(code.inCentralizerOfStabilizers(
        PauliString::fromString("ZIII")));
}

TEST(SubsystemCode, ExactCssDistanceFourQubit)
{
    const auto code = fourQubitCode();
    EXPECT_EQ(code.distanceExactCss(PauliType::X), 2u);
    EXPECT_EQ(code.distanceExactCss(PauliType::Z), 2u);
}

TEST(CosetOracle, MatchesHandComputedCase)
{
    // Basis {1100, 0110}, offset 1111: coset {1111, 0011, 1001, 0101}.
    auto mk = [](std::initializer_list<int> bits) {
        BitVec v(bits.size());
        size_t i = 0;
        for (int b : bits)
            v.set(i++, b != 0);
        return v;
    };
    const size_t w = minCosetWeight({mk({1, 1, 0, 0}), mk({0, 1, 1, 0})},
                                    mk({1, 1, 1, 1}));
    EXPECT_EQ(w, 2u);
}

TEST(CosetOracle, HandlesDependentBasis)
{
    auto mk = [](std::initializer_list<int> bits) {
        BitVec v(bits.size());
        size_t i = 0;
        for (int b : bits)
            v.set(i++, b != 0);
        return v;
    };
    // Three vectors with rank 2.
    const size_t w = minCosetWeight(
        {mk({1, 1, 0}), mk({0, 1, 1}), mk({1, 0, 1})}, mk({1, 1, 1}));
    EXPECT_EQ(w, 1u);
}

} // namespace
} // namespace surf
