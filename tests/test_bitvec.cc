/**
 * @file
 * Unit tests for the GF(2) bit vector.
 */

#include <gtest/gtest.h>

#include "pauli/bitvec.hh"
#include "util/rng.hh"

namespace surf {
namespace {

TEST(BitVec, StartsZeroed)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_EQ(v.lowestSetBit(), 130u);
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(100);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(99, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.flip(63);
    EXPECT_FALSE(v.get(63));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(0, false);
    EXPECT_FALSE(v.get(0));
    EXPECT_EQ(v.lowestSetBit(), 64u);
}

TEST(BitVec, XorIsSelfInverse)
{
    Rng rng(7);
    BitVec a(200), b(200);
    for (size_t i = 0; i < 200; ++i) {
        a.set(i, rng.bernoulli(0.5));
        b.set(i, rng.bernoulli(0.5));
    }
    BitVec c = a;
    c ^= b;
    c ^= b;
    EXPECT_EQ(c, a);
}

TEST(BitVec, AndParityMatchesNaive)
{
    Rng rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        BitVec a(150), b(150);
        bool naive = false;
        for (size_t i = 0; i < 150; ++i) {
            const bool ai = rng.bernoulli(0.3);
            const bool bi = rng.bernoulli(0.3);
            a.set(i, ai);
            b.set(i, bi);
            naive ^= (ai && bi);
        }
        EXPECT_EQ(a.andParity(b), naive);
    }
}

TEST(BitVec, OnesPositions)
{
    BitVec v(70);
    v.set(3, true);
    v.set(65, true);
    auto ones = v.onesPositions();
    ASSERT_EQ(ones.size(), 2u);
    EXPECT_EQ(ones[0], 3u);
    EXPECT_EQ(ones[1], 65u);
}

TEST(BitVec, ForEachSetBitMatchesOnesPositions)
{
    Rng rng(99);
    for (size_t nbits : {1u, 63u, 64u, 65u, 300u}) {
        BitVec v(nbits);
        for (size_t i = 0; i < nbits; ++i)
            v.set(i, rng.bernoulli(0.2));
        std::vector<size_t> seen;
        v.forEachSetBit([&](size_t i) { seen.push_back(i); });
        EXPECT_EQ(seen, v.onesPositions()) << nbits << " bits";
        EXPECT_EQ(seen.size(), v.popcount());
    }
    BitVec empty(128);
    empty.forEachSetBit([](size_t) { FAIL() << "no bits are set"; });
}

TEST(BitVec, ClearResets)
{
    BitVec v(64);
    v.set(10, true);
    v.clear();
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.size(), 64u);
}

TEST(BitVec, StrRendering)
{
    BitVec v(5);
    v.set(1, true);
    v.set(4, true);
    EXPECT_EQ(v.str(), "01001");
}

} // namespace
} // namespace surf
