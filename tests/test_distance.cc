/**
 * @file
 * Distance tests: the graph shortest-path distance must equal both the
 * designed distance of pristine patches and the exact GF(2) coset oracle.
 */

#include <gtest/gtest.h>

#include "lattice/convert.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"

namespace surf {
namespace {

class DistanceParam : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DistanceParam, GraphMatchesDesign)
{
    const auto [dx, dz] = GetParam();
    const CodePatch p = rectangularPatch(dx, dz);
    EXPECT_EQ(graphDistance(p, PauliType::X).distance,
              static_cast<size_t>(dx));
    EXPECT_EQ(graphDistance(p, PauliType::Z).distance,
              static_cast<size_t>(dz));
    EXPECT_EQ(codeDistance(p), static_cast<size_t>(std::min(dx, dz)));
}

TEST_P(DistanceParam, GraphMatchesExactOracle)
{
    const auto [dx, dz] = GetParam();
    if (dx * dz > 30)
        GTEST_SKIP() << "oracle too large";
    const CodePatch p = rectangularPatch(dx, dz);
    EXPECT_EQ(graphDistance(p, PauliType::X).distance,
              exactDistance(p, PauliType::X));
    EXPECT_EQ(graphDistance(p, PauliType::Z).distance,
              exactDistance(p, PauliType::Z));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistanceParam,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 3},
                                           std::pair{5, 5}, std::pair{3, 5},
                                           std::pair{5, 3}, std::pair{4, 4},
                                           std::pair{9, 9}, std::pair{13, 13},
                                           std::pair{21, 21}));

TEST(Distance, PathIsValidLogicalOperator)
{
    const CodePatch p = rectangularPatch(5, 5);
    const auto rz = graphDistance(p, PauliType::Z);
    ASSERT_EQ(rz.distance, 5u);
    ASSERT_EQ(rz.path.size(), 5u);
    // The path must commute with every X generator (even overlap).
    for (const auto &g : p.stabilizerGenerators()) {
        if (g.type != PauliType::X)
            continue;
        EXPECT_FALSE(supportsAnticommute(rz.path, g.support));
    }
}

TEST(Distance, BareLogicalRepEqualsPathWithoutGauges)
{
    const CodePatch p = rectangularPatch(5, 5);
    const auto rep = bareLogicalRep(p, PauliType::Z);
    EXPECT_EQ(rep.size(), 5u);
}

TEST(Distance, RefreshLogicalsKeepsValidity)
{
    CodePatch p = rectangularPatch(5, 7);
    refreshLogicals(p);
    const auto r = p.validate();
    EXPECT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(p.logicalX().size(), 5u);
    EXPECT_EQ(p.logicalZ().size(), 7u);
}

} // namespace
} // namespace surf
