/**
 * @file
 * Tests for the defect models and the baseline strategy layer: region
 * geometry matches the paper's burst model, event sampling follows the
 * configured rates, detector imprecision behaves statistically, and the
 * strategies exhibit their characteristic behaviors (fig. 1).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/strategies.hh"
#include "defects/defect_sampler.hh"
#include "defects/detector_model.hh"
#include "lattice/rotated.hh"

namespace surf {
namespace {

TEST(DefectSampler, RegionMatchesPaperScale)
{
    // Diameter 4 around an interior point: ~25 sites (paper: 24 affected
    // qubits + the struck one).
    const auto sites = DefectSampler::regionSites({10, 10}, 4);
    EXPECT_GE(sites.size(), 20u);
    EXPECT_LE(sites.size(), 27u);
    for (const Coord &c : sites) {
        EXPECT_LE(std::abs(c.x - 10), 3);
        EXPECT_LE(std::abs(c.y - 10), 3);
        EXPECT_TRUE(c.isDataSite() || c.isCheckSite());
    }
}

TEST(DefectSampler, EventRateMatchesModel)
{
    DefectModelParams params;
    params.eventRatePerQubitSec *= 1e4; // speed the test up
    DefectSampler sampler(params, 5);
    const CodePatch p = squarePatch(9);
    const uint64_t cycles = 2000000;
    const auto events = sampler.sampleEvents(p, cycles);
    const double expected = params.eventRatePerQubitCycle() *
                            static_cast<double>(p.numPhysicalQubits()) *
                            static_cast<double>(cycles);
    EXPECT_GT(expected, 5.0);
    EXPECT_NEAR(static_cast<double>(events.size()), expected,
                4 * std::sqrt(expected) + 2);
    for (const auto &ev : events)
        EXPECT_EQ(ev.endCycle - ev.startCycle, params.durationCycles());
}

TEST(DefectSampler, ActiveSitesWindowing)
{
    DefectModelParams params;
    DefectSampler sampler(params, 1);
    std::vector<DefectEvent> events;
    DefectEvent ev;
    ev.startCycle = 100;
    ev.endCycle = 200;
    ev.sites = DefectSampler::regionSites({5, 5}, 2);
    events.push_back(ev);
    EXPECT_TRUE(DefectSampler::activeSites(events, 50).empty());
    EXPECT_EQ(DefectSampler::activeSites(events, 150).size(),
              ev.sites.size());
    EXPECT_TRUE(DefectSampler::activeSites(events, 200).empty());
}

TEST(DefectSampler, StaticFaultsAreDistinctQubits)
{
    DefectSampler sampler(DefectModelParams{}, 3);
    const CodePatch p = squarePatch(7);
    const auto faults = sampler.sampleStaticFaults(p, 12);
    EXPECT_EQ(faults.size(), 12u);
}

TEST(DetectorModel, PreciseDetectionIsIdentity)
{
    DetectorModel m; // defaults: no errors
    Rng rng(2);
    const CodePatch p = squarePatch(5);
    const std::set<Coord> truth{{3, 3}, {4, 4}};
    EXPECT_EQ(m.observe(truth, p, rng), truth);
}

TEST(DetectorModel, FalseNegativesDropSites)
{
    DetectorModel m;
    m.falseNegative = 1.0;
    Rng rng(2);
    const CodePatch p = squarePatch(5);
    EXPECT_TRUE(m.observe({{3, 3}}, p, rng).empty());
}

TEST(DetectorModel, FalsePositivesAddSites)
{
    DetectorModel m;
    m.falsePositive = 0.5;
    Rng rng(2);
    const CodePatch p = squarePatch(5);
    const auto obs = m.observe({}, p, rng);
    EXPECT_GT(obs.size(), 10u); // half of ~49+24 sites flagged
}

TEST(Strategies, NamesAndSchemes)
{
    EXPECT_STREQ(strategyName(Strategy::SurfDeformer), "Surf-Deformer");
    EXPECT_EQ(schemeOf(Strategy::Q3deRevised), InterspaceScheme::Q3deRevised);
    EXPECT_EQ(schemeOf(Strategy::SurfDeformer),
              InterspaceScheme::SurfDeformer);
}

TEST(Strategies, CharacteristicBehaviors)
{
    const auto sites = DefectSampler::regionSites({8, 8}, 3);
    const int d = 9;

    const auto ls = applyStrategy(Strategy::LatticeSurgery, d, 4, sites);
    EXPECT_EQ(ls.residualDefects.size(), sites.size());
    EXPECT_EQ(ls.grownLayers, 0);

    const auto ascs = applyStrategy(Strategy::Ascs, d, 4, sites);
    EXPECT_TRUE(ascs.residualDefects.empty());
    EXPECT_LT(ascs.minDist(), static_cast<size_t>(d)); // lost distance
    EXPECT_EQ(ascs.grownLayers, 0);

    const auto q3 = applyStrategy(Strategy::Q3de, d, 4, sites);
    EXPECT_FALSE(q3.residualDefects.empty());
    EXPECT_EQ(q3.grownLayers, 2 * d); // fixed doubling
    EXPECT_EQ(q3.minDist(), static_cast<size_t>(2 * d));

    const auto sd = applyStrategy(Strategy::SurfDeformer, d, 4, sites);
    EXPECT_TRUE(sd.residualDefects.empty());
    EXPECT_GE(sd.minDist(), static_cast<size_t>(d)); // restored
    EXPECT_GT(sd.grownLayers, 0);
    EXPECT_LT(sd.patch.numData(), q3.patch.numData()); // adaptive < fixed
}

TEST(Strategies, CheckedEntryRejectsMalformedInput)
{
    // The checked entry turns every abort-on-malformed shape into an
    // INVALID_ARGUMENT: unknown strategy values, out-of-range distances,
    // negative growth budgets. Well-formed input matches the legacy
    // entry exactly.
    EXPECT_EQ(applyStrategyChecked(static_cast<Strategy>(200), 5, 2, {})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(applyStrategyChecked(Strategy::SurfDeformer, 1, 2, {})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(applyStrategyChecked(Strategy::SurfDeformer, 1024, 2, {})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(applyStrategyChecked(Strategy::SurfDeformer, 5, -1, {})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    const auto ok =
        applyStrategyChecked(Strategy::SurfDeformer, 5, 2, {Coord{5, 5}});
    ASSERT_TRUE(ok.ok());
    const auto legacy =
        applyStrategy(Strategy::SurfDeformer, 5, 2, {Coord{5, 5}});
    EXPECT_EQ(ok->distX, legacy.distX);
    EXPECT_EQ(ok->distZ, legacy.distZ);
    EXPECT_EQ(ok->alive, legacy.alive);
}

TEST(DefectSampler, CheckedStaticFaultsRejectsBadCounts)
{
    DefectSampler sampler(DefectModelParams{}, 11);
    const CodePatch p = squarePatch(3);
    EXPECT_EQ(sampler.sampleStaticFaultsChecked(p, -1).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(sampler.sampleStaticFaultsChecked(p, 100000).status().code(),
              StatusCode::kInvalidArgument);
    const auto ok = sampler.sampleStaticFaultsChecked(p, 3);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok->size(), 3u);
}

TEST(Strategies, SurfDeformerBeatsAscsOnDistance)
{
    // Across several random bursts, SD's restored distance never falls
    // below ASC-S's remaining distance.
    for (int s = 0; s < 6; ++s) {
        DefectSampler sampler(DefectModelParams{}, 100 + s);
        const CodePatch ref = squarePatch(9);
        const auto faults = sampler.sampleStaticFaults(ref, 6);
        const auto a = applyStrategy(Strategy::Ascs, 9, 4, faults);
        const auto d = applyStrategy(Strategy::SurfDeformer, 9, 4, faults);
        EXPECT_GE(d.minDist(), a.minDist()) << "seed " << s;
    }
}

} // namespace
} // namespace surf
