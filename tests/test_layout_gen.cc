/**
 * @file
 * Tests for the layout generator (paper Sec. VI): the Poisson block
 * probability, the Delta_d selection rule reproducing the paper's worked
 * example, and physical-qubit accounting across inter-space schemes.
 */

#include <gtest/gtest.h>

#include "core/layout_gen.hh"

namespace surf {
namespace {

TEST(LayoutGen, PaperWorkedExample)
{
    // d = 27, rho = 0.1/26 Hz, T = 25 ms, D = 4 => lambda ~= 0.14,
    // Delta_d = 4 gives p_block ~= 0.0089 < 0.01 (paper Sec. VI).
    const DefectModelParams model; // defaults are the paper's numbers
    LayoutGenerator gen(model);
    EXPECT_NEAR(model.lambdaForPatch(27), 0.14, 0.005);
    EXPECT_EQ(gen.chooseDeltaD(27, 0.01), 4);
    EXPECT_NEAR(gen.blockProbability(27, 4), 0.0089, 0.0015);
    EXPECT_GT(gen.blockProbability(27, 3), 0.01);
}

TEST(LayoutGen, DeltaDGrowsWithDistance)
{
    LayoutGenerator gen{DefectModelParams{}};
    // Larger patches catch more cosmic rays, so need more headroom.
    EXPECT_LE(gen.chooseDeltaD(9), gen.chooseDeltaD(27));
    EXPECT_LE(gen.chooseDeltaD(27), gen.chooseDeltaD(81));
}

TEST(LayoutGen, BlockProbabilityMonotonicInDeltaD)
{
    LayoutGenerator gen{DefectModelParams{}};
    double prev = 1.0;
    for (int delta = 0; delta <= 16; delta += 4) {
        const double p = gen.blockProbability(27, delta);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(LayoutGen, DurationCyclesMatchesPaper)
{
    const DefectModelParams model;
    // 25 ms at 1 us per cycle = 25,000 QEC cycles (paper Sec. VII-A).
    EXPECT_EQ(model.durationCycles(), 25000u);
}

TEST(LayoutGen, SchemeInterspaces)
{
    EXPECT_EQ(LayoutGenerator::interspace(19, 4,
                                          InterspaceScheme::LatticeSurgery),
              19);
    EXPECT_EQ(LayoutGenerator::interspace(19, 4, InterspaceScheme::Q3de), 19);
    EXPECT_EQ(LayoutGenerator::interspace(19, 4,
                                          InterspaceScheme::Q3deRevised),
              38);
    EXPECT_EQ(LayoutGenerator::interspace(19, 4,
                                          InterspaceScheme::SurfDeformer),
              23);
}

TEST(LayoutGen, PlanQubitCounting)
{
    LayoutGenerator gen{DefectModelParams{}};
    const auto ls = gen.plan(400, 19, InterspaceScheme::LatticeSurgery);
    const auto sd = gen.plan(400, 19, InterspaceScheme::SurfDeformer);
    const auto q3r = gen.plan(400, 19, InterspaceScheme::Q3deRevised);
    EXPECT_EQ(ls.gridCols, 20);
    EXPECT_EQ(ls.gridRows, 20);
    // Surf-Deformer costs ~20% more than the plain LS layout at equal d
    // (paper Sec. VII-B observation 3)...
    const double sd_over_ls = static_cast<double>(sd.physicalQubits) /
                              static_cast<double>(ls.physicalQubits);
    EXPECT_GT(sd_over_ls, 1.05);
    EXPECT_LT(sd_over_ls, 1.45);
    // ...while the revised Q3DE layout costs ~2.25x (paper Sec. VI).
    const double q3r_over_ls = static_cast<double>(q3r.physicalQubits) /
                               static_cast<double>(ls.physicalQubits);
    EXPECT_GT(q3r_over_ls, 1.9);
    EXPECT_LT(q3r_over_ls, 2.6);
}

TEST(LayoutGen, PlanReportsAchievedBlockProbability)
{
    LayoutGenerator gen{DefectModelParams{}};
    const auto plan = gen.plan(100, 27, InterspaceScheme::SurfDeformer, 0.01);
    EXPECT_EQ(plan.deltaD, 4);
    EXPECT_LE(plan.pBlock, 0.01);
}

TEST(LayoutGen, CheckedEntriesRejectBadInputAsStatus)
{
    LayoutGenerator gen{DefectModelParams{}};

    // Agreement with the legacy entry on valid input.
    StatusOr<int> delta = gen.chooseDeltaDChecked(27, 0.01);
    ASSERT_TRUE(delta.ok());
    EXPECT_EQ(*delta, gen.chooseDeltaD(27, 0.01));
    StatusOr<LayoutPlan> plan =
        gen.planChecked(100, 27, InterspaceScheme::SurfDeformer, 0.01);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->physicalQubits,
              gen.plan(100, 27, InterspaceScheme::SurfDeformer, 0.01)
                  .physicalQubits);

    // Out-of-range parameters come back as INVALID_ARGUMENT, not exit().
    EXPECT_EQ(gen.chooseDeltaDChecked(2, 0.01).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(gen.chooseDeltaDChecked(27, 0.0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(gen.chooseDeltaDChecked(27, -1.0).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(gen.planChecked(0, 27, InterspaceScheme::SurfDeformer)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(gen.planChecked(100, 1, InterspaceScheme::LatticeSurgery)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument);

    // An unsatisfiable alpha_block (defect rate swamping the patch) is a
    // diagnosable Status too — the Delta_d search is user-driven.
    DefectModelParams hot;
    hot.eventRatePerQubitSec = 1e9;
    LayoutGenerator swamped{hot};
    StatusOr<int> none = swamped.chooseDeltaDChecked(27, 1e-12);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
}

} // namespace
} // namespace surf
