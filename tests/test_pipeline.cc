/**
 * @file
 * Tests for the batched sampling + parallel decoding pipeline: thread-pool
 * correctness, thread-count invariance of runMemoryExperiment, agreement
 * of the batched sparse syndrome transpose with the per-shot scan, frame
 * simulator buffer-reuse determinism, and MWPM/union-find agreement on
 * low-weight syndromes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "decode/memory_experiment.hh"
#include "decode/mwpm.hh"
#include "decode/union_find.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace surf {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (size_t workers : {1u, 2u, 5u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.size(), workers);
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(hits.size(), [&](size_t t, size_t w) {
            ASSERT_LT(w, pool.size());
            ++hits[t];
        });
        for (const auto &h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    std::atomic<uint64_t> total{0};
    for (int job = 0; job < 50; ++job)
        pool.parallelFor(11, [&](size_t t, size_t) { total += t; });
    EXPECT_EQ(total, 50u * (11u * 10u / 2u));
}

TEST(FrameSim, ResetRunReproducesFreshSimulator)
{
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 5e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(3), spec, noise);

    // One reused simulator stepping through seeds must equal a fresh
    // simulator per seed, bit for bit.
    FrameSimulator reused(built.circuit, 512, 100);
    for (uint64_t seed : {100u, 101u, 777u}) {
        if (seed != 100) {
            reused.reset(seed);
            reused.run();
        }
        FrameSimulator fresh(built.circuit, 512, seed);
        ASSERT_EQ(reused.numDetectors(), fresh.numDetectors());
        for (size_t d = 0; d < fresh.numDetectors(); ++d)
            ASSERT_EQ(reused.detectorBits(d), fresh.detectorBits(d))
                << "seed " << seed << " detector " << d;
        ASSERT_EQ(reused.observableBits(0), fresh.observableBits(0));
    }
}

TEST(FrameSim, SparseFiredDetectorsMatchesPerShotScan)
{
    // Random circuits: random Cliffords + noise + detectors over random
    // measurement subsets, exercising irregular detector counts.
    Rng rng(42);
    for (int trial = 0; trial < 8; ++trial) {
        Circuit ckt;
        const uint32_t nq = 4 + static_cast<uint32_t>(rng.below(5));
        std::vector<uint32_t> all;
        for (uint32_t q = 0; q < nq; ++q)
            all.push_back(q);
        ckt.append(Op::ResetZ, all);
        size_t n_meas = 0;
        for (int layer = 0; layer < 6; ++layer) {
            ckt.append(Op::H, {static_cast<uint32_t>(rng.below(nq))});
            const uint32_t a = static_cast<uint32_t>(rng.below(nq));
            uint32_t b = static_cast<uint32_t>(rng.below(nq));
            if (b == a)
                b = (b + 1) % nq;
            ckt.append(Op::CX, {a, b});
            ckt.append(Op::XError, all, 0.05);
            ckt.append(Op::ZError, all, 0.03);
            ckt.append(Op::MeasureZ, {a});
            ++n_meas;
            if (n_meas >= 2 && rng.bernoulli(0.7)) {
                const auto m1 = static_cast<uint32_t>(rng.below(n_meas));
                const auto m2 = static_cast<uint32_t>(rng.below(n_meas));
                ckt.appendDetector(m1 == m2 ? std::vector<uint32_t>{m1}
                                            : std::vector<uint32_t>{m1, m2},
                                   PauliType::Z);
            }
        }

        // 130 shots spans multiple 64-shot words plus a partial tail word.
        FrameSimulator sim(ckt, 130, 7 + static_cast<uint64_t>(trial));
        const SparseSyndromes sparse = sim.sparseFiredDetectors();
        ASSERT_EQ(sparse.shots(), sim.shots());
        for (size_t s = 0; s < sim.shots(); ++s)
            ASSERT_EQ(sparse.shotVector(s), sim.firedDetectors(s))
                << "trial " << trial << " shot " << s;
    }
}

TEST(FrameSim, SparseFiredDetectorsMatchesOnMemoryCircuit)
{
    MemorySpec spec;
    spec.rounds = 4;
    NoiseParams noise;
    noise.p = 4e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(5), spec, noise);
    FrameSimulator sim(built.circuit, 1000, 99);
    SparseSyndromes sparse;
    sim.sparseFiredDetectors(sparse);
    for (size_t s = 0; s < sim.shots(); ++s)
        ASSERT_EQ(sparse.shotVector(s), sim.firedDetectors(s)) << "shot " << s;
}

MemoryExperimentConfig
pipelineConfig()
{
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = 3;
    cfg.noise.p = 4e-3;
    cfg.maxShots = 6000;
    cfg.batchShots = 1024; // several full batches plus a partial tail
    cfg.targetFailures = 1u << 30;
    cfg.seed = 2024;
    return cfg;
}

TEST(Pipeline, ThreadCountDoesNotChangeResults)
{
    const CodePatch p = squarePatch(3);
    auto cfg = pipelineConfig();
    cfg.threads = 1;
    const auto serial = runMemoryExperiment(p, cfg);
    EXPECT_EQ(serial.shots, cfg.maxShots);
    for (size_t threads : {2u, 8u}) {
        cfg.threads = threads;
        const auto parallel = runMemoryExperiment(p, cfg);
        EXPECT_EQ(parallel.shots, serial.shots) << threads << " threads";
        EXPECT_EQ(parallel.failures, serial.failures) << threads
                                                      << " threads";
        EXPECT_EQ(parallel.pShot, serial.pShot);
    }
}

TEST(Pipeline, ThreadCountInvariantWithEarlyStopAndAutoDecoder)
{
    // Early stop interacts with batching: the failure tally that gates
    // the next batch must match at every thread count.
    const CodePatch p = squarePatch(3);
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = 2;
    cfg.noise.p = 2e-2;
    cfg.maxShots = 50000;
    cfg.targetFailures = 25;
    cfg.batchShots = 512;
    cfg.decoder = DecoderKind::Auto;
    cfg.mwpmDefectCap = 6; // force a mix of MWPM and union-find shots
    cfg.threads = 1;
    const auto serial = runMemoryExperiment(p, cfg);
    EXPECT_GE(serial.failures, 25u);
    for (size_t threads : {2u, 8u}) {
        cfg.threads = threads;
        const auto parallel = runMemoryExperiment(p, cfg);
        EXPECT_EQ(parallel.shots, serial.shots);
        EXPECT_EQ(parallel.failures, serial.failures);
    }
}

TEST(Decoders, MwpmAndUnionFindAgreeOnLowWeightSyndromes)
{
    // Every weight-1 and weight-2 syndrome of a d=3 memory must decode
    // identically under MWPM and union-find: low-weight defects leave no
    // room for the approximate decoder to pick a homologically different
    // correction unless the syndrome is genuinely ambiguous — and the
    // d=3 graph's weighted paths break those ties the same way.
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 1e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(3), spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const uint8_t tag = 1;
    const MwpmDecoder mwpm(dem, tag);
    const UnionFindDecoder uf(dem, tag);
    MwpmScratch ms;
    UfScratch us;

    std::vector<uint32_t> tagged;
    for (uint32_t d = 0; d < dem.numDetectors; ++d)
        if (dem.detectorTag[d] == tag)
            tagged.push_back(d);
    ASSERT_GT(tagged.size(), 4u);

    size_t checked = 0;
    for (size_t i = 0; i < tagged.size(); ++i) {
        const uint32_t fired1[1] = {tagged[i]};
        EXPECT_EQ(mwpm.decode(fired1, 1, ms), uf.decode(fired1, 1, us))
            << "single defect " << tagged[i];
        for (size_t j = i + 1; j < tagged.size(); ++j) {
            const uint32_t fired2[2] = {tagged[i], tagged[j]};
            EXPECT_EQ(mwpm.decode(fired2, 2, ms), uf.decode(fired2, 2, us))
                << "defect pair " << tagged[i] << "," << tagged[j];
            ++checked;
        }
    }
    EXPECT_GT(checked, 100u);
}

TEST(Decoders, ScratchReuseMatchesFreshScratch)
{
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 8e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(3), spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder mwpm(dem, 1);
    const UnionFindDecoder uf(dem, 1);
    FrameSimulator sim(built.circuit, 600, 5);
    MwpmScratch ms;
    UfScratch us;
    for (size_t s = 0; s < sim.shots(); ++s) {
        const auto fired = sim.firedDetectors(s);
        MwpmScratch fresh_ms;
        UfScratch fresh_us;
        EXPECT_EQ(mwpm.decode(fired.data(), fired.size(), ms),
                  mwpm.decode(fired.data(), fired.size(), fresh_ms));
        EXPECT_EQ(uf.decode(fired.data(), fired.size(), us),
                  uf.decode(fired.data(), fired.size(), fresh_us));
    }
}

} // namespace
} // namespace surf
