/**
 * @file
 * Tests for the warm-start persistence layer (src/persist): the
 * checksummed snapshot container, the DeformedCodeCache snapshot
 * round-trip, the paranoid loader's fuzz matrix (truncation at every
 * record boundary, single-bit flips, stale versions, semantic
 * mismatches — no crash, Status surfaced, results bit-identical), and
 * kill/resume checkpointing at several thread counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "decode/memory_experiment.hh"
#include "decode/mwpm.hh"
#include "faultinject/fault_plan.hh"
#include "lattice/rotated.hh"
#include "persist/cache_snapshot.hh"
#include "persist/checkpoint.hh"
#include "persist/snapshot.hh"
#include "scenario/scenario_experiment.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"

namespace surf {
namespace {

/** Fresh temp directory, removed (best effort) on destruction. */
struct TempDir
{
    std::string path;
    TempDir()
    {
        char tmpl[] = "/tmp/surf_persist_XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "/tmp";
    }
    ~TempDir()
    {
        // Only files we created live here; remove then rmdir.
        const std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] int rc = ::system(cmd.c_str());
    }
    std::string
    file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

FaultPlan
mustPlan(const std::string &spec)
{
    StatusOr<FaultPlan> plan = parseFaultPlan(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().str();
    return plan.ok() ? *plan : FaultPlan{};
}

std::string
slurp(const std::string &path)
{
    StatusOr<std::string> bytes = readFileBytes(path);
    EXPECT_TRUE(bytes.ok()) << bytes.status().str();
    return bytes.ok() ? std::move(*bytes) : std::string();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/** Multi-epoch sampled scenario with several timelines (mirrors the
 *  fault-injection suite: this seed and rate guarantee deformation
 *  epochs, so the cache holds real segments and timelines). */
ScenarioConfig
sampledConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 60;
    sc.timeline.windowRounds = 10;
    sc.timeline.maxEpochRounds = 10;
    sc.defectModel.durationSec = 20e-6;
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0;
    sc.numTimelines = 4;
    sc.noise.p = 2e-3;
    sc.maxShotsPerTimeline = 128;
    sc.batchShots = 64;
    sc.seed = 99;
    return sc;
}

void
expectSameResults(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.totalEpochs, b.totalEpochs);
    EXPECT_EQ(a.deadTimelines, b.deadTimelines);
    ASSERT_EQ(a.timelines.size(), b.timelines.size());
    for (size_t t = 0; t < a.timelines.size(); ++t) {
        const TimelineStats &x = a.timelines[t];
        const TimelineStats &y = b.timelines[t];
        EXPECT_EQ(x.shots, y.shots) << "timeline " << t;
        EXPECT_EQ(x.failures, y.failures) << "timeline " << t;
        EXPECT_EQ(x.events, y.events) << "timeline " << t;
        EXPECT_EQ(x.dead, y.dead) << "timeline " << t;
        ASSERT_EQ(x.epochs.size(), y.epochs.size()) << "timeline " << t;
        for (size_t e = 0; e < x.epochs.size(); ++e) {
            EXPECT_EQ(x.epochs[e].shots, y.epochs[e].shots);
            EXPECT_EQ(x.epochs[e].mismatches, y.epochs[e].mismatches);
            EXPECT_EQ(x.epochs[e].rounds, y.epochs[e].rounds);
            EXPECT_EQ(x.epochs[e].numDetectors, y.epochs[e].numDetectors);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot container primitives.
// ---------------------------------------------------------------------

TEST(SnapshotContainer, ByteRoundTrip)
{
    std::string buf;
    ByteWriter w(buf);
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.i32(-42);
    w.i64(-1234567890123LL);
    w.f32(1.5f);
    w.f64(2.25);
    w.str("hello");
    const uint8_t raw[3] = {1, 2, 3};
    w.bytes(raw, sizeof raw);

    ByteReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123LL);
    EXPECT_EQ(r.f32(), 1.5f);
    EXPECT_EQ(r.f64(), 2.25);
    EXPECT_EQ(r.str(), "hello");
    const char *got = r.bytes(sizeof raw);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(std::memcmp(got, raw, sizeof raw), 0);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);

    // Over-read latches !ok() instead of walking off the buffer.
    (void)r.u64();
    EXPECT_FALSE(r.ok());
}

TEST(SnapshotContainer, WriterReaderRoundTrip)
{
    TempDir dir;
    const std::string path = dir.file("basic.snap");

    SnapshotWriter w;
    {
        std::string &payload = w.beginRecord(1);
        ByteWriter bw(payload);
        bw.u64(111);
        w.endRecord();
    }
    {
        std::string &payload = w.beginRecord(2);
        ByteWriter bw(payload);
        bw.str("second record");
        w.endRecord();
    }
    ASSERT_TRUE(w.finish(path).ok());

    StatusOr<SnapshotReader> reader = SnapshotReader::open(slurp(path));
    ASSERT_TRUE(reader.ok()) << reader.status().str();
    uint8_t type = 0;
    ByteReader payload(nullptr, 0);
    ASSERT_TRUE(reader->next(type, payload));
    EXPECT_EQ(type, 1);
    EXPECT_EQ(payload.u64(), 111u);
    ASSERT_TRUE(reader->next(type, payload));
    EXPECT_EQ(type, 2);
    EXPECT_EQ(payload.str(), "second record");
    EXPECT_FALSE(reader->next(type, payload));
    EXPECT_FALSE(reader->truncated());
    EXPECT_EQ(reader->recordsRead(), 2u);
}

TEST(SnapshotContainer, HeaderValidation)
{
    TempDir dir;
    const std::string path = dir.file("hdr.snap");
    SnapshotWriter w;
    {
        std::string &payload = w.beginRecord(1);
        ByteWriter bw(payload);
        bw.u64(1);
        w.endRecord();
    }
    ASSERT_TRUE(w.finish(path).ok());
    const std::string good = slurp(path);
    ASSERT_GE(good.size(), kSnapshotHeaderBytes);

    // Too short for a header.
    for (size_t n = 0; n < kSnapshotHeaderBytes; ++n) {
        StatusOr<SnapshotReader> r = SnapshotReader::open(good.substr(0, n));
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::kCorruptSnapshot);
    }

    // Bad magic.
    std::string bad = good;
    bad[0] ^= 0xff;
    EXPECT_EQ(SnapshotReader::open(bad).status().code(),
              StatusCode::kCorruptSnapshot);

    // Version skew with a *recomputed* header CRC: must fail on the
    // version check, not the checksum (a well-formed alien file).
    bad = good;
    const uint32_t alien = 0xFFFFFFFFu;
    std::memcpy(&bad[8], &alien, sizeof alien);
    uint32_t crc = crc32(bad.data(), 16);
    std::memcpy(&bad[16], &crc, sizeof crc);
    StatusOr<SnapshotReader> stale = SnapshotReader::open(bad);
    EXPECT_FALSE(stale.ok());
    EXPECT_EQ(stale.status().code(), StatusCode::kCorruptSnapshot);

    // Header CRC damage alone.
    bad = good;
    bad[17] ^= 0x01;
    EXPECT_EQ(SnapshotReader::open(bad).status().code(),
              StatusCode::kCorruptSnapshot);

    // A flipped payload bit fails that record's CRC: the reader reports
    // a truncated (prefix-only) stream instead of crashing or lying.
    bad = good;
    bad[kSnapshotHeaderBytes + 10] ^= 0x40;
    StatusOr<SnapshotReader> flipped = SnapshotReader::open(bad);
    ASSERT_TRUE(flipped.ok());
    uint8_t type = 0;
    ByteReader payload(nullptr, 0);
    EXPECT_FALSE(flipped->next(type, payload));
    EXPECT_TRUE(flipped->truncated());
}

// ---------------------------------------------------------------------
// Cache snapshot round-trip + warm-restart bit-identity.
// ---------------------------------------------------------------------

TEST(CacheSnapshot, WarmRestartBitIdenticalToCold)
{
    TempDir dir;
    ScenarioConfig cold = sampledConfig();
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(cold);
    ASSERT_TRUE(truth.ok()) << truth.status().str();

    // Pass 1: cold with persistence — writes cache.snap on completion.
    ScenarioConfig persisted = cold;
    persisted.persistDir = dir.path;
    StatusOr<ScenarioResult> pass1 = runScenarioExperimentChecked(persisted);
    ASSERT_TRUE(pass1.ok()) << pass1.status().str();
    expectSameResults(*truth, *pass1);
    EXPECT_EQ(pass1->persistRestoredSegments, 0u);
    EXPECT_GT(pass1->persistSnapshotBytes, 0u);
    EXPECT_TRUE(snapshotFileExists(dir.file("cache.snap")));

    // Pass 2: warm restart — restores segments and stays bit-identical.
    StatusOr<ScenarioResult> pass2 = runScenarioExperimentChecked(persisted);
    ASSERT_TRUE(pass2.ok()) << pass2.status().str();
    expectSameResults(*truth, *pass2);
    EXPECT_GT(pass2->persistRestoredSegments, 0u);
    EXPECT_GT(pass2->persistRestoredRows, 0u);
    EXPECT_EQ(pass2->persistRecoveries, 0u);
    EXPECT_EQ(pass2->ledger.snapRestoredEntries,
              pass2->persistRestoredSegments +
                  pass2->persistRestoredTimelines);
}

TEST(CacheSnapshot, DirectSaveLoadRoundTrip)
{
    TempDir dir;
    const std::string path = dir.file("cache.snap");

    ScenarioConfig sc = sampledConfig();
    DeformedCodeCache cache;
    sc.cache = &cache;
    StatusOr<ScenarioResult> run = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(run.ok()) << run.status().str();

    StatusOr<SnapshotSaveStats> saved = saveCacheSnapshot(cache, path);
    ASSERT_TRUE(saved.ok()) << saved.status().str();
    EXPECT_GT(saved->segments, 0u);
    EXPECT_GT(saved->rows, 0u);
    EXPECT_GT(saved->fileBytes, 0u);

    DeformedCodeCache fresh;
    StatusOr<SnapshotRestoreStats> loaded = loadCacheSnapshot(fresh, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_EQ(loaded->segments, saved->segments);
    EXPECT_EQ(loaded->timelines, saved->timelines);
    EXPECT_EQ(loaded->rows, saved->rows);
    EXPECT_EQ(loaded->rejectedRecords, 0u);
    EXPECT_FALSE(loaded->truncated);

    // The warm cache reproduces the run bit-identically with zero misses
    // on the segments it restored.
    ScenarioConfig warm = sampledConfig();
    warm.cache = &fresh;
    StatusOr<ScenarioResult> rerun = runScenarioExperimentChecked(warm);
    ASSERT_TRUE(rerun.ok()) << rerun.status().str();
    expectSameResults(*run, *rerun);
    EXPECT_GT(rerun->cacheHits, 0u);
}

TEST(CacheSnapshot, RestoreIsInsertIfAbsent)
{
    TempDir dir;
    const std::string path = dir.file("cache.snap");
    ScenarioConfig sc = sampledConfig();
    DeformedCodeCache cache;
    sc.cache = &cache;
    ASSERT_TRUE(runScenarioExperimentChecked(sc).ok());
    ASSERT_TRUE(saveCacheSnapshot(cache, path).ok());

    // Restoring on top of the same resident cache inserts nothing.
    StatusOr<SnapshotRestoreStats> again = loadCacheSnapshot(cache, path);
    ASSERT_TRUE(again.ok()) << again.status().str();
    EXPECT_EQ(again->segments, 0u);
    EXPECT_EQ(again->timelines, 0u);
}

// ---------------------------------------------------------------------
// Loader fuzz matrix.
// ---------------------------------------------------------------------

/** Byte offsets of every record boundary in a snapshot container. */
std::vector<size_t>
recordBoundaries(const std::string &bytes)
{
    std::vector<size_t> offs;
    size_t pos = kSnapshotHeaderBytes;
    offs.push_back(pos);
    while (pos + 1 + 8 + 4 <= bytes.size()) {
        uint64_t len = 0;
        std::memcpy(&len, bytes.data() + pos + 1, sizeof len);
        pos += 1 + 8 + len + 4;
        if (pos > bytes.size())
            break;
        offs.push_back(pos);
    }
    return offs;
}

TEST(LoaderFuzz, TruncationAtEveryRecordBoundary)
{
    TempDir dir;
    const std::string path = dir.file("cache.snap");
    ScenarioConfig sc = sampledConfig();
    DeformedCodeCache cache;
    sc.cache = &cache;
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(saveCacheSnapshot(cache, path).ok());
    const std::string good = slurp(path);

    std::vector<size_t> cuts = recordBoundaries(good);
    ASSERT_GE(cuts.size(), 2u);
    // Mid-record cuts too: one byte past each boundary and halfway into
    // each record.
    const size_t n_bounds = cuts.size();
    for (size_t i = 0; i + 1 < n_bounds; ++i) {
        cuts.push_back(cuts[i] + 1);
        cuts.push_back(cuts[i] + (cuts[i + 1] - cuts[i]) / 2);
    }
    cuts.push_back(0);
    cuts.push_back(kSnapshotHeaderBytes / 2);

    const std::string cut_path = dir.file("cut.snap");
    for (size_t cut : cuts) {
        if (cut > good.size())
            continue;
        spit(cut_path, good.substr(0, cut));
        DeformedCodeCache fresh;
        StatusOr<SnapshotRestoreStats> loaded =
            loadCacheSnapshot(fresh, cut_path);
        // Never crashes. Header cuts are whole-file rejections. A cut
        // exactly on a record boundary is indistinguishable from a
        // shorter valid snapshot (clean EOF); a mid-record cut flags
        // truncation and keeps the valid prefix.
        if (cut < kSnapshotHeaderBytes)
            EXPECT_FALSE(loaded.ok());
        // Whatever was restored still yields bit-identical physics.
        ScenarioConfig warm = sampledConfig();
        warm.cache = &fresh;
        StatusOr<ScenarioResult> rerun = runScenarioExperimentChecked(warm);
        ASSERT_TRUE(rerun.ok()) << "cut at " << cut;
        expectSameResults(*truth, *rerun);
    }
}

TEST(LoaderFuzz, SingleBitFlips)
{
    TempDir dir;
    const std::string path = dir.file("cache.snap");
    ScenarioConfig sc = sampledConfig();
    DeformedCodeCache cache;
    sc.cache = &cache;
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(saveCacheSnapshot(cache, path).ok());
    const std::string good = slurp(path);

    // Deterministic sample of byte positions across the whole file
    // (every byte would take minutes on a large snapshot).
    const std::string flip_path = dir.file("flip.snap");
    const size_t stride = good.size() < 512 ? 1 : good.size() / 257;
    for (size_t pos = 0; pos < good.size(); pos += stride) {
        std::string bad = good;
        bad[pos] ^= static_cast<char>(1u << (pos % 8));
        spit(flip_path, bad);
        DeformedCodeCache fresh;
        StatusOr<SnapshotRestoreStats> loaded =
            loadCacheSnapshot(fresh, flip_path);
        // Either the whole file is rejected (header damage) or the
        // stream loads with the damaged record dropped — never a crash,
        // never a wrong answer.
        ScenarioConfig warm = sampledConfig();
        warm.cache = &fresh;
        StatusOr<ScenarioResult> rerun = runScenarioExperimentChecked(warm);
        ASSERT_TRUE(rerun.ok()) << "flip at " << pos;
        expectSameResults(*truth, *rerun);
        (void)loaded;
    }
}

TEST(LoaderFuzz, SemanticMismatchRejectedByDigest)
{
    // A CRC-valid segment record whose payload belongs to different
    // code: loader must reject it on semantic validation, not trust it.
    TempDir dir;
    const std::string path = dir.file("forged.snap");
    SnapshotWriter w;
    {
        std::string &payload = w.beginRecord(1); // kRecSegment
        ByteWriter bw(payload);
        bw.str("forged-key");
        bw.u8(9); // invalid tag (> 1): semantic validation must fire
        w.endRecord();
    }
    ASSERT_TRUE(w.finish(path).ok());

    DeformedCodeCache fresh;
    StatusOr<SnapshotRestoreStats> loaded = loadCacheSnapshot(fresh, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_EQ(loaded->segments, 0u);
    EXPECT_GE(loaded->rejectedRecords, 1u);
}

TEST(LoaderFuzz, UnknownRecordTypeSkipped)
{
    TempDir dir;
    const std::string path = dir.file("future.snap");
    SnapshotWriter w;
    {
        std::string &payload = w.beginRecord(200); // from the future
        ByteWriter bw(payload);
        bw.u64(0);
        w.endRecord();
    }
    ASSERT_TRUE(w.finish(path).ok());
    DeformedCodeCache fresh;
    StatusOr<SnapshotRestoreStats> loaded = loadCacheSnapshot(fresh, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_EQ(loaded->segments, 0u);
}

TEST(LoaderFuzz, StaleVersionViaFaultInjection)
{
    // snap.stale stamps an alien format version WITH a recomputed header
    // CRC, so the loader's version check (not the checksum) must fire.
    TempDir dir;
    ScenarioConfig sc = sampledConfig();
    sc.persistDir = dir.path;
    sc.faults = mustPlan("seed=5;snap.stale=1");
    StatusOr<ScenarioResult> pass1 = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(pass1.ok()) << pass1.status().str();

    // The file on disk is stale now; the next run must cold-start and
    // count a recovery, with identical physics.
    ScenarioConfig clean = sampledConfig();
    clean.persistDir = dir.path;
    StatusOr<ScenarioResult> pass2 = runScenarioExperimentChecked(clean);
    ASSERT_TRUE(pass2.ok()) << pass2.status().str();
    EXPECT_EQ(pass2->persistRestoredSegments, 0u);
    EXPECT_GE(pass2->persistRecoveries, 1u);
    EXPECT_GE(pass2->ledger.snapRecoveries, 1u);
    expectSameResults(*pass1, *pass2);
}

TEST(LoaderFuzz, TornAndBitflipFaultSites)
{
    // snap.torn + snap.bitflip.p corrupt the written snapshot; every
    // subsequent run survives with bit-identical results.
    ScenarioConfig base = sampledConfig();
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(base);
    ASSERT_TRUE(truth.ok());

    for (const char *plan :
         {"seed=7;snap.torn=0.6", "seed=7;snap.bitflip.p=2e-4",
          "seed=7;snap.torn=0.97;snap.bitflip.p=1e-3"}) {
        TempDir dir;
        ScenarioConfig sc = base;
        sc.persistDir = dir.path;
        sc.faults = mustPlan(plan);
        StatusOr<ScenarioResult> pass1 = runScenarioExperimentChecked(sc);
        ASSERT_TRUE(pass1.ok()) << plan << ": " << pass1.status().str();
        expectSameResults(*truth, *pass1);

        ScenarioConfig clean = base;
        clean.persistDir = dir.path;
        StatusOr<ScenarioResult> pass2 =
            runScenarioExperimentChecked(clean);
        ASSERT_TRUE(pass2.ok()) << plan << ": " << pass2.status().str();
        expectSameResults(*truth, *pass2);
    }
}

// ---------------------------------------------------------------------
// Kill/resume checkpointing.
// ---------------------------------------------------------------------

TEST(Checkpoint, KillAndResumeBitIdenticalAcrossThreadCounts)
{
    ScenarioConfig base = sampledConfig();
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(base);
    ASSERT_TRUE(truth.ok());

    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
        TempDir dir;
        ScenarioConfig killed = base;
        killed.threads = threads;
        killed.persistDir = dir.path;
        killed.faults = mustPlan("seed=3;snap.kill=2");
        StatusOr<ScenarioResult> crash = runScenarioExperimentChecked(killed);
        ASSERT_FALSE(crash.ok());
        EXPECT_EQ(crash.status().code(), StatusCode::kAborted)
            << crash.status().str();

        // Resume: same physics config. snap.* clauses (and with them the
        // whole now-inert fault plan) are signature-exempt, so dropping
        // the kill plan entirely still matches the checkpoint.
        ScenarioConfig resumed = base;
        resumed.threads = threads;
        resumed.persistDir = dir.path;
        StatusOr<ScenarioResult> done = runScenarioExperimentChecked(resumed);
        ASSERT_TRUE(done.ok()) << done.status().str();
        EXPECT_EQ(done->resumedTimelines, 2u) << "threads " << threads;
        expectSameResults(*truth, *done);

        // Success unlinks the checkpoint; a third run starts fresh.
        StatusOr<ScenarioResult> third = runScenarioExperimentChecked(resumed);
        ASSERT_TRUE(third.ok());
        EXPECT_EQ(third->resumedTimelines, 0u);
        expectSameResults(*truth, *third);
    }
}

TEST(Checkpoint, StaleSignatureIgnored)
{
    TempDir dir;
    ScenarioConfig sc = sampledConfig();
    sc.persistDir = dir.path;

    // Plant a checkpoint at this config's path but stamped with a
    // different signature (a hash-collision / hand-copied file): the
    // engine must ignore it, not resume from foreign results.
    const uint64_t sig = scenarioConfigSignature(sc);
    char name[64];
    std::snprintf(name, sizeof name, "run-%016llx.ckpt",
                  static_cast<unsigned long long>(sig));
    std::vector<TimelineStats> foreign(2);
    foreign[0].shots = 12345;
    ASSERT_TRUE(saveRunCheckpoint(dir.file(name), sig ^ 1, foreign).ok());

    StatusOr<ScenarioResult> run = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(run.ok()) << run.status().str();
    EXPECT_EQ(run->resumedTimelines, 0u);

    ScenarioConfig plain = sampledConfig();
    StatusOr<ScenarioResult> truth = runScenarioExperimentChecked(plain);
    ASSERT_TRUE(truth.ok());
    expectSameResults(*truth, *run);
}

TEST(Checkpoint, TornCheckpointResumesFromPrefix)
{
    TempDir dir;
    ScenarioConfig sc = sampledConfig();
    sc.persistDir = dir.path;
    sc.faults = mustPlan("seed=3;snap.kill=3");
    ASSERT_FALSE(runScenarioExperimentChecked(sc).ok());

    const uint64_t sig = scenarioConfigSignature(sc);
    char name[64];
    std::snprintf(name, sizeof name, "run-%016llx.ckpt",
                  static_cast<unsigned long long>(sig));
    const std::string ckpt = dir.file(name);
    const std::string good = slurp(ckpt);

    // Tear the tail off: the valid prefix is an earlier checkpoint and
    // must resume (fewer timelines) with identical final results.
    spit(ckpt, good.substr(0, good.size() - good.size() / 3));
    ScenarioConfig resumed = sampledConfig();
    resumed.persistDir = dir.path;
    StatusOr<ScenarioResult> done = runScenarioExperimentChecked(resumed);
    ASSERT_TRUE(done.ok()) << done.status().str();
    EXPECT_GT(done->resumedTimelines, 0u);
    EXPECT_LT(done->resumedTimelines, 3u);

    StatusOr<ScenarioResult> truth =
        runScenarioExperimentChecked(sampledConfig());
    ASSERT_TRUE(truth.ok());
    expectSameResults(*truth, *done);
}

// ---------------------------------------------------------------------
// Row-restore concurrency (run under TSan in CI).
// ---------------------------------------------------------------------

TEST(PersistRaces, RestoreRowRacesDecodeAndEviction)
{
    // Restored rows are published with the same CAS discipline row()
    // uses, so a snapshot restore may overlap live decoding and row
    // budget reclamation. Warm a reference graph, copy its rows, then
    // restore them into a budgeted graph while worker threads decode on
    // it — predictions must match the serial reference bit for bit.
    MemorySpec spec;
    spec.rounds = 5;
    NoiseParams noise;
    noise.p = 4e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(5), spec,
                                                  noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);

    MwpmDecoder reference(dem, 1, nullptr, MatchingBackend::Sparse);
    reference.setTruncation(SIZE_MAX);
    FrameSimulator sim(built.circuit, 256, 0xfeed);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    std::vector<uint8_t> expected(sim.shots());
    MwpmScratch ref_scratch;
    for (size_t s = 0; s < sim.shots(); ++s)
        expected[s] = reference.decode(syndromes.data(s),
                                       syndromes.count(s), ref_scratch);

    // Harvest the reference's resident rows (copies).
    std::vector<std::pair<int, DecodingGraph::Row>> rows;
    reference.graph().forEachResidentRow(
        [&](int src, const DecodingGraph::Row &row) {
            rows.emplace_back(src, row);
        });
    ASSERT_FALSE(rows.empty());

    MwpmDecoder target(dem, 1, nullptr, MatchingBackend::Sparse);
    target.setTruncation(SIZE_MAX);
    target.setRowBudget(4); // budget set before workers start

    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> workers;
    for (size_t t = 0; t < 3; ++t) {
        workers.emplace_back([&] {
            MwpmScratch scratch;
            size_t bad = 0;
            for (size_t s = 0; s < sim.shots(); ++s)
                bad += target.decode(syndromes.data(s),
                                     syndromes.count(s),
                                     scratch) != (expected[s] != 0);
            mismatches.fetch_add(bad, std::memory_order_relaxed);
        });
    }
    // Restorer thread: replays every harvested row into the live graph
    // (occupied slots and budget evictions make many of these no-ops —
    // exactly the races the loader meets).
    workers.emplace_back([&] {
        for (int pass = 0; pass < 8; ++pass)
            for (const auto &[src, row] : rows) {
                DecodingGraph::Row copy = row;
                (void)target.graph().restoreRow(src, std::move(copy));
            }
    });
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(mismatches.load(), 0u)
        << "row restore under contention changed a prediction";
    EXPECT_LE(target.graph().rowsResident(), 4u);
}

TEST(PersistRaces, RestoreRowRejectsMalformedRows)
{
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 2e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(3), spec,
                                                  noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    MwpmDecoder dec(dem, 1, nullptr, MatchingBackend::Sparse);
    const DecodingGraph &g = dec.graph();
    const size_t n = g.numNodes() + 1;

    DecodingGraph::Row short_row;
    short_row.radius = 1.0;
    short_row.dist.resize(n - 1);
    short_row.par.resize(n - 1);
    EXPECT_FALSE(g.restoreRow(0, std::move(short_row)));

    DecodingGraph::Row nan_row;
    nan_row.radius = std::numeric_limits<double>::quiet_NaN();
    nan_row.dist.resize(n);
    nan_row.par.resize(n);
    EXPECT_FALSE(g.restoreRow(0, std::move(nan_row)));

    DecodingGraph::Row oob;
    oob.radius = 1.0;
    oob.dist.resize(n);
    oob.par.resize(n);
    EXPECT_FALSE(g.restoreRow(-1, DecodingGraph::Row(oob)));
    EXPECT_FALSE(g.restoreRow(static_cast<int>(n), std::move(oob)));
}

} // namespace
} // namespace surf
