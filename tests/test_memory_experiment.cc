/**
 * @file
 * Integration tests for the full QEC pipeline: logical error rates must
 * be (a) well below physical rates, (b) exponentially suppressed with
 * distance, (c) restored by Surf-Deformer's defect removal compared to
 * untreated defective codes — the code-level claims behind fig. 11(a).
 */

#include <gtest/gtest.h>

#include "core/instructions.hh"
#include "decode/memory_experiment.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"

namespace surf {
namespace {

MemoryExperimentConfig
quickConfig(int rounds, uint64_t shots)
{
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = rounds;
    cfg.noise.p = 3e-3;
    cfg.maxShots = shots;
    cfg.targetFailures = 1u << 30; // run all shots
    cfg.seed = 1234;
    return cfg;
}

TEST(MemoryExperiment, LogicalBeatsPhysicalAtD3)
{
    CodePatch p = squarePatch(3);
    const auto res = runMemoryExperiment(p, quickConfig(3, 20000));
    EXPECT_EQ(res.shots, 20000u);
    // Circuit-level p = 3e-3 is well under threshold: the logical error
    // per shot must be far below the accumulated physical error rate.
    EXPECT_LT(res.pShot, 0.05);
    EXPECT_GT(res.failures, 0u); // but not exactly zero at d=3
}

TEST(MemoryExperiment, DistanceSuppressesLogicalErrors)
{
    auto cfg3 = quickConfig(3, 60000);
    cfg3.noise.p = 1e-3;
    const auto r3 = runMemoryExperiment(squarePatch(3), cfg3);
    auto cfg5 = quickConfig(5, 60000);
    cfg5.noise.p = 1e-3;
    const auto r5 = runMemoryExperiment(squarePatch(5), cfg5);
    // Exponential suppression: d=5 must be several times better than
    // d=3 at p ~ 0.1 p_th (generous slack for statistics).
    EXPECT_GT(r3.failures, 10u);
    EXPECT_LT(r5.pRound * 3.0, r3.pRound)
        << "r3=" << r3.pRound << " r5=" << r5.pRound;
}

TEST(MemoryExperiment, MemoryXWorksToo)
{
    auto cfg = quickConfig(3, 10000);
    cfg.spec.basis = PauliType::X;
    const auto res = runMemoryExperiment(squarePatch(3), cfg);
    EXPECT_LT(res.pShot, 0.05);
}

TEST(MemoryExperiment, DeformedCodeStillCorrects)
{
    CodePatch p = squarePatch(5);
    dataQRm(p, {5, 5});
    p.recomputeSupers();
    refreshLogicals(p);
    const auto res = runMemoryExperiment(p, quickConfig(5, 20000));
    // A d=5 code with one interior removal has distance 4: worse than
    // pristine d=5 but still strongly below physical.
    EXPECT_LT(res.pShot, 0.05);
}

TEST(MemoryExperiment, SyndromeRemovalCodeStillCorrects)
{
    CodePatch p = squarePatch(5);
    syndromeQRm(p, {4, 4});
    p.recomputeSupers();
    refreshLogicals(p);
    const auto res = runMemoryExperiment(p, quickConfig(5, 20000));
    EXPECT_LT(res.pShot, 0.05);
}

TEST(MemoryExperiment, RemovalBeatsUntreatedDefects)
{
    // The fig. 11(a) mechanism at test scale: a defective region left in
    // the code (50% error rates) destroys the logical qubit; removing the
    // defective qubits restores error correction.
    const std::set<Coord> defect_sites{{5, 5}, {4, 4}};

    CodePatch untreated = squarePatch(5);
    auto cfg = quickConfig(5, 8000);
    cfg.noise.defectiveSites = defect_sites;
    const auto bad = runMemoryExperiment(untreated, cfg);

    CodePatch treated = squarePatch(5);
    dataQRm(treated, {5, 5});
    syndromeQRm(treated, {4, 4});
    treated.recomputeSupers();
    refreshLogicals(treated);
    auto cfg2 = quickConfig(5, 8000);
    const auto good = runMemoryExperiment(treated, cfg2);

    EXPECT_GT(bad.pShot, 5 * std::max(good.pShot, 1e-4));
}

TEST(MemoryExperiment, UnionFindCloseToMwpm)
{
    auto cfg = quickConfig(3, 20000);
    cfg.noise.p = 5e-3;
    cfg.decoder = DecoderKind::Mwpm;
    const auto mwpm = runMemoryExperiment(squarePatch(3), cfg);
    cfg.decoder = DecoderKind::UnionFind;
    const auto uf = runMemoryExperiment(squarePatch(3), cfg);
    // Union-find is allowed to be worse, but within a small factor, and
    // both must stay far below 50%.
    EXPECT_LT(uf.pShot, 4 * mwpm.pShot + 0.01);
    EXPECT_GE(uf.pShot, 0.5 * mwpm.pShot - 0.01);
}

TEST(MemoryExperiment, EarlyStopOnTargetFailures)
{
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = 2;
    cfg.noise.p = 2e-2; // heavy noise: failures arrive quickly
    cfg.maxShots = 100000;
    cfg.targetFailures = 20;
    cfg.batchShots = 512;
    const auto res = runMemoryExperiment(squarePatch(3), cfg);
    EXPECT_GE(res.failures, 20u);
    EXPECT_LT(res.shots, 100000u);
}

} // namespace
} // namespace surf
