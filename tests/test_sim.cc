/**
 * @file
 * Tests for the simulation stack: tableau simulator gate/measurement
 * semantics, frame-vs-tableau agreement on injected errors, circuit
 * builder determinism (every detector of a noiseless syndrome circuit
 * must be deterministic — the Appendix-A logical-preservation property),
 * and DEM structure sanity.
 */

#include <gtest/gtest.h>

#include "core/instructions.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"
#include "sim/tableau.hh"

namespace surf {
namespace {

TEST(Tableau, BellPairCorrelations)
{
    TableauSimulator sim(2, 7);
    sim.h(0);
    sim.cx(0, 1);
    // ZZ and XX are stabilizers with +1 expectation; single Z is random.
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZZ")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("XX")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZI")), 0);
    EXPECT_EQ(sim.expectation(PauliString::fromString("YY")), -1);
    const bool a = sim.measureZ(0);
    const bool b = sim.measureZ(1);
    EXPECT_EQ(a, b);
}

TEST(Tableau, DeterministicMeasurements)
{
    TableauSimulator sim(1, 3);
    EXPECT_TRUE(sim.isDeterministicZ(0));
    EXPECT_FALSE(sim.isDeterministicX(0));
    EXPECT_FALSE(sim.measureZ(0));
    sim.x(0);
    EXPECT_TRUE(sim.measureZ(0));
    sim.h(0);
    EXPECT_TRUE(sim.isDeterministicX(0));
}

TEST(Tableau, ResetForcesState)
{
    TableauSimulator sim(1, 5);
    sim.h(0);
    sim.resetZ(0);
    EXPECT_TRUE(sim.isDeterministicZ(0));
    EXPECT_FALSE(sim.measureZ(0));
    sim.resetX(0);
    EXPECT_TRUE(sim.isDeterministicX(0));
    EXPECT_FALSE(sim.measureX(0));
}

TEST(Tableau, RepetitionCodeParityTracksErrors)
{
    // 3-qubit repetition code: X error on qubit 1 flips both ZZ checks.
    TableauSimulator sim(5, 11);
    // Qubits 0,1,2 data; 3,4 ancilla.
    auto measure_zz = [&](uint32_t a, uint32_t b, uint32_t anc) {
        sim.resetZ(anc);
        sim.cx(a, anc);
        sim.cx(b, anc);
        return sim.measureZ(anc);
    };
    EXPECT_FALSE(measure_zz(0, 1, 3));
    EXPECT_FALSE(measure_zz(1, 2, 4));
    sim.x(1);
    EXPECT_TRUE(measure_zz(0, 1, 3));
    EXPECT_TRUE(measure_zz(1, 2, 4));
}

/**
 * The key integration property (paper Appendix A / Stim's detector
 * property): every detector of a noiseless memory circuit is
 * deterministic 0 and the observable parity is 0, for pristine AND
 * deformed patches, in both bases.
 */
class NoiselessDeterminism
    : public ::testing::TestWithParam<std::tuple<int, PauliType>>
{
};

TEST_P(NoiselessDeterminism, AllDetectorsZero)
{
    const auto [variant, basis] = GetParam();
    CodePatch p = squarePatch(5);
    switch (variant) {
      case 0:
        break; // pristine
      case 1:
        dataQRm(p, {5, 5});
        break;
      case 2:
        syndromeQRm(p, {4, 4});
        break;
      case 3:
        pinData(p, {5, 1}, PauliType::X);
        break;
      case 4: // combined pattern
        dataQRm(p, {5, 5});
        syndromeQRm(p, {6, 8});
        break;
      case 5: // syndrome removal of a Z-type check
        syndromeQRm(p, {4, 6});
        break;
    }
    p.recomputeSupers();
    refreshLogicals(p);
    ASSERT_TRUE(p.validate().ok);

    MemorySpec spec;
    spec.basis = basis;
    spec.rounds = 5;
    NoiseParams noise;
    noise.p = 0.0; // noiseless
    const BuiltCircuit built = buildMemoryCircuit(p, spec, noise);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        const auto run =
            TableauSimulator::runCircuit(built.circuit, seed, false);
        for (size_t d = 0; d < run.detectors.size(); ++d)
            ASSERT_FALSE(run.detectors[d])
                << "variant " << variant << " basis " << typeChar(basis)
                << " detector " << d << " fired without noise (seed "
                << seed << ")";
        ASSERT_FALSE(run.observables.at(0))
            << "variant " << variant << ": logical observable flipped";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, NoiselessDeterminism,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(PauliType::Z, PauliType::X)));

TEST(FrameSim, MatchesTableauOnInjectedErrors)
{
    // Inject a deterministic X error (p = 1) mid-circuit; frame and
    // tableau simulations must agree on every detector.
    CodePatch p = squarePatch(3);
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams quiet;
    quiet.p = 0.0;
    BuiltCircuit base = buildMemoryCircuit(p, spec, quiet);

    // Rebuild with a single forced error on one data qubit after round 1:
    // easiest route: append an X_ERROR(1.0) right after the first Tick.
    Circuit &ckt = base.circuit;
    Circuit forced;
    bool injected = false;
    int ticks_seen = 0;
    for (const auto &ins : ckt.instructions()) {
        if (ins.op == Op::Detector) {
            forced.appendDetector(
                std::vector<uint32_t>(ins.targets.begin(), ins.targets.end()),
                ins.aux == 1 ? PauliType::Z : PauliType::X);
            continue;
        }
        if (ins.op == Op::ObservableInclude) {
            forced.appendObservable(ins.aux,
                                    std::vector<uint32_t>(ins.targets.begin(),
                                                          ins.targets.end()));
            continue;
        }
        forced.append(ins.op, ins.targets, ins.arg);
        if (ins.op == Op::Tick && ++ticks_seen == 2 && !injected) {
            forced.append(Op::XError, {0}, 1.0);
            injected = true;
        }
    }
    ASSERT_TRUE(injected);

    const auto tab = TableauSimulator::runCircuit(forced, 3, true);
    FrameSimulator frame(forced, 16, 3);
    for (size_t d = 0; d < tab.detectors.size(); ++d)
        for (size_t s = 0; s < 16; ++s)
            ASSERT_EQ(frame.detectorBits(d).get(s), tab.detectors[d])
                << "detector " << d;
    for (size_t s = 0; s < 16; ++s)
        ASSERT_EQ(frame.observableBits(0).get(s), tab.observables.at(0));
}

TEST(Dem, PristineD3StructureSane)
{
    CodePatch p = squarePatch(3);
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 1e-3;
    const BuiltCircuit built = buildMemoryCircuit(p, spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    EXPECT_GT(dem.numDetectors, 0u);
    EXPECT_GT(dem.edges[0].size(), 0u);
    EXPECT_GT(dem.edges[1].size(), 0u);
    // No single fault may flip the observable undetectably at d = 3.
    EXPECT_EQ(dem.undetectableObsProb, 0.0);
    for (int tag = 0; tag < 2; ++tag)
        for (const auto &e : dem.edges[tag]) {
            EXPECT_GT(e.p, 0.0);
            EXPECT_LT(e.p, 0.2);
            if (e.a >= 0) {
                EXPECT_EQ(dem.detectorTag[static_cast<size_t>(e.a)], tag);
            }
            if (e.b >= 0) {
                EXPECT_EQ(dem.detectorTag[static_cast<size_t>(e.b)], tag);
            }
        }
}

TEST(Dem, ObservableEdgesExistOnObsSide)
{
    CodePatch p = squarePatch(3);
    MemorySpec spec;
    spec.rounds = 2;
    NoiseParams noise;
    noise.p = 1e-3;
    const BuiltCircuit built = buildMemoryCircuit(p, spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    int obs_edges_z = 0, obs_edges_x = 0;
    for (const auto &e : dem.edges[1])
        obs_edges_z += e.flipsObs;
    for (const auto &e : dem.edges[0])
        obs_edges_x += e.flipsObs;
    EXPECT_GT(obs_edges_z, 0); // X errors cross the Z-logical
    EXPECT_EQ(obs_edges_x, 0); // Z errors never flip a Z observable
}

TEST(FrameSim, DetectorRateMatchesNoiseScale)
{
    // Detector firing frequency grows with the physical rate.
    CodePatch p = squarePatch(3);
    MemorySpec spec;
    spec.rounds = 3;
    auto fired_fraction = [&](double phys) {
        NoiseParams noise;
        noise.p = phys;
        const BuiltCircuit built = buildMemoryCircuit(p, spec, noise);
        FrameSimulator sim(built.circuit, 2048, 5);
        uint64_t fired = 0;
        for (size_t d = 0; d < sim.numDetectors(); ++d)
            fired += sim.detectorBits(d).popcount();
        return static_cast<double>(fired) /
               (2048.0 * static_cast<double>(sim.numDetectors()));
    };
    const double lo = fired_fraction(1e-4);
    const double hi = fired_fraction(1e-2);
    EXPECT_LT(lo, hi);
    EXPECT_GT(hi, 10 * lo);
}

} // namespace
} // namespace surf
