/**
 * @file
 * Unit tests for GF(2) matrix operations: rank, span membership with
 * certificates, and kernel bases.
 */

#include <gtest/gtest.h>

#include "pauli/bitmatrix.hh"
#include "util/rng.hh"

namespace surf {
namespace {

BitVec
fromBits(std::initializer_list<int> bits)
{
    BitVec v(bits.size());
    size_t i = 0;
    for (int b : bits)
        v.set(i++, b != 0);
    return v;
}

TEST(BitMatrix, RankOfIndependentRows)
{
    BitMatrix m(4);
    m.addRow(fromBits({1, 0, 0, 0}));
    m.addRow(fromBits({1, 1, 0, 0}));
    m.addRow(fromBits({0, 0, 1, 1}));
    EXPECT_EQ(m.rank(), 3u);
    EXPECT_TRUE(m.rowsIndependent());
}

TEST(BitMatrix, RankDetectsDependence)
{
    BitMatrix m(4);
    m.addRow(fromBits({1, 1, 0, 0}));
    m.addRow(fromBits({0, 1, 1, 0}));
    m.addRow(fromBits({1, 0, 1, 0}));
    EXPECT_EQ(m.rank(), 2u);
    EXPECT_FALSE(m.rowsIndependent());
}

TEST(BitMatrix, SolveCombinationFindsCertificate)
{
    BitMatrix m(5);
    m.addRow(fromBits({1, 1, 0, 0, 0}));
    m.addRow(fromBits({0, 1, 1, 0, 0}));
    m.addRow(fromBits({0, 0, 0, 1, 1}));
    const BitVec target = fromBits({1, 0, 1, 1, 1});
    auto combo = m.solveCombination(target);
    ASSERT_TRUE(combo.has_value());
    // Verify the certificate reproduces the target.
    BitVec sum(5);
    for (size_t r = 0; r < m.rows(); ++r)
        if (combo->get(r))
            sum ^= m.row(r);
    EXPECT_EQ(sum, target);
}

TEST(BitMatrix, SolveCombinationRejectsOutside)
{
    BitMatrix m(3);
    m.addRow(fromBits({1, 1, 0}));
    EXPECT_FALSE(m.inSpan(fromBits({0, 0, 1})));
    EXPECT_TRUE(m.inSpan(fromBits({1, 1, 0})));
    EXPECT_TRUE(m.inSpan(fromBits({0, 0, 0})));
}

TEST(BitMatrix, KernelVectorsAnnihilate)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t cols = 12;
        BitMatrix m(cols);
        for (int r = 0; r < 7; ++r) {
            BitVec row(cols);
            for (size_t c = 0; c < cols; ++c)
                row.set(c, rng.bernoulli(0.4));
            m.addRow(row);
        }
        const auto kernel = m.kernelBasis();
        EXPECT_EQ(kernel.size(), cols - m.rank());
        for (const auto &k : kernel) {
            for (size_t r = 0; r < m.rows(); ++r)
                EXPECT_FALSE(m.row(r).andParity(k))
                    << "kernel vector fails row " << r;
        }
    }
}

TEST(BitMatrix, RandomizedSpanConsistency)
{
    Rng rng(1234);
    for (int trial = 0; trial < 30; ++trial) {
        const size_t cols = 16;
        BitMatrix m(cols);
        std::vector<BitVec> rows;
        for (int r = 0; r < 6; ++r) {
            BitVec row(cols);
            for (size_t c = 0; c < cols; ++c)
                row.set(c, rng.bernoulli(0.5));
            rows.push_back(row);
            m.addRow(row);
        }
        // Random combination must be in span.
        BitVec combo(cols);
        for (const auto &r : rows)
            if (rng.bernoulli(0.5))
                combo ^= r;
        EXPECT_TRUE(m.inSpan(combo));
    }
}

} // namespace
} // namespace surf
