/**
 * @file
 * Race-coverage tests, written to run under ThreadSanitizer (the CI tsan
 * job) but also meaningful as plain determinism checks:
 *
 *  - the memoized-row budget evicting rows while other decode threads
 *    hold live shared_ptr row handles and publish replacements;
 *  - DeformedCodeCache eviction mid-timeline (budget pressure and
 *    fault-plan eviction storms) while the threaded decode pipeline is
 *    using pinned shared_ptr segments.
 *
 * Every scenario asserts bit-identical physics against an unbounded /
 * serial reference — eviction may only ever change cost.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "decode/memory_experiment.hh"
#include "decode/mwpm.hh"
#include "lattice/rotated.hh"
#include "scenario/scenario_experiment.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"

namespace surf {
namespace {

TEST(CacheRaces, RowBudgetEvictionRacesLiveRowHandles)
{
    // One shared sparse decoder with a row budget far below the working
    // set, hammered by several threads decoding the same shots: every
    // decode publishes rows, trips LRU eviction and reads rows another
    // thread may be evicting at that instant. The shared_ptr handles
    // must keep in-use rows alive, and every prediction must match the
    // unbudgeted serial reference bit for bit.
    MemorySpec spec;
    spec.rounds = 5;
    NoiseParams noise;
    noise.p = 4e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(5), spec,
                                                  noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);

    MwpmDecoder reference(dem, 1, nullptr, MatchingBackend::Sparse);
    reference.setTruncation(SIZE_MAX);
    MwpmDecoder budgeted(dem, 1, nullptr, MatchingBackend::Sparse);
    budgeted.setTruncation(SIZE_MAX);
    budgeted.setRowBudget(4);

    FrameSimulator sim(built.circuit, 512, 0xace5);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    std::vector<uint8_t> expected(sim.shots());
    MwpmScratch ref_scratch;
    for (size_t s = 0; s < sim.shots(); ++s)
        expected[s] = reference.decode(syndromes.data(s),
                                       syndromes.count(s), ref_scratch);

    constexpr size_t kThreads = 4;
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            MwpmScratch scratch; // per-thread scratch, shared decoder
            size_t bad = 0;
            for (size_t s = 0; s < sim.shots(); ++s)
                bad += budgeted.decode(syndromes.data(s),
                                       syndromes.count(s),
                                       scratch) != (expected[s] != 0);
            mismatches.fetch_add(bad, std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(mismatches.load(), 0u)
        << "row eviction under contention changed a prediction";
    EXPECT_LE(budgeted.graph().rowsResident(), 4u);
    EXPECT_GT(budgeted.graph().rowsBuilt(), budgeted.graph().rowsResident())
        << "the budget never evicted: the race was not exercised";
}

/** Deformation scenario with enough epochs to keep the cache busy. */
ScenarioConfig
racyScenarioConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 60;
    sc.timeline.windowRounds = 10;
    sc.timeline.maxEpochRounds = 10;
    sc.defectModel.durationSec = 20e-6;
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0;
    sc.numTimelines = 2;
    sc.noise.p = 2e-3;
    sc.maxShotsPerTimeline = 128;
    sc.batchShots = 32; // many batches: many storm / eviction windows
    sc.seed = 99;
    return sc;
}

TEST(CacheRaces, SegmentEvictionMidTimelineUnderThreads)
{
    // Serial, unbounded reference.
    ScenarioConfig ref_cfg = racyScenarioConfig();
    ref_cfg.threads = 1;
    const auto ref = runScenarioExperimentChecked(ref_cfg);
    ASSERT_TRUE(ref.ok()) << ref.status().str();

    // A one-entry cache budget plus a tiny row budget under a threaded
    // pipeline: segments are evicted while earlier epochs' decoders are
    // still decoding through their pinned shared_ptr handles, and the
    // row pools evict under the decode workers' feet.
    ScenarioConfig cfg = racyScenarioConfig();
    cfg.threads = 4;
    cfg.cacheMaxEntries = 1;
    cfg.mwpmRowBudget = 4;
    const auto bounded = runScenarioExperimentChecked(cfg);
    ASSERT_TRUE(bounded.ok()) << bounded.status().str();
    EXPECT_EQ(bounded.value().failures, ref.value().failures);
    EXPECT_EQ(bounded.value().totalEpochs, ref.value().totalEpochs);
    EXPECT_GT(bounded.value().cacheEvictions, 0u)
        << "the budget never evicted: the race was not exercised";
}

TEST(CacheRaces, EvictionStormsUnderThreadedPipeline)
{
    ScenarioConfig ref_cfg = racyScenarioConfig();
    ref_cfg.threads = 1;
    const auto ref = runScenarioExperimentChecked(ref_cfg);
    ASSERT_TRUE(ref.ok()) << ref.status().str();

    // Fault-plan storms clear the whole cache before every batch and
    // epoch build while four workers decode; pinned segments must keep
    // every in-flight decode safe and the physics unchanged.
    ScenarioConfig cfg = racyScenarioConfig();
    cfg.threads = 4;
    auto plan = parseFaultPlan("storm.batches=1;storm.epochs=1");
    ASSERT_TRUE(plan.ok());
    cfg.faults = plan.value();
    const auto stormy = runScenarioExperimentChecked(cfg);
    ASSERT_TRUE(stormy.ok()) << stormy.status().str();
    EXPECT_GT(stormy.value().ledger.cacheStorms, 0u);
    EXPECT_EQ(stormy.value().failures, ref.value().failures);
    EXPECT_EQ(stormy.value().totalEpochs, ref.value().totalEpochs);
}

} // namespace
} // namespace surf
