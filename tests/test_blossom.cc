/**
 * @file
 * Differential tests for the exact blossom matcher: hundreds of random
 * dense graphs compared against a brute-force minimum-weight perfect
 * matching, plus structured cases (forbidden edges, odd components).
 */

#include <gtest/gtest.h>

#include "decode/blossom.hh"
#include "util/rng.hh"

namespace surf {
namespace {

/** Brute force: try all perfect matchings recursively. */
int64_t
bruteForce(int n, const std::vector<int64_t> &w, std::vector<int> &used)
{
    int first = -1;
    for (int i = 0; i < n; ++i)
        if (!used[i]) {
            first = i;
            break;
        }
    if (first < 0)
        return 0;
    used[first] = 1;
    int64_t best = kMatchForbidden;
    for (int j = first + 1; j < n; ++j) {
        if (used[j] || w[static_cast<size_t>(first) * n + j] ==
                           kMatchForbidden)
            continue;
        used[j] = 1;
        const int64_t rest = bruteForce(n, w, used);
        if (rest != kMatchForbidden)
            best = std::min(best,
                            w[static_cast<size_t>(first) * n + j] + rest);
        used[j] = 0;
    }
    used[first] = 0;
    return best;
}

int64_t
matchingWeight(int n, const std::vector<int64_t> &w,
               const std::vector<int> &mate)
{
    int64_t total = 0;
    for (int i = 0; i < n; ++i) {
        EXPECT_GE(mate[i], 0);
        EXPECT_EQ(mate[mate[i]], i);
        if (mate[i] > i) {
            const int64_t ww = w[static_cast<size_t>(i) * n + mate[i]];
            EXPECT_NE(ww, kMatchForbidden) << "matched a forbidden pair";
            total += ww;
        }
    }
    return total;
}

TEST(Blossom, TrivialPair)
{
    std::vector<int64_t> w{0, 7, 7, 0};
    const auto mate = minWeightPerfectMatching(2, w);
    ASSERT_EQ(mate.size(), 2u);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[1], 0);
}

TEST(Blossom, PicksCheaperPairing)
{
    // 4 nodes: (0-1) + (2-3) costs 2, (0-2) + (1-3) costs 20.
    std::vector<int64_t> w(16, 10);
    auto at = [&](int a, int b) -> int64_t & { return w[a * 4 + b]; };
    at(0, 1) = at(1, 0) = 1;
    at(2, 3) = at(3, 2) = 1;
    at(0, 2) = at(2, 0) = 10;
    at(1, 3) = at(3, 1) = 10;
    at(0, 3) = at(3, 0) = 10;
    at(1, 2) = at(2, 1) = 10;
    const auto mate = minWeightPerfectMatching(4, w);
    ASSERT_EQ(mate.size(), 4u);
    EXPECT_EQ(mate[0], 1);
    EXPECT_EQ(mate[2], 3);
}

TEST(Blossom, RespectsForbiddenPairs)
{
    std::vector<int64_t> w(16, 1);
    auto at = [&](int a, int b) -> int64_t & { return w[a * 4 + b]; };
    at(0, 1) = at(1, 0) = kMatchForbidden;
    at(2, 3) = at(3, 2) = kMatchForbidden;
    const auto mate = minWeightPerfectMatching(4, w);
    ASSERT_EQ(mate.size(), 4u);
    EXPECT_NE(mate[0], 1);
    EXPECT_NE(mate[2], 3);
}

TEST(Blossom, ReturnsEmptyWhenImpossible)
{
    // Odd vertex count cannot have a perfect matching.
    std::vector<int64_t> w(9, 1);
    EXPECT_TRUE(minWeightPerfectMatching(3, w).empty());
    // All pairs forbidden.
    std::vector<int64_t> w2(4, kMatchForbidden);
    EXPECT_TRUE(minWeightPerfectMatching(2, w2).empty());
}

class BlossomRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(BlossomRandom, MatchesBruteForce)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = 2 * (1 + static_cast<int>(rng.below(5))); // 2..10
        std::vector<int64_t> w(static_cast<size_t>(n) * n, 0);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j) {
                int64_t ww;
                if (rng.bernoulli(0.15))
                    ww = kMatchForbidden;
                else
                    ww = static_cast<int64_t>(rng.below(1000));
                w[static_cast<size_t>(i) * n + j] = ww;
                w[static_cast<size_t>(j) * n + i] = ww;
            }
        std::vector<int> used(n, 0);
        const int64_t best = bruteForce(n, w, used);
        const auto mate = minWeightPerfectMatching(n, w);
        if (best == kMatchForbidden) {
            EXPECT_TRUE(mate.empty()) << "n=" << n << " trial=" << trial;
        } else {
            ASSERT_FALSE(mate.empty()) << "n=" << n << " trial=" << trial;
            EXPECT_EQ(matchingWeight(n, w, mate), best)
                << "n=" << n << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomRandom, ::testing::Range(0, 10));

TEST(Blossom, LargerRandomInstancesAreConsistent)
{
    // For n beyond brute force, check matching validity and local
    // optimality under 2-swaps.
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        const int n = 40;
        std::vector<int64_t> w(static_cast<size_t>(n) * n, 0);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j) {
                const auto ww = static_cast<int64_t>(rng.below(1000));
                w[static_cast<size_t>(i) * n + j] = ww;
                w[static_cast<size_t>(j) * n + i] = ww;
            }
        const auto mate = minWeightPerfectMatching(n, w);
        ASSERT_FALSE(mate.empty());
        auto at = [&](int a, int b) { return w[static_cast<size_t>(a) * n + b]; };
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b) {
                const int ma = mate[a], mb = mate[b];
                if (ma == b || mb == a)
                    continue;
                // Rewiring (a,ma),(b,mb) -> (a,b),(ma,mb) must not win.
                EXPECT_GE(at(a, b) + at(ma, mb) + 0,
                          at(a, ma) + at(b, mb) -
                              0) << "2-swap improvement found";
            }
    }
}

} // namespace
} // namespace surf
