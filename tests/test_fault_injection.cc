/**
 * @file
 * Tests for the fault-injection harness (faultinject/fault_plan.hh) and
 * its integration with the scenario engine: plan parsing and validation,
 * stall plans forcing the staged fallback ladder with full ledger
 * accounting, deterministic replays at any thread count, cache-eviction
 * storms that change cost but never results, stream truncation and
 * corruption, and adversarial burst syndromes.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "defects/defect_sampler.hh"
#include "faultinject/fault_plan.hh"
#include "scenario/scenario_experiment.hh"

namespace surf {
namespace {

/** Small deformation-free scenario: one epoch, enough noise that almost
 *  every shot has defects to decode (so the ladder is exercised). */
ScenarioConfig
quietConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 9;
    sc.timeline.windowRounds = 9;
    sc.eventRateScale = 0.0;
    sc.noise.p = 3e-3;
    sc.maxShotsPerTimeline = 256;
    sc.batchShots = 128;
    sc.seed = 77;
    return sc;
}

/** Sampled multi-epoch scenario (mirrors the end-to-end engine test:
 *  the event rate guarantees real deformation epochs at this seed). */
ScenarioConfig
sampledConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 60;
    sc.timeline.windowRounds = 10;
    sc.timeline.maxEpochRounds = 10;
    sc.defectModel.durationSec = 20e-6;
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0;
    sc.numTimelines = 2;
    sc.noise.p = 2e-3;
    sc.maxShotsPerTimeline = 128;
    sc.batchShots = 64;
    sc.seed = 99;
    return sc;
}

void
expectLedgersEqual(const DegradationLedger &a, const DegradationLedger &b,
                   const char *what)
{
    EXPECT_EQ(a.ladderDecodes, b.ladderDecodes) << what;
    EXPECT_EQ(a.degradedDecodes, b.degradedDecodes) << what;
    for (size_t s = 0; s < kNumDecodeStages; ++s) {
        EXPECT_EQ(a.stageAttempts[s], b.stageAttempts[s])
            << what << " stage " << s;
        EXPECT_EQ(a.stageTimeouts[s], b.stageTimeouts[s])
            << what << " stage " << s;
        EXPECT_EQ(a.stageCompleted[s], b.stageCompleted[s])
            << what << " stage " << s;
        EXPECT_EQ(a.stageLatency[s].samples, b.stageLatency[s].samples)
            << what << " stage " << s;
        EXPECT_EQ(a.stageLatency[s].totalNs, b.stageLatency[s].totalNs)
            << what << " stage " << s;
    }
    EXPECT_EQ(a.injectedStalls, b.injectedStalls) << what;
    EXPECT_EQ(a.injectedBursts, b.injectedBursts) << what;
    EXPECT_EQ(a.injectedBurstDetectors, b.injectedBurstDetectors) << what;
    EXPECT_EQ(a.cacheStorms, b.cacheStorms) << what;
}

TEST(FaultPlan, ParsesFullSpec)
{
    const auto plan = parseFaultPlan(
        "seed=11;stall.p=0.25;stall.ns=2000000;stall.stages=blossom,rows;"
        "storm.epochs=2;storm.batches=3;truncate.frac=0.5;corrupt.p=0.1;"
        "burst.p=0.05;burst.size=16");
    ASSERT_TRUE(plan.ok()) << plan.status().str();
    EXPECT_EQ(plan.value().seed, 11u);
    EXPECT_DOUBLE_EQ(plan.value().stallProb, 0.25);
    EXPECT_EQ(plan.value().stallNs, 2000000u);
    EXPECT_EQ(plan.value().stormEveryEpochs, 2u);
    EXPECT_EQ(plan.value().stormEveryBatches, 3u);
    EXPECT_DOUBLE_EQ(plan.value().truncateFrac, 0.5);
    EXPECT_DOUBLE_EQ(plan.value().corruptProb, 0.1);
    EXPECT_DOUBLE_EQ(plan.value().burstProb, 0.05);
    EXPECT_EQ(plan.value().burstSize, 16u);
    EXPECT_TRUE(plan.value().enabled());
    EXPECT_TRUE(plan.value().hasDecoderStalls());
    EXPECT_FALSE(plan.value().summary().empty());

    const auto empty = parseFaultPlan("");
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty.value().enabled());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"nonsense", "stall.p", "stall.p=", "stall.p=abc",
          "frobnicate=1", "stall.p=1.5", "corrupt.p=-0.1",
          "stall.stages=quick", "truncate.frac=2",
          "stall.p=0.5;stall.ns=0", "burst.p=0.5;burst.size=0"}) {
        const auto plan = parseFaultPlan(spec);
        EXPECT_FALSE(plan.ok()) << spec;
        EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument)
            << spec;
    }
}

TEST(FaultPlan, EnvPlanIsPickedUpAndValidated)
{
    ASSERT_EQ(setenv("SURF_FAULT_PLAN", "seed=3;burst.p=0.5", 1), 0);
    auto env = faultPlanFromEnv();
    ASSERT_TRUE(env.ok()) << env.status().str();
    EXPECT_EQ(env.value().seed, 3u);
    EXPECT_DOUBLE_EQ(env.value().burstProb, 0.5);

    ASSERT_EQ(setenv("SURF_FAULT_PLAN", "stall.p=7", 1), 0);
    env = faultPlanFromEnv();
    EXPECT_FALSE(env.ok());
    EXPECT_NE(env.status().message().find("SURF_FAULT_PLAN"),
              std::string::npos);
    // A bad env plan must surface through the checked entry, not abort.
    const auto res = runScenarioExperimentChecked(quietConfig());
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

    ASSERT_EQ(unsetenv("SURF_FAULT_PLAN"), 0);
    env = faultPlanFromEnv();
    ASSERT_TRUE(env.ok());
    EXPECT_FALSE(env.value().enabled());
}

TEST(FaultInjector, DecisionsAreStatelessAndSeeded)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.stallProb = 0.5;
    const FaultInjector inject(plan);
    EXPECT_TRUE(inject.virtualClockNeeded());
    // Same (salt, shot, epoch, stage) always gives the same decision.
    size_t stalled = 0;
    for (uint64_t shot = 0; shot < 200; ++shot) {
        const uint64_t a = inject.stallNs(1, shot, 0, kStageRows);
        const uint64_t b = inject.stallNs(1, shot, 0, kStageRows);
        EXPECT_EQ(a, b);
        stalled += a != 0;
    }
    // ... and the decisions actually vary across shots at p=0.5.
    EXPECT_GT(stalled, 50u);
    EXPECT_LT(stalled, 150u);

    FaultPlan storms;
    storms.stormEveryEpochs = 3;
    const FaultInjector si(storms);
    EXPECT_FALSE(si.virtualClockNeeded());
    size_t hits = 0;
    for (uint64_t e = 0; e < 12; ++e)
        hits += si.stormAtEpochBuild(0, e);
    EXPECT_EQ(hits, 4u); // every third build, deterministically
}

TEST(FaultInjection, StallPlanForcesLadderAndCompletes)
{
    // stall.p=1 with the default 50 ms stall against the default 10 ms
    // stall-plan deadline: both MWPM stages overrun on every decodable
    // shot, the union-find floor answers, and the run still completes
    // with every shot accounted for.
    ScenarioConfig sc = quietConfig();
    sc.matching = MatchingBackend::SparseBlossom; // full 3-stage ladder
    auto plan = parseFaultPlan("seed=5;stall.p=1");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto res = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(res.ok()) << res.status().str();
    EXPECT_EQ(res.value().shots, sc.maxShotsPerTimeline);

    const DegradationLedger &led = res.value().ledger;
    EXPECT_GT(led.ladderDecodes, 0u);
    EXPECT_EQ(led.degradedDecodes, led.ladderDecodes)
        << "every ladder decode should have timed out at stall.p=1";
    EXPECT_GT(led.injectedStalls, 0u);
    EXPECT_EQ(led.stageAttempts[kStageBlossom], led.ladderDecodes);
    EXPECT_EQ(led.stageTimeouts[kStageBlossom], led.ladderDecodes);
    EXPECT_EQ(led.stageTimeouts[kStageRows], led.ladderDecodes);
    EXPECT_EQ(led.stageCompleted[kStageUnionFind], led.ladderDecodes)
        << "the union-find floor must answer every degraded shot";
    EXPECT_EQ(led.stageLatency[kStageBlossom].samples, led.ladderDecodes);
    EXPECT_FALSE(led.summary().empty());
}

TEST(FaultInjection, PartialStallsDegradeOnlyStalledShots)
{
    ScenarioConfig sc = quietConfig();
    auto plan = parseFaultPlan("seed=5;stall.p=0.3");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto res = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(res.ok()) << res.status().str();
    const DegradationLedger &led = res.value().ledger;
    EXPECT_GT(led.ladderDecodes, 0u);
    EXPECT_GT(led.degradedDecodes, 0u);
    EXPECT_LT(led.degradedDecodes, led.ladderDecodes)
        << "at p=0.3 most shots must still answer within budget";
    EXPECT_GT(led.stageCompleted[kStageRows], 0u);
    EXPECT_GT(led.stageCompleted[kStageUnionFind], 0u);
}

TEST(FaultInjection, ReplaysAreDeterministicAcrossThreadCounts)
{
    // Stalls force the virtual clock, so stage choices, the ledger and
    // the physics must be bit-identical at any thread count and across
    // replays.
    ScenarioConfig sc = sampledConfig();
    auto plan =
        parseFaultPlan("seed=9;stall.p=0.4;burst.p=0.1;burst.size=8;"
                       "storm.batches=2");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();

    sc.threads = 1;
    const auto ref = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(ref.ok()) << ref.status().str();
    EXPECT_GT(ref.value().ledger.degradedDecodes, 0u);
    EXPECT_GT(ref.value().ledger.injectedBursts, 0u);

    for (size_t threads : {1u, 4u, 8u}) {
        sc.threads = threads;
        const auto res = runScenarioExperimentChecked(sc);
        ASSERT_TRUE(res.ok()) << res.status().str();
        EXPECT_EQ(res.value().shots, ref.value().shots)
            << "threads=" << threads;
        EXPECT_EQ(res.value().failures, ref.value().failures)
            << "threads=" << threads;
        EXPECT_EQ(res.value().totalEpochs, ref.value().totalEpochs)
            << "threads=" << threads;
        expectLedgersEqual(res.value().ledger, ref.value().ledger,
                           "threads");
    }
}

TEST(FaultInjection, EvictionStormsChangeCostButNotResults)
{
    ScenarioConfig sc = sampledConfig();
    const auto baseline = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(baseline.ok()) << baseline.status().str();

    auto plan = parseFaultPlan("storm.batches=1;storm.epochs=1");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto stormy = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(stormy.ok()) << stormy.status().str();
    EXPECT_GT(stormy.value().ledger.cacheStorms, 0u);
    EXPECT_EQ(stormy.value().failures, baseline.value().failures)
        << "eviction storms may only change cost, never physics";
    EXPECT_EQ(stormy.value().totalEpochs, baseline.value().totalEpochs);
    EXPECT_EQ(stormy.value().shots, baseline.value().shots);
    EXPECT_GE(stormy.value().cacheMisses, baseline.value().cacheMisses)
        << "storms force rebuilds";
}

TEST(FaultInjection, CorruptStreamsAreRejectedAsDataLoss)
{
    ScenarioConfig sc = sampledConfig();
    auto plan = parseFaultPlan("seed=2;corrupt.p=1");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto res = runScenarioExperimentChecked(sc);
    ASSERT_FALSE(res.ok())
        << "every sampled event was corrupted; validation must reject";
    EXPECT_EQ(res.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(res.status().message().find("defect stream"),
              std::string::npos)
        << res.status().str();
}

TEST(FaultInjection, TruncationToZeroMatchesQuietTimeline)
{
    // truncate.frac=0 drops every sampled event after the fact, which
    // must be indistinguishable from never sampling events at all: the
    // same quiet plan, the same seeds, the same physics.
    ScenarioConfig sc = sampledConfig();
    auto plan = parseFaultPlan("truncate.frac=0");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto truncated = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(truncated.ok()) << truncated.status().str();

    ScenarioConfig quiet = sampledConfig();
    quiet.eventRateScale = 0.0;
    const auto reference = runScenarioExperimentChecked(quiet);
    ASSERT_TRUE(reference.ok()) << reference.status().str();
    EXPECT_EQ(truncated.value().failures, reference.value().failures);
    EXPECT_EQ(truncated.value().totalEpochs,
              reference.value().totalEpochs);
}

TEST(FaultInjection, BurstSyndromesAreSurvivedAndCounted)
{
    ScenarioConfig sc = quietConfig();
    auto plan = parseFaultPlan("seed=8;burst.p=0.5;burst.size=24");
    ASSERT_TRUE(plan.ok());
    sc.faults = plan.value();
    const auto res = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(res.ok()) << res.status().str();
    EXPECT_EQ(res.value().shots, sc.maxShotsPerTimeline);
    EXPECT_GT(res.value().ledger.injectedBursts, 0u);
    EXPECT_GT(res.value().ledger.injectedBurstDetectors, 0u);
    // Bursts are adversarial extra defects, so more failures than the
    // clean run is expected — but never a crash or a hang.
    const auto clean = runScenarioExperimentChecked(quietConfig());
    ASSERT_TRUE(clean.ok());
    EXPECT_GE(res.value().failures, clean.value().failures);
}

TEST(FaultInjection, NoPlanAndNoDeadlineIsBitIdentical)
{
    // The strict opt-in guarantee: a config with no deadline and no
    // fault plan must produce exactly the pre-subsystem results (the
    // ladder path is never entered, the ledger stays empty).
    const auto res = runScenarioExperimentChecked(quietConfig());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.value().ledger.empty());
    const ScenarioResult legacy = runScenarioExperiment(quietConfig());
    EXPECT_EQ(res.value().failures, legacy.failures);
    EXPECT_EQ(res.value().shots, legacy.shots);
}

} // namespace
} // namespace surf
