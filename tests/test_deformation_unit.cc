/**
 * @file
 * Tests for the Code Deformation Unit (paper Sec. V): Alg. 1 defect
 * removal with balancing, Alg. 2 adaptive enlargement with the Delta_d
 * cap, shrink-back when defects subside, and randomized property tests
 * that every produced code is structurally and algebraically valid.
 */

#include <gtest/gtest.h>

#include "core/deformation_unit.hh"
#include "lattice/convert.hh"
#include "lattice/distance.hh"
#include "util/rng.hh"

namespace surf {
namespace {

DeformConfig
sdConfig(int d, int delta_d)
{
    DeformConfig cfg;
    cfg.d = d;
    cfg.deltaD = delta_d;
    return cfg;
}

TEST(DeformationUnit, NoDefectsIsIdentity)
{
    DeformationUnit unit(sdConfig(5, 4));
    const auto out = unit.apply({});
    EXPECT_TRUE(out.restored);
    EXPECT_EQ(out.result.distX, 5u);
    EXPECT_EQ(out.result.distZ, 5u);
    EXPECT_EQ(out.totalGrown(), 0);
    EXPECT_EQ(out.result.patch.numData(), 25u);
}

TEST(DeformationUnit, InteriorDefectTriggersEnlargement)
{
    DeformationUnit unit(sdConfig(5, 4));
    const auto out = unit.apply({Coord{5, 5}});
    EXPECT_TRUE(out.restored);
    EXPECT_GE(out.result.distX, 5u);
    EXPECT_GE(out.result.distZ, 5u);
    const auto v = out.result.patch.validate();
    EXPECT_TRUE(v.ok) << v.reason;
}

TEST(DeformationUnit, EnlargementIsAdaptiveNotFixed)
{
    // A single interior defect costs at most one unit of distance per
    // type, so at most one layer per axis is added (vs Q3DE's d layers).
    DeformationUnit unit(sdConfig(7, 4));
    const auto out = unit.apply({Coord{7, 7}});
    EXPECT_TRUE(out.restored);
    EXPECT_LE(out.totalGrown(), 2);
}

TEST(DeformationUnit, DeltaDCapLimitsGrowth)
{
    DeformationUnit unit(sdConfig(5, 1));
    // A row of defects across the middle costs several units of
    // Z-distance; the cap allows at most 1 layer per side.
    std::set<Coord> defects;
    for (int x = 1; x <= 9; x += 2)
        defects.insert(Coord{x, 5});
    const auto out = unit.apply(defects);
    for (int s = 0; s < 4; ++s)
        EXPECT_LE(out.grown[static_cast<size_t>(s)], 1);
    // With such a heavy defect line the cap is insufficient.
    EXPECT_FALSE(out.restored);
}

TEST(DeformationUnit, ShrinksBackWhenDefectsSubside)
{
    DeformationUnit unit(sdConfig(5, 4));
    const auto hit = unit.apply({Coord{5, 5}});
    EXPECT_GE(hit.totalGrown(), 1);
    const auto calm = unit.apply({});
    EXPECT_EQ(calm.totalGrown(), 0);
    EXPECT_EQ(calm.result.patch.numData(), 25u);
}

TEST(DeformationUnit, SyndromeDefect)
{
    DeformationUnit unit(sdConfig(5, 4));
    const auto out = unit.apply({Coord{4, 4}});
    EXPECT_TRUE(out.restored);
    const auto v = out.result.patch.validate();
    EXPECT_TRUE(v.ok) << v.reason;
    // SyndromeQ_RM keeps all data qubits of the original footprint alive.
    EXPECT_GE(out.result.patch.numData(), 25u);
}

TEST(DeformationUnit, BalancedBeatsMinimalDisableOnCorner)
{
    // Corner defect (paper fig. 8): balancing keeps a larger min distance
    // than ASC-S's minimal-disable choice.
    DeformConfig sd = sdConfig(5, 0);
    sd.enlargement = false;
    DeformConfig ascs = sd;
    ascs.policy = RemovalPolicy::MinimalDisable;

    const std::set<Coord> defect{Coord{9, 1}};
    const auto out_sd = DeformationUnit(sd).apply(defect);
    const auto out_ascs = DeformationUnit(ascs).apply(defect);
    const size_t min_sd = std::min(out_sd.result.distX, out_sd.result.distZ);
    const size_t min_ascs =
        std::min(out_ascs.result.distX, out_ascs.result.distZ);
    EXPECT_GE(min_sd, min_ascs);
    EXPECT_EQ(min_sd, 4u);
}

TEST(DeformationUnit, TraceRecordsInstructions)
{
    DeformationUnit unit(sdConfig(5, 4));
    const auto out = unit.apply({Coord{5, 5}});
    EXPECT_GE(out.trace.size(), 2u); // DataQ_RM + PatchQ_ADD layers
    bool has_rm = false, has_add = false;
    for (const auto &r : out.trace.records()) {
        if (r.name.rfind("DataQ_RM", 0) == 0)
            has_rm = true;
        if (r.name.rfind("PatchQ_ADD", 0) == 0)
            has_add = true;
    }
    EXPECT_TRUE(has_rm);
    EXPECT_TRUE(has_add);
}

TEST(DeformationUnit, DefectOnProspectiveScaleLayer)
{
    // Paper fig. 9c/d: a defect sitting in the layer that the enlargement
    // wants to add; the unit must still restore the distance (growing an
    // extra layer or removing the defect in the new layer).
    DeformationUnit unit(sdConfig(5, 4));
    std::set<Coord> defects{Coord{5, 5}};   // interior defect
    defects.insert(Coord{11, 5});           // just east of the patch
    const auto out = unit.apply(defects);
    EXPECT_TRUE(out.restored);
    const auto v = out.result.patch.validate();
    EXPECT_TRUE(v.ok) << v.reason;
}

/** Property test: random defect patterns always yield valid codes. */
class RandomDefectPattern : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomDefectPattern, AlwaysValidAndOracleAgrees)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 11);
    const int d = 5;
    DeformationUnit unit(sdConfig(d, 3));
    for (int trial = 0; trial < 6; ++trial) {
        // Sample 1-4 defective sites anywhere in/near the patch.
        std::set<Coord> defects;
        const int k = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < k; ++i) {
            const int x = static_cast<int>(rng.below(2 * d + 3)) - 1;
            const int y = static_cast<int>(rng.below(2 * d + 3)) - 1;
            const Coord c{x, y};
            if (c.isDataSite() || c.isCheckSite())
                defects.insert(c);
        }
        const auto out = unit.apply(defects);
        if (!out.result.alive)
            continue; // destroyed codes are legal outcomes for heavy hits
        const auto v = out.result.patch.validate();
        ASSERT_TRUE(v.ok) << v.reason << "\n" << out.result.patch.render();
        // Graph distance must agree with the exact oracle (skip when the
        // enlarged patch makes the 2^rank enumeration too expensive).
        if (out.result.patch.numData() <= 44) {
            ASSERT_EQ(exactDistance(out.result.patch, PauliType::X),
                      out.result.distX)
                << out.result.patch.render();
            ASSERT_EQ(exactDistance(out.result.patch, PauliType::Z),
                      out.result.distZ)
                << out.result.patch.render();
        }
        // The algebraic layer must accept the code (Theorem 1).
        const PatchAlgebra alg = toAlgebra(out.result.patch);
        const auto ar = alg.code.validate();
        ASSERT_TRUE(ar.ok) << ar.reason;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDefectPattern,
                         ::testing::Range(0, 12));

} // namespace
} // namespace surf
