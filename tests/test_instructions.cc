/**
 * @file
 * Tests for the four Surf-Deformer instructions (paper Sec. IV):
 * structure of the deformed codes, validity (Theorem 1 via the algebraic
 * layer), distance behavior matching the paper's figures 6-8, and the
 * commutativity claims of Sec. V-A.
 */

#include <map>

#include <gtest/gtest.h>

#include "core/instructions.hh"
#include "core/trace.hh"
#include "lattice/convert.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"

namespace surf {
namespace {

/** Finish a deformation: recompute supers + logical reps, validate. */
void
finalize(CodePatch &p)
{
    p.recomputeSupers();
    refreshLogicals(p);
    const auto r = p.validate();
    ASSERT_TRUE(r.ok) << r.reason;
}

TEST(DataQRm, RemovesQubitAndFormsSuperStabilizers)
{
    CodePatch p = squarePatch(5);
    const Coord q{5, 5}; // interior data qubit
    ASSERT_TRUE(isInteriorData(p, q));
    DeformTrace trace;
    dataQRm(p, q, &trace);
    finalize(p);

    EXPECT_EQ(p.numData(), 24u);
    EXPECT_FALSE(p.hasData(q));
    // Two super-stabilizers (one per type), each the product of the two
    // shrunk weight-3 gauges (paper fig. 6a).
    ASSERT_EQ(p.supers().size(), 2u);
    for (const auto &ss : p.supers())
        EXPECT_EQ(ss.members.size(), 2u);
    int weight3_gauges = 0;
    for (const auto &c : p.checks())
        if (c.role == CheckRole::Gauge && c.weight() == 3)
            ++weight3_gauges;
    EXPECT_EQ(weight3_gauges, 4);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.records()[0].s2g, 4);
    EXPECT_EQ(trace.records()[0].g2g, 4);
}

TEST(DataQRm, AlgebraRemainsValidSubsystemCode)
{
    CodePatch p = squarePatch(5);
    dataQRm(p, {5, 5});
    finalize(p);
    const PatchAlgebra alg = toAlgebra(p);
    const auto r = alg.code.validate();
    EXPECT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(alg.code.numLogical(), 1u);
    // One gauge qubit: the removal trades one data qubit for one gauge DOF.
    EXPECT_EQ(alg.code.numGauge(), 1u);
}

TEST(DataQRm, SingleRemovalCostsOneUnitOfDistance)
{
    CodePatch p = squarePatch(5);
    dataQRm(p, {5, 5});
    finalize(p);
    // An interior data removal reduces each distance by at most one.
    EXPECT_GE(graphDistance(p, PauliType::X).distance, 4u);
    EXPECT_GE(graphDistance(p, PauliType::Z).distance, 4u);
    EXPECT_EQ(exactDistance(p, PauliType::X),
              graphDistance(p, PauliType::X).distance);
    EXPECT_EQ(exactDistance(p, PauliType::Z),
              graphDistance(p, PauliType::Z).distance);
}

TEST(SyndromeQRm, OctagonAndDirectGauges)
{
    CodePatch p = squarePatch(5);
    // Interior syndrome qubit: vertex (4,4) in a d=5 patch.
    const Coord a{4, 4};
    ASSERT_TRUE(isInteriorSyndrome(p, a));
    const int idx = checkAt(p, a);
    const PauliType t = p.checks()[static_cast<size_t>(idx)].type;
    DeformTrace trace;
    syndromeQRm(p, a, &trace);
    finalize(p);

    EXPECT_EQ(p.numData(), 25u); // no data qubits lost
    EXPECT_EQ(checkAt(p, a), -1);
    // Four weight-1 directly-measured gauges of the removed check's type.
    int direct = 0;
    for (const auto &c : p.checks())
        if (c.role == CheckRole::Gauge && !c.ancilla) {
            EXPECT_EQ(c.type, t);
            EXPECT_EQ(c.weight(), 1u);
            ++direct;
        }
    EXPECT_EQ(direct, 4);
    // Two super-stabilizers: the octagon (weight 8) of the opposite type
    // and the reconstructed plaquette (weight 4) of the removed type.
    ASSERT_EQ(p.supers().size(), 2u);
    size_t w_min = 99, w_max = 0;
    for (const auto &g : p.stabilizerGenerators()) {
        if (!g.isSuper)
            continue;
        w_min = std::min(w_min, g.support.size());
        w_max = std::max(w_max, g.support.size());
    }
    EXPECT_EQ(w_min, 4u);
    EXPECT_EQ(w_max, 8u);
}

TEST(SyndromeQRm, PreservesDistanceBetterThanDataRemoval)
{
    // Paper fig. 7a: ASC-S removes the 4 adjacent data qubits giving
    // Z- and X-distance 3 on a d=5 code; SyndromeQ_RM keeps one type at 5.
    CodePatch sd = squarePatch(5);
    const Coord a{4, 4};
    const PauliType removed_type =
        sd.checks()[static_cast<size_t>(checkAt(sd, a))].type;
    syndromeQRm(sd, a);
    finalize(sd);
    const size_t sd_x = graphDistance(sd, PauliType::X).distance;
    const size_t sd_z = graphDistance(sd, PauliType::Z).distance;
    // The distance of the removed check's own type is what degrades; the
    // opposite type keeps full distance 5 (paper: Z-distance 5, X 3).
    const size_t kept =
        (removed_type == PauliType::X) ? sd_z : sd_x;
    const size_t hurt =
        (removed_type == PauliType::X) ? sd_x : sd_z;
    EXPECT_EQ(kept, 5u);
    EXPECT_EQ(hurt, 3u);

    CodePatch ascs = squarePatch(5);
    const auto support =
        ascs.checks()[static_cast<size_t>(checkAt(ascs, a))].support;
    for (const Coord &q : support)
        dataQRm(ascs, q);
    if (const int left = checkAt(ascs, a); left >= 0) {
        // The defective check usually dies when its support empties; if a
        // remnant survives, drop it explicitly.
        std::vector<bool> dead(ascs.checks().size(), false);
        dead[static_cast<size_t>(left)] = true;
        ascs.compactChecks(dead);
    }
    finalize(ascs);
    EXPECT_EQ(graphDistance(ascs, PauliType::X).distance, 3u);
    EXPECT_EQ(graphDistance(ascs, PauliType::Z).distance, 3u);

    // Exact-oracle confirmation on both deformations.
    EXPECT_EQ(exactDistance(sd, PauliType::X), sd_x);
    EXPECT_EQ(exactDistance(sd, PauliType::Z), sd_z);
}

TEST(Instructions, DataAndSyndromeRemovalsCommute)
{
    // Paper Sec. V-A: DataQ_RM and SyndromeQ_RM commute. Apply in both
    // orders and compare the resulting stabilizer generators.
    auto build = [](bool data_first) {
        CodePatch p = squarePatch(7);
        const Coord q{9, 9};
        const Coord a{6, 6};
        if (data_first) {
            dataQRm(p, q);
            syndromeQRm(p, a);
        } else {
            syndromeQRm(p, a);
            dataQRm(p, q);
        }
        p.recomputeSupers();
        return p;
    };
    const CodePatch a = build(true);
    const CodePatch b = build(false);
    auto gens_of = [](const CodePatch &p) {
        std::vector<std::vector<Coord>> gens;
        for (const auto &g : p.stabilizerGenerators())
            gens.push_back(g.support);
        std::sort(gens.begin(), gens.end());
        return gens;
    };
    EXPECT_EQ(gens_of(a), gens_of(b));
    EXPECT_EQ(a.numData(), b.numData());
}

TEST(PinData, BoundaryRemovalKeepsValidity)
{
    CodePatch p = squarePatch(5);
    const Coord q{5, 1}; // mid north-boundary data qubit
    ASSERT_FALSE(isInteriorData(p, q));
    const auto removed = pinData(p, q, PauliType::X);
    finalize(p);
    EXPECT_EQ(removed.size(), 1u); // fixing X here disables only q
    EXPECT_FALSE(p.hasData(q));
    // Z-distance intact (north-south chains route around the dent).
    EXPECT_EQ(graphDistance(p, PauliType::Z).distance, 5u);
    EXPECT_EQ(exactDistance(p, PauliType::Z), 5u);
    EXPECT_EQ(exactDistance(p, PauliType::X),
              graphDistance(p, PauliType::X).distance);
}

TEST(PinData, WrongFixCascadesMoreQubits)
{
    // Fixing the boundary-type operator on a boundary qubit triggers the
    // weight-1 cascade ("disabled" qubits of paper fig. 8).
    CodePatch px = squarePatch(5);
    const auto removed_x = pinData(px, {5, 1}, PauliType::X);
    CodePatch pz = squarePatch(5);
    const auto removed_z = pinData(pz, {5, 1}, PauliType::Z);
    EXPECT_LT(removed_x.size(), removed_z.size());
    finalize(pz);
    // The cascade costs Z-distance (ASC-S behavior).
    EXPECT_LT(graphDistance(pz, PauliType::Z).distance, 5u);
}

TEST(PinData, BoundaryFixChoiceChangesDistances)
{
    // Mid north-boundary data qubit of a d=5 patch (paper fig. 8): fixing
    // X keeps both distances high; fixing Z cascades and cuts a distance.
    const Coord q{5, 1};
    std::map<char, std::pair<size_t, size_t>> dists;
    for (PauliType fix : {PauliType::X, PauliType::Z}) {
        CodePatch p = squarePatch(5);
        pinData(p, q, fix);
        p.recomputeSupers();
        dists[typeChar(fix)] = {graphDistance(p, PauliType::X).distance,
                                graphDistance(p, PauliType::Z).distance};
    }
    const auto [xx, xz] = dists['X'];
    const auto [zx, zz] = dists['Z'];
    // Each boundary removal costs one unit somewhere; the fix choice
    // selects which axis pays (the balancing function's raw material).
    EXPECT_EQ(xz, 5u); // fixing X preserves the full Z-distance
    EXPECT_EQ(xx, 4u); // ...at the cost of one unit of X-distance
    EXPECT_LT(zz, 5u); // fixing Z cascades into the Z-distance instead
    EXPECT_GE(std::min(xx, xz), std::min(zx, zz));
}

TEST(PinData, CornerChoicesTradeAxes)
{
    // NE corner data qubit of a d=5 patch: both fixes reach min-distance
    // 4 in this geometry but trade which axis absorbs the loss; the
    // balanced policy must never do worse than either.
    const Coord corner{9, 1};
    size_t best_min = 0;
    for (PauliType fix : {PauliType::X, PauliType::Z}) {
        CodePatch p = squarePatch(5);
        pinData(p, corner, fix);
        p.recomputeSupers();
        const size_t dx_ = graphDistance(p, PauliType::X).distance;
        const size_t dz_ = graphDistance(p, PauliType::Z).distance;
        best_min = std::max(best_min, std::min(dx_, dz_));
    }
    EXPECT_EQ(best_min, 4u);
}

TEST(RemoveBoundaryCheck, SyndromeOnBoundary)
{
    CodePatch p = squarePatch(5);
    // North boundary Z half-check ancilla.
    Coord half{-1, -1};
    for (const auto &c : p.checks())
        if (c.weight() == 2 && c.ancilla && c.ancilla->y < p.yMin()) {
            half = *c.ancilla;
            break;
        }
    ASSERT_TRUE(half.isCheckSite());
    const auto support =
        p.checks()[static_cast<size_t>(checkAt(p, half))].support;
    const auto removed = removeBoundaryCheck(p, half, support.front());
    EXPECT_GE(removed.size(), 1u);
    finalize(p);
    EXPECT_EQ(checkAt(p, half), -1);
    EXPECT_GE(codeDistance(p), 4u);
}

TEST(Instructions, MultipleAdjacentDataRemovals)
{
    // A 2x1 block of removed interior data qubits merges into one larger
    // cluster; the code stays valid and the oracle agrees with the graph.
    CodePatch p = squarePatch(7);
    dataQRm(p, {7, 7});
    dataQRm(p, {9, 7});
    finalize(p);
    EXPECT_EQ(p.numData(), 47u);
    EXPECT_EQ(exactDistance(p, PauliType::X),
              graphDistance(p, PauliType::X).distance);
    EXPECT_EQ(exactDistance(p, PauliType::Z),
              graphDistance(p, PauliType::Z).distance);
    const PatchAlgebra alg = toAlgebra(p);
    const auto r = alg.code.validate();
    EXPECT_TRUE(r.ok) << r.reason;
}

TEST(Instructions, OverlappingSyndromeRemovalsKeepBothSupers)
{
    // Two diagonal syndrome removals sharing a data qubit: the kernel
    // formulation must keep the two reconstructed plaquettes independent
    // (the regions' rings merge, but each removed check stays inferable).
    CodePatch p = squarePatch(5);
    const Coord a{4, 4}, b{6, 6};
    ASSERT_EQ(vertexType(a), vertexType(b));
    const PauliType t = vertexType(a);
    syndromeQRm(p, a);
    syndromeQRm(p, b);
    finalize(p);
    // Two same-type reconstructed plaquettes plus one merged opposite ring.
    int own_supers = 0, opp_supers = 0;
    for (const auto &ss : p.supers())
        (ss.type == t ? own_supers : opp_supers)++;
    EXPECT_EQ(own_supers, 2);
    EXPECT_EQ(opp_supers, 1);
    const PatchAlgebra alg = toAlgebra(p);
    const auto r = alg.code.validate();
    EXPECT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(exactDistance(p, PauliType::X),
              graphDistance(p, PauliType::X).distance);
    EXPECT_EQ(exactDistance(p, PauliType::Z),
              graphDistance(p, PauliType::Z).distance);
}

} // namespace
} // namespace surf
