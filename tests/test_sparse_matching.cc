/**
 * @file
 * Equivalence tests for the sparse on-demand MWPM backend against the
 * dense all-pairs backend: bit-identical predictions on random
 * graphlike DEMs, on deformed-patch circuits at both basis tags, and
 * query-level agreement of the truncated Dijkstra with the dense
 * tables. Also: truncation fallback behavior, union-find invariance,
 * and the d=13 smoke test only the sparse backend can afford per-epoch.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/strategies.hh"
#include "burst_syndromes.hh"
#include "decode/blossom.hh"
#include "decode/memory_experiment.hh"
#include "decode/mwpm.hh"
#include "decode/sparse_blossom.hh"
#include "decode/union_find.hh"
#include "lattice/rotated.hh"
#include "scenario/scenario_experiment.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"
#include "util/rng.hh"

namespace surf {
namespace {

/** Random graphlike DEM: per-tag detector sets with random pairwise and
 *  boundary edges (connected enough to be interesting, but components
 *  and boundary-free islands are allowed and exercised). */
DetectorErrorModel
randomDem(Rng &rng)
{
    DetectorErrorModel dem;
    dem.numDetectors = 12 + rng.below(28);
    dem.detectorTag.resize(dem.numDetectors);
    std::vector<int> by_tag[2];
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        dem.detectorTag[d] = static_cast<uint8_t>(rng.below(2));
        by_tag[dem.detectorTag[d]].push_back(static_cast<int>(d));
    }
    for (int tag = 0; tag < 2; ++tag) {
        const auto &dets = by_tag[tag];
        if (dets.empty())
            continue;
        const size_t n_edges = dets.size() + rng.below(2 * dets.size() + 1);
        for (size_t e = 0; e < n_edges; ++e) {
            DemEdge edge;
            edge.a = dets[rng.below(dets.size())];
            // ~1 in 5 edges touch the boundary.
            edge.b = rng.below(5) == 0
                         ? -1
                         : dets[rng.below(dets.size())];
            if (edge.a == edge.b)
                continue;
            edge.p = 1e-4 + 0.3 * rng.uniform();
            edge.flipsObs = rng.below(2) == 0;
            dem.edges[tag].push_back(edge);
        }
    }
    return dem;
}

TEST(SparseMatching, BitIdenticalToDenseOnRandomDems)
{
    Rng rng(0xfeedf00d);
    for (int trial = 0; trial < 30; ++trial) {
        const DetectorErrorModel dem = randomDem(rng);
        for (uint8_t tag : {0, 1}) {
            const MwpmDecoder dense(dem, tag, nullptr,
                                    MatchingBackend::Dense);
            MwpmDecoder sparse(dem, tag, nullptr, MatchingBackend::Sparse);
            ASSERT_EQ(sparse.backend(), MatchingBackend::Sparse);
            // Fully exact sparse mode: bit-identity is guaranteed for
            // every syndrome, including ties between equal-weight
            // matchings (which random weights do produce).
            sparse.setTruncation(SIZE_MAX);
            MwpmScratch ds, ss;
            for (int shot = 0; shot < 40; ++shot) {
                std::set<uint32_t> fired_set;
                const size_t n = rng.below(12);
                for (size_t i = 0; i < n; ++i)
                    fired_set.insert(
                        static_cast<uint32_t>(rng.below(dem.numDetectors)));
                const std::vector<uint32_t> fired(fired_set.begin(),
                                                  fired_set.end());
                ASSERT_EQ(dense.decode(fired.data(), fired.size(), ds),
                          sparse.decode(fired.data(), fired.size(), ss))
                    << "trial " << trial << " tag " << int(tag) << " shot "
                    << shot;
            }
        }
    }
}

TEST(SparseMatching, BitIdenticalToDenseOnDeformedPatchBothBases)
{
    // A Surf-Deformer-deformed patch (removal + enlargement around a
    // burst region) exercises irregular boundaries and seamed weights.
    const auto out = applyStrategy(Strategy::SurfDeformer, 5, 2,
                                   {{5, 5}, {6, 6}});
    ASSERT_TRUE(out.alive);
    for (PauliType basis : {PauliType::Z, PauliType::X}) {
        MemorySpec spec;
        spec.rounds = 5;
        spec.basis = basis;
        NoiseParams noise;
        noise.p = 3e-3;
        const BuiltCircuit built =
            buildMemoryCircuit(out.patch, spec, noise);
        const auto dem = buildDem(built.circuit, basis);
        const uint8_t tag = (basis == PauliType::Z) ? 1 : 0;
        const MwpmDecoder dense(dem, tag, nullptr, MatchingBackend::Dense);
        MwpmDecoder sparse(dem, tag, nullptr, MatchingBackend::Sparse);
        // Fully exact sparse queries: bit-identity must hold on every
        // sampled shot, whatever its defect count.
        sparse.setTruncation(SIZE_MAX);
        FrameSimulator sim(built.circuit, 1500, 0xd0d0);
        const SparseSyndromes syndromes = sim.sparseFiredDetectors();
        MwpmDecoder deflt(dem, tag, nullptr, MatchingBackend::Sparse);
        MwpmScratch ds, ss;
        size_t default_disagree = 0;
        for (size_t s = 0; s < sim.shots(); ++s) {
            const bool dn =
                dense.decode(syndromes.data(s), syndromes.count(s), ds);
            ASSERT_EQ(dn, sparse.decode(syndromes.data(s),
                                        syndromes.count(s), ss))
                << "basis " << (basis == PauliType::Z ? "Z" : "X")
                << " shot " << s;
            // The default config (truncated, radius-bounded) returns a
            // minimum-weight matching too; it may only differ from the
            // dense pick on equal-weight ties, which are rare on real
            // surface-code graphs.
            default_disagree +=
                dn != deflt.decode(syndromes.data(s), syndromes.count(s),
                                   ss);
        }
        EXPECT_LE(default_disagree, sim.shots() / 100)
            << "default sparse config diverges from dense far more often "
               "than tie-breaking can explain";
    }
}

TEST(SparseMatching, MemoizedRowsMatchDenseTables)
{
    MemorySpec spec;
    spec.rounds = 4;
    NoiseParams noise;
    noise.p = 2e-3;
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(5), spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const DecodingGraph dense(dem, 1, nullptr, MatchingBackend::Dense);
    const DecodingGraph exact_rows(dem, 1, nullptr, MatchingBackend::Sparse);
    const DecodingGraph bounded_rows(dem, 1, nullptr,
                                     MatchingBackend::Sparse);
    const int n = static_cast<int>(dense.numNodes());
    const int bnode = dense.boundaryNode();
    ASSERT_GT(n, 10);

    DijkstraScratch sc;
    for (int src = 0; src < n; src += 3) {
        // Exact rows: bit-identical to the dense table, entry for
        // entry. (Parity witnesses are compared for targets >= src,
        // where the dense table stores the src-rooted path.)
        const auto ex_p = exact_rows.row(src, true, sc);
        const DecodingGraph::Row &ex = *ex_p;
        EXPECT_EQ(ex.radius, DecodingGraph::kInf);
        for (int t = 0; t <= n; ++t) {
            const double dd = dense.dist(src, t);
            if (std::isfinite(dd)) {
                ASSERT_EQ(static_cast<double>(
                              ex.dist[static_cast<size_t>(t)]),
                          dd)
                    << "src " << src << " target " << t;
                if (t >= src)
                    ASSERT_EQ(ex.par[static_cast<size_t>(t)] != 0,
                              dense.obsParity(src, t))
                        << "src " << src << " target " << t;
            } else {
                ASSERT_FALSE(std::isfinite(
                    ex.dist[static_cast<size_t>(t)]));
            }
        }

        // Bounded rows: radius-capped at 2 d(src, B); everything within
        // the radius is present with the dense table's exact value.
        const auto bd_p = bounded_rows.row(src, false, sc);
        const DecodingGraph::Row &bd = *bd_p;
        const double db = dense.dist(src, bnode);
        ASSERT_TRUE(std::isfinite(db));
        EXPECT_GE(bd.radius, 2.0 * db);
        ASSERT_TRUE(std::isfinite(bd.dist[static_cast<size_t>(bnode)]));
        for (int t = 0; t <= n; ++t) {
            const double dd = dense.dist(src, t);
            if (std::isfinite(dd) && dd <= 2.0 * db)
                ASSERT_EQ(static_cast<double>(
                              bd.dist[static_cast<size_t>(t)]),
                          dd)
                    << "src " << src << " target " << t;
        }

        // Asking the bounded graph for an exact row upgrades in place.
        const auto up_p = bounded_rows.row(src, true, sc);
        const DecodingGraph::Row &up = *up_p;
        EXPECT_EQ(up.radius, DecodingGraph::kInf);
        for (int t = 0; t <= n; ++t)
            ASSERT_EQ(static_cast<double>(up.dist[static_cast<size_t>(t)]),
                      static_cast<double>(
                          ex.dist[static_cast<size_t>(t)]));
    }
    EXPECT_GT(exact_rows.rowsBuilt(), 0u);
}

TEST(SparseMatching, TinyTruncationStillDecodesAndFallsBackExactly)
{
    // K = 1 forces heavy truncation; the exact fallback must kick in
    // whenever the truncated matching graph has no perfect matching, so
    // predictions stay valid (and, for k <= 2, bit-identical to dense).
    MemorySpec spec;
    spec.rounds = 3;
    NoiseParams noise;
    noise.p = 2e-2; // dense syndromes: plenty of k > 2 shots
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(5), spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder dense(dem, 1, nullptr, MatchingBackend::Dense);
    MwpmDecoder sparse(dem, 1, nullptr, MatchingBackend::Sparse);
    sparse.setTruncation(1);
    EXPECT_EQ(sparse.truncation(), 1u);
    FrameSimulator sim(built.circuit, 400, 99);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    MwpmScratch ds, ss;
    size_t big_shots = 0;
    for (size_t s = 0; s < sim.shots(); ++s) {
        const bool sp =
            sparse.decode(syndromes.data(s), syndromes.count(s), ss);
        const bool dn =
            dense.decode(syndromes.data(s), syndromes.count(s), ds);
        if (syndromes.count(s) <= 2)
            EXPECT_EQ(sp, dn) << "shot " << s;
        else
            ++big_shots;
    }
    EXPECT_GT(big_shots, 20u) << "noise too low to exercise truncation";

    // Flipping the same decoder to fully-exact afterwards upgrades its
    // memoized truncated rows in place (old rows are retired, not
    // freed under readers) and restores bit-identity with dense.
    sparse.setTruncation(SIZE_MAX);
    for (size_t s = 0; s < sim.shots(); ++s)
        ASSERT_EQ(sparse.decode(syndromes.data(s), syndromes.count(s), ss),
                  dense.decode(syndromes.data(s), syndromes.count(s), ds))
            << "post-upgrade shot " << s;
}

TEST(SparseMatching, UnionFindUnchangedByBackendChoice)
{
    // The union-find decoder shares no state with the matching backend;
    // its predictions must be identical however the MWPM graphs are
    // built, and across scratch reuse after the workspace rework.
    const auto out =
        applyStrategy(Strategy::SurfDeformer, 5, 2, {{4, 5}});
    ASSERT_TRUE(out.alive);
    MemorySpec spec;
    spec.rounds = 4;
    NoiseParams noise;
    noise.p = 5e-3;
    const BuiltCircuit built = buildMemoryCircuit(out.patch, spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const UnionFindDecoder uf(dem, 1);
    const MwpmDecoder mwpm_dense(dem, 1, nullptr, MatchingBackend::Dense);
    const MwpmDecoder mwpm_sparse(dem, 1, nullptr, MatchingBackend::Sparse);
    FrameSimulator sim(built.circuit, 500, 3);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    UfScratch reused;
    MwpmScratch ms;
    for (size_t s = 0; s < sim.shots(); ++s) {
        UfScratch fresh;
        const bool a =
            uf.decode(syndromes.data(s), syndromes.count(s), reused);
        const bool b =
            uf.decode(syndromes.data(s), syndromes.count(s), fresh);
        ASSERT_EQ(a, b) << "shot " << s;
        // Interleave MWPM decodes of both backends to prove no shared
        // mutable state leaks into the union-find result.
        (void)mwpm_dense.decode(syndromes.data(s), syndromes.count(s), ms);
        (void)mwpm_sparse.decode(syndromes.data(s), syndromes.count(s), ms);
    }
}

TEST(SparseBlossom, SolverMatchesDenseBlossomOnRandomGraphs)
{
    // The adjacency-list blossom solver must be exact: on every random
    // sparse graph it reports a perfect matching iff the dense blossom
    // does, with identical total weight (the matchings themselves may
    // differ among equal-weight optima).
    Rng rng(0xb1055);
    SparseMatcherScratch scratch;
    std::vector<int> smate;
    for (int trial = 0; trial < 400; ++trial) {
        const int n = 2 * static_cast<int>(1 + rng.below(10)); // 2..20
        std::vector<SparseMatchEdge> edges;
        std::vector<int64_t> w(static_cast<size_t>(n) * n, kMatchForbidden);
        // Sparse-ish edge count, duplicates allowed (cheapest wins).
        const size_t m = rng.below(static_cast<uint64_t>(2 * n) + 1);
        for (size_t e = 0; e < m; ++e) {
            const int a = static_cast<int>(rng.below(n));
            const int b = static_cast<int>(rng.below(n));
            if (a == b)
                continue;
            const auto wt = static_cast<int64_t>(rng.below(1000));
            edges.push_back({a, b, wt});
            auto &slot = w[static_cast<size_t>(a) * n + b];
            auto &slot2 = w[static_cast<size_t>(b) * n + a];
            slot = std::min(slot, wt);
            slot2 = std::min(slot2, wt);
        }
        std::vector<int> dmate;
        const bool dok = minWeightPerfectMatching(n, w, dmate);
        int64_t stotal = -1;
        const bool sok = sparseMinWeightPerfectMatching(n, edges, scratch,
                                                        smate, &stotal);
        ASSERT_EQ(dok, sok) << "trial " << trial << " n " << n;
        if (!dok)
            continue;
        int64_t dtotal = 0;
        for (int v = 0; v < n; ++v) {
            ASSERT_GE(smate[static_cast<size_t>(v)], 0);
            ASSERT_EQ(smate[static_cast<size_t>(
                          smate[static_cast<size_t>(v)])],
                      v)
                << "trial " << trial;
            if (dmate[static_cast<size_t>(v)] > v)
                dtotal += w[static_cast<size_t>(v) * n +
                            dmate[static_cast<size_t>(v)]];
        }
        ASSERT_EQ(stotal, dtotal) << "trial " << trial << " n " << n;
    }
}

TEST(SparseBlossom, SolverHandlesDenseTieHeavyGraphs)
{
    // Near-complete graphs with tiny weight ranges produce many blossoms
    // and equal-weight optima — the stress case for contraction and
    // expansion. Weight equality with the dense blossom must still hold.
    Rng rng(0x70505);
    SparseMatcherScratch scratch;
    std::vector<int> smate;
    for (int trial = 0; trial < 150; ++trial) {
        const int n = 2 * static_cast<int>(2 + rng.below(7)); // 4..16
        std::vector<SparseMatchEdge> edges;
        std::vector<int64_t> w(static_cast<size_t>(n) * n, kMatchForbidden);
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b) {
                if (rng.below(5) == 0)
                    continue; // drop ~20% of pairs
                const auto wt = static_cast<int64_t>(rng.below(4));
                edges.push_back({a, b, wt});
                w[static_cast<size_t>(a) * n + b] = wt;
                w[static_cast<size_t>(b) * n + a] = wt;
            }
        std::vector<int> dmate;
        const bool dok = minWeightPerfectMatching(n, w, dmate);
        int64_t stotal = -1;
        const bool sok = sparseMinWeightPerfectMatching(n, edges, scratch,
                                                        smate, &stotal);
        ASSERT_EQ(dok, sok) << "trial " << trial << " n " << n;
        if (!dok)
            continue;
        int64_t dtotal = 0;
        for (int v = 0; v < n; ++v)
            if (dmate[static_cast<size_t>(v)] > v)
                dtotal += w[static_cast<size_t>(v) * n +
                            dmate[static_cast<size_t>(v)]];
        ASSERT_EQ(stotal, dtotal) << "trial " << trial << " n " << n;
    }
}

TEST(SparseBlossom, WeightEqualsDenseOnRandomDems)
{
    // The matrix-free matcher must produce matchings of exactly the
    // dense blossom's total weight on every shot — including graphs
    // with boundary-free islands (forbidden pairs) and boundary-heavy
    // regions. Predictions may differ only among equal-weight optima.
    Rng rng(0xbeefb105);
    size_t checked = 0, pred_diff = 0;
    for (int trial = 0; trial < 30; ++trial) {
        const DetectorErrorModel dem = randomDem(rng);
        for (uint8_t tag : {0, 1}) {
            const MwpmDecoder dense(dem, tag, nullptr,
                                    MatchingBackend::Dense);
            const MwpmDecoder sb(dem, tag, nullptr,
                                 MatchingBackend::SparseBlossom);
            ASSERT_EQ(sb.backend(), MatchingBackend::SparseBlossom);
            MwpmScratch ds, ss;
            for (int shot = 0; shot < 40; ++shot) {
                std::set<uint32_t> fired_set;
                const size_t n = rng.below(14);
                for (size_t i = 0; i < n; ++i)
                    fired_set.insert(
                        static_cast<uint32_t>(rng.below(dem.numDetectors)));
                const std::vector<uint32_t> fired(fired_set.begin(),
                                                  fired_set.end());
                const bool dp = dense.decode(fired.data(), fired.size(), ds);
                const bool sp = sb.decode(fired.data(), fired.size(), ss);
                ASSERT_EQ(ds.lastWeight, ss.lastWeight)
                    << "trial " << trial << " tag " << int(tag) << " shot "
                    << shot << " k " << fired.size();
                ++checked;
                pred_diff += dp != sp;
            }
        }
    }
    // Differing predictions can only come from equal-weight optima with
    // different parity; they must stay rare even on random weights.
    EXPECT_LE(pred_diff, checked / 20)
        << "matcher diverges from dense far more often than equal-weight "
           "ties can explain";
}

TEST(SparseBlossom, WeightEqualsDenseOnDeformedPatchBothBases)
{
    const auto out = applyStrategy(Strategy::SurfDeformer, 5, 2,
                                   {{5, 5}, {6, 6}});
    ASSERT_TRUE(out.alive);
    for (PauliType basis : {PauliType::Z, PauliType::X}) {
        MemorySpec spec;
        spec.rounds = 5;
        spec.basis = basis;
        NoiseParams noise;
        noise.p = 4e-3;
        const BuiltCircuit built = buildMemoryCircuit(out.patch, spec, noise);
        const auto dem = buildDem(built.circuit, basis);
        const uint8_t tag = (basis == PauliType::Z) ? 1 : 0;
        const MwpmDecoder dense(dem, tag, nullptr, MatchingBackend::Dense);
        const MwpmDecoder sb(dem, tag, nullptr,
                             MatchingBackend::SparseBlossom);
        FrameSimulator sim(built.circuit, 1200, 0xc0de);
        const SparseSyndromes syndromes = sim.sparseFiredDetectors();
        MwpmScratch ds, ss;
        size_t pred_diff = 0;
        for (size_t s = 0; s < sim.shots(); ++s) {
            const bool dp =
                dense.decode(syndromes.data(s), syndromes.count(s), ds);
            const bool sp =
                sb.decode(syndromes.data(s), syndromes.count(s), ss);
            ASSERT_EQ(ds.lastWeight, ss.lastWeight)
                << "basis " << (basis == PauliType::Z ? "Z" : "X")
                << " shot " << s << " k " << syndromes.count(s);
            pred_diff += dp != sp;
        }
        // Real surface-code weights rarely tie: predictions should
        // agree essentially always.
        EXPECT_LE(pred_diff, sim.shots() / 100);
    }
}

TEST(SparseBlossom, BurstSyndromeWeightEqualityAtHighDefectCounts)
{
    // High-defect burst syndromes on a deformed d=9 patch: clusters of
    // 16..96 fired detectors (the paper's cosmic-ray events light up
    // whole regions). Weight equality with the dense blossom must hold
    // at every size, through the Sparse backend's dispatch as well.
    const auto out = applyStrategy(Strategy::SurfDeformer, 9, 2, {{8, 9}});
    ASSERT_TRUE(out.alive);
    MemorySpec spec;
    spec.rounds = 9;
    NoiseParams noise;
    noise.p = 2e-3;
    const BuiltCircuit built = buildMemoryCircuit(out.patch, spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder dense(dem, 1, nullptr, MatchingBackend::Dense);
    const MwpmDecoder sb(dem, 1, nullptr, MatchingBackend::SparseBlossom);
    MwpmDecoder dispatch(dem, 1, nullptr, MatchingBackend::Sparse);
    dispatch.setBlossomThreshold(8);
    Rng rng(0xbadc0de);
    MwpmScratch ds, ss, ps;
    for (size_t target : {16u, 32u, 64u, 96u}) {
        for (int rep = 0; rep < 8; ++rep) {
            const std::vector<uint32_t> fired =
                benchutil::burstCluster(dem, dense.graph(), target, rng);
            ASSERT_GE(fired.size(), target / 2);
            (void)dense.decode(fired.data(), fired.size(), ds);
            (void)sb.decode(fired.data(), fired.size(), ss);
            (void)dispatch.decode(fired.data(), fired.size(), ps);
            ASSERT_EQ(ds.lastWeight, ss.lastWeight)
                << "cluster " << target << " rep " << rep << " k "
                << fired.size();
            ASSERT_EQ(ds.lastWeight, ps.lastWeight)
                << "dispatch path, cluster " << target << " rep " << rep;
        }
    }
}

TEST(SparseBlossom, ScenarioFailureCountsIdenticalAcrossBackends)
{
    // The cosmic-ray scenario workload decoded with each of the three
    // matching backends: identical failure counts and per-epoch
    // mismatch tallies. (Weight equality is exact; on this workload the
    // equal-weight tie-breaks happen to agree as well.)
    ScenarioConfig cfg;
    cfg.timeline.strategy = Strategy::SurfDeformer;
    cfg.timeline.d = 5;
    cfg.timeline.deltaD = 2;
    cfg.timeline.horizonRounds = 60;
    cfg.timeline.windowRounds = 10;
    cfg.timeline.maxEpochRounds = 10;
    cfg.defectModel.durationSec = 20e-6;
    cfg.defectModel.regionDiameter = 2;
    cfg.eventRateScale = 100000.0;
    cfg.numTimelines = 4;
    cfg.noise.p = 4e-3;
    cfg.maxShotsPerTimeline = 96;
    cfg.batchShots = 96;
    cfg.seed = 0x5ce7a210;
    cfg.decoder = DecoderKind::Mwpm;

    bool have_ref = false;
    uint64_t ref_failures = 0;
    std::vector<uint64_t> ref_mism;
    for (MatchingBackend b :
         {MatchingBackend::Dense, MatchingBackend::Sparse,
          MatchingBackend::SparseBlossom}) {
        cfg.matching = b;
        const ScenarioResult res = runScenarioExperiment(cfg);
        EXPECT_GT(res.shots, 0u);
        std::vector<uint64_t> mism;
        for (const auto &tl : res.timelines)
            for (const auto &ep : tl.epochs)
                mism.push_back(ep.mismatches);
        if (!have_ref) {
            ref_failures = res.failures;
            ref_mism = mism;
            have_ref = true;
            EXPECT_GT(res.failures, 0u)
                << "workload too quiet to distinguish backends";
        } else {
            EXPECT_EQ(res.failures, ref_failures)
                << "backend " << static_cast<int>(b);
            EXPECT_EQ(mism, ref_mism) << "backend " << static_cast<int>(b);
        }
    }
}

TEST(SparseMatching, RowBudgetBoundsResidencyWithoutChangingResults)
{
    // The LRU row budget caps how many memoized Dijkstra rows stay
    // resident. Rows are pure functions of their source node, so a
    // budgeted decoder must predict identically (and report identical
    // matched weights) to an unbudgeted one on every shot.
    MemorySpec spec;
    spec.rounds = 5;
    NoiseParams noise;
    noise.p = 8e-3; // busy syndromes: many distinct row sources
    const BuiltCircuit built = buildMemoryCircuit(squarePatch(7), spec, noise);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder free_rows(dem, 1, nullptr, MatchingBackend::Sparse);
    MwpmDecoder budgeted(dem, 1, nullptr, MatchingBackend::Sparse);
    budgeted.setRowBudget(12);
    EXPECT_EQ(budgeted.graph().rowBudget(), 12u);
    FrameSimulator sim(built.circuit, 600, 0xb0d6e7);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    MwpmScratch fs, bs;
    for (size_t s = 0; s < sim.shots(); ++s) {
        const bool a =
            free_rows.decode(syndromes.data(s), syndromes.count(s), fs);
        const bool b =
            budgeted.decode(syndromes.data(s), syndromes.count(s), bs);
        ASSERT_EQ(a, b) << "shot " << s;
        ASSERT_EQ(fs.lastWeight, bs.lastWeight) << "shot " << s;
        ASSERT_LE(budgeted.graph().rowsResident(), 12u) << "shot " << s;
    }
    // The budget forced evictions: more rows were built than can stay.
    EXPECT_GT(budgeted.graph().rowsBuilt(),
              budgeted.graph().rowsResident());
    EXPECT_GT(free_rows.graph().rowsResident(), 12u);
    // Memory accounting follows residency, not total builds.
    EXPECT_LT(budgeted.graph().memoryBytes(),
              free_rows.graph().memoryBytes());

    // Tightening the budget evicts immediately.
    budgeted.setRowBudget(4);
    EXPECT_LE(budgeted.graph().rowsResident(), 4u);
}

TEST(SparseMatching, D13MemoryExperimentSmoke)
{
    // d = 13: the dense backend's per-shape APSP build (triangular
    // tables over ~1200 nodes per tag) makes scenario-scale sweeps
    // impractical; the sparse backend runs it directly. Smoke-check the
    // full pipeline end to end at the default (sparse) backend.
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = 13;
    cfg.noise.p = 1e-3;
    cfg.maxShots = 256;
    cfg.batchShots = 128;
    cfg.targetFailures = 1u << 30;
    cfg.threads = 2;
    cfg.decoder = DecoderKind::Mwpm;
    const auto res = runMemoryExperiment(squarePatch(13), cfg);
    EXPECT_EQ(res.shots, 256u);
    EXPECT_LT(res.pShot, 0.1);
    EXPECT_GT(res.numDetectors, 1000u);
}

} // namespace
} // namespace surf
