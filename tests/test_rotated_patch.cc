/**
 * @file
 * Structural tests for pristine rotated surface code patches: qubit and
 * check counts, CSS commutation, boundary hosting rules, and algebraic
 * (Theorem-1) validity of the generator representation.
 */

#include <gtest/gtest.h>

#include "lattice/convert.hh"
#include "lattice/patch.hh"
#include "lattice/rotated.hh"

namespace surf {
namespace {

class RotatedPatchParam : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RotatedPatchParam, CountsMatchTheory)
{
    const auto [dx, dz] = GetParam();
    const CodePatch p = rectangularPatch(dx, dz);
    EXPECT_EQ(p.numData(), static_cast<size_t>(dx * dz));
    // A dx-by-dz rotated code has dx*dz - 1 stabilizers.
    EXPECT_EQ(p.checks().size(), static_cast<size_t>(dx * dz - 1));
    EXPECT_TRUE(p.supers().empty());
    // Every physical qubit is data or a distinct ancilla.
    EXPECT_EQ(p.numPhysicalQubits(), static_cast<size_t>(2 * dx * dz - 1));
}

TEST_P(RotatedPatchParam, StructurallyValid)
{
    const auto [dx, dz] = GetParam();
    const CodePatch p = rectangularPatch(dx, dz);
    const auto r = p.validate();
    EXPECT_TRUE(r.ok) << r.reason;
}

TEST_P(RotatedPatchParam, EveryDataQubitCoveredByBothTypes)
{
    const auto [dx, dz] = GetParam();
    const CodePatch p = rectangularPatch(dx, dz);
    for (const Coord &q : p.dataQubits()) {
        const auto xs = p.checksOn(q, PauliType::X);
        const auto zs = p.checksOn(q, PauliType::Z);
        EXPECT_GE(xs.size(), 1u) << q.str();
        EXPECT_LE(xs.size(), 2u) << q.str();
        EXPECT_GE(zs.size(), 1u) << q.str();
        EXPECT_LE(zs.size(), 2u) << q.str();
    }
}

TEST_P(RotatedPatchParam, AlgebraPassesTheoremOne)
{
    const auto [dx, dz] = GetParam();
    const CodePatch p = rectangularPatch(dx, dz);
    const PatchAlgebra alg = toAlgebra(p);
    EXPECT_EQ(alg.code.numQubits(), static_cast<size_t>(dx * dz));
    EXPECT_EQ(alg.code.numLogical(), 1u);
    EXPECT_EQ(alg.code.numGauge(), 0u);
    const auto r = alg.code.validate();
    EXPECT_TRUE(r.ok) << r.reason;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RotatedPatchParam,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 3},
                                           std::pair{5, 5}, std::pair{3, 5},
                                           std::pair{5, 3}, std::pair{7, 7},
                                           std::pair{4, 6}, std::pair{9, 9}));

TEST(RotatedPatch, D3HasExpectedCheckMix)
{
    const CodePatch p = rectangularPatch(3, 3);
    int x_full = 0, x_half = 0, z_full = 0, z_half = 0;
    for (const auto &c : p.checks()) {
        if (c.type == PauliType::X)
            (c.weight() == 4 ? x_full : x_half)++;
        else
            (c.weight() == 4 ? z_full : z_half)++;
    }
    EXPECT_EQ(x_full, 2);
    EXPECT_EQ(x_half, 2);
    EXPECT_EQ(z_full, 2);
    EXPECT_EQ(z_half, 2);
}

TEST(RotatedPatch, BoundaryHostingRule)
{
    const CodePatch p = rectangularPatch(5, 5);
    for (const auto &c : p.checks()) {
        if (c.weight() == 4)
            continue;
        ASSERT_EQ(c.weight(), 2u);
        ASSERT_TRUE(c.ancilla.has_value());
        const Coord v = *c.ancilla;
        // Half-checks on the north/south edge must be Z; east/west must be X.
        if (v.y < p.yMin() || v.y > p.yMax())
            EXPECT_EQ(c.type, PauliType::Z) << v.str();
        else
            EXPECT_EQ(c.type, PauliType::X) << v.str();
    }
}

TEST(RotatedPatch, OriginShiftPreservesStructure)
{
    const CodePatch a = rectangularPatch(3, 3);
    const CodePatch b = rectangularPatch(3, 3, {10, 6});
    EXPECT_EQ(a.numData(), b.numData());
    EXPECT_EQ(a.checks().size(), b.checks().size());
    const auto r = b.validate();
    EXPECT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(b.xMin(), 11);
    EXPECT_EQ(b.yMin(), 7);
}

TEST(RotatedPatch, LogicalRepsAnticommuteOnce)
{
    const CodePatch p = rectangularPatch(5, 5);
    auto lx = p.logicalX();
    auto lz = p.logicalZ();
    std::sort(lx.begin(), lx.end());
    std::sort(lz.begin(), lz.end());
    EXPECT_TRUE(supportsAnticommute(lx, lz));
    EXPECT_EQ(lx.size(), 5u);
    EXPECT_EQ(lz.size(), 5u);
}

TEST(RotatedPatch, RenderProducesGrid)
{
    const CodePatch p = rectangularPatch(3, 3);
    const std::string art = p.render();
    EXPECT_NE(art.find('o'), std::string::npos);
    EXPECT_NE(art.find('X'), std::string::npos);
    EXPECT_NE(art.find('Z'), std::string::npos);
}

TEST(SupportOps, XorAndAnticommute)
{
    std::vector<Coord> a{{1, 1}, {3, 1}, {5, 1}};
    std::vector<Coord> b{{3, 1}, {7, 1}};
    const auto x = supportXor(a, b);
    ASSERT_EQ(x.size(), 3u);
    EXPECT_EQ(x[0], (Coord{1, 1}));
    EXPECT_EQ(x[1], (Coord{5, 1}));
    EXPECT_EQ(x[2], (Coord{7, 1}));
    EXPECT_TRUE(supportsAnticommute(a, b));      // overlap {3,1}: odd
    std::vector<Coord> c{{1, 1}, {3, 1}};
    EXPECT_FALSE(supportsAnticommute(a, c));     // overlap size 2: even
}

} // namespace
} // namespace surf
