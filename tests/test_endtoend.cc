/**
 * @file
 * Tests for the end-to-end layers: throughput routing, the logical error
 * model, and the retry-risk estimator reproducing the paper's qualitative
 * Table-II / fig. 12 orderings.
 */

#include <gtest/gtest.h>

#include "endtoend/retry_risk.hh"
#include "surgery/throughput.hh"

namespace surf {
namespace {

TEST(Throughput, CompletesWithoutDefects)
{
    const auto tasks = makeTaskSet(100, 5, 25, 50, 1);
    ThroughputConfig cfg;
    cfg.defectRatePerQubitStep = 0.0;
    const auto res = simulateThroughput(tasks, cfg);
    EXPECT_FALSE(res.stalled);
    EXPECT_EQ(res.totalOps, 125);
    EXPECT_GT(res.throughput, 1.0); // several ops route in parallel
}

TEST(Throughput, TaskOrderIsSequentialWithinTask)
{
    // A single task of k ops takes at least k steps.
    const auto tasks = makeTaskSet(100, 1, 20, 10, 2);
    ThroughputConfig cfg;
    const auto res = simulateThroughput(tasks, cfg);
    EXPECT_GE(res.steps, 20);
}

TEST(Throughput, Q3deDegradesFasterThanSurfDeformer)
{
    const auto tasks = makeTaskSet(100, 5, 25, 50, 3);
    double q3 = 0, sd = 0;
    for (int r = 0; r < 5; ++r) {
        ThroughputConfig cfg;
        cfg.defectRatePerQubitStep = 2e-4;
        cfg.seed = 10 + static_cast<uint64_t>(r);
        cfg.strategy = Strategy::Q3de;
        q3 += simulateThroughput(tasks, cfg).throughput;
        cfg.strategy = Strategy::SurfDeformer;
        sd += simulateThroughput(tasks, cfg).throughput;
    }
    EXPECT_GT(sd, q3);
}

TEST(LogicalErrorModel, SuppressionLaw)
{
    LogicalErrorModel m;
    m.A = 0.1;
    m.Lambda = 10.0;
    EXPECT_GT(m.perRound(9), m.perRound(11));
    EXPECT_NEAR(m.perRound(9) / m.perRound(11), 10.0, 1e-9);
    EXPECT_EQ(m.perRound(0), 0.5); // destroyed qubit
    EXPECT_LE(m.failureOver(9, 1e9), 1.0);
    EXPECT_GE(m.failureOver(9, 1e9), m.failureOver(9, 1e6));
}

TEST(RetryRisk, StrategyOrderingMatchesPaper)
{
    const auto prog = paperPrograms()[1]; // Simon-900-1500
    LogicalErrorModel model;
    model.A = 0.1;
    model.Lambda = 10.0;

    auto risk_of = [&](Strategy s, int d) {
        RetryRiskConfig cfg;
        cfg.strategy = s;
        cfg.d = d;
        cfg.errorModel = model;
        return estimateRetryRisk(prog, cfg);
    };

    const auto q3 = risk_of(Strategy::Q3de, 21);
    const auto ascs = risk_of(Strategy::Ascs, 21);
    const auto sd = risk_of(Strategy::SurfDeformer, 21);

    // Table II shape: Q3DE over-runs; SD risk is far below ASC-S.
    EXPECT_TRUE(q3.overRuntime);
    EXPECT_FALSE(sd.overRuntime);
    EXPECT_GT(ascs.retryRisk, 10 * sd.retryRisk);
    // SD pays ~20% more qubits than ASC-S at the same d.
    EXPECT_GT(sd.physicalQubits, ascs.physicalQubits);
    EXPECT_LT(static_cast<double>(sd.physicalQubits),
              1.5 * static_cast<double>(ascs.physicalQubits));
}

TEST(RetryRisk, RiskDecreasesWithDistanceForSd)
{
    const auto prog = paperPrograms()[0];
    LogicalErrorModel model;
    model.A = 0.1;
    model.Lambda = 10.0;
    double prev = 1.0;
    for (int d = 17; d <= 25; d += 2) {
        RetryRiskConfig cfg;
        cfg.strategy = Strategy::SurfDeformer;
        cfg.d = d;
        cfg.errorModel = model;
        const auto r = estimateRetryRisk(prog, cfg);
        EXPECT_LT(r.retryRisk, prev);
        prev = r.retryRisk;
    }
}

TEST(RetryRisk, MeasuredLossesAreOrdered)
{
    // SD's residual loss (after enlargement) < ASC-S's removal loss <
    // the untreated saturation loss.
    const double sd = measuredDistanceLoss(Strategy::SurfDeformer, 13, 4,
                                           12, 1, 4);
    const double ascs = measuredDistanceLoss(Strategy::Ascs, 13, 4, 12, 1,
                                             4);
    const double ls = measuredDistanceLoss(Strategy::LatticeSurgery, 13, 4,
                                           12, 1, 4);
    EXPECT_LE(sd, ascs);
    EXPECT_LT(ascs, ls); // untreated adds a spreading penalty on top
    EXPECT_LT(sd, 1.0);  // enlargement restores nearly everything
    EXPECT_GT(ascs, 2.0);
}

TEST(Programs, TableTwoRows)
{
    const auto progs = paperPrograms();
    ASSERT_EQ(progs.size(), 8u);
    EXPECT_EQ(progs[0].name, "Simon-400-1000");
    EXPECT_EQ(progs[5].numQubits, 100);
    EXPECT_EQ(fig12Programs().size(), 4u);
}

} // namespace
} // namespace surf
