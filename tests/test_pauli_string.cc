/**
 * @file
 * Unit tests for Pauli string algebra: products, phases, commutation.
 */

#include <gtest/gtest.h>

#include "pauli/pauli_string.hh"
#include "util/rng.hh"

namespace surf {
namespace {

TEST(PauliString, FromStringRoundTrip)
{
    const auto p = PauliString::fromString("+XIZY");
    EXPECT_EQ(p.numQubits(), 4u);
    EXPECT_EQ(p.pauliAt(0), Pauli::X);
    EXPECT_EQ(p.pauliAt(1), Pauli::I);
    EXPECT_EQ(p.pauliAt(2), Pauli::Z);
    EXPECT_EQ(p.pauliAt(3), Pauli::Y);
    EXPECT_EQ(p.str(), "+XIZY");
    EXPECT_EQ(p.weight(), 3u);
}

TEST(PauliString, NegativeSign)
{
    const auto p = PauliString::fromString("-ZZ");
    EXPECT_EQ(p.str(), "-ZZ");
}

TEST(PauliString, SingleQubitProducts)
{
    const auto X = PauliString::fromString("X");
    const auto Y = PauliString::fromString("Y");
    const auto Z = PauliString::fromString("Z");
    // XY = iZ, YX = -iZ, ZX = iY, XZ = -iY, YZ = iX, ZY = -iX.
    EXPECT_EQ((X * Y).str(), "+iZ");
    EXPECT_EQ((Y * X).str(), "-iZ");
    EXPECT_EQ((Z * X).str(), "+iY");
    EXPECT_EQ((X * Z).str(), "-iY");
    EXPECT_EQ((Y * Z).str(), "+iX");
    EXPECT_EQ((Z * Y).str(), "-iX");
    // Squares are identity.
    EXPECT_EQ((X * X).str(), "+I");
    EXPECT_EQ((Y * Y).str(), "+I");
    EXPECT_EQ((Z * Z).str(), "+I");
}

TEST(PauliString, CommutationRules)
{
    const auto X = PauliString::fromString("X");
    const auto Y = PauliString::fromString("Y");
    const auto Z = PauliString::fromString("Z");
    EXPECT_FALSE(X.commutesWith(Z));
    EXPECT_FALSE(X.commutesWith(Y));
    EXPECT_FALSE(Y.commutesWith(Z));
    EXPECT_TRUE(X.commutesWith(X));

    // Two overlapping weight-2 operators sharing two anti-commuting slots
    // commute overall.
    const auto xx = PauliString::fromString("XX");
    const auto zz = PauliString::fromString("ZZ");
    EXPECT_TRUE(xx.commutesWith(zz));
}

TEST(PauliString, ProductAssociativityRandomized)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        const size_t n = 6;
        auto random_pauli = [&] {
            PauliString p(n);
            for (size_t q = 0; q < n; ++q)
                p.setPauli(q, static_cast<Pauli>(rng.below(4)));
            if (rng.bernoulli(0.5))
                p.setPhase(p.phase() + 2);
            return p;
        };
        const auto a = random_pauli();
        const auto b = random_pauli();
        const auto c = random_pauli();
        EXPECT_EQ(((a * b) * c), (a * (b * c)));
    }
}

TEST(PauliString, CommutationMatchesPhaseDifference)
{
    Rng rng(43);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t n = 5;
        auto random_pauli = [&] {
            PauliString p(n);
            for (size_t q = 0; q < n; ++q)
                p.setPauli(q, static_cast<Pauli>(rng.below(4)));
            return p;
        };
        const auto a = random_pauli();
        const auto b = random_pauli();
        const auto ab = a * b;
        const auto ba = b * a;
        EXPECT_TRUE(ab.equalsUpToPhase(ba));
        const bool commute = (ab == ba);
        EXPECT_EQ(commute, a.commutesWith(b));
        if (!commute) {
            EXPECT_EQ((ab.phase() + 2) & 3, ba.phase());
        }
    }
}

TEST(PauliString, CssTypePredicates)
{
    EXPECT_TRUE(PauliString::fromString("XXIX").isCssType(PauliType::X));
    EXPECT_FALSE(PauliString::fromString("XXIX").isCssType(PauliType::Z));
    EXPECT_TRUE(PauliString::fromString("ZIZ").isCssType(PauliType::Z));
    EXPECT_FALSE(PauliString::fromString("YZ").isCssType(PauliType::Z));
    // Identity is both.
    EXPECT_TRUE(PauliString(3).isCssType(PauliType::X));
    EXPECT_TRUE(PauliString(3).isCssType(PauliType::Z));
}

TEST(PauliString, ParseRejectsBadCharactersAsStatus)
{
    // The checked entry surfaces malformed text as INVALID_ARGUMENT
    // (fromString remains the fatal legacy wrapper).
    StatusOr<PauliString> ok = PauliString::parse("-XIZZY");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok->str(), PauliString::fromString("-XIZZY").str());

    for (const char *bad : {"XQZ", "xz", "+X Z", "ZZ?"}) {
        StatusOr<PauliString> p = PauliString::parse(bad);
        ASSERT_FALSE(p.ok()) << bad;
        EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument) << bad;
    }
}

TEST(PauliString, SetPauliAdjustsYPhaseCorrectly)
{
    PauliString p(2);
    p.setPauli(0, Pauli::Y);
    p.setPauli(0, Pauli::Y); // overwrite with Y again: phase must not drift
    PauliString q(2);
    q.setPauli(0, Pauli::Y);
    EXPECT_EQ(p, q);
    p.setPauli(0, Pauli::X); // replacing Y by X removes the Y phase
    PauliString r(2);
    r.setPauli(0, Pauli::X);
    EXPECT_EQ(p, r);
}

} // namespace
} // namespace surf
