/**
 * @file
 * Tests for the epoch-segmented scenario engine: zero-defect equivalence
 * with the plain memory experiment, physical validity of seam detectors
 * (tableau oracle: every detector of a noiseless deformation timeline is
 * deterministic), bit-identical results across thread counts and with the
 * DeformedCodeCache on or off, epoch-planner merging, and the sorted
 * interval sweep of the defect sampler.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "baselines/strategies.hh"
#include "decode/memory_experiment.hh"
#include "defects/defect_sampler.hh"
#include "endtoend/retry_risk.hh"
#include "lattice/rotated.hh"
#include "scenario/patch_signature.hh"
#include "scenario/scenario_experiment.hh"
#include "sim/frame.hh"
#include "sim/segment.hh"
#include "sim/tableau.hh"

namespace surf {
namespace {

/** Build one epoch of a hand-made plan from a strategy outcome. */
Epoch
makeEpoch(Strategy strategy, int d, int delta_d, uint64_t start,
          uint64_t rounds, const std::set<Coord> &active)
{
    const StrategyOutcome oc = applyStrategy(strategy, d, delta_d, active);
    EXPECT_TRUE(oc.alive);
    Epoch e;
    e.startRound = start;
    e.rounds = rounds;
    e.deformed.patch = oc.patch;
    e.deformed.distX = oc.distX;
    e.deformed.distZ = oc.distZ;
    e.deformed.alive = oc.alive;
    e.residualDefects = oc.residualDefects;
    e.activeSites = active;
    e.structSig = patchSignature(oc.patch);
    return e;
}

/** A pristine -> struck -> recovered Surf-Deformer timeline. */
ScenarioPlan
strikePlan(int d, int delta_d, uint64_t t1, uint64_t t2, uint64_t t3,
           Coord center, int diameter)
{
    const std::set<Coord> strike = DefectSampler::regionSites(center,
                                                             diameter);
    ScenarioPlan plan;
    plan.numEvents = 1;
    plan.epochs.push_back(
        makeEpoch(Strategy::SurfDeformer, d, delta_d, 0, t1, {}));
    plan.epochs.push_back(
        makeEpoch(Strategy::SurfDeformer, d, delta_d, t1, t2 - t1, strike));
    plan.epochs.push_back(
        makeEpoch(Strategy::SurfDeformer, d, delta_d, t2, t3 - t2, {}));
    return plan;
}

/** Stitch a plan's segments into one concatenated circuit (the same
 *  construction the engine performs; sampling-view noise). */
Circuit
stitchTimeline(const ScenarioPlan &plan, const NoiseParams &noise,
               PauliType basis)
{
    Circuit ckt;
    std::map<Coord, uint32_t> qubit_id;
    SeamState carry;
    const CodePatch *prev = nullptr;
    std::vector<Coord> tracked;
    for (size_t e = 0; e < plan.epochs.size(); ++e) {
        const Epoch &ep = plan.epochs[e];
        SegmentSpec spec;
        spec.basis = basis;
        spec.rounds = static_cast<int>(ep.rounds);
        spec.startRound = ep.startRound;
        spec.first = (e == 0);
        spec.last = (e + 1 == plan.epochs.size());
        const SeamPlan seam =
            computeSeamPlan(prev, ep.deformed.patch, basis, ep.activeSites,
                            ep.startRound, e ? &tracked : nullptr);
        EXPECT_TRUE(seam.obsCarryValid);
        tracked = seam.trackedLogical;
        NoiseParams samp = noise;
        samp.defectiveSites = ep.residualDefects;
        for (const Coord &q : seam.removed)
            if (ep.activeSites.count(q))
                samp.defectiveSites.insert(q);
        const SegmentResult res =
            appendSegment(ckt, qubit_id, ep.deformed.patch, spec, samp, seam,
                          e ? &carry : nullptr, false);
        carry = res.carry;
        prev = &ep.deformed.patch;
    }
    return ckt;
}

TEST(ScenarioEngine, ZeroDefectScenarioReproducesMemoryExperiment)
{
    // A defect-free scenario plans one epoch at any window split, and the
    // engine reproduces runMemoryExperiment's exact failure count.
    MemoryExperimentConfig mc;
    mc.spec.rounds = 12;
    mc.noise.p = 4e-3;
    mc.maxShots = 6000;
    mc.batchShots = 1024;
    mc.targetFailures = 1u << 30;
    mc.seed = 2024;
    mc.threads = 2;
    const auto memory = runMemoryExperiment(squarePatch(3), mc);
    ASSERT_GT(memory.failures, 0u);

    for (uint64_t window : {3u, 4u, 6u, 12u}) {
        ScenarioConfig sc;
        sc.timeline.strategy = Strategy::SurfDeformer;
        sc.timeline.d = 3;
        sc.timeline.deltaD = 0;
        sc.timeline.horizonRounds = 12;
        sc.timeline.windowRounds = window;
        sc.eventRateScale = 0.0;
        sc.noise.p = 4e-3;
        sc.maxShotsPerTimeline = 6000;
        sc.batchShots = 1024;
        sc.seed = 2024;
        sc.threads = 2;
        const auto scen = runScenarioExperiment(sc);
        ASSERT_EQ(scen.timelines.size(), 1u);
        EXPECT_EQ(scen.timelines[0].epochs.size(), 1u)
            << "window " << window << ": constant windows must merge";
        EXPECT_EQ(scen.shots, memory.shots) << "window " << window;
        EXPECT_EQ(scen.failures, memory.failures) << "window " << window;
    }
}

TEST(ScenarioEngine, ForcedSplitSamplesIdenticalDetectorData)
{
    // Splitting a constant patch into segments must leave the sampled
    // circuit bit-identical: seams are pure continuations.
    const CodePatch patch = squarePatch(3);
    MemorySpec spec;
    spec.rounds = 12;
    NoiseParams noise;
    noise.p = 4e-3;
    const BuiltCircuit unsplit = buildMemoryCircuit(patch, spec, noise);

    ScenarioPlan plan;
    for (uint64_t t = 0; t < 12; t += 4)
        plan.epochs.push_back(
            makeEpoch(Strategy::SurfDeformer, 3, 0, t, 4, {}));
    const Circuit split = stitchTimeline(plan, noise, PauliType::Z);

    ASSERT_EQ(split.numDetectors(), unsplit.circuit.numDetectors());
    ASSERT_EQ(split.numMeasurements(), unsplit.circuit.numMeasurements());
    FrameSimulator sim_a(unsplit.circuit, 512, 77);
    FrameSimulator sim_b(split, 512, 77);
    for (size_t d = 0; d < sim_a.numDetectors(); ++d)
        ASSERT_EQ(sim_a.detectorBits(d), sim_b.detectorBits(d))
            << "detector " << d;
    ASSERT_EQ(sim_a.observableBits(0), sim_b.observableBits(0));
}

class NoiselessSeamDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(NoiselessSeamDeterminism, AllDetectorsDeterministicAcrossSeams)
{
    // Tableau oracle: run the full deformation timeline with *real*
    // (random) measurement collapse and no noise. Every detector the seam
    // logic emits must be deterministic — a single invalid seam reference
    // fires with probability 1/2 and the test catches it within a few
    // seeds. Covers removal seams (defect strike), patched recovery seams
    // (measure-outs + fresh initializations) and both seam parities (odd
    // seams carry trusted gauge references, even seams must reject them).
    const auto [t1, t2] = GetParam();
    const int d = 5;
    const ScenarioPlan plan = strikePlan(
        d, 2, static_cast<uint64_t>(t1), static_cast<uint64_t>(t2),
        static_cast<uint64_t>(t2 + t1), {5, 5}, 2);
    ASSERT_EQ(plan.epochs.size(), 3u);
    ASSERT_NE(plan.epochs[0].structSig, plan.epochs[1].structSig)
        << "the strike must actually deform the patch";

    NoiseParams noiseless;
    noiseless.p = 0.0;
    noiseless.pDefect = 0.0;
    for (PauliType basis : {PauliType::Z, PauliType::X}) {
        const Circuit ckt = stitchTimeline(plan, noiseless, basis);
        ASSERT_GT(ckt.numDetectors(), 0u);
        for (uint64_t seed = 1; seed <= 6; ++seed) {
            const auto run = TableauSimulator::runCircuit(ckt, seed, false);
            for (size_t i = 0; i < run.detectors.size(); ++i)
                ASSERT_FALSE(run.detectors[i])
                    << "seam detector " << i << " fired without noise "
                    << "(basis " << (basis == PauliType::Z ? 'Z' : 'X')
                    << ", seed " << seed << ")";
            ASSERT_FALSE(run.observables.at(0))
                << "logical observable flipped through the deformations";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeamParities, NoiselessSeamDeterminism,
                         ::testing::Values(std::tuple(9, 17),   // odd seams
                                           std::tuple(10, 20),  // even seams
                                           std::tuple(9, 18))); // mixed

TEST(ScenarioEngine, Q3deEnlargementSeamIsDeterministic)
{
    // Q3DE's response is a 2x patch enlargement: the growth seam carries
    // the old boundary checks into the enlarged code (patched by fresh
    // initializations) and the recovery seam measures the extra layers
    // back out. Both must be detector-quiet without noise.
    const std::set<Coord> strike = DefectSampler::regionSites({3, 3}, 2);
    ScenarioPlan plan;
    plan.epochs.push_back(makeEpoch(Strategy::Q3de, 3, 0, 0, 5, {}));
    plan.epochs.push_back(makeEpoch(Strategy::Q3de, 3, 0, 5, 6, strike));
    plan.epochs.push_back(makeEpoch(Strategy::Q3de, 3, 0, 11, 5, {}));
    ASSERT_GT(plan.epochs[1].deformed.patch.numData(),
              plan.epochs[0].deformed.patch.numData());

    NoiseParams noiseless;
    noiseless.p = 0.0;
    noiseless.pDefect = 0.0;
    const Circuit ckt = stitchTimeline(plan, noiseless, PauliType::Z);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        const auto run = TableauSimulator::runCircuit(ckt, seed, false);
        for (size_t i = 0; i < run.detectors.size(); ++i)
            ASSERT_FALSE(run.detectors[i]) << "detector " << i << " seed "
                                           << seed;
        ASSERT_FALSE(run.observables.at(0));
    }
}

ScenarioConfig
deformationScenarioConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 27;
    sc.timeline.windowRounds = 9;
    sc.noise.p = 3e-3;
    sc.maxShotsPerTimeline = 2048;
    sc.batchShots = 512;
    sc.seed = 424242;
    return sc;
}

TEST(ScenarioEngine, CacheAndThreadCountDoNotChangeResults)
{
    // Cache-hit vs cache-miss decodes and any thread count must be
    // bit-identical: cache entries are pure functions of their keys and
    // the pipeline merges worker tallies in a fixed order.
    const ScenarioPlan plan = strikePlan(5, 2, 9, 17, 27, {5, 5}, 2);
    ScenarioConfig cfg = deformationScenarioConfig();

    uint64_t reference_failures = 0;
    std::vector<uint64_t> reference_mism;
    bool have_reference = false;
    for (bool use_cache : {true, false}) {
        for (size_t threads : {1u, 2u, 8u}) {
            cfg.useCache = use_cache;
            cfg.threads = threads;
            DeformedCodeCache cache;
            const TimelineStats tl =
                runPlannedTimeline(plan, cfg, cache, cfg.seed, 0);
            EXPECT_EQ(tl.shots, cfg.maxShotsPerTimeline);
            std::vector<uint64_t> mism;
            for (const auto &e : tl.epochs)
                mism.push_back(e.mismatches);
            if (!have_reference) {
                reference_failures = tl.failures;
                reference_mism = mism;
                have_reference = true;
                EXPECT_GT(tl.failures, 0u)
                    << "scenario too quiet to validate anything";
            } else {
                EXPECT_EQ(tl.failures, reference_failures)
                    << "cache=" << use_cache << " threads=" << threads;
                EXPECT_EQ(mism, reference_mism)
                    << "cache=" << use_cache << " threads=" << threads;
            }
        }
    }
}

TEST(ScenarioEngine, SharedCacheReusesStitchedTimelinesAndSegments)
{
    const ScenarioPlan plan = strikePlan(5, 2, 9, 17, 27, {5, 5}, 2);
    ScenarioConfig cfg = deformationScenarioConfig();
    cfg.maxShotsPerTimeline = 128;
    DeformedCodeCache cache;
    // Cold pass: one timeline miss whose build resolves three segment
    // misses (4 lookups total, all cold).
    const TimelineStats cold =
        runPlannedTimeline(plan, cfg, cache, cfg.seed, 0);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.timelineMisses(), 1u);
    // The same plan again: the stitched circuit and every decode-ready
    // segment come back from one timeline hit — no seam classification,
    // no stitching, no segment lookups.
    const TimelineStats warm =
        runPlannedTimeline(plan, cfg, cache, cfg.seed, 0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.timelineHits(), 1u);
    // Same seed schedule => bit-identical physics through the cache.
    EXPECT_EQ(warm.failures, cold.failures);
}

TEST(ScenarioEngine, CacheEvictionNeverChangesResults)
{
    // A one-entry budget forces an eviction on every new shape while the
    // timeline is still being resolved; shared_ptr hand-out keeps the
    // evicted segments alive for the decode phase, and entries are pure
    // functions of their keys, so the failure count cannot move.
    const ScenarioPlan plan = strikePlan(5, 2, 9, 17, 27, {5, 5}, 2);
    ScenarioConfig cfg = deformationScenarioConfig();

    DeformedCodeCache unbounded;
    const TimelineStats ref =
        runPlannedTimeline(plan, cfg, unbounded, cfg.seed, 0);
    EXPECT_EQ(unbounded.evictions(), 0u);
    EXPECT_GT(unbounded.bytesUsed(), 0u);

    DeformedCodeCache bounded;
    bounded.setBudget(0, 1);
    EXPECT_EQ(bounded.budgetEntries(), 1u);
    const TimelineStats tl =
        runPlannedTimeline(plan, cfg, bounded, cfg.seed, 0);
    EXPECT_EQ(tl.failures, ref.failures);
    EXPECT_EQ(bounded.size(), 1u);
    EXPECT_EQ(bounded.evictions(), 3u);
    EXPECT_EQ(bounded.misses(), 4u);

    // Same through the public API on sampled multi-epoch timelines: a
    // byte budget far below one entry still produces identical physics,
    // just more rebuilds.
    ScenarioConfig sc = cfg;
    sc.timeline.horizonRounds = 60;
    sc.timeline.windowRounds = 10;
    sc.timeline.maxEpochRounds = 10;
    sc.defectModel.durationSec = 20e-6;
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0;
    sc.numTimelines = 2;
    sc.maxShotsPerTimeline = 128;
    sc.batchShots = 128;
    const ScenarioResult free_cache = runScenarioExperiment(sc);
    sc.cacheMaxBytes = 1;
    const ScenarioResult tiny_cache = runScenarioExperiment(sc);
    EXPECT_EQ(tiny_cache.failures, free_cache.failures);
    EXPECT_GT(tiny_cache.cacheEvictions, 0u);
}

TEST(DeformedCodeCache, GreedyDualEvictionIsCostWeighted)
{
    // Eviction priority is (clock at last use + measured build seconds):
    // with a full cache, the cheap-to-rebuild entry goes first even if
    // the expensive one is older.
    auto segment = [](double build_seconds) {
        return [build_seconds] {
            const auto t0 = std::chrono::steady_clock::now();
            while (std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count() < build_seconds) {
            }
            return CachedSegment{};
        };
    };
    DeformedCodeCache cache;
    cache.setBudget(0, 2);
    cache.get("expensive", segment(0.05));
    cache.get("cheap", segment(0.0));
    EXPECT_EQ(cache.size(), 2u);
    cache.get("new", segment(0.0));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.misses(), 3u);
    cache.get("expensive", segment(0.05));
    EXPECT_EQ(cache.hits(), 1u) << "the expensive entry was evicted";
    cache.get("cheap", segment(0.0));
    EXPECT_EQ(cache.misses(), 4u) << "the cheap entry should have gone";

    // Byte budgets evict too; an impossible budget empties the cache.
    cache.setBudget(1, 0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.bytesUsed(), 0u);
}

TEST(EpochPlanner, ConstantWindowsMergeAndCapsSplit)
{
    EpochPlannerConfig cfg;
    cfg.strategy = Strategy::SurfDeformer;
    cfg.d = 3;
    cfg.deltaD = 0;
    cfg.horizonRounds = 24;
    cfg.windowRounds = 4;

    const ScenarioPlan quiet = planEpochs(cfg, {});
    ASSERT_EQ(quiet.epochs.size(), 1u);
    EXPECT_EQ(quiet.epochs[0].rounds, 24u);

    cfg.forceEpochBoundaries = true;
    const ScenarioPlan forced = planEpochs(cfg, {});
    EXPECT_EQ(forced.epochs.size(), 6u);
    cfg.forceEpochBoundaries = false;

    // Cap limits merging: windows of 4 accumulate to 8 (a third window
    // would exceed 10), giving three 8-round epochs.
    cfg.maxEpochRounds = 10;
    const ScenarioPlan capped = planEpochs(cfg, {});
    ASSERT_EQ(capped.epochs.size(), 3u);
    EXPECT_EQ(capped.epochs[0].rounds, 8u);
    EXPECT_EQ(capped.epochs[2].startRound, 16u);
    // A window longer than the cap is split after planning: 10 + 10 + 4.
    cfg.windowRounds = 24;
    const ScenarioPlan split = planEpochs(cfg, {});
    ASSERT_EQ(split.epochs.size(), 3u);
    EXPECT_EQ(split.epochs[0].rounds, 10u);
    EXPECT_EQ(split.epochs[2].startRound, 20u);
    EXPECT_EQ(split.epochs[2].rounds, 4u);
    cfg.windowRounds = 4;
    cfg.maxEpochRounds = 0;

    // One mid-timeline event: pristine / deformed / pristine.
    DefectEvent ev;
    ev.startCycle = 8;
    ev.endCycle = 16;
    ev.center = {3, 3};
    ev.sites = DefectSampler::regionSites({3, 3}, 2);
    const ScenarioPlan struck = planEpochs(cfg, {ev});
    ASSERT_EQ(struck.epochs.size(), 3u);
    EXPECT_EQ(struck.epochs[0].rounds, 8u);
    EXPECT_EQ(struck.epochs[1].startRound, 8u);
    EXPECT_EQ(struck.epochs[1].rounds, 8u);
    EXPECT_EQ(struck.epochs[2].startRound, 16u);
    EXPECT_NE(struck.epochs[0].structSig, struck.epochs[1].structSig);
    EXPECT_EQ(struck.epochs[0].structSig, struck.epochs[2].structSig);
}

TEST(DefectSweep, MatchesLinearScanReference)
{
    // Random events with varying durations and overlaps; the sweep must
    // pin the old per-query linear scan exactly at every query point.
    Rng rng(1234);
    std::vector<DefectEvent> events;
    for (int i = 0; i < 200; ++i) {
        DefectEvent ev;
        ev.startCycle = rng.below(5000);
        ev.endCycle = ev.startCycle + 1 + rng.below(800);
        ev.center = {static_cast<int>(rng.below(19)),
                     static_cast<int>(rng.below(19))};
        ev.sites = DefectSampler::regionSites(ev.center,
                                              1 + static_cast<int>(
                                                      rng.below(4)));
        events.push_back(std::move(ev));
    }
    auto reference = [&](uint64_t cycle) {
        std::set<Coord> active;
        for (const auto &ev : events)
            if (ev.startCycle <= cycle && cycle < ev.endCycle)
                active.insert(ev.sites.begin(), ev.sites.end());
        return active;
    };

    ActiveDefectSweep sweep(events);
    for (uint64_t cycle = 0; cycle <= 6200; cycle += 37)
        ASSERT_EQ(sweep.activeAt(cycle), reference(cycle))
            << "cycle " << cycle;

    // rewind() restarts the monotone scan; the static one-shot helper
    // agrees too.
    sweep.rewind();
    EXPECT_EQ(sweep.activeAt(2500), reference(2500));
    EXPECT_EQ(DefectSampler::activeSites(events, 2500), reference(2500));
}

TEST(RetryRisk, ScenarioCrossCheckProducesBothSides)
{
    // The measured cross-check mode runs real strategy-reactive timelines
    // and evaluates the analytic distance-loss model on the identical
    // workload; both sides must come out as sane probabilities.
    ScenarioCrossCheckConfig cc;
    cc.d = 5;
    cc.deltaD = 2;
    cc.defectModel.durationSec = 20e-6;
    cc.defectModel.regionDiameter = 2;
    cc.eventRateScale = 100000.0;
    cc.horizonRounds = 60;
    cc.windowRounds = 20;
    cc.numTimelines = 2;
    cc.shotsPerTimeline = 64;
    cc.noiseP = 3e-3;
    const ScenarioCrossCheck check = crossCheckRetryRisk(cc);
    EXPECT_EQ(check.shots, 128u);
    EXPECT_GT(check.totalEpochs, 2u);
    EXPECT_GT(check.measuredPShot, 0.0);
    EXPECT_LT(check.measuredPShot, 1.0);
    EXPECT_GT(check.analyticPShot, 0.0);
    EXPECT_LT(check.analyticPShot, 1.0);
    EXPECT_GT(check.expectedEvents, 0.0);
}

TEST(ScenarioEngine, SampledTimelinesRunEndToEnd)
{
    // Full path: event sampling -> planning -> stitched simulation ->
    // cached decode, across several timelines sharing one cache.
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 60;
    sc.timeline.windowRounds = 10;
    // Quantized epoch lengths: quiet stretches of different timelines
    // become cache-equal 10-round segments.
    sc.timeline.maxEpochRounds = 10;
    sc.defectModel.durationSec = 20e-6; // 20 rounds at 1 us/cycle
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0;
    sc.numTimelines = 4;
    sc.noise.p = 2e-3;
    sc.maxShotsPerTimeline = 256;
    sc.batchShots = 128;
    sc.seed = 99;
    const auto res = runScenarioExperiment(sc);
    EXPECT_EQ(res.timelines.size(), 4u);
    EXPECT_EQ(res.shots, 4u * 256u);
    EXPECT_GT(res.totalEpochs, 4u)
        << "event rate too low: no deformation epochs were exercised";
    EXPECT_GT(res.cacheHits, 0u);
    // Bit-identical across thread counts through the public API as well.
    sc.threads = 8;
    const auto res8 = runScenarioExperiment(sc);
    EXPECT_EQ(res8.failures, res.failures);
    EXPECT_EQ(res8.totalEpochs, res.totalEpochs);
}

TEST(ScenarioValidation, AcceptsDefaultAndTestConfigs)
{
    EXPECT_TRUE(validateScenarioConfig(ScenarioConfig{}).ok());
    EXPECT_TRUE(validateScenarioConfig(deformationScenarioConfig()).ok());
}

TEST(ScenarioValidation, RejectsMalformedConfigs)
{
    const ScenarioConfig good = deformationScenarioConfig();
    auto expect_invalid = [](ScenarioConfig cfg, const char *what) {
        const Status s = validateScenarioConfig(cfg);
        EXPECT_FALSE(s.ok()) << what;
        EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << what;
        EXPECT_FALSE(s.message().empty()) << what;
    };

    ScenarioConfig c = good;
    c.timeline.d = 1;
    expect_invalid(c, "d below 2");
    c = good;
    c.timeline.d = 513;
    expect_invalid(c, "d above 512");
    c = good;
    c.timeline.deltaD = -1;
    expect_invalid(c, "negative deltaD");
    c = good;
    c.timeline.horizonRounds = 0;
    expect_invalid(c, "zero rounds");
    c = good;
    c.timeline.windowRounds = 0;
    expect_invalid(c, "zero window");
    c = good;
    c.numTimelines = 0;
    expect_invalid(c, "zero timelines");
    c = good;
    c.maxShotsPerTimeline = 0;
    expect_invalid(c, "zero shots");
    c = good;
    c.batchShots = 0;
    expect_invalid(c, "zero batch");
    c = good;
    c.targetFailures = 0;
    expect_invalid(c, "zero failure target");
    c = good;
    c.eventRateScale = -1.0;
    expect_invalid(c, "negative rate scale");
    c = good;
    c.eventRateScale = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(c, "NaN rate scale");
    c = good;
    c.noise.p = -0.25;
    expect_invalid(c, "negative noise.p");
    c = good;
    c.noise.p = 1.5;
    expect_invalid(c, "noise.p above 1");
    c = good;
    c.noise.pDefect = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(c, "NaN pDefect");
    c = good;
    c.defectModel.eventRatePerQubitSec =
        std::numeric_limits<double>::infinity();
    expect_invalid(c, "infinite event rate");
    c = good;
    c.defectModel.cycleTimeSec = 0.0;
    expect_invalid(c, "zero cycle time");
    c = good;
    c.decoder = static_cast<DecoderKind>(99);
    expect_invalid(c, "unknown decoder kind");
    c = good;
    c.matching = static_cast<MatchingBackend>(99);
    expect_invalid(c, "unknown matching backend");
    c = good;
    c.faults.stallProb = 2.0;
    expect_invalid(c, "fault plan probability above 1");
}

TEST(ScenarioValidation, CheckedEntryReturnsStatusInsteadOfDying)
{
    ScenarioConfig bad = deformationScenarioConfig();
    bad.timeline.horizonRounds = 0;
    const StatusOr<ScenarioResult> res = runScenarioExperimentChecked(bad);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);

    // And a small valid config really runs through the checked entry.
    ScenarioConfig ok = deformationScenarioConfig();
    ok.maxShotsPerTimeline = 64;
    ok.batchShots = 64;
    ok.eventRateScale = 0.0;
    ok.timeline.horizonRounds = 9;
    const StatusOr<ScenarioResult> run = runScenarioExperimentChecked(ok);
    ASSERT_TRUE(run.ok()) << run.status().str();
    EXPECT_EQ(run.value().shots, 64u);
    EXPECT_TRUE(run.value().ledger.empty())
        << "no deadline and no fault plan must leave the ledger empty";
}

TEST(ScenarioValidation, DefectStreamRejectsMalformedEvents)
{
    const ScenarioConfig cfg = deformationScenarioConfig();
    DefectEvent ok;
    ok.startCycle = 4;
    ok.endCycle = 12;
    ok.center = {5, 5};
    ok.sites = DefectSampler::regionSites({5, 5}, 2);
    EXPECT_TRUE(validateDefectStream({ok}, cfg).ok());
    EXPECT_TRUE(validateDefectStream({}, cfg).ok());

    auto expect_data_loss = [&](DefectEvent ev, const char *what) {
        const Status s = validateDefectStream({std::move(ev)}, cfg);
        EXPECT_FALSE(s.ok()) << what;
        EXPECT_EQ(s.code(), StatusCode::kDataLoss) << what;
    };
    DefectEvent ev = ok;
    std::swap(ev.startCycle, ev.endCycle);
    expect_data_loss(ev, "inverted interval");
    ev = ok;
    ev.endCycle = ev.startCycle;
    expect_data_loss(ev, "empty interval");
    ev = ok;
    ev.sites.clear();
    expect_data_loss(ev, "no sites");
    ev = ok;
    ev.center = {1 << 24, 1 << 24};
    ev.sites = {ev.center};
    expect_data_loss(ev, "teleported center");
    ev = ok;
    ev.sites.insert(Coord{-10000, 0});
    expect_data_loss(ev, "off-lattice site");
}

TEST(ScenarioValidation, PlannerErrorsSurfaceThroughCheckedEntry)
{
    // The epoch planner throws StatusError deep inside the run; the
    // checked entry must hand it back as a value. (Reaching it requires
    // dodging the up-front config validation, so call the planner the
    // way the engine does.)
    EpochPlannerConfig pc;
    pc.horizonRounds = 0;
    EXPECT_THROW(planEpochs(pc, {}), StatusError);
    try {
        planEpochs(pc, {});
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
    }
}

} // namespace
} // namespace surf
