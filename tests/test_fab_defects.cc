/**
 * @file
 * Tests for fabrication-defect adaptation (src/defects/fab_defects) and
 * its scenario-engine wiring: deterministic chip sampling, the bandage
 * super-stabilizer adapter cross-checked against applyStrategy and a
 * noiseless tableau oracle, the zero-rate "costs nothing when off"
 * contract, thread-count invariance with broken chips, the dead-patch
 * yield contract (tallied, never aborting), and kill/resume
 * checkpointing with fab counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <stdlib.h>

#include "decode/memory_experiment.hh"
#include "defects/fab_defects.hh"
#include "faultinject/fault_plan.hh"
#include "lattice/rotated.hh"
#include "scenario/patch_signature.hh"
#include "scenario/scenario_experiment.hh"
#include "sim/syndrome_circuit.hh"
#include "sim/tableau.hh"

namespace surf {
namespace {

/** Fresh temp directory, removed (best effort) on destruction. */
struct TempDir
{
    std::string path;
    TempDir()
    {
        char tmpl[] = "/tmp/surf_fab_XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "/tmp";
    }
    ~TempDir()
    {
        const std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] int rc = ::system(cmd.c_str());
    }
};

FaultPlan
mustPlan(const std::string &spec)
{
    StatusOr<FaultPlan> plan = parseFaultPlan(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().str();
    return plan.ok() ? *plan : FaultPlan{};
}

void
expectSameResults(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.totalEpochs, b.totalEpochs);
    EXPECT_EQ(a.deadTimelines, b.deadTimelines);
    ASSERT_EQ(a.timelines.size(), b.timelines.size());
    for (size_t t = 0; t < a.timelines.size(); ++t) {
        const TimelineStats &x = a.timelines[t];
        const TimelineStats &y = b.timelines[t];
        EXPECT_EQ(x.shots, y.shots) << "timeline " << t;
        EXPECT_EQ(x.failures, y.failures) << "timeline " << t;
        EXPECT_EQ(x.dead, y.dead) << "timeline " << t;
        ASSERT_EQ(x.epochs.size(), y.epochs.size()) << "timeline " << t;
        for (size_t e = 0; e < x.epochs.size(); ++e) {
            EXPECT_EQ(x.epochs[e].shots, y.epochs[e].shots);
            EXPECT_EQ(x.epochs[e].mismatches, y.epochs[e].mismatches);
        }
    }
    EXPECT_EQ(a.ledger.fabDeadPatches, b.ledger.fabDeadPatches);
    EXPECT_EQ(a.ledger.fabAdaptedPatches, b.ledger.fabAdaptedPatches);
    EXPECT_EQ(a.ledger.fabDistanceLoss, b.ledger.fabDistanceLoss);
}

// ---------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------

TEST(FabSampler, RateBoundsAndDeterminism)
{
    const CodePatch patch = squarePatch(5);

    FabDefectModel off;
    off.seed = 42; // a seed alone breaks nothing
    const auto none = sampleFabDefectsChecked(patch, off);
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none->empty());
    EXPECT_FALSE(off.enabled());

    FabDefectModel all;
    all.qubitRate = 1.0;
    all.couplerRate = 1.0;
    const auto every = sampleFabDefectsChecked(patch, all);
    ASSERT_TRUE(every.ok());
    EXPECT_EQ(every->qubits.size(), fabQubitCandidates(patch).size());
    EXPECT_EQ(every->couplers.size(), fabCouplerCandidates(patch).size());

    FabDefectModel some;
    some.qubitRate = 0.1;
    some.couplerRate = 0.05;
    some.seed = 7;
    const auto a = sampleFabDefectsChecked(patch, some);
    const auto b = sampleFabDefectsChecked(patch, some);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->qubits, b->qubits);
    EXPECT_EQ(a->couplers, b->couplers);

    some.seed = 8; // a different chip
    const auto c = sampleFabDefectsChecked(patch, some);
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE(a->qubits != c->qubits || a->couplers != c->couplers);
}

TEST(FabSampler, RejectsMalformedRates)
{
    const CodePatch patch = squarePatch(3);
    for (double bad : {1.5, -0.25}) {
        FabDefectModel m;
        m.qubitRate = bad;
        EXPECT_EQ(sampleFabDefectsChecked(patch, m).status().code(),
                  StatusCode::kInvalidArgument)
            << "qubitRate " << bad;
        FabDefectModel m2;
        m2.couplerRate = bad;
        EXPECT_EQ(sampleFabDefectsChecked(patch, m2).status().code(),
                  StatusCode::kInvalidArgument)
            << "couplerRate " << bad;
    }
}

// ---------------------------------------------------------------------
// Bandage adapter.
// ---------------------------------------------------------------------

TEST(FabAdapter, MatchesApplyStrategyAndValidates)
{
    // The adapter is a thin deterministic wrapper over the strategy
    // layer: its patch must equal applyStrategy on the effective defect
    // set, structure for structure, and pass code validation.
    const CodePatch patch = squarePatch(5);
    int exercised = 0;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        FabDefectModel m;
        m.qubitRate = 0.08;
        m.couplerRate = 0.04;
        m.seed = seed;
        const auto sample = sampleFabDefectsChecked(patch, m);
        ASSERT_TRUE(sample.ok());
        if (sample->empty())
            continue;
        const auto adapt = adaptFabDefectsChecked(Strategy::SurfDeformer, 5,
                                                  2, *sample);
        ASSERT_TRUE(adapt.ok()) << adapt.status().str();
        const auto direct = applyStrategyChecked(Strategy::SurfDeformer, 5,
                                                 2, fabEffectiveSites(*sample));
        ASSERT_TRUE(direct.ok());
        EXPECT_EQ(patchSignature(adapt->outcome.patch),
                  patchSignature(direct->patch))
            << "seed " << seed;
        EXPECT_EQ(adapt->outcome.distX, direct->distX);
        EXPECT_EQ(adapt->outcome.distZ, direct->distZ);
        EXPECT_EQ(adapt->outcome.alive, direct->alive);
        if (!adapt->outcome.alive)
            continue;
        const auto v = adapt->outcome.patch.validate();
        EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.reason;
        ++exercised;
    }
    EXPECT_GE(exercised, 3) << "rate too low to exercise the adapter";
}

TEST(FabAdapter, AdaptedPatchIsNoiselesslyDeterministic)
{
    // Tableau oracle: a noiseless memory run on a bandage-adapted patch
    // must be detector-quiet with an unflipped observable, for real
    // (random) measurement collapse — the super-stabilizer wiring can't
    // hide behind Monte-Carlo averaging.
    const CodePatch patch = squarePatch(5);
    NoiseParams noiseless;
    noiseless.p = 0.0;
    noiseless.pDefect = 0.0;
    int exercised = 0;
    for (uint64_t chip_seed = 1; chip_seed <= 12 && exercised < 3;
         ++chip_seed) {
        FabDefectModel m;
        m.qubitRate = 0.08;
        m.couplerRate = 0.04;
        m.seed = chip_seed;
        const auto sample = sampleFabDefectsChecked(patch, m);
        ASSERT_TRUE(sample.ok());
        if (sample->empty())
            continue;
        const auto adapt = adaptFabDefectsChecked(Strategy::SurfDeformer, 5,
                                                  2, *sample);
        ASSERT_TRUE(adapt.ok());
        if (!adapt->outcome.alive)
            continue;
        for (PauliType basis : {PauliType::Z, PauliType::X}) {
            MemorySpec spec;
            spec.basis = basis;
            spec.rounds = 6;
            const BuiltCircuit built =
                buildMemoryCircuit(adapt->outcome.patch, spec, noiseless);
            for (uint64_t seed = 1; seed <= 4; ++seed) {
                const auto run =
                    TableauSimulator::runCircuit(built.circuit, seed, false);
                for (size_t i = 0; i < run.detectors.size(); ++i)
                    ASSERT_FALSE(run.detectors[i])
                        << "chip " << chip_seed << " detector " << i
                        << " fired without noise";
                ASSERT_FALSE(run.observables.at(0))
                    << "chip " << chip_seed << ": logical flipped";
            }
        }
        ++exercised;
    }
    EXPECT_GE(exercised, 3);
}

// ---------------------------------------------------------------------
// Scenario-engine wiring.
// ---------------------------------------------------------------------

ScenarioConfig
fabScenarioConfig()
{
    ScenarioConfig sc;
    sc.timeline.strategy = Strategy::SurfDeformer;
    sc.timeline.d = 5;
    sc.timeline.deltaD = 2;
    sc.timeline.horizonRounds = 30;
    sc.timeline.windowRounds = 10;
    sc.defectModel.durationSec = 20e-6;
    sc.defectModel.regionDiameter = 2;
    sc.eventRateScale = 150000.0; // several strikes per timeline
    sc.numTimelines = 3;
    sc.noise.p = 2e-3;
    sc.maxShotsPerTimeline = 128;
    sc.batchShots = 64;
    sc.seed = 99;
    return sc;
}

TEST(FabScenario, ZeroRateReproducesMemoryExperimentBitExactly)
{
    // An enabled-but-zero-rate fab model must cost nothing: with no
    // dynamic events the scenario still reproduces the plain memory
    // experiment shot for shot.
    MemoryExperimentConfig mem;
    mem.spec.rounds = 12;
    mem.noise.p = 4e-3;
    mem.maxShots = 2048;
    mem.batchShots = 512;
    mem.targetFailures = uint64_t{1} << 30;
    mem.seed = 2024;
    mem.threads = 2;
    const auto ref = runMemoryExperiment(squarePatch(5), mem);

    ScenarioConfig sc;
    sc.timeline.d = 5;
    sc.timeline.horizonRounds = 12;
    sc.timeline.windowRounds = 4;
    sc.eventRateScale = 0.0;
    sc.noise.p = 4e-3;
    sc.maxShotsPerTimeline = 2048;
    sc.batchShots = 512;
    sc.targetFailures = uint64_t{1} << 30;
    sc.seed = 2024;
    sc.threads = 2;
    sc.fabDefects.qubitRate = 0.0;
    sc.fabDefects.couplerRate = 0.0;
    sc.fabDefects.seed = 0xfab; // a seed alone must change nothing
    const auto run = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(run.ok()) << run.status().str();
    EXPECT_EQ(run->shots, ref.shots);
    EXPECT_EQ(run->failures, ref.failures);
    EXPECT_EQ(run->fabDefectiveQubits, 0u);
    EXPECT_EQ(run->fabDefectiveCouplers, 0u);
    EXPECT_EQ(run->ledger.fabAdaptedPatches, 0u);
    EXPECT_EQ(run->ledger.fabDeadPatches, 0u);
}

TEST(FabScenario, ZeroRateMatchesConfigWithoutFabField)
{
    // With dynamic strikes in play, a zero-rate fab model must still be
    // bit-identical to a config that never mentions fabrication.
    const ScenarioConfig plain = fabScenarioConfig();
    const auto truth = runScenarioExperimentChecked(plain);
    ASSERT_TRUE(truth.ok()) << truth.status().str();

    ScenarioConfig zero = fabScenarioConfig();
    zero.fabDefects.seed = 123456789;
    const auto run = runScenarioExperimentChecked(zero);
    ASSERT_TRUE(run.ok());
    expectSameResults(*truth, *run);
}

TEST(FabScenario, BrokenChipThreadCountInvariance)
{
    // A broken chip plus per-timeline injected fab defects: results must
    // be bit-identical at any thread count (sampling is pure hashes of
    // seeds and salts; dead chips are deterministic all-loss timelines).
    ScenarioConfig base = fabScenarioConfig();
    base.fabDefects.qubitRate = 0.05;
    base.fabDefects.couplerRate = 0.02;
    base.fabDefects.seed = 21;
    base.faults = mustPlan("seed=5;fab.q.p=0.03;fab.c.p=0.01");

    base.threads = 1;
    const auto ref = runScenarioExperimentChecked(base);
    ASSERT_TRUE(ref.ok()) << ref.status().str();
    EXPECT_GT(ref->ledger.fabAdaptedPatches + ref->ledger.fabDeadPatches,
              0u)
        << "the chip came out pristine; bump a rate or seed";

    for (size_t threads : {size_t{4}, size_t{8}}) {
        ScenarioConfig cfg = base;
        cfg.threads = threads;
        const auto run = runScenarioExperimentChecked(cfg);
        ASSERT_TRUE(run.ok()) << run.status().str();
        expectSameResults(*ref, *run);
    }
}

TEST(FabScenario, DeadChipsAreTalliedNeverAborted)
{
    // Rate-1 chips with no spare room are unconditionally dead: the run
    // must complete (ok()), count every timeline as a deterministic
    // all-loss yield failure, and keep the books in the ledger.
    ScenarioConfig sc = fabScenarioConfig();
    sc.timeline.deltaD = 0; // no pristine enlargement region to flee into
    sc.fabDefects.qubitRate = 1.0;
    sc.fabDefects.couplerRate = 1.0;
    sc.fabDefects.seed = 3;
    const auto run = runScenarioExperimentChecked(sc);
    ASSERT_TRUE(run.ok()) << run.status().str();
    EXPECT_FALSE(run->fabChipAlive);
    EXPECT_EQ(run->deadTimelines,
              static_cast<uint64_t>(sc.numTimelines));
    EXPECT_EQ(run->ledger.fabDeadPatches,
              static_cast<uint64_t>(sc.numTimelines));
    EXPECT_EQ(run->shots, run->failures);
    EXPECT_GT(run->shots, 0u);
    for (const TimelineStats &tl : run->timelines) {
        EXPECT_TRUE(tl.dead);
        EXPECT_EQ(tl.shots, tl.failures);
    }
}

TEST(FabScenario, KillAndResumePreservesFabCounters)
{
    // A broken-chip run killed mid-sweep (snap.kill) must resume from
    // its checkpoint bit-identically, fab ledger counters included.
    ScenarioConfig base = fabScenarioConfig();
    base.fabDefects.qubitRate = 0.05;
    base.fabDefects.couplerRate = 0.02;
    base.fabDefects.seed = 21;
    base.faults = mustPlan("seed=5;fab.q.p=0.03;fab.c.p=0.01");
    const auto truth = runScenarioExperimentChecked(base);
    ASSERT_TRUE(truth.ok()) << truth.status().str();

    TempDir dir;
    ScenarioConfig killed = base;
    killed.persistDir = dir.path;
    killed.faults = mustPlan("seed=5;fab.q.p=0.03;fab.c.p=0.01;snap.kill=2");
    const auto crash = runScenarioExperimentChecked(killed);
    ASSERT_FALSE(crash.ok());
    EXPECT_EQ(crash.status().code(), StatusCode::kAborted)
        << crash.status().str();

    ScenarioConfig resumed = base;
    resumed.persistDir = dir.path;
    const auto done = runScenarioExperimentChecked(resumed);
    ASSERT_TRUE(done.ok()) << done.status().str();
    EXPECT_EQ(done->resumedTimelines, 2u);
    expectSameResults(*truth, *done);
}

// ---------------------------------------------------------------------
// Input validation.
// ---------------------------------------------------------------------

TEST(FabValidation, FaultPlanFabClauses)
{
    const FaultPlan plan = mustPlan("seed=2;fab.q.p=0.01;fab.c.p=0.005");
    EXPECT_DOUBLE_EQ(plan.fabQubitProb, 0.01);
    EXPECT_DOUBLE_EQ(plan.fabCouplerProb, 0.005);
    EXPECT_TRUE(plan.enabled());
    EXPECT_NE(plan.summary().find("fab"), std::string::npos);

    EXPECT_EQ(parseFaultPlan("fab.q.p=1.5").status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parseFaultPlan("fab.c.p=-0.1").status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(parseFaultPlan("fab.rate=0.1").status().code(),
              StatusCode::kInvalidArgument); // unknown key
}

TEST(FabValidation, ScenarioConfigRejectsMalformedFabModel)
{
    ScenarioConfig sc = fabScenarioConfig();
    sc.fabDefects.qubitRate = 1.5;
    EXPECT_EQ(runScenarioExperimentChecked(sc).status().code(),
              StatusCode::kInvalidArgument);

    ScenarioConfig sc2 = fabScenarioConfig();
    sc2.fabDefects.couplerRate = -0.5;
    EXPECT_EQ(runScenarioExperimentChecked(sc2).status().code(),
              StatusCode::kInvalidArgument);

    ScenarioConfig sc3 = fabScenarioConfig();
    sc3.timeline.strategy = static_cast<Strategy>(250);
    EXPECT_EQ(runScenarioExperimentChecked(sc3).status().code(),
              StatusCode::kInvalidArgument);
}

} // namespace
} // namespace surf
