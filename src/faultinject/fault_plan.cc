#include "faultinject/fault_plan.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "defects/fab_defects.hh"
#include "persist/snapshot.hh"

namespace surf {

namespace {

/** Site tags keep decision streams of different sites decorrelated. */
enum Site : uint64_t
{
    kSiteStall = 0x5741ULL,
    kSiteStormEpoch = 0x5701ULL,
    kSiteStormBatch = 0x5702ULL,
    kSiteTruncate = 0x7201ULL,
    kSiteCorrupt = 0xc021ULL,
    kSiteBurst = 0xb021ULL,
    kSiteBurstCenter = 0xb022ULL,
    kSiteSnapBitflip = 0x50b1ULL,
};

/** SplitMix64 over the fold of (seed, site, a, b, c): stateless, so
 *  decisions are identical at any thread count and on every replay. */
uint64_t
mix(uint64_t seed, uint64_t site, uint64_t a, uint64_t b = 0,
    uint64_t c = 0)
{
    uint64_t z = seed ^ (site * 0x9e3779b97f4a7c15ULL);
    for (uint64_t v : {a, b, c}) {
        z += 0x9e3779b97f4a7c15ULL * (v + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
    }
    return z;
}

double
unit(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status
badClause(const std::string &clause, const char *why)
{
    return Status::invalidArgument("fault plan clause '" + clause +
                                   "': " + why);
}

} // namespace

std::string
FaultPlan::summary() const
{
    if (!enabled())
        return "none";
    char buf[256];
    std::string out = "seed=" + std::to_string(seed);
    if (stallProb > 0.0) {
        std::snprintf(buf, sizeof buf, "; stall p=%g ns=%llu stages=%s%s",
                      stallProb, static_cast<unsigned long long>(stallNs),
                      (stallStages >> kStageBlossom) & 1 ? "blossom," : "",
                      (stallStages >> kStageRows) & 1 ? "rows" : "");
        out += buf;
    }
    if (stormEveryEpochs || stormEveryBatches) {
        std::snprintf(buf, sizeof buf, "; storm epochs=%u batches=%u",
                      stormEveryEpochs, stormEveryBatches);
        out += buf;
    }
    if (truncateFrac >= 0.0) {
        std::snprintf(buf, sizeof buf, "; truncate frac=%g", truncateFrac);
        out += buf;
    }
    if (corruptProb > 0.0) {
        std::snprintf(buf, sizeof buf, "; corrupt p=%g", corruptProb);
        out += buf;
    }
    if (burstProb > 0.0) {
        std::snprintf(buf, sizeof buf, "; burst p=%g size=%u", burstProb,
                      burstSize);
        out += buf;
    }
    if (fabQubitProb > 0.0 || fabCouplerProb > 0.0) {
        std::snprintf(buf, sizeof buf, "; fab q.p=%g c.p=%g", fabQubitProb,
                      fabCouplerProb);
        out += buf;
    }
    if (snapTornFrac >= 0.0 || snapBitflipProb > 0.0 || snapStale ||
        snapKillTimelines) {
        std::snprintf(buf, sizeof buf,
                      "; snap torn=%g bitflip.p=%g stale=%d kill=%u",
                      snapTornFrac, snapBitflipProb, snapStale ? 1 : 0,
                      snapKillTimelines);
        out += buf;
    }
    return out;
}

Status
validateFaultPlan(const FaultPlan &plan)
{
    auto prob_ok = [](double p) {
        return std::isfinite(p) && p >= 0.0 && p <= 1.0;
    };
    if (!prob_ok(plan.stallProb))
        return Status::invalidArgument("fault plan: stall.p must be a "
                                       "probability in [0, 1]");
    if (!prob_ok(plan.corruptProb))
        return Status::invalidArgument("fault plan: corrupt.p must be a "
                                       "probability in [0, 1]");
    if (!prob_ok(plan.burstProb))
        return Status::invalidArgument("fault plan: burst.p must be a "
                                       "probability in [0, 1]");
    if (plan.truncateFrac >= 0.0 &&
        !(std::isfinite(plan.truncateFrac) && plan.truncateFrac <= 1.0))
        return Status::invalidArgument("fault plan: truncate.frac must be "
                                       "in [0, 1]");
    if (plan.stallProb > 0.0 && plan.stallNs == 0)
        return Status::invalidArgument("fault plan: stall.ns must be > 0 "
                                       "when stall.p > 0");
    if (plan.stallProb > 0.0 &&
        !(plan.stallStages &
          ((1u << kStageBlossom) | (1u << kStageRows))))
        return Status::invalidArgument("fault plan: stall.stages must name "
                                       "blossom and/or rows");
    if (plan.burstProb > 0.0 && plan.burstSize == 0)
        return Status::invalidArgument("fault plan: burst.size must be > 0 "
                                       "when burst.p > 0");
    if (!prob_ok(plan.fabQubitProb))
        return Status::invalidArgument("fault plan: fab.q.p must be a "
                                       "probability in [0, 1]");
    if (!prob_ok(plan.fabCouplerProb))
        return Status::invalidArgument("fault plan: fab.c.p must be a "
                                       "probability in [0, 1]");
    if (!prob_ok(plan.snapBitflipProb))
        return Status::invalidArgument("fault plan: snap.bitflip.p must be "
                                       "a probability in [0, 1]");
    if (plan.snapTornFrac >= 0.0 &&
        !(std::isfinite(plan.snapTornFrac) && plan.snapTornFrac <= 1.0))
        return Status::invalidArgument("fault plan: snap.torn must be in "
                                       "[0, 1]");
    return Status::okStatus();
}

StatusOr<FaultPlan>
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty())
            continue;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos)
            return badClause(clause, "expected key=value");
        const std::string key = clause.substr(0, eq);
        const std::string val = clause.substr(eq + 1);
        if (val.empty())
            return badClause(clause, "empty value");

        auto number = [&](double &out) -> bool {
            char *tail = nullptr;
            out = std::strtod(val.c_str(), &tail);
            return tail && *tail == '\0';
        };
        double num = 0.0;
        if (key == "stall.stages") {
            uint8_t stages = 0;
            size_t p = 0;
            while (p < val.size()) {
                size_t c = val.find(',', p);
                if (c == std::string::npos)
                    c = val.size();
                const std::string name = val.substr(p, c - p);
                p = c + 1;
                if (name == "blossom")
                    stages |= 1u << kStageBlossom;
                else if (name == "rows")
                    stages |= 1u << kStageRows;
                else
                    return badClause(clause, "stage must be 'blossom' or "
                                             "'rows'");
            }
            plan.stallStages = stages;
            continue;
        }
        if (!number(num))
            return badClause(clause, "value is not a number");
        if (key == "seed")
            plan.seed = static_cast<uint64_t>(num);
        else if (key == "stall.p")
            plan.stallProb = num;
        else if (key == "stall.ns")
            plan.stallNs = static_cast<uint64_t>(num);
        else if (key == "storm.epochs")
            plan.stormEveryEpochs = static_cast<uint32_t>(num);
        else if (key == "storm.batches")
            plan.stormEveryBatches = static_cast<uint32_t>(num);
        else if (key == "truncate.frac")
            plan.truncateFrac = num;
        else if (key == "corrupt.p")
            plan.corruptProb = num;
        else if (key == "burst.p")
            plan.burstProb = num;
        else if (key == "burst.size")
            plan.burstSize = static_cast<uint32_t>(num);
        else if (key == "fab.q.p")
            plan.fabQubitProb = num;
        else if (key == "fab.c.p")
            plan.fabCouplerProb = num;
        else if (key == "snap.torn")
            plan.snapTornFrac = num;
        else if (key == "snap.bitflip.p")
            plan.snapBitflipProb = num;
        else if (key == "snap.stale")
            plan.snapStale = num != 0.0;
        else if (key == "snap.kill")
            plan.snapKillTimelines = static_cast<uint32_t>(num);
        else
            return badClause(clause,
                             "unknown key (expected seed, stall.p, "
                             "stall.ns, stall.stages, storm.epochs, "
                             "storm.batches, truncate.frac, corrupt.p, "
                             "burst.p, burst.size, fab.q.p, fab.c.p, "
                             "snap.torn, snap.bitflip.p, snap.stale, "
                             "snap.kill)");
    }
    if (const Status s = validateFaultPlan(plan); !s.ok())
        return s;
    return plan;
}

StatusOr<FaultPlan>
faultPlanFromEnv()
{
    const char *env = std::getenv("SURF_FAULT_PLAN");
    if (!env || !*env)
        return FaultPlan{};
    auto parsed = parseFaultPlan(env);
    if (!parsed.ok())
        return Status::invalidArgument("SURF_FAULT_PLAN: " +
                                       parsed.status().message());
    return parsed;
}

uint64_t
FaultInjector::stallNs(uint64_t salt, uint64_t shot, uint64_t epoch,
                       DecodeStage stage) const
{
    if (plan_.stallProb <= 0.0 || !(plan_.stallStages & (1u << stage)))
        return 0;
    const uint64_t h =
        mix(plan_.seed, kSiteStall + stage, salt, shot, epoch);
    return unit(h) < plan_.stallProb ? plan_.stallNs : 0;
}

bool
FaultInjector::stormAtEpochBuild(uint64_t salt, uint64_t epochIndex) const
{
    (void)salt;
    const uint32_t n = plan_.stormEveryEpochs;
    return n && (epochIndex + 1) % n == 0;
}

bool
FaultInjector::stormAtBatch(uint64_t salt, uint64_t batchIndex) const
{
    (void)salt;
    const uint32_t n = plan_.stormEveryBatches;
    return n && (batchIndex + 1) % n == 0;
}

void
FaultInjector::mutateStream(uint64_t salt,
                            std::vector<DefectEvent> &events) const
{
    if (plan_.truncateFrac >= 0.0) {
        const size_t keep = static_cast<size_t>(
            std::floor(plan_.truncateFrac *
                       static_cast<double>(events.size())));
        if (keep < events.size())
            events.resize(keep);
    }
    if (plan_.corruptProb > 0.0) {
        for (size_t i = 0; i < events.size(); ++i) {
            const uint64_t h = mix(plan_.seed, kSiteCorrupt, salt, i);
            if (unit(h) >= plan_.corruptProb)
                continue;
            DefectEvent &ev = events[i];
            // Three malformation shapes, all of which input validation
            // must reject with a diagnosable Status (never UB): an
            // inverted cycle interval, an event with no sites, and a
            // center teleported far off the lattice.
            switch (h % 3) {
              case 0:
                std::swap(ev.startCycle, ev.endCycle);
                if (ev.startCycle == ev.endCycle)
                    ev.startCycle = ev.endCycle + 1;
                break;
              case 1:
                ev.sites.clear();
                break;
              default:
                ev.center = Coord{1 << 24, 1 << 24};
                ev.sites = {ev.center};
                break;
            }
        }
    }
}

size_t
FaultInjector::injectBurst(uint64_t salt, uint64_t shot, uint64_t epoch,
                           size_t numDetectors,
                           std::vector<uint32_t> &ids) const
{
    if (plan_.burstProb <= 0.0 || numDetectors == 0)
        return 0;
    const uint64_t h = mix(plan_.seed, kSiteBurst, salt, shot, epoch);
    if (unit(h) >= plan_.burstProb)
        return 0;
    const size_t want =
        std::min<size_t>(plan_.burstSize, numDetectors);
    const uint64_t hc =
        mix(plan_.seed, kSiteBurstCenter, salt, shot, epoch);
    const size_t start =
        static_cast<size_t>(hc % (numDetectors - want + 1));
    const size_t before = ids.size();
    for (size_t i = 0; i < want; ++i)
        ids.push_back(static_cast<uint32_t>(start + i));
    // The decoders require ascending, duplicate-free detector lists.
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids.size() - before; // net new detectors (overlaps dedup away)
}

void
FaultInjector::injectFabDefects(uint64_t salt, const CodePatch &patch,
                                FabDefectSample &sample) const
{
    if (plan_.fabQubitProb <= 0.0 && plan_.fabCouplerProb <= 0.0)
        return;
    // The salt is already unique per timeline; the extra constant keeps
    // the decision stream decorrelated from a FabDefectModel that happens
    // to share the plan seed.
    sampleFabInto(sample, patch, plan_.fabQubitProb, plan_.fabCouplerProb,
                  plan_.seed, salt ^ 0xfab5a17eULL);
}

void
FaultInjector::mutateSnapshotBytes(uint64_t salt, std::string &bytes) const
{
    // Header layout (persist/snapshot.hh): magic[8] | format u32 at 8 |
    // abi u32 at 12 | crc32 of bytes [0, 16) at 16.
    if (plan_.snapStale && bytes.size() >= 20) {
        const uint32_t alien = 0xFFFFFFFFu;
        std::memcpy(&bytes[8], &alien, sizeof alien);
        // Recompute the header CRC so the loader's version check fires,
        // not its CRC check — this shape models a well-formed file from
        // a different build, not media damage.
        const uint32_t c = crc32(bytes.data(), 16);
        std::memcpy(&bytes[16], &c, sizeof c);
    }
    if (plan_.snapBitflipProb > 0.0) {
        for (size_t i = 0; i < bytes.size(); ++i) {
            const uint64_t h = mix(plan_.seed, kSiteSnapBitflip, salt, i);
            if (unit(h) < plan_.snapBitflipProb)
                bytes[i] = static_cast<char>(
                    static_cast<uint8_t>(bytes[i]) ^
                    static_cast<uint8_t>(1u << ((h >> 8) & 7)));
        }
    }
    // Torn write last: whatever the other faults produced, the tail is
    // simply missing — the shape a crash mid-write leaves behind.
    if (plan_.snapTornFrac >= 0.0) {
        const auto keep = static_cast<size_t>(
            std::floor(plan_.snapTornFrac *
                       static_cast<double>(bytes.size())));
        if (keep < bytes.size())
            bytes.resize(keep);
    }
}

} // namespace surf
