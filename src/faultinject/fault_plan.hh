/**
 * @file
 * Deterministic fault injection for the scenario service. A FaultPlan
 * names what goes wrong and how often; a FaultInjector turns it into
 * per-site decisions that are pure hash functions of (plan seed, site,
 * indices) — no mutable state, so decisions are identical at any thread
 * count and any replay with the same seed. The layer is compiled always
 * and enabled only by a non-empty plan (ScenarioConfig::faults or the
 * SURF_FAULT_PLAN environment variable); an empty plan short-circuits
 * every query to "no fault".
 *
 * Sites:
 *  - decoder stalls (stall.*): virtual time charged to a ladder stage at
 *    stage entry, forcing the deadline's staged fallback deterministically
 *    (util/deadline.hh, virtual clock mode);
 *  - cache-eviction storms (storm.*): DeformedCodeCache::clear() fired
 *    mid-timeline between epoch builds and between shot batches, while
 *    live decodes still hold shared_ptr handles into evicted entries;
 *  - defect-stream truncation/corruption (truncate.frac / corrupt.p):
 *    models a malformed upstream producer — truncation drops the tail of
 *    the sampled event list (still valid, results change deterministically),
 *    corruption mangles events into invalid ones that the engine's input
 *    validation must reject with a Status, never UB;
 *  - adversarial burst syndromes (burst.*): a contiguous run of extra
 *    fired detectors spliced into a shot's defect list ahead of decoding,
 *    the worst-case input shape for the matching backends;
 *  - fabrication defects (fab.q.p / fab.c.p): per-timeline broken
 *    hardware — extra defective qubits/couplers added to the scenario's
 *    chip sample (defects/fab_defects.hh), forcing the bandage adapter
 *    and the dead-patch yield accounting;
 *  - snapshot faults (snap.*): corruption applied to warm-start snapshot
 *    bytes as they are written (src/persist) — torn-write truncation,
 *    seeded single-bit flips, a stale format-version stamp — plus
 *    snap.kill=N, which aborts the run (Status ABORTED) after N
 *    timelines complete, the kill/resume checkpoint harness.
 *
 * SURF_FAULT_PLAN syntax: semicolon-separated key=value clauses, e.g.
 *   seed=7;stall.p=1;stall.ns=50e6;stall.stages=blossom,rows;
 *   storm.epochs=2;storm.batches=3;truncate.frac=0.5;corrupt.p=0.1;
 *   burst.p=0.05;burst.size=40;fab.q.p=0.01;fab.c.p=0.005;
 *   snap.torn=0.6;snap.bitflip.p=1e-4;snap.stale=1;snap.kill=3
 * Unknown keys and out-of-range values are INVALID_ARGUMENT errors.
 */

#ifndef SURF_FAULTINJECT_FAULT_PLAN_HH
#define SURF_FAULTINJECT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "defects/defect_sampler.hh"
#include "util/deadline.hh"
#include "util/status.hh"

namespace surf {

struct FabDefectSample; // defects/fab_defects.hh

/** Declarative fault schedule (empty = everything disabled). */
struct FaultPlan
{
    uint64_t seed = 0; ///< decision seed (independent of the run seed)

    // --- decoder stalls -------------------------------------------------
    double stallProb = 0.0;           ///< per (shot, epoch, stage)
    uint64_t stallNs = 50'000'000;    ///< virtual stall per hit (50 ms)
    uint8_t stallStages =
        (1u << kStageBlossom) | (1u << kStageRows); ///< stage bitmask

    // --- cache-eviction storms ------------------------------------------
    uint32_t stormEveryEpochs = 0;  ///< clear() before every Nth epoch build
    uint32_t stormEveryBatches = 0; ///< clear() before every Nth shot batch

    // --- defect-stream faults -------------------------------------------
    double truncateFrac = -1.0; ///< keep this fraction of events (<0 = off)
    double corruptProb = 0.0;   ///< per event: mangle into an invalid one

    // --- adversarial burst syndromes ------------------------------------
    double burstProb = 0.0;  ///< per (shot, epoch)
    uint32_t burstSize = 32; ///< contiguous detectors per injected burst

    // --- fabrication defects (fab.q.p / fab.c.p) ------------------------
    // Per-timeline extra broken hardware on top of any configured
    // FabDefectModel chip: each physical qubit / coupler of the base
    // patch is independently defective with these probabilities, decided
    // by pure hashes of (plan seed, timeline salt, site) — so replays of
    // a defective chip are identical at any thread count, like every
    // other injected fault.
    double fabQubitProb = 0.0;   ///< per physical qubit, per timeline
    double fabCouplerProb = 0.0; ///< per ancilla-data coupler, per timeline

    // --- snapshot faults (src/persist) ----------------------------------
    double snapTornFrac = -1.0;   ///< truncate written snapshots to this
                                  ///< fraction of their bytes (<0 = off);
                                  ///< models a torn write / full disk
    double snapBitflipProb = 0.0; ///< per written snapshot byte: flip one
                                  ///< seeded bit (media corruption)
    bool snapStale = false;       ///< stamp an alien format version (with
                                  ///< a matching header CRC) — version
                                  ///< skew from an older/newer writer
    uint32_t snapKillTimelines = 0; ///< abort the run once this many
                                    ///< timelines have completed
                                    ///< cumulatively (0 = off) — the
                                    ///< kill/resume harness

    bool
    enabled() const
    {
        return stallProb > 0.0 || stormEveryEpochs || stormEveryBatches ||
               truncateFrac >= 0.0 || corruptProb > 0.0 || burstProb > 0.0 ||
               fabQubitProb > 0.0 || fabCouplerProb > 0.0 ||
               snapTornFrac >= 0.0 || snapBitflipProb > 0.0 || snapStale ||
               snapKillTimelines;
    }
    bool hasDecoderStalls() const { return stallProb > 0.0; }

    /** One-line description for logs and bench output. */
    std::string summary() const;
};

/** Parse a SURF_FAULT_PLAN-syntax spec. Empty string = empty plan. */
StatusOr<FaultPlan> parseFaultPlan(const std::string &spec);

/** Range-check a (possibly hand-built) plan. */
Status validateFaultPlan(const FaultPlan &plan);

/** The SURF_FAULT_PLAN environment plan; empty plan when unset. */
StatusOr<FaultPlan> faultPlanFromEnv();

/**
 * Stateless decision oracle for one plan. Every query hashes the plan
 * seed with the site id and the caller's indices; the `salt` argument is
 * the per-timeline decorrelator (the engine passes its batch-seed base,
 * which is unique per timeline and stable across thread counts).
 */
class FaultInjector
{
  public:
    FaultInjector() = default; ///< disabled
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    const FaultPlan &plan() const { return plan_; }
    bool enabled() const { return plan_.enabled(); }
    bool
    virtualClockNeeded() const
    {
        return plan_.hasDecoderStalls();
    }

    /** Virtual stall (ns) charged to `stage` of this decode; 0 = none. */
    uint64_t stallNs(uint64_t salt, uint64_t shot, uint64_t epoch,
                     DecodeStage stage) const;

    /** Fire a cache-eviction storm before this epoch build? */
    bool stormAtEpochBuild(uint64_t salt, uint64_t epochIndex) const;

    /** Fire a cache-eviction storm before this shot batch? */
    bool stormAtBatch(uint64_t salt, uint64_t batchIndex) const;

    /**
     * Apply the plan's stream faults to a sampled event list in place:
     * deterministic tail truncation, then per-event corruption (swapped
     * cycle interval, cleared site set, far out-of-range center — shapes
     * validateDefectStream must reject).
     */
    void mutateStream(uint64_t salt, std::vector<DefectEvent> &events) const;

    /**
     * Maybe splice an adversarial burst into a shot's epoch-local fired
     * detector list (kept sorted and deduplicated, ids < numDetectors).
     * @return number of detector ids added (0 = no burst)
     */
    size_t injectBurst(uint64_t salt, uint64_t shot, uint64_t epoch,
                       size_t numDetectors,
                       std::vector<uint32_t> &ids) const;

    /**
     * Add the plan's per-timeline fabrication defects (fab.q.p /
     * fab.c.p) to a chip sample in place: every physical qubit and
     * coupler of `patch` is independently defective by a pure hash of
     * (plan seed, salt, site), so the same timeline always breaks the
     * same hardware — thread-count-invariant defective-chip replays.
     */
    void injectFabDefects(uint64_t salt, const CodePatch &patch,
                          FabDefectSample &sample) const;

    /**
     * Apply the plan's snapshot faults to a finished snapshot byte image
     * just before it reaches the filesystem (persist/SnapshotWriter):
     * stale version stamp (with a recomputed header CRC, so the version
     * check itself fires, not the CRC), seeded per-byte single-bit
     * flips, then tail truncation — torn write last, like real media.
     * The loader must degrade every shape to a cold rebuild.
     */
    void mutateSnapshotBytes(uint64_t salt, std::string &bytes) const;

    /** Cumulative completed-timeline count at which the engine simulates
     *  a crash (Status ABORTED); 0 = never. */
    uint32_t killAfterTimelines() const { return plan_.snapKillTimelines; }

  private:
    FaultPlan plan_;
};

} // namespace surf

#endif // SURF_FAULTINJECT_FAULT_PLAN_HH
