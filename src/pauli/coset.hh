/**
 * @file
 * Exact minimum-weight coset-leader search over GF(2): the test oracle for
 * code-distance computations. Enumerates offset + span(basis) with a Gray
 * code so each step touches one basis vector.
 */

#ifndef SURF_PAULI_COSET_HH
#define SURF_PAULI_COSET_HH

#include <vector>

#include "pauli/bitvec.hh"

namespace surf {

/**
 * Minimum Hamming weight over the coset {offset + sum S : S subset of basis}.
 *
 * The basis is first reduced to an independent set. Intended for test-size
 * instances; panics if the reduced basis exceeds `max_rank` (cost 2^rank).
 *
 * @param basis generating vectors of the subspace
 * @param offset coset representative (e.g. a logical operator)
 * @param max_rank safety cap on the enumeration exponent
 * @return the minimum weight found
 */
size_t minCosetWeight(const std::vector<BitVec> &basis, const BitVec &offset,
                      size_t max_rank = 26);

} // namespace surf

#endif // SURF_PAULI_COSET_HH
