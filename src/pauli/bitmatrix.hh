/**
 * @file
 * Row-major matrix over GF(2) with Gaussian elimination utilities: rank,
 * reduced row echelon form, span membership with certificate, and kernel
 * basis. Used for code-validity checks (independence of generators),
 * detector-continuity solving across deformation epochs, and test oracles.
 */

#ifndef SURF_PAULI_BITMATRIX_HH
#define SURF_PAULI_BITMATRIX_HH

#include <optional>
#include <vector>

#include "pauli/bitvec.hh"

namespace surf {

/** Dense GF(2) matrix; rows are BitVec of a common width. */
class BitMatrix
{
  public:
    BitMatrix() : cols_(0) {}
    explicit BitMatrix(size_t cols) : cols_(cols) {}

    size_t rows() const { return rows_.size(); }
    size_t cols() const { return cols_; }

    void addRow(const BitVec &row);
    const BitVec &row(size_t r) const { return rows_[r]; }
    BitVec &row(size_t r) { return rows_[r]; }

    /** Rank via elimination on a copy. */
    size_t rank() const;

    /** True if all rows are linearly independent. */
    bool rowsIndependent() const { return rank() == rows(); }

    /**
     * Test whether `target` lies in the row span. If so, return the
     * combination as a BitVec over row indices (bit r set means row r is
     * part of the combination); otherwise std::nullopt.
     */
    std::optional<BitVec> solveCombination(const BitVec &target) const;

    /** True if `target` is in the row span. */
    bool inSpan(const BitVec &target) const;

    /** Basis of the null space {v : M v = 0} (column-kernel). */
    std::vector<BitVec> kernelBasis() const;

    /**
     * Solve M x = b for x (length cols()); b has one bit per row.
     * Returns one particular solution or std::nullopt when inconsistent.
     */
    std::optional<BitVec> solveSystem(const BitVec &b) const;

  private:
    size_t cols_;
    std::vector<BitVec> rows_;
};

} // namespace surf

#endif // SURF_PAULI_BITMATRIX_HH
