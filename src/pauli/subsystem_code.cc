#include "pauli/subsystem_code.hh"

#include "pauli/coset.hh"
#include "util/logging.hh"

namespace surf {

void
SubsystemCode::addStabilizer(const PauliString &s)
{
    SURF_ASSERT(s.numQubits() == n_);
    stabilizers_.push_back(s);
}

void
SubsystemCode::addLogicalPair(const PauliString &x, const PauliString &z)
{
    SURF_ASSERT(x.numQubits() == n_ && z.numQubits() == n_);
    logicalX_.push_back(x);
    logicalZ_.push_back(z);
}

void
SubsystemCode::addGaugePair(const PauliString &x, const PauliString &z)
{
    SURF_ASSERT(x.numQubits() == n_ && z.numQubits() == n_);
    gaugeX_.push_back(x);
    gaugeZ_.push_back(z);
}

BitVec
SubsystemCode::symplecticRow(const PauliString &p)
{
    const size_t n = p.numQubits();
    BitVec row(2 * n);
    for (size_t q = 0; q < n; ++q) {
        if (p.xBits().get(q))
            row.set(q, true);
        if (p.zBits().get(q))
            row.set(n + q, true);
    }
    return row;
}

ValidationResult
SubsystemCode::validate() const
{
    // Gather every generator with a role label for error messages.
    struct Gen { const PauliString *p; std::string name; };
    std::vector<Gen> gens;
    for (size_t i = 0; i < stabilizers_.size(); ++i)
        gens.push_back({&stabilizers_[i], "s" + std::to_string(i)});
    for (size_t i = 0; i < logicalX_.size(); ++i) {
        gens.push_back({&logicalX_[i], "LX" + std::to_string(i)});
        gens.push_back({&logicalZ_[i], "LZ" + std::to_string(i)});
    }
    for (size_t i = 0; i < gaugeX_.size(); ++i) {
        gens.push_back({&gaugeX_[i], "GX" + std::to_string(i)});
        gens.push_back({&gaugeZ_[i], "GZ" + std::to_string(i)});
    }

    // Counting identity: n - k - l stabilizers.
    const size_t expect_stabs = n_ - logicalX_.size() - gaugeX_.size();
    if (stabilizers_.size() != expect_stabs) {
        return ValidationResult::fail(
            "stabilizer count " + std::to_string(stabilizers_.size()) +
            " != n-k-l = " + std::to_string(expect_stabs));
    }

    // Condition (1): independence as group elements == GF(2) independence.
    BitMatrix mat(2 * n_);
    for (const auto &g : gens)
        mat.addRow(symplecticRow(*g.p));
    if (!mat.rowsIndependent())
        return ValidationResult::fail("generators are not independent");

    // Conditions (2) and (3): pairwise commutation structure.
    auto pair_anticommutes = [](const PauliString &a, const PauliString &b) {
        return !a.commutesWith(b);
    };
    for (size_t i = 0; i < logicalX_.size(); ++i) {
        if (!pair_anticommutes(logicalX_[i], logicalZ_[i]))
            return ValidationResult::fail(
                "logical pair " + std::to_string(i) + " fails to anti-commute");
    }
    for (size_t i = 0; i < gaugeX_.size(); ++i) {
        if (!pair_anticommutes(gaugeX_[i], gaugeZ_[i]))
            return ValidationResult::fail(
                "gauge pair " + std::to_string(i) + " fails to anti-commute");
    }
    // All non-paired combinations must commute. Identify pairs by pointer.
    auto paired = [&](const PauliString *a, const PauliString *b) {
        for (size_t i = 0; i < logicalX_.size(); ++i)
            if ((a == &logicalX_[i] && b == &logicalZ_[i]) ||
                (b == &logicalX_[i] && a == &logicalZ_[i]))
                return true;
        for (size_t i = 0; i < gaugeX_.size(); ++i)
            if ((a == &gaugeX_[i] && b == &gaugeZ_[i]) ||
                (b == &gaugeX_[i] && a == &gaugeZ_[i]))
                return true;
        return false;
    };
    for (size_t i = 0; i < gens.size(); ++i) {
        for (size_t j = i + 1; j < gens.size(); ++j) {
            if (paired(gens[i].p, gens[j].p))
                continue;
            if (!gens[i].p->commutesWith(*gens[j].p))
                return ValidationResult::fail(
                    gens[i].name + " and " + gens[j].name +
                    " anti-commute but are not a pair");
        }
    }
    return ValidationResult::pass();
}

ValidationResult
SubsystemCode::validateMeasurementSet(
    const std::vector<PauliString> &stab_meas,
    const std::vector<PauliString> &gauge_meas) const
{
    // Span of the stabilizer generators.
    BitMatrix stab_span(2 * n_);
    for (const auto &s : stabilizers_)
        stab_span.addRow(symplecticRow(s));

    // Span of stabilizers plus gauge operators.
    BitMatrix gauge_span(2 * n_);
    for (const auto &s : stabilizers_)
        gauge_span.addRow(symplecticRow(s));
    for (const auto &g : gaugeX_)
        gauge_span.addRow(symplecticRow(g));
    for (const auto &g : gaugeZ_)
        gauge_span.addRow(symplecticRow(g));

    // Condition (1).
    for (size_t i = 0; i < stab_meas.size(); ++i) {
        if (!stab_span.inSpan(symplecticRow(stab_meas[i])))
            return ValidationResult::fail(
                "measured stabilizer " + std::to_string(i) +
                " is outside <s_1..s_m>");
    }
    // Condition (2).
    for (size_t i = 0; i < gauge_meas.size(); ++i) {
        const BitVec row = symplecticRow(gauge_meas[i]);
        if (!gauge_span.inSpan(row))
            return ValidationResult::fail(
                "measured gauge " + std::to_string(i) +
                " is outside the gauge group");
        if (stab_span.inSpan(row))
            return ValidationResult::fail(
                "measured gauge " + std::to_string(i) +
                " is actually a stabilizer");
    }
    // Condition (3): each s_i recoverable from the measured set.
    BitMatrix meas_span(2 * n_);
    for (const auto &m : stab_meas)
        meas_span.addRow(symplecticRow(m));
    for (const auto &m : gauge_meas)
        meas_span.addRow(symplecticRow(m));
    for (size_t i = 0; i < stabilizers_.size(); ++i) {
        if (!meas_span.inSpan(symplecticRow(stabilizers_[i])))
            return ValidationResult::fail(
                "stabilizer generator " + std::to_string(i) +
                " is not recoverable from the measurement set");
    }
    return ValidationResult::pass();
}

bool
SubsystemCode::inStabilizerGroup(const PauliString &p) const
{
    BitMatrix mat(2 * n_);
    for (const auto &s : stabilizers_)
        mat.addRow(symplecticRow(s));
    return mat.inSpan(symplecticRow(p));
}

bool
SubsystemCode::inGaugeGroup(const PauliString &p) const
{
    BitMatrix mat(2 * n_);
    for (const auto &s : stabilizers_)
        mat.addRow(symplecticRow(s));
    for (const auto &g : gaugeX_)
        mat.addRow(symplecticRow(g));
    for (const auto &g : gaugeZ_)
        mat.addRow(symplecticRow(g));
    return mat.inSpan(symplecticRow(p));
}

bool
SubsystemCode::inCentralizerOfStabilizers(const PauliString &p) const
{
    for (const auto &s : stabilizers_)
        if (!p.commutesWith(s))
            return false;
    return true;
}

size_t
SubsystemCode::distanceExactCss(PauliType t, size_t which) const
{
    SURF_ASSERT(which < logicalX_.size());
    const PauliString &logical =
        (t == PauliType::X) ? logicalX_[which] : logicalZ_[which];
    SURF_ASSERT(logical.isCssType(t), "logical operator is not pure-type");

    // The type-t bit-plane of a pure-type operator.
    auto plane = [&](const PauliString &p) {
        return t == PauliType::X ? p.xBits() : p.zBits();
    };

    std::vector<BitVec> basis;
    for (const auto &s : stabilizers_) {
        if (s.isCssType(t))
            basis.push_back(plane(s));
        else
            SURF_ASSERT(s.isCssType(oppositeType(t)),
                        "non-CSS stabilizer in distanceExactCss");
    }
    const auto &gauges = (t == PauliType::X) ? gaugeX_ : gaugeZ_;
    for (const auto &g : gauges) {
        SURF_ASSERT(g.isCssType(t), "non-CSS gauge operator");
        basis.push_back(plane(g));
    }
    return minCosetWeight(basis, plane(logical));
}

} // namespace surf
