/**
 * @file
 * Dynamic bit vector over 64-bit words: the workhorse of the GF(2)
 * linear algebra used by the stabilizer formalism and the simulators.
 */

#ifndef SURF_PAULI_BITVEC_HH
#define SURF_PAULI_BITVEC_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace surf {

/** Fixed-length vector over GF(2), bit-packed into uint64 words. */
class BitVec
{
  public:
    BitVec() : nbits_(0) {}
    explicit BitVec(size_t nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

    size_t size() const { return nbits_; }
    size_t wordCount() const { return words_.size(); }

    bool get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

    void
    set(size_t i, bool v)
    {
        const uint64_t mask = uint64_t{1} << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    void flip(size_t i) { words_[i >> 6] ^= uint64_t{1} << (i & 63); }

    /** XOR another vector of the same length into this one. */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const = default;

    /** Hamming weight. */
    size_t popcount() const;

    /** Parity of the AND with another vector (symplectic building block). */
    bool andParity(const BitVec &other) const;

    /** True if every bit is zero. */
    bool isZero() const;

    /** Index of the lowest set bit, or size() if none. */
    size_t lowestSetBit() const;

    /** Set all bits to zero, keeping the length. */
    void clear();

    /** List of set-bit indices. */
    std::vector<size_t> onesPositions() const;

    /**
     * Invoke `fn(size_t index)` for every set bit in ascending order.
     * Word-scan with countr_zero: zero words cost one compare, so sparse
     * vectors are traversed in O(words + popcount) instead of O(nbits).
     */
    template <typename Fn>
    void
    forEachSetBit(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w];
            while (bits) {
                fn(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    }

    /** '0'/'1' string, index 0 first. */
    std::string str() const;

    uint64_t word(size_t w) const { return words_[w]; }
    uint64_t &word(size_t w) { return words_[w]; }

  private:
    size_t nbits_;
    std::vector<uint64_t> words_;
};

} // namespace surf

#endif // SURF_PAULI_BITVEC_HH
