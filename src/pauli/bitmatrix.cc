#include "pauli/bitmatrix.hh"

#include "util/logging.hh"

namespace surf {

void
BitMatrix::addRow(const BitVec &row)
{
    SURF_ASSERT(row.size() == cols_, "row width mismatch");
    rows_.push_back(row);
}

size_t
BitMatrix::rank() const
{
    std::vector<BitVec> work = rows_;
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < work.size(); ++col) {
        size_t pivot = rank;
        while (pivot < work.size() && !work[pivot].get(col))
            ++pivot;
        if (pivot == work.size())
            continue;
        std::swap(work[rank], work[pivot]);
        for (size_t r = 0; r < work.size(); ++r)
            if (r != rank && work[r].get(col))
                work[r] ^= work[rank];
        ++rank;
    }
    return rank;
}

std::optional<BitVec>
BitMatrix::solveCombination(const BitVec &target) const
{
    SURF_ASSERT(target.size() == cols_, "target width mismatch");
    // Augment every row with an identity tag tracking the combination.
    const size_t nr = rows_.size();
    std::vector<BitVec> work;
    std::vector<BitVec> tags;
    work.reserve(nr);
    tags.reserve(nr);
    for (size_t r = 0; r < nr; ++r) {
        work.push_back(rows_[r]);
        BitVec tag(nr);
        tag.set(r, true);
        tags.push_back(tag);
    }
    BitVec residual = target;
    BitVec combo(nr);
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < nr; ++col) {
        size_t pivot = rank;
        while (pivot < nr && !work[pivot].get(col))
            ++pivot;
        if (pivot == nr)
            continue;
        std::swap(work[rank], work[pivot]);
        std::swap(tags[rank], tags[pivot]);
        for (size_t r = 0; r < nr; ++r) {
            if (r != rank && work[r].get(col)) {
                work[r] ^= work[rank];
                tags[r] ^= tags[rank];
            }
        }
        if (residual.get(col)) {
            residual ^= work[rank];
            combo ^= tags[rank];
        }
        ++rank;
    }
    if (!residual.isZero())
        return std::nullopt;
    return combo;
}

bool
BitMatrix::inSpan(const BitVec &target) const
{
    return solveCombination(target).has_value();
}

std::optional<BitVec>
BitMatrix::solveSystem(const BitVec &b) const
{
    SURF_ASSERT(b.size() == rows(), "rhs length mismatch");
    // RREF on [M | b] with pivot-column bookkeeping.
    std::vector<BitVec> work = rows_;
    BitVec rhs = b;
    std::vector<size_t> pivot_col;
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < work.size(); ++col) {
        size_t pivot = rank;
        while (pivot < work.size() && !work[pivot].get(col))
            ++pivot;
        if (pivot == work.size())
            continue;
        std::swap(work[rank], work[pivot]);
        {
            const bool tmp = rhs.get(rank);
            rhs.set(rank, rhs.get(pivot));
            rhs.set(pivot, tmp);
        }
        for (size_t r = 0; r < work.size(); ++r) {
            if (r != rank && work[r].get(col)) {
                work[r] ^= work[rank];
                rhs.set(r, rhs.get(r) ^ rhs.get(rank));
            }
        }
        pivot_col.push_back(col);
        ++rank;
    }
    // Inconsistent when a zero row has rhs 1.
    for (size_t r = rank; r < work.size(); ++r)
        if (rhs.get(r))
            return std::nullopt;
    BitVec x(cols_);
    for (size_t r = 0; r < rank; ++r)
        if (rhs.get(r))
            x.set(pivot_col[r], true);
    return x;
}

std::vector<BitVec>
BitMatrix::kernelBasis() const
{
    // RREF with pivot bookkeeping, then one basis vector per free column.
    std::vector<BitVec> work = rows_;
    std::vector<size_t> pivot_col;
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < work.size(); ++col) {
        size_t pivot = rank;
        while (pivot < work.size() && !work[pivot].get(col))
            ++pivot;
        if (pivot == work.size())
            continue;
        std::swap(work[rank], work[pivot]);
        for (size_t r = 0; r < work.size(); ++r)
            if (r != rank && work[r].get(col))
                work[r] ^= work[rank];
        pivot_col.push_back(col);
        ++rank;
    }
    std::vector<bool> is_pivot(cols_, false);
    for (size_t c : pivot_col)
        is_pivot[c] = true;

    std::vector<BitVec> basis;
    for (size_t free_col = 0; free_col < cols_; ++free_col) {
        if (is_pivot[free_col])
            continue;
        BitVec v(cols_);
        v.set(free_col, true);
        for (size_t r = 0; r < rank; ++r)
            if (work[r].get(free_col))
                v.set(pivot_col[r], true);
        basis.push_back(v);
    }
    return basis;
}

} // namespace surf
