#include "pauli/coset.hh"

#include <bit>

#include "util/logging.hh"

namespace surf {

size_t
minCosetWeight(const std::vector<BitVec> &basis, const BitVec &offset,
               size_t max_rank)
{
    // Reduce to an independent basis (forward elimination).
    std::vector<BitVec> reduced;
    for (const BitVec &b : basis) {
        BitVec v = b;
        for (const BitVec &r : reduced) {
            size_t lead = r.lowestSetBit();
            if (lead < v.size() && v.get(lead))
                v ^= r;
        }
        if (!v.isZero())
            reduced.push_back(v);
    }
    const size_t m = reduced.size();
    SURF_ASSERT(m <= max_rank,
                "coset enumeration too large: rank ", m, " > ", max_rank);

    BitVec current = offset;
    size_t best = current.popcount();
    const uint64_t total = uint64_t{1} << m;
    for (uint64_t i = 1; i < total; ++i) {
        // Gray code: the bit that flips between i-1 and i.
        const int flip = std::countr_zero(i);
        current ^= reduced[static_cast<size_t>(flip)];
        const size_t w = current.popcount();
        if (w < best)
            best = w;
    }
    return best;
}

} // namespace surf
