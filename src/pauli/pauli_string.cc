#include "pauli/pauli_string.hh"

#include "util/logging.hh"

namespace surf {

StatusOr<PauliString>
PauliString::parse(const std::string &text)
{
    size_t start = 0;
    uint8_t phase = 0;
    if (!text.empty() && (text[0] == '+' || text[0] == '-')) {
        if (text[0] == '-')
            phase = 2;
        start = 1;
    }
    PauliString p(text.size() - start);
    for (size_t i = start; i < text.size(); ++i) {
        switch (text[i]) {
          case 'I':
          case '_':
            break;
          case 'X':
            p.setPauli(i - start, Pauli::X);
            break;
          case 'Y':
            p.setPauli(i - start, Pauli::Y);
            break;
          case 'Z':
            p.setPauli(i - start, Pauli::Z);
            break;
          default:
            return Status::invalidArgument(
                "bad Pauli character '" + std::string(1, text[i]) +
                "' at position " + std::to_string(i) + " in \"" + text +
                "\"");
        }
    }
    p.phase_ = (p.phase_ + phase) & 3;
    return p;
}

PauliString
PauliString::fromString(const std::string &text)
{
    StatusOr<PauliString> p = parse(text);
    if (!p.ok())
        SURF_FATAL(p.status().str());
    return std::move(*p);
}

PauliString
PauliString::single(size_t n, size_t q, Pauli p)
{
    PauliString out(n);
    out.setPauli(q, p);
    return out;
}

Pauli
PauliString::pauliAt(size_t q) const
{
    const bool x = x_.get(q), z = z_.get(q);
    if (x && z)
        return Pauli::Y;
    if (x)
        return Pauli::X;
    if (z)
        return Pauli::Z;
    return Pauli::I;
}

void
PauliString::setPauli(size_t q, Pauli p)
{
    // Remove any existing Y phase contribution, then add the new one.
    if (x_.get(q) && z_.get(q))
        phase_ = (phase_ + 3) & 3;
    const bool x = (p == Pauli::X || p == Pauli::Y);
    const bool z = (p == Pauli::Z || p == Pauli::Y);
    x_.set(q, x);
    z_.set(q, z);
    if (p == Pauli::Y)
        phase_ = (phase_ + 1) & 3;
}

size_t
PauliString::weight() const
{
    size_t total = 0;
    for (size_t w = 0; w < x_.wordCount(); ++w)
        total += static_cast<size_t>(__builtin_popcountll(x_.word(w) | z_.word(w)));
    return total;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    return !(x_.andParity(other.z_) ^ z_.andParity(other.x_));
}

PauliString
PauliString::operator*(const PauliString &other) const
{
    PauliString out = *this;
    out *= other;
    return out;
}

PauliString &
PauliString::operator*=(const PauliString &other)
{
    SURF_ASSERT(numQubits() == other.numQubits(), "qubit count mismatch");
    // (X^x1 Z^z1)(X^x2 Z^z2) = (-1)^{z1.x2} X^{x1+x2} Z^{z1+z2}
    const bool sign_flip = z_.andParity(other.x_);
    x_ ^= other.x_;
    z_ ^= other.z_;
    phase_ = (phase_ + other.phase_ + (sign_flip ? 2 : 0)) & 3;
    return *this;
}

bool
PauliString::equalsUpToPhase(const PauliString &other) const
{
    return x_ == other.x_ && z_ == other.z_;
}

bool
PauliString::isCssType(PauliType t) const
{
    return t == PauliType::X ? z_.isZero() : x_.isZero();
}

std::string
PauliString::str() const
{
    // Render with Y contributing i each; show the leftover global phase.
    uint8_t ph = phase_;
    const size_t n = numQubits();
    std::string body(n, 'I');
    for (size_t q = 0; q < n; ++q) {
        switch (pauliAt(q)) {
          case Pauli::I:
            break;
          case Pauli::X:
            body[q] = 'X';
            break;
          case Pauli::Y:
            body[q] = 'Y';
            ph = (ph + 3) & 3;
            break;
          case Pauli::Z:
            body[q] = 'Z';
            break;
        }
    }
    static const char *prefix[4] = {"+", "+i", "-", "-i"};
    return std::string(prefix[ph]) + body;
}

} // namespace surf
