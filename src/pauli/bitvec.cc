#include "pauli/bitvec.hh"

#include <bit>

#include "util/logging.hh"

namespace surf {

BitVec &
BitVec::operator^=(const BitVec &other)
{
    SURF_ASSERT(nbits_ == other.nbits_, "BitVec length mismatch");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] ^= other.words_[w];
    return *this;
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words_)
        total += static_cast<size_t>(std::popcount(w));
    return total;
}

bool
BitVec::andParity(const BitVec &other) const
{
    SURF_ASSERT(nbits_ == other.nbits_, "BitVec length mismatch");
    uint64_t acc = 0;
    for (size_t w = 0; w < words_.size(); ++w)
        acc ^= words_[w] & other.words_[w];
    return std::popcount(acc) & 1;
}

bool
BitVec::isZero() const
{
    for (uint64_t w : words_)
        if (w)
            return false;
    return true;
}

size_t
BitVec::lowestSetBit() const
{
    for (size_t w = 0; w < words_.size(); ++w)
        if (words_[w])
            return w * 64 + static_cast<size_t>(std::countr_zero(words_[w]));
    return nbits_;
}

void
BitVec::clear()
{
    for (auto &w : words_)
        w = 0;
}

std::vector<size_t>
BitVec::onesPositions() const
{
    std::vector<size_t> out;
    out.reserve(popcount());
    forEachSetBit([&](size_t i) { out.push_back(i); });
    return out;
}

std::string
BitVec::str() const
{
    std::string s(nbits_, '0');
    for (size_t i = 0; i < nbits_; ++i)
        if (get(i))
            s[i] = '1';
    return s;
}

} // namespace surf
