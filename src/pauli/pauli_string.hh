/**
 * @file
 * N-qubit Pauli operators in the XZ form P = i^phase * X^x Z^z with a
 * global phase tracked mod 4. This is the algebraic object behind
 * stabilizers, gauge operators and logical operators (paper Sec. II-C and
 * Appendix A).
 */

#ifndef SURF_PAULI_PAULI_STRING_HH
#define SURF_PAULI_PAULI_STRING_HH

#include <cstdint>
#include <string>

#include "pauli/bitvec.hh"
#include "util/status.hh"

namespace surf {

/** Single-qubit Pauli kind. */
enum class Pauli : uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** The two CSS operator types used throughout the surface-code layer. */
enum class PauliType : uint8_t { X = 0, Z = 1 };

/** The opposite CSS type. */
inline PauliType
oppositeType(PauliType t)
{
    return t == PauliType::X ? PauliType::Z : PauliType::X;
}

inline char
typeChar(PauliType t)
{
    return t == PauliType::X ? 'X' : 'Z';
}

/**
 * An n-qubit Pauli operator stored as P = i^phase * prod_q X_q^{x_q} Z_q^{z_q}.
 *
 * Multiplication composes left-to-right: (a * b) means "apply b, then a" in
 * operator order a·b, with the phase bookkeeping
 * (X^x1 Z^z1)(X^x2 Z^z2) = (-1)^{z1·x2} X^{x1^x2} Z^{z1^z2}.
 */
class PauliString
{
  public:
    PauliString() = default;
    explicit PauliString(size_t n) : x_(n), z_(n), phase_(0) {}

    /**
     * Parse from text like "+XIZZY" or "-ZZ". A 'Y' contributes i*XZ, so
     * the stored phase accounts for it. Characters outside [IXYZ_+-]
     * come back as INVALID_ARGUMENT.
     */
    static StatusOr<PauliString> parse(const std::string &text);

    /** Parse; dies with a fatal error on a bad character (legacy entry —
     *  new callers want parse()). */
    static PauliString fromString(const std::string &text);

    /** Weight-1 operator P on qubit q of an n-qubit register. */
    static PauliString single(size_t n, size_t q, Pauli p);

    size_t numQubits() const { return x_.size(); }

    /** The Pauli acting on qubit q (ignoring global phase). */
    Pauli pauliAt(size_t q) const;

    /** Set the Pauli on qubit q, adjusting the phase for Y = iXZ. */
    void setPauli(size_t q, Pauli p);

    /** Number of qubits acted on non-trivially. */
    size_t weight() const;

    /** True when the operator is a phase times identity. */
    bool isIdentity() const { return x_.isZero() && z_.isZero(); }

    /** True when this commutes with other. */
    bool commutesWith(const PauliString &other) const;

    /** Operator product this * other (phase tracked mod 4). */
    PauliString operator*(const PauliString &other) const;
    PauliString &operator*=(const PauliString &other);

    /** Equality including phase. */
    bool operator==(const PauliString &other) const = default;

    /** Equality of the Pauli content ignoring the global phase. */
    bool equalsUpToPhase(const PauliString &other) const;

    /** Exponent of i in the global phase (0..3). */
    uint8_t phase() const { return phase_; }
    void setPhase(uint8_t p) { phase_ = p & 3; }

    /** X bit-plane (which qubits carry an X factor). */
    const BitVec &xBits() const { return x_; }
    /** Z bit-plane (which qubits carry a Z factor). */
    const BitVec &zBits() const { return z_; }
    BitVec &xBits() { return x_; }
    BitVec &zBits() { return z_; }

    /**
     * True if every non-identity factor is of the given CSS type
     * (pure-X or pure-Z operator).
     */
    bool isCssType(PauliType t) const;

    /** Text form like "+XIZ". */
    std::string str() const;

  private:
    BitVec x_;
    BitVec z_;
    uint8_t phase_ = 0;
};

} // namespace surf

#endif // SURF_PAULI_PAULI_STRING_HH
