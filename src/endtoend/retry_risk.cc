#include "endtoend/retry_risk.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"
#include "scenario/scenario_experiment.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace surf {

namespace {

/**
 * Analytic excess logical risk of one burst event under a strategy: the
 * degraded-distance error rate integrated over the exposure window (see
 * the per-strategy discussion in estimateRetryRisk). Shared between the
 * Table-II estimator and the scenario-engine cross check so both sides of
 * the comparison use the identical model.
 */
double
perEventExcessRisk(Strategy strategy, int d, double loss,
                   double duration_rounds, int region_diameter,
                   const LogicalErrorModel &em)
{
    double d_eff;
    double exposure_rounds = duration_rounds;
    switch (strategy) {
      case Strategy::SurfDeformer:
        // Removal + enlargement restores the distance within one cycle;
        // the residual measured loss applies only during the detection
        // latency (~2 rounds of syndrome statistics), after which the
        // only deficit is the measured post-restoration loss (usually 0).
        d_eff = d - (region_diameter + loss);
        exposure_rounds = 2.0;
        break;
      case Strategy::Ascs:
        d_eff = d - loss;
        break;
      default:
        d_eff = (strategy == Strategy::LatticeSurgery)
                    ? d - loss
                    : 2.0 * d - loss; // Q3DE doubles the patch
        break;
    }
    double per_event = em.perRound(d_eff) * exposure_rounds;
    if (strategy == Strategy::SurfDeformer) {
        // After restoration the code is back at distance >= d for the
        // rest of the event window: already covered by the base risk,
        // plus the small residual loss if enlargement was capped.
        per_event += em.perRound(d - loss) *
                     (duration_rounds - exposure_rounds) *
                     (loss > 0.0 ? 1.0 : 0.0);
    }
    return per_event;
}

} // namespace

double
measuredDistanceLoss(Strategy s, int d_cal, int delta_d, int samples,
                     uint64_t seed, int region_diameter)
{
    using Key = std::tuple<int, int, int, int, uint64_t, int>;
    static std::map<Key, double> cache;
    const Key key{static_cast<int>(s), d_cal, delta_d, samples, seed,
                  region_diameter};
    if (auto it = cache.find(key); it != cache.end())
        return it->second;

    // Lattice Surgery / Q3DE leave the saturated region inside the code:
    // the decoder gets no usable information there AND the defective
    // qubits keep injecting errors that spread through syndrome
    // measurement. Model the loss as the measured ASC-S removal loss plus
    // a spreading penalty of one region diameter (consistent with the
    // fig. 11a untreated-versus-removed gap at simulable sizes).
    if (s == Strategy::LatticeSurgery || s == Strategy::Q3de ||
        s == Strategy::Q3deRevised) {
        const double loss =
            measuredDistanceLoss(Strategy::Ascs, d_cal, delta_d, samples,
                                 seed, region_diameter) +
            region_diameter;
        cache[key] = loss;
        return loss;
    }

    // Sample the defect centers serially (one RNG stream), then evaluate
    // the deformation strategy for each region across the worker pool.
    // Per-sample losses are reduced in index order, so the estimate is
    // identical for any worker count.
    Rng rng(seed);
    const CodePatch ref = squarePatch(d_cal);
    std::vector<Coord> centers;
    centers.reserve(static_cast<size_t>(samples));
    for (int i = 0; i < samples; ++i)
        centers.push_back(
            {ref.xMin() + static_cast<int>(rng.below(
                              static_cast<uint64_t>(2 * d_cal - 1))),
             ref.yMin() + static_cast<int>(rng.below(
                              static_cast<uint64_t>(2 * d_cal - 1)))});
    std::vector<double> losses(centers.size(), 0.0);
    // One process-lifetime pool: the cache above makes calls rare, but a
    // cache miss should not pay thread spawn/join on top of the sampling.
    static ThreadPool pool;
    pool.parallelFor(centers.size(), [&](size_t i, size_t) {
        const auto sites =
            DefectSampler::regionSites(centers[i], region_diameter);
        const auto out = applyStrategy(s, d_cal, delta_d, sites);
        // A destroyed patch counts the full distance as lost.
        losses[i] = out.alive ? static_cast<double>(d_cal) -
                                    static_cast<double>(out.minDist())
                              : static_cast<double>(d_cal);
    });
    double total = 0.0;
    for (double l : losses)
        total += l;
    const double loss = samples > 0 ? total / samples : 0.0;
    cache[key] = loss;
    return loss;
}

RetryRiskResult
estimateRetryRisk(const BenchmarkProgram &program, const RetryRiskConfig &cfg)
{
    RetryRiskResult out;
    LayoutGenerator gen(cfg.defectModel);

    // Tiles: program qubits plus magic-state factory tiles when T gates
    // are present (a tenth of the footprint, at least one).
    int tiles = program.numQubits;
    if (program.numT > 0)
        tiles += std::max(1, program.numQubits / 10);
    const auto plan =
        gen.plan(tiles, cfg.d, schemeOf(cfg.strategy), cfg.alphaBlock);
    out.physicalQubits = plan.physicalQubits;
    out.deltaD = plan.deltaD;

    // Runtime model: one lattice-surgery step = d QEC rounds.
    const double cx_parallel = std::max(1.0, tiles / cfg.cxDivisor);
    const double t_parallel = std::max(1.0, tiles / cfg.tDivisor);
    const double steps =
        std::ceil(static_cast<double>(program.numCx) / cx_parallel) +
        std::ceil(static_cast<double>(program.numT) / t_parallel);
    const double rounds = steps * cfg.d;
    out.runtimeCycles = rounds;

    // Baseline space-time logical risk (no defects).
    const double base_risk =
        static_cast<double>(tiles) * rounds * cfg.errorModel.perRound(cfg.d);

    // Dynamic defects: expected events over the run across the machine.
    const double runtime_sec = rounds * cfg.defectModel.cycleTimeSec;
    const double event_rate_per_sec =
        cfg.defectModel.eventRatePerQubitSec *
        static_cast<double>(out.physicalQubits);
    out.expectedEvents = event_rate_per_sec * runtime_sec;
    const double duration_rounds =
        static_cast<double>(cfg.defectModel.durationCycles());

    // Per-event excess risk: p_L at the degraded distance for the event
    // duration, minus the baseline already counted for that window.
    const double loss = measuredDistanceLoss(
        cfg.strategy, cfg.lossCalibrationD, plan.deltaD, cfg.lossSamples,
        cfg.seed, cfg.defectModel.regionDiameter);
    out.meanDistanceLoss = loss;

    const double per_event =
        perEventExcessRisk(cfg.strategy, cfg.d, loss, duration_rounds,
                           cfg.defectModel.regionDiameter, cfg.errorModel);
    const double excess_risk = out.expectedEvents * per_event;

    // Q3DE's fixed layout: an enlarged patch blocks its channels for the
    // whole event duration. When blocked tiles saturate the fabric the
    // program stalls indefinitely (paper: OverRuntime).
    if (cfg.strategy == Strategy::Q3de) {
        const double concurrent_events =
            event_rate_per_sec * cfg.defectModel.durationSec;
        if (concurrent_events >
            cfg.overRuntimeFraction * static_cast<double>(tiles)) {
            out.overRuntime = true;
        }
    }

    out.retryRisk = 1.0 - std::exp(-(base_risk + excess_risk));

    if (cfg.measuredCrossCheck) {
        ScenarioCrossCheckConfig cc;
        cc.strategy = cfg.strategy;
        cc.d = cfg.lossCalibrationD;
        cc.deltaD = plan.deltaD;
        cc.defectModel = cfg.defectModel;
        cc.errorModel = cfg.errorModel;
        cc.lossSamples = cfg.lossSamples;
        cc.seed = cfg.seed;
        const ScenarioCrossCheck check = crossCheckRetryRisk(cc);
        out.crossCheckMeasuredPRound = check.measuredPRound;
        out.crossCheckAnalyticPRound = check.analyticPRound;
    }
    return out;
}

ScenarioCrossCheck
crossCheckRetryRisk(const ScenarioCrossCheckConfig &cfg)
{
    ScenarioCrossCheck out;

    // --- Measured side: full strategy-reactive timelines. ----------------
    ScenarioConfig sc;
    sc.timeline.strategy = cfg.strategy;
    sc.timeline.d = cfg.d;
    sc.timeline.deltaD = cfg.deltaD;
    sc.timeline.horizonRounds = cfg.horizonRounds;
    sc.timeline.windowRounds = cfg.windowRounds;
    sc.defectModel = cfg.defectModel;
    sc.eventRateScale = cfg.eventRateScale;
    sc.numTimelines = cfg.numTimelines;
    sc.noise.p = cfg.noiseP;
    sc.maxShotsPerTimeline = cfg.shotsPerTimeline;
    sc.seed = cfg.seed;
    sc.threads = cfg.threads;
    const ScenarioResult res = runScenarioExperiment(sc);
    out.shots = res.shots;
    out.failures = res.failures;
    out.measuredPShot = res.pShot;
    out.measuredPRound = res.pRound;
    out.totalEpochs = res.totalEpochs;
    const uint64_t lookups = res.cacheHits + res.cacheMisses;
    out.cacheHitRate =
        lookups ? static_cast<double>(res.cacheHits) / lookups : 0.0;

    // --- Analytic side: the same workload through the distance-loss
    // model (base space-time risk + expected-event excess). --------------
    const double loss = measuredDistanceLoss(
        cfg.strategy, cfg.d, cfg.deltaD, cfg.lossSamples, cfg.seed,
        cfg.defectModel.regionDiameter);
    const CodePatch patch = squarePatch(cfg.d);
    const double events_per_round =
        cfg.defectModel.eventRatePerQubitCycle() * cfg.eventRateScale *
        static_cast<double>(patch.numPhysicalQubits());
    out.expectedEvents =
        events_per_round * static_cast<double>(cfg.horizonRounds);
    const double base_risk = static_cast<double>(cfg.horizonRounds) *
                             cfg.errorModel.perRound(cfg.d);
    // An event's exposure cannot extend past the simulated horizon; scale
    // defectModel.durationSec down (as the scenario bench does) when the
    // persistence matters to the strategy under test.
    const double duration_rounds =
        std::min(static_cast<double>(cfg.defectModel.durationCycles()),
                 static_cast<double>(cfg.horizonRounds));
    const double per_event =
        perEventExcessRisk(cfg.strategy, cfg.d, loss, duration_rounds,
                           cfg.defectModel.regionDiameter, cfg.errorModel);
    out.analyticPShot =
        1.0 - std::exp(-(base_risk + out.expectedEvents * per_event));
    out.analyticPRound =
        1.0 - std::pow(1.0 - out.analyticPShot,
                       1.0 / static_cast<double>(cfg.horizonRounds));
    return out;
}

} // namespace surf
