/**
 * @file
 * The paper's benchmark programs (Table II): quantum programs
 * characterized by logical-qubit count, CNOT count and T count, compiled
 * onto lattice-surgery layouts. The "-N-R" suffixes follow the paper's
 * naming: N logical qubits, R repetitions/layers.
 */

#ifndef SURF_ENDTOEND_PROGRAMS_HH
#define SURF_ENDTOEND_PROGRAMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace surf {

/** One benchmark program row of Table II. */
struct BenchmarkProgram
{
    std::string name;
    uint64_t numCx = 0;
    uint64_t numT = 0;
    int numQubits = 0;
    /** The two code distances evaluated in Table II. */
    int dLow = 0;
    int dHigh = 0;
};

/** The eight Table-II programs with the paper's gate counts. */
std::vector<BenchmarkProgram> paperPrograms();

/** The four programs used in fig. 12 / fig. 13a. */
std::vector<BenchmarkProgram> fig12Programs();

} // namespace surf

#endif // SURF_ENDTOEND_PROGRAMS_HH
