/**
 * @file
 * End-to-end retry-risk estimator (paper Table II, fig. 12, fig. 13a).
 *
 * The estimator combines:
 *  - the layout generator's physical-qubit accounting per strategy scheme;
 *  - a lattice-surgery runtime model (CX routing parallelism and magic
 *    state consumption; documented heuristics, absolute runtimes are
 *    model-based);
 *  - the dynamic-defect model (Poisson burst events);
 *  - per-strategy distance-loss distributions *measured by running this
 *    repository's own deformation machinery* on sampled burst regions;
 *  - the calibrated exponential logical-error model.
 *
 * retry_risk = 1 - exp(-(baseline spacetime risk + defect excess risk)),
 * and Q3DE's fixed layout additionally stalls when the expected number of
 * concurrently-blocked tiles saturates the routing fabric (OverRuntime,
 * the paper's Table-II failure mode).
 */

#ifndef SURF_ENDTOEND_RETRY_RISK_HH
#define SURF_ENDTOEND_RETRY_RISK_HH

#include "baselines/strategies.hh"
#include "core/layout_gen.hh"
#include "endtoend/logical_error_model.hh"
#include "endtoend/programs.hh"

namespace surf {

/** Estimator configuration. */
struct RetryRiskConfig
{
    Strategy strategy = Strategy::SurfDeformer;
    int d = 21;
    double alphaBlock = 0.01;
    DefectModelParams defectModel;
    LogicalErrorModel errorModel;
    /** Samples for measuring the strategy's distance-loss distribution. */
    int lossSamples = 24;
    /** Calibration distance for the loss distribution measurement. */
    int lossCalibrationD = 13;
    uint64_t seed = 20240516;
    /** Routing parallelism: concurrent CX ops ~ tiles / cxDivisor. */
    double cxDivisor = 4.0;
    /** Concurrent T consumption ~ tiles / tDivisor. */
    double tDivisor = 2.0;
    /** Q3DE stalls out when blocked tiles exceed this fraction. */
    double overRuntimeFraction = 0.05;
    /** Run the scenario-engine cross check at the calibration distance and
     *  report measured vs analytic dynamic-defect risk (expensive). */
    bool measuredCrossCheck = false;
};

/** Estimator output (one Table-II cell). */
struct RetryRiskResult
{
    double retryRisk = 0.0;
    size_t physicalQubits = 0;
    bool overRuntime = false;
    double runtimeCycles = 0.0;
    double expectedEvents = 0.0;
    int deltaD = 0;
    double meanDistanceLoss = 0.0; ///< measured residual loss per event
    /** Filled when cfg.measuredCrossCheck is set: simulated vs analytic
     *  per-round logical error under dynamic defects at the calibration
     *  distance (agreement validates the extrapolated model). */
    double crossCheckMeasuredPRound = 0.0;
    double crossCheckAnalyticPRound = 0.0;
};

/** Configuration of the scenario-engine cross check. */
struct ScenarioCrossCheckConfig
{
    Strategy strategy = Strategy::SurfDeformer;
    int d = 5;
    int deltaD = 2;
    DefectModelParams defectModel;
    LogicalErrorModel errorModel;
    /** Event-rate multiplier so short horizons see enough strikes. The
     *  analytic prediction scales identically, so agreement is preserved. */
    double eventRateScale = 2000.0;
    /** Samples for the analytic side's distance-loss measurement; forward
     *  RetryRiskConfig::lossSamples so both sides share one model. */
    int lossSamples = 24;
    uint64_t horizonRounds = 120;
    uint64_t windowRounds = 20;
    int numTimelines = 8;
    uint64_t shotsPerTimeline = 512;
    double noiseP = 2e-3;
    uint64_t seed = 20240731;
    size_t threads = 0;
};

/** Measured-vs-analytic comparison of dynamic-defect logical risk. */
struct ScenarioCrossCheck
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    double measuredPShot = 0.0;
    double measuredPRound = 0.0;
    double analyticPShot = 0.0; ///< model: base + expected-event excess
    double analyticPRound = 0.0;
    double expectedEvents = 0.0; ///< per timeline (analytic)
    uint64_t totalEpochs = 0;    ///< deformation activity actually seen
    double cacheHitRate = 0.0;
};

/**
 * Cross-check the analytic retry-risk excess model against the scenario
 * engine: simulate full strategy-reactive timelines at a simulable
 * distance and compare the measured logical error rate with the
 * distance-loss-based analytic prediction for the identical workload.
 */
ScenarioCrossCheck crossCheckRetryRisk(const ScenarioCrossCheckConfig &cfg);

/** Estimate the retry risk of one program under one strategy. */
RetryRiskResult estimateRetryRisk(const BenchmarkProgram &program,
                                  const RetryRiskConfig &cfg);

/**
 * Mean residual distance loss per burst event for a strategy, measured by
 * applying the strategy's actual deformation machinery to sampled burst
 * regions on a calibration patch. Results are cached per
 * (strategy, calibration d, delta_d, samples, seed).
 */
double measuredDistanceLoss(Strategy s, int d_cal, int delta_d, int samples,
                            uint64_t seed, int region_diameter);

} // namespace surf

#endif // SURF_ENDTOEND_RETRY_RISK_HH
