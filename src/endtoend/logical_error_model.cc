#include "endtoend/logical_error_model.hh"

#include <cmath>
#include <vector>

#include "decode/memory_experiment.hh"
#include "lattice/rotated.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace surf {

double
LogicalErrorModel::perRound(double d) const
{
    if (d <= 0.0)
        return 0.5; // destroyed logical qubit: coin flip per round
    const double p = A * std::pow(Lambda, -(d + 1.0) / 2.0);
    return std::min(p, 0.5);
}

double
LogicalErrorModel::failureOver(double d, double rounds) const
{
    const double p = perRound(d);
    if (p >= 0.5)
        return 1.0;
    return 1.0 - std::pow(1.0 - p, rounds);
}

LogicalErrorModel
LogicalErrorModel::calibrate(double p, uint64_t max_shots, uint64_t seed,
                             bool include_d7, size_t threads)
{
    std::vector<double> ds, logps;
    std::vector<int> distances{3, 5};
    if (include_d7)
        distances.push_back(7);
    for (int d : distances) {
        MemoryExperimentConfig cfg;
        cfg.spec.rounds = d;
        cfg.noise.p = p;
        cfg.maxShots = max_shots;
        cfg.targetFailures = 400;
        cfg.seed = seed + static_cast<uint64_t>(d);
        cfg.threads = threads;
        const auto res = runMemoryExperiment(squarePatch(d), cfg);
        if (res.failures < 3)
            break; // too clean to fit further points
        ds.push_back(static_cast<double>(d));
        logps.push_back(std::log(res.pRound));
    }
    LogicalErrorModel model;
    if (ds.size() >= 2) {
        // log p = log A - (d+1)/2 log Lambda: linear in d.
        std::vector<double> xs;
        for (double d : ds)
            xs.push_back((d + 1.0) / 2.0);
        const auto [a, b] = linearFit(xs, logps);
        model.A = std::exp(a);
        model.Lambda = std::exp(-b);
        SURF_ASSERT(model.Lambda > 1.0,
                    "calibration found no error suppression; p = ", p,
                    " is above threshold");
    }
    return model;
}

} // namespace surf
