/**
 * @file
 * Parametric logical-error-rate model: the standard exponential
 * suppression law p_L(d) = A * Lambda^{-(d+1)/2}, calibrated by running
 * the repository's own Monte-Carlo memory experiments at simulable
 * distances and extrapolated for the Table-II code distances (the same
 * resource-estimation practice as Gidney-Ekera). Distance-loss events map
 * to p_L(d_eff).
 */

#ifndef SURF_ENDTOEND_LOGICAL_ERROR_MODEL_HH
#define SURF_ENDTOEND_LOGICAL_ERROR_MODEL_HH

#include <cstddef>
#include <cstdint>

namespace surf {

/** Exponential-suppression logical error model (per round). */
struct LogicalErrorModel
{
    /** Per-round logical error rate at distance d: A / Lambda^{(d+1)/2}. */
    double A = 0.08;
    double Lambda = 7.0;

    double perRound(double d) const;

    /** Failure probability over `rounds` rounds at distance d. */
    double failureOver(double d, double rounds) const;

    /**
     * Calibrate (A, Lambda) from Monte-Carlo memory experiments at small
     * distances (d = 3, 5[, 7]) under physical rate p. Expensive; bench
     * harnesses call this once and share the result. Sampling + decoding
     * runs on the parallel pipeline; the fit is identical for any thread
     * count.
     *
     * @param max_shots sampling budget per distance
     * @param threads decode workers (0 = hardware concurrency)
     */
    static LogicalErrorModel calibrate(double p, uint64_t max_shots = 200000,
                                       uint64_t seed = 99,
                                       bool include_d7 = false,
                                       size_t threads = 0);
};

} // namespace surf

#endif // SURF_ENDTOEND_LOGICAL_ERROR_MODEL_HH
