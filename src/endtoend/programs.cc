#include "endtoend/programs.hh"

namespace surf {

std::vector<BenchmarkProgram>
paperPrograms()
{
    // Name, #CX, #T, #qubit, d_low, d_high (paper Table II).
    return {
        {"Simon-400-1000", 302000, 0, 400, 19, 21},
        {"Simon-900-1500", 1010000, 0, 900, 21, 23},
        {"RCA-225-500", 896000, 784000, 225, 21, 23},
        {"RCA-729-100", 582000, 510000, 729, 21, 23},
        {"QFT-25-160", 102000, 187000000, 25, 23, 25},
        {"QFT-100-20", 230000, 1580000000, 100, 25, 27},
        {"Grover-9-80", 136000, 199000000, 9, 23, 25},
        {"Grover-16-2", 429000, 1130000000, 16, 25, 27},
    };
}

std::vector<BenchmarkProgram>
fig12Programs()
{
    auto all = paperPrograms();
    return {all[1], all[3], all[5], all[7]};
}

} // namespace surf
