#include "defects/detector_model.hh"

namespace surf {

std::set<Coord>
DetectorModel::observe(const std::set<Coord> &true_defects,
                       const CodePatch &patch, Rng &rng) const
{
    std::set<Coord> observed;
    for (const Coord &c : true_defects)
        if (!rng.bernoulli(falseNegative))
            observed.insert(c);
    if (falsePositive > 0.0) {
        for (const Coord &q : patch.dataQubits())
            if (!true_defects.count(q) && rng.bernoulli(falsePositive))
                observed.insert(q);
        for (const auto &c : patch.checks())
            if (c.ancilla && !true_defects.count(*c.ancilla) &&
                rng.bernoulli(falsePositive))
                observed.insert(*c.ancilla);
    }
    return observed;
}

} // namespace surf
