/**
 * @file
 * Dynamic and static defect sampling (paper Sec. VII-A). Dynamic defects
 * follow the cosmic-ray model of McEwen et al.: per-qubit Poisson events,
 * each saturating a compact region of ~24 qubits for ~25,000 QEC cycles.
 * Static defects model fabrication faults for the yield study (fig. 13b).
 */

#ifndef SURF_DEFECTS_DEFECT_SAMPLER_HH
#define SURF_DEFECTS_DEFECT_SAMPLER_HH

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "core/layout_gen.hh"
#include "lattice/patch.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace surf {

/** One multi-bit burst event. */
struct DefectEvent
{
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;     ///< exclusive
    Coord center;
    std::set<Coord> sites;     ///< affected lattice sites (data + checks)
};

/**
 * Sorted interval sweep over a fixed event list for monotone queries.
 *
 * Queries must come with non-decreasing cycles (the natural order of a
 * timeline scan); each event is then admitted and retired exactly once,
 * so a full sweep over Q query points and E events costs
 * O(E log E + Q + total event sites) instead of the O(Q * E) of a
 * per-query linear scan.
 */
class ActiveDefectSweep
{
  public:
    explicit ActiveDefectSweep(const std::vector<DefectEvent> &events);

    /** Active defective sites at `cycle` (>= the previous query's cycle). */
    const std::set<Coord> &activeAt(uint64_t cycle);

    /** Restart the sweep from cycle 0. */
    void rewind();

  private:
    const std::vector<DefectEvent> *events_;
    std::vector<size_t> by_start_, by_end_; ///< event indices, sorted
    size_t start_cursor_ = 0, end_cursor_ = 0;
    uint64_t last_cycle_ = 0;
    bool started_ = false;
    std::map<Coord, int> refcount_; ///< overlapping events per site
    std::set<Coord> active_;
};

/** Samples defect events and static faults. */
class DefectSampler
{
  public:
    DefectSampler(DefectModelParams params, uint64_t seed)
        : params_(params), rng_(seed)
    {
    }

    const DefectModelParams &params() const { return params_; }

    /**
     * All lattice sites within Chebyshev distance `diameter` of the
     * center: approximately 2 * (diameter+1)^2 / 2 qubits, matching the
     * paper's 24-qubit affected region for diameter 4.
     */
    static std::set<Coord> regionSites(Coord center, int diameter);

    /**
     * Sample burst events striking a rectangular patch footprint over a
     * time window. The per-cycle event rate is (#physical qubits) x
     * (per-qubit rate); each event picks a uniform center in the
     * footprint and persists for the model duration.
     */
    std::vector<DefectEvent> sampleEvents(const CodePatch &patch,
                                          uint64_t cycles);

    /** Active defective sites at a given cycle (one-shot interval sweep;
     *  use ActiveDefectSweep directly when scanning a whole timeline). */
    static std::set<Coord> activeSites(const std::vector<DefectEvent> &events,
                                       uint64_t cycle);

    /**
     * Uniformly sample k distinct static faulty sites on a patch (data
     * or syndrome qubits). Rejects k < 0 and k larger than the patch's
     * physical qubit count as INVALID_ARGUMENT instead of aborting — k
     * is user input in the yield sweeps.
     */
    StatusOr<std::set<Coord>> sampleStaticFaultsChecked(const CodePatch &patch,
                                                        int k);

    /** sampleStaticFaultsChecked; dies with a fatal error on invalid k
     *  (legacy entry — new callers want the checked variant). */
    std::set<Coord> sampleStaticFaults(const CodePatch &patch, int k);

    Rng &rng() { return rng_; }

  private:
    DefectModelParams params_;
    Rng rng_;
};

} // namespace surf

#endif // SURF_DEFECTS_DEFECT_SAMPLER_HH
