/**
 * @file
 * Permanent fabrication defects and the bandage-like adaptation layer
 * (BandAuto-style Device semantics; see also Siegel et al.'s adaptive
 * surface code). A FabDefectModel names per-qubit and per-coupler defect
 * rates plus a chip seed; sampling is a pure per-site hash of
 * (seed, site), so the same model always yields the same broken chip —
 * order-independent, thread-count-invariant, replayable.
 *
 * Adaptation converts a defective chip into an adapted CodePatch through
 * the existing deformation machinery: defective qubits (and the data
 * endpoint of every defective coupler — the interaction is unusable, so
 * the data qubit leaves the measured code) are disabled, neighbouring
 * checks merge into super-stabilizer clusters, and the logicals plus the
 * structural min distance are recomputed. A chip whose adapted distance
 * collapses to zero is *dead*: callers (the scenario engine) must tally
 * it as a yield failure and continue, never abort — the same graceful
 * degradation contract the decode ladder follows.
 */

#ifndef SURF_DEFECTS_FAB_DEFECTS_HH
#define SURF_DEFECTS_FAB_DEFECTS_HH

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "baselines/strategies.hh"
#include "lattice/patch.hh"
#include "util/status.hh"

namespace surf {

/** Fabrication-defect rates over a chip (all zero = pristine chip). */
struct FabDefectModel
{
    double qubitRate = 0.0;   ///< per physical qubit (data + ancilla)
    double couplerRate = 0.0; ///< per ancilla-data coupler
    uint64_t seed = 0;        ///< chip identity: same seed, same chip

    bool
    enabled() const
    {
        return qubitRate > 0.0 || couplerRate > 0.0;
    }
};

/** One sampled broken chip over a patch footprint. */
struct FabDefectSample
{
    std::set<Coord> qubits; ///< defective data or ancilla sites
    std::set<std::pair<Coord, Coord>> couplers; ///< (ancilla, data) pairs

    bool
    empty() const
    {
        return qubits.empty() && couplers.empty();
    }
};

/** Every physical qubit of a patch: data sites plus check ancillas,
 *  sorted and deduplicated — the per-qubit defect candidates. */
std::vector<Coord> fabQubitCandidates(const CodePatch &patch);

/** Every (ancilla, data) coupler of a patch: one per ancilla-measured
 *  check support qubit, sorted and deduplicated. */
std::vector<std::pair<Coord, Coord>>
fabCouplerCandidates(const CodePatch &patch);

/**
 * Add seeded per-site defect draws to a sample in place. Decisions are
 * pure hashes of (seed, salt, site) — no RNG state — so they are
 * identical at any thread count and for any enumeration order. The
 * `salt` decorrelates independent draws under one seed (the fault
 * injector passes its per-timeline salt; plain chip sampling passes 0).
 */
void sampleFabInto(FabDefectSample &out, const CodePatch &patch,
                   double qubitRate, double couplerRate, uint64_t seed,
                   uint64_t salt);

/** Sample a chip from a model. Rejects non-finite or out-of-[0,1] rates
 *  as INVALID_ARGUMENT. */
StatusOr<FabDefectSample> sampleFabDefectsChecked(const CodePatch &patch,
                                                  const FabDefectModel &model);

/** sampleFabDefectsChecked; dies with a fatal error on invalid rates
 *  (legacy entry — new callers want the checked variant). */
FabDefectSample sampleFabDefects(const CodePatch &patch,
                                 const FabDefectModel &model);

/**
 * The lattice sites a sample disables: the defective qubits plus the
 * data endpoint of every defective coupler (a check that cannot touch
 * one of its data qubits cannot measure it; disabling the data qubit is
 * the bandage reduction that keeps the remaining checks measurable).
 */
std::set<Coord> fabEffectiveSites(const FabDefectSample &sample);

/** A chip adapted around its fabrication defects. */
struct FabAdaptation
{
    /** The adapted patch, its distances, residual defects and liveness
     *  (alive == false: the chip is dead — distance collapsed). */
    StrategyOutcome outcome;
    std::set<Coord> disabledSites; ///< effective sites fed to the adapter
    size_t disabledData = 0;  ///< pristine data qubits no longer in the code
    size_t superClusters = 0; ///< merged super-stabilizer clusters
    /** Structural distance lost to the defects: d - min(distX, distZ)
     *  when alive, d when dead. */
    size_t distanceLoss = 0;
};

/**
 * Adapt a pristine distance-d patch around a sampled chip, using the
 * strategy's removal/enlargement machinery (Surf-Deformer: balanced
 * removal + growth capped by deltaD; the super-stabilizer clusters come
 * out of the patch's gauge-kernel recomputation). Rejects unknown
 * strategies and out-of-range d / deltaD as INVALID_ARGUMENT. A dead
 * chip is a *valid* result (outcome.alive == false), not an error.
 */
StatusOr<FabAdaptation> adaptFabDefectsChecked(Strategy s, int d, int deltaD,
                                               const FabDefectSample &sample);

/** adaptFabDefectsChecked; dies with a fatal error on invalid input
 *  (legacy entry — new callers want the checked variant). */
FabAdaptation adaptFabDefects(Strategy s, int d, int deltaD,
                              const FabDefectSample &sample);

} // namespace surf

#endif // SURF_DEFECTS_FAB_DEFECTS_HH
