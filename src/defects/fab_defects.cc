#include "defects/fab_defects.hh"

#include <algorithm>
#include <cmath>

#include "lattice/rotated.hh"
#include "util/logging.hh"

namespace surf {

namespace {

/** Site tags decorrelate the qubit and coupler decision streams. */
constexpr uint64_t kSiteFabQubit = 0xfab01ULL;
constexpr uint64_t kSiteFabCoupler = 0xfab02ULL;

/** SplitMix64 over the fold of (seed, site, a, b, c): stateless, same
 *  idiom as the fault injector's decision oracle. */
uint64_t
mix(uint64_t seed, uint64_t site, uint64_t a, uint64_t b = 0, uint64_t c = 0)
{
    uint64_t z = seed ^ (site * 0x9e3779b97f4a7c15ULL);
    for (uint64_t v : {a, b, c}) {
        z += 0x9e3779b97f4a7c15ULL * (v + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
    }
    return z;
}

double
unit(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Fold a (possibly negative) coordinate into one decision word. */
uint64_t
packCoord(Coord c)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(c.x)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(c.y));
}

Status
badRate(const char *which, double v)
{
    return Status::invalidArgument(
        std::string("fab defects: ") + which +
        " must be a probability in [0, 1], got " + std::to_string(v));
}

} // namespace

std::vector<Coord>
fabQubitCandidates(const CodePatch &patch)
{
    std::vector<Coord> qubits = patch.dataList();
    for (const Check &c : patch.checks())
        if (c.ancilla)
            qubits.push_back(*c.ancilla);
    std::sort(qubits.begin(), qubits.end());
    qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
    return qubits;
}

std::vector<std::pair<Coord, Coord>>
fabCouplerCandidates(const CodePatch &patch)
{
    std::vector<std::pair<Coord, Coord>> couplers;
    for (const Check &c : patch.checks()) {
        if (!c.ancilla)
            continue;
        for (const Coord &q : c.support)
            couplers.emplace_back(*c.ancilla, q);
    }
    std::sort(couplers.begin(), couplers.end());
    couplers.erase(std::unique(couplers.begin(), couplers.end()),
                   couplers.end());
    return couplers;
}

void
sampleFabInto(FabDefectSample &out, const CodePatch &patch, double qubitRate,
              double couplerRate, uint64_t seed, uint64_t salt)
{
    if (qubitRate > 0.0)
        for (const Coord &q : fabQubitCandidates(patch))
            if (unit(mix(seed, kSiteFabQubit, salt, packCoord(q))) <
                qubitRate)
                out.qubits.insert(q);
    if (couplerRate > 0.0)
        for (const auto &[anc, dat] : fabCouplerCandidates(patch))
            if (unit(mix(seed, kSiteFabCoupler, salt, packCoord(anc),
                         packCoord(dat))) < couplerRate)
                out.couplers.emplace(anc, dat);
}

StatusOr<FabDefectSample>
sampleFabDefectsChecked(const CodePatch &patch, const FabDefectModel &model)
{
    auto prob_ok = [](double p) {
        return std::isfinite(p) && p >= 0.0 && p <= 1.0;
    };
    if (!prob_ok(model.qubitRate))
        return badRate("qubitRate", model.qubitRate);
    if (!prob_ok(model.couplerRate))
        return badRate("couplerRate", model.couplerRate);
    FabDefectSample out;
    sampleFabInto(out, patch, model.qubitRate, model.couplerRate, model.seed,
                  0);
    return out;
}

FabDefectSample
sampleFabDefects(const CodePatch &patch, const FabDefectModel &model)
{
    StatusOr<FabDefectSample> out = sampleFabDefectsChecked(patch, model);
    if (!out.ok())
        SURF_FATAL("sampleFabDefects: ", out.status().str());
    return std::move(out.value());
}

std::set<Coord>
fabEffectiveSites(const FabDefectSample &sample)
{
    std::set<Coord> sites = sample.qubits;
    for (const auto &[anc, dat] : sample.couplers)
        sites.insert(dat);
    return sites;
}

StatusOr<FabAdaptation>
adaptFabDefectsChecked(Strategy s, int d, int deltaD,
                       const FabDefectSample &sample)
{
    FabAdaptation adapt;
    adapt.disabledSites = fabEffectiveSites(sample);
    StatusOr<StrategyOutcome> outcome =
        applyStrategyChecked(s, d, deltaD, adapt.disabledSites);
    if (!outcome.ok())
        return outcome.status();
    adapt.outcome = std::move(outcome.value());

    const CodePatch &patch = adapt.outcome.patch;
    const CodePatch pristine = squarePatch(d);
    for (const Coord &q : pristine.dataQubits())
        if (!patch.hasData(q))
            ++adapt.disabledData;
    adapt.superClusters = patch.supers().size();
    const size_t min_dist = adapt.outcome.minDist();
    adapt.distanceLoss =
        adapt.outcome.alive
            ? (static_cast<size_t>(d) > min_dist
                   ? static_cast<size_t>(d) - min_dist
                   : 0)
            : static_cast<size_t>(d);
    return adapt;
}

FabAdaptation
adaptFabDefects(Strategy s, int d, int deltaD, const FabDefectSample &sample)
{
    StatusOr<FabAdaptation> out = adaptFabDefectsChecked(s, d, deltaD, sample);
    if (!out.ok())
        SURF_FATAL("adaptFabDefects: ", out.status().str());
    return std::move(out.value());
}

} // namespace surf
