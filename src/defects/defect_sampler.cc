#include "defects/defect_sampler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace surf {

std::set<Coord>
DefectSampler::regionSites(Coord center, int diameter)
{
    // `diameter` counts data qubits across the region; in doubled lattice
    // coordinates that is a Chebyshev radius of diameter - 1 (a diameter-4
    // region covers ~25 sites, the paper's 24 affected qubits).
    const int radius = std::max(0, diameter - 1);
    std::set<Coord> sites;
    for (int dx = -radius; dx <= radius; ++dx)
        for (int dy = -radius; dy <= radius; ++dy) {
            const Coord c{center.x + dx, center.y + dy};
            if (c.isDataSite() || c.isCheckSite())
                sites.insert(c);
        }
    return sites;
}

std::vector<DefectEvent>
DefectSampler::sampleEvents(const CodePatch &patch, uint64_t cycles)
{
    std::vector<DefectEvent> events;
    const double per_cycle =
        params_.eventRatePerQubitCycle() *
        static_cast<double>(patch.numPhysicalQubits());
    if (per_cycle <= 0.0)
        return events;
    const uint64_t duration = params_.durationCycles();
    uint64_t cycle = rng_.geometricSkip(per_cycle);
    while (cycle < cycles) {
        DefectEvent ev;
        ev.startCycle = cycle;
        ev.endCycle = cycle + duration;
        // Uniform center over the patch footprint.
        const int w = patch.xMax() - patch.xMin() + 1;
        const int h = patch.yMax() - patch.yMin() + 1;
        ev.center = {patch.xMin() + static_cast<int>(rng_.below(
                                        static_cast<uint64_t>(w))),
                     patch.yMin() + static_cast<int>(rng_.below(
                                        static_cast<uint64_t>(h)))};
        ev.sites = regionSites(ev.center, params_.regionDiameter);
        events.push_back(std::move(ev));
        const uint64_t skip = rng_.geometricSkip(per_cycle);
        if (skip >= cycles - cycle)
            break;
        cycle += skip + 1;
    }
    return events;
}

std::set<Coord>
DefectSampler::activeSites(const std::vector<DefectEvent> &events,
                           uint64_t cycle)
{
    std::set<Coord> active;
    for (const auto &ev : events)
        if (ev.startCycle <= cycle && cycle < ev.endCycle)
            active.insert(ev.sites.begin(), ev.sites.end());
    return active;
}

std::set<Coord>
DefectSampler::sampleStaticFaults(const CodePatch &patch, int k)
{
    std::vector<Coord> candidates = patch.dataList();
    for (const auto &c : patch.checks())
        if (c.ancilla)
            candidates.push_back(*c.ancilla);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    SURF_ASSERT(k >= 0 &&
                static_cast<size_t>(k) <= candidates.size(),
                "more faults than qubits");
    const auto idx = rng_.sampleWithoutReplacement(
        static_cast<uint32_t>(candidates.size()), static_cast<uint32_t>(k));
    std::set<Coord> out;
    for (uint32_t i : idx)
        out.insert(candidates[i]);
    return out;
}

} // namespace surf
