#include "defects/defect_sampler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace surf {

std::set<Coord>
DefectSampler::regionSites(Coord center, int diameter)
{
    // `diameter` counts data qubits across the region; in doubled lattice
    // coordinates that is a Chebyshev radius of diameter - 1 (a diameter-4
    // region covers ~25 sites, the paper's 24 affected qubits).
    const int radius = std::max(0, diameter - 1);
    std::set<Coord> sites;
    for (int dx = -radius; dx <= radius; ++dx)
        for (int dy = -radius; dy <= radius; ++dy) {
            const Coord c{center.x + dx, center.y + dy};
            if (c.isDataSite() || c.isCheckSite())
                sites.insert(c);
        }
    return sites;
}

std::vector<DefectEvent>
DefectSampler::sampleEvents(const CodePatch &patch, uint64_t cycles)
{
    std::vector<DefectEvent> events;
    const double per_cycle =
        params_.eventRatePerQubitCycle() *
        static_cast<double>(patch.numPhysicalQubits());
    if (per_cycle <= 0.0)
        return events;
    const uint64_t duration = params_.durationCycles();
    uint64_t cycle = rng_.geometricSkip(per_cycle);
    while (cycle < cycles) {
        DefectEvent ev;
        ev.startCycle = cycle;
        ev.endCycle = cycle + duration;
        // Uniform center over the patch footprint.
        const int w = patch.xMax() - patch.xMin() + 1;
        const int h = patch.yMax() - patch.yMin() + 1;
        ev.center = {patch.xMin() + static_cast<int>(rng_.below(
                                        static_cast<uint64_t>(w))),
                     patch.yMin() + static_cast<int>(rng_.below(
                                        static_cast<uint64_t>(h)))};
        ev.sites = regionSites(ev.center, params_.regionDiameter);
        events.push_back(std::move(ev));
        const uint64_t skip = rng_.geometricSkip(per_cycle);
        if (skip >= cycles - cycle)
            break;
        cycle += skip + 1;
    }
    return events;
}

ActiveDefectSweep::ActiveDefectSweep(const std::vector<DefectEvent> &events)
    : events_(&events)
{
    by_start_.resize(events.size());
    by_end_.resize(events.size());
    for (size_t i = 0; i < events.size(); ++i)
        by_start_[i] = by_end_[i] = i;
    std::sort(by_start_.begin(), by_start_.end(), [&](size_t a, size_t b) {
        return events[a].startCycle < events[b].startCycle;
    });
    std::sort(by_end_.begin(), by_end_.end(), [&](size_t a, size_t b) {
        return events[a].endCycle < events[b].endCycle;
    });
}

void
ActiveDefectSweep::rewind()
{
    start_cursor_ = end_cursor_ = 0;
    last_cycle_ = 0;
    started_ = false;
    refcount_.clear();
    active_.clear();
}

const std::set<Coord> &
ActiveDefectSweep::activeAt(uint64_t cycle)
{
    SURF_ASSERT(!started_ || cycle >= last_cycle_,
                "ActiveDefectSweep queries must be monotone; rewind() first");
    started_ = true;
    last_cycle_ = cycle;
    // Admit events that have started (startCycle <= cycle)...
    while (start_cursor_ < by_start_.size()) {
        const DefectEvent &ev = (*events_)[by_start_[start_cursor_]];
        if (ev.startCycle > cycle)
            break;
        for (const Coord &c : ev.sites)
            if (++refcount_[c] == 1)
                active_.insert(c);
        ++start_cursor_;
    }
    // ... and retire events that have expired (endCycle <= cycle). Every
    // expired event was admitted above (endCycle > startCycle), so an
    // event skipped over entirely between two queries nets out exactly.
    while (end_cursor_ < by_end_.size()) {
        const DefectEvent &ev = (*events_)[by_end_[end_cursor_]];
        if (ev.endCycle > cycle)
            break;
        for (const Coord &c : ev.sites) {
            auto it = refcount_.find(c);
            if (it != refcount_.end() && --it->second == 0) {
                refcount_.erase(it);
                active_.erase(c);
            }
        }
        ++end_cursor_;
    }
    return active_;
}

std::set<Coord>
DefectSampler::activeSites(const std::vector<DefectEvent> &events,
                           uint64_t cycle)
{
    ActiveDefectSweep sweep(events);
    return sweep.activeAt(cycle);
}

StatusOr<std::set<Coord>>
DefectSampler::sampleStaticFaultsChecked(const CodePatch &patch, int k)
{
    std::vector<Coord> candidates = patch.dataList();
    for (const auto &c : patch.checks())
        if (c.ancilla)
            candidates.push_back(*c.ancilla);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (k < 0)
        return Status::invalidArgument(
            "static faults: k must be >= 0, got " + std::to_string(k));
    if (static_cast<size_t>(k) > candidates.size())
        return Status::invalidArgument(
            "static faults: k=" + std::to_string(k) + " exceeds the " +
            std::to_string(candidates.size()) + " physical qubits of the "
            "patch");
    const auto idx = rng_.sampleWithoutReplacement(
        static_cast<uint32_t>(candidates.size()), static_cast<uint32_t>(k));
    std::set<Coord> out;
    for (uint32_t i : idx)
        out.insert(candidates[i]);
    return out;
}

std::set<Coord>
DefectSampler::sampleStaticFaults(const CodePatch &patch, int k)
{
    StatusOr<std::set<Coord>> out = sampleStaticFaultsChecked(patch, k);
    if (!out.ok())
        SURF_FATAL("sampleStaticFaults: ", out.status().str());
    return std::move(out.value());
}

} // namespace surf
