/**
 * @file
 * Defect-detector model (paper Sec. VII-E / fig. 14b): hardware detectors
 * locate defective qubits with small false-positive and false-negative
 * probabilities; the deformation unit acts on the *observed* defect set
 * while the noise acts on the *true* one.
 */

#ifndef SURF_DEFECTS_DETECTOR_MODEL_HH
#define SURF_DEFECTS_DETECTOR_MODEL_HH

#include <set>

#include "lattice/patch.hh"
#include "util/rng.hh"

namespace surf {

/** Imperfect defect detection. */
struct DetectorModel
{
    double falsePositive = 0.0; ///< P(report defect | healthy qubit)
    double falseNegative = 0.0; ///< P(miss defect | defective qubit)

    /**
     * Observed defect set: each true defect is missed with probability
     * falseNegative; each healthy site is flagged with probability
     * falsePositive.
     */
    std::set<Coord> observe(const std::set<Coord> &true_defects,
                            const CodePatch &patch, Rng &rng) const;
};

} // namespace surf

#endif // SURF_DEFECTS_DETECTOR_MODEL_HH
