#include "scenario/scenario_experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <cerrno>
#include <sys/stat.h>
#include <unistd.h>

#include "lattice/rotated.hh"
#include "persist/cache_snapshot.hh"
#include "persist/checkpoint.hh"
#include "scenario/patch_signature.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace surf {

namespace {

/** SplitMix64-style timeline seed derivation (deterministic, decorrelated
 *  from the per-batch sampling seeds). */
uint64_t
mixSeed(uint64_t seed, uint64_t salt)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Per-timeline stride of the batch-seed sequence; timeline 0 starts at
 *  cfg.seed exactly so one-timeline scenarios share the memory pipeline's
 *  seed schedule. */
constexpr uint64_t kTimelineSeedStride = 0x51ed5eed9e3779b9ULL;

/** Soft budget armed when a fault plan injects decoder stalls but the
 *  config sets no explicit decodeDeadlineNs: 10 ms, a fifth of the
 *  default 50 ms injected stall, so stall plans force the ladder out of
 *  the box. */
constexpr uint64_t kDefaultStallDeadlineNs = 10'000'000;

/** mkdir -p for the persist directory (single-filesystem, 0755). */
Status
ensurePersistDir(const std::string &dir)
{
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t next = dir.find('/', pos);
        if (next == std::string::npos)
            next = dir.size();
        const std::string partial = dir.substr(0, next);
        if (!partial.empty() && partial != "/" && partial != "." &&
            ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return Status::invalidArgument(
                "persist dir: cannot create '" + partial +
                "': " + std::strerror(errno));
        pos = next + 1;
    }
    return Status::okStatus();
}

/** Fault-salt tags keep the cache snapshot's and the checkpoint's
 *  snap.* corruption streams decorrelated. */
constexpr uint64_t kSnapSaltCache = 1;
constexpr uint64_t kSnapSaltCheckpoint = 2;

std::string
noiseSignature(const NoiseParams &noise)
{
    // Round-trippable float encoding: std::to_string's fixed six decimals
    // would collide distinct sub-1e-6 rates into one cache key.
    char buf[96];
    std::snprintf(buf, sizeof buf, "p%.17g,pd%.17g,pc%.17g,df:", noise.p,
                  noise.pDefect, noise.pCorrelated2q);
    return buf + coordSetSignature(noise.defectiveSites);
}

const char *
backendTag(MatchingBackend b)
{
    switch (b) {
      case MatchingBackend::Dense:
        return "dense";
      case MatchingBackend::SparseBlossom:
        return "sblossom";
      default:
        return "sparse";
    }
}

/** Canonical identity of one decode-ready segment (see the cache doc). */
std::string
segmentCacheKey(const std::string &prevSig, const std::string &curSig,
                const std::set<Coord> &removedUntrusted,
                const std::vector<Coord> &prevTracked,
                const std::vector<Coord> &curTracked,
                const SegmentSpec &spec, const NoiseParams &decoderNoise,
                const ScenarioConfig &cfg)
{
    std::string key = "cur:" + curSig + "\nprev:" + prevSig;
    key += "\nuntrusted:" + coordSetSignature(removedUntrusted);
    key += "\ntrack:" +
           coordSetSignature({prevTracked.begin(), prevTracked.end()}) +
           ">" + coordSetSignature({curTracked.begin(), curTracked.end()});
    key += "\nr" + std::to_string(spec.rounds);
    key += " s" + std::to_string(spec.startRound & 1);
    key += spec.first ? " F" : "";
    key += spec.last ? " L" : "";
    key += (spec.basis == PauliType::Z) ? " bZ" : " bX";
    key += "\nnoise:" + noiseSignature(decoderNoise);
    key += "\ndec:";
    key += backendTag(cfg.matching);
    key += " rb" + std::to_string(cfg.mwpmRowBudget);
    return key;
}

/**
 * Identity of a whole stitched timeline: the decode-relevant scenario
 * config plus every epoch's structural signature, defect sets and
 * placement. Everything the stitched circuit and its decode segments
 * depend on is a pure function of this key, which is what makes
 * timeline cache hits bit-identical to rebuilds.
 */
std::string
timelineCacheKey(const ScenarioPlan &plan, const ScenarioConfig &cfg)
{
    std::string key = "tl:";
    key += (cfg.basis == PauliType::Z) ? "bZ" : "bX";
    if (cfg.decoderKnowsDefects)
        key += " dk";
    key += " dec:";
    key += backendTag(cfg.matching);
    key += " rb" + std::to_string(cfg.mwpmRowBudget);
    key += "\nnoise:" + noiseSignature(cfg.noise);
    for (const Epoch &ep : plan.epochs) {
        key += "\n@" + std::to_string(ep.startRound) + "+" +
               std::to_string(ep.rounds);
        key += " act:" + coordSetSignature(ep.activeSites);
        key += " res:" + coordSetSignature(ep.residualDefects);
        key += "\n" + ep.structSig;
    }
    return key;
}

/** Deterministic all-loss timeline (dead patch or broken continuity). */
TimelineStats
deadTimeline(const ScenarioConfig &cfg, size_t events)
{
    TimelineStats tl;
    tl.events = events;
    tl.dead = true;
    tl.shots = cfg.maxShotsPerTimeline;
    tl.failures = cfg.maxShotsPerTimeline;
    return tl;
}

} // namespace

/**
 * Stitch one plan's concatenated sampling circuit and resolve its
 * decode-ready segments (through the segment cache when enabled). Pure
 * function of (plan, decode-relevant config): the timeline cache hands
 * out memoized results keyed on exactly those.
 *
 * `inject`/`ledger` (both optional) wire in the fault harness: an
 * epoch-build eviction storm empties the cache right before the chosen
 * epochs' segments resolve, while the build is mid-flight — entries the
 * earlier epochs pinned stay usable through their shared_ptrs, the
 * stormed segments rebuild, and the result is bit-identical either way.
 */
CachedTimeline
buildStitchedTimeline(const ScenarioPlan &plan, const ScenarioConfig &cfg,
                      DeformedCodeCache &cache, ThreadPool &pool,
                      const FaultInjector *inject, DegradationLedger *ledger)
{
    CachedTimeline out;
    const size_t n_epochs = plan.epochs.size();
    const uint8_t tag = (cfg.basis == PauliType::Z) ? 1 : 0;
    std::map<Coord, uint32_t> qubit_id;
    SeamState carry;
    const CodePatch *prev_patch = nullptr;
    const std::string *prev_sig = nullptr;
    std::vector<Coord> tracked; ///< representative carried across seams
    out.epochs.reserve(n_epochs);

    for (size_t e = 0; e < n_epochs; ++e) {
        if (inject && inject->stormAtEpochBuild(0, e)) {
            cache.evictAll();
            if (ledger)
                ++ledger->cacheStorms;
        }
        const Epoch &ep = plan.epochs[e];
        const CodePatch &patch = ep.deformed.patch;
        SegmentSpec spec;
        spec.basis = cfg.basis;
        spec.rounds = static_cast<int>(ep.rounds);
        spec.startRound = ep.startRound;
        spec.first = (e == 0);
        spec.last = (e + 1 == n_epochs);
        spec.epochProbes = true; ///< opening/closing oracle probes

        const std::vector<Coord> prev_tracked = tracked;
        const SeamPlan seam =
            computeSeamPlan(prev_patch, patch, cfg.basis, ep.activeSites,
                            ep.startRound, e ? &prev_tracked : nullptr);
        if (!seam.obsCarryValid) {
            // No continuation of the tracked logical exists in the new
            // code: the burst effectively destroyed the stored qubit.
            out.alive = false;
            out.circuit = Circuit{};
            out.epochs.clear();
            return out;
        }
        tracked = seam.trackedLogical;

        // Sampling view: residual defects inside the code, plus active
        // defects on qubits being measured out at the seam (their readouts
        // are junk, which is exactly why the seam plan distrusts them).
        NoiseParams samp_noise = cfg.noise;
        samp_noise.defectiveSites = ep.residualDefects;
        std::set<Coord> removed_untrusted;
        for (const Coord &q : seam.removed)
            if (ep.activeSites.count(q)) {
                samp_noise.defectiveSites.insert(q);
                removed_untrusted.insert(q);
            }

        const SegmentResult res =
            appendSegment(out.circuit, qubit_id, patch, spec, samp_noise,
                          seam, e ? &carry : nullptr, false);
        carry = std::move(res.carry);
        // Decoder view: defect-unaware unless configured otherwise.
        NoiseParams dec_noise = cfg.noise;
        dec_noise.defectiveSites = cfg.decoderKnowsDefects
                                       ? ep.residualDefects
                                       : std::set<Coord>{};
        auto build = [&] {
            SegmentSpec standalone_spec = spec;
            standalone_spec.epochProbes = false;
            CachedSegment cs;
            cs.circuit = buildStandaloneSegment(patch, standalone_spec,
                                                dec_noise, seam, prev_patch);
            cs.dem = buildDem(cs.circuit, cfg.basis);
            cs.mwpm = std::make_unique<MwpmDecoder>(cs.dem, tag, &pool,
                                                    cfg.matching);
            if (cfg.mwpmRowBudget)
                cs.mwpm->setRowBudget(cfg.mwpmRowBudget);
            cs.uf = std::make_unique<UnionFindDecoder>(cs.dem, tag);
            return cs;
        };
        CachedTimelineEpoch ce;
        if (cfg.useCache) {
            ce.segKey = segmentCacheKey(
                prev_sig ? *prev_sig : std::string("-"), ep.structSig,
                removed_untrusted, prev_tracked, seam.trackedLogical, spec,
                dec_noise, cfg);
            ce.seg = cache.get(ce.segKey, build);
        } else {
            ce.seg = std::make_shared<const CachedSegment>(build());
        }
        if (ce.seg->dem.numDetectors != res.detEnd - res.detBegin)
            // A structurally inconsistent epoch plan (or a malformed
            // cached DEM) surfaces as a value at the checked boundary
            // instead of killing a long-running service.
            throw StatusError(Status::internal(
                "stitched timeline: standalone segment of epoch " +
                std::to_string(e) + " has " +
                std::to_string(ce.seg->dem.numDetectors) +
                " detectors but the concatenated circuit reserved " +
                std::to_string(res.detEnd - res.detBegin)));
        ce.startRound = ep.startRound;
        ce.rounds = ep.rounds;
        ce.distX = ep.deformed.distX;
        ce.distZ = ep.deformed.distZ;
        ce.activeDefects = ep.activeSites.size();
        ce.detBegin = res.detBegin;
        ce.detEnd = res.detEnd;
        out.epochs.push_back(std::move(ce));

        prev_patch = &patch;
        prev_sig = &ep.structSig;
    }
    return out;
}

TimelineStats
runPlannedTimeline(const ScenarioPlan &plan, const ScenarioConfig &cfg,
                   DeformedCodeCache &cache, uint64_t batchSeedBase,
                   uint64_t failuresSoFar)
{
    // A deformation window that destroyed the logical qubit makes every
    // shot of the timeline a logical loss (deterministic, so the result
    // stays invariant under threading and caching).
    if (!plan.alive)
        return deadTimeline(cfg, plan.numEvents);
    TimelineStats tl;
    tl.events = plan.numEvents;
    SURF_ASSERT(!plan.epochs.empty(), "planned timeline has no epochs");
    ThreadPool pool(cfg.threads);

    // --- Fault harness + deadline (both default-off) ---------------------
    // Injection decisions are pure hashes of (plan seed, site, salt,
    // indices); the salt is this timeline's batch-seed base, so decisions
    // are unique per timeline yet identical at any thread count. Stall
    // plans switch the deadline to its virtual clock, making every stage
    // choice (and recorded latency) deterministic too.
    const FaultInjector inject(cfg.faults);
    const uint64_t salt = batchSeedBase;
    const uint64_t deadline_ns =
        cfg.decodeDeadlineNs
            ? cfg.decodeDeadlineNs
            : (cfg.faults.hasDecoderStalls() ? kDefaultStallDeadlineNs : 0);
    const bool ladder_on = deadline_ns != 0 &&
                           cfg.matching != MatchingBackend::Dense &&
                           cfg.decoder != DecoderKind::UnionFind;

    // --- Resolve the stitched timeline: one lookup covers the seam
    // classification, circuit stitching and every per-epoch decode
    // segment. Warm sweeps and quiet (event-free) timelines skip
    // straight to sampling. ----------------------------------------------
    const FaultInjector *bi = inject.enabled() ? &inject : nullptr;
    std::shared_ptr<const CachedTimeline> tlc;
    if (cfg.useCache) {
        tlc = cache.getTimeline(timelineCacheKey(plan, cfg), [&] {
            return buildStitchedTimeline(plan, cfg, cache, pool, bi,
                                         &tl.ledger);
        });
    } else {
        tlc = std::make_shared<const CachedTimeline>(
            buildStitchedTimeline(plan, cfg, cache, pool, bi, &tl.ledger));
    }
    if (!tlc->alive)
        return deadTimeline(cfg, plan.numEvents);
    const Circuit &ckt = tlc->circuit;
    const size_t n_epochs = tlc->epochs.size();
    tl.epochs.resize(n_epochs);
    for (size_t e = 0; e < n_epochs; ++e) {
        const CachedTimelineEpoch &ce = tlc->epochs[e];
        EpochStats &st = tl.epochs[e];
        st.startRound = ce.startRound;
        st.rounds = ce.rounds;
        st.distX = ce.distX;
        st.distZ = ce.distZ;
        st.activeDefects = ce.activeDefects;
        st.numDetectors = ce.detEnd - ce.detBegin;
        st.decomposedHyperedges = ce.seg->dem.decomposedComponents;
        st.undetectableObsProb = ce.seg->dem.undetectableObsProb;
    }

    // --- Batched sampling + sharded per-epoch decode ---------------------
    // Same pipeline discipline as runMemoryExperiment: sampling is serial
    // per batch, shots decode independently, per-worker tallies merge in a
    // fixed order — the result is bit-identical for any thread count.
    std::vector<MwpmScratch> mwpm_scratch(pool.size());
    std::vector<UfScratch> uf_scratch(pool.size());
    std::vector<uint64_t> worker_failures(pool.size());
    std::vector<std::vector<uint32_t>> local_ids(pool.size());
    std::vector<std::vector<uint64_t>> worker_mism(
        pool.size(), std::vector<uint64_t>(n_epochs));
    std::vector<DecodeDeadline> worker_deadline(pool.size());
    std::vector<DegradationLedger> worker_ledger(pool.size());
    if (ladder_on)
        for (auto &dl : worker_deadline)
            dl.configure(deadline_ns, inject.virtualClockNeeded());
    SparseSyndromes syndromes;
    std::unique_ptr<FrameSimulator> sim;

    uint64_t batch_seed = batchSeedBase;
    uint64_t batch_index = 0;
    while (tl.shots < cfg.maxShotsPerTimeline &&
           failuresSoFar + tl.failures < cfg.targetFailures) {
        if (inject.enabled() && inject.stormAtBatch(salt, batch_index)) {
            // Mid-timeline eviction storm: this timeline keeps decoding
            // through its pinned shared_ptr segments; later lookups
            // rebuild. Results cannot change, only cost.
            cache.evictAll();
            ++tl.ledger.cacheStorms;
        }
        ++batch_index;
        const uint64_t shots_before = tl.shots;
        const size_t batch = static_cast<size_t>(std::min<uint64_t>(
            cfg.batchShots, cfg.maxShotsPerTimeline - tl.shots));
        if (!sim || sim->shots() != batch) {
            sim = std::make_unique<FrameSimulator>(ckt, batch, batch_seed++);
        } else {
            sim->reset(batch_seed++);
            sim->run();
        }
        sim->sparseFiredDetectors(syndromes);
        const BitVec &obs_bits = sim->observableBits(0);

        std::fill(worker_failures.begin(), worker_failures.end(), 0);
        for (auto &m : worker_mism)
            std::fill(m.begin(), m.end(), 0);
        // MWPM decode of one epoch's fired list, under the fallback
        // ladder when a deadline is armed: blossom → rows inside the
        // decoder, union-find floor here when both stages overran. Every
        // ladder trip lands in the worker's ledger (merged in fixed
        // worker order after the sweep).
        const auto mwpmDecode = [&](const CachedTimelineEpoch &ce,
                                    std::vector<uint32_t> &ids,
                                    uint64_t shot, size_t e,
                                    size_t worker) -> bool {
            MwpmScratch &msc = mwpm_scratch[worker];
            if (!ladder_on)
                return ce.seg->mwpm->decode(ids.data(), ids.size(), msc);
            DecodeDeadline &dl = worker_deadline[worker];
            DegradationLedger &led = worker_ledger[worker];
            msc.deadline = &dl;
            msc.stallNs = {};
            if (inject.enabled()) {
                msc.stallNs[kStageBlossom] =
                    inject.stallNs(salt, shot, e, kStageBlossom);
                msc.stallNs[kStageRows] =
                    inject.stallNs(salt, shot, e, kStageRows);
            }
            bool predicted =
                ce.seg->mwpm->decode(ids.data(), ids.size(), msc);
            msc.deadline = nullptr;
            for (uint8_t st = 0; st < kNumDecodeStages; ++st)
                if ((msc.ladder.attempted >> st) & 1 && msc.stallNs[st])
                    ++led.injectedStalls;
            if (msc.timedOut) {
                // Both MWPM stages overran: the union-find floor always
                // completes, so the shot degrades but never blocks.
                dl.beginStage(0);
                predicted = ce.seg->uf->decode(ids.data(), ids.size(),
                                               uf_scratch[worker]);
                msc.ladder.note(kStageUnionFind, dl.stageElapsedNs(),
                                false);
                msc.ladder.answer = kStageUnionFind;
            }
            if (msc.ladder.attempted)
                led.record(msc.ladder);
            return predicted;
        };
        const size_t n_shards = std::min(batch, pool.size() * 4);
        pool.parallelFor(n_shards, [&](size_t shard, size_t worker) {
            const size_t begin = batch * shard / n_shards;
            const size_t end = batch * (shard + 1) / n_shards;
            uint64_t failures = 0;
            for (size_t s = begin; s < end; ++s) {
                const uint32_t *fired = syndromes.data(s);
                const size_t n_fired = syndromes.count(s);
                const uint64_t shot = shots_before + s;
                size_t idx = 0;
                bool total = false;
                for (size_t e = 0; e < n_epochs; ++e) {
                    const CachedTimelineEpoch &ce = tlc->epochs[e];
                    // Detector ranges are contiguous and ascending, so one
                    // sweep slices the sorted fired list per epoch.
                    auto &ids = local_ids[worker];
                    ids.clear();
                    while (idx < n_fired && fired[idx] < ce.detEnd) {
                        ids.push_back(static_cast<uint32_t>(fired[idx] -
                                                            ce.detBegin));
                        ++idx;
                    }
                    if (inject.enabled()) {
                        const size_t added = inject.injectBurst(
                            salt, shot, e, ce.detEnd - ce.detBegin, ids);
                        if (added) {
                            ++worker_ledger[worker].injectedBursts;
                            worker_ledger[worker].injectedBurstDetectors +=
                                added;
                        }
                    }
                    bool predicted;
                    switch (cfg.decoder) {
                      case DecoderKind::Mwpm:
                        predicted = mwpmDecode(ce, ids, shot, e, worker);
                        break;
                      case DecoderKind::UnionFind:
                        predicted = ce.seg->uf->decode(
                            ids.data(), ids.size(), uf_scratch[worker]);
                        break;
                      case DecoderKind::Auto:
                      default:
                        predicted =
                            (ids.size() <= cfg.mwpmDefectCap)
                                ? mwpmDecode(ce, ids, shot, e, worker)
                                : ce.seg->uf->decode(ids.data(), ids.size(),
                                                     uf_scratch[worker]);
                        break;
                    }
                    // Oracle truth of this epoch: frame accumulated on its
                    // own tracked representative between the opening probe
                    // (index 2e-1; zero for the first epoch) and the
                    // closing probe (index 2e) — the same accounting its
                    // decoder uses. Seam frame updates and readout noise
                    // live in the observable, not the probes, so per-epoch
                    // truths are diagnostics; the failure check below
                    // always uses the true observable.
                    const bool open_frame =
                        e ? sim->probeBits(2 * e - 1).get(s) : false;
                    const bool close_frame = sim->probeBits(2 * e).get(s);
                    worker_mism[worker][e] +=
                        predicted != (open_frame ^ close_frame);
                    total ^= predicted;
                }
                failures += total != obs_bits.get(s);
            }
            worker_failures[worker] += failures;
        });
        for (uint64_t f : worker_failures)
            tl.failures += f;
        for (const auto &m : worker_mism)
            for (size_t e = 0; e < n_epochs; ++e)
                tl.epochs[e].mismatches += m[e];
        for (size_t e = 0; e < n_epochs; ++e)
            tl.epochs[e].shots += batch;
        tl.shots += batch;
    }
    // Fixed worker order keeps the merged ledger deterministic whenever
    // the per-shot traces are (virtual clock / no real deadline).
    for (const auto &wl : worker_ledger)
        tl.ledger.merge(wl);
    return tl;
}

Status
validateScenarioConfig(const ScenarioConfig &cfg)
{
    auto bad = [](const std::string &msg) {
        return Status::invalidArgument("scenario config: " + msg);
    };
    auto prob_ok = [](double p) {
        return std::isfinite(p) && p >= 0.0 && p <= 1.0;
    };
    if (cfg.timeline.d < 2 || cfg.timeline.d > 512)
        return bad("code distance d=" + std::to_string(cfg.timeline.d) +
                   " out of range [2, 512]");
    if (cfg.timeline.deltaD < 0)
        return bad("deltaD must be >= 0");
    switch (cfg.timeline.strategy) {
      case Strategy::LatticeSurgery:
      case Strategy::Ascs:
      case Strategy::Q3de:
      case Strategy::Q3deRevised:
      case Strategy::SurfDeformer:
        break;
      default:
        return bad("unknown Strategy value " +
                   std::to_string(
                       static_cast<int>(cfg.timeline.strategy)));
    }
    if (!prob_ok(cfg.fabDefects.qubitRate))
        return bad("fabDefects.qubitRate must be a probability in [0, 1]");
    if (!prob_ok(cfg.fabDefects.couplerRate))
        return bad("fabDefects.couplerRate must be a probability in "
                   "[0, 1]");
    if (cfg.timeline.horizonRounds < 1)
        return bad("horizonRounds must be >= 1 (zero-round scenarios "
                   "have no syndrome data to decode)");
    if (cfg.timeline.windowRounds < 1)
        return bad("windowRounds must be >= 1");
    if (cfg.numTimelines < 1)
        return bad("numTimelines must be >= 1");
    if (cfg.maxShotsPerTimeline < 1)
        return bad("maxShotsPerTimeline must be >= 1");
    if (cfg.batchShots < 1)
        return bad("batchShots must be >= 1");
    if (cfg.targetFailures < 1)
        return bad("targetFailures must be >= 1 (the run would stop "
                   "before its first shot)");
    if (!(std::isfinite(cfg.eventRateScale) && cfg.eventRateScale >= 0.0))
        return bad("eventRateScale must be finite and >= 0");
    if (!prob_ok(cfg.noise.p))
        return bad("noise.p must be a probability in [0, 1]");
    if (!prob_ok(cfg.noise.pDefect))
        return bad("noise.pDefect must be a probability in [0, 1]");
    if (!prob_ok(cfg.noise.pCorrelated2q))
        return bad("noise.pCorrelated2q must be a probability in [0, 1]");
    if (!(std::isfinite(cfg.defectModel.eventRatePerQubitSec) &&
          cfg.defectModel.eventRatePerQubitSec >= 0.0))
        return bad("defectModel.eventRatePerQubitSec must be finite and "
                   ">= 0");
    if (!(std::isfinite(cfg.defectModel.durationSec) &&
          cfg.defectModel.durationSec >= 0.0))
        return bad("defectModel.durationSec must be finite and >= 0");
    if (!(std::isfinite(cfg.defectModel.cycleTimeSec) &&
          cfg.defectModel.cycleTimeSec > 0.0))
        return bad("defectModel.cycleTimeSec must be finite and > 0");
    switch (cfg.decoder) {
      case DecoderKind::Mwpm:
      case DecoderKind::UnionFind:
      case DecoderKind::Auto:
        break;
      default:
        return bad("unknown DecoderKind value " +
                   std::to_string(static_cast<int>(cfg.decoder)));
    }
    switch (cfg.matching) {
      case MatchingBackend::Dense:
      case MatchingBackend::Sparse:
      case MatchingBackend::SparseBlossom:
        break;
      default:
        return bad("unknown MatchingBackend value " +
                   std::to_string(static_cast<int>(cfg.matching)));
    }
    if (cfg.basis != PauliType::X && cfg.basis != PauliType::Z)
        return bad("basis must be Pauli X or Z");
    return validateFaultPlan(cfg.faults);
}

Status
validateDefectStream(const std::vector<DefectEvent> &events,
                     const ScenarioConfig &cfg)
{
    // Any site a deformation could ever reach lives well inside this
    // box (patch coordinates are ~[0, 2d] plus the enlargement slack);
    // a "teleported" corrupt center lands far outside it.
    const int bound = 4 * (cfg.timeline.d + cfg.timeline.deltaD) + 16;
    auto inBox = [bound](Coord c) {
        return c.x >= -bound && c.x <= bound && c.y >= -bound &&
               c.y <= bound;
    };
    for (size_t i = 0; i < events.size(); ++i) {
        const DefectEvent &ev = events[i];
        const std::string tag = "defect stream event " + std::to_string(i);
        if (ev.endCycle <= ev.startCycle)
            return Status::dataLoss(
                tag + ": empty or inverted cycle interval [" +
                std::to_string(ev.startCycle) + ", " +
                std::to_string(ev.endCycle) + ")");
        if (ev.sites.empty())
            return Status::dataLoss(tag + ": no affected sites");
        if (!inBox(ev.center))
            return Status::dataLoss(
                tag + ": center (" + std::to_string(ev.center.x) + ", " +
                std::to_string(ev.center.y) + ") is off the lattice "
                "(|coord| bound " + std::to_string(bound) + ")");
        for (const Coord &q : ev.sites)
            if (!inBox(q))
                return Status::dataLoss(
                    tag + ": site (" + std::to_string(q.x) + ", " +
                    std::to_string(q.y) + ") is off the lattice");
    }
    return Status::okStatus();
}

StatusOr<ScenarioResult>
runScenarioExperimentChecked(const ScenarioConfig &userCfg)
{
    ScenarioConfig cfg = userCfg;
    if (!cfg.faults.enabled()) {
        // The environment plan fills an empty config plan (explicit
        // config plans win), so any existing entry point can be fault
        // tested without code changes.
        StatusOr<FaultPlan> env = faultPlanFromEnv();
        if (!env.ok())
            return env.status();
        cfg.faults = *env;
    }
    if (cfg.persistDir.empty()) {
        const char *env = std::getenv("SURF_PERSIST_DIR");
        if (env && *env)
            cfg.persistDir = env;
    }
    if (Status s = validateScenarioConfig(cfg); !s.ok())
        return s;

    try {
        ScenarioResult out;
        out.horizonRounds = cfg.timeline.horizonRounds;
        DeformedCodeCache local_cache;
        DeformedCodeCache &cache = cfg.cache ? *cfg.cache : local_cache;
        if (cfg.cacheMaxBytes || cfg.cacheMaxEntries)
            cache.setBudget(cfg.cacheMaxBytes, cfg.cacheMaxEntries);
        const uint64_t hits0 = cache.hits(), misses0 = cache.misses();
        const uint64_t evictions0 = cache.evictions();

        const FaultInjector inject(cfg.faults);
        const FaultInjector *snapInject = inject.enabled() ? &inject : nullptr;

        // --- Warm-start persistence: restore the cache snapshot and any
        // compatible run checkpoint before the first timeline. Every
        // failure shape — missing file, torn tail, flipped bit, version
        // skew, semantic mismatch — degrades to a cold start with a
        // ledger recovery count; restored state can never change results
        // (cache entries are pure functions of their keys; checkpoint
        // stats replicate completed timelines exactly).
        const bool persist_on = !cfg.persistDir.empty();
        std::string ckpt_path;
        uint64_t config_sig = 0;
        if (persist_on) {
            if (Status s = ensurePersistDir(cfg.persistDir); !s.ok())
                return s;
            const std::string snap_path = cfg.persistDir + "/cache.snap";
            config_sig = scenarioConfigSignature(cfg);
            char sig_hex[24];
            std::snprintf(sig_hex, sizeof sig_hex, "%016llx",
                          static_cast<unsigned long long>(config_sig));
            ckpt_path = cfg.persistDir + "/run-" + sig_hex + ".ckpt";

            const auto t0 = std::chrono::steady_clock::now();
            if (cfg.useCache && snapshotFileExists(snap_path)) {
                StatusOr<SnapshotRestoreStats> restored =
                    loadCacheSnapshot(cache, snap_path);
                if (restored.ok()) {
                    out.persistRestoredSegments = restored->segments;
                    out.persistRestoredTimelines = restored->timelines;
                    out.persistRestoredRows = restored->rows;
                    out.persistRejectedRecords = restored->rejectedRecords;
                    out.persistSnapshotBytes = restored->fileBytes;
                    out.ledger.snapRestoredEntries +=
                        restored->segments + restored->timelines;
                    out.ledger.snapRejectedRecords +=
                        restored->rejectedRecords;
                    if (restored->truncated) {
                        // The torn record itself (CRC-valid prefix kept).
                        ++out.persistRejectedRecords;
                        ++out.ledger.snapRejectedRecords;
                    }
                } else {
                    ++out.persistRecoveries;
                    ++out.ledger.snapRecoveries;
                }
            }
            if (snapshotFileExists(ckpt_path)) {
                StatusOr<RunCheckpoint> ckpt = loadRunCheckpoint(ckpt_path);
                if (ckpt.ok() && ckpt->configSignature == config_sig) {
                    for (TimelineStats &tl : ckpt->completed) {
                        out.shots += tl.shots;
                        out.failures += tl.failures;
                        out.totalEpochs += tl.epochs.size();
                        out.deadTimelines += tl.dead ? 1 : 0;
                        out.ledger.merge(tl.ledger);
                        out.timelines.push_back(std::move(tl));
                    }
                    out.resumedTimelines = out.timelines.size();
                } else if (!ckpt.ok()) {
                    ++out.persistRecoveries;
                    ++out.ledger.snapRecoveries;
                }
                // ok() but mismatched signature: a stale checkpoint from
                // a different physics config — ignored, not a recovery.
            }
            out.persistRestoreSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }

        StrategyMemo memo;
        const CodePatch base = squarePatch(cfg.timeline.d);
        DefectModelParams model = cfg.defectModel;
        model.eventRatePerQubitSec *= cfg.eventRateScale;

        // --- Fabrication defects: sample the run's base chip once and
        // adapt it once. When the fault plan also injects per-timeline
        // fab defects, every timeline re-samples on top of the base chip
        // and re-adapts (still pure functions of seeds and salts). A
        // disabled model with no fab fault plan leaves `chip` empty and
        // this whole layer is bit-identical to a config without it.
        const bool fab_inject = cfg.faults.fabQubitProb > 0.0 ||
                                cfg.faults.fabCouplerProb > 0.0;
        FabDefectSample chip;
        if (cfg.fabDefects.enabled()) {
            StatusOr<FabDefectSample> sampled =
                sampleFabDefectsChecked(base, cfg.fabDefects);
            if (!sampled.ok())
                return sampled.status();
            chip = std::move(sampled.value());
        }
        out.fabDefectiveQubits = chip.qubits.size();
        out.fabDefectiveCouplers = chip.couplers.size();
        std::optional<FabAdaptation> chip_adapt;
        if (!chip.empty()) {
            StatusOr<FabAdaptation> adapted = adaptFabDefectsChecked(
                cfg.timeline.strategy, cfg.timeline.d, cfg.timeline.deltaD,
                chip);
            if (!adapted.ok())
                return adapted.status();
            chip_adapt = std::move(adapted.value());
            out.fabDisabledData = chip_adapt->disabledData;
            out.fabSuperClusters = chip_adapt->superClusters;
            out.fabDistX = chip_adapt->outcome.distX;
            out.fabDistZ = chip_adapt->outcome.distZ;
            out.fabChipAlive = chip_adapt->outcome.alive;
        }

        // Resume at the first unfinished timeline. Per-timeline seeds
        // derive from t alone (not from any predecessor), so skipping
        // completed timelines reproduces the uninterrupted run exactly.
        for (int t = static_cast<int>(out.timelines.size());
             t < cfg.numTimelines; ++t) {
            if (out.failures >= cfg.targetFailures)
                break;
            const uint64_t timeline_salt =
                cfg.seed + static_cast<uint64_t>(t) * kTimelineSeedStride;
            std::vector<DefectEvent> events;
            if (cfg.eventRateScale > 0.0) {
                DefectSampler sampler(model,
                                      mixSeed(cfg.seed, 0xdefec7 + t));
                events =
                    sampler.sampleEvents(base, cfg.timeline.horizonRounds);
            }
            if (inject.enabled())
                inject.mutateStream(timeline_salt, events);
            // Validates externally-supplied malformations too: the
            // sampler's own streams always pass.
            if (Status s = validateDefectStream(events, cfg); !s.ok())
                return s;

            // This timeline's chip: the run's base chip plus any
            // fault-plan-injected fabrication defects. Re-adapt only when
            // injection can change the sample; otherwise reuse the
            // once-adapted base chip.
            const FabAdaptation *adapt =
                chip_adapt ? &*chip_adapt : nullptr;
            std::optional<FabAdaptation> tl_adapt;
            if (fab_inject) {
                FabDefectSample tl_sample = chip;
                inject.injectFabDefects(timeline_salt, base, tl_sample);
                if (!tl_sample.empty()) {
                    StatusOr<FabAdaptation> adapted = adaptFabDefectsChecked(
                        cfg.timeline.strategy, cfg.timeline.d,
                        cfg.timeline.deltaD, tl_sample);
                    if (!adapted.ok())
                        return adapted.status();
                    tl_adapt = std::move(adapted.value());
                    adapt = &*tl_adapt;
                }
            }

            TimelineStats tl;
            if (adapt && !adapt->outcome.alive) {
                // Dead chip: the yield contract. The adapted distance
                // collapsed, so every shot is a deterministic logical
                // loss — tallied, never an abort; the sweep continues on
                // the next timeline's chip.
                tl = deadTimeline(cfg, events.size());
                tl.ledger.fabDeadPatches = 1;
            } else {
                EpochPlannerConfig tcfg = cfg.timeline;
                if (adapt)
                    tcfg.permanentSites.insert(adapt->disabledSites.begin(),
                                               adapt->disabledSites.end());
                const ScenarioPlan plan = planEpochs(tcfg, events, &memo);
                tl = runPlannedTimeline(plan, cfg, cache, timeline_salt,
                                        out.failures);
                if (adapt) {
                    tl.ledger.fabAdaptedPatches += 1;
                    tl.ledger.fabDistanceLoss += adapt->distanceLoss;
                }
            }
            out.shots += tl.shots;
            out.failures += tl.failures;
            out.totalEpochs += tl.epochs.size();
            out.deadTimelines += tl.dead ? 1 : 0;
            out.ledger.merge(tl.ledger);
            out.timelines.push_back(std::move(tl));
            if (persist_on) {
                // Durable progress: the checkpoint is rewritten (atomic
                // rename) after every timeline, so a kill at any moment
                // loses at most the in-flight timeline. A failed write
                // degrades durability, never the run.
                if (Status s = saveRunCheckpoint(ckpt_path, config_sig,
                                                 out.timelines, snapInject,
                                                 kSnapSaltCheckpoint);
                    !s.ok())
                    warn("scenario checkpoint: " + s.str());
            }
            const uint32_t kill = inject.killAfterTimelines();
            if (kill && out.timelines.size() == kill)
                // Simulated crash (snap.kill): cumulative semantics — a
                // resumed run starts past `kill` completed timelines and
                // never re-triggers, like a real crash that was fixed.
                return Status::aborted(
                    "fault injection: simulated crash after " +
                    std::to_string(kill) + " completed timelines" +
                    (persist_on ? " (checkpoint '" + ckpt_path +
                                      "' is resumable)"
                                : std::string()));
        }
        if (persist_on) {
            if (cfg.useCache) {
                StatusOr<SnapshotSaveStats> saved = saveCacheSnapshot(
                    cache, cfg.persistDir + "/cache.snap", snapInject,
                    kSnapSaltCache);
                if (saved.ok())
                    out.persistSnapshotBytes = saved->fileBytes;
                else
                    warn("scenario cache snapshot: " +
                         saved.status().str());
            }
            ::unlink(ckpt_path.c_str()); // run complete; nothing to resume
        }
        out.cacheHits = cache.hits() - hits0;
        out.cacheMisses = cache.misses() - misses0;
        out.cacheEvictions = cache.evictions() - evictions0;

        const auto est = estimateBinomial(out.failures, out.shots);
        out.pShot = est.p;
        out.se = est.stderr;
        out.pRound = perRoundRate(
            out.pShot, static_cast<size_t>(cfg.timeline.horizonRounds));
        return out;
    } catch (const StatusError &e) {
        // Deep-layer failures (epoch planner, cache builders, decode
        // workers via the pool's first-exception rethrow) surface here
        // as values.
        return e.status();
    }
}

ScenarioResult
runScenarioExperiment(const ScenarioConfig &cfg)
{
    StatusOr<ScenarioResult> result = runScenarioExperimentChecked(cfg);
    if (!result.ok())
        SURF_FATAL("scenario experiment: ", result.status().str());
    return std::move(result.value());
}

} // namespace surf
