/**
 * @file
 * Canonical signatures for (deformed) patches and coordinate sets. The
 * scenario engine uses them in two places: the epoch planner merges
 * consecutive round-windows whose deformation outcome is identical, and
 * the DeformedCodeCache keys memoized {segment circuit, DEM, decoder}
 * entries — deformed shapes recur constantly across shots and events, so
 * signature equality is what turns rebuilds into lookups.
 */

#ifndef SURF_SCENARIO_PATCH_SIGNATURE_HH
#define SURF_SCENARIO_PATCH_SIGNATURE_HH

#include <set>
#include <string>

#include "lattice/patch.hh"

namespace surf {

/**
 * Canonical structural signature of a patch: data qubits, checks (type,
 * role, ancilla, support), super-stabilizer clusters, logical
 * representatives and bounds. Two patches with equal signatures build
 * identical syndrome circuits under equal noise.
 */
std::string patchSignature(const CodePatch &patch);

/** Compact serialization of a coordinate set (for cache/merge keys). */
std::string coordSetSignature(const std::set<Coord> &sites);

} // namespace surf

#endif // SURF_SCENARIO_PATCH_SIGNATURE_HH
