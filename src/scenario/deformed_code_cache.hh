/**
 * @file
 * DeformedCodeCache: memoizes the expensive per-epoch decode artifacts —
 * the standalone segment circuit, its detector error model, and the
 * decoder graphs (whose all-pairs shortest-path tables dominate build
 * time). Keys are canonical segment identities (previous/current patch
 * signatures, seam trust set, rounds, round parity, position flags and the
 * decoder-view noise), so every recurrence of a deformed shape across
 * shots, events and timelines reuses one entry. Entries are built from
 * pure functions of the key, which is why cache-hit and cache-miss
 * decodes are bit-identical.
 *
 * Not thread-safe: the scenario engine populates it from the orchestrating
 * thread only; decode workers share the immutable entries.
 */

#ifndef SURF_SCENARIO_DEFORMED_CODE_CACHE_HH
#define SURF_SCENARIO_DEFORMED_CODE_CACHE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "decode/mwpm.hh"
#include "decode/union_find.hh"
#include "sim/segment.hh"

namespace surf {

/** One memoized decode-ready segment. */
struct CachedSegment
{
    Circuit circuit; ///< standalone decoder-view circuit
    DetectorErrorModel dem;
    std::unique_ptr<MwpmDecoder> mwpm;
    std::unique_ptr<UnionFindDecoder> uf;
};

/** Signature-keyed store of decode-ready segments. */
class DeformedCodeCache
{
  public:
    /**
     * Look up `key`, building the entry with `build` on a miss. The
     * returned reference stays valid for the cache's lifetime.
     */
    const CachedSegment &get(const std::string &key,
                             const std::function<CachedSegment()> &build);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }
    size_t size() const { return entries_.size(); }

    void resetStats() { hits_ = misses_ = 0; }
    void clear();

  private:
    std::map<std::string, std::unique_ptr<CachedSegment>> entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace surf

#endif // SURF_SCENARIO_DEFORMED_CODE_CACHE_HH
