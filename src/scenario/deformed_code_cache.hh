/**
 * @file
 * DeformedCodeCache: memoizes the expensive per-epoch decode artifacts —
 * the standalone segment circuit, its detector error model, and the
 * decoder graphs. Keys are canonical segment identities (previous/current
 * patch signatures, seam trust set, rounds, round parity, position flags
 * and the decoder-view noise), so every recurrence of a deformed shape
 * across shots, events and timelines reuses one entry. Entries are built
 * from pure functions of the key, which is why cache-hit and cache-miss
 * decodes are bit-identical — and why eviction can never change results,
 * only cost.
 *
 * The cache is bounded: setBudget() caps the approximate byte footprint
 * and/or the entry count, and eviction runs the classic GreedyDual
 * policy — each entry's priority is (global clock at last use + measured
 * build seconds), the minimum-priority entry is evicted, and the clock
 * advances to the evicted priority. With equal build costs this is exact
 * LRU; with unequal costs, entries that were expensive to build survive
 * proportionally longer. Entries are handed out as shared_ptr, so a
 * segment still referenced by an in-flight timeline survives its own
 * eviction.
 *
 * Not thread-safe: the scenario engine populates it from the orchestrating
 * thread only; decode workers share the immutable entries.
 */

#ifndef SURF_SCENARIO_DEFORMED_CODE_CACHE_HH
#define SURF_SCENARIO_DEFORMED_CODE_CACHE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "decode/mwpm.hh"
#include "decode/union_find.hh"
#include "sim/segment.hh"

namespace surf {

/** One memoized decode-ready segment. */
struct CachedSegment
{
    Circuit circuit; ///< standalone decoder-view circuit
    DetectorErrorModel dem;
    std::unique_ptr<MwpmDecoder> mwpm;
    std::unique_ptr<UnionFindDecoder> uf;

    /** Approximate heap footprint (budget accounting). */
    size_t memoryBytes() const;

    /** The part of memoryBytes() that can grow after construction: the
     *  MWPM graph's lazily memoized Dijkstra rows (O(1) to read). */
    size_t dynamicBytes() const;
};

/** One epoch of a memoized stitched timeline. */
struct CachedTimelineEpoch
{
    uint64_t startRound = 0;
    uint64_t rounds = 0;
    size_t distX = 0, distZ = 0;
    size_t activeDefects = 0;
    size_t detBegin = 0; ///< detector range in the concatenated circuit
    size_t detEnd = 0;
    /** Decode-ready segment; pins the segment even if its own cache
     *  entry is evicted while this timeline stays resident. */
    std::shared_ptr<const CachedSegment> seg;
    /** The segment's own cache key (empty when built uncached): warm
     *  timeline hits touch these entries through it, so the pinned
     *  segments keep fresh LRU stamps and re-measured byte counts even
     *  though the per-epoch get() calls are skipped. */
    std::string segKey;
};

/**
 * One memoized stitched timeline: the concatenated sampling circuit
 * (with seam prologues and oracle probes) plus the resolved decode
 * segment of every epoch. Keyed by the epoch-plan signature, so every
 * timeline pass with the same plan — the second and later repetitions
 * of a sweep, and every quiet (event-free) timeline — skips seam
 * classification and circuit stitching entirely.
 */
struct CachedTimeline
{
    /** False when a deformation window destroyed the logical qubit
     *  (no continuation existed at some seam); the circuit is empty. */
    bool alive = true;
    Circuit circuit;
    std::vector<CachedTimelineEpoch> epochs;

    /** Approximate heap footprint, excluding the segments (they are
     *  accounted by their own cache entries). */
    size_t memoryBytes() const;
};

/** Signature-keyed store of decode-ready segments. */
class DeformedCodeCache
{
  public:
    /**
     * Look up `key`, building the entry with `build` on a miss. The
     * returned pointer keeps the segment alive even if the entry is
     * later evicted to stay within budget.
     */
    std::shared_ptr<const CachedSegment>
    get(const std::string &key, const std::function<CachedSegment()> &build);

    /**
     * Timeline-level lookup: memoized stitched sampling circuits, same
     * budget and eviction policy as the segment entries (a timeline's
     * bytes exclude its segments, which keep their own entries; the
     * build may itself call get() to resolve them). Keys live in the
     * same namespace as segment keys — callers prefix them.
     */
    std::shared_ptr<const CachedTimeline>
    getTimeline(const std::string &key,
                const std::function<CachedTimeline()> &build);

    /**
     * Bound the cache: evict (cost-weighted LRU) until the approximate
     * byte footprint is at most `max_bytes` and the entry count at most
     * `max_entries`; 0 means unbounded in that dimension. Applies
     * immediately and to every subsequent insertion.
     */
    void setBudget(size_t max_bytes, size_t max_entries);
    size_t budgetBytes() const { return max_bytes_; }
    size_t budgetEntries() const { return max_entries_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    /** Timeline-level lookups (a subset of hits()/misses()). */
    uint64_t timelineHits() const { return timeline_hits_; }
    uint64_t timelineMisses() const { return timeline_misses_; }
    double
    hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }
    size_t size() const { return entries_.size(); }
    /** Approximate bytes held by resident entries. Entry sizes are
     *  re-measured on every hit — the sparse decoder graphs grow as
     *  workers memoize Dijkstra rows — so byte budgets track the real
     *  footprint of each entry as of its last use. */
    size_t bytesUsed() const { return bytes_used_; }
    /** Total seconds spent building entries (misses). */
    double buildSeconds() const { return build_seconds_; }

    void
    resetStats()
    {
        hits_ = misses_ = evictions_ = 0;
        timeline_hits_ = timeline_misses_ = 0;
    }
    void clear();

    /**
     * Evict every resident entry (counted in evictions()) while keeping
     * the hit/miss statistics and the GreedyDual clock — the eviction
     * storm of the fault-injection harness. In-flight holders of entry
     * shared_ptrs are unaffected; subsequent lookups rebuild. Results
     * can never change (entries are pure functions of their keys), only
     * cost.
     */
    void evictAll();

    // --- Snapshot support (src/persist/cache_snapshot). Entries are pure
    // functions of their keys, so serializing and rehydrating them can
    // never change results — a restored entry is what get() would have
    // built, minus the build time.

    /** Visit every resident segment entry (key, contents, measured build
     *  cost in seconds). Iteration order is the map's key order, so the
     *  snapshot byte stream is deterministic. */
    void forEachSegment(
        const std::function<void(const std::string &key,
                                 const CachedSegment &seg, double cost)> &fn)
        const;

    /** Visit every resident timeline entry (key, contents, cost). */
    void forEachTimeline(
        const std::function<void(const std::string &key,
                                 const CachedTimeline &tl, double cost)> &fn)
        const;

    /** Statless lookup: the resident segment for `key`, or null. Used by
     *  the snapshot loader to re-pin timeline epochs without perturbing
     *  hit/miss counts or LRU stamps. */
    std::shared_ptr<const CachedSegment>
    peekSegment(const std::string &key) const;

    /**
     * Insert a rehydrated segment under `key` with the build cost its
     * original build measured (the GreedyDual priority lift it earned).
     * Normal byte accounting and budget enforcement apply; hit/miss and
     * buildSeconds() stats do not — a restore is neither. No-op (false)
     * when the key is already resident.
     */
    bool restoreSegment(const std::string &key, CachedSegment seg,
                        double cost);

    /** Timeline counterpart of restoreSegment(); epochs must already
     *  carry their pinned `seg` pointers (resolved via peekSegment). */
    bool restoreTimeline(const std::string &key, CachedTimeline tl,
                         double cost);

  private:
    struct Entry
    {
        std::shared_ptr<const CachedSegment> seg; ///< one of seg/tl set
        std::shared_ptr<const CachedTimeline> tl;
        size_t bytes = 0;        ///< static_bytes + dynamic at last use
        size_t static_bytes = 0; ///< immutable part, measured at insert
        double cost = 0.0;       ///< measured build seconds
        double pri = 0.0;        ///< GreedyDual priority at last use
    };

    void touch(Entry &e);
    void enforceBudget(const Entry *pinned);
    /** Re-measure + touch a segment entry by key (timeline hits). */
    void refreshSegment(const std::string &key);
    /** A timeline entry's current bytes: its static size plus every
     *  pinned segment whose own entry was evicted (the pin keeps that
     *  memory resident, so the budget charges it to the timeline). */
    size_t timelineBytes(const Entry &e) const;

    std::map<std::string, Entry> entries_;
    size_t max_bytes_ = 0;   ///< 0 = unbounded
    size_t max_entries_ = 0; ///< 0 = unbounded
    size_t bytes_used_ = 0;
    double clock_ = 0.0;
    double build_seconds_ = 0.0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t timeline_hits_ = 0;
    uint64_t timeline_misses_ = 0;
};

} // namespace surf

#endif // SURF_SCENARIO_DEFORMED_CODE_CACHE_HH
