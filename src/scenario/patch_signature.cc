#include "scenario/patch_signature.hh"

namespace surf {

namespace {

void
appendCoord(std::string &out, Coord c)
{
    out += std::to_string(c.x);
    out += ',';
    out += std::to_string(c.y);
    out += ';';
}

} // namespace

std::string
patchSignature(const CodePatch &patch)
{
    std::string sig;
    sig.reserve(64 + 16 * patch.numData());
    sig += 'B';
    appendCoord(sig, {patch.xMin(), patch.yMin()});
    appendCoord(sig, {patch.xMax(), patch.yMax()});
    sig += "D:";
    for (const Coord &q : patch.dataQubits())
        appendCoord(sig, q);
    sig += "C:";
    for (const auto &c : patch.checks()) {
        sig += (c.type == PauliType::Z) ? 'z' : 'x';
        sig += (c.role == CheckRole::Stabilizer) ? 's' : 'g';
        sig += static_cast<char>('0' + (c.phase & 1));
        if (c.ancilla) {
            sig += '@';
            appendCoord(sig, *c.ancilla);
        } else {
            sig += '.';
        }
        for (const Coord &q : c.support)
            appendCoord(sig, q);
        sig += '|';
    }
    sig += "S:";
    for (const auto &ss : patch.supers()) {
        sig += (ss.type == PauliType::Z) ? 'z' : 'x';
        for (int m : ss.members) {
            sig += std::to_string(m);
            sig += ',';
        }
        sig += '|';
    }
    sig += "LX:";
    for (const Coord &q : patch.logicalX())
        appendCoord(sig, q);
    sig += "LZ:";
    for (const Coord &q : patch.logicalZ())
        appendCoord(sig, q);
    return sig;
}

std::string
coordSetSignature(const std::set<Coord> &sites)
{
    std::string sig;
    sig.reserve(8 * sites.size());
    for (const Coord &c : sites)
        appendCoord(sig, c);
    return sig;
}

} // namespace surf
