#include "scenario/epoch_plan.hh"

#include "scenario/patch_signature.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace surf {

ScenarioPlan
planEpochs(const EpochPlannerConfig &cfg,
           const std::vector<DefectEvent> &events, StrategyMemo *memo)
{
    // Malformed timeline shapes are user errors, not invariants: throw a
    // StatusError so checked entry points hand back a diagnosable value
    // instead of aborting the process.
    if (cfg.horizonRounds < 1)
        throw StatusError(Status::invalidArgument(
            "epoch planner: empty scenario horizon (horizonRounds must "
            "be >= 1)"));
    if (cfg.windowRounds < 1)
        throw StatusError(Status::invalidArgument(
            "epoch planner: window must cover at least a round "
            "(windowRounds must be >= 1)"));
    ScenarioPlan plan;
    plan.numEvents = events.size();

    StrategyMemo local;
    StrategyMemo &outcomes = memo ? *memo : local;

    ActiveDefectSweep sweep(events);
    std::set<Coord> merged; // scratch: permanent ∪ window-active
    for (uint64_t t = 0; t < cfg.horizonRounds; t += cfg.windowRounds) {
        const uint64_t rounds =
            std::min<uint64_t>(cfg.windowRounds, cfg.horizonRounds - t);
        const std::set<Coord> &dynamic = sweep.activeAt(t);
        const std::set<Coord> *active = &dynamic;
        if (!cfg.permanentSites.empty()) {
            merged = cfg.permanentSites;
            merged.insert(dynamic.begin(), dynamic.end());
            active = &merged;
        }

        const std::string active_key = coordSetSignature(*active);
        auto it = outcomes.find(active_key);
        if (it == outcomes.end()) {
            StatusOr<StrategyOutcome> out = applyStrategyChecked(
                cfg.strategy, cfg.d, cfg.deltaD, *active);
            if (!out.ok())
                throw StatusError(out.status());
            it = outcomes.emplace(active_key, std::move(out.value())).first;
        }
        const StrategyOutcome &outcome = it->second;
        plan.alive = plan.alive && outcome.alive;

        std::string sig = patchSignature(outcome.patch);

        // The merge identity covers structure *and* the sampling-noise
        // view: equal shapes with different residual defects must not
        // merge (their syndrome circuits differ).
        Epoch *back = plan.epochs.empty() ? nullptr : &plan.epochs.back();
        const bool mergeable =
            back && !cfg.forceEpochBoundaries && back->structSig == sig &&
            back->residualDefects == outcome.residualDefects &&
            (cfg.maxEpochRounds == 0 ||
             back->rounds + rounds <= cfg.maxEpochRounds);
        if (mergeable) {
            back->rounds += rounds;
            continue;
        }
        Epoch e;
        e.startRound = t;
        e.rounds = rounds;
        e.deformed.patch = outcome.patch;
        e.deformed.distX = outcome.distX;
        e.deformed.distZ = outcome.distZ;
        e.deformed.alive = outcome.alive;
        e.residualDefects = outcome.residualDefects;
        e.activeSites = *active;
        e.structSig = std::move(sig);
        plan.epochs.push_back(std::move(e));
    }

    // Apply the epoch-length cap by splitting over-long epochs in place
    // (same patch on both sides; the seam is a pure continuation).
    if (cfg.maxEpochRounds > 0) {
        std::vector<Epoch> split;
        for (Epoch &e : plan.epochs) {
            while (e.rounds > cfg.maxEpochRounds) {
                Epoch head = e;
                head.rounds = cfg.maxEpochRounds;
                split.push_back(head);
                e.startRound += cfg.maxEpochRounds;
                e.rounds -= cfg.maxEpochRounds;
            }
            split.push_back(std::move(e));
        }
        plan.epochs = std::move(split);
    }
    return plan;
}

} // namespace surf
