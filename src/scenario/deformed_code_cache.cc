#include "scenario/deformed_code_cache.hh"

#include <algorithm>
#include <chrono>

namespace surf {

size_t
CachedSegment::memoryBytes() const
{
    size_t bytes = sizeof(CachedSegment);
    for (const Instruction &ins : circuit.instructions())
        bytes += sizeof(Instruction) +
                 ins.targets.capacity() * sizeof(uint32_t);
    bytes += dem.detectorTag.capacity();
    bytes += (dem.edges[0].capacity() + dem.edges[1].capacity()) *
             sizeof(DemEdge);
    if (mwpm)
        bytes += mwpm->memoryBytes();
    if (uf)
        bytes += uf->memoryBytes();
    return bytes;
}

size_t
CachedSegment::dynamicBytes() const
{
    return mwpm ? mwpm->memoryBytes() : 0;
}

std::shared_ptr<const CachedSegment>
DeformedCodeCache::get(const std::string &key,
                       const std::function<CachedSegment()> &build)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        Entry &e = it->second;
        // Re-measure the growable part on every hit: the sparse decoder
        // graphs grow as decode workers memoize Dijkstra rows, and a
        // byte budget must see that growth, not the at-insert size.
        // Everything else in the segment is immutable (measured once).
        const size_t bytes = e.static_bytes + e.seg->dynamicBytes();
        bytes_used_ += bytes - e.bytes;
        e.bytes = bytes;
        touch(e);
        enforceBudget(&e);
        return e.seg;
    }
    ++misses_;
    const auto t0 = std::chrono::steady_clock::now();
    auto seg = std::make_shared<CachedSegment>(build());
    const double cost = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    build_seconds_ += cost;
    Entry entry;
    entry.seg = std::move(seg);
    entry.bytes = entry.seg->memoryBytes() + key.size();
    entry.static_bytes = entry.bytes - entry.seg->dynamicBytes();
    entry.cost = cost;
    Entry &stored = entries_.emplace(key, std::move(entry)).first->second;
    bytes_used_ += stored.bytes;
    touch(stored);
    enforceBudget(&stored);
    return stored.seg;
}

void
DeformedCodeCache::touch(Entry &e)
{
    // GreedyDual: priority decays to the clock as other entries evict;
    // a use (or the insert) lifts it back by the entry's build cost.
    e.pri = clock_ + e.cost;
}

void
DeformedCodeCache::enforceBudget(const Entry *pinned)
{
    auto overBudget = [&] {
        return (max_bytes_ && bytes_used_ > max_bytes_) ||
               (max_entries_ && entries_.size() > max_entries_);
    };
    while (overBudget() && entries_.size() > (pinned ? 1u : 0u)) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (&it->second == pinned)
                continue;
            if (victim == entries_.end() ||
                it->second.pri < victim->second.pri)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        clock_ = std::max(clock_, victim->second.pri);
        bytes_used_ -= victim->second.bytes;
        entries_.erase(victim);
        ++evictions_;
    }
}

void
DeformedCodeCache::setBudget(size_t max_bytes, size_t max_entries)
{
    max_bytes_ = max_bytes;
    max_entries_ = max_entries;
    enforceBudget(nullptr);
}

void
DeformedCodeCache::clear()
{
    entries_.clear();
    bytes_used_ = 0;
    clock_ = 0.0;
    build_seconds_ = 0.0;
    hits_ = misses_ = evictions_ = 0;
}

} // namespace surf
