#include "scenario/deformed_code_cache.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "util/logging.hh"

namespace surf {

size_t
CachedSegment::memoryBytes() const
{
    size_t bytes = sizeof(CachedSegment);
    for (const Instruction &ins : circuit.instructions())
        bytes += sizeof(Instruction) +
                 ins.targets.capacity() * sizeof(uint32_t);
    bytes += dem.detectorTag.capacity();
    bytes += (dem.edges[0].capacity() + dem.edges[1].capacity()) *
             sizeof(DemEdge);
    if (mwpm)
        bytes += mwpm->memoryBytes();
    if (uf)
        bytes += uf->memoryBytes();
    return bytes;
}

size_t
CachedSegment::dynamicBytes() const
{
    return mwpm ? mwpm->memoryBytes() : 0;
}

size_t
CachedTimeline::memoryBytes() const
{
    size_t bytes = sizeof(CachedTimeline) +
                   epochs.capacity() * sizeof(CachedTimelineEpoch);
    for (const Instruction &ins : circuit.instructions())
        bytes += sizeof(Instruction) +
                 ins.targets.capacity() * sizeof(uint32_t);
    return bytes;
}

std::shared_ptr<const CachedSegment>
DeformedCodeCache::get(const std::string &key,
                       const std::function<CachedSegment()> &build)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        Entry &e = it->second;
        SURF_ASSERT(e.seg, "segment lookup hit a timeline entry");
        // Re-measure the growable part on every hit: the sparse decoder
        // graphs grow as decode workers memoize Dijkstra rows, and a
        // byte budget must see that growth, not the at-insert size.
        // Everything else in the segment is immutable (measured once).
        const size_t bytes = e.static_bytes + e.seg->dynamicBytes();
        bytes_used_ += bytes - e.bytes;
        e.bytes = bytes;
        touch(e);
        enforceBudget(&e);
        return e.seg;
    }
    ++misses_;
    const auto t0 = std::chrono::steady_clock::now();
    auto seg = std::make_shared<CachedSegment>(build());
    const double cost = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    build_seconds_ += cost;
    Entry entry;
    entry.seg = std::move(seg);
    entry.bytes = entry.seg->memoryBytes() + key.size();
    entry.static_bytes = entry.bytes - entry.seg->dynamicBytes();
    entry.cost = cost;
    Entry &stored = entries_.emplace(key, std::move(entry)).first->second;
    bytes_used_ += stored.bytes;
    touch(stored);
    enforceBudget(&stored);
    return stored.seg;
}

void
DeformedCodeCache::refreshSegment(const std::string &key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return; // evicted; charged to the pinning timeline instead
    Entry &e = it->second;
    if (!e.seg)
        return;
    const size_t bytes = e.static_bytes + e.seg->dynamicBytes();
    bytes_used_ += bytes - e.bytes;
    e.bytes = bytes;
    touch(e);
}

size_t
DeformedCodeCache::timelineBytes(const Entry &e) const
{
    size_t bytes = e.static_bytes;
    // Count each orphaned segment once even when several epochs share
    // it. (Distinct timelines pinning the same orphan still each charge
    // it — overstating residency is the safe direction for a budget.)
    std::set<const CachedSegment *> counted;
    for (const CachedTimelineEpoch &ep : e.tl->epochs)
        if (ep.seg && !ep.segKey.empty() && !entries_.count(ep.segKey) &&
            counted.insert(ep.seg.get()).second)
            bytes += ep.seg->memoryBytes();
    return bytes;
}

std::shared_ptr<const CachedTimeline>
DeformedCodeCache::getTimeline(const std::string &key,
                               const std::function<CachedTimeline()> &build)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        ++timeline_hits_;
        Entry &e = it->second;
        SURF_ASSERT(e.tl, "timeline lookup hit a segment entry");
        // A warm hit skips the per-epoch get() calls, so keep the
        // pinned segment entries live in the budget's eyes: re-measure
        // their growable row pools and lift their LRU stamps. Segments
        // whose own entries were evicted stay resident through the
        // timeline's pins — re-measure charges them to this entry.
        for (const CachedTimelineEpoch &ep : e.tl->epochs)
            if (!ep.segKey.empty())
                refreshSegment(ep.segKey);
        const size_t bytes = timelineBytes(e);
        bytes_used_ += bytes - e.bytes;
        e.bytes = bytes;
        touch(e);
        enforceBudget(&e);
        return e.tl;
    }
    ++misses_;
    ++timeline_misses_;
    const auto t0 = std::chrono::steady_clock::now();
    const double nested0 = build_seconds_;
    // The build resolves its per-epoch segments through get(), so it
    // must run before this entry is inserted (the nested lookups mutate
    // the map and may evict).
    auto tl = std::make_shared<CachedTimeline>(build());
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    // The nested segment misses already logged their own build time and
    // carry their own eviction priorities; this entry's cost is the
    // stitching work on top of them (what a rebuild against cached
    // segments would pay).
    const double cost = std::max(0.0, wall - (build_seconds_ - nested0));
    build_seconds_ += cost;
    Entry entry;
    entry.tl = std::move(tl);
    entry.static_bytes = entry.tl->memoryBytes() + key.size();
    entry.cost = cost;
    Entry &stored = entries_.emplace(key, std::move(entry)).first->second;
    // Segments evicted during this very build (tiny budgets) are
    // already orphaned — charge them here like on a hit.
    stored.bytes = timelineBytes(stored);
    bytes_used_ += stored.bytes;
    touch(stored);
    enforceBudget(&stored);
    return stored.tl;
}

void
DeformedCodeCache::touch(Entry &e)
{
    // GreedyDual: priority decays to the clock as other entries evict;
    // a use (or the insert) lifts it back by the entry's build cost.
    e.pri = clock_ + e.cost;
}

void
DeformedCodeCache::enforceBudget(const Entry *pinned)
{
    auto overBudget = [&] {
        return (max_bytes_ && bytes_used_ > max_bytes_) ||
               (max_entries_ && entries_.size() > max_entries_);
    };
    while (overBudget() && entries_.size() > (pinned ? 1u : 0u)) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (&it->second == pinned)
                continue;
            if (victim == entries_.end() ||
                it->second.pri < victim->second.pri)
                victim = it;
        }
        if (victim == entries_.end())
            break;
        clock_ = std::max(clock_, victim->second.pri);
        bytes_used_ -= victim->second.bytes;
        entries_.erase(victim);
        ++evictions_;
    }
}

void
DeformedCodeCache::setBudget(size_t max_bytes, size_t max_entries)
{
    max_bytes_ = max_bytes;
    max_entries_ = max_entries;
    enforceBudget(nullptr);
}

void
DeformedCodeCache::evictAll()
{
    for (const auto &[key, e] : entries_)
        clock_ = std::max(clock_, e.pri);
    evictions_ += entries_.size();
    entries_.clear();
    bytes_used_ = 0;
}

void
DeformedCodeCache::forEachSegment(
    const std::function<void(const std::string &key, const CachedSegment &seg,
                             double cost)> &fn) const
{
    for (const auto &[key, e] : entries_)
        if (e.seg)
            fn(key, *e.seg, e.cost);
}

void
DeformedCodeCache::forEachTimeline(
    const std::function<void(const std::string &key, const CachedTimeline &tl,
                             double cost)> &fn) const
{
    for (const auto &[key, e] : entries_)
        if (e.tl)
            fn(key, *e.tl, e.cost);
}

std::shared_ptr<const CachedSegment>
DeformedCodeCache::peekSegment(const std::string &key) const
{
    const auto it = entries_.find(key);
    return (it != entries_.end() && it->second.seg) ? it->second.seg
                                                    : nullptr;
}

bool
DeformedCodeCache::restoreSegment(const std::string &key, CachedSegment seg,
                                  double cost)
{
    if (entries_.count(key))
        return false;
    Entry entry;
    entry.seg = std::make_shared<CachedSegment>(std::move(seg));
    entry.bytes = entry.seg->memoryBytes() + key.size();
    entry.static_bytes = entry.bytes - entry.seg->dynamicBytes();
    entry.cost = cost;
    Entry &stored = entries_.emplace(key, std::move(entry)).first->second;
    bytes_used_ += stored.bytes;
    touch(stored);
    enforceBudget(&stored);
    return true;
}

bool
DeformedCodeCache::restoreTimeline(const std::string &key, CachedTimeline tl,
                                   double cost)
{
    if (entries_.count(key))
        return false;
    Entry entry;
    entry.tl = std::make_shared<CachedTimeline>(std::move(tl));
    entry.static_bytes = entry.tl->memoryBytes() + key.size();
    entry.cost = cost;
    Entry &stored = entries_.emplace(key, std::move(entry)).first->second;
    stored.bytes = timelineBytes(stored);
    bytes_used_ += stored.bytes;
    touch(stored);
    enforceBudget(&stored);
    return true;
}

void
DeformedCodeCache::clear()
{
    entries_.clear();
    bytes_used_ = 0;
    clock_ = 0.0;
    build_seconds_ = 0.0;
    hits_ = misses_ = evictions_ = 0;
}

} // namespace surf
