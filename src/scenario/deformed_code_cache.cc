#include "scenario/deformed_code_cache.hh"

namespace surf {

const CachedSegment &
DeformedCodeCache::get(const std::string &key,
                       const std::function<CachedSegment()> &build)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        return *it->second;
    }
    ++misses_;
    auto entry = std::make_unique<CachedSegment>(build());
    return *entries_.emplace(key, std::move(entry)).first->second;
}

void
DeformedCodeCache::clear()
{
    entries_.clear();
    hits_ = misses_ = 0;
}

} // namespace surf
