/**
 * @file
 * Epoch planning: turn a sampled DefectEvent stream into the sequence of
 * epochs a scenario timeline executes. At every round-window boundary the
 * chosen mitigation strategy is applied to the then-active defect set
 * (the runtime loop of paper fig. 5); consecutive windows whose deformed
 * patch and residual defects are identical merge into one epoch — an
 * epoch is a *maximal* run of rounds with a constant DeformedPatch. A
 * defect-free timeline therefore plans exactly one epoch regardless of
 * the window size, which is what makes the zero-defect scenario
 * bit-identical to the plain memory experiment.
 */

#ifndef SURF_SCENARIO_EPOCH_PLAN_HH
#define SURF_SCENARIO_EPOCH_PLAN_HH

#include <map>
#include <string>
#include <vector>

#include "baselines/strategies.hh"
#include "defects/defect_sampler.hh"

namespace surf {

/** Timeline-shape parameters of a scenario. */
struct EpochPlannerConfig
{
    Strategy strategy = Strategy::SurfDeformer;
    int d = 9;
    int deltaD = 4;             ///< Surf-Deformer enlargement cap
    uint64_t horizonRounds = 600;
    uint64_t windowRounds = 50; ///< deformation re-plan cadence (1 round
                                ///< of syndrome extraction = 1 QEC cycle)
    /** Split epochs longer than this (0 = unbounded). Bounding epoch
     *  length bounds decoder-graph size and raises cache reuse across
     *  timelines with differently-timed quiet stretches. */
    uint64_t maxEpochRounds = 0;
    /** Testing knob: keep an epoch boundary at every window edge even
     *  when the patch did not change (no merging). */
    bool forceEpochBoundaries = false;
    /** Permanently defective sites (fabrication defects, already adapted
     *  once at run start): unioned into every window's active set, so
     *  dynamic cosmic-ray deformations stack on top of the broken-chip
     *  baseline instead of resurrecting dead hardware. Empty on a
     *  pristine chip — and then planning is bit-identical to a config
     *  without this field. */
    std::set<Coord> permanentSites;
};

/** One planned epoch: a constant deformed patch over a round range. */
struct Epoch
{
    uint64_t startRound = 0;
    uint64_t rounds = 0;
    DeformedPatch deformed;          ///< patch + structural distances
    std::set<Coord> residualDefects; ///< defective sites left in the code
    std::set<Coord> activeSites;     ///< all active defects at epoch start
                                     ///< (seam-trust information)
    std::string structSig;           ///< canonical patch structure
};

/** A full planned timeline. */
struct ScenarioPlan
{
    std::vector<Epoch> epochs;
    bool alive = true;   ///< false if any window killed the logical qubit
    size_t numEvents = 0;
};

/** Memo of strategy outcomes keyed by the serialized active-defect set
 *  (deformation responses are pure functions of the defect set, and quiet
 *  or recurring defect patterns dominate a timeline sweep). */
using StrategyMemo = std::map<std::string, StrategyOutcome>;

/** Plan the epochs of one timeline. */
ScenarioPlan planEpochs(const EpochPlannerConfig &cfg,
                        const std::vector<DefectEvent> &events,
                        StrategyMemo *memo = nullptr);

} // namespace surf

#endif // SURF_SCENARIO_EPOCH_PLAN_HH
