/**
 * @file
 * Dynamic-scenario Monte-Carlo engine: memory experiments across live
 * deformations. A scenario samples a burst-defect timeline, plans epochs
 * (maximal runs of rounds with a constant deformed patch — see
 * epoch_plan.hh), stitches one syndrome-circuit segment per epoch into a
 * single concatenated circuit (data-qubit error frames carry across
 * seams; seam detectors reference the previous epoch's final inferences),
 * samples it with the batched frame simulator, and decodes per epoch with
 * DeformedCodeCache-memoized decoder graphs on the threaded pipeline.
 *
 * Guarantees:
 *  - A defect-free scenario plans exactly one epoch and reproduces
 *    runMemoryExperiment bit-for-bit at the same seed and shot schedule,
 *    for any window size.
 *  - Results are bit-identical for any thread count and with the cache
 *    enabled or disabled (entries are pure functions of their keys).
 *  - Per-epoch decoding is windowed decoding: errors straddling a seam
 *    are matched within their epoch (the standard approximation); the
 *    end-to-end failure check compares the XOR of per-epoch predictions
 *    against the true final observable.
 *
 * Per-epoch logical truth comes from FrameProbe oracle instrumentation:
 * the simulator records the logical frame parity at every seam, so the
 * engine can attribute logical flips to the epoch that caused them.
 */

#ifndef SURF_SCENARIO_SCENARIO_EXPERIMENT_HH
#define SURF_SCENARIO_SCENARIO_EXPERIMENT_HH

#include "decode/memory_experiment.hh"
#include "defects/fab_defects.hh"
#include "faultinject/fault_plan.hh"
#include "scenario/deformed_code_cache.hh"
#include "scenario/epoch_plan.hh"
#include "util/deadline.hh"
#include "util/status.hh"

namespace surf {

/** Scenario Monte-Carlo configuration. */
struct ScenarioConfig
{
    EpochPlannerConfig timeline; ///< strategy, d, horizon, window, ...
    DefectModelParams defectModel;
    /**
     * Fabrication defects: permanently broken qubits/couplers sampled
     * once per run (deterministically from fabDefects.seed) and adapted
     * by the scenario's strategy into a bandage/super-stabilizer patch
     * *before* any dynamic cosmic-ray deformation. The broken sites are
     * permanent: every deformation window re-plans against them plus
     * whatever burst is active (timeline.permanentSites). A chip whose
     * adapted distance collapses is a yield loss — its timelines run as
     * deterministic all-failure timelines (dead=true), tallied in the
     * ledger's fab counters, and the run continues. A disabled model
     * (both rates 0) is bit-identical to a config without this field.
     * The fault plan's fab.q.p / fab.c.p add further per-timeline broken
     * hardware on top of this chip sample.
     */
    FabDefectModel fabDefects;
    /** Scale factor on the defect event rate (0 disables events; the
     *  cosmic-ray benches crank this up so short horizons see strikes). */
    double eventRateScale = 1.0;
    int numTimelines = 1;

    NoiseParams noise; ///< defectiveSites is per-epoch (from the planner);
                       ///< any sites set here are ignored
    PauliType basis = PauliType::Z;
    DecoderKind decoder = DecoderKind::Auto;
    size_t mwpmDefectCap = 120; ///< Auto: per-epoch defect cap for MWPM
    /** Matching backend of the per-epoch MWPM decoders (part of the
     *  decode-segment cache identity). The default Sparse backend
     *  dispatches burst shots to the matrix-free sparse blossom past
     *  the decoder's defect threshold; Dense/SparseBlossom pin one
     *  path for every shot. */
    MatchingBackend matching = defaultMatchingBackend();
    /** LRU bound on each cached decoder's memoized Dijkstra row pool
     *  (rows per graph; 0 = unbounded). Caps decoder memory on long
     *  high-distance sweeps without changing any result. */
    size_t mwpmRowBudget = 0;
    uint64_t maxShotsPerTimeline = 4096;
    uint64_t targetFailures = UINT64_MAX; ///< stop early once reached
    size_t batchShots = 4096;
    size_t threads = 0; ///< decode workers; results thread-count invariant
    bool decoderKnowsDefects = false;
    uint64_t seed = 0x5eedULL;

    bool useCache = true; ///< disable to rebuild decoders per epoch (bench)
    DeformedCodeCache *cache = nullptr; ///< optional external cache
    /** Cache budget applied to whichever cache the run uses (the local
     *  one or cfg.cache); 0 = leave unbounded / as configured. Eviction
     *  is cost-weighted LRU and can never change results — entries are
     *  pure functions of their keys. */
    size_t cacheMaxBytes = 0;
    size_t cacheMaxEntries = 0;

    /**
     * Per-stage soft decode budget in nanoseconds; 0 (the default)
     * disables deadlines entirely and keeps every result bit-identical
     * to earlier builds. When set, MWPM shots run the staged fallback
     * ladder (sparse blossom → memoized rows → union-find; see
     * util/deadline.hh) and every downgrade lands in the run's
     * DegradationLedger. With a real clock the degradation pattern is
     * wall-time dependent (best-effort); with a stall-injecting fault
     * plan the clock turns virtual and replays become deterministic.
     */
    uint64_t decodeDeadlineNs = 0;
    /** Deterministic fault schedule (default: everything off). The
     *  SURF_FAULT_PLAN environment variable fills this when the config
     *  leaves it empty. A plan with decoder stalls and no explicit
     *  decodeDeadlineNs arms a default budget below the stall, so stall
     *  plans force the ladder out of the box. */
    FaultPlan faults;

    /**
     * Warm-start persistence directory (empty = off; the
     * SURF_PERSIST_DIR environment variable fills an empty value). When
     * set, the run (a) restores the deformed-code cache from
     * `<dir>/cache.snap` and rewrites it on successful completion, and
     * (b) checkpoints completed timelines to `<dir>/run-<sig>.ckpt`
     * after each one, resuming from the checkpoint when a compatible
     * one exists — a killed run finishes bit-identical to an
     * uninterrupted one. Corrupt or stale files always degrade to a
     * cold start (counted in the run ledger), never to a wrong result.
     */
    std::string persistDir;
};

/** Per-epoch statistics of one timeline. */
struct EpochStats
{
    uint64_t startRound = 0;
    uint64_t rounds = 0;
    size_t distX = 0, distZ = 0;
    size_t activeDefects = 0; ///< active defective sites at epoch start
    size_t numDetectors = 0;
    size_t decomposedHyperedges = 0;
    double undetectableObsProb = 0.0;
    uint64_t shots = 0;
    /** Shots where this epoch's decode disagreed with the oracle logical
     *  frame flip accrued during the epoch. */
    uint64_t mismatches = 0;
    double
    pEpoch() const
    {
        return shots ? static_cast<double>(mismatches) / shots : 0.0;
    }
};

/** One simulated timeline. */
struct TimelineStats
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    size_t events = 0;
    bool dead = false; ///< a deformation window destroyed the logical qubit
    std::vector<EpochStats> epochs;
    /** Fallback-ladder and fault accounting (empty without a deadline or
     *  fault plan). */
    DegradationLedger ledger;
};

/** Aggregate scenario result. */
struct ScenarioResult
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    double pShot = 0.0;
    double pRound = 0.0; ///< per-round rate over the horizon
    double se = 0.0;
    uint64_t horizonRounds = 0;
    uint64_t totalEpochs = 0;
    uint64_t deadTimelines = 0;
    uint64_t cacheHits = 0;      ///< this run's lookups (even with an
    uint64_t cacheMisses = 0;    ///< external shared cache)
    uint64_t cacheEvictions = 0; ///< evictions during this run
    std::vector<TimelineStats> timelines;
    /** Run-wide degradation ledger (timeline ledgers merged in order). */
    DegradationLedger ledger;

    // Warm-start persistence accounting (all zero without persistDir).
    uint64_t persistRestoredSegments = 0;
    uint64_t persistRestoredTimelines = 0;
    uint64_t persistRestoredRows = 0;
    uint64_t persistRejectedRecords = 0; ///< snapshot records refused
    uint64_t persistRecoveries = 0;      ///< whole-file cold fallbacks
    uint64_t resumedTimelines = 0;       ///< timelines from a checkpoint
    double persistRestoreSeconds = 0.0;  ///< wall time spent restoring
    /** cache.snap size: bytes read at restore, then bytes written at a
     *  successful save (whichever happened last). */
    uint64_t persistSnapshotBytes = 0;

    // Fabrication-defect accounting (all zero when cfg.fabDefects is
    // disabled and the fault plan injects no fab defects). The chip-level
    // fields describe the run's base chip sample (cfg.fabDefects alone);
    // per-timeline injected defects only show in the ledger counters.
    uint64_t fabDefectiveQubits = 0;   ///< base chip: broken qubits
    uint64_t fabDefectiveCouplers = 0; ///< base chip: broken couplers
    uint64_t fabDisabledData = 0;      ///< data qubits the adapter disabled
    uint64_t fabSuperClusters = 0;     ///< super-stabilizer clusters formed
    size_t fabDistX = 0, fabDistZ = 0; ///< adapted base-chip distances
    bool fabChipAlive = true;          ///< base chip survived adaptation
};

/**
 * Validate a scenario configuration: finite probabilities in range,
 * positive shot/round/window counts, a sane code distance, known enum
 * values and a well-formed fault plan. Everything runScenarioExperiment
 * would otherwise die on becomes an INVALID_ARGUMENT here.
 */
Status validateScenarioConfig(const ScenarioConfig &cfg);

/**
 * Validate a sampled (or externally supplied / fault-mutated) defect
 * stream against a scenario's lattice: every event needs a non-empty
 * site set, an increasing cycle interval, and coordinates within the
 * reachable deformation footprint. Rejects exactly the malformed shapes
 * FaultInjector::mutateStream produces.
 */
Status validateDefectStream(const std::vector<DefectEvent> &events,
                            const ScenarioConfig &cfg);

/**
 * Run the scenario sweep with structured error propagation: malformed
 * configs, fault plans and defect streams come back as Status errors
 * (never abort/exit), including errors thrown by decode workers (the
 * thread pool rethrows the first task exception). The SURF_FAULT_PLAN
 * environment plan is merged in when cfg.faults is empty.
 */
StatusOr<ScenarioResult> runScenarioExperimentChecked(const ScenarioConfig &cfg);

/** Run the scenario sweep; dies with a fatal error on invalid input
 *  (legacy entry — new callers want runScenarioExperimentChecked). */
ScenarioResult runScenarioExperiment(const ScenarioConfig &cfg);

/**
 * Run one explicitly-planned timeline (the engine behind
 * runScenarioExperiment; runMemoryExperiment is the one-epoch case).
 * @param batchSeedBase first per-batch sampling seed (incremented batch
 *        by batch, exactly like the memory pipeline)
 * @param failuresSoFar early-stop tally carried across timelines
 */
TimelineStats runPlannedTimeline(const ScenarioPlan &plan,
                                 const ScenarioConfig &cfg,
                                 DeformedCodeCache &cache,
                                 uint64_t batchSeedBase,
                                 uint64_t failuresSoFar);

} // namespace surf

#endif // SURF_SCENARIO_SCENARIO_EXPERIMENT_HH
