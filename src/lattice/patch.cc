#include "lattice/patch.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace surf {

bool
Check::contains(Coord q) const
{
    return std::binary_search(support.begin(), support.end(), q);
}

bool
supportsAnticommute(const std::vector<Coord> &a, const std::vector<Coord> &b)
{
    // Parity of |a intersect b| via a merge walk (both sorted).
    size_t i = 0, j = 0;
    bool parity = false;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (b[j] < a[i]) {
            ++j;
        } else {
            parity = !parity;
            ++i;
            ++j;
        }
    }
    return parity;
}

std::vector<Coord>
supportXor(const std::vector<Coord> &a, const std::vector<Coord> &b)
{
    std::vector<Coord> out;
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        if (j == b.size() || (i < a.size() && a[i] < b[j])) {
            out.push_back(a[i++]);
        } else if (i == a.size() || b[j] < a[i]) {
            out.push_back(b[j++]);
        } else {
            ++i;
            ++j;
        }
    }
    return out;
}

std::vector<int>
CodePatch::checksOn(Coord q, PauliType t) const
{
    std::vector<int> out;
    for (size_t i = 0; i < checks_.size(); ++i)
        if (checks_[i].type == t && checks_[i].contains(q))
            out.push_back(static_cast<int>(i));
    return out;
}

std::vector<int>
CodePatch::checksOn(Coord q) const
{
    std::vector<int> out;
    for (size_t i = 0; i < checks_.size(); ++i)
        if (checks_[i].contains(q))
            out.push_back(static_cast<int>(i));
    return out;
}

std::vector<StabGen>
CodePatch::stabilizerGenerators() const
{
    std::vector<StabGen> gens;
    for (size_t i = 0; i < checks_.size(); ++i) {
        if (checks_[i].role == CheckRole::Stabilizer) {
            StabGen g;
            g.type = checks_[i].type;
            g.support = checks_[i].support;
            g.sourceCheck = static_cast<int>(i);
            gens.push_back(std::move(g));
        }
    }
    for (size_t s = 0; s < supers_.size(); ++s) {
        StabGen g;
        g.type = supers_[s].type;
        for (int m : supers_[s].members)
            g.support = supportXor(g.support, checks_[m].support);
        g.isSuper = true;
        g.sourceSuper = static_cast<int>(s);
        gens.push_back(std::move(g));
    }
    return gens;
}

std::vector<Coord>
CodePatch::dataList() const
{
    return {data_.begin(), data_.end()};
}

size_t
CodePatch::numPhysicalQubits() const
{
    std::set<Coord> ancillas;
    for (const auto &c : checks_)
        if (c.ancilla)
            ancillas.insert(*c.ancilla);
    return data_.size() + ancillas.size();
}

void
CodePatch::setBounds(int x0, int x1, int y0, int y1)
{
    xMin_ = x0;
    xMax_ = x1;
    yMin_ = y0;
    yMax_ = y1;
}

void
CodePatch::addData(Coord q)
{
    SURF_ASSERT(q.isDataSite(), "not a data site: ", q.str());
    data_.insert(q);
}

void
CodePatch::removeData(Coord q)
{
    data_.erase(q);
}

int
CodePatch::addCheck(Check c)
{
    std::sort(c.support.begin(), c.support.end());
    checks_.push_back(std::move(c));
    return static_cast<int>(checks_.size()) - 1;
}

void
CodePatch::compactChecks(const std::vector<bool> &dead)
{
    SURF_ASSERT(dead.size() == checks_.size());
    std::vector<Check> kept;
    kept.reserve(checks_.size());
    for (size_t i = 0; i < checks_.size(); ++i)
        if (!dead[i])
            kept.push_back(std::move(checks_[i]));
    checks_ = std::move(kept);
    supers_.clear(); // caller must recomputeSupers()
}

void
CodePatch::recomputeSupers()
{
    supers_.clear();
    for (auto &c : checks_)
        c.cluster = -1;

    // Promote any gauge check commuting with every opposite-type gauge
    // check back to a plain stabilizer (same-type pure operators always
    // commute with each other).
    std::vector<int> gauge_idx;
    for (size_t i = 0; i < checks_.size(); ++i)
        if (checks_[i].role == CheckRole::Gauge)
            gauge_idx.push_back(static_cast<int>(i));
    for (int g : gauge_idx) {
        bool clashes = false;
        for (int h : gauge_idx) {
            if (h == g || checks_[h].type == checks_[g].type)
                continue;
            if (supportsAnticommute(checks_[g].support, checks_[h].support)) {
                clashes = true;
                break;
            }
        }
        if (!clashes) {
            checks_[g].role = CheckRole::Stabilizer;
            checks_[g].phase = 0;
        }
    }

    // Kernel formulation per type: subsets of type-t gauge checks whose
    // product commutes with every opposite-type gauge check.
    for (const PauliType t : {PauliType::Z, PauliType::X}) {
        std::vector<int> own, opp;
        for (size_t i = 0; i < checks_.size(); ++i) {
            if (checks_[i].role != CheckRole::Gauge)
                continue;
            (checks_[i].type == t ? own : opp).push_back(static_cast<int>(i));
            if (checks_[i].type == t)
                checks_[i].phase = (t == PauliType::Z) ? 0 : 1;
        }
        if (own.empty())
            continue;
        // M[e][i] = 1 when own[i] anti-commutes with opp[e]. Kernel
        // vectors v (over own-indices, M v = 0) are exactly the subsets of
        // own gauges whose product commutes with every opposite gauge.
        BitMatrix mat(own.size());
        for (int h : opp) {
            BitVec row(own.size());
            for (size_t i = 0; i < own.size(); ++i)
                if (supportsAnticommute(checks_[own[i]].support,
                                        checks_[h].support))
                    row.set(i, true);
            mat.addRow(row);
        }
        auto kernel = mat.kernelBasis();
        // Localize the basis: greedily reduce vectors against lighter ones
        // so region-disjoint defects produce region-local supers.
        std::sort(kernel.begin(), kernel.end(),
                  [](const BitVec &a, const BitVec &b) {
                      return a.popcount() < b.popcount();
                  });
        for (size_t j = 0; j < kernel.size(); ++j) {
            for (size_t i = 0; i < j; ++i) {
                BitVec candidate = kernel[j];
                candidate ^= kernel[i];
                if (candidate.popcount() < kernel[j].popcount())
                    kernel[j] = candidate;
            }
        }
        for (const BitVec &subset : kernel) {
            SuperStab ss;
            ss.type = t;
            for (size_t i = 0; i < own.size(); ++i)
                if (subset.get(i))
                    ss.members.push_back(own[i]);
            SURF_ASSERT(!ss.members.empty());
            const int id = static_cast<int>(supers_.size());
            for (int m : ss.members)
                if (checks_[m].cluster < 0)
                    checks_[m].cluster = id;
            supers_.push_back(std::move(ss));
        }
    }
}

ValidationResult
CodePatch::validate() const
{
    // Supports refer to live data sites and are sorted.
    for (size_t i = 0; i < checks_.size(); ++i) {
        const Check &c = checks_[i];
        if (c.support.empty())
            return ValidationResult::fail("check " + std::to_string(i) +
                                          " has empty support");
        if (!std::is_sorted(c.support.begin(), c.support.end()))
            return ValidationResult::fail("check " + std::to_string(i) +
                                          " support not sorted");
        for (const Coord &q : c.support) {
            if (!q.isDataSite())
                return ValidationResult::fail("check " + std::to_string(i) +
                                              " touches non-data site " +
                                              q.str());
            if (!data_.count(q))
                return ValidationResult::fail("check " + std::to_string(i) +
                                              " touches dead qubit " +
                                              q.str());
        }
        if (c.ancilla && !c.ancilla->isCheckSite())
            return ValidationResult::fail("check " + std::to_string(i) +
                                          " ancilla not on a check site");
    }

    const auto gens = stabilizerGenerators();
    // Stabilizer generators commute pairwise.
    for (size_t i = 0; i < gens.size(); ++i) {
        if (gens[i].support.empty())
            return ValidationResult::fail("empty stabilizer generator");
        for (size_t j = i + 1; j < gens.size(); ++j) {
            if (gens[i].type == gens[j].type)
                continue;
            if (supportsAnticommute(gens[i].support, gens[j].support))
                return ValidationResult::fail(
                    "stabilizer generators " + std::to_string(i) + " and " +
                    std::to_string(j) + " anti-commute");
        }
    }
    // Stabilizer generators commute with every measured gauge check.
    for (size_t i = 0; i < gens.size(); ++i) {
        for (size_t c = 0; c < checks_.size(); ++c) {
            if (checks_[c].role != CheckRole::Gauge)
                continue;
            if (gens[i].type == checks_[c].type)
                continue;
            if (supportsAnticommute(gens[i].support, checks_[c].support))
                return ValidationResult::fail(
                    "stabilizer generator " + std::to_string(i) +
                    " anti-commutes with gauge check " + std::to_string(c));
        }
    }
    // Logical representatives.
    auto check_logical = [&](const std::vector<Coord> &rep, PauliType t,
                             const char *name) -> ValidationResult {
        if (rep.empty())
            return ValidationResult::fail(std::string(name) + " is empty");
        for (const Coord &q : rep)
            if (!data_.count(q))
                return ValidationResult::fail(std::string(name) +
                                              " touches dead qubit " + q.str());
        for (size_t i = 0; i < gens.size(); ++i) {
            if (gens[i].type == t)
                continue;
            if (supportsAnticommute(rep, gens[i].support))
                return ValidationResult::fail(
                    std::string(name) + " anti-commutes with generator " +
                    std::to_string(i));
        }
        for (size_t c = 0; c < checks_.size(); ++c) {
            if (checks_[c].role != CheckRole::Gauge || checks_[c].type == t)
                continue;
            if (supportsAnticommute(rep, checks_[c].support))
                return ValidationResult::fail(
                    std::string(name) + " anti-commutes with gauge check " +
                    std::to_string(c));
        }
        return ValidationResult::pass();
    };
    if (auto r = check_logical(logicalX_, PauliType::X, "logicalX"); !r.ok)
        return r;
    if (auto r = check_logical(logicalZ_, PauliType::Z, "logicalZ"); !r.ok)
        return r;
    std::vector<Coord> lx = logicalX_, lz = logicalZ_;
    std::sort(lx.begin(), lx.end());
    std::sort(lz.begin(), lz.end());
    if (!supportsAnticommute(lx, lz))
        return ValidationResult::fail("logical X and Z fail to anti-commute");

    return ValidationResult::pass();
}

std::string
CodePatch::render() const
{
    if (data_.empty())
        return "(empty patch)\n";
    int x0 = xMin_ - 1, x1 = xMax_ + 1, y0 = yMin_ - 1, y1 = yMax_ + 1;
    const int w = x1 - x0 + 1;
    const int h = y1 - y0 + 1;
    std::vector<std::string> grid(h, std::string(w, ' '));
    auto put = [&](Coord c, char ch) {
        if (c.x >= x0 && c.x <= x1 && c.y >= y0 && c.y <= y1)
            grid[c.y - y0][c.x - x0] = ch;
    };
    for (int y = yMin_; y <= yMax_; y += 2)
        for (int x = xMin_; x <= xMax_; x += 2)
            put({x, y}, '.');
    for (const Coord &q : data_)
        put(q, 'o');
    for (const auto &c : checks_) {
        if (!c.ancilla)
            continue;
        char ch;
        if (c.role == CheckRole::Stabilizer)
            ch = (c.type == PauliType::X) ? 'X' : 'Z';
        else
            ch = (c.type == PauliType::X) ? 'x' : 'z';
        put(*c.ancilla, ch);
    }
    std::string out;
    for (const auto &row : grid)
        out += row + "\n";
    return out;
}

} // namespace surf
