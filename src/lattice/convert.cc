#include "lattice/convert.hh"

#include <algorithm>

#include "pauli/coset.hh"
#include "util/logging.hh"

namespace surf {

namespace {

PauliString
supportToPauli(const std::vector<Coord> &support, PauliType t,
               const std::map<Coord, int> &index, size_t n)
{
    PauliString p(n);
    for (const Coord &q : support) {
        auto it = index.find(q);
        SURF_ASSERT(it != index.end(), "support coordinate ", q.str(),
                    " is not a live data qubit");
        p.setPauli(static_cast<size_t>(it->second),
                   t == PauliType::X ? Pauli::X : Pauli::Z);
    }
    return p;
}

/** Rebuild a Pauli operator from its (x|z) symplectic row. */
PauliString
pauliFromSymplectic(const BitVec &row, size_t n)
{
    PauliString p(n);
    for (size_t q = 0; q < n; ++q) {
        const bool x = row.get(q), z = row.get(n + q);
        if (x && z)
            p.setPauli(q, Pauli::Y);
        else if (x)
            p.setPauli(q, Pauli::X);
        else if (z)
            p.setPauli(q, Pauli::Z);
    }
    return p;
}

/** Swap the x and z halves: inner(a, b) == dual(a) . b. */
BitVec
dualRow(const BitVec &row)
{
    const size_t n = row.size() / 2;
    BitVec out(2 * n);
    for (size_t q = 0; q < n; ++q) {
        out.set(q, row.get(n + q));
        out.set(n + q, row.get(q));
    }
    return out;
}

} // namespace

PatchAlgebra
toAlgebra(const CodePatch &patch)
{
    PatchAlgebra out;
    out.qubits = patch.dataList();
    for (size_t i = 0; i < out.qubits.size(); ++i)
        out.index[out.qubits[i]] = static_cast<int>(i);
    const size_t n = out.qubits.size();
    out.code = SubsystemCode(n);

    for (const auto &g : patch.stabilizerGenerators())
        out.code.addStabilizer(supportToPauli(g.support, g.type, out.index, n));

    out.code.addLogicalPair(
        supportToPauli(patch.logicalX(), PauliType::X, out.index, n),
        supportToPauli(patch.logicalZ(), PauliType::Z, out.index, n));

    // Gauge pairs from the measured gauge checks via symplectic
    // Gram-Schmidt. Each super-stabilizer cluster of m gauge checks
    // contributes m-1 independent gauge operators modulo the stabilizer
    // group; clusters of opposite type pair up region by region.
    std::vector<PauliString> work;
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge)
            work.push_back(supportToPauli(c.support, c.type, out.index, n));

    std::vector<PauliString> leftovers;
    while (!work.empty()) {
        PauliString a = work.back();
        work.pop_back();
        // Find a partner anti-commuting with a.
        int partner = -1;
        for (size_t i = 0; i < work.size(); ++i) {
            if (!a.commutesWith(work[i])) {
                partner = static_cast<int>(i);
                break;
            }
        }
        if (partner < 0) {
            // Central among the remaining operators: either redundant or
            // the measured half of a gauge pair whose partner is not
            // measured; resolved below.
            leftovers.push_back(a);
            continue;
        }
        PauliString b = work[static_cast<size_t>(partner)];
        work.erase(work.begin() + partner);
        // Symplectic reduction of the remaining operators.
        for (auto &w : work) {
            const bool hit_a = !w.commutesWith(a);
            const bool hit_b = !w.commutesWith(b);
            if (hit_a)
                w *= b;
            if (hit_b)
                w *= a;
        }
        // Order the pair so the X-like operator comes first when pure.
        if (a.isCssType(PauliType::Z) && b.isCssType(PauliType::X))
            std::swap(a, b);
        out.code.addGaugePair(a, b);
    }

    // Unpaired measured gauge DOFs: synthesize the missing partner so the
    // generator representation is complete (Theorem 1 requires pairs).
    auto current_gens = [&] {
        std::vector<PauliString> gens(out.code.stabilizers());
        for (size_t i = 0; i < out.code.numLogical(); ++i) {
            gens.push_back(out.code.logicalX(i));
            gens.push_back(out.code.logicalZ(i));
        }
        for (size_t i = 0; i < out.code.numGauge(); ++i) {
            gens.push_back(out.code.gaugeXs()[i]);
            gens.push_back(out.code.gaugeZs()[i]);
        }
        return gens;
    };
    // Partner p for operator c: commutes with every current generator,
    // anti-commutes with c (constraints dual(g).p = 0, dual(c).p = 1).
    auto add_synthesized_pair = [&](const PauliString &c) {
        const auto gens = current_gens();
        BitMatrix constraints(2 * n);
        for (const auto &g : gens)
            constraints.addRow(dualRow(SubsystemCode::symplecticRow(g)));
        constraints.addRow(dualRow(SubsystemCode::symplecticRow(c)));
        BitVec rhs(constraints.rows());
        rhs.set(constraints.rows() - 1, true);
        const auto x = constraints.solveSystem(rhs);
        SURF_ASSERT(x.has_value(), "no symplectic partner for unpaired "
                                   "gauge operator");
        PauliString p = pauliFromSymplectic(*x, n);
        if (c.isCssType(PauliType::Z) && p.isCssType(PauliType::X))
            out.code.addGaugePair(p, c);
        else
            out.code.addGaugePair(c, p);
    };

    for (const PauliString &c : leftovers) {
        BitMatrix span(2 * n);
        for (const auto &g : current_gens())
            span.addRow(SubsystemCode::symplecticRow(g));
        if (span.inSpan(SubsystemCode::symplecticRow(c)))
            continue; // genuinely redundant
        add_synthesized_pair(c);
    }

    // Fully-unmeasured DOFs: heavy defect patterns can leave a region
    // where a former super-stabilizer is no longer inferable and neither
    // half of the corresponding gauge pair is measured. Complete the
    // representation by synthesizing independent centralizer pairs until
    // the counting identity #stabs + k + l == n holds.
    while (out.code.numStabilizers() + out.code.numLogical() +
               out.code.numGauge() <
           n) {
        const auto gens = current_gens();
        BitMatrix span(2 * n);
        BitMatrix duals(2 * n);
        for (const auto &g : gens) {
            span.addRow(SubsystemCode::symplecticRow(g));
            duals.addRow(dualRow(SubsystemCode::symplecticRow(g)));
        }
        PauliString found(0);
        for (const BitVec &v : duals.kernelBasis()) {
            if (span.inSpan(v))
                continue;
            found = pauliFromSymplectic(v, n);
            break;
        }
        SURF_ASSERT(found.numQubits() == n,
                    "missing stabilizer DOF but centralizer exhausted");
        add_synthesized_pair(found);
    }
    return out;
}

size_t
exactDistance(const CodePatch &patch, PauliType t)
{
    const auto qubits = patch.dataList();
    std::map<Coord, int> index;
    for (size_t i = 0; i < qubits.size(); ++i)
        index[qubits[i]] = static_cast<int>(i);
    const size_t n = qubits.size();

    auto to_bits = [&](const std::vector<Coord> &support) {
        BitVec v(n);
        for (const Coord &q : support) {
            auto it = index.find(q);
            SURF_ASSERT(it != index.end());
            v.set(static_cast<size_t>(it->second), true);
        }
        return v;
    };

    std::vector<BitVec> basis;
    for (const auto &g : patch.stabilizerGenerators())
        if (g.type == t)
            basis.push_back(to_bits(g.support));
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge && c.type == t)
            basis.push_back(to_bits(c.support));

    const auto &logical =
        (t == PauliType::X) ? patch.logicalX() : patch.logicalZ();
    return minCosetWeight(basis, to_bits(logical));
}

} // namespace surf
