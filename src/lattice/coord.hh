/**
 * @file
 * Doubled integer lattice coordinates (Stim convention): data qubits live
 * at odd-odd positions, check ancillas at even-even positions. Using the
 * doubled grid keeps every qubit on integer coordinates.
 */

#ifndef SURF_LATTICE_COORD_HH
#define SURF_LATTICE_COORD_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace surf {

/** A point on the doubled lattice. */
struct Coord
{
    int x = 0;
    int y = 0;

    auto operator<=>(const Coord &) const = default;

    Coord operator+(const Coord &o) const { return {x + o.x, y + o.y}; }
    Coord operator-(const Coord &o) const { return {x - o.x, y - o.y}; }

    /** True for data-qubit positions (odd, odd). */
    bool isDataSite() const { return (x & 1) && (y & 1); }

    /** True for check-ancilla positions (even, even). */
    bool isCheckSite() const { return !(x & 1) && !(y & 1); }

    std::string
    str() const
    {
        return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
    }
};

/** The four compass sides of a patch. North = decreasing y. */
enum class Side : uint8_t { North = 0, South = 1, West = 2, East = 3 };

inline const char *
sideName(Side s)
{
    switch (s) {
      case Side::North: return "north";
      case Side::South: return "south";
      case Side::West:  return "west";
      case Side::East:  return "east";
    }
    return "?";
}

} // namespace surf

template <>
struct std::hash<surf::Coord>
{
    size_t
    operator()(const surf::Coord &c) const noexcept
    {
        // Pack into 64 bits, then mix.
        uint64_t v = (static_cast<uint64_t>(static_cast<uint32_t>(c.x)) << 32) |
                     static_cast<uint32_t>(c.y);
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdULL;
        v ^= v >> 33;
        return static_cast<size_t>(v);
    }
};

#endif // SURF_LATTICE_COORD_HH
