/**
 * @file
 * Conversion from the geometric CodePatch to the algebraic SubsystemCode
 * (generator representation of the paper's Appendix A), plus the exact
 * distance oracle used to validate the graph-based distance.
 */

#ifndef SURF_LATTICE_CONVERT_HH
#define SURF_LATTICE_CONVERT_HH

#include <map>
#include <vector>

#include "lattice/patch.hh"
#include "pauli/subsystem_code.hh"

namespace surf {

/** A patch's algebraic view with the qubit indexing that produced it. */
struct PatchAlgebra
{
    std::vector<Coord> qubits;     ///< index -> data coordinate (sorted)
    std::map<Coord, int> index;    ///< data coordinate -> index
    SubsystemCode code;            ///< full generator representation

    PatchAlgebra() : code(0) {}
};

/**
 * Build the generator representation of a patch: stabilizer generators
 * (plain checks plus super-stabilizer products), the logical pair from the
 * stored representatives, and gauge pairs extracted from the measured
 * gauge checks by symplectic Gram-Schmidt.
 */
PatchAlgebra toAlgebra(const CodePatch &patch);

/**
 * Exact dressed distance oracle for type t: minimum Hamming weight over
 * logical_t multiplied by any product of type-t stabilizer generators and
 * type-t gauge checks. Exponential in the generator count; use on
 * test-size patches only.
 */
size_t exactDistance(const CodePatch &patch, PauliType t);

} // namespace surf

#endif // SURF_LATTICE_CONVERT_HH
