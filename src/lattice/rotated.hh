/**
 * @file
 * Construction of pristine rectangular rotated surface code patches
 * (paper Sec. II-A, fig. 2a).
 */

#ifndef SURF_LATTICE_ROTATED_HH
#define SURF_LATTICE_ROTATED_HH

#include "lattice/patch.hh"

namespace surf {

/**
 * Build a dx-by-dz rotated surface code patch.
 *
 * Data qubits sit at origin + (2i+1, 2j+1) for 0 <= i < dx, 0 <= j < dz.
 * North/south boundaries host Z-type half-checks (Z-boundaries); east/west
 * host X-type half-checks (X-boundaries). The Z-logical representative is
 * the west data column (length dz) and the X-logical representative is the
 * north data row (length dx), so X-distance = dx and Z-distance = dz.
 *
 * @param dx code distance against Z errors (width in data qubits)
 * @param dz code distance against X errors (height in data qubits)
 * @param origin lattice offset of the patch (must be even-even)
 */
CodePatch rectangularPatch(int dx, int dz, Coord origin = {0, 0});

/** Square distance-d patch (dx == dz == d). */
inline CodePatch
squarePatch(int d, Coord origin = {0, 0})
{
    return rectangularPatch(d, d, origin);
}

/**
 * Check-site type at a lattice vertex: X iff (x/2 + y/2) is even.
 * The vertex coordinates are absolute (even-even).
 */
PauliType vertexType(Coord vertex);

} // namespace surf

#endif // SURF_LATTICE_ROTATED_HH
