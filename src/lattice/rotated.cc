#include "lattice/rotated.hh"

#include "util/logging.hh"

namespace surf {

PauliType
vertexType(Coord vertex)
{
    SURF_ASSERT(vertex.isCheckSite(), "not a check site: ", vertex.str());
    const int a = vertex.x / 2, b = vertex.y / 2;
    return (((a + b) % 2) + 2) % 2 == 0 ? PauliType::X : PauliType::Z;
}

CodePatch
rectangularPatch(int dx, int dz, Coord origin)
{
    SURF_ASSERT(dx >= 1 && dz >= 1, "degenerate patch ", dx, "x", dz);
    SURF_ASSERT(origin.x % 2 == 0 && origin.y % 2 == 0,
                "patch origin must be even-even");

    CodePatch patch;
    for (int i = 0; i < dx; ++i)
        for (int j = 0; j < dz; ++j)
            patch.addData({origin.x + 2 * i + 1, origin.y + 2 * j + 1});
    patch.setBounds(origin.x + 1, origin.x + 2 * dx - 1,
                    origin.y + 1, origin.y + 2 * dz - 1);

    // Candidate check vertices cover the closed dual grid.
    for (int a = 0; a <= dx; ++a) {
        for (int b = 0; b <= dz; ++b) {
            const Coord v{origin.x + 2 * a, origin.y + 2 * b};
            std::vector<Coord> nbrs;
            for (int sx : {-1, 1})
                for (int sy : {-1, 1}) {
                    Coord q{v.x + sx, v.y + sy};
                    if (patch.hasData(q))
                        nbrs.push_back(q);
                }
            const PauliType t = vertexType(v);
            bool host = false;
            if (nbrs.size() == 4) {
                host = true;
            } else if (nbrs.size() == 2) {
                // Boundary half-check: hosted only when its type matches
                // the boundary type of the side it sits on.
                Side side;
                if (b == 0)
                    side = Side::North;
                else if (b == dz)
                    side = Side::South;
                else if (a == 0)
                    side = Side::West;
                else
                    side = Side::East;
                host = (CodePatch::boundaryType(side) == t);
            }
            if (host) {
                Check c;
                c.type = t;
                c.support = nbrs;
                c.ancilla = v;
                patch.addCheck(std::move(c));
            }
        }
    }

    std::vector<Coord> lz, lx;
    for (int j = 0; j < dz; ++j)
        lz.push_back({origin.x + 1, origin.y + 2 * j + 1});
    for (int i = 0; i < dx; ++i)
        lx.push_back({origin.x + 2 * i + 1, origin.y + 1});
    patch.setLogicalZ(std::move(lz));
    patch.setLogicalX(std::move(lx));
    return patch;
}

} // namespace surf
