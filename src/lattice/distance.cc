#include "lattice/distance.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "pauli/bitmatrix.hh"
#include "util/logging.hh"

namespace surf {

namespace {

/** Dense data-qubit indexing for GF(2) work. */
struct QubitIndex
{
    std::vector<Coord> list;
    std::map<Coord, int> index;

    explicit QubitIndex(const CodePatch &patch) : list(patch.dataList())
    {
        for (size_t i = 0; i < list.size(); ++i)
            index[list[i]] = static_cast<int>(i);
    }

    BitVec
    bits(const std::vector<Coord> &support) const
    {
        BitVec v(list.size());
        for (const Coord &q : support) {
            auto it = index.find(q);
            SURF_ASSERT(it != index.end(), "dead qubit in support");
            v.set(static_cast<size_t>(it->second), true);
        }
        return v;
    }
};

} // namespace

std::vector<Coord>
algebraicLogical(const CodePatch &patch, PauliType t)
{
    const QubitIndex qi(patch);
    const size_t n = qi.list.size();
    if (n == 0)
        return {};

    // Constraints: commute with every opposite-type generator and gauge
    // check (bare representative).
    BitMatrix constraints(n);
    for (const auto &g : patch.stabilizerGenerators())
        if (g.type == oppositeType(t))
            constraints.addRow(qi.bits(g.support));
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge && c.type == oppositeType(t))
            constraints.addRow(qi.bits(c.support));

    // Trivial subgroup: same-type generators and gauge checks.
    BitMatrix trivial(n);
    for (const auto &g : patch.stabilizerGenerators())
        if (g.type == t)
            trivial.addRow(qi.bits(g.support));
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge && c.type == t)
            trivial.addRow(qi.bits(c.support));

    for (const BitVec &v : constraints.kernelBasis()) {
        if (trivial.inSpan(v))
            continue;
        std::vector<Coord> out;
        for (size_t i : v.onesPositions())
            out.push_back(qi.list[i]);
        return out;
    }
    return {};
}

DistanceResult
graphDistance(const CodePatch &patch, PauliType t)
{
    DistanceResult result;
    const auto ref = algebraicLogical(patch, oppositeType(t));
    if (ref.empty())
        return result; // encoded qubit destroyed for this type
    std::unordered_set<Coord> ref_set(ref.begin(), ref.end());

    // Detecting generators (opposite type) become graph nodes; one shared
    // virtual boundary node absorbs deficient qubits.
    std::vector<StabGen> gens;
    for (auto &g : patch.stabilizerGenerators())
        if (g.type == oppositeType(t))
            gens.push_back(std::move(g));
    std::unordered_map<Coord, std::vector<int>> on_qubit;
    for (size_t g = 0; g < gens.size(); ++g)
        for (const Coord &q : gens[g].support)
            on_qubit[q].push_back(static_cast<int>(g));

    struct GraphEdge
    {
        int from;
        int to;
        bool crossing; ///< flips the reference-overlap parity
        Coord label;
    };
    const int node_b = static_cast<int>(gens.size()); // virtual boundary
    std::vector<GraphEdge> edges;
    for (const Coord &q : patch.dataQubits()) {
        auto it = on_qubit.find(q);
        const size_t deg = (it == on_qubit.end()) ? 0 : it->second.size();
        if (deg > 2) {
            // Hypergraph-like region (extreme defect density): chains
            // cannot pass through this qubit in the pair-matching
            // formalism; exclude it and report the congestion.
            ++result.congestedQubits;
            continue;
        }
        const bool crossing = ref_set.count(q) > 0;
        const int a = (deg >= 1) ? it->second[0] : node_b;
        const int b = (deg == 2) ? it->second[1] : node_b;
        if (a == b && !crossing)
            continue; // parity-neutral self-loop: never useful
        edges.push_back({a, b, crossing, q});
    }

    // BFS on the parity-doubled multigraph from (B, even) to (B, odd).
    const int n_nodes = 2 * (node_b + 1);
    auto node_id = [&](int v, int parity) { return 2 * v + parity; };
    std::vector<std::vector<int>> adj(static_cast<size_t>(n_nodes));
    for (size_t e = 0; e < edges.size(); ++e) {
        adj[static_cast<size_t>(node_id(edges[e].from, 0))].push_back(
            static_cast<int>(e));
        adj[static_cast<size_t>(node_id(edges[e].from, 1))].push_back(
            static_cast<int>(e));
        if (edges[e].from != edges[e].to) {
            adj[static_cast<size_t>(node_id(edges[e].to, 0))].push_back(
                static_cast<int>(e));
            adj[static_cast<size_t>(node_id(edges[e].to, 1))].push_back(
                static_cast<int>(e));
        }
    }
    const int start = node_id(node_b, 0);
    const int goal = node_id(node_b, 1);
    std::vector<int> dist(static_cast<size_t>(n_nodes), -1);
    std::vector<int> parent_edge(static_cast<size_t>(n_nodes), -1);
    std::deque<int> queue;
    dist[static_cast<size_t>(start)] = 0;
    queue.push_back(start);
    while (!queue.empty()) {
        const int v = queue.front();
        queue.pop_front();
        if (v == goal)
            break;
        const int base = v / 2, parity = v % 2;
        for (int e : adj[static_cast<size_t>(v)]) {
            const auto &edge = edges[static_cast<size_t>(e)];
            const int other = (edge.from == base) ? edge.to : edge.from;
            const int w =
                node_id(other, parity ^ (edge.crossing ? 1 : 0));
            if (w == v)
                continue;
            if (dist[static_cast<size_t>(w)] < 0) {
                dist[static_cast<size_t>(w)] =
                    dist[static_cast<size_t>(v)] + 1;
                parent_edge[static_cast<size_t>(w)] = e;
                queue.push_back(w);
            }
        }
    }
    if (dist[static_cast<size_t>(goal)] < 0)
        return result; // no undetectable crossing chain: destroyed
    result.distance = static_cast<size_t>(dist[static_cast<size_t>(goal)]);
    int v = goal;
    while (v != start) {
        const int e = parent_edge[static_cast<size_t>(v)];
        const auto &edge = edges[static_cast<size_t>(e)];
        result.path.push_back(edge.label);
        const int base = v / 2, parity = v % 2;
        const int other = (edge.from == base) ? edge.to : edge.from;
        (void)other;
        const int prev_base = (edge.from == base) ? edge.to : edge.from;
        v = node_id(prev_base, parity ^ (edge.crossing ? 1 : 0));
    }
    std::sort(result.path.begin(), result.path.end());
    return result;
}

size_t
codeDistance(const CodePatch &patch)
{
    return std::min(graphDistance(patch, PauliType::X).distance,
                    graphDistance(patch, PauliType::Z).distance);
}

std::vector<Coord>
bareLogicalRep(const CodePatch &patch, PauliType t)
{
    DistanceResult res = graphDistance(patch, t);
    SURF_ASSERT(res.distance > 0, "patch has no type-", typeChar(t),
                " logical operator");
    std::vector<Coord> rep = res.path;

    // Collect the opposite-type gauge checks the bare rep must commute with.
    std::vector<const Check *> opp_gauges;
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge && c.type == oppositeType(t))
            opp_gauges.push_back(&c);
    if (opp_gauges.empty())
        return rep;

    auto clash_vec = [&](const std::vector<Coord> &support) {
        BitVec v(opp_gauges.size());
        for (size_t i = 0; i < opp_gauges.size(); ++i)
            if (supportsAnticommute(support, opp_gauges[i]->support))
                v.set(i, true);
        return v;
    };
    const BitVec target = clash_vec(rep);
    if (target.isZero())
        return rep;

    // Fix up with same-type generators and gauge checks (GF(2) solve).
    std::vector<std::vector<Coord>> adjusters;
    for (const auto &g : patch.stabilizerGenerators())
        if (g.type == t)
            adjusters.push_back(g.support);
    for (const auto &c : patch.checks())
        if (c.role == CheckRole::Gauge && c.type == t)
            adjusters.push_back(c.support);

    BitMatrix mat(opp_gauges.size());
    for (const auto &a : adjusters)
        mat.addRow(clash_vec(a));
    auto combo = mat.solveCombination(target);
    SURF_ASSERT(combo.has_value(), "no bare logical representative found");
    for (size_t r = 0; r < adjusters.size(); ++r)
        if (combo->get(r))
            rep = supportXor(rep, adjusters[r]);
    SURF_ASSERT(!rep.empty(), "bare logical collapsed to identity");
    return rep;
}

void
refreshLogicals(CodePatch &patch)
{
    patch.setLogicalX(bareLogicalRep(patch, PauliType::X));
    patch.setLogicalZ(bareLogicalRep(patch, PauliType::Z));
}

} // namespace surf
