/**
 * @file
 * Code-distance computation for (deformed) surface code patches, plus
 * extraction of minimum-weight logical operator representatives.
 *
 * Method: a type-t logical operator is a set of data qubits C such that
 * (i) every opposite-type stabilizer generator overlaps C evenly (C is
 * undetectable) and (ii) C anti-commutes with a reference opposite-type
 * logical (C acts on the encoded qubit). A reference logical is computed
 * algebraically as a GF(2) kernel vector outside the gauge group; the
 * minimum-weight C is then a shortest path on a parity-doubled
 * check-adjacency graph, where each data qubit is an edge between the
 * (at most two) opposite-type generators containing it (a shared virtual
 * boundary node absorbs deficient qubits) and crossing between the parity
 * copies exactly on the reference's support. Verified against the exact
 * GF(2) coset oracle in the test suite.
 */

#ifndef SURF_LATTICE_DISTANCE_HH
#define SURF_LATTICE_DISTANCE_HH

#include <vector>

#include "lattice/patch.hh"

namespace surf {

/** Result of a graph-distance query. */
struct DistanceResult
{
    /** Minimum logical-operator weight; 0 means no logical operator of
     *  this type exists (the encoded qubit is destroyed). */
    size_t distance = 0;
    /** Support of one minimum-weight (dressed) logical representative. */
    std::vector<Coord> path;
    /** Qubits contained in three or more detecting generators (possible
     *  only under extreme defect density, where the region is no longer
     *  matching-graph-like). Such qubits are excluded from the search, so
     *  a non-zero count makes the distance an upper bound. */
    size_t congestedQubits = 0;
};

/**
 * A valid *bare* type-t logical representative computed algebraically:
 * a pure-type-t operator commuting with every opposite-type stabilizer
 * generator and gauge check, outside the span of same-type generators and
 * gauge checks. Returns an empty vector when none exists (code destroyed).
 * Not minimum-weight; used as the crossing-parity reference.
 */
std::vector<Coord> algebraicLogical(const CodePatch &patch, PauliType t);

/** Minimum weight of a type-t logical operator of the patch. */
DistanceResult graphDistance(const CodePatch &patch, PauliType t);

/** Convenience: min(X-distance, Z-distance). */
size_t codeDistance(const CodePatch &patch);

/**
 * A bare minimum-weight-ish logical representative of type t: starts from
 * the graph path and, if the path is only dressed (anti-commutes with
 * some measured gauge check), fixes it up by a GF(2) commutation solve
 * over same-type generators and gauge checks.
 */
std::vector<Coord> bareLogicalRep(const CodePatch &patch, PauliType t);

/**
 * Refresh the patch's stored logical representatives with bare
 * minimum-weight ones that are guaranteed to anti-commute with each other
 * (called after deformations).
 */
void refreshLogicals(CodePatch &patch);

} // namespace surf

#endif // SURF_LATTICE_DISTANCE_HH
