/**
 * @file
 * CodePatch: the geometric description of a (possibly deformed) surface
 * code patch. A patch holds the set of live data qubits, the measured
 * check operators (stabilizer checks measured every round and gauge checks
 * measured on alternating rounds), the super-stabilizer clusters whose
 * products form inferred stabilizers, and logical operator representatives.
 *
 * This is the object the Surf-Deformer instructions (paper Sec. IV) act on.
 */

#ifndef SURF_LATTICE_PATCH_HH
#define SURF_LATTICE_PATCH_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lattice/coord.hh"
#include "pauli/pauli_string.hh"
#include "pauli/subsystem_code.hh"

namespace surf {

/** Whether a measured operator is a full stabilizer or a gauge operator. */
enum class CheckRole : uint8_t { Stabilizer, Gauge };

/**
 * One measured operator: a pure-type Pauli product over data qubits.
 *
 * Stabilizer checks are measured every round. Gauge checks are measured on
 * alternating rounds (phase 0 on even rounds, phase 1 on odd rounds)
 * because gauge operators of opposite type anti-commute; their cluster
 * products are the inferred super-stabilizers.
 */
struct Check
{
    PauliType type = PauliType::Z;
    std::vector<Coord> support;       ///< sorted data-qubit coordinates
    std::optional<Coord> ancilla;     ///< syndrome qubit; nullopt = direct
                                      ///< single-data-qubit measurement
    CheckRole role = CheckRole::Stabilizer;
    int phase = 0;                    ///< gauge measurement parity (0 or 1)
    int cluster = -1;                 ///< super-stabilizer cluster id

    size_t weight() const { return support.size(); }
    bool contains(Coord q) const;
};

/**
 * A super-stabilizer: an inferred stabilizer equal to the product of a set
 * of measured gauge checks (its value is the XOR of their outcomes).
 */
struct SuperStab
{
    PauliType type;
    std::vector<int> members;         ///< indices into CodePatch::checks()
};

/** A stabilizer-group generator with its (XOR-reduced) support. */
struct StabGen
{
    PauliType type;
    std::vector<Coord> support;       ///< sorted, duplicates cancelled
    bool isSuper = false;
    int sourceCheck = -1;             ///< check index for plain stabilizers
    int sourceSuper = -1;             ///< super index for super-stabilizers
};

/**
 * A deformed surface code patch.
 *
 * The pristine patch is a dx-by-dz rectangular rotated surface code whose
 * north/south boundaries are Z-type (Z-logical runs north-south along the
 * west column) and whose east/west boundaries are X-type (X-logical runs
 * east-west along the north row).
 */
class CodePatch
{
  public:
    CodePatch() = default;

    /** @name Structure access */
    ///@{
    const std::set<Coord> &dataQubits() const { return data_; }
    bool hasData(Coord q) const { return data_.count(q) > 0; }
    size_t numData() const { return data_.size(); }

    const std::vector<Check> &checks() const { return checks_; }
    const std::vector<SuperStab> &supers() const { return supers_; }

    /** Indices of checks of the given type containing data qubit q. */
    std::vector<int> checksOn(Coord q, PauliType t) const;
    /** Indices of all checks containing data qubit q. */
    std::vector<int> checksOn(Coord q) const;

    /** Stabilizer-group generators: plain stabilizer checks plus the
     *  XOR-reduced products of each super-stabilizer cluster. */
    std::vector<StabGen> stabilizerGenerators() const;

    /** Sorted list of live data qubits. */
    std::vector<Coord> dataList() const;

    /** Total physical qubits: data plus distinct check ancillas. */
    size_t numPhysicalQubits() const;
    ///@}

    /** @name Logical operator representatives */
    ///@{
    const std::vector<Coord> &logicalX() const { return logicalX_; }
    const std::vector<Coord> &logicalZ() const { return logicalZ_; }
    void setLogicalX(std::vector<Coord> s) { logicalX_ = std::move(s); }
    void setLogicalZ(std::vector<Coord> s) { logicalZ_ = std::move(s); }
    ///@}

    /** @name Geometry */
    ///@{
    /** Data-extent bounding box [xMin..xMax] x [yMin..yMax] (odd coords). */
    int xMin() const { return xMin_; }
    int xMax() const { return xMax_; }
    int yMin() const { return yMin_; }
    int yMax() const { return yMax_; }
    void setBounds(int x0, int x1, int y0, int y1);

    /** Boundary type of a side: north/south are Z, east/west are X. */
    static PauliType
    boundaryType(Side s)
    {
        return (s == Side::North || s == Side::South) ? PauliType::Z
                                                      : PauliType::X;
    }
    ///@}

    /** @name Mutation (used by the deformation instructions) */
    ///@{
    void addData(Coord q);
    void removeData(Coord q);
    /** Append a check; returns its index. */
    int addCheck(Check c);
    /** Remove checks flagged true in `dead` and remap cluster members. */
    void compactChecks(const std::vector<bool> &dead);
    std::vector<Check> &mutableChecks() { return checks_; }

    /**
     * Recompute the super-stabilizers from the current gauge checks.
     *
     * For each type t, the inferred stabilizers are the products of
     * type-t gauge checks that commute with every opposite-type gauge
     * check; their generating subsets are the kernel of the GF(2)
     * anti-commutation matrix. Gauge checks that commute with everything
     * are promoted back to plain stabilizers. Measurement phases
     * alternate globally: Z-gauges on even rounds, X-gauges on odd rounds
     * (the standard super-stabilizer protocol).
     */
    void recomputeSupers();
    ///@}

    /**
     * Structural validation: supports are live data sites, stabilizer
     * generators mutually commute, every stabilizer generator commutes
     * with every measured gauge check, and the logical representatives
     * commute with all generators while anti-commuting with each other.
     */
    ValidationResult validate() const;

    /** ASCII rendering for debugging and examples. */
    std::string render() const;

  private:
    std::set<Coord> data_;
    std::vector<Check> checks_;
    std::vector<SuperStab> supers_;
    std::vector<Coord> logicalX_, logicalZ_;
    int xMin_ = 0, xMax_ = 0, yMin_ = 0, yMax_ = 0;
};

/** Parity of the overlap between two sorted coordinate supports. */
bool supportsAnticommute(const std::vector<Coord> &a,
                         const std::vector<Coord> &b);

/** Symmetric difference of two sorted coordinate supports. */
std::vector<Coord> supportXor(const std::vector<Coord> &a,
                              const std::vector<Coord> &b);

} // namespace surf

#endif // SURF_LATTICE_PATCH_HH
