/**
 * @file
 * Regeneration-based deformation state. The paper's Adaptive Enlargement
 * subroutine first performs the regular enlargement while temporarily
 * disregarding defective qubits and then excludes them with the removal
 * instructions (Sec. V-B); DeformState captures exactly that semantics:
 * it tracks the current patch rectangle and the active defect set, and
 * build() regenerates the pristine rectangle and replays the removals.
 *
 * PatchQ_ADD (paper fig. 6d) appears here as grow(): one data layer added
 * on a chosen side, extending half-checks into full checks and creating
 * the staggered new boundary checks.
 */

#ifndef SURF_CORE_DEFORM_STATE_HH
#define SURF_CORE_DEFORM_STATE_HH

#include <set>

#include "core/trace.hh"
#include "lattice/patch.hh"

namespace surf {

/** Boundary-removal policy: how PatchQ_RM picks the operator to fix. */
enum class RemovalPolicy : uint8_t
{
    /** Surf-Deformer: evaluate both candidate fixes and keep the one that
     *  balances (maximizes the minimum of) the X- and Z-distances
     *  (paper fig. 8b, Alg. 1 `balancing`). */
    Balanced,
    /** ASC-S: minimize the number of disabled qubits regardless of the
     *  distance impact (paper fig. 8a). */
    MinimalDisable,
};

/** A fully deformed patch plus its summary metrics. */
struct DeformedPatch
{
    CodePatch patch;
    size_t distX = 0;
    size_t distZ = 0;
    bool alive = false;  ///< both logical operators still exist
};

/**
 * The deformation unit's bookkeeping for one logical qubit patch:
 * a rectangle (origin, dx, dz) and the set of defective physical sites.
 */
struct DeformState
{
    Coord origin{0, 0};
    int dx = 0;
    int dz = 0;
    /** Active defective sites: data coordinates (odd-odd) or syndrome
     *  coordinates (even-even), in absolute lattice coordinates. */
    std::set<Coord> defects;
    RemovalPolicy policy = RemovalPolicy::Balanced;
    /** ASC-S removes a defective syndrome qubit by removing its adjacent
     *  data qubits with DataQ_RM (paper Sec. V-A comparison). */
    bool syndromeViaDataRemoval = false;

    /** PatchQ_ADD one data layer on the given side. */
    void grow(Side side);

    /** Number of defective sites inside the prospective next layer on the
     *  given side (used by Alg. 2's find_layer / min selection). */
    int defectsInNextLayer(Side side) const;

    /**
     * Regenerate the pristine rectangle and replay all removals:
     * interior syndrome defects via SyndromeQ_RM (or ASC-S's data-removal
     * emulation), interior data defects via DataQ_RM, boundary defects via
     * PatchQ_RM with the configured pin policy. Recomputes the
     * super-stabilizers and refreshes logical representatives.
     */
    DeformedPatch build(DeformTrace *trace = nullptr) const;
};

} // namespace surf

#endif // SURF_CORE_DEFORM_STATE_HH
