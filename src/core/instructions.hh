/**
 * @file
 * The Surf-Deformer instruction set (paper Sec. IV): DataQ_RM,
 * SyndromeQ_RM, PatchQ_RM and PatchQ_ADD. Each instruction is a CISC-style
 * composition of atomic gauge transformations adapted to the surface code
 * topology; here they are implemented as direct mutations of a CodePatch
 * with the atomic-operation counts recorded in a DeformTrace.
 *
 * PatchQ_ADD operates at the deformation-state level (see deform_state.hh)
 * because enlargement regenerates the boundary structure; the remaining
 * three instructions act on a patch in place.
 */

#ifndef SURF_CORE_INSTRUCTIONS_HH
#define SURF_CORE_INSTRUCTIONS_HH

#include "core/trace.hh"
#include "lattice/patch.hh"

namespace surf {

/**
 * DataQ_RM: remove a single interior data qubit (paper fig. 6a).
 *
 * Every check containing q loses q from its support and becomes a gauge
 * check; the opposite-type pairs of shrunk checks form super-stabilizer
 * clusters (e.g. the two weight-3 Z gauges whose product is the weight-6
 * Z super-stabilizer). The caller is responsible for invoking
 * CodePatch::recomputeSupers() after a batch of removals (the instructions
 * commute, paper Sec. V-A).
 */
void dataQRm(CodePatch &patch, Coord q, DeformTrace *trace = nullptr);

/**
 * SyndromeQ_RM: remove a single interior syndrome qubit (paper fig. 6b).
 *
 * Drops the check measured by the ancilla at `a`, converts the
 * opposite-type checks overlapping its support into gauge checks, and adds
 * weight-1 directly-measured gauge checks on each support qubit. The
 * weight-1 gauges' product reconstructs the lost stabilizer; the
 * opposite-type gauges' product is the enclosing super-stabilizer
 * (the "octagon") that does not rely on the removed syndrome qubit.
 */
void syndromeQRm(CodePatch &patch, Coord a, DeformTrace *trace = nullptr);

/**
 * Pin-based boundary data-qubit removal: the heart of PatchQ_RM
 * (paper fig. 6c). Fixes the weight-1 operator P_q^{fix} as a stabilizer,
 * shrinking same-type checks and merging (or deleting) opposite-type
 * checks, then discards q. Weight-1 leftover stabilizer checks cascade:
 * their qubit is pinned and removed recursively (the "disabled" qubits of
 * the paper's fig. 8).
 *
 * @return the set of data qubits removed (q plus any cascade)
 */
std::vector<Coord> pinData(CodePatch &patch, Coord q, PauliType fix,
                           DeformTrace *trace = nullptr);

/**
 * Boundary syndrome-qubit removal: deletes the boundary check measured at
 * `a` and pins one data qubit of its support (with the opposite Pauli
 * type) so the logical qubit count is preserved.
 *
 * @param pin_choice the support qubit to pin; must belong to the check
 * @return the set of data qubits removed
 */
std::vector<Coord> removeBoundaryCheck(CodePatch &patch, Coord a,
                                       Coord pin_choice,
                                       DeformTrace *trace = nullptr);

/** True when q is a data qubit strictly inside the patch bounding box. */
bool isInteriorData(const CodePatch &patch, Coord q);

/** True when the ancilla at `a` measures a full-weight interior check. */
bool isInteriorSyndrome(const CodePatch &patch, Coord a);

/** Index of the check measured by the ancilla at `a`, or -1. */
int checkAt(const CodePatch &patch, Coord a);

} // namespace surf

#endif // SURF_CORE_INSTRUCTIONS_HH
