#include "core/layout_gen.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace surf {

double
DefectModelParams::lambdaForPatch(int d) const
{
    // A distance-d patch holds roughly 2 d^2 physical qubits.
    return 2.0 * d * d * eventRatePerQubitSec * durationSec;
}

double
LayoutGenerator::blockProbability(int d, int delta_d) const
{
    SURF_ASSERT(delta_d >= 0);
    const double lambda = model_.lambdaForPatch(d);
    const unsigned absorbable =
        static_cast<unsigned>(delta_d / model_.regionDiameter);
    return poissonTail(lambda, absorbable);
}

int
LayoutGenerator::chooseDeltaD(int d, double alpha_block) const
{
    for (int delta = 0; delta <= 64 * model_.regionDiameter; ++delta)
        if (blockProbability(d, delta) <= alpha_block)
            return delta;
    SURF_FATAL("no Delta_d below 64 regions satisfies alpha_block = ",
               alpha_block);
}

int
LayoutGenerator::interspace(int d, int delta_d, InterspaceScheme scheme)
{
    switch (scheme) {
      case InterspaceScheme::LatticeSurgery:
      case InterspaceScheme::Q3de:
        return d;
      case InterspaceScheme::Q3deRevised:
        return 2 * d;
      case InterspaceScheme::SurfDeformer:
        return d + delta_d;
    }
    return d;
}

LayoutPlan
LayoutGenerator::plan(int num_logical, int d, InterspaceScheme scheme,
                      double alpha_block) const
{
    SURF_ASSERT(num_logical >= 1 && d >= 3);
    LayoutPlan out;
    out.numLogical = num_logical;
    out.d = d;
    out.scheme = scheme;
    out.deltaD = (scheme == InterspaceScheme::SurfDeformer)
                     ? chooseDeltaD(d, alpha_block)
                     : 0;
    out.pBlock = (scheme == InterspaceScheme::SurfDeformer)
                     ? blockProbability(d, out.deltaD)
                     : blockProbability(d, 0);

    out.gridCols = static_cast<int>(std::ceil(std::sqrt(num_logical)));
    out.gridRows =
        (num_logical + out.gridCols - 1) / out.gridCols;

    const int s = interspace(d, out.deltaD, scheme);
    // Enclosed area in data-site units, with an inter-space margin all
    // around so boundary qubits can route as well; two physical qubits
    // (data + measurement) per site.
    const long w = static_cast<long>(out.gridCols) * (d + s) + s;
    const long h = static_cast<long>(out.gridRows) * (d + s) + s;
    out.physicalQubits = static_cast<size_t>(2L * w * h);
    return out;
}

} // namespace surf
