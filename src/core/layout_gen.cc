#include "core/layout_gen.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace surf {

double
DefectModelParams::lambdaForPatch(int d) const
{
    // A distance-d patch holds roughly 2 d^2 physical qubits.
    return 2.0 * d * d * eventRatePerQubitSec * durationSec;
}

double
LayoutGenerator::blockProbability(int d, int delta_d) const
{
    SURF_ASSERT(delta_d >= 0);
    const double lambda = model_.lambdaForPatch(d);
    const unsigned absorbable =
        static_cast<unsigned>(delta_d / model_.regionDiameter);
    return poissonTail(lambda, absorbable);
}

StatusOr<int>
LayoutGenerator::chooseDeltaDChecked(int d, double alpha_block) const
{
    if (d < 3)
        return Status::invalidArgument("code distance d = " +
                                       std::to_string(d) + " < 3");
    if (!(alpha_block > 0.0 && alpha_block <= 1.0))
        return Status::invalidArgument(
            "alpha_block = " + std::to_string(alpha_block) +
            " outside (0, 1]");
    for (int delta = 0; delta <= 64 * model_.regionDiameter; ++delta)
        if (blockProbability(d, delta) <= alpha_block)
            return delta;
    return Status::invalidArgument(
        "no Delta_d below 64 regions satisfies alpha_block = " +
        std::to_string(alpha_block));
}

int
LayoutGenerator::chooseDeltaD(int d, double alpha_block) const
{
    StatusOr<int> delta = chooseDeltaDChecked(d, alpha_block);
    if (!delta.ok())
        SURF_FATAL(delta.status().str());
    return *delta;
}

int
LayoutGenerator::interspace(int d, int delta_d, InterspaceScheme scheme)
{
    switch (scheme) {
      case InterspaceScheme::LatticeSurgery:
      case InterspaceScheme::Q3de:
        return d;
      case InterspaceScheme::Q3deRevised:
        return 2 * d;
      case InterspaceScheme::SurfDeformer:
        return d + delta_d;
    }
    return d;
}

StatusOr<LayoutPlan>
LayoutGenerator::planChecked(int num_logical, int d, InterspaceScheme scheme,
                             double alpha_block) const
{
    if (num_logical < 1)
        return Status::invalidArgument("num_logical = " +
                                       std::to_string(num_logical) + " < 1");
    if (d < 3)
        return Status::invalidArgument("code distance d = " +
                                       std::to_string(d) + " < 3");
    LayoutPlan out;
    out.numLogical = num_logical;
    out.d = d;
    out.scheme = scheme;
    if (scheme == InterspaceScheme::SurfDeformer) {
        StatusOr<int> delta = chooseDeltaDChecked(d, alpha_block);
        if (!delta.ok())
            return delta.status();
        out.deltaD = *delta;
    } else {
        out.deltaD = 0;
    }
    out.pBlock = (scheme == InterspaceScheme::SurfDeformer)
                     ? blockProbability(d, out.deltaD)
                     : blockProbability(d, 0);

    out.gridCols = static_cast<int>(std::ceil(std::sqrt(num_logical)));
    out.gridRows =
        (num_logical + out.gridCols - 1) / out.gridCols;

    const int s = interspace(d, out.deltaD, scheme);
    // Enclosed area in data-site units, with an inter-space margin all
    // around so boundary qubits can route as well; two physical qubits
    // (data + measurement) per site.
    const long w = static_cast<long>(out.gridCols) * (d + s) + s;
    const long h = static_cast<long>(out.gridRows) * (d + s) + s;
    out.physicalQubits = static_cast<size_t>(2L * w * h);
    return out;
}

LayoutPlan
LayoutGenerator::plan(int num_logical, int d, InterspaceScheme scheme,
                      double alpha_block) const
{
    StatusOr<LayoutPlan> out = planChecked(num_logical, d, scheme, alpha_block);
    if (!out.ok())
        SURF_FATAL(out.status().str());
    return *out;
}

} // namespace surf
