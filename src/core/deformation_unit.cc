#include "core/deformation_unit.hh"

#include "util/logging.hh"

namespace surf {

DeformOutcome
DeformationUnit::apply(const std::set<Coord> &defects) const
{
    DeformOutcome out;
    DeformState state;
    state.origin = config_.origin;
    state.dx = config_.d;
    state.dz = config_.d;
    state.defects = defects;
    state.policy = config_.policy;
    state.syndromeViaDataRemoval = config_.syndromeViaDataRemoval;

    // --- Defect Removal subroutine (Alg. 1) ---
    out.result = state.build(&out.trace);

    if (!config_.enlargement) {
        out.restored = out.result.distX >= static_cast<size_t>(config_.d) &&
                       out.result.distZ >= static_cast<size_t>(config_.d);
        return out;
    }

    // --- Adaptive Enlargement subroutine (Alg. 2) ---
    const auto side_index = [](Side s) { return static_cast<size_t>(s); };
    auto grow_axis = [&](Side a, Side b) -> bool {
        // find_layer: among the sides still within the Delta_d budget,
        // prefer the prospective layer containing fewer defects.
        const bool can_a = out.grown[side_index(a)] < config_.deltaD;
        const bool can_b = out.grown[side_index(b)] < config_.deltaD;
        if (!can_a && !can_b)
            return false;
        Side pick;
        if (can_a && can_b) {
            pick = (state.defectsInNextLayer(b) < state.defectsInNextLayer(a))
                       ? b
                       : a;
        } else {
            pick = can_a ? a : b;
        }
        state.grow(pick);
        out.grown[side_index(pick)] += 1;
        out.trace.add({std::string("PatchQ_ADD layer ") + sideName(pick),
                       0, static_cast<int>(state.dz), 0, 0});
        return true;
    };

    const auto target = static_cast<size_t>(config_.d);
    bool progress = true;
    while (progress && (out.result.distX < target ||
                        out.result.distZ < target)) {
        progress = false;
        if (out.result.distX < target)
            progress |= grow_axis(Side::East, Side::West);
        if (out.result.distZ < target)
            progress |= grow_axis(Side::South, Side::North);
        if (progress)
            out.result = state.build(nullptr);
    }
    if (out.totalGrown() > 0) {
        // Re-derive the instruction trace against the final footprint so
        // removal records are not duplicated across intermediate rebuilds.
        const DeformTrace add_records = out.trace;
        out.trace.clear();
        out.result = state.build(&out.trace);
        for (const auto &r : add_records.records())
            if (r.name.rfind("PatchQ_ADD", 0) == 0)
                out.trace.add(r);
    }
    out.restored = out.result.distX >= target && out.result.distZ >= target;
    return out;
}

} // namespace surf
