#include "core/instructions.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace surf {

namespace {

/** Erase one coordinate from a sorted support vector (no-op if absent). */
bool
eraseFromSupport(std::vector<Coord> &support, Coord q)
{
    auto it = std::lower_bound(support.begin(), support.end(), q);
    if (it == support.end() || *it != q)
        return false;
    support.erase(it);
    return true;
}

} // namespace

int
checkAt(const CodePatch &patch, Coord a)
{
    const auto &checks = patch.checks();
    for (size_t i = 0; i < checks.size(); ++i)
        if (checks[i].ancilla && *checks[i].ancilla == a)
            return static_cast<int>(i);
    return -1;
}

bool
isInteriorData(const CodePatch &patch, Coord q)
{
    if (!patch.hasData(q))
        return false;
    return q.x > patch.xMin() && q.x < patch.xMax() && q.y > patch.yMin() &&
           q.y < patch.yMax();
}

bool
isInteriorSyndrome(const CodePatch &patch, Coord a)
{
    if (checkAt(patch, a) < 0)
        return false;
    return a.x > patch.xMin() && a.x < patch.xMax() && a.y > patch.yMin() &&
           a.y < patch.yMax();
}

void
dataQRm(CodePatch &patch, Coord q, DeformTrace *trace)
{
    SURF_ASSERT(patch.hasData(q), "DataQ_RM on dead qubit ", q.str());
    auto &checks = patch.mutableChecks();
    std::vector<bool> dead(checks.size(), false);
    int converted = 0;
    for (size_t i = 0; i < checks.size(); ++i) {
        if (!eraseFromSupport(checks[i].support, q))
            continue;
        ++converted;
        checks[i].role = CheckRole::Gauge;
        if (checks[i].support.empty())
            dead[i] = true;
    }
    patch.compactChecks(dead);
    patch.removeData(q);
    if (trace) {
        // Paper fig. 6a: four S2G (introducing X0/Z0 partners) followed by
        // four G2G multiplications separating q from the code.
        trace->add({"DataQ_RM " + q.str(), converted, 0, 0, converted});
    }
}

void
syndromeQRm(CodePatch &patch, Coord a, DeformTrace *trace)
{
    const int idx = checkAt(patch, a);
    SURF_ASSERT(idx >= 0, "SyndromeQ_RM: no check at ", a.str());
    auto &checks = patch.mutableChecks();
    const PauliType t = checks[idx].type;
    const std::vector<Coord> support = checks[idx].support;

    // Opposite-type checks overlapping the lost check become gauges
    // (their region product is the enclosing super-stabilizer).
    int converted = 0;
    for (auto &c : checks) {
        if (c.type == t)
            continue;
        bool touches = false;
        for (const Coord &q : support)
            if (c.contains(q)) {
                touches = true;
                break;
            }
        if (touches && c.role != CheckRole::Gauge) {
            c.role = CheckRole::Gauge;
            ++converted;
        }
    }
    // Weight-1 directly-measured gauges reconstruct the lost stabilizer.
    for (const Coord &q : support) {
        bool exists = false;
        for (const auto &c : checks)
            if (c.role == CheckRole::Gauge && c.type == t &&
                c.support.size() == 1 && c.support[0] == q) {
                exists = true;
                break;
            }
        if (exists)
            continue;
        Check g;
        g.type = t;
        g.support = {q};
        g.ancilla = std::nullopt;
        g.role = CheckRole::Gauge;
        patch.addCheck(std::move(g));
    }
    std::vector<bool> dead(patch.checks().size(), false);
    dead[static_cast<size_t>(idx)] = true;
    patch.compactChecks(dead);
    if (trace)
        trace->add({"SyndromeQ_RM " + a.str(), converted, 0, 0, 0});
}

std::vector<Coord>
pinData(CodePatch &patch, Coord q, PauliType fix, DeformTrace *trace)
{
    SURF_ASSERT(patch.hasData(q), "pin on dead qubit ", q.str());
    std::vector<Coord> removed;
    std::deque<std::pair<Coord, PauliType>> worklist{{q, fix}};
    int n_s2g = 0, n_g2s = 0, n_s2s = 0;

    while (!worklist.empty()) {
        const auto [r, t] = worklist.front();
        worklist.pop_front();
        if (!patch.hasData(r))
            continue;
        ++n_g2s; // fixing P_r^t as a stabilizer

        auto &checks = patch.mutableChecks();
        std::vector<bool> dead(checks.size(), false);

        // Same-type checks simply shrink (multiplication by the pin).
        for (auto &c : checks) {
            if (c.type != t)
                continue;
            if (eraseFromSupport(c.support, r) && c.support.empty())
                dead[&c - checks.data()] = true;
        }
        // Opposite-type checks anti-commute with the pin: merge in pairs;
        // an odd leftover is deleted outright.
        std::vector<int> opp;
        for (size_t i = 0; i < checks.size(); ++i)
            if (checks[i].type != t && checks[i].contains(r))
                opp.push_back(static_cast<int>(i));
        ++n_s2g;
        for (size_t i = 0; i + 1 < opp.size(); i += 2) {
            Check &keep = checks[static_cast<size_t>(opp[i])];
            Check &gone = checks[static_cast<size_t>(opp[i + 1])];
            keep.support = supportXor(keep.support, gone.support);
            if (gone.role == CheckRole::Gauge)
                keep.role = CheckRole::Gauge;
            if (!keep.ancilla)
                keep.ancilla = gone.ancilla;
            dead[static_cast<size_t>(opp[i + 1])] = true;
            if (keep.support.empty())
                dead[static_cast<size_t>(opp[i])] = true;
            ++n_s2s;
        }
        if (opp.size() % 2 == 1)
            dead[static_cast<size_t>(opp.back())] = true;

        patch.compactChecks(dead);
        patch.removeData(r);
        removed.push_back(r);

        // Cascade: a weight-1 *stabilizer* check pins its qubit, which is
        // then disabled as well (paper fig. 8 "disabled" qubits).
        bool found = true;
        while (found) {
            found = false;
            for (size_t i = 0; i < patch.checks().size(); ++i) {
                const Check &c = patch.checks()[i];
                if (c.role == CheckRole::Stabilizer &&
                    c.support.size() == 1) {
                    std::vector<bool> kill(patch.checks().size(), false);
                    kill[i] = true;
                    const Coord s = c.support[0];
                    const PauliType ct = c.type;
                    patch.compactChecks(kill);
                    worklist.emplace_back(s, ct);
                    found = true;
                    break; // container changed; rescan from the start
                }
            }
        }
    }
    if (trace) {
        trace->add({"PatchQ_RM " + q.str() + " fix=" +
                        std::string(1, typeChar(fix)),
                    n_s2g, n_g2s, n_s2s, 0});
    }
    return removed;
}

std::vector<Coord>
removeBoundaryCheck(CodePatch &patch, Coord a, Coord pin_choice,
                    DeformTrace *trace)
{
    const int idx = checkAt(patch, a);
    if (idx < 0)
        return {};
    const PauliType t = patch.checks()[static_cast<size_t>(idx)].type;
    SURF_ASSERT(
        patch.checks()[static_cast<size_t>(idx)].contains(pin_choice),
        "pin choice ", pin_choice.str(), " outside check at ", a.str());
    std::vector<bool> dead(patch.checks().size(), false);
    dead[static_cast<size_t>(idx)] = true;
    patch.compactChecks(dead);
    if (trace)
        trace->add({"PatchQ_RM syndrome " + a.str(), 1, 0, 0, 0});
    return pinData(patch, pin_choice, oppositeType(t), trace);
}

} // namespace surf
