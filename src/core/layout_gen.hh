/**
 * @file
 * The compile-time Qubit Layout Generator (paper Sec. VI). Given the
 * program profile and the dynamic-defect error model it chooses the code
 * distance d and the extra inter-space Delta_d such that the probability
 * of a communication channel being blocked by code enlargement stays
 * below alpha_block (paper Eq. 1), and accounts the total physical qubits
 * of the resulting layout.
 */

#ifndef SURF_CORE_LAYOUT_GEN_HH
#define SURF_CORE_LAYOUT_GEN_HH

#include <cstddef>
#include <cstdint>

#include "util/status.hh"

namespace surf {

/**
 * Dynamic defect model parameters, following the paper's Sec. VII-A
 * numbers derived from the cosmic-ray experiments of McEwen et al.:
 * one event per 26 qubits per 10 s, 24 affected qubits per event, a
 * defective region of diameter ~4 data qubits, lasting 25 ms
 * (~25,000 QEC cycles at 1 us per cycle).
 */
struct DefectModelParams
{
    double eventRatePerQubitSec = 0.1 / 26.0; ///< rho (Poisson rate)
    double durationSec = 25e-3;               ///< T
    int regionQubits = 24;                    ///< affected qubits per event
    int regionDiameter = 4;                   ///< D (max defect size)
    double cycleTimeSec = 1e-6;               ///< QEC cycle wall time

    /** Expected defect events on a distance-d patch during one
     *  persistence window: lambda = 2 d^2 rho T. */
    double lambdaForPatch(int d) const;

    /** Event rate per QEC cycle for a single physical qubit. */
    double
    eventRatePerQubitCycle() const
    {
        return eventRatePerQubitSec * cycleTimeSec;
    }

    /** Defect persistence in QEC cycles. */
    uint64_t
    durationCycles() const
    {
        return static_cast<uint64_t>(durationSec / cycleTimeSec);
    }
};

/** Inter-space scheme of a layout (who occupies the channel). */
enum class InterspaceScheme : uint8_t
{
    LatticeSurgery,  ///< plain d inter-space, no defect headroom
    Q3de,            ///< d inter-space, 2x enlargement blocks channels
    Q3deRevised,     ///< 2d inter-space so 2x enlargement never blocks
    SurfDeformer,    ///< d + Delta_d inter-space (paper fig. 10a)
};

/** Output of the layout generator. */
struct LayoutPlan
{
    int numLogical = 0;     ///< logical qubits incl. ancilla/factory tiles
    int d = 0;              ///< code distance
    int deltaD = 0;         ///< extra inter-space (0 for non-SD schemes)
    InterspaceScheme scheme = InterspaceScheme::SurfDeformer;
    double pBlock = 0.0;    ///< achieved channel-block probability

    int gridCols = 0;
    int gridRows = 0;
    size_t physicalQubits = 0;
};

/** The compile-time layout generator. */
class LayoutGenerator
{
  public:
    explicit LayoutGenerator(DefectModelParams model) : model_(model) {}

    const DefectModelParams &model() const { return model_; }

    /**
     * Probability that mitigating the defects of one persistence window
     * overflows the extra inter-space delta_d (paper Eq. 1):
     * p_block = 1 - sum_{k <= floor(delta_d / D)} Poisson(lambda, k).
     */
    double blockProbability(int d, int delta_d) const;

    /**
     * Smallest Delta_d with blockProbability <= alpha_block. When no
     * Delta_d below 64 defect regions satisfies the target (the defect
     * rate swamps the patch), returns INVALID_ARGUMENT rather than
     * aborting — alpha_block is user input.
     */
    StatusOr<int> chooseDeltaDChecked(int d, double alpha_block = 0.01) const;

    /** chooseDeltaDChecked; dies with a fatal error when unsatisfiable
     *  (legacy entry — new callers want the checked variant). */
    int chooseDeltaD(int d, double alpha_block = 0.01) const;

    /**
     * Assemble the full layout plan: logical tiles on a near-square grid
     * with the scheme's inter-space, physical qubits = 2 per lattice site
     * over the enclosed area (data + measurement qubits). Rejects
     * num_logical < 1, d < 3, alpha_block outside (0, 1] and an
     * unsatisfiable Delta_d search as INVALID_ARGUMENT.
     */
    StatusOr<LayoutPlan> planChecked(int num_logical, int d,
                                     InterspaceScheme scheme,
                                     double alpha_block = 0.01) const;

    /** planChecked; dies with a fatal error on invalid input (legacy
     *  entry — new callers want the checked variant). */
    LayoutPlan plan(int num_logical, int d, InterspaceScheme scheme,
                    double alpha_block = 0.01) const;

    /** Inter-space width in data-qubit units for a scheme. */
    static int interspace(int d, int delta_d, InterspaceScheme scheme);

  private:
    DefectModelParams model_;
};

} // namespace surf

#endif // SURF_CORE_LAYOUT_GEN_HH
