/**
 * @file
 * The Code Deformation Unit (paper Sec. V): before every QEC cycle it
 * receives the current defect information and produces the deformed code,
 * running the Defect Removal subroutine (Alg. 1) followed by the Adaptive
 * Enlargement subroutine (Alg. 2) capped by the layout's extra inter-space
 * Delta_d.
 */

#ifndef SURF_CORE_DEFORMATION_UNIT_HH
#define SURF_CORE_DEFORMATION_UNIT_HH

#include <array>
#include <set>

#include "core/deform_state.hh"

namespace surf {

/** Configuration of a deformation unit instance. */
struct DeformConfig
{
    int d = 0;                 ///< target code distance to maintain
    int deltaD = 0;            ///< enlargement cap per side (layout Delta_d)
    Coord origin{0, 0};        ///< patch origin
    RemovalPolicy policy = RemovalPolicy::Balanced;
    bool enlargement = true;   ///< run Alg. 2 (off for removal-only ASC-S)
    bool syndromeViaDataRemoval = false; ///< ASC-S syndrome handling
};

/** Result of one deformation pass. */
struct DeformOutcome
{
    DeformedPatch result;
    std::array<int, 4> grown{0, 0, 0, 0}; ///< layers added per Side
    bool restored = false; ///< distances back to at least d in both types
    DeformTrace trace;

    int
    totalGrown() const
    {
        return grown[0] + grown[1] + grown[2] + grown[3];
    }
};

/**
 * Runtime code deformation unit for a single logical qubit patch.
 *
 * apply() is a pure function of the active defect set: the physical
 * device would execute the incremental instruction stream, but the
 * resulting code (and its instruction trace) is what this returns. When
 * the defect set shrinks (defects subside), the code shrinks back toward
 * its original footprint automatically.
 */
class DeformationUnit
{
  public:
    explicit DeformationUnit(DeformConfig config) : config_(config) {}

    const DeformConfig &config() const { return config_; }

    /**
     * Run Alg. 1 (removal) then Alg. 2 (adaptive enlargement) for the
     * given defective sites (absolute lattice coordinates).
     */
    DeformOutcome apply(const std::set<Coord> &defects) const;

  private:
    DeformConfig config_;
};

} // namespace surf

#endif // SURF_CORE_DEFORMATION_UNIT_HH
