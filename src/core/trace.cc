#include "core/trace.hh"

#include <sstream>

namespace surf {

InstructionRecord
DeformTrace::totals() const
{
    InstructionRecord t;
    t.name = "totals";
    for (const auto &r : records_) {
        t.s2g += r.s2g;
        t.g2s += r.g2s;
        t.s2s += r.s2s;
        t.g2g += r.g2g;
    }
    return t;
}

std::string
DeformTrace::str() const
{
    std::ostringstream oss;
    for (const auto &r : records_) {
        oss << r.name << "  [S2G=" << r.s2g << " G2S=" << r.g2s
            << " S2S=" << r.s2s << " G2G=" << r.g2g << "]\n";
    }
    const auto t = totals();
    oss << "total: " << records_.size() << " instructions, S2G=" << t.s2g
        << " G2S=" << t.g2s << " S2S=" << t.s2s << " G2G=" << t.g2g << "\n";
    return oss.str();
}

} // namespace surf
