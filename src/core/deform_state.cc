#include "core/deform_state.hh"

#include <algorithm>

#include "core/instructions.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"
#include "util/logging.hh"

namespace surf {

namespace {

/** Distances of a candidate patch (copy; supers recomputed first). */
std::pair<size_t, size_t>
candidateDistances(CodePatch p)
{
    p.recomputeSupers();
    return {graphDistance(p, PauliType::X).distance,
            graphDistance(p, PauliType::Z).distance};
}

/** Ranking tuple for boundary-removal candidates. */
struct CandidateScore
{
    size_t min_dist;
    size_t balance_penalty; // |dX - dZ|
    size_t removed;

    /** Surf-Deformer: maximize min distance, then balance, then thrift. */
    bool
    betterBalanced(const CandidateScore &o) const
    {
        if (min_dist != o.min_dist)
            return min_dist > o.min_dist;
        if (balance_penalty != o.balance_penalty)
            return balance_penalty < o.balance_penalty;
        return removed < o.removed;
    }

    /** ASC-S: minimize the number of disabled qubits only. */
    bool
    betterMinimalDisable(const CandidateScore &o) const
    {
        return removed < o.removed;
    }
};

} // namespace

void
DeformState::grow(Side side)
{
    switch (side) {
      case Side::North:
        origin.y -= 2;
        dz += 1;
        break;
      case Side::South:
        dz += 1;
        break;
      case Side::West:
        origin.x -= 2;
        dx += 1;
        break;
      case Side::East:
        dx += 1;
        break;
    }
}

int
DeformState::defectsInNextLayer(Side side) const
{
    // Band of lattice sites the prospective layer would occupy.
    int x0 = origin.x, x1 = origin.x + 2 * dx;
    int y0 = origin.y, y1 = origin.y + 2 * dz;
    switch (side) {
      case Side::North:
        y1 = y0;
        y0 -= 2;
        break;
      case Side::South:
        y0 = y1;
        y1 += 2;
        break;
      case Side::West:
        x1 = x0;
        x0 -= 2;
        break;
      case Side::East:
        x0 = x1;
        x1 += 2;
        break;
    }
    int count = 0;
    for (const Coord &s : defects)
        if (s.x >= x0 && s.x <= x1 && s.y >= y0 && s.y <= y1)
            ++count;
    return count;
}

DeformedPatch
DeformState::build(DeformTrace *trace) const
{
    DeformedPatch out;
    CodePatch p = rectangularPatch(dx, dz, origin);

    // Partition the in-footprint defects by site kind and location.
    std::vector<Coord> interior_syn, boundary_syn, interior_data;
    std::set<Coord> boundary_data;
    for (const Coord &s : defects) {
        if (s.isDataSite()) {
            if (!p.hasData(s))
                continue;
            if (isInteriorData(p, s))
                interior_data.push_back(s);
            else
                boundary_data.insert(s);
        } else if (s.isCheckSite()) {
            if (checkAt(p, s) < 0)
                continue;
            if (isInteriorSyndrome(p, s))
                interior_syn.push_back(s);
            else
                boundary_syn.push_back(s);
        }
    }

    // --- Defect Removal subroutine (paper Alg. 1) -----------------------
    // Interior syndrome defects.
    for (const Coord &a : interior_syn) {
        const int idx = checkAt(p, a);
        if (idx < 0)
            continue; // consumed by an earlier removal
        if (syndromeViaDataRemoval) {
            // ASC-S: remove all adjacent data qubits with DataQ_RM even
            // though they are intact (paper Sec. V-A comparison).
            const auto support = p.checks()[static_cast<size_t>(idx)].support;
            for (const Coord &q : support) {
                if (!p.hasData(q))
                    continue;
                if (isInteriorData(p, q))
                    dataQRm(p, q, trace);
                else
                    boundary_data.insert(q);
            }
            // The defective ancilla's check may survive with shrunk
            // support; drop it if it is still present.
            if (const int left = checkAt(p, a); left >= 0) {
                std::vector<bool> dead(p.checks().size(), false);
                dead[static_cast<size_t>(left)] = true;
                p.compactChecks(dead);
            }
        } else {
            syndromeQRm(p, a, trace);
        }
    }
    // Interior data defects (commute with syndrome removals).
    for (const Coord &q : interior_data)
        if (p.hasData(q))
            dataQRm(p, q, trace);

    // Boundary syndrome defects: delete the check, pin one support qubit.
    for (const Coord &a : boundary_syn) {
        const int idx = checkAt(p, a);
        if (idx < 0)
            continue;
        const auto support = p.checks()[static_cast<size_t>(idx)].support;
        const CandidateScore worst{0, ~size_t{0}, ~size_t{0}};
        CandidateScore best = worst;
        Coord best_pin = support.front();
        for (const Coord &pin : support) {
            CodePatch cand = p;
            DeformTrace scratch;
            const auto removed = removeBoundaryCheck(cand, a, pin, &scratch);
            const auto [dxc, dzc] = candidateDistances(cand);
            const CandidateScore score{
                std::min(dxc, dzc),
                dxc > dzc ? dxc - dzc : dzc - dxc,
                removed.size()};
            const bool better = (policy == RemovalPolicy::Balanced)
                                    ? score.betterBalanced(best)
                                    : score.betterMinimalDisable(best);
            if (best.removed == worst.removed || better) {
                best = score;
                best_pin = pin;
            }
        }
        removeBoundaryCheck(p, a, best_pin, trace);
    }

    // Boundary data defects: PatchQ_RM with the policy's fix choice.
    for (const Coord &q : boundary_data) {
        if (!p.hasData(q))
            continue;
        const CandidateScore worst{0, ~size_t{0}, ~size_t{0}};
        CandidateScore best = worst;
        PauliType best_fix = PauliType::Z;
        // ASC-S's deterministic preference (paper fig. 8a) is encoded by
        // evaluating Z first and breaking ties toward the earlier entry.
        for (const PauliType fix : {PauliType::Z, PauliType::X}) {
            CodePatch cand = p;
            DeformTrace scratch;
            const auto removed = pinData(cand, q, fix, &scratch);
            const auto [dxc, dzc] = candidateDistances(cand);
            const CandidateScore score{
                std::min(dxc, dzc),
                dxc > dzc ? dxc - dzc : dzc - dxc,
                removed.size()};
            const bool better = (policy == RemovalPolicy::Balanced)
                                    ? score.betterBalanced(best)
                                    : score.betterMinimalDisable(best);
            if (best.removed == worst.removed || better) {
                best = score;
                best_fix = fix;
            }
        }
        pinData(p, q, best_fix, trace);
    }

    p.recomputeSupers();
    out.distX = graphDistance(p, PauliType::X).distance;
    out.distZ = graphDistance(p, PauliType::Z).distance;
    out.alive = out.distX > 0 && out.distZ > 0;
    if (out.alive)
        refreshLogicals(p);
    out.patch = std::move(p);
    return out;
}

} // namespace surf
