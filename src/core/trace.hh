/**
 * @file
 * Instruction trace for code deformations. Each Surf-Deformer instruction
 * is a CISC-style composition of the four atomic gauge transformations
 * (paper Sec. II-C); the trace records the instruction stream and the
 * atomic-operation totals so experiments can report deformation cost.
 */

#ifndef SURF_CORE_TRACE_HH
#define SURF_CORE_TRACE_HH

#include <string>
#include <vector>

namespace surf {

/** Atomic gauge transformation counts for one instruction. */
struct InstructionRecord
{
    std::string name;   ///< e.g. "DataQ_RM (3,5)"
    int s2g = 0;        ///< stabilizer-to-gauge conversions
    int g2s = 0;        ///< gauge-to-stabilizer conversions
    int s2s = 0;        ///< stabilizer products
    int g2g = 0;        ///< gauge products
};

/** Ordered record of the instructions applied during a deformation. */
class DeformTrace
{
  public:
    void
    add(InstructionRecord record)
    {
        records_.push_back(std::move(record));
    }

    const std::vector<InstructionRecord> &records() const { return records_; }
    size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Summed atomic-operation counts over the whole trace. */
    InstructionRecord totals() const;

    /** Multi-line human-readable listing. */
    std::string str() const;

  private:
    std::vector<InstructionRecord> records_;
};

} // namespace surf

#endif // SURF_CORE_TRACE_HH
