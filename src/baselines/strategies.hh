/**
 * @file
 * The defect-mitigation strategies compared throughout the paper's
 * evaluation, under one interface:
 *
 *  - LatticeSurgery: no mitigation at all (defects stay, distance rots);
 *  - Ascs: the Adaptive Surface Code (removal-only, uniform DataQ_RM
 *    treatment of syndrome defects, minimal-disable boundary policy);
 *  - Q3de: fixed 2x enlargement on a fixed d-interspace layout, no
 *    removal (defects persist inside the enlarged code);
 *  - Q3deRevised: Q3DE with 2d interspace so channels never block;
 *  - SurfDeformer: adaptive removal + adaptive enlargement capped by the
 *    layout's Delta_d.
 */

#ifndef SURF_BASELINES_STRATEGIES_HH
#define SURF_BASELINES_STRATEGIES_HH

#include <set>
#include <string>

#include "core/deformation_unit.hh"
#include "core/layout_gen.hh"
#include "util/status.hh"

namespace surf {

/** Strategy identifiers used across the benchmark harnesses. */
enum class Strategy : uint8_t
{
    LatticeSurgery,
    Ascs,
    Q3de,
    Q3deRevised,
    SurfDeformer,
};

const char *strategyName(Strategy s);

/** Layout inter-space scheme of a strategy. */
InterspaceScheme schemeOf(Strategy s);

/** Outcome of applying a strategy to one defect configuration. */
struct StrategyOutcome
{
    /** Resulting code distances (what protects the logical qubit). */
    size_t distX = 0;
    size_t distZ = 0;
    size_t minDist() const { return distX < distZ ? distX : distZ; }
    /** Residual defective sites left inside the code (Q3DE / LS). */
    std::set<Coord> residualDefects;
    /** Layers grown (0 for removal-only strategies). */
    int grownLayers = 0;
    /** The deformed patch (for simulation-backed experiments). */
    CodePatch patch;
    bool alive = false;
};

/**
 * Apply a strategy to a distance-d patch with the given defective sites,
 * with structured error propagation: an unknown strategy value, a code
 * distance outside [2, 512] or a negative delta_d come back as
 * INVALID_ARGUMENT instead of aborting the process.
 *
 * @param delta_d the Surf-Deformer enlargement cap (ignored by others)
 */
StatusOr<StrategyOutcome> applyStrategyChecked(Strategy s, int d, int delta_d,
                                               const std::set<Coord> &defects);

/** applyStrategyChecked; dies with a fatal error on invalid input
 *  (legacy entry — new callers want the checked variant). */
StrategyOutcome applyStrategy(Strategy s, int d, int delta_d,
                              const std::set<Coord> &defects);

} // namespace surf

#endif // SURF_BASELINES_STRATEGIES_HH
