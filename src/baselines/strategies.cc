#include "baselines/strategies.hh"

#include "lattice/distance.hh"
#include "lattice/rotated.hh"
#include "util/logging.hh"

namespace surf {

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::LatticeSurgery: return "Lattice Surgery";
      case Strategy::Ascs:           return "ASC-S";
      case Strategy::Q3de:           return "Q3DE";
      case Strategy::Q3deRevised:    return "Q3DE*";
      case Strategy::SurfDeformer:   return "Surf-Deformer";
    }
    return "?";
}

InterspaceScheme
schemeOf(Strategy s)
{
    switch (s) {
      case Strategy::LatticeSurgery: return InterspaceScheme::LatticeSurgery;
      case Strategy::Ascs:           return InterspaceScheme::LatticeSurgery;
      case Strategy::Q3de:           return InterspaceScheme::Q3de;
      case Strategy::Q3deRevised:    return InterspaceScheme::Q3deRevised;
      case Strategy::SurfDeformer:   return InterspaceScheme::SurfDeformer;
    }
    return InterspaceScheme::LatticeSurgery;
}

StatusOr<StrategyOutcome>
applyStrategyChecked(Strategy s, int d, int delta_d,
                     const std::set<Coord> &defects)
{
    if (d < 2 || d > 512)
        return Status::invalidArgument(
            "applyStrategy: code distance d=" + std::to_string(d) +
            " out of range [2, 512]");
    if (delta_d < 0)
        return Status::invalidArgument(
            "applyStrategy: delta_d must be >= 0, got " +
            std::to_string(delta_d));
    StrategyOutcome out;
    switch (s) {
      case Strategy::LatticeSurgery:
      case Strategy::Q3de:
      case Strategy::Q3deRevised: {
        // No removal: defective qubits stay inside the code. The residual
        // defect set saturates local error rates; the structural distance
        // of the patch is unchanged (Q3DE additionally doubles the patch,
        // handled by the caller through the layout scheme / blocking).
        CodePatch p = squarePatch(d);
        if (s != Strategy::LatticeSurgery && !defects.empty()) {
            // Q3DE: fixed enlargement to 2d x 2d regardless of pattern.
            p = rectangularPatch(2 * d, 2 * d);
            out.grownLayers = 2 * d;
        }
        for (const Coord &c : defects)
            if (c.x >= p.xMin() - 1 && c.x <= p.xMax() + 1 &&
                c.y >= p.yMin() - 1 && c.y <= p.yMax() + 1)
                out.residualDefects.insert(c);
        out.distX = graphDistance(p, PauliType::X).distance;
        out.distZ = graphDistance(p, PauliType::Z).distance;
        out.alive = out.distX > 0 && out.distZ > 0;
        out.patch = std::move(p);
        return out;
      }
      case Strategy::Ascs: {
        DeformConfig cfg;
        cfg.d = d;
        cfg.deltaD = 0;
        cfg.policy = RemovalPolicy::MinimalDisable;
        cfg.enlargement = false;
        cfg.syndromeViaDataRemoval = true;
        const auto res = DeformationUnit(cfg).apply(defects);
        out.distX = res.result.distX;
        out.distZ = res.result.distZ;
        out.alive = res.result.alive;
        out.grownLayers = 0;
        out.patch = res.result.patch;
        return out;
      }
      case Strategy::SurfDeformer: {
        DeformConfig cfg;
        cfg.d = d;
        cfg.deltaD = delta_d;
        cfg.policy = RemovalPolicy::Balanced;
        cfg.enlargement = true;
        const auto res = DeformationUnit(cfg).apply(defects);
        out.distX = res.result.distX;
        out.distZ = res.result.distZ;
        out.alive = res.result.alive;
        out.grownLayers = res.totalGrown();
        out.patch = res.result.patch;
        return out;
      }
    }
    return Status::invalidArgument(
        "applyStrategy: unknown Strategy value " +
        std::to_string(static_cast<int>(s)));
}

StrategyOutcome
applyStrategy(Strategy s, int d, int delta_d, const std::set<Coord> &defects)
{
    StatusOr<StrategyOutcome> out = applyStrategyChecked(s, d, delta_d,
                                                         defects);
    if (!out.ok())
        SURF_FATAL("applyStrategy: ", out.status().str());
    return std::move(out.value());
}

} // namespace surf
