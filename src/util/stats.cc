#include "util/stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace surf {

BinomialEstimate
estimateBinomial(uint64_t successes, uint64_t trials)
{
    SURF_ASSERT(trials > 0);
    const double p = static_cast<double>(successes) / trials;
    const double se = std::sqrt(std::max(p * (1.0 - p), 0.0) / trials);
    return {p, se};
}

double
perRoundRate(double p_shot, uint64_t rounds)
{
    SURF_ASSERT(rounds > 0);
    if (p_shot >= 1.0)
        return 1.0;
    if (p_shot <= 0.0)
        return 0.0;
    return 1.0 - std::pow(1.0 - p_shot, 1.0 / static_cast<double>(rounds));
}

std::pair<double, double>
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    SURF_ASSERT(xs.size() == ys.size() && xs.size() >= 2);
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    SURF_ASSERT(std::abs(denom) > 1e-12, "degenerate x values in linearFit");
    const double b = (n * sxy - sx * sy) / denom;
    const double a = (sy - b * sx) / n;
    return {a, b};
}

double
poissonPmf(double lambda, unsigned k)
{
    SURF_ASSERT(lambda >= 0.0);
    // Work in log space for robustness at large k / lambda.
    double log_p = -lambda + k * std::log(lambda > 0 ? lambda : 1e-300);
    for (unsigned i = 2; i <= k; ++i)
        log_p -= std::log(static_cast<double>(i));
    return std::exp(log_p);
}

double
poissonTail(double lambda, unsigned k)
{
    double cdf = 0.0;
    for (unsigned i = 0; i <= k; ++i)
        cdf += poissonPmf(lambda, i);
    return std::max(0.0, 1.0 - cdf);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
sampleStdDev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

} // namespace surf
