/**
 * @file
 * Structured error propagation for user-facing entry points. The repo's
 * historical error discipline is gem5-style: SURF_PANIC for internal
 * bugs (abort), SURF_FATAL for user errors (exit). That is fine for a
 * batch CLI but hostile to a long-running service: a malformed scenario
 * config, a corrupted defect stream or an inconsistent epoch plan must
 * come back to the caller as a diagnosable value, not a process exit.
 *
 * Status is a tiny absl-shaped result type: a code plus a human-readable
 * message. StatusOr<T> carries either a value or a non-OK Status.
 * StatusError wraps a Status in an exception for the layers where
 * threading a return value is impractical (deep inside cache build
 * callbacks, worker-pool tasks); the checked entry points catch it at
 * the boundary and hand the Status back. SURF_PANIC remains the right
 * tool for genuine invariant violations.
 */

#ifndef SURF_UTIL_STATUS_HH
#define SURF_UTIL_STATUS_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace surf {

/** Broad error category (absl-compatible subset). */
enum class StatusCode : uint8_t
{
    kOk = 0,
    kInvalidArgument,    ///< malformed user input (config, plan string)
    kFailedPrecondition, ///< structurally inconsistent state (epoch plan)
    kDataLoss,           ///< truncated / corrupted input stream
    kInternal,           ///< invariant violation surfaced as a value
    kCorruptSnapshot,    ///< persisted state failed validation (torn
                         ///< write, CRC mismatch, version skew, semantic
                         ///< inconsistency) — recover via cold rebuild
    kAborted,            ///< run interrupted before completion (e.g. the
                         ///< fault harness's simulated crash); persisted
                         ///< checkpoints allow a later resume
};

/** Error-or-OK result of a checked operation. */
class Status
{
  public:
    Status() = default; ///< OK
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status okStatus() { return Status(); }
    static Status
    invalidArgument(std::string msg)
    {
        return {StatusCode::kInvalidArgument, std::move(msg)};
    }
    static Status
    failedPrecondition(std::string msg)
    {
        return {StatusCode::kFailedPrecondition, std::move(msg)};
    }
    static Status
    dataLoss(std::string msg)
    {
        return {StatusCode::kDataLoss, std::move(msg)};
    }
    static Status
    internal(std::string msg)
    {
        return {StatusCode::kInternal, std::move(msg)};
    }
    static Status
    corruptSnapshot(std::string msg)
    {
        return {StatusCode::kCorruptSnapshot, std::move(msg)};
    }
    static Status
    aborted(std::string msg)
    {
        return {StatusCode::kAborted, std::move(msg)};
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "<code>: <message>". */
    std::string
    str() const
    {
        if (ok())
            return "OK";
        return std::string(codeName(code_)) + ": " + message_;
    }

    static const char *
    codeName(StatusCode c)
    {
        switch (c) {
          case StatusCode::kOk:
            return "OK";
          case StatusCode::kInvalidArgument:
            return "INVALID_ARGUMENT";
          case StatusCode::kFailedPrecondition:
            return "FAILED_PRECONDITION";
          case StatusCode::kDataLoss:
            return "DATA_LOSS";
          case StatusCode::kCorruptSnapshot:
            return "CORRUPT_SNAPSHOT";
          case StatusCode::kAborted:
            return "ABORTED";
          case StatusCode::kInternal:
          default:
            return "INTERNAL";
        }
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/** Exception carrier for Status across callback / worker boundaries. */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.str()), status_(std::move(status))
    {
    }
    const Status &status() const { return status_; }

  private:
    Status status_;
};

/** Value-or-Status. Accessing value() on a non-OK result is a bug. */
template <typename T>
class StatusOr
{
  public:
    StatusOr(Status status) : status_(std::move(status)) {}
    StatusOr(T value) : value_(std::move(value)), has_value_(true) {}

    bool ok() const { return has_value_; }
    const Status &status() const { return status_; }

    T &
    value()
    {
        if (!has_value_)
            throw StatusError(status_);
        return value_;
    }
    const T &
    value() const
    {
        if (!has_value_)
            throw StatusError(status_);
        return value_;
    }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    T value_{};
    bool has_value_ = false;
};

} // namespace surf

#endif // SURF_UTIL_STATUS_HH
