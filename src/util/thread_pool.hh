/**
 * @file
 * Minimal persistent worker pool for sharded Monte-Carlo decoding.
 *
 * Workers are spawned once and reused across parallelFor() calls, so a
 * batch loop pays no thread-creation cost in steady state. Tasks are
 * pulled from a shared atomic counter (dynamic load balancing); every
 * callback receives the executing worker's index so callers can keep
 * per-worker scratch state without locking. The calling thread
 * participates as worker 0, which makes a single-worker pool run inline
 * with zero synchronisation overhead.
 *
 * A task that throws no longer terminates the process: the first
 * exception is captured, the remaining tasks of that job are abandoned
 * (workers stop claiming), and parallelFor() — the job's completion
 * wait — rethrows it on the calling thread once every worker has
 * drained. Later jobs on the same pool run normally.
 */

#ifndef SURF_UTIL_THREAD_POOL_HH
#define SURF_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace surf {

/** Persistent thread pool with indexed workers. */
class ThreadPool
{
  public:
    /** Task body: fn(task_index, worker_index), worker_index < size(). */
    using TaskFn = std::function<void(size_t, size_t)>;

    /**
     * @param workers total logical workers including the caller thread;
     *                0 picks hardwareThreads()
     */
    explicit ThreadPool(size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Logical worker count (background threads + the caller). */
    size_t size() const { return threads_.size() + 1; }

    /**
     * Run fn(t, w) for every task t in [0, num_tasks); blocks until all
     * tasks finished. Tasks are claimed dynamically, so per-task cost may
     * vary freely; determinism is the caller's job (e.g. per-worker
     * accumulators merged in a fixed order).
     *
     * If any task throws, the first captured exception is rethrown here
     * after all workers have stopped; tasks not yet claimed at that
     * point are skipped (the job's results are void anyway).
     */
    void parallelFor(size_t num_tasks, const TaskFn &fn);

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static size_t hardwareThreads();

  private:
    void workerLoop(size_t worker_index);
    /** Claim-and-run tasks until the shared counter is exhausted. */
    void drain(const TaskFn &fn, size_t num_tasks, size_t worker_index);

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const TaskFn *job_ = nullptr; ///< current job (under mutex_)
    size_t job_tasks_ = 0;        ///< its task count (under mutex_)
    uint64_t epoch_ = 0;          ///< bumped per job (under mutex_)
    size_t draining_ = 0;         ///< workers inside drain (under mutex_)
    bool stop_ = false;
    std::atomic<size_t> next_task_{0};
    /** First exception thrown by a task of the current job (under
     *  mutex_); rethrown by parallelFor once the job has drained. */
    std::exception_ptr first_error_;
    /** Raised after a task throws: workers abandon unclaimed tasks. */
    std::atomic<bool> abort_{false};
};

} // namespace surf

#endif // SURF_UTIL_THREAD_POOL_HH
