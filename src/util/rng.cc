#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace surf {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &w : s_)
        w = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::below(uint64_t bound)
{
    SURF_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::geometricSkip(double p)
{
    if (p <= 0.0)
        return ~0ULL;
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t
Rng::poisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-lambda);
        uint64_t k = 0;
        double prod = uniform();
        while (prod > limit) {
            ++k;
            prod *= uniform();
        }
        return k;
    }
    // Normal approximation with continuity correction for large lambda.
    const double u1 = uniform(), u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                     std::cos(6.283185307179586 * u2);
    const double v = lambda + std::sqrt(lambda) * z + 0.5;
    return v < 0.0 ? 0 : static_cast<uint64_t>(v);
}

double
Rng::exponential(double rate)
{
    SURF_ASSERT(rate > 0.0);
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -std::log(u) / rate;
}

std::vector<uint32_t>
Rng::sampleWithoutReplacement(uint32_t n, uint32_t k)
{
    SURF_ASSERT(k <= n);
    // Partial Fisher-Yates over an index vector.
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i)
        idx[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
        uint32_t j = i + static_cast<uint32_t>(below(n - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

} // namespace surf
