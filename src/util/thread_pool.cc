#include "util/thread_pool.hh"

namespace surf {

size_t
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0)
        workers = hardwareThreads();
    threads_.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::drain(const TaskFn &fn, size_t num_tasks, size_t worker_index)
{
    for (;;) {
        if (abort_.load(std::memory_order_relaxed))
            return;
        const size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
        if (t >= num_tasks)
            return;
        try {
            fn(t, worker_index);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lk(mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            abort_.store(true, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::workerLoop(size_t worker_index)
{
    uint64_t seen = 0;
    for (;;) {
        const TaskFn *job = nullptr;
        size_t tasks = 0;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk, [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            job = job_;
            tasks = job_tasks_;
            ++draining_; // counted before the lock drops: parallelFor's
                         // completion wait can't slip past a live worker
        }
        if (job)
            drain(*job, tasks, worker_index);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--draining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t num_tasks, const TaskFn &fn)
{
    if (num_tasks == 0)
        return;
    if (threads_.empty() || num_tasks == 1) {
        // Inline execution: a throw propagates directly, which matches
        // the pooled contract (first exception, later tasks skipped).
        for (size_t t = 0; t < num_tasks; ++t)
            fn(t, 0);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_ = &fn;
        job_tasks_ = num_tasks;
        first_error_ = nullptr;
        abort_.store(false, std::memory_order_relaxed);
        next_task_.store(0, std::memory_order_relaxed);
        ++epoch_;
    }
    wake_.notify_all();
    drain(fn, num_tasks, 0); // the caller is worker 0
    // All tasks are claimed once the caller's drain returns; wait for the
    // workers still finishing their claimed tasks. A worker that wakes
    // after this returns finds the counter exhausted and claims nothing.
    std::unique_lock<std::mutex> lk(mutex_);
    done_.wait(lk, [&] { return draining_ == 0; });
    job_ = nullptr;
    if (first_error_) {
        std::exception_ptr e;
        std::swap(e, first_error_);
        lk.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace surf
