#include "util/deadline.hh"

#include <bit>
#include <cstdio>

namespace surf {

const char *
decodeStageName(DecodeStage stage)
{
    switch (stage) {
      case kStageBlossom:
        return "blossom";
      case kStageRows:
        return "rows";
      case kStageUnionFind:
      default:
        return "uf";
    }
}

void
LatencyHistogram::add(uint64_t ns)
{
    size_t b = static_cast<size_t>(std::bit_width(ns)); // 0 -> bucket 0
    if (b >= kBuckets)
        b = kBuckets - 1;
    ++buckets[b];
    ++samples;
    totalNs += ns;
    if (ns > maxNs)
        maxNs = ns;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t b = 0; b < kBuckets; ++b)
        buckets[b] += other.buckets[b];
    samples += other.samples;
    totalNs += other.totalNs;
    if (other.maxNs > maxNs)
        maxNs = other.maxNs;
}

double
LatencyHistogram::meanNs() const
{
    return samples ? static_cast<double>(totalNs) /
                         static_cast<double>(samples)
                   : 0.0;
}

uint64_t
LatencyHistogram::quantileUpperBoundNs(double q) const
{
    if (samples == 0)
        return 0;
    const double target = q * static_cast<double>(samples);
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (static_cast<double>(seen) >= target)
            return b ? (uint64_t{1} << b) : 1;
    }
    return maxNs;
}

void
DegradationLedger::record(const ShotLadderTrace &trace)
{
    ++ladderDecodes;
    if (trace.timedOut)
        ++degradedDecodes;
    for (uint8_t s = 0; s < kNumDecodeStages; ++s) {
        const uint8_t bit = uint8_t{1} << s;
        if (!(trace.attempted & bit))
            continue;
        ++stageAttempts[s];
        if (trace.timedOut & bit)
            ++stageTimeouts[s];
        stageLatency[s].add(trace.ns[s]);
    }
    ++stageCompleted[trace.answer];
}

void
DegradationLedger::merge(const DegradationLedger &other)
{
    ladderDecodes += other.ladderDecodes;
    degradedDecodes += other.degradedDecodes;
    for (size_t s = 0; s < kNumDecodeStages; ++s) {
        stageAttempts[s] += other.stageAttempts[s];
        stageTimeouts[s] += other.stageTimeouts[s];
        stageCompleted[s] += other.stageCompleted[s];
        stageLatency[s].merge(other.stageLatency[s]);
    }
    injectedStalls += other.injectedStalls;
    injectedBursts += other.injectedBursts;
    injectedBurstDetectors += other.injectedBurstDetectors;
    cacheStorms += other.cacheStorms;
    snapRestoredEntries += other.snapRestoredEntries;
    snapRejectedRecords += other.snapRejectedRecords;
    snapRecoveries += other.snapRecoveries;
    fabDeadPatches += other.fabDeadPatches;
    fabAdaptedPatches += other.fabAdaptedPatches;
    fabDistanceLoss += other.fabDistanceLoss;
}

std::string
DegradationLedger::summary() const
{
    char line[256];
    std::string out;
    std::snprintf(line, sizeof line,
                  "ladder decodes %llu (degraded %llu); injected: %llu "
                  "stalls, %llu bursts (+%llu detectors), %llu cache "
                  "storms\n",
                  static_cast<unsigned long long>(ladderDecodes),
                  static_cast<unsigned long long>(degradedDecodes),
                  static_cast<unsigned long long>(injectedStalls),
                  static_cast<unsigned long long>(injectedBursts),
                  static_cast<unsigned long long>(injectedBurstDetectors),
                  static_cast<unsigned long long>(cacheStorms));
    out += line;
    if (fabDeadPatches || fabAdaptedPatches) {
        std::snprintf(
            line, sizeof line,
            "fabrication: %llu adapted patches (%llu layers of distance "
            "lost), %llu dead patches run as yield failures\n",
            static_cast<unsigned long long>(fabAdaptedPatches),
            static_cast<unsigned long long>(fabDistanceLoss),
            static_cast<unsigned long long>(fabDeadPatches));
        out += line;
    }
    if (snapRestoredEntries || snapRejectedRecords || snapRecoveries) {
        std::snprintf(
            line, sizeof line,
            "persistence: %llu entries restored, %llu records rejected, "
            "%llu cold-rebuild recoveries\n",
            static_cast<unsigned long long>(snapRestoredEntries),
            static_cast<unsigned long long>(snapRejectedRecords),
            static_cast<unsigned long long>(snapRecoveries));
        out += line;
    }
    for (uint8_t s = 0; s < kNumDecodeStages; ++s) {
        if (!stageAttempts[s])
            continue;
        std::snprintf(
            line, sizeof line,
            "  %-7s attempts %-8llu timeouts %-8llu answers %-8llu "
            "mean %.3f ms  p99<=%.3f ms  max %.3f ms\n",
            decodeStageName(static_cast<DecodeStage>(s)),
            static_cast<unsigned long long>(stageAttempts[s]),
            static_cast<unsigned long long>(stageTimeouts[s]),
            static_cast<unsigned long long>(stageCompleted[s]),
            stageLatency[s].meanNs() / 1e6,
            static_cast<double>(stageLatency[s].quantileUpperBoundNs(0.99)) /
                1e6,
            static_cast<double>(stageLatency[s].maxNs) / 1e6);
        out += line;
    }
    return out;
}

} // namespace surf
