/**
 * @file
 * Fast deterministic random number generation for Monte-Carlo sampling.
 *
 * Xoshiro256** seeded through SplitMix64, plus helpers used heavily by the
 * frame simulator: Bernoulli draws, geometric skip-sampling (visits only
 * the shots where a rare event fires), ranged integers and Poisson draws.
 */

#ifndef SURF_UTIL_RNG_HH
#define SURF_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace surf {

/**
 * Xoshiro256** pseudo-random generator. Deterministic for a given seed so
 * every experiment in this repository is reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via SplitMix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) (bound > 0). */
    uint64_t below(uint64_t bound);

    /** Bernoulli draw with probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Geometric skip: number of additional trials to skip until the next
     * success of a Bernoulli(p) process. Returns a huge value when p == 0.
     */
    uint64_t geometricSkip(double p);

    /** Poisson draw with mean lambda (Knuth for small, normal approx large). */
    uint64_t poisson(double lambda);

    /** Exponential draw with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Sample k distinct values from [0, n) (k <= n). */
    std::vector<uint32_t> sampleWithoutReplacement(uint32_t n, uint32_t k);

  private:
    uint64_t s_[4];
};

} // namespace surf

#endif // SURF_UTIL_RNG_HH
