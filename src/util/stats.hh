/**
 * @file
 * Small statistics helpers shared by experiment harnesses: binomial
 * estimates with standard errors, log-linear fits (used to calibrate the
 * logical-error-rate suppression factor), and Poisson tail probabilities
 * (used by the layout generator's block-probability model).
 */

#ifndef SURF_UTIL_STATS_HH
#define SURF_UTIL_STATS_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace surf {

/** Point estimate and standard error for k successes out of n trials. */
struct BinomialEstimate
{
    double p;      ///< k / n
    double stderr; ///< sqrt(p (1-p) / n)
};

/** Estimate a Bernoulli success probability from counts. */
BinomialEstimate estimateBinomial(uint64_t successes, uint64_t trials);

/**
 * Convert a per-shot logical failure probability over `rounds` rounds into
 * a per-round rate: p_round = 1 - (1 - p_shot)^(1/rounds) (with the
 * standard small-p simplification guarded against p_shot >= 1).
 */
double perRoundRate(double p_shot, uint64_t rounds);

/** Least-squares fit y = a + b x. Returns {a, b}. */
std::pair<double, double> linearFit(const std::vector<double> &xs,
                                    const std::vector<double> &ys);

/** Poisson pmf P[K = k] for mean lambda. */
double poissonPmf(double lambda, unsigned k);

/** Poisson upper tail P[K > k] for mean lambda. */
double poissonTail(double lambda, unsigned k);

/** Mean of a vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (0 for fewer than two samples). */
double sampleStdDev(const std::vector<double> &xs);

} // namespace surf

#endif // SURF_UTIL_STATS_HH
