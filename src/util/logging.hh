/**
 * @file
 * Error-reporting helpers in the gem5 style: panic() for internal
 * invariant violations (bugs), fatal() for unrecoverable user errors,
 * warn()/inform() for status messages that do not stop execution.
 */

#ifndef SURF_UTIL_LOGGING_HH
#define SURF_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace surf {

/** Print "panic: <msg>" with location and abort(). Use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print "fatal: <msg>" and exit(1). Use for unrecoverable user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warn(const std::string &msg);

/** Print "info: <msg>" to stderr. */
void inform(const std::string &msg);

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace surf

#define SURF_PANIC(...) \
    ::surf::panicImpl(__FILE__, __LINE__, ::surf::detail::concat(__VA_ARGS__))

#define SURF_FATAL(...) \
    ::surf::fatalImpl(__FILE__, __LINE__, ::surf::detail::concat(__VA_ARGS__))

/** Assert a condition that should hold regardless of user input. */
#define SURF_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::surf::panicImpl(__FILE__, __LINE__,                         \
                ::surf::detail::concat("assertion failed: " #cond " ",    \
                                       ##__VA_ARGS__));                   \
        }                                                                 \
    } while (0)

#endif // SURF_UTIL_LOGGING_HH
