#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace surf {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace surf
