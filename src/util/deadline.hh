/**
 * @file
 * Soft decode deadlines and the graceful-degradation ledger.
 *
 * A real-time decoding service cannot block on a slow shot: a late exact
 * answer stalls the control loop, while an on-time approximate answer
 * merely costs a little accuracy. DecodeDeadline gives every shot a soft
 * per-stage time budget and the decoders cooperative cancellation points;
 * when a stage overruns, the engine downgrades along a staged fallback
 * ladder — sparse blossom → memoized-rows MWPM → union-find — and the
 * union-find floor always completes, so a decode can degrade but never
 * block. Every downgrade is recorded in a DegradationLedger (per-stage
 * attempt/timeout/completion counts plus log2-bucket latency histograms),
 * which the scenario engine aggregates per run.
 *
 * Two clock modes:
 *  - Real (default): stage elapsed time is a monotonic stopwatch. Stage
 *    choices then depend on wall time, so degraded results are
 *    best-effort, not reproducible — the production mode.
 *  - Virtual: the wall clock is ignored; stage elapsed time is exactly
 *    the stall injected by a fault plan (faultinject/fault_plan.hh).
 *    Stage choices and recorded latencies become pure functions of the
 *    plan seed, which is what makes fault-injection replays bit-identical
 *    at any thread count — the testing mode.
 *
 * With no deadline armed (softNs == 0, the default everywhere) every
 * cooperative check is a null-pointer test and results are bit-identical
 * to a build without this subsystem.
 */

#ifndef SURF_UTIL_DEADLINE_HH
#define SURF_UTIL_DEADLINE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace surf {

/** Stages of the fallback ladder, in downgrade order. */
enum DecodeStage : uint8_t
{
    kStageBlossom = 0,   ///< matrix-free sparse blossom (burst shots)
    kStageRows = 1,      ///< memoized-rows MWPM (matrix + dense blossom)
    kStageUnionFind = 2, ///< union-find floor: always completes
    kNumDecodeStages = 3,
};

/** Human-readable stage tag ("blossom" / "rows" / "uf"). */
const char *decodeStageName(DecodeStage stage);

/**
 * Per-shot soft decode budget with cooperative cancellation.
 *
 * The owner configures the budget once (configure), then per shot arms
 * stages in ladder order: beginStage() starts the stage clock, the
 * decoder polls expired() at coarse work boundaries (per certificate
 * round, per Dijkstra row), and the owner reads stageElapsedNs() for the
 * ledger when the stage ends. In virtual mode the stage clock is the
 * injected stall alone, so expiry is deterministic.
 */
class DecodeDeadline
{
  public:
    /** @param softNs per-stage soft budget; 0 disables the deadline
     *  @param virtualClock true = deterministic fault-replay mode */
    void
    configure(uint64_t softNs, bool virtualClock)
    {
        soft_ns_ = softNs;
        virtual_ = virtualClock;
    }

    bool armed() const { return soft_ns_ != 0; }
    uint64_t softNs() const { return soft_ns_; }
    bool virtualClock() const { return virtual_; }

    /** Start a stage's clock; `stallNs` is the fault-injected stall
     *  charged to this stage (0 when no fault plan is active). */
    void
    beginStage(uint64_t stallNs = 0)
    {
        stall_ns_ = stallNs;
        if (!virtual_)
            start_ = std::chrono::steady_clock::now();
    }

    /** Elapsed time of the current stage: injected stall plus (in real
     *  mode) the monotonic stopwatch. */
    uint64_t
    stageElapsedNs() const
    {
        if (virtual_)
            return stall_ns_;
        const auto dt = std::chrono::steady_clock::now() - start_;
        return stall_ns_ +
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                       .count());
    }

    /** Cooperative cancellation point. */
    bool
    expired() const
    {
        return armed() && stageElapsedNs() > soft_ns_;
    }

  private:
    uint64_t soft_ns_ = 0;
    uint64_t stall_ns_ = 0;
    bool virtual_ = false;
    std::chrono::steady_clock::time_point start_{};
};

/**
 * Trace of one shot's trip down the ladder, filled by MwpmDecoder and
 * (for the union-find floor) the engine; merged into the worker's
 * DegradationLedger after each decode.
 */
struct ShotLadderTrace
{
    uint8_t attempted = 0;                     ///< bitmask of DecodeStage
    uint8_t timedOut = 0;                      ///< bitmask of DecodeStage
    DecodeStage answer = kStageRows;           ///< stage that produced it
    std::array<uint64_t, kNumDecodeStages> ns{}; ///< per-stage latency

    void
    reset()
    {
        attempted = 0;
        timedOut = 0;
        answer = kStageRows;
        ns = {};
    }
    void
    note(DecodeStage stage, uint64_t elapsedNs, bool expired)
    {
        attempted |= uint8_t{1} << stage;
        if (expired)
            timedOut |= uint8_t{1} << stage;
        ns[stage] = elapsedNs;
    }
};

/** log2-bucketed latency histogram (bucket b: [2^(b-1), 2^b) ns). */
struct LatencyHistogram
{
    static constexpr size_t kBuckets = 44; ///< up to ~2.4 hours
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t samples = 0;
    uint64_t totalNs = 0;
    uint64_t maxNs = 0;

    void add(uint64_t ns);
    void merge(const LatencyHistogram &other);
    double meanNs() const;
    /** Smallest bucket upper bound covering >= q of the samples (a
     *  conservative quantile; exact enough for ladder diagnostics). */
    uint64_t quantileUpperBoundNs(double q) const;
};

/**
 * Per-run accounting of the fallback ladder and injected faults. One
 * ledger per worker, merged in fixed worker order, so totals are
 * deterministic whenever the per-shot traces are (virtual clock mode).
 */
struct DegradationLedger
{
    uint64_t ladderDecodes = 0;   ///< decodes run under the ladder
    uint64_t degradedDecodes = 0; ///< decodes that fell past stage one
    std::array<uint64_t, kNumDecodeStages> stageAttempts{};
    std::array<uint64_t, kNumDecodeStages> stageTimeouts{};
    std::array<uint64_t, kNumDecodeStages> stageCompleted{}; ///< gave answer
    std::array<LatencyHistogram, kNumDecodeStages> stageLatency{};

    // Injected-fault accounting (engine-side sites).
    uint64_t injectedStalls = 0;
    uint64_t injectedBursts = 0;
    uint64_t injectedBurstDetectors = 0;
    uint64_t cacheStorms = 0;

    // Warm-start persistence accounting (src/persist; all zero when no
    // persist directory is configured). Recovery counters record every
    // time corrupted or stale persisted state was detected and the run
    // degraded to a cold rebuild instead — the crash-safety contract.
    uint64_t snapRestoredEntries = 0;  ///< cache entries rehydrated
    uint64_t snapRejectedRecords = 0;  ///< records dropped (CRC/semantic)
    uint64_t snapRecoveries = 0;       ///< whole-file cold fallbacks

    // Fabrication-defect accounting (src/defects/fab_defects; all zero
    // on pristine chips). Dead patches are the yield contract: a chip
    // whose adapted distance collapsed runs as a deterministic all-loss
    // timeline — tallied here, never aborting the run.
    uint64_t fabDeadPatches = 0;    ///< timelines on a dead adapted chip
    uint64_t fabAdaptedPatches = 0; ///< timelines on a live adapted chip
    uint64_t fabDistanceLoss = 0;   ///< cumulative d - minDist (live chips)

    void record(const ShotLadderTrace &trace);
    void merge(const DegradationLedger &other);
    bool
    empty() const
    {
        return ladderDecodes == 0 && injectedStalls == 0 &&
               injectedBursts == 0 && cacheStorms == 0 &&
               fabDeadPatches == 0 && fabAdaptedPatches == 0;
    }
    /** Multi-line human-readable summary (README "ledger fields"). */
    std::string summary() const;
};

} // namespace surf

#endif // SURF_UTIL_DEADLINE_HH
