#include "surgery/throughput.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"
#include "util/rng.hh"

namespace surf {

namespace {

/**
 * Routing grid: (2c+1) x (2r+1) cells; tiles at odd-odd cells, channel
 * (ancilla) cells elsewhere. A CNOT routes along 4-connected channel
 * cells between the two tiles' adjacent channel cells.
 */
struct RoutingGrid
{
    int cols, rows;
    int w, h;

    RoutingGrid(int c, int r) : cols(c), rows(r), w(2 * c + 1), h(2 * r + 1)
    {
    }

    int cellId(int x, int y) const { return y * w + x; }
    bool inside(int x, int y) const { return x >= 0 && x < w && y >= 0 && y < h; }
    bool isTile(int x, int y) const { return (x % 2 == 1) && (y % 2 == 1); }

    int
    tileCell(int tile) const
    {
        const int tx = tile % cols, ty = tile / cols;
        return cellId(2 * tx + 1, 2 * ty + 1);
    }
};

} // namespace

std::vector<Task>
makeTaskSet(int tiles, int tasks, int ops, int active, uint64_t seed)
{
    Rng rng(seed);
    SURF_ASSERT(active <= tiles && active >= 2);
    const auto chosen = rng.sampleWithoutReplacement(
        static_cast<uint32_t>(tiles), static_cast<uint32_t>(active));
    std::vector<Task> out(static_cast<size_t>(tasks));
    for (auto &task : out) {
        for (int k = 0; k < ops; ++k) {
            const int a = static_cast<int>(
                chosen[rng.below(static_cast<uint64_t>(active))]);
            int b = a;
            while (b == a)
                b = static_cast<int>(
                    chosen[rng.below(static_cast<uint64_t>(active))]);
            task.push_back({a, b});
        }
    }
    return out;
}

ThroughputResult
simulateThroughput(const std::vector<Task> &tasks,
                   const ThroughputConfig &cfg)
{
    ThroughputResult out;
    RoutingGrid grid(cfg.gridCols, cfg.gridRows);
    Rng rng(cfg.seed);

    const int n_tiles = cfg.gridCols * cfg.gridRows;
    const double tile_event_rate =
        cfg.defectRatePerQubitStep * 2.0 * cfg.d * cfg.d;
    // Enlargement headroom: events a tile can absorb without spilling
    // into the channel (0 for Q3DE's doubling, Delta_d/D for ours).
    int capacity = 0;
    switch (cfg.strategy) {
      case Strategy::SurfDeformer:
        capacity = cfg.deltaD / cfg.regionDiameter;
        break;
      case Strategy::Q3deRevised:
        capacity = 1 << 20; // 2d inter-space: doubling never blocks
        break;
      default:
        capacity = 0; // Q3DE / LS-style layouts spill immediately
        break;
    }

    std::vector<size_t> next_op(tasks.size(), 0);
    for (const auto &t : tasks)
        out.totalOps += static_cast<int>(t.size());

    // Active defect events per tile: expiry steps.
    std::vector<std::deque<int>> tile_events(static_cast<size_t>(n_tiles));

    int done = 0;
    int step = 0;
    while (done < out.totalOps && step < cfg.maxSteps) {
        ++step;
        // Defect arrivals and expiries.
        for (int t = 0; t < n_tiles; ++t) {
            auto &evs = tile_events[static_cast<size_t>(t)];
            while (!evs.empty() && evs.front() <= step)
                evs.pop_front();
            if (tile_event_rate > 0.0 && rng.bernoulli(tile_event_rate))
                evs.push_back(step + static_cast<int>(
                                         cfg.defectDurationSteps));
        }
        // Blocked channel cells: tiles over capacity spill into all
        // adjacent channel cells (the enlarged patch occupies them).
        std::vector<uint8_t> blocked(
            static_cast<size_t>(grid.w * grid.h), 0);
        for (int t = 0; t < n_tiles; ++t) {
            if (static_cast<int>(tile_events[static_cast<size_t>(t)].size()) <=
                capacity)
                continue;
            const int cx = 2 * (t % cfg.gridCols) + 1;
            const int cy = 2 * (t / cfg.gridCols) + 1;
            for (int dx = -1; dx <= 1; ++dx)
                for (int dy = -1; dy <= 1; ++dy) {
                    const int x = cx + dx, y = cy + dy;
                    if (grid.inside(x, y) && !grid.isTile(x, y))
                        blocked[static_cast<size_t>(grid.cellId(x, y))] = 1;
                }
        }
        // Route the head operation of each task greedily with
        // vertex-disjoint paths over free channel cells.
        std::vector<uint8_t> used(blocked);
        for (size_t ti = 0; ti < tasks.size(); ++ti) {
            if (next_op[ti] >= tasks[ti].size())
                continue;
            const LogicalOp &op = tasks[ti][next_op[ti]];
            const int src = grid.tileCell(op.tileA);
            const int dst = grid.tileCell(op.tileB);
            // BFS from src tile over channel cells to dst tile.
            std::vector<int> parent(static_cast<size_t>(grid.w * grid.h),
                                    -2);
            std::deque<int> queue;
            parent[static_cast<size_t>(src)] = -1;
            queue.push_back(src);
            bool found = false;
            while (!queue.empty() && !found) {
                const int v = queue.front();
                queue.pop_front();
                const int vx = v % grid.w, vy = v / grid.w;
                static const int DX[4] = {1, -1, 0, 0};
                static const int DY[4] = {0, 0, 1, -1};
                for (int k = 0; k < 4; ++k) {
                    const int x = vx + DX[k], y = vy + DY[k];
                    if (!grid.inside(x, y))
                        continue;
                    const int c = grid.cellId(x, y);
                    if (parent[static_cast<size_t>(c)] != -2)
                        continue;
                    if (c == dst) {
                        parent[static_cast<size_t>(c)] = v;
                        found = true;
                        break;
                    }
                    if (grid.isTile(x, y) ||
                        used[static_cast<size_t>(c)])
                        continue;
                    parent[static_cast<size_t>(c)] = v;
                    queue.push_back(c);
                }
            }
            if (!found)
                continue; // op waits for a free path
            // Mark the path cells used for this step.
            for (int v = parent[static_cast<size_t>(dst)]; v != src && v >= 0;
                 v = parent[static_cast<size_t>(v)])
                used[static_cast<size_t>(v)] = 1;
            ++next_op[ti];
            ++done;
        }
    }
    out.steps = step;
    out.stalled = done < out.totalOps;
    out.throughput =
        (step > 0) ? static_cast<double>(done) / step : 0.0;
    return out;
}

} // namespace surf
