/**
 * @file
 * Lattice-surgery communication simulator (paper fig. 11c): logical tiles
 * on a grid, long-range CNOTs routed through ancilla channel cells as
 * vertex-disjoint paths, and defect-triggered enlargements blocking
 * channel cells according to the layout strategy. Throughput is the
 * average number of completed operations per lattice-surgery timestep.
 */

#ifndef SURF_SURGERY_THROUGHPUT_HH
#define SURF_SURGERY_THROUGHPUT_HH

#include <cstdint>
#include <vector>

#include "baselines/strategies.hh"

namespace surf {

/** One logical CNOT between two tiles. */
struct LogicalOp
{
    int tileA = 0;
    int tileB = 0;
};

/** A task is an ordered list of operations (sequential dependencies). */
using Task = std::vector<LogicalOp>;

/** Throughput-simulation configuration. */
struct ThroughputConfig
{
    int gridCols = 10;
    int gridRows = 10;            ///< 100 logical qubits (paper setup)
    int d = 9;                    ///< code distance (tile size)
    int deltaD = 4;               ///< Surf-Deformer inter-space headroom
    int regionDiameter = 4;       ///< defect size D
    Strategy strategy = Strategy::SurfDeformer;
    double defectRatePerQubitStep = 0.0; ///< fig. 11c x-axis
    uint64_t defectDurationSteps = 12;   ///< event persistence in steps
    int maxSteps = 100000;
    uint64_t seed = 1;
};

/** Simulation outcome. */
struct ThroughputResult
{
    int totalOps = 0;
    int steps = 0;
    double throughput = 0.0; ///< ops per step
    bool stalled = false;    ///< hit maxSteps before completing
};

/** Build the paper's task sets: `tasks` tasks of `ops` CNOTs each over
 *  `active` distinct tiles, with the given parallelism-controlling seed. */
std::vector<Task> makeTaskSet(int tiles, int tasks, int ops, int active,
                              uint64_t seed);

/** Run the routing simulation for one task set. */
ThroughputResult simulateThroughput(const std::vector<Task> &tasks,
                                    const ThroughputConfig &cfg);

} // namespace surf

#endif // SURF_SURGERY_THROUGHPUT_HH
