/**
 * @file
 * Detector error model (DEM) extraction: symbolically propagate every
 * independent noise component through the circuit, record which detectors
 * and observables it flips, and assemble per-basis graphlike error models
 * (the standard independent-XZ decomposition used by PyMatching). Each
 * edge connects at most two same-basis detectors (or one detector and the
 * boundary) with a merged probability and an observable-flip flag.
 */

#ifndef SURF_SIM_DEM_HH
#define SURF_SIM_DEM_HH

#include <cstdint>
#include <vector>

#include "sim/circuit.hh"

namespace surf {

/** One graphlike error mechanism. */
struct DemEdge
{
    int a = -1;          ///< detector id (global), or -1 for boundary
    int b = -1;          ///< detector id, or -1 for boundary
    double p = 0.0;      ///< total probability of this mechanism
    bool flipsObs = false;
};

/** Per-basis graphlike detector error model. */
struct DetectorErrorModel
{
    size_t numDetectors = 0;
    std::vector<uint8_t> detectorTag;     ///< 0 = X check, 1 = Z check
    std::vector<DemEdge> edges[2];        ///< indexed by tag
    /** Probability mass of components that flip the observable without
     *  flipping any detector (would be undetectable logical errors). */
    double undetectableObsProb = 0.0;
    /** Count of hyperedge components split by the pairing heuristic. */
    size_t decomposedComponents = 0;
};

/**
 * Build the DEM for a circuit whose (single) observable is measured in
 * `obs_basis`: observable flips are attributed to the graph of the
 * checks that detect the corresponding errors (Z-check detectors for a
 * Z-basis observable).
 */
DetectorErrorModel buildDem(const Circuit &circuit, PauliType obs_basis);

} // namespace surf

#endif // SURF_SIM_DEM_HH
