#include "sim/frame.hh"

#include <numeric>

#include "util/logging.hh"

namespace surf {

FrameSimulator::FrameSimulator(const Circuit &circuit, size_t shots,
                               uint64_t seed)
    : circuit_(&circuit), shots_(shots), rng_(seed)
{
    xf_.assign(circuit.numQubits(), BitVec(shots));
    zf_.assign(circuit.numQubits(), BitVec(shots));
    records_.reserve(circuit.numMeasurements());
    detectors_.reserve(circuit.numDetectors());
    run();
}

void
FrameSimulator::reset(uint64_t seed)
{
    rng_.reseed(seed);
    for (auto &plane : xf_)
        plane.clear();
    for (auto &plane : zf_)
        plane.clear();
    for (auto &obs : observables_)
        obs.clear();
    for (auto &probe : probes_)
        probe.clear();
    num_records_ = 0;
    num_detectors_ = 0;
}

BitVec &
FrameSimulator::appendRecord(const BitVec &bits)
{
    if (num_records_ < records_.size())
        records_[num_records_] = bits; // copy into the retained buffer
    else
        records_.push_back(bits);
    return records_[num_records_++];
}

BitVec &
FrameSimulator::appendDetector()
{
    if (num_detectors_ < detectors_.size())
        detectors_[num_detectors_].clear();
    else
        detectors_.emplace_back(shots_);
    return detectors_[num_detectors_++];
}

void
FrameSimulator::flipRandom(BitVec &plane, double p)
{
    // Geometric skip-sampling: cost proportional to the number of events.
    uint64_t s = rng_.geometricSkip(p);
    while (s < shots_) {
        plane.flip(s);
        const uint64_t skip = rng_.geometricSkip(p);
        if (skip >= shots_ - s)
            break;
        s += skip + 1;
    }
}

void
FrameSimulator::run()
{
    for (const auto &ins : circuit_->instructions()) {
        switch (ins.op) {
          case Op::ResetZ:
          case Op::ResetX:
            for (uint32_t q : ins.targets) {
                xf_[q].clear();
                zf_[q].clear();
            }
            break;
          case Op::MeasureZ:
            for (uint32_t q : ins.targets) {
                appendRecord(xf_[q]);
                zf_[q].clear(); // post-collapse phase frame is trivial
            }
            break;
          case Op::MeasureX:
            for (uint32_t q : ins.targets) {
                appendRecord(zf_[q]);
                xf_[q].clear();
            }
            break;
          case Op::H:
            for (uint32_t q : ins.targets)
                std::swap(xf_[q], zf_[q]);
            break;
          case Op::CX:
            for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
                const uint32_t c = ins.targets[i], t = ins.targets[i + 1];
                xf_[t] ^= xf_[c];
                zf_[c] ^= zf_[t];
            }
            break;
          case Op::XError:
            for (uint32_t q : ins.targets)
                flipRandom(xf_[q], ins.arg);
            break;
          case Op::ZError:
            for (uint32_t q : ins.targets)
                flipRandom(zf_[q], ins.arg);
            break;
          case Op::Depolarize1:
            for (uint32_t q : ins.targets) {
                uint64_t s = rng_.geometricSkip(ins.arg);
                while (s < shots_) {
                    switch (rng_.below(3)) {
                      case 0: xf_[q].flip(s); break;
                      case 1: xf_[q].flip(s); zf_[q].flip(s); break;
                      default: zf_[q].flip(s); break;
                    }
                    const uint64_t skip = rng_.geometricSkip(ins.arg);
                    if (skip >= shots_ - s)
                        break;
                    s += skip + 1;
                }
            }
            break;
          case Op::Depolarize2:
            for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
                const uint32_t a = ins.targets[i], b = ins.targets[i + 1];
                uint64_t s = rng_.geometricSkip(ins.arg);
                while (s < shots_) {
                    const uint64_t which = 1 + rng_.below(15);
                    const uint64_t pa = which / 4, pb = which % 4;
                    if (pa == 1 || pa == 2) xf_[a].flip(s);
                    if (pa == 2 || pa == 3) zf_[a].flip(s);
                    if (pb == 1 || pb == 2) xf_[b].flip(s);
                    if (pb == 2 || pb == 3) zf_[b].flip(s);
                    const uint64_t skip = rng_.geometricSkip(ins.arg);
                    if (skip >= shots_ - s)
                        break;
                    s += skip + 1;
                }
            }
            break;
          case Op::Detector: {
            BitVec &bits = appendDetector();
            for (uint32_t m : ins.targets)
                bits ^= records_[m];
            break;
          }
          case Op::ObservableInclude: {
            if (observables_.size() <= ins.aux)
                observables_.resize(ins.aux + 1, BitVec(shots_));
            for (uint32_t m : ins.targets)
                observables_[ins.aux] ^= records_[m];
            break;
          }
          case Op::FrameProbe: {
            // Oracle instrumentation: parity of the frames that would flip
            // a basis measurement of the targets. No RNG, no state change.
            const size_t idx = ins.aux >> 2;
            const bool basis_z = (ins.aux & 1u) != 0;
            if (probes_.size() <= idx)
                probes_.resize(idx + 1, BitVec(shots_));
            for (uint32_t q : ins.targets)
                probes_[idx] ^= basis_z ? xf_[q] : zf_[q];
            break;
          }
          case Op::Tick:
            break;
        }
    }
}

std::vector<uint32_t>
FrameSimulator::firedDetectors(size_t shot) const
{
    std::vector<uint32_t> out;
    for (size_t d = 0; d < num_detectors_; ++d)
        if (detectors_[d].get(shot))
            out.push_back(static_cast<uint32_t>(d));
    return out;
}

void
FrameSimulator::sparseFiredDetectors(SparseSyndromes &out) const
{
    // Pass 1: per-shot fired counts. Detector planes are extremely sparse
    // at realistic noise, so almost every 64-shot word is zero and the
    // inner loop never runs.
    out.offsets.assign(shots_ + 1, 0);
    for (size_t d = 0; d < num_detectors_; ++d)
        detectors_[d].forEachSetBit([&](size_t s) { ++out.offsets[s + 1]; });
    std::partial_sum(out.offsets.begin(), out.offsets.end(),
                     out.offsets.begin());

    // Pass 2: fill. Detectors are visited in ascending id order, so each
    // shot's slice comes out sorted — same order firedDetectors() yields.
    out.flat.resize(out.offsets[shots_]);
    out.cursor_.assign(out.offsets.begin(), out.offsets.end() - 1);
    for (size_t d = 0; d < num_detectors_; ++d)
        detectors_[d].forEachSetBit([&](size_t s) {
            out.flat[out.cursor_[s]++] = static_cast<uint32_t>(d);
        });
}

SparseSyndromes
FrameSimulator::sparseFiredDetectors() const
{
    SparseSyndromes out;
    sparseFiredDetectors(out);
    return out;
}

} // namespace surf
