#include "sim/segment.hh"

#include <algorithm>
#include <bit>
#include <iterator>

#include "pauli/bitmatrix.hh"
#include "util/logging.hh"

namespace surf {

namespace {

/**
 * Canonical CNOT layer slot of a support qubit within a plaquette check
 * (the standard zigzag schedule: X checks go NE,NW,SE,SW and Z checks go
 * NE,SE,NW,SW, which keeps the crossing parity between overlapping X/Z
 * checks even). Returns -1 for non-plaquette offsets.
 */
int
canonicalSlot(const Check &c, Coord q)
{
    if (!c.ancilla)
        return -1;
    const Coord o = q - *c.ancilla;
    static const Coord x_order[4] = {{1, -1}, {-1, -1}, {1, 1}, {-1, 1}};
    static const Coord z_order[4] = {{1, -1}, {1, 1}, {-1, -1}, {-1, 1}};
    const Coord *order = (c.type == PauliType::X) ? x_order : z_order;
    for (int k = 0; k < 4; ++k)
        if (order[k] == o)
            return k;
    return -1;
}

/**
 * True when every support qubit of the check sits on a distinct canonical
 * plaquette slot, so the check can join the interleaved layers. Merged or
 * long-range checks are measured in contiguous sequential blocks instead,
 * which is crossing-safe against every other check by construction.
 */
bool
isCanonical(const Check &c)
{
    if (!c.ancilla || c.support.size() > 4)
        return false;
    bool used[4] = {false, false, false, false};
    for (const Coord &q : c.support) {
        const int k = canonicalSlot(c, q);
        if (k < 0 || used[k])
            return false;
        used[k] = true;
    }
    return true;
}

/** Identity of a check across epochs: type plus anchor site. */
std::pair<PauliType, Coord>
checkKey(const Check &c)
{
    return {c.type, c.ancilla ? *c.ancilla : c.support[0]};
}

/** Canonical signature of a super-stabilizer: type + sorted member
 *  supports (the inferred operator, independent of member indexing). */
std::string
superSignature(const CodePatch &patch, const SuperStab &ss)
{
    std::vector<std::vector<Coord>> members;
    for (int m : ss.members)
        members.push_back(patch.checks()[static_cast<size_t>(m)].support);
    std::sort(members.begin(), members.end());
    std::string sig(1, ss.type == PauliType::Z ? 'Z' : 'X');
    for (const auto &sup : members) {
        sig += '|';
        for (const Coord &q : sup)
            sig += std::to_string(q.x) + ',' + std::to_string(q.y) + ';';
    }
    return sig;
}

} // namespace

SeamPlan
computeSeamPlan(const CodePatch *prev, const CodePatch &cur, PauliType basis,
                const std::set<Coord> &untrusted, uint64_t seamRound,
                const std::vector<Coord> *prevTracked)
{
    SeamPlan plan;
    const auto &checks = cur.checks();
    plan.links.assign(checks.size(), SeamLink::Fresh);
    plan.prevCheck.assign(checks.size(), -1);
    plan.removedRefs.assign(checks.size(), {});
    plan.prevSuper.assign(cur.supers().size(), -1);
    plan.trackedLogical =
        (basis == PauliType::Z) ? cur.logicalZ() : cur.logicalX();
    if (!prev)
        return plan;
    plan.continuation = true;

    std::set_difference(prev->dataQubits().begin(), prev->dataQubits().end(),
                        cur.dataQubits().begin(), cur.dataQubits().end(),
                        std::back_inserter(plan.removed));
    std::set_difference(cur.dataQubits().begin(), cur.dataQubits().end(),
                        prev->dataQubits().begin(), prev->dataQubits().end(),
                        std::back_inserter(plan.added));
    const std::set<Coord> added_set(plan.added.begin(), plan.added.end());
    std::set<Coord> removed_trusted(plan.removed.begin(), plan.removed.end());
    for (const Coord &q : untrusted)
        removed_trusted.erase(q);

    std::map<std::pair<PauliType, Coord>, int> prev_by_key;
    for (size_t j = 0; j < prev->checks().size(); ++j)
        prev_by_key.emplace(checkKey(prev->checks()[j]), static_cast<int>(j));

    auto subset_of = [](const std::vector<Coord> &sub,
                        const std::set<Coord> &sup) {
        for (const Coord &q : sub)
            if (!sup.count(q))
                return false;
        return true;
    };

    // A previous gauge check's value is carried only when it was measured
    // in the round right before the seam: the last pre-seam round has
    // parity (seamRound - 1) % 2, and a gauge of phase p is measured
    // exactly on rounds of parity p. If the parities disagree, opposite
    // gauges have been measured since its last instance and its value is
    // randomized. Stabilizer-role references are always fresh (measured
    // every round, conserved through everything measured).
    SURF_ASSERT(seamRound >= 1, "continuation seam cannot start at round 0");
    auto prev_ref_fresh = [&](const Check &p) {
        if (p.role == CheckRole::Stabilizer)
            return true;
        const int phase = (p.type == basis) ? 0 : 1;
        return static_cast<int>((seamRound - 1) % 2) == phase;
    };

    for (size_t i = 0; i < checks.size(); ++i) {
        const Check &c = checks[i];
        // Only stabilizer-role checks qualify as deterministic-fresh at a
        // seam: a fresh basis gauge measured after the opposite gauges of
        // an odd-parity round would already be randomized. (Stabilizers
        // commute with every measured operator, so they are always safe.)
        auto fresh_link = [&] {
            return (c.type == basis && c.role == CheckRole::Stabilizer &&
                    subset_of(c.support, added_set))
                       ? SeamLink::FreshDeterministic
                       : SeamLink::Fresh;
        };
        const auto it = prev_by_key.find(checkKey(c));
        if (it == prev_by_key.end()) {
            plan.links[i] = fresh_link();
            continue;
        }
        const Check &p = prev->checks()[static_cast<size_t>(it->second)];
        if (!prev_ref_fresh(p)) {
            plan.links[i] = fresh_link();
            continue;
        }
        if (p.support == c.support) {
            plan.links[i] = SeamLink::Carried;
            plan.prevCheck[i] = it->second;
            continue;
        }
        // Support changed. Only a basis-type stabilizer can be patched: the
        // lost qubits' basis measure-outs and the gained qubits' basis
        // initializations relate the old and new inferred values. Gauge
        // checks never receive individual pair detectors, so re-shaped
        // gauges simply start fresh (their products re-form via supers).
        if (c.type != basis || c.role != CheckRole::Stabilizer) {
            plan.links[i] = fresh_link();
            continue;
        }
        std::vector<Coord> lost, gained;
        std::set_difference(p.support.begin(), p.support.end(),
                            c.support.begin(), c.support.end(),
                            std::back_inserter(lost));
        std::set_difference(c.support.begin(), c.support.end(),
                            p.support.begin(), p.support.end(),
                            std::back_inserter(gained));
        const bool lost_ok = subset_of(lost, removed_trusted);
        if (lost_ok && subset_of(gained, added_set)) {
            plan.links[i] = SeamLink::CarriedPatched;
            plan.prevCheck[i] = it->second;
            plan.removedRefs[i] = std::move(lost);
        } else {
            plan.links[i] = fresh_link();
        }
    }

    // Super-stabilizer carry is parity-conditional: the previous instance
    // must have been measured in the round right before the seam, so both
    // the concatenated and the standalone (one-round-overlap) builds are
    // guaranteed to hold its member records.
    std::map<std::string, int> prev_supers;
    for (size_t s = 0; s < prev->supers().size(); ++s)
        prev_supers.emplace(superSignature(*prev, prev->supers()[s]),
                            static_cast<int>(s));
    for (size_t s = 0; s < cur.supers().size(); ++s) {
        const SuperStab &ss = cur.supers()[s];
        const int phase = (ss.type == basis) ? 0 : 1;
        if (static_cast<int>((seamRound - 1) % 2) != phase)
            continue;
        const auto it = prev_supers.find(superSignature(cur, ss));
        if (it != prev_supers.end())
            plan.prevSuper[s] = it->second;
    }

    // --- Observable continuity --------------------------------------------
    // Decompose (old tracked representative) x (new representative) over
    // operators with known measured values; their records become the
    // logical frame update the seam applies to the observable.
    const std::vector<Coord> &l_old =
        (prevTracked && !prevTracked->empty())
            ? *prevTracked
            : ((basis == PauliType::Z) ? prev->logicalZ() : prev->logicalX());
    if (supportXor(l_old, plan.trackedLogical).empty())
        return plan; // value carries over directly, no frame update

    // Column space: every data qubit either side of the seam.
    std::map<Coord, size_t> col_of;
    for (const Coord &q : prev->dataQubits())
        col_of.emplace(q, col_of.size());
    for (const Coord &q : cur.dataQubits())
        col_of.emplace(q, col_of.size());
    auto rowFor = [&](const std::vector<Coord> &support) {
        BitVec row(col_of.size());
        for (const Coord &q : support)
            row.set(col_of.at(q), true);
        return row;
    };

    // Row tags mirror the matrix rows so the solved combination maps back
    // to measurement records.
    enum class RowKind : uint8_t { Check, Super, Removed, Added, CurGauge };
    std::vector<std::pair<RowKind, int>> tags;
    BitMatrix basis_rows(col_of.size());
    const auto prev_gens = prev->stabilizerGenerators();
    for (size_t g = 0; g < prev_gens.size(); ++g) {
        if (prev_gens[g].type != basis)
            continue;
        if (prev_gens[g].isSuper) {
            // Super records are only guaranteed at matching seam parity
            // (see the carry condition above).
            if (static_cast<int>((seamRound - 1) % 2) != 0)
                continue;
            basis_rows.addRow(rowFor(prev_gens[g].support));
            tags.emplace_back(RowKind::Super, prev_gens[g].sourceSuper);
        } else {
            basis_rows.addRow(rowFor(prev_gens[g].support));
            tags.emplace_back(RowKind::Check, prev_gens[g].sourceCheck);
        }
    }
    // Value-fresh basis-type gauge checks extend the span (their last
    // record is the seam value when the parity test passes).
    for (size_t j = 0; j < prev->checks().size(); ++j) {
        const Check &p = prev->checks()[j];
        if (p.role != CheckRole::Gauge || p.type != basis ||
            !prev_ref_fresh(p))
            continue;
        basis_rows.addRow(rowFor(p.support));
        tags.emplace_back(RowKind::Check, static_cast<int>(j));
    }
    // Only trustworthy measure-outs may carry the logical frame: a
    // defective qubit's readout is junk (the same reason seam detectors
    // refuse it), and routing the observable through it would inject a
    // coin flip into every shot.
    for (size_t ri = 0; ri < plan.removed.size(); ++ri) {
        if (!removed_trusted.count(plan.removed[ri]))
            continue;
        basis_rows.addRow(rowFor({plan.removed[ri]}));
        tags.emplace_back(RowKind::Removed, static_cast<int>(ri));
    }
    for (const Coord &q : plan.added) {
        basis_rows.addRow(rowFor({q}));
        tags.emplace_back(RowKind::Added, 0);
    }
    // Basis-type checks of the *new* patch measured in its first round: a
    // representative whose relation to the old one is not fixed by
    // pre-seam records alone (rerouted through re-added corners, or
    // through a fresh super-stabilizer cluster) becomes definite once
    // those first measurements exist, and their records complete the
    // frame update. Stabilizer-role checks commute with everything, so
    // their first record is usable at either seam parity; basis gauges
    // only when they are measured before the anticommuting opposite
    // gauges (even seam parity).
    for (size_t j = 0; j < checks.size(); ++j) {
        const Check &c = checks[j];
        if (c.type != basis)
            continue;
        if (c.role == CheckRole::Gauge && static_cast<int>(seamRound % 2) != 0)
            continue;
        basis_rows.addRow(rowFor(c.support));
        tags.emplace_back(RowKind::CurGauge, static_cast<int>(j));
    }

    // Find a *continuation*: any product R = l_old x (selected rows) whose
    // support lies inside the new patch and which commutes with every
    // measured operator of the new code. Because each row carries a known
    // measured value, R is homologous to the tracked logical — never to a
    // hole logical the deformation may have created (those are outside the
    // record span). Constraints are linear in the row selection x:
    //   for q outside cur data:        sum_i x_i S_i[q]        = l_old[q]
    //   for each opposite-type check:  sum_i x_i <S_i, c>      = <l_old, c>
    // where <.,.> is the overlap parity. The stored (minimum-weight)
    // representative is one candidate solution; when it belongs to a
    // different logical qubit the solver routes around it automatically.
    // Prefer the stored representative: when the difference to l_old is in
    // the record span directly, track the canonical minimum-weight rep.
    // (Recovered pristine epochs then all track the same rep, which keeps
    // their decode segments cache-equal across timelines.)
    auto fill_from = [&](const BitVec &combo) {
        for (size_t r = 0; r < tags.size(); ++r) {
            if (!combo.get(r))
                continue;
            switch (tags[r].first) {
              case RowKind::Check:
                plan.obsPrevChecks.push_back(tags[r].second);
                break;
              case RowKind::Super:
                plan.obsPrevSupers.push_back(tags[r].second);
                break;
              case RowKind::Removed:
                plan.obsRemoved.push_back(
                    plan.removed[static_cast<size_t>(tags[r].second)]);
                break;
              case RowKind::Added:
                break; // freshly initialized: deterministic +1, no record
              case RowKind::CurGauge:
                plan.obsCurChecks.push_back(tags[r].second);
                break;
            }
        }
    };
    if (const auto direct = basis_rows.solveCombination(
            rowFor(supportXor(l_old, plan.trackedLogical)))) {
        fill_from(*direct);
        return plan;
    }

    const BitVec l_old_row = rowFor(l_old);
    BitMatrix constraints(tags.size());
    std::vector<uint8_t> rhs_bits;
    // Overlap parity via word-wise AND + popcount (the per-bit version
    // made this O(constraints x rows x cols) scalar bit reads).
    auto overlap_parity = [](const BitVec &a, const BitVec &b) {
        uint64_t acc = 0;
        for (size_t w = 0; w < a.wordCount(); ++w)
            acc ^= a.word(w) & b.word(w);
        return (std::popcount(acc) & 1) != 0;
    };
    auto addConstraint = [&](const BitVec &functional_support) {
        BitVec row(tags.size());
        for (size_t i = 0; i < tags.size(); ++i)
            row.set(i, overlap_parity(basis_rows.row(i),
                                      functional_support));
        constraints.addRow(row);
        rhs_bits.push_back(static_cast<uint8_t>(
            overlap_parity(l_old_row, functional_support)));
    };
    for (const auto &[q, w] : col_of) {
        if (cur.hasData(q))
            continue;
        BitVec single(col_of.size());
        single.set(w, true);
        addConstraint(single);
    }
    for (const Check &c : checks)
        if (c.type != basis)
            addConstraint(rowFor(c.support));

    BitVec rhs(rhs_bits.size());
    for (size_t i = 0; i < rhs_bits.size(); ++i)
        rhs.set(i, rhs_bits[i] != 0);
    const auto solution = constraints.solveSystem(rhs);
    if (!solution) {
        // No continuation with a known frame update exists: the burst
        // effectively destroyed (measured) the stored logical qubit.
        plan.obsCarryValid = false;
        return plan;
    }

    BitVec tracked_row = l_old_row;
    for (size_t r = 0; r < tags.size(); ++r)
        if (solution->get(r))
            tracked_row ^= basis_rows.row(r);
    fill_from(*solution);
    plan.trackedLogical.clear();
    for (const auto &[q, w] : col_of)
        if (tracked_row.get(w)) {
            SURF_ASSERT(cur.hasData(q), "continuation left the patch");
            plan.trackedLogical.push_back(q);
        }
    return plan;
}

SegmentResult
appendSegment(Circuit &ckt, std::map<Coord, uint32_t> &qubitId,
              const CodePatch &patch, const SegmentSpec &spec,
              const NoiseParams &noise, const SeamPlan &seam,
              const SeamState *carried, bool phantomSeam,
              const CodePatch *prevPatch)
{
    SURF_ASSERT(spec.rounds >= 1, "need at least one round");
    SURF_ASSERT(spec.first != seam.continuation,
                "first segments have no seam; continuations need one");
    SegmentResult out;

    const auto data = patch.dataList();
    const auto &checks = patch.checks();
    SURF_ASSERT(seam.links.size() == checks.size() &&
                    seam.prevSuper.size() == patch.supers().size(),
                "seam plan does not match the patch");

    // Qubit ids: this epoch's data first (sorted), then distinct ancillas
    // in check order, then seam measure-outs. In the concatenated circuit
    // most of these already exist and keep their ids.
    auto ensureId = [&](Coord c) {
        auto it = qubitId.find(c);
        if (it == qubitId.end())
            it = qubitId.emplace(c, static_cast<uint32_t>(qubitId.size()))
                     .first;
        return it->second;
    };
    for (const Coord &q : data)
        ensureId(q);
    for (const auto &c : checks)
        if (c.ancilla)
            ensureId(*c.ancilla);
    for (const Coord &q : seam.removed)
        ensureId(q);

    auto qid = [&](Coord c) { return qubitId.at(c); };
    auto rate = [&](Coord site) {
        return noise.defectiveSites.count(site) ? noise.pDefect : noise.p;
    };
    auto rate2 = [&](Coord a, Coord b) { return std::max(rate(a), rate(b)); };

    // Effective measurement phase follows the *global* round parity so the
    // alternating gauge schedule continues seamlessly across epochs.
    auto gauge_phase = [&](const Check &c) {
        return (c.type == spec.basis) ? 0 : 1;
    };
    auto measured_in_round = [&](const Check &c, uint64_t gr) {
        if (c.role == CheckRole::Stabilizer)
            return true;
        return static_cast<int>(gr % 2) == gauge_phase(c);
    };

    const Op basis_reset =
        spec.basis == PauliType::Z ? Op::ResetZ : Op::ResetX;
    const Op basis_init_error =
        spec.basis == PauliType::Z ? Op::XError : Op::ZError;
    const Op basis_measure =
        spec.basis == PauliType::Z ? Op::MeasureZ : Op::MeasureX;

    std::vector<size_t> last_meas(checks.size(), SIZE_MAX);
    std::vector<std::vector<uint32_t>> super_prev(patch.supers().size());
    std::vector<std::vector<uint32_t>> seam_extra(checks.size());
    /** First in-segment measurement per check (for gauge-fixing records). */
    std::vector<size_t> first_meas(checks.size(), SIZE_MAX);
    std::vector<uint32_t> obs_carry_refs;

    auto emit_cx = [&](const Check &c, Coord dqc) {
        const Coord a = *c.ancilla;
        if (c.type == PauliType::X)
            ckt.append(Op::CX, {qid(a), qid(dqc)});
        else
            ckt.append(Op::CX, {qid(dqc), qid(a)});
        ckt.append(Op::Depolarize2, {qid(a), qid(dqc)}, rate2(a, dqc));
        if (noise.pCorrelated2q > 0.0)
            ckt.append(Op::Depolarize2, {qid(a), qid(dqc)},
                       noise.pCorrelated2q);
    };

    /**
     * One full noisy syndrome-extraction round over an arbitrary patch
     * (the main epoch rounds, and the standalone decoder's one-round
     * overlap replica of the previous patch). Emits no detectors; fills
     * `lm` (and optionally `fm`) with the measurement records.
     */
    auto emit_round = [&](const std::vector<Coord> &round_data,
                          const std::vector<Check> &round_checks,
                          uint64_t gr, std::vector<size_t> &lm,
                          std::vector<size_t> *fm) {
        ckt.append(Op::Tick, {});
        // Data idle noise once per round.
        for (const Coord &q : round_data)
            ckt.append(Op::Depolarize1, {qid(q)}, rate(q));

        // Checks measured this round, split by measurement style.
        std::vector<int> ancilla_checks, direct_checks;
        for (size_t i = 0; i < round_checks.size(); ++i) {
            if (!measured_in_round(round_checks[i], gr))
                continue;
            (round_checks[i].ancilla ? ancilla_checks : direct_checks)
                .push_back(static_cast<int>(i));
        }

        // Ancilla-based extraction.
        for (int i : ancilla_checks) {
            const Coord a = *round_checks[static_cast<size_t>(i)].ancilla;
            ckt.append(Op::ResetZ, {qid(a)});
            ckt.append(Op::XError, {qid(a)}, rate(a));
        }
        for (int i : ancilla_checks) {
            const auto &c = round_checks[static_cast<size_t>(i)];
            if (c.type == PauliType::X) {
                ckt.append(Op::H, {qid(*c.ancilla)});
                ckt.append(Op::Depolarize1, {qid(*c.ancilla)},
                           rate(*c.ancilla));
            }
        }
        // Interleaved canonical layers: each support qubit occupies its
        // canonical slot (gaps where neighbors were removed keep the
        // crossing parity with overlapping opposite-type checks even).
        std::vector<int> sequential_checks;
        for (int layer = 0; layer < 4; ++layer) {
            for (int i : ancilla_checks) {
                const auto &c = round_checks[static_cast<size_t>(i)];
                if (!isCanonical(c)) {
                    if (layer == 0)
                        sequential_checks.push_back(i);
                    continue;
                }
                for (const Coord &dqc : c.support)
                    if (canonicalSlot(c, dqc) == layer)
                        emit_cx(c, dqc);
            }
        }
        // Contiguous blocks for non-canonical (merged / long-range) checks.
        for (int i : sequential_checks) {
            const auto &c = round_checks[static_cast<size_t>(i)];
            std::vector<Coord> order = c.support;
            std::sort(order.begin(), order.end(), [](Coord p, Coord q) {
                return std::pair(p.y, p.x) < std::pair(q.y, q.x);
            });
            for (const Coord &dqc : order)
                emit_cx(c, dqc);
        }
        for (int i : ancilla_checks) {
            const auto &c = round_checks[static_cast<size_t>(i)];
            if (c.type == PauliType::X) {
                ckt.append(Op::H, {qid(*c.ancilla)});
                ckt.append(Op::Depolarize1, {qid(*c.ancilla)},
                           rate(*c.ancilla));
            }
        }
        for (int i : ancilla_checks) {
            const Coord a = *round_checks[static_cast<size_t>(i)].ancilla;
            ckt.append(Op::XError, {qid(a)}, rate(a));
            lm[static_cast<size_t>(i)] = ckt.append(Op::MeasureZ, {qid(a)});
            if (fm && (*fm)[static_cast<size_t>(i)] == SIZE_MAX)
                (*fm)[static_cast<size_t>(i)] = lm[static_cast<size_t>(i)];
        }
        // Direct single-qubit gauge measurements (non-destructive
        // projective measurement of a data qubit).
        for (int i : direct_checks) {
            const auto &c = round_checks[static_cast<size_t>(i)];
            SURF_ASSERT(c.support.size() == 1,
                        "direct measurement needs weight-1 support");
            const Coord q = c.support[0];
            if (c.type == PauliType::X) {
                ckt.append(Op::ZError, {qid(q)}, rate(q));
                lm[static_cast<size_t>(i)] =
                    ckt.append(Op::MeasureX, {qid(q)});
            } else {
                ckt.append(Op::XError, {qid(q)}, rate(q));
                lm[static_cast<size_t>(i)] =
                    ckt.append(Op::MeasureZ, {qid(q)});
            }
            if (fm && (*fm)[static_cast<size_t>(i)] == SIZE_MAX)
                (*fm)[static_cast<size_t>(i)] = lm[static_cast<size_t>(i)];
        }
    };

    if (spec.first) {
        // --- Initialization -----------------------------------------------
        std::vector<uint32_t> dq;
        for (const Coord &q : data)
            dq.push_back(qid(q));
        ckt.append(basis_reset, dq);
        for (const Coord &q : data)
            ckt.append(basis_init_error, {qid(q)}, rate(q));
    } else {
        // --- Seam prologue ------------------------------------------------
        // Carried inferences: real references into the previous segment,
        // or — in the standalone decoder view — references into a noisy
        // one-round *overlap replica* of the previous patch. The replica
        // emits no detectors, so the detector range still mirrors the
        // concatenated segment, but it gives the DEM exactly the
        // mechanisms that straddle the seam (final-round measurement and
        // data errors of the previous epoch), which is what makes
        // windowed per-epoch decoding accurate at seams.
        SeamState overlap_state;
        if (phantomSeam) {
            SURF_ASSERT(prevPatch != nullptr,
                        "standalone continuation needs the previous patch");
            for (const Coord &q : prevPatch->dataQubits())
                ensureId(q);
            for (const auto &c : prevPatch->checks())
                if (c.ancilla)
                    ensureId(*c.ancilla);
            overlap_state.lastMeas.assign(prevPatch->checks().size(),
                                          SIZE_MAX);
            emit_round(prevPatch->dataList(), prevPatch->checks(),
                       spec.startRound - 1, overlap_state.lastMeas, nullptr);
            overlap_state.superPrev.resize(prevPatch->supers().size());
            for (size_t s = 0; s < prevPatch->supers().size(); ++s) {
                const SuperStab &ss = prevPatch->supers()[s];
                const int phase = (ss.type == spec.basis) ? 0 : 1;
                if (static_cast<int>((spec.startRound - 1) % 2) != phase)
                    continue;
                for (int m : ss.members)
                    overlap_state.superPrev[s].push_back(
                        static_cast<uint32_t>(
                            overlap_state.lastMeas[static_cast<size_t>(m)]));
            }
            // Strip the replica of logical responsibility: frames it
            // leaves on the tracked representative cancel out of the
            // observable (the previous epoch's decoder owns them), while
            // its detector mechanisms stay — that is the commit rule of
            // overlapped windowed decoding.
            std::vector<uint32_t> probe_ids;
            for (const Coord &q : seam.trackedLogical)
                probe_ids.push_back(qid(q));
            ckt.appendFrameProbe(std::move(probe_ids), spec.basis,
                                 /*observable_cancel=*/true);
            carried = &overlap_state;
        }
        SURF_ASSERT(carried != nullptr,
                    "continuation segment needs carried references");
        for (size_t i = 0; i < checks.size(); ++i) {
            if (seam.links[i] != SeamLink::Carried &&
                seam.links[i] != SeamLink::CarriedPatched)
                continue;
            const size_t ref =
                carried->lastMeas[static_cast<size_t>(seam.prevCheck[i])];
            if (ref != SIZE_MAX)
                last_meas[i] = ref;
        }
        for (size_t s = 0; s < patch.supers().size(); ++s)
            if (seam.prevSuper[s] >= 0)
                super_prev[s] = carried->superPrev[static_cast<size_t>(
                    seam.prevSuper[s])];
        // Measure out the data qubits leaving the patch (memory basis).
        std::map<Coord, uint32_t> removed_meas;
        for (const Coord &q : seam.removed) {
            ckt.append(basis_init_error, {qid(q)}, rate(q));
            removed_meas[q] =
                static_cast<uint32_t>(ckt.append(basis_measure, {qid(q)}));
        }
        // Initialize the data qubits joining the patch.
        if (!seam.added.empty()) {
            std::vector<uint32_t> dq;
            for (const Coord &q : seam.added)
                dq.push_back(qid(q));
            ckt.append(basis_reset, dq);
            for (const Coord &q : seam.added)
                ckt.append(basis_init_error, {qid(q)}, rate(q));
        }
        // Patched seam detectors additionally reference the measure-outs
        // of the support qubits they lost.
        for (size_t i = 0; i < checks.size(); ++i)
            for (const Coord &q : seam.removedRefs[i])
                seam_extra[i].push_back(removed_meas.at(q));

        // Logical frame update: when the representative changes across the
        // seam, the relating operators' records shift the readout parity
        // (see SeamPlan). Without this the observable is not deterministic
        // and frame sampling would be invalid. Pre-seam and measure-out
        // records are collected here; first-round gauge records join after
        // the round loop and the include is emitted then.
        SURF_ASSERT(seam.obsCarryValid,
                    "logical continuity broke across a deformation seam");
        for (int j : seam.obsPrevChecks) {
            const size_t ref = carried->lastMeas[static_cast<size_t>(j)];
            SURF_ASSERT(ref != SIZE_MAX,
                        "observable carry needs a measured record");
            obs_carry_refs.push_back(static_cast<uint32_t>(ref));
        }
        for (int s : seam.obsPrevSupers) {
            const auto &refs = carried->superPrev[static_cast<size_t>(s)];
            SURF_ASSERT(!refs.empty(),
                        "observable carry references an unmeasured "
                        "super-stabilizer");
            obs_carry_refs.insert(obs_carry_refs.end(), refs.begin(),
                                  refs.end());
        }
        for (const Coord &q : seam.obsRemoved)
            obs_carry_refs.push_back(removed_meas.at(q));

        if (spec.epochProbes && !phantomSeam) {
            // Epoch-opening oracle probe (see SegmentSpec::epochProbes).
            std::vector<uint32_t> probe_ids;
            for (const Coord &q : seam.trackedLogical)
                probe_ids.push_back(qid(q));
            ckt.appendFrameProbe(std::move(probe_ids), spec.basis);
        }
    }

    out.detBegin = ckt.numDetectors();

    // A check's first measurement in this segment is individually
    // deterministic when all its support was just initialized in the basis.
    auto first_deterministic = [&](size_t i, int r) {
        if (spec.first)
            return r == 0 && checks[i].type == spec.basis;
        return seam.links[i] == SeamLink::FreshDeterministic;
    };

    for (int r = 0; r < spec.rounds; ++r) {
        const uint64_t gr = spec.startRound + static_cast<uint64_t>(r);
        // Previous measurement indices (for time-pair detectors); at r == 0
        // of a continuation these are the carried seam references.
        const std::vector<size_t> prev_meas = last_meas;
        emit_round(data, checks, gr, last_meas, &first_meas);

        // --- Detectors for this round ---
        // Stabilizer checks: time-pair against the previous inference (the
        // carried seam reference at r == 0 of a continuation), with the
        // seam measure-out records XORed into a patched first pair.
        for (size_t i = 0; i < checks.size(); ++i) {
            const auto &c = checks[i];
            if (!measured_in_round(c, gr))
                continue;
            const uint32_t m = static_cast<uint32_t>(last_meas[i]);
            if (c.role == CheckRole::Stabilizer) {
                if (prev_meas[i] == SIZE_MAX) {
                    if (first_deterministic(i, r))
                        ckt.appendDetector({m}, c.type);
                } else {
                    std::vector<uint32_t> refs{
                        m, static_cast<uint32_t>(prev_meas[i])};
                    for (uint32_t x : seam_extra[i])
                        refs.push_back(x);
                    seam_extra[i].clear();
                    ckt.appendDetector(std::move(refs), c.type);
                }
            } else if (prev_meas[i] == SIZE_MAX && first_deterministic(i, r)) {
                // Basis-type gauge checks are individually deterministic
                // on a freshly initialized product state.
                ckt.appendDetector({m}, c.type);
            }
        }
        // Super-stabilizers available this round: product vs product (the
        // previous product may be the carried pre-seam instance).
        for (size_t s = 0; s < patch.supers().size(); ++s) {
            const auto &ss = patch.supers()[s];
            const int phase = (ss.type == spec.basis) ? 0 : 1;
            if (static_cast<int>(gr % 2) != phase)
                continue;
            std::vector<uint32_t> refs;
            for (int m : ss.members)
                refs.push_back(
                    static_cast<uint32_t>(last_meas[static_cast<size_t>(m)]));
            if (!super_prev[s].empty()) {
                std::vector<uint32_t> both = refs;
                both.insert(both.end(), super_prev[s].begin(),
                            super_prev[s].end());
                ckt.appendDetector(std::move(both), ss.type);
            }
            // First basis-type instance is covered by the individual
            // round-0 gauge detectors; first opposite instance is random.
            super_prev[s] = std::move(refs);
        }
    }

    // Emit the seam's logical frame update, completed by the first-round
    // gauge-fixing records (instruction position is irrelevant — the
    // observable is bookkeeping over records — but every reference must
    // exist by now).
    if (!obs_carry_refs.empty() || !seam.obsCurChecks.empty()) {
        for (int j : seam.obsCurChecks) {
            const size_t ref = first_meas[static_cast<size_t>(j)];
            SURF_ASSERT(ref != SIZE_MAX,
                        "gauge-fixing record missing for observable carry");
            obs_carry_refs.push_back(static_cast<uint32_t>(ref));
        }
        ckt.appendObservable(0, std::move(obs_carry_refs));
        obs_carry_refs.clear();
    }

    if (spec.epochProbes && !phantomSeam) {
        // Epoch-closing oracle probe, before any readout noise.
        std::vector<uint32_t> probe_ids;
        for (const Coord &q : seam.trackedLogical)
            probe_ids.push_back(qid(q));
        ckt.appendFrameProbe(std::move(probe_ids), spec.basis);
    }

    if (spec.last) {
        // --- Final data readout ------------------------------------------
        std::map<Coord, uint32_t> data_meas;
        for (const Coord &q : data) {
            ckt.append(basis_init_error, {qid(q)}, rate(q));
            const size_t m = ckt.append(basis_measure, {qid(q)});
            data_meas[q] = static_cast<uint32_t>(m);
        }
        // Final detectors: each basis-type generator compared with the
        // parity of the final data measurements over its support.
        for (const auto &g : patch.stabilizerGenerators()) {
            if (g.type != spec.basis)
                continue;
            std::vector<uint32_t> refs;
            for (const Coord &q : g.support)
                refs.push_back(data_meas.at(q));
            if (g.isSuper) {
                const auto &prev =
                    super_prev[static_cast<size_t>(g.sourceSuper)];
                if (prev.empty())
                    continue; // never measured (single-round experiments)
                refs.insert(refs.end(), prev.begin(), prev.end());
            } else {
                const size_t m = last_meas[static_cast<size_t>(g.sourceCheck)];
                if (m == SIZE_MAX)
                    continue;
                refs.push_back(static_cast<uint32_t>(m));
            }
            ckt.appendDetector(std::move(refs), g.type);
        }

        // Logical observable: parity of the tracked bare representative.
        std::vector<uint32_t> obs_refs;
        for (const Coord &q : seam.trackedLogical)
            obs_refs.push_back(data_meas.at(q));
        ckt.appendObservable(0, std::move(obs_refs));
    } else if (phantomSeam) {
        // Standalone decoder view of a non-final segment: a *noiseless*
        // logical readout so the DEM attributes observable flips to the
        // residual error frames at segment end. Emits no detectors, so the
        // detector range still mirrors the concatenated segment exactly.
        std::map<Coord, uint32_t> data_meas;
        for (const Coord &q : data)
            data_meas[q] =
                static_cast<uint32_t>(ckt.append(basis_measure, {qid(q)}));
        std::vector<uint32_t> obs_refs;
        for (const Coord &q : seam.trackedLogical)
            obs_refs.push_back(data_meas.at(q));
        ckt.appendObservable(0, std::move(obs_refs));
    }

    out.detEnd = ckt.numDetectors();
    out.carry.lastMeas = std::move(last_meas);
    out.carry.superPrev = std::move(super_prev);
    return out;
}

Circuit
buildStandaloneSegment(const CodePatch &patch, const SegmentSpec &spec,
                       const NoiseParams &noise, const SeamPlan &seam,
                       const CodePatch *prevPatch)
{
    Circuit ckt;
    std::map<Coord, uint32_t> qubit_id;
    appendSegment(ckt, qubit_id, patch, spec, noise, seam, nullptr, true,
                  prevPatch);
    return ckt;
}

} // namespace surf
