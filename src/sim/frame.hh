/**
 * @file
 * Batched Pauli-frame Monte-Carlo sampler. Propagates X/Z error frames
 * through the circuit for many shots at once (bit-packed, one bit per
 * shot), producing exact samples of detector values and observable flips
 * for stabilizer circuits — the same construction as Stim's detector
 * sampler: detectors are reference-frame differences, so frame propagation
 * alone determines them.
 */

#ifndef SURF_SIM_FRAME_HH
#define SURF_SIM_FRAME_HH

#include <cstdint>
#include <vector>

#include "pauli/bitvec.hh"
#include "sim/circuit.hh"
#include "util/rng.hh"

namespace surf {

/**
 * Per-shot sparse syndromes for one sampled batch, in CSR layout: the
 * fired detector ids of shot s are flat[offsets[s] .. offsets[s+1])
 * in ascending order. Reused across batches to stay allocation-free.
 */
struct SparseSyndromes
{
    std::vector<uint32_t> flat;    ///< fired detector ids, shot-major
    std::vector<uint32_t> offsets; ///< per-shot slices; size shots + 1

    size_t shots() const { return offsets.empty() ? 0 : offsets.size() - 1; }
    const uint32_t *data(size_t shot) const
    {
        return flat.data() + offsets[shot];
    }
    size_t count(size_t shot) const
    {
        return offsets[shot + 1] - offsets[shot];
    }
    /** One shot's ids as a vector (convenience for tests/compat). */
    std::vector<uint32_t> shotVector(size_t shot) const
    {
        return {data(shot), data(shot) + count(shot)};
    }

  private:
    friend class FrameSimulator;
    std::vector<uint32_t> cursor_; ///< fill scratch (pass 2 of transpose)
};

/**
 * One batch of frame-simulated shots. Reusable: construct once per
 * circuit/batch-size, then `reset(seed)` + `run()` re-samples into the
 * same frame/record/detector buffers without reallocating.
 *
 * The referenced circuit must outlive the simulator.
 */
class FrameSimulator
{
  public:
    /**
     * Simulate `shots` samples of the circuit's detectors/observables.
     * @param seed deterministic RNG seed for the noise processes
     */
    FrameSimulator(const Circuit &circuit, size_t shots, uint64_t seed);

    /**
     * Rewind to a freshly-seeded state, keeping every buffer allocation.
     * Follow with `run()` to sample the next batch.
     */
    void reset(uint64_t seed);

    /** Propagate the circuit, filling detector/observable samples. */
    void run();

    size_t shots() const { return shots_; }
    size_t numDetectors() const { return num_detectors_; }

    /** Detector bits across shots (bit s = detector fired in shot s). */
    const BitVec &detectorBits(size_t det) const { return detectors_[det]; }
    /** Observable flip bits across shots. */
    const BitVec &observableBits(size_t obs) const
    {
        return observables_[obs];
    }
    /** Oracle frame-probe parity bits across shots (scenario engine). */
    const BitVec &probeBits(size_t probe) const { return probes_[probe]; }
    size_t numProbes() const { return probes_.size(); }

    /** Indices of detectors that fired in one shot (O(numDetectors)). */
    std::vector<uint32_t> firedDetectors(size_t shot) const;

    /**
     * Transpose the whole batch's detector bits into per-shot sparse
     * syndrome lists. Scans 64-shot words and skips zero words, so the
     * cost is O(detectors * words + fired) instead of the per-shot
     * firedDetectors() total of O(detectors * shots). `out` buffers are
     * reused across calls.
     */
    void sparseFiredDetectors(SparseSyndromes &out) const;
    SparseSyndromes sparseFiredDetectors() const;

  private:
    void flipRandom(BitVec &plane, double p);
    /** Next reusable record slot (copy-assigned from a frame plane). */
    BitVec &appendRecord(const BitVec &bits);
    /** Next reusable detector slot, cleared. */
    BitVec &appendDetector();

    const Circuit *circuit_;
    size_t shots_;
    Rng rng_;
    std::vector<BitVec> xf_, zf_;   // frames per qubit
    std::vector<BitVec> records_;   // per measurement (slots reused)
    std::vector<BitVec> detectors_; // per detector (slots reused)
    std::vector<BitVec> observables_;
    std::vector<BitVec> probes_;
    size_t num_records_ = 0;
    size_t num_detectors_ = 0;
};

} // namespace surf

#endif // SURF_SIM_FRAME_HH
