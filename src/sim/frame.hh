/**
 * @file
 * Batched Pauli-frame Monte-Carlo sampler. Propagates X/Z error frames
 * through the circuit for many shots at once (bit-packed, one bit per
 * shot), producing exact samples of detector values and observable flips
 * for stabilizer circuits — the same construction as Stim's detector
 * sampler: detectors are reference-frame differences, so frame propagation
 * alone determines them.
 */

#ifndef SURF_SIM_FRAME_HH
#define SURF_SIM_FRAME_HH

#include <cstdint>
#include <vector>

#include "pauli/bitvec.hh"
#include "sim/circuit.hh"
#include "util/rng.hh"

namespace surf {

/** One batch of frame-simulated shots. */
class FrameSimulator
{
  public:
    /**
     * Simulate `shots` samples of the circuit's detectors/observables.
     * @param seed deterministic RNG seed for the noise processes
     */
    FrameSimulator(const Circuit &circuit, size_t shots, uint64_t seed);

    size_t shots() const { return shots_; }
    size_t numDetectors() const { return detectors_.size(); }

    /** Detector bits across shots (bit s = detector fired in shot s). */
    const BitVec &detectorBits(size_t det) const { return detectors_[det]; }
    /** Observable flip bits across shots. */
    const BitVec &observableBits(size_t obs) const
    {
        return observables_[obs];
    }

    /** Indices of detectors that fired in one shot. */
    std::vector<uint32_t> firedDetectors(size_t shot) const;

  private:
    void run(const Circuit &circuit);
    void flipRandom(BitVec &plane, double p);

    size_t shots_;
    Rng rng_;
    std::vector<BitVec> xf_, zf_;          // frames per qubit
    std::vector<BitVec> records_;          // per measurement
    std::vector<BitVec> detectors_;        // per detector
    std::vector<BitVec> observables_;      // per observable
};

} // namespace surf

#endif // SURF_SIM_FRAME_HH
