/**
 * @file
 * CHP-style stabilizer tableau simulator (Aaronson-Gottesman). Used as the
 * correctness oracle for the circuit layer: it executes circuits with real
 * (random) measurement outcomes, which lets tests verify that every
 * detector of a noiseless syndrome circuit is deterministic and that the
 * logical observable is preserved through gauge-measurement deformations
 * (paper Appendix A).
 */

#ifndef SURF_SIM_TABLEAU_HH
#define SURF_SIM_TABLEAU_HH

#include <cstdint>
#include <vector>

#include "pauli/bitvec.hh"
#include "sim/circuit.hh"
#include "util/rng.hh"

namespace surf {

/** Stabilizer state on n qubits with destabilizer bookkeeping. */
class TableauSimulator
{
  public:
    explicit TableauSimulator(uint32_t n, uint64_t seed = 1);

    uint32_t numQubits() const { return n_; }

    void h(uint32_t q);
    void cx(uint32_t c, uint32_t t);
    void x(uint32_t q);
    void z(uint32_t q);

    /** Z-basis measurement; collapses and returns the outcome. */
    bool measureZ(uint32_t q);
    /** X-basis measurement (H-conjugated Z measurement). */
    bool measureX(uint32_t q);
    /** Reset to |0> (measure, flip if 1). */
    void resetZ(uint32_t q);
    /** Reset to |+>. */
    void resetX(uint32_t q);

    /** True when a Z (resp. X) measurement of q would be deterministic. */
    bool isDeterministicZ(uint32_t q) const;
    bool isDeterministicX(uint32_t q) const;

    /**
     * Expectation of a Pauli product: +1 / -1 when the operator is a
     * (signed) stabilizer of the state, 0 when the outcome is random.
     */
    int expectation(const PauliString &p) const;

    /**
     * Execute a full circuit (noise channels are sampled with the given
     * probability; pass sample_noise = false for noiseless runs).
     * Returns the measurement record.
     */
    struct RunResult
    {
        std::vector<bool> measurements;
        std::vector<bool> detectors;
        std::vector<bool> observables;
    };
    static RunResult runCircuit(const Circuit &circuit, uint64_t seed,
                                bool sample_noise = false);

  private:
    // Rows 0..n-1 destabilizers, n..2n-1 stabilizers; row 2n scratch.
    uint32_t n_;
    std::vector<BitVec> x_, z_;
    BitVec r_; // phase bits per row
    Rng rng_;

    void rowCopy(uint32_t dst, uint32_t src);
    void rowMult(uint32_t dst, uint32_t src); // dst *= src with phase
    int rowPhaseExponent(uint32_t dst, uint32_t src) const;
    bool measureZInternal(uint32_t q, bool force_random_to, bool use_force);
};

} // namespace surf

#endif // SURF_SIM_TABLEAU_HH
