/**
 * @file
 * Epoch segment builder: generalizes the memory-experiment circuit to a
 * *segment* of a scenario timeline. A scenario is a sequence of epochs,
 * each with a constant (possibly deformed) patch; segments are appended to
 * one concatenated circuit so data-qubit error frames carry across epoch
 * boundaries, and the first-round detectors of a segment reference the
 * previous segment's final stabilizer inferences so seams introduce no
 * artificial detection events.
 *
 * Seam semantics (computeSeamPlan):
 *  - Carried: the check exists in both patches with identical support; its
 *    first measurement pairs with the previous segment's last inference
 *    (an ordinary time-pair detector spanning the seam).
 *  - CarriedPatched: a basis-type check whose support changed, but every
 *    lost qubit is measured out in the memory basis at the seam (and is
 *    trustworthy, i.e. not defective) and every gained qubit is freshly
 *    initialized in the basis. The seam detector XORs in the measure-out
 *    records; fresh qubits contribute deterministically.
 *  - FreshDeterministic: a basis-type check supported entirely on freshly
 *    initialized qubits; its first measurement is individually
 *    deterministic.
 *  - Fresh: anything else; the first measurement is a reference (no
 *    detector), exactly like the random first round of an opposite-basis
 *    stabilizer at experiment start.
 * Super-stabilizers carry across a seam only when the cluster (type and
 * member supports) is identical on both sides.
 *
 * The same builder runs in two modes: appending to the concatenated
 * sampling circuit (seam references are real earlier measurements), or
 * building a *standalone* segment for the decoder, where carried
 * references become phantom noiseless measurements of a scratch qubit
 * (deterministic zeros, zero DEM contribution) and non-final segments end
 * with a noiseless logical readout so error mechanisms get correct
 * observable attribution. Both modes emit detectors from identical code
 * paths, so the standalone segment's detector ids are the concatenated
 * segment's detector range shifted to zero — which is what lets the
 * DeformedCodeCache reuse one decoder across every recurrence of a
 * deformed shape.
 */

#ifndef SURF_SIM_SEGMENT_HH
#define SURF_SIM_SEGMENT_HH

#include <map>
#include <set>

#include "lattice/patch.hh"
#include "sim/syndrome_circuit.hh"

namespace surf {

/** Placement of one segment within a scenario timeline. */
struct SegmentSpec
{
    PauliType basis = PauliType::Z;
    int rounds = 1;          ///< syndrome rounds in this epoch
    uint64_t startRound = 0; ///< global index of the first round (the gauge
                             ///< measurement phases follow global parity)
    bool first = true;       ///< segment initializes the data qubits
    bool last = true;        ///< segment ends with the data readout
    /** Concatenated mode: emit oracle FrameProbes over the tracked
     *  representative — an epoch-opening probe right after the seam
     *  prologue (continuations) and an epoch-closing probe after the
     *  rounds (before any readout noise). Per-epoch truth is then the
     *  epoch's own-representative frame accumulation, the same accounting
     *  its decoder uses. Probes never perturb sampling; ignored in
     *  standalone mode. */
    bool epochProbes = false;
};

/** How one check of the new patch connects across the seam. */
enum class SeamLink : uint8_t
{
    Fresh,              ///< reference first measurement, no seam detector
    FreshDeterministic, ///< deterministic on freshly initialized qubits
    Carried,            ///< identical support: seam time-pair detector
    CarriedPatched,     ///< basis-type, support patched by seam readouts
};

/**
 * Seam classification of every check/super of the new patch against the
 * previous epoch's patch. Identical for the concatenated and standalone
 * builds of a segment: it is part of the segment's cache identity.
 */
struct SeamPlan
{
    bool continuation = false;     ///< false for the first epoch (no seam)
    std::vector<SeamLink> links;   ///< per check of the new patch
    std::vector<int> prevCheck;    ///< matched previous check index or -1
    /** Per check: lost support qubits whose seam measure-out records patch
     *  the seam detector (CarriedPatched only). */
    std::vector<std::vector<Coord>> removedRefs;
    std::vector<Coord> removed;    ///< data measured out at the seam, sorted
    std::vector<Coord> added;      ///< data initialized at the seam, sorted
    std::vector<int> prevSuper;    ///< per super: matched previous index or -1

    /**
     * Observable continuity (Pauli-frame tracking through deformation):
     * the new logical representative equals the old one times a product of
     * pre-seam basis-type operators with known measured values — inferred
     * stabilizers, value-fresh gauges, seam measure-outs and freshly
     * initialized qubits. The readout parity therefore shifts by the
     * recorded signs, and the circuit XORs those records into the
     * observable so it stays deterministic under zero noise (the physical
     * device applies the same records as a logical frame update).
     */
    bool obsCarryValid = true;       ///< decomposition found (or no change)
    std::vector<int> obsPrevChecks;  ///< prev check indices whose last
                                     ///< records enter the observable
    std::vector<int> obsPrevSupers;  ///< prev supers (instance records)
    std::vector<Coord> obsRemoved;   ///< seam measure-outs entering it
    /** Current-patch basis-type checks measured in the epoch's first
     *  round: when the new representative is only fixed *into*
     *  definiteness by the new code's measurements (rerouted through
     *  re-added corners or fresh clusters), their first records complete
     *  the frame update. */
    std::vector<int> obsCurChecks;
    /**
     * The representative this epoch actually tracks. Usually the patch's
     * stored (minimum-weight) representative; when a deformation creates
     * additional logical degrees of freedom (e.g. a basis-bounded hole)
     * the stored representative can belong to a *different* logical qubit
     * — the plan then falls back to continuing the previous epoch's
     * representative so the memory keeps tracking the stored qubit.
     * obsCarryValid goes false only when no continuation exists at all
     * (the engine treats that timeline as a logical loss).
     */
    std::vector<Coord> trackedLogical;
};

/**
 * Classify the seam between `prev` (null for the first epoch) and `cur`.
 *
 * A carried reference into a previous *gauge* check is only valid when
 * that gauge was measured in the round immediately before the seam
 * (`seamRound - 1`); otherwise the opposite-type gauges measured since
 * have randomized its value, and the link degrades to Fresh. Stabilizer
 * references are always valid (they commute with everything measured).
 *
 * @param untrusted sites whose seam measure-out records must not be
 *        referenced by detectors (defective qubits produce junk readouts)
 * @param seamRound global round index the new epoch starts at (ignored
 *        when prev is null)
 * @param prevTracked representative the previous epoch tracked (null or
 *        empty: the previous patch's stored representative) — thread each
 *        seam's trackedLogical into the next call
 */
SeamPlan computeSeamPlan(const CodePatch *prev, const CodePatch &cur,
                         PauliType basis, const std::set<Coord> &untrusted,
                         uint64_t seamRound = 0,
                         const std::vector<Coord> *prevTracked = nullptr);

/** Measurement references carried across a seam (absolute indices in the
 *  concatenated circuit). Indexed by the *previous* patch's checks/supers. */
struct SeamState
{
    std::vector<size_t> lastMeas; ///< per check; SIZE_MAX = never measured
    std::vector<std::vector<uint32_t>> superPrev; ///< last instance refs
};

/** Output of appending one segment. */
struct SegmentResult
{
    size_t detBegin = 0; ///< first detector id of this segment
    size_t detEnd = 0;   ///< one past the last detector id
    SeamState carry;     ///< references for the next segment's seam
};

/**
 * Append one epoch segment to `ckt`.
 *
 * @param qubitId shared coordinate -> qubit id map; extended in place
 *        (data of the first epoch sorted first, then ancillas in check
 *        order, then seam additions as they appear)
 * @param carried previous segment's references; null when seam.continuation
 *        is false or in phantom mode
 * @param phantomSeam standalone mode: derive carried references from a
 *        noisy one-round overlap replica of the previous patch (emitted
 *        without detectors, so the detector range still mirrors the
 *        concatenated segment, while the DEM gains the seam-straddling
 *        mechanisms) and end non-final segments with a noiseless logical
 *        readout (decoder-view segment for the cache)
 * @param prevPatch previous epoch's patch; required in phantom mode for
 *        continuation segments (source of the overlap replica)
 */
SegmentResult appendSegment(Circuit &ckt, std::map<Coord, uint32_t> &qubitId,
                            const CodePatch &patch, const SegmentSpec &spec,
                            const NoiseParams &noise, const SeamPlan &seam,
                            const SeamState *carried, bool phantomSeam,
                            const CodePatch *prevPatch = nullptr);

/** Build the standalone (decoder-view) circuit of one segment. */
Circuit buildStandaloneSegment(const CodePatch &patch,
                               const SegmentSpec &spec,
                               const NoiseParams &noise,
                               const SeamPlan &seam,
                               const CodePatch *prevPatch = nullptr);

} // namespace surf

#endif // SURF_SIM_SEGMENT_HH
