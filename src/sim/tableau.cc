#include "sim/tableau.hh"

#include "util/logging.hh"

namespace surf {

TableauSimulator::TableauSimulator(uint32_t n, uint64_t seed)
    : n_(n), r_(2 * n + 1), rng_(seed)
{
    x_.assign(2 * n + 1, BitVec(n));
    z_.assign(2 * n + 1, BitVec(n));
    // Destabilizer i = X_i, stabilizer n+i = Z_i (the |0...0> state).
    for (uint32_t i = 0; i < n; ++i) {
        x_[i].set(i, true);
        z_[n + i].set(i, true);
    }
}

void
TableauSimulator::h(uint32_t q)
{
    for (uint32_t i = 0; i < 2 * n_; ++i) {
        const bool xq = x_[i].get(q), zq = z_[i].get(q);
        if (xq && zq)
            r_.flip(i);
        x_[i].set(q, zq);
        z_[i].set(q, xq);
    }
}

void
TableauSimulator::cx(uint32_t c, uint32_t t)
{
    for (uint32_t i = 0; i < 2 * n_; ++i) {
        const bool xc = x_[i].get(c), zc = z_[i].get(c);
        const bool xt = x_[i].get(t), zt = z_[i].get(t);
        if (xc && zt && (xt == zc))
            r_.flip(i);
        x_[i].set(t, xt ^ xc);
        z_[i].set(c, zc ^ zt);
    }
}

void
TableauSimulator::x(uint32_t q)
{
    for (uint32_t i = 0; i < 2 * n_; ++i)
        if (z_[i].get(q))
            r_.flip(i);
}

void
TableauSimulator::z(uint32_t q)
{
    for (uint32_t i = 0; i < 2 * n_; ++i)
        if (x_[i].get(q))
            r_.flip(i);
}

int
TableauSimulator::rowPhaseExponent(uint32_t dst, uint32_t src) const
{
    // Exponent of i accumulated when multiplying row src into row dst
    // (Aaronson-Gottesman rowsum g function), mod 4.
    int g = 0;
    for (uint32_t q = 0; q < n_; ++q) {
        const int x1 = x_[src].get(q), z1 = z_[src].get(q);
        const int x2 = x_[dst].get(q), z2 = z_[dst].get(q);
        if (!x1 && !z1)
            continue;
        if (x1 && z1)
            g += z2 - x2;
        else if (x1)
            g += z2 * (2 * x2 - 1);
        else
            g += x2 * (1 - 2 * z2);
    }
    return g;
}

void
TableauSimulator::rowMult(uint32_t dst, uint32_t src)
{
    const int total = 2 * (r_.get(dst) ? 1 : 0) + 2 * (r_.get(src) ? 1 : 0) +
                      rowPhaseExponent(dst, src);
    const int mod = ((total % 4) + 4) % 4;
    SURF_ASSERT(mod == 0 || mod == 2, "imaginary phase in rowMult");
    r_.set(dst, mod == 2);
    x_[dst] ^= x_[src];
    z_[dst] ^= z_[src];
}

void
TableauSimulator::rowCopy(uint32_t dst, uint32_t src)
{
    x_[dst] = x_[src];
    z_[dst] = z_[src];
    r_.set(dst, r_.get(src));
}

bool
TableauSimulator::isDeterministicZ(uint32_t q) const
{
    for (uint32_t p = n_; p < 2 * n_; ++p)
        if (x_[p].get(q))
            return false;
    return true;
}

bool
TableauSimulator::isDeterministicX(uint32_t q) const
{
    for (uint32_t p = n_; p < 2 * n_; ++p)
        if (z_[p].get(q))
            return false;
    return true;
}

bool
TableauSimulator::measureZInternal(uint32_t q, bool force_to, bool use_force)
{
    // Random case: some stabilizer row anti-commutes with Z_q.
    uint32_t p = 2 * n_;
    for (uint32_t i = n_; i < 2 * n_; ++i) {
        if (x_[i].get(q)) {
            p = i;
            break;
        }
    }
    if (p < 2 * n_) {
        for (uint32_t i = 0; i < 2 * n_; ++i)
            if (i != p && x_[i].get(q))
                rowMult(i, p);
        rowCopy(p - n_, p);
        x_[p].clear();
        z_[p].clear();
        z_[p].set(q, true);
        const bool outcome = use_force ? force_to : rng_.bernoulli(0.5);
        r_.set(p, outcome);
        return outcome;
    }
    // Deterministic case: accumulate into the scratch row.
    const uint32_t scratch = 2 * n_;
    x_[scratch].clear();
    z_[scratch].clear();
    r_.set(scratch, false);
    for (uint32_t i = 0; i < n_; ++i)
        if (x_[i].get(q))
            rowMult(scratch, i + n_);
    return r_.get(scratch);
}

bool
TableauSimulator::measureZ(uint32_t q)
{
    return measureZInternal(q, false, false);
}

bool
TableauSimulator::measureX(uint32_t q)
{
    h(q);
    const bool b = measureZInternal(q, false, false);
    h(q);
    return b;
}

void
TableauSimulator::resetZ(uint32_t q)
{
    if (measureZ(q))
        x(q);
}

void
TableauSimulator::resetX(uint32_t q)
{
    if (measureX(q))
        z(q);
}

int
TableauSimulator::expectation(const PauliString &p) const
{
    SURF_ASSERT(p.numQubits() == n_, "operator size mismatch");
    SURF_ASSERT((p.phase() & 1) == 0, "non-Hermitian phase");
    // Random unless p commutes with every stabilizer row.
    for (uint32_t i = n_; i < 2 * n_; ++i) {
        bool anti = false;
        for (uint32_t q = 0; q < n_; ++q) {
            const bool a = p.xBits().get(q) && z_[i].get(q);
            const bool b = p.zBits().get(q) && x_[i].get(q);
            anti ^= (a != b) && (a || b);
        }
        if (anti)
            return 0;
    }
    // Decompose p over stabilizer rows using the destabilizers: stabilizer
    // row i+n participates iff p anti-commutes with destabilizer row i.
    TableauSimulator copy = *this;
    const uint32_t scratch = 2 * n_;
    copy.x_[scratch].clear();
    copy.z_[scratch].clear();
    copy.r_.set(scratch, false);
    for (uint32_t i = 0; i < n_; ++i) {
        bool anti = false;
        for (uint32_t q = 0; q < n_; ++q) {
            const bool a = p.xBits().get(q) && z_[i].get(q);
            const bool b = p.zBits().get(q) && x_[i].get(q);
            anti ^= (a != b) && (a || b);
        }
        if (anti)
            copy.rowMult(scratch, i + n_);
    }
    SURF_ASSERT(copy.x_[scratch] == p.xBits() &&
                    copy.z_[scratch] == p.zBits(),
                "commuting operator not in the stabilizer group");
    // The tableau row sign is in the Y-convention; PauliString phases are
    // in the XZ form (Y = iXZ), so they differ by i^{#Y}.
    int y_count = 0;
    for (uint32_t q = 0; q < n_; ++q)
        if (p.xBits().get(q) && p.zBits().get(q))
            ++y_count;
    const int row_phase =
        (2 * (copy.r_.get(scratch) ? 1 : 0) + y_count) & 3;
    const int diff = ((row_phase - p.phase()) % 4 + 4) % 4;
    SURF_ASSERT(diff == 0 || diff == 2, "imaginary sign in expectation");
    return diff == 0 ? +1 : -1;
}

TableauSimulator::RunResult
TableauSimulator::runCircuit(const Circuit &circuit, uint64_t seed,
                             bool sample_noise)
{
    TableauSimulator sim(circuit.numQubits(), seed);
    Rng noise_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    RunResult out;
    for (const auto &ins : circuit.instructions()) {
        switch (ins.op) {
          case Op::ResetZ:
            for (uint32_t q : ins.targets)
                sim.resetZ(q);
            break;
          case Op::ResetX:
            for (uint32_t q : ins.targets)
                sim.resetX(q);
            break;
          case Op::MeasureZ:
            for (uint32_t q : ins.targets)
                out.measurements.push_back(sim.measureZ(q));
            break;
          case Op::MeasureX:
            for (uint32_t q : ins.targets)
                out.measurements.push_back(sim.measureX(q));
            break;
          case Op::H:
            for (uint32_t q : ins.targets)
                sim.h(q);
            break;
          case Op::CX:
            for (size_t i = 0; i + 1 < ins.targets.size(); i += 2)
                sim.cx(ins.targets[i], ins.targets[i + 1]);
            break;
          case Op::XError:
            if (sample_noise)
                for (uint32_t q : ins.targets)
                    if (noise_rng.bernoulli(ins.arg))
                        sim.x(q);
            break;
          case Op::ZError:
            if (sample_noise)
                for (uint32_t q : ins.targets)
                    if (noise_rng.bernoulli(ins.arg))
                        sim.z(q);
            break;
          case Op::Depolarize1:
            if (sample_noise) {
                for (uint32_t q : ins.targets) {
                    if (!noise_rng.bernoulli(ins.arg))
                        continue;
                    switch (noise_rng.below(3)) {
                      case 0: sim.x(q); break;
                      case 1: sim.x(q); sim.z(q); break;
                      default: sim.z(q); break;
                    }
                }
            }
            break;
          case Op::Depolarize2:
            if (sample_noise) {
                for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
                    if (!noise_rng.bernoulli(ins.arg))
                        continue;
                    const uint64_t which = 1 + noise_rng.below(15);
                    const uint32_t qa = ins.targets[i], qb = ins.targets[i + 1];
                    const uint64_t pa = which / 4, pb = which % 4;
                    if (pa == 1 || pa == 2) sim.x(qa);
                    if (pa == 2 || pa == 3) sim.z(qa);
                    if (pb == 1 || pb == 2) sim.x(qb);
                    if (pb == 2 || pb == 3) sim.z(qb);
                }
            }
            break;
          case Op::Detector: {
            bool parity = false;
            for (uint32_t m : ins.targets)
                parity ^= out.measurements[m];
            out.detectors.push_back(parity);
            break;
          }
          case Op::ObservableInclude: {
            if (out.observables.size() <= ins.aux)
                out.observables.resize(ins.aux + 1, false);
            bool parity = out.observables[ins.aux];
            for (uint32_t m : ins.targets)
                parity ^= out.measurements[m];
            out.observables[ins.aux] = parity;
            break;
          }
          case Op::Tick:
          case Op::FrameProbe: // oracle instrumentation: identity channel
            break;
        }
    }
    return out;
}

} // namespace surf
