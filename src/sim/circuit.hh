/**
 * @file
 * Stabilizer circuit intermediate representation: the subset of Stim's
 * language needed for surface-code memory experiments. Instructions act on
 * integer qubit ids; DETECTOR instructions reference absolute measurement
 * indices and carry a CSS basis tag so the decoder can split the error
 * model into the two matching graphs.
 */

#ifndef SURF_SIM_CIRCUIT_HH
#define SURF_SIM_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pauli/pauli_string.hh"

namespace surf {

/** Circuit operation kinds. */
enum class Op : uint8_t
{
    ResetZ,       ///< reset qubits to |0>
    ResetX,       ///< reset qubits to |+>
    MeasureZ,     ///< Z-basis measurement (records one bit per target)
    MeasureX,     ///< X-basis measurement
    H,            ///< Hadamard
    CX,           ///< controlled-X; targets are (control, target) pairs
    XError,       ///< independent X flip with probability arg
    ZError,       ///< independent Z flip with probability arg
    Depolarize1,  ///< single-qubit depolarizing channel
    Depolarize2,  ///< two-qubit depolarizing channel on (a, b) pairs
    Detector,     ///< parity of referenced measurements (targets = indices)
    ObservableInclude, ///< logical observable parity contribution
    Tick,         ///< layer separator (timing annotation only)
    FrameProbe,   ///< oracle: record the current error-frame parity over the
                  ///< target qubits (scenario engine epoch instrumentation;
                  ///< no physical analog, ignored by the DEM builder)
};

/** One circuit instruction. */
struct Instruction
{
    Op op;
    std::vector<uint32_t> targets;
    double arg = 0.0;   ///< noise probability for error channels
    uint32_t aux = 0;   ///< Detector: basis tag (0 = X check, 1 = Z check);
                        ///< ObservableInclude: observable index;
                        ///< FrameProbe: (index << 2) | (obs-cancel << 1)
                        ///< | basis-is-Z
};

/** Growable instruction list with measurement/detector bookkeeping. */
class Circuit
{
  public:
    const std::vector<Instruction> &instructions() const { return instrs_; }
    uint32_t numQubits() const { return num_qubits_; }
    size_t numMeasurements() const { return num_measurements_; }
    size_t numDetectors() const { return num_detectors_; }
    size_t numObservables() const { return num_observables_; }
    size_t numProbes() const { return num_probes_; }

    /** Append a gate/reset/measure/noise instruction. Returns the index of
     *  the first measurement recorded (for M ops), else 0. */
    size_t append(Op op, std::vector<uint32_t> targets, double arg = 0.0);

    /** Append a detector over absolute measurement indices.
     *  @param basis_tag the CSS type of the originating check */
    void appendDetector(std::vector<uint32_t> measurement_indices,
                        PauliType basis_tag);

    /** Append observable contributions (absolute measurement indices). */
    void appendObservable(uint32_t observable_index,
                          std::vector<uint32_t> measurement_indices);

    /**
     * Append an oracle frame probe: the simulator records the parity of the
     * error frames that would flip a `basis`-type measurement of the target
     * qubits. Consumes no randomness and leaves the state untouched, so
     * inserting probes never perturbs sampling.
     * @param observable_cancel mark the probe as an observable contribution
     *        for the DEM builder: error frames present at the probe cancel
     *        out of the observable attribution (used by standalone decoder
     *        segments so their one-round overlap replica contributes
     *        syndrome mechanisms but no logical responsibility)
     * @return the probe index
     */
    uint32_t appendFrameProbe(std::vector<uint32_t> qubits, PauliType basis,
                              bool observable_cancel = false);

    /**
     * Replay one instruction verbatim, recomputing the qubit /
     * measurement / detector / observable / probe bookkeeping — the
     * snapshot-restore path (persist/). Unlike the append* builders this
     * never aborts: structural inconsistencies (a detector referencing a
     * future measurement, an odd pairwise-target list, an out-of-range
     * noise probability) return false, and the paranoid loader rejects
     * the whole record instead of trusting it.
     * @return false when the instruction is inconsistent with the
     *         circuit built so far (the circuit is left unchanged)
     */
    bool appendRaw(Instruction ins);

    /** Total count of noise-channel instructions. */
    size_t countNoiseInstructions() const;

    /** Human-readable dump (debugging). */
    std::string str() const;

  private:
    std::vector<Instruction> instrs_;
    uint32_t num_qubits_ = 0;
    size_t num_measurements_ = 0;
    size_t num_detectors_ = 0;
    size_t num_observables_ = 0;
    size_t num_probes_ = 0;
};

/** True for noise-channel operations. */
inline bool
isNoiseOp(Op op)
{
    return op == Op::XError || op == Op::ZError || op == Op::Depolarize1 ||
           op == Op::Depolarize2;
}

} // namespace surf

#endif // SURF_SIM_CIRCUIT_HH
