#include "sim/syndrome_circuit.hh"

#include <algorithm>

#include "util/logging.hh"

namespace surf {

namespace {

/**
 * Canonical CNOT layer slot of a support qubit within a plaquette check
 * (the standard zigzag schedule: X checks go NE,NW,SE,SW and Z checks go
 * NE,SE,NW,SW, which keeps the crossing parity between overlapping X/Z
 * checks even). Returns -1 for non-plaquette offsets.
 */
int
canonicalSlot(const Check &c, Coord q)
{
    if (!c.ancilla)
        return -1;
    const Coord o = q - *c.ancilla;
    static const Coord x_order[4] = {{1, -1}, {-1, -1}, {1, 1}, {-1, 1}};
    static const Coord z_order[4] = {{1, -1}, {1, 1}, {-1, -1}, {-1, 1}};
    const Coord *order = (c.type == PauliType::X) ? x_order : z_order;
    for (int k = 0; k < 4; ++k)
        if (order[k] == o)
            return k;
    return -1;
}

/**
 * True when every support qubit of the check sits on a distinct canonical
 * plaquette slot, so the check can join the interleaved layers. Merged or
 * long-range checks are measured in contiguous sequential blocks instead,
 * which is crossing-safe against every other check by construction.
 */
bool
isCanonical(const Check &c)
{
    if (!c.ancilla || c.support.size() > 4)
        return false;
    bool used[4] = {false, false, false, false};
    for (const Coord &q : c.support) {
        const int k = canonicalSlot(c, q);
        if (k < 0 || used[k])
            return false;
        used[k] = true;
    }
    return true;
}

} // namespace

BuiltCircuit
buildMemoryCircuit(const CodePatch &patch, const MemorySpec &spec,
                   const NoiseParams &noise)
{
    SURF_ASSERT(spec.rounds >= 1, "need at least one round");
    BuiltCircuit out;
    out.obsBasis = spec.basis;
    out.roundsBuilt = static_cast<size_t>(spec.rounds);
    Circuit &ckt = out.circuit;

    // Qubit ids: data first (sorted), then distinct ancillas.
    const auto data = patch.dataList();
    for (const Coord &q : data)
        out.qubitId[q] = static_cast<uint32_t>(out.qubitId.size());
    for (const auto &c : patch.checks())
        if (c.ancilla && !out.qubitId.count(*c.ancilla))
            out.qubitId[*c.ancilla] =
                static_cast<uint32_t>(out.qubitId.size());
    auto qid = [&](Coord c) { return out.qubitId.at(c); };
    auto rate = [&](Coord site) {
        return noise.defectiveSites.count(site) ? noise.pDefect : noise.p;
    };
    auto rate2 = [&](Coord a, Coord b) { return std::max(rate(a), rate(b)); };

    const auto &checks = patch.checks();
    // Effective measurement phase: basis-type gauges go first so their
    // initial value is deterministic on the product initial state.
    auto gauge_phase = [&](const Check &c) {
        return (c.type == spec.basis) ? 0 : 1;
    };
    auto measured_in_round = [&](const Check &c, int r) {
        if (c.role == CheckRole::Stabilizer)
            return true;
        return (r % 2) == gauge_phase(c);
    };

    // --- Initialization ---------------------------------------------------
    {
        std::vector<uint32_t> dq;
        for (const Coord &q : data)
            dq.push_back(qid(q));
        ckt.append(spec.basis == PauliType::Z ? Op::ResetZ : Op::ResetX, dq);
        for (const Coord &q : data)
            ckt.append(spec.basis == PauliType::Z ? Op::XError : Op::ZError,
                       {qid(q)}, rate(q));
    }

    std::vector<size_t> last_meas(checks.size(), SIZE_MAX);
    // Current/previous instance refs per super-stabilizer.
    std::vector<std::vector<uint32_t>> super_prev(patch.supers().size());

    for (int r = 0; r < spec.rounds; ++r) {
        ckt.append(Op::Tick, {});
        // Previous-round measurement indices (for time-pair detectors).
        const std::vector<size_t> prev_meas = last_meas;
        // Data idle noise once per round.
        for (const Coord &q : data)
            ckt.append(Op::Depolarize1, {qid(q)}, rate(q));

        // Checks measured this round, split by measurement style.
        std::vector<int> ancilla_checks, direct_checks;
        for (size_t i = 0; i < checks.size(); ++i) {
            if (!measured_in_round(checks[i], r))
                continue;
            (checks[i].ancilla ? ancilla_checks : direct_checks)
                .push_back(static_cast<int>(i));
        }

        // Ancilla-based extraction.
        for (int i : ancilla_checks) {
            const Coord a = *checks[static_cast<size_t>(i)].ancilla;
            ckt.append(Op::ResetZ, {qid(a)});
            ckt.append(Op::XError, {qid(a)}, rate(a));
        }
        for (int i : ancilla_checks) {
            const auto &c = checks[static_cast<size_t>(i)];
            if (c.type == PauliType::X) {
                ckt.append(Op::H, {qid(*c.ancilla)});
                ckt.append(Op::Depolarize1, {qid(*c.ancilla)},
                           rate(*c.ancilla));
            }
        }
        auto emit_cx = [&](const Check &c, Coord dqc) {
            const Coord a = *c.ancilla;
            if (c.type == PauliType::X)
                ckt.append(Op::CX, {qid(a), qid(dqc)});
            else
                ckt.append(Op::CX, {qid(dqc), qid(a)});
            ckt.append(Op::Depolarize2, {qid(a), qid(dqc)}, rate2(a, dqc));
            if (noise.pCorrelated2q > 0.0)
                ckt.append(Op::Depolarize2, {qid(a), qid(dqc)},
                           noise.pCorrelated2q);
        };
        // Interleaved canonical layers: each support qubit occupies its
        // canonical slot (gaps where neighbors were removed keep the
        // crossing parity with overlapping opposite-type checks even).
        std::vector<int> sequential_checks;
        for (int layer = 0; layer < 4; ++layer) {
            for (int i : ancilla_checks) {
                const auto &c = checks[static_cast<size_t>(i)];
                if (!isCanonical(c)) {
                    if (layer == 0)
                        sequential_checks.push_back(i);
                    continue;
                }
                for (const Coord &dqc : c.support)
                    if (canonicalSlot(c, dqc) == layer)
                        emit_cx(c, dqc);
            }
        }
        // Contiguous blocks for non-canonical (merged / long-range) checks.
        for (int i : sequential_checks) {
            const auto &c = checks[static_cast<size_t>(i)];
            std::vector<Coord> order = c.support;
            std::sort(order.begin(), order.end(), [](Coord p, Coord q) {
                return std::pair(p.y, p.x) < std::pair(q.y, q.x);
            });
            for (const Coord &dqc : order)
                emit_cx(c, dqc);
        }
        for (int i : ancilla_checks) {
            const auto &c = checks[static_cast<size_t>(i)];
            if (c.type == PauliType::X) {
                ckt.append(Op::H, {qid(*c.ancilla)});
                ckt.append(Op::Depolarize1, {qid(*c.ancilla)},
                           rate(*c.ancilla));
            }
        }
        for (int i : ancilla_checks) {
            const Coord a = *checks[static_cast<size_t>(i)].ancilla;
            ckt.append(Op::XError, {qid(a)}, rate(a));
            last_meas[static_cast<size_t>(i)] =
                ckt.append(Op::MeasureZ, {qid(a)});
        }
        // Direct single-qubit gauge measurements (non-destructive
        // projective measurement of a data qubit).
        for (int i : direct_checks) {
            const auto &c = checks[static_cast<size_t>(i)];
            SURF_ASSERT(c.support.size() == 1,
                        "direct measurement needs weight-1 support");
            const Coord q = c.support[0];
            if (c.type == PauliType::X) {
                ckt.append(Op::ZError, {qid(q)}, rate(q));
                last_meas[static_cast<size_t>(i)] =
                    ckt.append(Op::MeasureX, {qid(q)});
            } else {
                ckt.append(Op::XError, {qid(q)}, rate(q));
                last_meas[static_cast<size_t>(i)] =
                    ckt.append(Op::MeasureZ, {qid(q)});
            }
        }

        // --- Detectors for this round ---
        // Plain stabilizer checks: time-pair (or deterministic first round).
        for (size_t i = 0; i < checks.size(); ++i) {
            const auto &c = checks[i];
            if (!measured_in_round(c, r))
                continue;
            const uint32_t m = static_cast<uint32_t>(last_meas[i]);
            if (c.role == CheckRole::Stabilizer) {
                if (prev_meas[i] == SIZE_MAX) {
                    if (r == 0 && c.type == spec.basis)
                        ckt.appendDetector({m}, c.type);
                } else {
                    ckt.appendDetector(
                        {m, static_cast<uint32_t>(prev_meas[i])}, c.type);
                }
            } else if (r == 0 && c.type == spec.basis) {
                // Basis-type gauge checks are individually deterministic
                // on the initial product state.
                ckt.appendDetector({m}, c.type);
            }
        }
        // Super-stabilizers available this round: product vs product.
        for (size_t s = 0; s < patch.supers().size(); ++s) {
            const auto &ss = patch.supers()[s];
            const int phase = (ss.type == spec.basis) ? 0 : 1;
            if ((r % 2) != phase)
                continue;
            std::vector<uint32_t> refs;
            for (int m : ss.members)
                refs.push_back(
                    static_cast<uint32_t>(last_meas[static_cast<size_t>(m)]));
            if (!super_prev[s].empty()) {
                std::vector<uint32_t> both = refs;
                both.insert(both.end(), super_prev[s].begin(),
                            super_prev[s].end());
                ckt.appendDetector(std::move(both), ss.type);
            }
            // First basis-type instance is covered by the individual
            // round-0 gauge detectors; first opposite instance is random.
            super_prev[s] = std::move(refs);
        }
    }

    // --- Final data readout ----------------------------------------------
    std::map<Coord, uint32_t> data_meas;
    for (const Coord &q : data) {
        ckt.append(spec.basis == PauliType::Z ? Op::XError : Op::ZError,
                   {qid(q)}, rate(q));
        const size_t m = ckt.append(
            spec.basis == PauliType::Z ? Op::MeasureZ : Op::MeasureX,
            {qid(q)});
        data_meas[q] = static_cast<uint32_t>(m);
    }
    // Final detectors: each basis-type generator compared with the parity
    // of the final data measurements over its support.
    for (const auto &g : patch.stabilizerGenerators()) {
        if (g.type != spec.basis)
            continue;
        std::vector<uint32_t> refs;
        for (const Coord &q : g.support)
            refs.push_back(data_meas.at(q));
        if (g.isSuper) {
            const auto &prev = super_prev[static_cast<size_t>(g.sourceSuper)];
            if (prev.empty())
                continue; // never measured (single-round experiments)
            refs.insert(refs.end(), prev.begin(), prev.end());
        } else {
            const size_t m = last_meas[static_cast<size_t>(g.sourceCheck)];
            if (m == SIZE_MAX)
                continue;
            refs.push_back(static_cast<uint32_t>(m));
        }
        ckt.appendDetector(std::move(refs), g.type);
    }

    // Logical observable: parity of the bare logical representative.
    const auto &logical =
        (spec.basis == PauliType::Z) ? patch.logicalZ() : patch.logicalX();
    std::vector<uint32_t> obs_refs;
    for (const Coord &q : logical)
        obs_refs.push_back(data_meas.at(q));
    ckt.appendObservable(0, std::move(obs_refs));
    return out;
}

} // namespace surf
