#include "sim/syndrome_circuit.hh"

#include "sim/segment.hh"
#include "util/logging.hh"

namespace surf {

BuiltCircuit
buildMemoryCircuit(const CodePatch &patch, const MemorySpec &spec,
                   const NoiseParams &noise)
{
    SURF_ASSERT(spec.rounds >= 1, "need at least one round");
    BuiltCircuit out;
    out.obsBasis = spec.basis;
    out.roundsBuilt = static_cast<size_t>(spec.rounds);

    // A memory experiment is the trivial one-epoch scenario: a single
    // segment that both initializes and reads out, with no seam.
    SegmentSpec seg;
    seg.basis = spec.basis;
    seg.rounds = spec.rounds;
    seg.startRound = 0;
    seg.first = true;
    seg.last = true;
    const SeamPlan seam = computeSeamPlan(nullptr, patch, spec.basis, {});
    appendSegment(out.circuit, out.qubitId, patch, seg, noise, seam, nullptr,
                  false);
    return out;
}

} // namespace surf
