#include "sim/dem.hh"

#include <algorithm>
#include <iterator>
#include <map>

#include "util/logging.hh"

namespace surf {

namespace {

/** A noise component: which qubits get which single-qubit Pauli. */
struct Component
{
    double p;
    // (qubit, has_x, has_z) entries
    std::vector<std::tuple<uint32_t, bool, bool>> paulis;
};

/** Enumerate the independent components of one noise instruction. */
void
enumerateComponents(const Instruction &ins,
                    std::vector<Component> &out)
{
    out.clear();
    switch (ins.op) {
      case Op::XError:
        for (uint32_t q : ins.targets)
            out.push_back({ins.arg, {{q, true, false}}});
        break;
      case Op::ZError:
        for (uint32_t q : ins.targets)
            out.push_back({ins.arg, {{q, false, true}}});
        break;
      case Op::Depolarize1:
        for (uint32_t q : ins.targets) {
            out.push_back({ins.arg / 3, {{q, true, false}}});
            out.push_back({ins.arg / 3, {{q, true, true}}});
            out.push_back({ins.arg / 3, {{q, false, true}}});
        }
        break;
      case Op::Depolarize2:
        for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
            const uint32_t a = ins.targets[i], b = ins.targets[i + 1];
            for (int which = 1; which < 16; ++which) {
                const int pa = which / 4, pb = which % 4;
                Component c{ins.arg / 15, {}};
                if (pa)
                    c.paulis.push_back(
                        {a, pa == 1 || pa == 2, pa == 2 || pa == 3});
                if (pb)
                    c.paulis.push_back(
                        {b, pb == 1 || pb == 2, pb == 2 || pb == 3});
                out.push_back(std::move(c));
            }
        }
        break;
      default:
        break;
    }
}

} // namespace

DetectorErrorModel
buildDem(const Circuit &circuit, PauliType obs_basis)
{
    DetectorErrorModel dem;
    const auto &instrs = circuit.instructions();

    // Map measurement index -> detectors/observables referencing it, and
    // record detector tags.
    std::vector<std::vector<uint32_t>> meas_to_dets(
        circuit.numMeasurements());
    std::vector<uint8_t> meas_flips_obs(circuit.numMeasurements(), 0);
    {
        uint32_t det_id = 0;
        for (const auto &ins : instrs) {
            if (ins.op == Op::Detector) {
                for (uint32_t m : ins.targets)
                    meas_to_dets[m].push_back(det_id);
                dem.detectorTag.push_back(static_cast<uint8_t>(ins.aux));
                ++det_id;
            } else if (ins.op == Op::ObservableInclude) {
                for (uint32_t m : ins.targets)
                    meas_flips_obs[m] ^= 1;
            }
        }
        dem.numDetectors = det_id;
    }

    // Accumulate components keyed by (flipped detector set, obs flip).
    std::map<std::pair<std::vector<uint32_t>, bool>, double> merged;

    std::vector<size_t> meas_before(instrs.size() + 1, 0);
    for (size_t i = 0; i < instrs.size(); ++i) {
        meas_before[i + 1] = meas_before[i];
        if (instrs[i].op == Op::MeasureZ || instrs[i].op == Op::MeasureX)
            meas_before[i + 1] += instrs[i].targets.size();
    }

    // Backward sensitivity pass (the Stim approach): walk the circuit
    // once from the end, maintaining for every qubit the sorted set of
    // detectors an X (sx) or Z (sz) fault at the current position would
    // flip. A noise site then reads its generators' flip sets off in
    // O(set size) instead of propagating each one forward through the
    // rest of the circuit. The observable is carried inside the sets as
    // the sentinel id `obs_id` (sorting above every detector).
    const uint32_t obs_id = static_cast<uint32_t>(dem.numDetectors);
    std::vector<uint32_t> xor_tmp; // shared symmetric-difference scratch
    auto xorMerge = [&](std::vector<uint32_t> &acc,
                        const std::vector<uint32_t> &other) {
        xor_tmp.clear();
        std::set_symmetric_difference(acc.begin(), acc.end(), other.begin(),
                                      other.end(),
                                      std::back_inserter(xor_tmp));
        acc.swap(xor_tmp);
    };

    const uint32_t nq = circuit.numQubits();
    std::vector<std::vector<uint32_t>> sx(nq), sz(nq);
    // Flip sets of measurement m (detectors referencing it, plus obs).
    std::vector<std::vector<uint32_t>> meas_flips(circuit.numMeasurements());
    for (size_t m = 0; m < meas_flips.size(); ++m) {
        meas_flips[m] = {meas_to_dets[m].begin(), meas_to_dets[m].end()};
        if (meas_flips_obs[m])
            meas_flips[m].push_back(obs_id); // ids ascending: obs_id last
    }
    // Per noise site: (qubit, X flip set, Z flip set) per distinct target.
    struct SiteSensitivity
    {
        size_t site;
        std::vector<std::tuple<uint32_t, std::vector<uint32_t>,
                               std::vector<uint32_t>>>
            per_qubit;
    };
    std::vector<SiteSensitivity> sites; // built backward, replayed forward

    for (size_t i = instrs.size(); i-- > 0;) {
        const auto &ins = instrs[i];
        switch (ins.op) {
          case Op::ResetZ:
          case Op::ResetX:
            // Faults before a reset are erased by it.
            for (uint32_t q : ins.targets) {
                sx[q].clear();
                sz[q].clear();
            }
            break;
          case Op::MeasureZ:
            for (size_t k = ins.targets.size(); k-- > 0;) {
                const uint32_t q = ins.targets[k];
                // An X before the measurement flips the record (and
                // survives it); a Z is destroyed by the collapse.
                xorMerge(sx[q], meas_flips[meas_before[i] + k]);
                sz[q].clear();
            }
            break;
          case Op::MeasureX:
            for (size_t k = ins.targets.size(); k-- > 0;) {
                const uint32_t q = ins.targets[k];
                xorMerge(sz[q], meas_flips[meas_before[i] + k]);
                sx[q].clear();
            }
            break;
          case Op::H:
            for (uint32_t q : ins.targets)
                std::swap(sx[q], sz[q]);
            break;
          case Op::CX:
            // Reverse of x_t ^= x_c; z_c ^= z_t: an X on the control
            // also acts as X on the target afterwards, a Z on the target
            // also as Z on the control.
            for (size_t p = ins.targets.size() / 2; p-- > 0;) {
                const uint32_t c = ins.targets[2 * p];
                const uint32_t t = ins.targets[2 * p + 1];
                xorMerge(sx[c], sx[t]);
                xorMerge(sz[t], sz[c]);
            }
            break;
          case Op::FrameProbe:
            // Observable-cancel probes fold the probed frame parity into
            // the observable: faults *before* the probe pick up obs_id
            // here and again at the readout, cancelling their logical
            // attribution (standalone segments use this to strip the
            // overlap replica of logical responsibility). Non-destructive:
            // nothing is cleared. Plain oracle probes are inert.
            if (ins.aux & 2u) {
                const std::vector<uint32_t> obs_ref{obs_id};
                for (uint32_t q : ins.targets)
                    xorMerge((ins.aux & 1u) ? sx[q] : sz[q], obs_ref);
            }
            break;
          default:
            if (isNoiseOp(ins.op) && ins.arg > 0.0) {
                SiteSensitivity snap;
                snap.site = i;
                for (uint32_t q : ins.targets) {
                    bool seen = false;
                    for (const auto &[pq, px, pz] : snap.per_qubit)
                        if (pq == q)
                            seen = true;
                    if (!seen)
                        snap.per_qubit.emplace_back(q, sx[q], sz[q]);
                }
                sites.push_back(std::move(snap));
            }
            break; // detector/observable/tick: no effect on frames
        }
    }
    std::reverse(sites.begin(), sites.end()); // forward site order

    // Assemble components per site: detector flips are GF(2)-linear in
    // single-Pauli generators, so every component's flip set is the
    // symmetric difference of its generators' sensitivity sets.
    std::vector<Component> components;
    std::vector<uint32_t> comp_dets;
    for (const SiteSensitivity &snap : sites) {
        enumerateComponents(instrs[snap.site], components);
        auto setsFor = [&](uint32_t q)
            -> const std::tuple<uint32_t, std::vector<uint32_t>,
                                std::vector<uint32_t>> & {
            for (const auto &entry : snap.per_qubit)
                if (std::get<0>(entry) == q)
                    return entry;
            SURF_ASSERT(false, "noise component targets a foreign qubit");
            return snap.per_qubit.front();
        };
        for (const Component &comp : components) {
            comp_dets.clear();
            for (const auto &[q, fx, fz] : comp.paulis) {
                const auto &[sq, sx_set, sz_set] = setsFor(q);
                if (fx)
                    xorMerge(comp_dets, sx_set);
                if (fz)
                    xorMerge(comp_dets, sz_set);
            }
            bool obs_flip = false;
            if (!comp_dets.empty() && comp_dets.back() == obs_id) {
                obs_flip = true;
                comp_dets.pop_back();
            }
            if (comp_dets.empty() && !obs_flip)
                continue;
            auto key = std::make_pair(comp_dets, obs_flip);
            double &slot = merged[key];
            slot = slot + comp.p - 2 * slot * comp.p;
        }
    }

    // Split each merged component by detector basis and emit graphlike
    // edges; hyperedges fall back to consecutive pairing.
    const uint8_t obs_tag = (obs_basis == PauliType::Z) ? 1 : 0;
    std::map<std::tuple<int, int, int>, std::pair<double, double>>
        edge_acc[2]; // (a,b,obs) -> accumulated probability per tag

    auto accumulate = [&](uint8_t tag, int a, int b, bool obs, double p) {
        if (a > b)
            std::swap(a, b);
        auto &slot =
            edge_acc[tag][{a, b, obs ? 1 : 0}];
        slot.first = slot.first + p - 2 * slot.first * p;
        (void)slot.second;
    };

    for (const auto &[key, p] : merged) {
        const auto &[dets, obs_flip] = key;
        std::vector<uint32_t> side[2];
        for (uint32_t d : dets)
            side[dem.detectorTag[d]].push_back(d);
        bool obs_assigned = false;
        for (int tag = 0; tag < 2; ++tag) {
            auto &ds = side[tag];
            if (ds.empty())
                continue;
            const bool carries_obs = obs_flip && tag == obs_tag;
            if (ds.size() <= 2) {
                const int a = static_cast<int>(ds[0]);
                const int b = ds.size() == 2 ? static_cast<int>(ds[1]) : -1;
                accumulate(static_cast<uint8_t>(tag), a, b, carries_obs, p);
            } else {
                // Hyperedge: pair consecutive detectors (construction
                // order is round-major, so consecutive ids are close).
                ++dem.decomposedComponents;
                for (size_t k = 0; k < ds.size(); k += 2) {
                    const int a = static_cast<int>(ds[k]);
                    const int b = (k + 1 < ds.size())
                                      ? static_cast<int>(ds[k + 1])
                                      : -1;
                    const bool last = k + 2 >= ds.size();
                    accumulate(static_cast<uint8_t>(tag), a, b,
                               carries_obs && last, p);
                }
            }
            obs_assigned |= carries_obs;
        }
        if (obs_flip && !obs_assigned) {
            if (side[obs_tag].empty() && !side[1 - obs_tag].empty()) {
                // The observable-relevant side fired no detector: treat as
                // an undetectable logical on that side.
                dem.undetectableObsProb =
                    dem.undetectableObsProb + p -
                    2 * dem.undetectableObsProb * p;
            } else {
                dem.undetectableObsProb =
                    dem.undetectableObsProb + p -
                    2 * dem.undetectableObsProb * p;
            }
        }
    }

    for (int tag = 0; tag < 2; ++tag)
        for (const auto &[key, slot] : edge_acc[tag]) {
            const auto &[a, b, obs] = key;
            dem.edges[tag].push_back({a, b, slot.first, obs == 1});
        }
    return dem;
}

} // namespace surf
