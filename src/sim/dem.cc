#include "sim/dem.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace surf {

namespace {

/** Single-frame symbolic propagation state. */
struct Frame
{
    std::vector<uint8_t> x, z;
    int active = 0;

    explicit Frame(uint32_t n) : x(n, 0), z(n, 0) {}

    void
    seed(uint32_t q, bool fx, bool fz)
    {
        if (fx && !x[q])
            ++active;
        if (!fx && x[q])
            --active;
        x[q] = fx;
        if (fz && !z[q])
            ++active;
        if (!fz && z[q])
            --active;
        z[q] = fz;
    }

    void
    clearQubit(uint32_t q)
    {
        active -= x[q] + z[q];
        x[q] = z[q] = 0;
    }
};

/** A noise component: which qubits get which single-qubit Pauli. */
struct Component
{
    double p;
    // (qubit, has_x, has_z) entries
    std::vector<std::tuple<uint32_t, bool, bool>> paulis;
};

/** Enumerate the independent components of one noise instruction. */
void
enumerateComponents(const Instruction &ins,
                    std::vector<Component> &out)
{
    out.clear();
    switch (ins.op) {
      case Op::XError:
        for (uint32_t q : ins.targets)
            out.push_back({ins.arg, {{q, true, false}}});
        break;
      case Op::ZError:
        for (uint32_t q : ins.targets)
            out.push_back({ins.arg, {{q, false, true}}});
        break;
      case Op::Depolarize1:
        for (uint32_t q : ins.targets) {
            out.push_back({ins.arg / 3, {{q, true, false}}});
            out.push_back({ins.arg / 3, {{q, true, true}}});
            out.push_back({ins.arg / 3, {{q, false, true}}});
        }
        break;
      case Op::Depolarize2:
        for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
            const uint32_t a = ins.targets[i], b = ins.targets[i + 1];
            for (int which = 1; which < 16; ++which) {
                const int pa = which / 4, pb = which % 4;
                Component c{ins.arg / 15, {}};
                if (pa)
                    c.paulis.push_back(
                        {a, pa == 1 || pa == 2, pa == 2 || pa == 3});
                if (pb)
                    c.paulis.push_back(
                        {b, pb == 1 || pb == 2, pb == 2 || pb == 3});
                out.push_back(std::move(c));
            }
        }
        break;
      default:
        break;
    }
}

} // namespace

DetectorErrorModel
buildDem(const Circuit &circuit, PauliType obs_basis)
{
    DetectorErrorModel dem;
    const auto &instrs = circuit.instructions();

    // Map measurement index -> detectors/observables referencing it, and
    // record detector tags.
    std::vector<std::vector<uint32_t>> meas_to_dets(
        circuit.numMeasurements());
    std::vector<uint8_t> meas_flips_obs(circuit.numMeasurements(), 0);
    {
        uint32_t det_id = 0;
        for (const auto &ins : instrs) {
            if (ins.op == Op::Detector) {
                for (uint32_t m : ins.targets)
                    meas_to_dets[m].push_back(det_id);
                dem.detectorTag.push_back(static_cast<uint8_t>(ins.aux));
                ++det_id;
            } else if (ins.op == Op::ObservableInclude) {
                for (uint32_t m : ins.targets)
                    meas_flips_obs[m] ^= 1;
            }
        }
        dem.numDetectors = det_id;
    }

    // Accumulate components keyed by (flipped detector set, obs flip).
    std::map<std::pair<std::vector<uint32_t>, bool>, double> merged;

    Frame frame(circuit.numQubits());
    std::vector<Component> components;
    std::vector<size_t> meas_before(instrs.size() + 1, 0);
    for (size_t i = 0; i < instrs.size(); ++i) {
        meas_before[i + 1] = meas_before[i];
        if (instrs[i].op == Op::MeasureZ || instrs[i].op == Op::MeasureX)
            meas_before[i + 1] += instrs[i].targets.size();
    }

    for (size_t site = 0; site < instrs.size(); ++site) {
        if (!isNoiseOp(instrs[site].op) || instrs[site].arg <= 0.0)
            continue;
        enumerateComponents(instrs[site], components);
        for (const Component &comp : components) {
            // Seed the frame and propagate to the end of the circuit.
            for (const auto &[q, fx, fz] : comp.paulis)
                frame.seed(q, fx, fz);
            std::vector<uint32_t> det_flips;
            bool obs_flip = false;
            size_t meas_index = meas_before[site + 1];
            for (size_t i = site + 1;
                 i < instrs.size() && (frame.active > 0 || true); ++i) {
                const auto &ins = instrs[i];
                switch (ins.op) {
                  case Op::ResetZ:
                  case Op::ResetX:
                    for (uint32_t q : ins.targets)
                        frame.clearQubit(q);
                    break;
                  case Op::MeasureZ:
                    for (uint32_t q : ins.targets) {
                        if (frame.x[q]) {
                            for (uint32_t d : meas_to_dets[meas_index])
                                det_flips.push_back(d);
                            obs_flip ^= meas_flips_obs[meas_index];
                        }
                        if (frame.z[q]) {
                            frame.active -= 1;
                            frame.z[q] = 0;
                        }
                        ++meas_index;
                    }
                    break;
                  case Op::MeasureX:
                    for (uint32_t q : ins.targets) {
                        if (frame.z[q]) {
                            for (uint32_t d : meas_to_dets[meas_index])
                                det_flips.push_back(d);
                            obs_flip ^= meas_flips_obs[meas_index];
                        }
                        if (frame.x[q]) {
                            frame.active -= 1;
                            frame.x[q] = 0;
                        }
                        ++meas_index;
                    }
                    break;
                  case Op::H:
                    for (uint32_t q : ins.targets)
                        std::swap(frame.x[q], frame.z[q]);
                    break;
                  case Op::CX:
                    for (size_t k = 0; k + 1 < ins.targets.size(); k += 2) {
                        const uint32_t c = ins.targets[k];
                        const uint32_t t = ins.targets[k + 1];
                        if (frame.x[c]) {
                            frame.active += frame.x[t] ? -1 : 1;
                            frame.x[t] ^= 1;
                        }
                        if (frame.z[t]) {
                            frame.active += frame.z[c] ? -1 : 1;
                            frame.z[c] ^= 1;
                        }
                    }
                    break;
                  default:
                    break; // noise/detector/observable/tick: no effect
                }
                if (frame.active == 0)
                    break;
            }
            // Reset any leftover frame for the next component.
            if (frame.active > 0) {
                std::fill(frame.x.begin(), frame.x.end(), 0);
                std::fill(frame.z.begin(), frame.z.end(), 0);
                frame.active = 0;
            }
            // XOR-reduce duplicate detector flips.
            std::sort(det_flips.begin(), det_flips.end());
            std::vector<uint32_t> reduced;
            for (size_t k = 0; k < det_flips.size();) {
                size_t j = k;
                while (j < det_flips.size() && det_flips[j] == det_flips[k])
                    ++j;
                if ((j - k) % 2 == 1)
                    reduced.push_back(det_flips[k]);
                k = j;
            }
            if (reduced.empty() && !obs_flip)
                continue;
            auto key = std::make_pair(std::move(reduced), obs_flip);
            double &slot = merged[key];
            slot = slot + comp.p - 2 * slot * comp.p;
        }
    }

    // Split each merged component by detector basis and emit graphlike
    // edges; hyperedges fall back to consecutive pairing.
    const uint8_t obs_tag = (obs_basis == PauliType::Z) ? 1 : 0;
    std::map<std::tuple<int, int, int>, std::pair<double, double>>
        edge_acc[2]; // (a,b,obs) -> accumulated probability per tag

    auto accumulate = [&](uint8_t tag, int a, int b, bool obs, double p) {
        if (a > b)
            std::swap(a, b);
        auto &slot =
            edge_acc[tag][{a, b, obs ? 1 : 0}];
        slot.first = slot.first + p - 2 * slot.first * p;
        (void)slot.second;
    };

    for (const auto &[key, p] : merged) {
        const auto &[dets, obs_flip] = key;
        std::vector<uint32_t> side[2];
        for (uint32_t d : dets)
            side[dem.detectorTag[d]].push_back(d);
        bool obs_assigned = false;
        for (int tag = 0; tag < 2; ++tag) {
            auto &ds = side[tag];
            if (ds.empty())
                continue;
            const bool carries_obs = obs_flip && tag == obs_tag;
            if (ds.size() <= 2) {
                const int a = static_cast<int>(ds[0]);
                const int b = ds.size() == 2 ? static_cast<int>(ds[1]) : -1;
                accumulate(static_cast<uint8_t>(tag), a, b, carries_obs, p);
            } else {
                // Hyperedge: pair consecutive detectors (construction
                // order is round-major, so consecutive ids are close).
                ++dem.decomposedComponents;
                for (size_t k = 0; k < ds.size(); k += 2) {
                    const int a = static_cast<int>(ds[k]);
                    const int b = (k + 1 < ds.size())
                                      ? static_cast<int>(ds[k + 1])
                                      : -1;
                    const bool last = k + 2 >= ds.size();
                    accumulate(static_cast<uint8_t>(tag), a, b,
                               carries_obs && last, p);
                }
            }
            obs_assigned |= carries_obs;
        }
        if (obs_flip && !obs_assigned) {
            if (side[obs_tag].empty() && !side[1 - obs_tag].empty()) {
                // The observable-relevant side fired no detector: treat as
                // an undetectable logical on that side.
                dem.undetectableObsProb =
                    dem.undetectableObsProb + p -
                    2 * dem.undetectableObsProb * p;
            } else {
                dem.undetectableObsProb =
                    dem.undetectableObsProb + p -
                    2 * dem.undetectableObsProb * p;
            }
        }
    }

    for (int tag = 0; tag < 2; ++tag)
        for (const auto &[key, slot] : edge_acc[tag]) {
            const auto &[a, b, obs] = key;
            dem.edges[tag].push_back({a, b, slot.first, obs == 1});
        }
    return dem;
}

} // namespace surf
