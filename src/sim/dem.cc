#include "sim/dem.hh"

#include <algorithm>
#include <array>
#include <iterator>
#include <map>
#include <unordered_map>

#include "util/logging.hh"

namespace surf {

namespace {

/** A noise component: which qubits get which single-qubit Pauli. */
struct Component
{
    double p;
    // (qubit, has_x, has_z) entries
    std::vector<std::tuple<uint32_t, bool, bool>> paulis;
};

/**
 * Enumerate the independent components of one noise instruction into a
 * reusable pool (entries keep their heap buffers across calls).
 * @return the number of pool entries filled
 */
size_t
enumerateComponents(const Instruction &ins, std::vector<Component> &pool)
{
    size_t n = 0;
    auto emit = [&](double p) -> Component & {
        if (pool.size() <= n)
            pool.emplace_back();
        Component &c = pool[n++];
        c.p = p;
        c.paulis.clear();
        return c;
    };
    switch (ins.op) {
      case Op::XError:
        for (uint32_t q : ins.targets)
            emit(ins.arg).paulis.push_back({q, true, false});
        break;
      case Op::ZError:
        for (uint32_t q : ins.targets)
            emit(ins.arg).paulis.push_back({q, false, true});
        break;
      case Op::Depolarize1:
        for (uint32_t q : ins.targets) {
            emit(ins.arg / 3).paulis.push_back({q, true, false});
            emit(ins.arg / 3).paulis.push_back({q, true, true});
            emit(ins.arg / 3).paulis.push_back({q, false, true});
        }
        break;
      case Op::Depolarize2:
        for (size_t i = 0; i + 1 < ins.targets.size(); i += 2) {
            const uint32_t a = ins.targets[i], b = ins.targets[i + 1];
            for (int which = 1; which < 16; ++which) {
                const int pa = which / 4, pb = which % 4;
                Component &c = emit(ins.arg / 15);
                if (pa)
                    c.paulis.push_back(
                        {a, pa == 1 || pa == 2, pa == 2 || pa == 3});
                if (pb)
                    c.paulis.push_back(
                        {b, pb == 1 || pb == 2, pb == 2 || pb == 3});
            }
        }
        break;
      default:
        break;
    }
    return n;
}

/** FNV-1a over the detector-id words of a flip set. */
struct FlipSetHash
{
    size_t
    operator()(const std::vector<uint32_t> &v) const
    {
        uint64_t h = 1469598103934665603ULL;
        for (uint32_t x : v) {
            h ^= x;
            h *= 1099511628211ULL;
        }
        return static_cast<size_t>(h);
    }
};

} // namespace

DetectorErrorModel
buildDem(const Circuit &circuit, PauliType obs_basis)
{
    DetectorErrorModel dem;
    const auto &instrs = circuit.instructions();

    // Map measurement index -> detectors/observables referencing it, and
    // record detector tags.
    std::vector<std::vector<uint32_t>> meas_to_dets(
        circuit.numMeasurements());
    std::vector<uint8_t> meas_flips_obs(circuit.numMeasurements(), 0);
    {
        uint32_t det_id = 0;
        for (const auto &ins : instrs) {
            if (ins.op == Op::Detector) {
                for (uint32_t m : ins.targets)
                    meas_to_dets[m].push_back(det_id);
                dem.detectorTag.push_back(static_cast<uint8_t>(ins.aux));
                ++det_id;
            } else if (ins.op == Op::ObservableInclude) {
                for (uint32_t m : ins.targets)
                    meas_flips_obs[m] ^= 1;
            }
        }
        dem.numDetectors = det_id;
    }

    // Accumulate components keyed by flipped detector set, one slot per
    // observable-flip value (hashed: this map sees every component of
    // every noise site, so it is the hottest structure of the build).
    std::unordered_map<std::vector<uint32_t>, std::array<double, 2>,
                       FlipSetHash>
        merged;
    merged.reserve(4 * circuit.countNoiseInstructions() + 16);

    std::vector<size_t> meas_before(instrs.size() + 1, 0);
    for (size_t i = 0; i < instrs.size(); ++i) {
        meas_before[i + 1] = meas_before[i];
        if (instrs[i].op == Op::MeasureZ || instrs[i].op == Op::MeasureX)
            meas_before[i + 1] += instrs[i].targets.size();
    }

    // Backward sensitivity pass (the Stim approach): walk the circuit
    // once from the end, maintaining for every qubit the sorted set of
    // detectors an X (sx) or Z (sz) fault at the current position would
    // flip. A noise site then reads its generators' flip sets off in
    // O(set size) instead of propagating each one forward through the
    // rest of the circuit. The observable is carried inside the sets as
    // the sentinel id `obs_id` (sorting above every detector).
    const uint32_t obs_id = static_cast<uint32_t>(dem.numDetectors);
    std::vector<uint32_t> xor_tmp; // shared symmetric-difference scratch
    auto xorMerge = [&](std::vector<uint32_t> &acc,
                        const std::vector<uint32_t> &other) {
        xor_tmp.clear();
        std::set_symmetric_difference(acc.begin(), acc.end(), other.begin(),
                                      other.end(),
                                      std::back_inserter(xor_tmp));
        acc.swap(xor_tmp);
    };

    const uint32_t nq = circuit.numQubits();
    std::vector<std::vector<uint32_t>> sx(nq), sz(nq);
    // Flip sets of measurement m (detectors referencing it, plus obs).
    std::vector<std::vector<uint32_t>> meas_flips(circuit.numMeasurements());
    for (size_t m = 0; m < meas_flips.size(); ++m) {
        meas_flips[m] = {meas_to_dets[m].begin(), meas_to_dets[m].end()};
        if (meas_flips_obs[m])
            meas_flips[m].push_back(obs_id); // ids ascending: obs_id last
    }
    // Noise sites are folded into `merged` inline, right where the
    // backward pass has their sensitivity sets live in sx/sz — no
    // per-site snapshot copies. Component buffers are pooled.
    std::vector<Component> comp_pool;
    std::vector<uint32_t> comp_dets;
    auto foldNoiseSite = [&](const Instruction &ins) {
        const size_t n_comp = enumerateComponents(ins, comp_pool);
        for (size_t c = 0; c < n_comp; ++c) {
            const Component &comp = comp_pool[c];
            comp_dets.clear();
            for (const auto &[q, fx, fz] : comp.paulis) {
                if (fx)
                    xorMerge(comp_dets, sx[q]);
                if (fz)
                    xorMerge(comp_dets, sz[q]);
            }
            bool obs_flip = false;
            if (!comp_dets.empty() && comp_dets.back() == obs_id) {
                obs_flip = true;
                comp_dets.pop_back();
            }
            if (comp_dets.empty() && !obs_flip)
                continue;
            double &slot = merged[comp_dets][obs_flip ? 1 : 0];
            slot = slot + comp.p - 2 * slot * comp.p;
        }
    };

    for (size_t i = instrs.size(); i-- > 0;) {
        const auto &ins = instrs[i];
        switch (ins.op) {
          case Op::ResetZ:
          case Op::ResetX:
            // Faults before a reset are erased by it.
            for (uint32_t q : ins.targets) {
                sx[q].clear();
                sz[q].clear();
            }
            break;
          case Op::MeasureZ:
            for (size_t k = ins.targets.size(); k-- > 0;) {
                const uint32_t q = ins.targets[k];
                // An X before the measurement flips the record (and
                // survives it); a Z is destroyed by the collapse.
                xorMerge(sx[q], meas_flips[meas_before[i] + k]);
                sz[q].clear();
            }
            break;
          case Op::MeasureX:
            for (size_t k = ins.targets.size(); k-- > 0;) {
                const uint32_t q = ins.targets[k];
                xorMerge(sz[q], meas_flips[meas_before[i] + k]);
                sx[q].clear();
            }
            break;
          case Op::H:
            for (uint32_t q : ins.targets)
                std::swap(sx[q], sz[q]);
            break;
          case Op::CX:
            // Reverse of x_t ^= x_c; z_c ^= z_t: an X on the control
            // also acts as X on the target afterwards, a Z on the target
            // also as Z on the control.
            for (size_t p = ins.targets.size() / 2; p-- > 0;) {
                const uint32_t c = ins.targets[2 * p];
                const uint32_t t = ins.targets[2 * p + 1];
                xorMerge(sx[c], sx[t]);
                xorMerge(sz[t], sz[c]);
            }
            break;
          case Op::FrameProbe:
            // Observable-cancel probes fold the probed frame parity into
            // the observable: faults *before* the probe pick up obs_id
            // here and again at the readout, cancelling their logical
            // attribution (standalone segments use this to strip the
            // overlap replica of logical responsibility). Non-destructive:
            // nothing is cleared. Plain oracle probes are inert.
            if (ins.aux & 2u) {
                const std::vector<uint32_t> obs_ref{obs_id};
                for (uint32_t q : ins.targets)
                    xorMerge((ins.aux & 1u) ? sx[q] : sz[q], obs_ref);
            }
            break;
          default:
            // Detector flips are GF(2)-linear in single-Pauli
            // generators, so every component's flip set is the
            // symmetric difference of its generators' live sensitivity
            // sets.
            if (isNoiseOp(ins.op) && ins.arg > 0.0)
                foldNoiseSite(ins);
            break; // detector/observable/tick: no effect on frames
        }
    }

    // Split each merged component by detector basis and emit graphlike
    // edges; hyperedges fall back to consecutive pairing. The edge
    // accumulator is hashed on a packed (a, b, obs) key; the final edge
    // list is sorted on that key, so the output order is independent of
    // hash iteration order.
    const uint8_t obs_tag = (obs_basis == PauliType::Z) ? 1 : 0;
    std::unordered_map<uint64_t, double> edge_acc[2];
    edge_acc[0].reserve(1024);
    edge_acc[1].reserve(1024);

    auto accumulate = [&](uint8_t tag, int a, int b, bool obs, double p) {
        if (a > b)
            std::swap(a, b);
        // a, b in [-1, numDetectors): +1 keeps them non-negative.
        const uint64_t key = (static_cast<uint64_t>(a + 1) << 33) |
                             (static_cast<uint64_t>(b + 1) << 1) |
                             (obs ? 1u : 0u);
        double &slot = edge_acc[tag][key];
        slot = slot + p - 2 * slot * p;
    };

    std::vector<uint32_t> side[2];
    for (const auto &[dets, probs] : merged) {
      for (int obs_case = 0; obs_case < 2; ++obs_case) {
        const double p = probs[obs_case];
        if (p <= 0.0)
            continue;
        const bool obs_flip = obs_case == 1;
        side[0].clear();
        side[1].clear();
        for (uint32_t d : dets)
            side[dem.detectorTag[d]].push_back(d);
        bool obs_assigned = false;
        for (int tag = 0; tag < 2; ++tag) {
            auto &ds = side[tag];
            if (ds.empty())
                continue;
            const bool carries_obs = obs_flip && tag == obs_tag;
            if (ds.size() <= 2) {
                const int a = static_cast<int>(ds[0]);
                const int b = ds.size() == 2 ? static_cast<int>(ds[1]) : -1;
                accumulate(static_cast<uint8_t>(tag), a, b, carries_obs, p);
            } else {
                // Hyperedge: pair consecutive detectors (construction
                // order is round-major, so consecutive ids are close).
                ++dem.decomposedComponents;
                for (size_t k = 0; k < ds.size(); k += 2) {
                    const int a = static_cast<int>(ds[k]);
                    const int b = (k + 1 < ds.size())
                                      ? static_cast<int>(ds[k + 1])
                                      : -1;
                    const bool last = k + 2 >= ds.size();
                    accumulate(static_cast<uint8_t>(tag), a, b,
                               carries_obs && last, p);
                }
            }
            obs_assigned |= carries_obs;
        }
        if (obs_flip && !obs_assigned)
            dem.undetectableObsProb = dem.undetectableObsProb + p -
                                      2 * dem.undetectableObsProb * p;
      }
    }

    std::vector<std::pair<uint64_t, double>> sorted_edges;
    for (int tag = 0; tag < 2; ++tag) {
        sorted_edges.assign(edge_acc[tag].begin(), edge_acc[tag].end());
        std::sort(sorted_edges.begin(), sorted_edges.end());
        dem.edges[tag].reserve(sorted_edges.size());
        for (const auto &[key, p] : sorted_edges) {
            const int a = static_cast<int>(key >> 33) - 1;
            const int b =
                static_cast<int>((key >> 1) & 0xFFFFFFFFull) - 1;
            dem.edges[tag].push_back({a, b, p, (key & 1) != 0});
        }
    }
    return dem;
}

} // namespace surf
