#include "sim/circuit.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace surf {

size_t
Circuit::append(Op op, std::vector<uint32_t> targets, double arg)
{
    SURF_ASSERT(op != Op::Detector && op != Op::ObservableInclude &&
                    op != Op::FrameProbe,
                "use appendDetector/appendObservable/appendFrameProbe");
    if (op == Op::CX || op == Op::Depolarize2)
        SURF_ASSERT(targets.size() % 2 == 0, "pairwise op needs even targets");
    if (isNoiseOp(op))
        SURF_ASSERT(arg >= 0.0 && arg <= 1.0, "bad noise probability ", arg);
    for (uint32_t t : targets)
        num_qubits_ = std::max(num_qubits_, t + 1);
    const size_t first_meas = num_measurements_;
    if (op == Op::MeasureZ || op == Op::MeasureX)
        num_measurements_ += targets.size();
    instrs_.push_back({op, std::move(targets), arg, 0});
    return first_meas;
}

void
Circuit::appendDetector(std::vector<uint32_t> measurement_indices,
                        PauliType basis_tag)
{
    for (uint32_t m : measurement_indices)
        SURF_ASSERT(m < num_measurements_, "detector references future "
                                           "measurement ", m);
    Instruction ins;
    ins.op = Op::Detector;
    ins.targets = std::move(measurement_indices);
    ins.aux = (basis_tag == PauliType::Z) ? 1u : 0u;
    instrs_.push_back(std::move(ins));
    ++num_detectors_;
}

void
Circuit::appendObservable(uint32_t observable_index,
                          std::vector<uint32_t> measurement_indices)
{
    for (uint32_t m : measurement_indices)
        SURF_ASSERT(m < num_measurements_, "observable references future "
                                           "measurement ", m);
    Instruction ins;
    ins.op = Op::ObservableInclude;
    ins.targets = std::move(measurement_indices);
    ins.aux = observable_index;
    instrs_.push_back(std::move(ins));
    num_observables_ = std::max<size_t>(num_observables_, observable_index + 1);
}

uint32_t
Circuit::appendFrameProbe(std::vector<uint32_t> qubits, PauliType basis,
                          bool observable_cancel)
{
    for (uint32_t t : qubits)
        num_qubits_ = std::max(num_qubits_, t + 1);
    const uint32_t index = static_cast<uint32_t>(num_probes_++);
    Instruction ins;
    ins.op = Op::FrameProbe;
    ins.targets = std::move(qubits);
    ins.aux = (index << 2) | (observable_cancel ? 2u : 0u) |
              (basis == PauliType::Z ? 1u : 0u);
    instrs_.push_back(std::move(ins));
    return index;
}

bool
Circuit::appendRaw(Instruction ins)
{
    switch (ins.op) {
      case Op::Detector:
        for (uint32_t m : ins.targets)
            if (m >= num_measurements_)
                return false;
        if (ins.aux > 1)
            return false;
        ++num_detectors_;
        break;
      case Op::ObservableInclude:
        for (uint32_t m : ins.targets)
            if (m >= num_measurements_)
                return false;
        num_observables_ =
            std::max<size_t>(num_observables_, ins.aux + 1);
        break;
      case Op::FrameProbe:
        for (uint32_t t : ins.targets)
            num_qubits_ = std::max(num_qubits_, t + 1);
        num_probes_ = std::max<size_t>(num_probes_, (ins.aux >> 2) + 1);
        break;
      case Op::ResetZ:
      case Op::ResetX:
      case Op::MeasureZ:
      case Op::MeasureX:
      case Op::H:
      case Op::CX:
      case Op::XError:
      case Op::ZError:
      case Op::Depolarize1:
      case Op::Depolarize2:
      case Op::Tick:
        if ((ins.op == Op::CX || ins.op == Op::Depolarize2) &&
            ins.targets.size() % 2 != 0)
            return false;
        if (isNoiseOp(ins.op) && !(ins.arg >= 0.0 && ins.arg <= 1.0))
            return false;
        for (uint32_t t : ins.targets)
            num_qubits_ = std::max(num_qubits_, t + 1);
        if (ins.op == Op::MeasureZ || ins.op == Op::MeasureX)
            num_measurements_ += ins.targets.size();
        break;
      default:
        return false; // unknown opcode byte in a snapshot
    }
    instrs_.push_back(std::move(ins));
    return true;
}

size_t
Circuit::countNoiseInstructions() const
{
    size_t n = 0;
    for (const auto &ins : instrs_)
        if (isNoiseOp(ins.op))
            ++n;
    return n;
}

std::string
Circuit::str() const
{
    static const char *names[] = {"R",  "RX", "M",  "MX", "H", "CX",
                                  "X_ERROR", "Z_ERROR", "DEPOLARIZE1",
                                  "DEPOLARIZE2", "DETECTOR", "OBSERVABLE",
                                  "TICK", "FRAME_PROBE"};
    std::ostringstream oss;
    for (const auto &ins : instrs_) {
        oss << names[static_cast<int>(ins.op)];
        if (isNoiseOp(ins.op))
            oss << "(" << ins.arg << ")";
        if (ins.op == Op::ObservableInclude)
            oss << "[" << ins.aux << "]";
        for (uint32_t t : ins.targets)
            oss << " " << t;
        oss << "\n";
    }
    return oss.str();
}

} // namespace surf
