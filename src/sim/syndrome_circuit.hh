/**
 * @file
 * Memory-experiment circuit builder for (deformed) surface code patches.
 *
 * Generates the full syndrome-extraction circuit under circuit-level
 * noise: ancilla-based stabilizer measurement with the standard zigzag
 * CNOT ordering, alternating-round gauge schedules for super-stabilizer
 * clusters (basis-type gauges on even rounds so their first measurement
 * is deterministic), direct single-qubit gauge measurements, detectors
 * linking inferred stabilizer values across their availability instants,
 * and the bare-logical observable. Defective qubits receive saturated
 * error rates (the paper's dynamic-defect model).
 */

#ifndef SURF_SIM_SYNDROME_CIRCUIT_HH
#define SURF_SIM_SYNDROME_CIRCUIT_HH

#include <map>
#include <set>

#include "lattice/patch.hh"
#include "sim/circuit.hh"

namespace surf {

/** Circuit-level noise configuration (paper Sec. VII-A). */
struct NoiseParams
{
    double p = 1e-3;          ///< base physical error rate
    double pDefect = 0.5;     ///< saturated rate on defective qubits
    std::set<Coord> defectiveSites; ///< data/ancilla sites left defective
    double pCorrelated2q = 0.0; ///< extra correlated 2q rate (fig. 14a)
};

/** Memory experiment specification. */
struct MemorySpec
{
    PauliType basis = PauliType::Z;
    int rounds = 3; ///< syndrome-extraction rounds before data readout
};

/** Builder output: the circuit plus metadata for decoding/debugging. */
struct BuiltCircuit
{
    Circuit circuit;
    std::map<Coord, uint32_t> qubitId;
    PauliType obsBasis = PauliType::Z;
    size_t roundsBuilt = 0;
};

/**
 * Build a memory experiment on the given patch: initialize data in the
 * basis eigenstate, run `rounds` of syndrome extraction, measure all data
 * in the basis, and compare the logical parity.
 */
BuiltCircuit buildMemoryCircuit(const CodePatch &patch,
                                const MemorySpec &spec,
                                const NoiseParams &noise);

} // namespace surf

#endif // SURF_SIM_SYNDROME_CIRCUIT_HH
