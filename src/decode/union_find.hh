/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson weighted cluster growth plus
 * peeling). Almost-linear-time alternative to MWPM with slightly worse
 * accuracy; used as an ablation decoder and as the fast path for very
 * high defect densities.
 */

#ifndef SURF_DECODE_UNION_FIND_HH
#define SURF_DECODE_UNION_FIND_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/dem.hh"

namespace surf {

/**
 * Reusable per-thread workspace for the union-find decoder: cluster
 * state, growth counters and the peeling forest all keep their heap
 * buffers between decodes. One scratch per worker thread (it may be
 * shared across decoders of different sizes); the decoder itself is
 * immutable and shareable.
 */
struct UfScratch
{
    std::vector<uint8_t> defect, parity, has_boundary, fused, visited, sub;
    std::vector<int> parent, growth, forest, order, bfs_queue;
    std::vector<std::pair<int, int>> parent_edge; // node -> (edge, parent)
    std::vector<std::vector<std::pair<int, int>>> tree; // node -> (edge, to)

    /** Clear the growth workspace for a graph of `n` nodes (boundary
     *  included) and `n_edges` edges, reusing capacity. Called after
     *  the zero-defect early exit, which needs only `defect`. */
    void prepare(size_t n, size_t n_edges);
};

/** Union-find decoder over one basis tag of a detector error model. */
class UnionFindDecoder
{
  public:
    UnionFindDecoder(const DetectorErrorModel &dem, uint8_t tag);

    /**
     * Decode one shot from `n_fired` global detector ids; thread-safe
     * given a per-thread scratch.
     * @return predicted observable flip
     */
    bool decode(const uint32_t *fired, size_t n_fired,
                UfScratch &scratch) const;

    /** Rough heap footprint (cache accounting). */
    size_t memoryBytes() const;

  private:
    struct Edge
    {
        int a, b;      ///< node ids; boundary = numNodes_
        int units;     ///< quantized weight (growth units)
        bool obs;
    };

    int numNodes_ = 0;
    std::vector<int> local_of_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> incident_; // node -> edge indices
};

} // namespace surf

#endif // SURF_DECODE_UNION_FIND_HH
