/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson weighted cluster growth plus
 * peeling). Almost-linear-time alternative to MWPM with slightly worse
 * accuracy; used as an ablation decoder and as the fast path for very
 * high defect densities.
 */

#ifndef SURF_DECODE_UNION_FIND_HH
#define SURF_DECODE_UNION_FIND_HH

#include <cstdint>
#include <vector>

#include "sim/dem.hh"

namespace surf {

/** Union-find decoder over one basis tag of a detector error model. */
class UnionFindDecoder
{
  public:
    UnionFindDecoder(const DetectorErrorModel &dem, uint8_t tag);

    /** Decode one shot; returns the predicted observable flip. */
    bool decode(const std::vector<uint32_t> &fired_global) const;

  private:
    struct Edge
    {
        int a, b;      ///< node ids; boundary = numNodes_
        int units;     ///< quantized weight (growth units)
        bool obs;
    };

    int numNodes_ = 0;
    std::vector<int> local_of_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> incident_; // node -> edge indices
};

} // namespace surf

#endif // SURF_DECODE_UNION_FIND_HH
