#include "decode/blossom.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace surf {

namespace {

/**
 * Dense O(n^3) maximum-weight general matching with blossoms and dual
 * variables (the classic formulation with outer-vertex relabeling; see
 * Galil's survey). Vertices are 1-indexed; indices above n denote
 * contracted blossoms.
 */
class MaxWeightMatcher
{
  public:
    explicit MaxWeightMatcher(int n)
        : n_(n), n_x_(n), g_((2 * n + 1) * (2 * n + 1)),
          lab_(2 * n + 1, 0), match_(2 * n + 1, 0), slack_(2 * n + 1, 0),
          st_(2 * n + 1, 0), pa_(2 * n + 1, 0),
          flower_from_((2 * n + 1) * (n + 1), 0), s_(2 * n + 1, 0),
          vis_(2 * n + 1, 0), flower_(2 * n + 1)
    {
        for (int u = 1; u <= n_; ++u)
            for (int v = 1; v <= n_; ++v)
                edge(u, v) = {u, v, 0};
    }

    void
    setWeight(int u, int v, int64_t w)
    {
        // Internally doubled so dual variables stay integral.
        edge(u + 1, v + 1).w = 2 * w;
        edge(v + 1, u + 1).w = 2 * w;
    }

    /** Run; returns (total weight, matched pairs). mate is 0-indexed. */
    std::pair<int64_t, std::vector<int>>
    solve()
    {
        std::fill(s_.begin(), s_.end(), -1);
        std::fill(match_.begin(), match_.end(), 0);
        n_x_ = n_;
        int64_t w_max = 0;
        for (int u = 1; u <= n_; ++u) {
            st_[u] = u;
            flower_[u].clear();
            for (int v = 1; v <= n_; ++v) {
                flowerFrom(u, v) = (u == v) ? u : 0;
                w_max = std::max(w_max, edge(u, v).w);
            }
        }
        for (int u = 1; u <= n_; ++u)
            lab_[u] = w_max;
        while (matching()) {
        }
        int64_t total = 0;
        std::vector<int> mate(n_, -1);
        for (int u = 1; u <= n_; ++u) {
            if (match_[u] && match_[u] > u)
                total += edge(u, match_[u]).w / 2;
            mate[u - 1] = match_[u] ? match_[u] - 1 : -1;
        }
        return {total, mate};
    }

  private:
    struct E
    {
        int u, v;
        int64_t w;
    };

    int n_, n_x_;
    std::vector<E> g_;
    std::vector<int64_t> lab_;
    std::vector<int> match_, slack_, st_, pa_;
    std::vector<int> flower_from_;
    std::vector<int> s_, vis_;
    std::vector<std::vector<int>> flower_;
    std::deque<int> q_;
    int lca_tick_ = 0; ///< getLca() visit stamp; vis_ starts all-zero

    E &edge(int u, int v) { return g_[u * (2 * n_ + 1) + v]; }
    int &flowerFrom(int b, int x) { return flower_from_[b * (n_ + 1) + x]; }

    int64_t
    eDelta(const E &e) const
    {
        return lab_[e.u] + lab_[e.v] - g_[e.u * (2 * n_ + 1) + e.v].w * 2;
    }

    void
    updateSlack(int u, int x)
    {
        if (!slack_[x] || eDelta(edge(u, x)) < eDelta(edge(slack_[x], x)))
            slack_[x] = u;
    }

    void
    setSlack(int x)
    {
        slack_[x] = 0;
        for (int u = 1; u <= n_; ++u)
            if (edge(u, x).w > 0 && st_[u] != x && s_[st_[u]] == 0)
                updateSlack(u, x);
    }

    void
    qPush(int x)
    {
        if (x <= n_) {
            q_.push_back(x);
        } else {
            for (int t : flower_[x])
                qPush(t);
        }
    }

    void
    setSt(int x, int b)
    {
        st_[x] = b;
        if (x > n_)
            for (int t : flower_[x])
                setSt(t, b);
    }

    int
    getPr(int b, int xr)
    {
        auto &f = flower_[b];
        const int pr = static_cast<int>(
            std::find(f.begin(), f.end(), xr) - f.begin());
        if (pr % 2 == 1) {
            std::reverse(f.begin() + 1, f.end());
            return static_cast<int>(f.size()) - pr;
        }
        return pr;
    }

    void
    setMatch(int u, int v)
    {
        match_[u] = edge(u, v).v;
        if (u <= n_)
            return;
        const E &e = edge(u, v);
        const int xr = flowerFrom(u, e.u);
        const int pr = getPr(u, xr);
        auto &f = flower_[u];
        for (int i = 0; i < pr; ++i)
            setMatch(f[i], f[i ^ 1]);
        setMatch(xr, v);
        std::rotate(f.begin(), f.begin() + pr, f.end());
    }

    void
    augment(int u, int v)
    {
        for (;;) {
            const int xnv = st_[match_[u]];
            setMatch(u, v);
            if (!xnv)
                return;
            setMatch(xnv, st_[pa_[xnv]]);
            u = st_[pa_[xnv]];
            v = xnv;
        }
    }

    int
    getLca(int u, int v)
    {
        // Per-instance visit tick (a function-local static here would be
        // shared across the concurrent per-worker solvers and race).
        int &t = lca_tick_;
        for (++t; u || v; std::swap(u, v)) {
            if (u == 0)
                continue;
            if (vis_[u] == t)
                return u;
            vis_[u] = t;
            u = st_[match_[u]];
            if (u)
                u = st_[pa_[u]];
        }
        return 0;
    }

    void
    addBlossom(int u, int lca, int v)
    {
        int b = n_ + 1;
        while (b <= n_x_ && st_[b])
            ++b;
        if (b > n_x_)
            ++n_x_;
        lab_[b] = 0;
        s_[b] = 0;
        match_[b] = match_[lca];
        flower_[b].clear();
        flower_[b].push_back(lca);
        for (int x = u, y; x != lca; x = st_[pa_[y]]) {
            flower_[b].push_back(x);
            y = st_[match_[x]];
            flower_[b].push_back(y);
            qPush(y);
        }
        std::reverse(flower_[b].begin() + 1, flower_[b].end());
        for (int x = v, y; x != lca; x = st_[pa_[y]]) {
            flower_[b].push_back(x);
            y = st_[match_[x]];
            flower_[b].push_back(y);
            qPush(y);
        }
        setSt(b, b);
        for (int x = 1; x <= n_x_; ++x) {
            edge(b, x).w = 0;
            edge(x, b).w = 0;
        }
        for (int x = 1; x <= n_; ++x)
            flowerFrom(b, x) = 0;
        for (int xs : flower_[b]) {
            for (int x = 1; x <= n_x_; ++x) {
                if (edge(b, x).w == 0 ||
                    eDelta(edge(xs, x)) < eDelta(edge(b, x))) {
                    edge(b, x) = edge(xs, x);
                    edge(x, b) = edge(x, xs);
                }
            }
            for (int x = 1; x <= n_; ++x)
                if (flowerFrom(xs, x))
                    flowerFrom(b, x) = xs;
        }
        setSlack(b);
    }

    void
    expandBlossom(int b)
    {
        for (int t : flower_[b])
            setSt(t, t);
        const int xr = flowerFrom(b, edge(b, pa_[b]).u);
        const int pr = getPr(b, xr);
        auto &f = flower_[b];
        for (int i = 0; i < pr; i += 2) {
            const int xs = f[i];
            const int xns = f[i + 1];
            pa_[xs] = edge(xns, xs).u;
            s_[xs] = 1;
            s_[xns] = 0;
            slack_[xs] = 0;
            setSlack(xns);
            qPush(xns);
        }
        s_[xr] = 1;
        pa_[xr] = pa_[b];
        for (size_t i = pr + 1; i < f.size(); ++i) {
            s_[f[i]] = -1;
            setSlack(f[i]);
        }
        st_[b] = 0;
    }

    bool
    onFoundEdge(const E &e)
    {
        const int u = st_[e.u], v = st_[e.v];
        if (s_[v] == -1) {
            pa_[v] = e.u;
            s_[v] = 1;
            const int nu = st_[match_[v]];
            slack_[v] = 0;
            slack_[nu] = 0;
            s_[nu] = 0;
            qPush(nu);
        } else if (s_[v] == 0) {
            const int lca = getLca(u, v);
            if (!lca) {
                augment(u, v);
                augment(v, u);
                return true;
            }
            addBlossom(u, lca, v);
        }
        return false;
    }

    bool
    matching()
    {
        std::fill(s_.begin(), s_.begin() + n_x_ + 1, -1);
        std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
        q_.clear();
        for (int x = 1; x <= n_x_; ++x) {
            if (st_[x] == x && !match_[x]) {
                pa_[x] = 0;
                s_[x] = 0;
                qPush(x);
            }
        }
        if (q_.empty())
            return false;
        for (;;) {
            while (!q_.empty()) {
                const int u = q_.front();
                q_.pop_front();
                if (s_[st_[u]] == 1)
                    continue;
                for (int v = 1; v <= n_; ++v) {
                    if (edge(u, v).w > 0 && st_[u] != st_[v]) {
                        if (eDelta(edge(u, v)) == 0) {
                            if (onFoundEdge(edge(u, v)))
                                return true;
                        } else {
                            updateSlack(u, st_[v]);
                        }
                    }
                }
            }
            int64_t d = INT64_MAX;
            for (int b = n_ + 1; b <= n_x_; ++b)
                if (st_[b] == b && s_[b] == 1)
                    d = std::min(d, lab_[b] / 2);
            for (int x = 1; x <= n_x_; ++x)
                if (st_[x] == x && slack_[x]) {
                    if (s_[x] == -1)
                        d = std::min(d, eDelta(edge(slack_[x], x)));
                    else if (s_[x] == 0)
                        d = std::min(d, eDelta(edge(slack_[x], x)) / 2);
                }
            if (d == INT64_MAX)
                return false; // no dual move exists: trees cannot grow
            for (int u = 1; u <= n_; ++u) {
                if (s_[st_[u]] == 0) {
                    if (lab_[u] <= d)
                        return false;
                    lab_[u] -= d;
                } else if (s_[st_[u]] == 1) {
                    lab_[u] += d;
                }
            }
            for (int b = n_ + 1; b <= n_x_; ++b) {
                if (st_[b] == b) {
                    if (s_[st_[b]] == 0)
                        lab_[b] += d * 2;
                    else if (s_[st_[b]] == 1)
                        lab_[b] -= d * 2;
                }
            }
            q_.clear();
            for (int x = 1; x <= n_x_; ++x)
                if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
                    eDelta(edge(slack_[x], x)) == 0) {
                    if (onFoundEdge(edge(slack_[x], x)))
                        return true;
                }
            for (int b = n_ + 1; b <= n_x_; ++b)
                if (st_[b] == b && s_[b] == 1 && lab_[b] == 0)
                    expandBlossom(b);
        }
        return false;
    }
};

} // namespace

bool
minWeightPerfectMatching(int n, const std::vector<int64_t> &w,
                         std::vector<int> &mate)
{
    SURF_ASSERT(n >= 0 && w.size() == static_cast<size_t>(n) * n,
                "weight matrix size mismatch");
    mate.clear();
    if (n == 0)
        return true;
    if (n % 2 != 0)
        return false;
    // Convert min-weight to max-weight with a large offset; forbidden
    // pairs keep weight 0 (the matcher ignores w == 0 edges).
    int64_t max_w = 1;
    for (int64_t x : w)
        if (x != kMatchForbidden)
            max_w = std::max(max_w, x < 0 ? -x : x);
    const int64_t offset = 4 * max_w * n + 1;
    MaxWeightMatcher matcher(n);
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            const int64_t x = w[static_cast<size_t>(u) * n + v];
            if (x == kMatchForbidden)
                continue;
            matcher.setWeight(u, v, offset - x);
        }
    }
    auto [total, solved] = matcher.solve();
    (void)total;
    // Perfect matching check.
    for (int u = 0; u < n; ++u)
        if (solved[u] < 0)
            return false;
    mate = std::move(solved);
    return true;
}

std::vector<int>
minWeightPerfectMatching(int n, const std::vector<int64_t> &w)
{
    std::vector<int> mate;
    minWeightPerfectMatching(n, w, mate);
    return mate;
}

} // namespace surf
