#include "decode/memory_experiment.hh"

#include <algorithm>
#include <memory>

#include "decode/mwpm.hh"
#include "decode/union_find.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace surf {

MemoryExperimentResult
runMemoryExperiment(const CodePatch &patch, const MemoryExperimentConfig &cfg)
{
    MemoryExperimentResult out;
    out.rounds = static_cast<size_t>(cfg.spec.rounds);

    const BuiltCircuit built = buildMemoryCircuit(patch, cfg.spec, cfg.noise);
    // The decoder's error model: defect-unaware unless configured
    // otherwise (the circuit structure is identical, only rates differ).
    // When the views coincide the sampling circuit is reused directly.
    NoiseParams decoder_noise = cfg.noise;
    if (!cfg.decoderKnowsDefects)
        decoder_noise.defectiveSites.clear();
    const bool same_view =
        cfg.decoderKnowsDefects || cfg.noise.defectiveSites.empty();
    const BuiltCircuit decoder_view =
        same_view ? BuiltCircuit{}
                  : buildMemoryCircuit(patch, cfg.spec, decoder_noise);
    const DetectorErrorModel dem = buildDem(
        same_view ? built.circuit : decoder_view.circuit, built.obsBasis);
    out.numDetectors = dem.numDetectors;
    out.decomposedHyperedges = dem.decomposedComponents;
    out.undetectableObsProb = dem.undetectableObsProb;

    // The observable lives on the graph of the checks that detect the
    // corresponding errors (Z-check detectors for a Z-basis memory).
    const uint8_t tag = (built.obsBasis == PauliType::Z) ? 1 : 0;
    ThreadPool pool(cfg.threads);
    const MwpmDecoder mwpm(dem, tag, &pool);
    const UnionFindDecoder uf(dem, tag);

    // Pipeline state, allocated once and reused every batch: the frame
    // simulator's planes/records, the CSR syndrome transpose, one decode
    // scratch per worker, and per-worker failure counters merged in a
    // fixed order (which keeps the result independent of scheduling).
    std::vector<MwpmScratch> mwpm_scratch(pool.size());
    std::vector<UfScratch> uf_scratch(pool.size());
    std::vector<uint64_t> worker_failures(pool.size());
    SparseSyndromes syndromes;
    std::unique_ptr<FrameSimulator> sim;

    uint64_t batch_seed = cfg.seed;
    while (out.shots < cfg.maxShots && out.failures < cfg.targetFailures) {
        const size_t batch = static_cast<size_t>(
            std::min<uint64_t>(cfg.batchShots, cfg.maxShots - out.shots));
        if (!sim || sim->shots() != batch) {
            // First batch, or the final partial batch: (re)build buffers.
            sim = std::make_unique<FrameSimulator>(built.circuit, batch,
                                                   batch_seed++);
        } else {
            sim->reset(batch_seed++);
            sim->run();
        }
        sim->sparseFiredDetectors(syndromes);
        const BitVec &obs_bits = sim->observableBits(0);

        std::fill(worker_failures.begin(), worker_failures.end(), 0);
        // A few shards per worker: decode cost varies shot to shot, so
        // dynamic claiming of smallish shards balances the load.
        const size_t n_shards = std::min(batch, pool.size() * 4);
        pool.parallelFor(n_shards, [&](size_t shard, size_t worker) {
            const size_t begin = batch * shard / n_shards;
            const size_t end = batch * (shard + 1) / n_shards;
            uint64_t failures = 0;
            for (size_t s = begin; s < end; ++s) {
                const uint32_t *fired = syndromes.data(s);
                const size_t n_fired = syndromes.count(s);
                bool predicted;
                switch (cfg.decoder) {
                  case DecoderKind::Mwpm:
                    predicted =
                        mwpm.decode(fired, n_fired, mwpm_scratch[worker]);
                    break;
                  case DecoderKind::UnionFind:
                    predicted = uf.decode(fired, n_fired, uf_scratch[worker]);
                    break;
                  case DecoderKind::Auto:
                  default:
                    predicted =
                        (n_fired <= cfg.mwpmDefectCap)
                            ? mwpm.decode(fired, n_fired,
                                          mwpm_scratch[worker])
                            : uf.decode(fired, n_fired, uf_scratch[worker]);
                    break;
                }
                failures += predicted != obs_bits.get(s);
            }
            worker_failures[worker] += failures;
        });
        for (uint64_t f : worker_failures)
            out.failures += f;
        out.shots += batch;
    }

    const auto est = estimateBinomial(out.failures, out.shots);
    out.pShot = est.p;
    out.se = est.stderr;
    out.pRound = perRoundRate(out.pShot, out.rounds);
    return out;
}

} // namespace surf
