#include "decode/memory_experiment.hh"

#include <algorithm>

#include "decode/mwpm.hh"
#include "decode/union_find.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "util/stats.hh"

namespace surf {

MemoryExperimentResult
runMemoryExperiment(const CodePatch &patch, const MemoryExperimentConfig &cfg)
{
    MemoryExperimentResult out;
    out.rounds = static_cast<size_t>(cfg.spec.rounds);

    const BuiltCircuit built = buildMemoryCircuit(patch, cfg.spec, cfg.noise);
    // The decoder's error model: defect-unaware unless configured
    // otherwise (the circuit structure is identical, only rates differ).
    NoiseParams decoder_noise = cfg.noise;
    if (!cfg.decoderKnowsDefects)
        decoder_noise.defectiveSites.clear();
    const BuiltCircuit decoder_view =
        buildMemoryCircuit(patch, cfg.spec, decoder_noise);
    const DetectorErrorModel dem =
        buildDem(decoder_view.circuit, built.obsBasis);
    out.numDetectors = dem.numDetectors;
    out.decomposedHyperedges = dem.decomposedComponents;
    out.undetectableObsProb = dem.undetectableObsProb;

    // The observable lives on the graph of the checks that detect the
    // corresponding errors (Z-check detectors for a Z-basis memory).
    const uint8_t tag = (built.obsBasis == PauliType::Z) ? 1 : 0;
    const MwpmDecoder mwpm(dem, tag);
    const UnionFindDecoder uf(dem, tag);

    uint64_t batch_seed = cfg.seed;
    while (out.shots < cfg.maxShots && out.failures < cfg.targetFailures) {
        const size_t batch = static_cast<size_t>(
            std::min<uint64_t>(cfg.batchShots, cfg.maxShots - out.shots));
        FrameSimulator sim(built.circuit, batch, batch_seed++);
        for (size_t s = 0; s < batch; ++s) {
            const auto fired = sim.firedDetectors(s);
            bool predicted;
            switch (cfg.decoder) {
              case DecoderKind::Mwpm:
                predicted = mwpm.decode(fired);
                break;
              case DecoderKind::UnionFind:
                predicted = uf.decode(fired);
                break;
              case DecoderKind::Auto:
              default:
                predicted = (fired.size() <= cfg.mwpmDefectCap)
                                ? mwpm.decode(fired)
                                : uf.decode(fired);
                break;
            }
            const bool actual = sim.observableBits(0).get(s);
            if (predicted != actual)
                ++out.failures;
        }
        out.shots += batch;
    }

    const auto est = estimateBinomial(out.failures, out.shots);
    out.pShot = est.p;
    out.se = est.stderr;
    out.pRound = perRoundRate(out.pShot, out.rounds);
    return out;
}

} // namespace surf
