#include "decode/memory_experiment.hh"

#include "scenario/patch_signature.hh"
#include "scenario/scenario_experiment.hh"
#include "util/stats.hh"

namespace surf {

MemoryExperimentResult
runMemoryExperiment(const CodePatch &patch, const MemoryExperimentConfig &cfg)
{
    // A memory experiment is the trivial scenario: one epoch holding one
    // frozen patch for the whole horizon. Running it through the scenario
    // engine keeps a single sampling/decoding pipeline in the repository;
    // the one-epoch path is bit-identical to the historical implementation
    // (same circuit, DEM, seed schedule, sharding and early stop).
    ScenarioConfig sc;
    sc.timeline.d = 0; // unused: the plan is supplied explicitly
    sc.timeline.horizonRounds = static_cast<uint64_t>(cfg.spec.rounds);
    sc.basis = cfg.spec.basis;
    sc.noise = cfg.noise;
    sc.decoder = cfg.decoder;
    sc.mwpmDefectCap = cfg.mwpmDefectCap;
    sc.maxShotsPerTimeline = cfg.maxShots;
    sc.targetFailures = cfg.targetFailures;
    sc.batchShots = cfg.batchShots;
    sc.threads = cfg.threads;
    sc.decoderKnowsDefects = cfg.decoderKnowsDefects;
    sc.seed = cfg.seed;

    ScenarioPlan plan;
    Epoch epoch;
    epoch.startRound = 0;
    epoch.rounds = static_cast<uint64_t>(cfg.spec.rounds);
    epoch.deformed.patch = patch;
    epoch.residualDefects = cfg.noise.defectiveSites;
    epoch.activeSites = cfg.noise.defectiveSites;
    epoch.structSig = patchSignature(patch);
    plan.epochs.push_back(std::move(epoch));

    DeformedCodeCache cache;
    const TimelineStats tl =
        runPlannedTimeline(plan, sc, cache, cfg.seed, 0);

    MemoryExperimentResult out;
    out.rounds = static_cast<size_t>(cfg.spec.rounds);
    out.shots = tl.shots;
    out.failures = tl.failures;
    out.numDetectors = tl.epochs[0].numDetectors;
    out.decomposedHyperedges = tl.epochs[0].decomposedHyperedges;
    out.undetectableObsProb = tl.epochs[0].undetectableObsProb;
    const auto est = estimateBinomial(out.failures, out.shots);
    out.pShot = est.p;
    out.se = est.stderr;
    out.pRound = perRoundRate(out.pShot, out.rounds);
    return out;
}

} // namespace surf
