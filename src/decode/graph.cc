#include "decode/graph.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.hh"

namespace surf {

namespace {

double
edgeWeight(double p)
{
    // Clamp into (0, 0.5) so weights stay positive and finite.
    const double q = std::clamp(p, 1e-14, 0.499999);
    return std::log((1.0 - q) / q);
}

} // namespace

DecodingGraph::DecodingGraph(const DetectorErrorModel &dem, uint8_t tag)
{
    local_of_.assign(dem.numDetectors, -1);
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        if (dem.detectorTag[d] == tag) {
            local_of_[d] = static_cast<int>(global_of_.size());
            global_of_.push_back(d);
        }
    }
    const int bnode = boundaryNode();
    adj_.assign(numNodes() + 1, {});
    for (const DemEdge &e : dem.edges[tag]) {
        const int a = (e.a < 0) ? bnode : local_of_[static_cast<size_t>(e.a)];
        const int b = (e.b < 0) ? bnode : local_of_[static_cast<size_t>(e.b)];
        SURF_ASSERT(a >= 0 && b >= 0, "edge references a foreign detector");
        if (a == b)
            continue;
        const double w = edgeWeight(e.p);
        adj_[static_cast<size_t>(a)].push_back({b, w, e.flipsObs});
        adj_[static_cast<size_t>(b)].push_back({a, w, e.flipsObs});
    }
    buildApsp();
}

int
DecodingGraph::localOf(uint32_t global_det) const
{
    SURF_ASSERT(global_det < local_of_.size());
    return local_of_[global_det];
}

void
DecodingGraph::buildApsp()
{
    const size_t n = numNodes() + 1;
    dist_.assign(n, std::vector<float>(n,
                                       std::numeric_limits<float>::infinity()));
    obs_.assign(n, BitVec(n));
    using Item = std::pair<double, int>;
    std::vector<double> d(n);
    std::vector<uint8_t> par(n);
    for (size_t src = 0; src < n; ++src) {
        std::fill(d.begin(), d.end(),
                  std::numeric_limits<double>::infinity());
        std::fill(par.begin(), par.end(), 0);
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        d[src] = 0.0;
        pq.push({0.0, static_cast<int>(src)});
        while (!pq.empty()) {
            const auto [dv, v] = pq.top();
            pq.pop();
            if (dv > d[static_cast<size_t>(v)])
                continue;
            for (const Edge &e : adj_[static_cast<size_t>(v)]) {
                const double nd = dv + e.w;
                if (nd < d[static_cast<size_t>(e.to)] - 1e-12) {
                    d[static_cast<size_t>(e.to)] = nd;
                    par[static_cast<size_t>(e.to)] =
                        par[static_cast<size_t>(v)] ^ (e.obs ? 1 : 0);
                    pq.push({nd, e.to});
                }
            }
        }
        for (size_t t = 0; t < n; ++t) {
            dist_[src][t] = static_cast<float>(d[t]);
            obs_[src].set(t, par[t]);
        }
    }
}

double
DecodingGraph::dist(int a, int b) const
{
    return dist_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

bool
DecodingGraph::obsParity(int a, int b) const
{
    return obs_[static_cast<size_t>(a)].get(static_cast<size_t>(b));
}

} // namespace surf
