#include "decode/graph.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace surf {

namespace {

double
edgeWeight(double p)
{
    // Clamp into (0, 0.5) so weights stay positive and finite.
    const double q = std::clamp(p, 1e-14, 0.499999);
    return std::log((1.0 - q) / q);
}

} // namespace

DecodingGraph::DecodingGraph(const DetectorErrorModel &dem, uint8_t tag,
                             ThreadPool *pool)
{
    local_of_.assign(dem.numDetectors, -1);
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        if (dem.detectorTag[d] == tag) {
            local_of_[d] = static_cast<int>(global_of_.size());
            global_of_.push_back(d);
        }
    }
    const int bnode = boundaryNode();
    adj_.assign(numNodes() + 1, {});
    for (const DemEdge &e : dem.edges[tag]) {
        const int a = (e.a < 0) ? bnode : local_of_[static_cast<size_t>(e.a)];
        const int b = (e.b < 0) ? bnode : local_of_[static_cast<size_t>(e.b)];
        SURF_ASSERT(a >= 0 && b >= 0, "edge references a foreign detector");
        if (a == b)
            continue;
        const double w = edgeWeight(e.p);
        adj_[static_cast<size_t>(a)].push_back({b, w, e.flipsObs});
        adj_[static_cast<size_t>(b)].push_back({a, w, e.flipsObs});
    }
    buildApsp(pool);
}

int
DecodingGraph::localOf(uint32_t global_det) const
{
    SURF_ASSERT(global_det < local_of_.size());
    return local_of_[global_det];
}

void
DecodingGraph::buildApsp(ThreadPool *pool)
{
    const size_t n = numNodes() + 1;
    dist_.assign(n * (n + 1) / 2, std::numeric_limits<float>::infinity());
    obs_.assign(n * (n + 1) / 2, 0);

    // Dijkstra from every source. All per-source state is hoisted out of
    // the loop and held per worker: the binary heap keeps its capacity,
    // and a generation counter marks which entries of d/par belong to the
    // current source, replacing the O(n) re-initialisation fills per
    // source. Each source fills its own triangular row, so rows can run
    // on any worker with an identical result.
    using Item = std::pair<double, int>;
    struct Scratch
    {
        std::vector<Item> heap;
        std::vector<double> d;
        std::vector<uint8_t> par;
        std::vector<uint32_t> gen;
        uint32_t cur = 0;
    };
    std::vector<Scratch> scratch(pool ? pool->size() : 1);
    for (Scratch &sc : scratch) {
        sc.d.resize(n);
        sc.par.resize(n);
        sc.gen.assign(n, 0);
    }
    const auto by_dist = std::greater<Item>();
    auto fillRow = [&](size_t src, size_t worker) {
        Scratch &sc = scratch[worker];
        auto &heap = sc.heap;
        ++sc.cur;
        heap.clear();
        sc.d[src] = 0.0;
        sc.par[src] = 0;
        sc.gen[src] = sc.cur;
        heap.push_back({0.0, static_cast<int>(src)});
        while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), by_dist);
            const auto [dv, v] = heap.back();
            heap.pop_back();
            if (dv > sc.d[static_cast<size_t>(v)])
                continue;
            for (const Edge &e : adj_[static_cast<size_t>(v)]) {
                const auto to = static_cast<size_t>(e.to);
                const double nd = dv + e.w;
                if (sc.gen[to] != sc.cur || nd < sc.d[to] - 1e-12) {
                    sc.gen[to] = sc.cur;
                    sc.d[to] = nd;
                    sc.par[to] =
                        sc.par[static_cast<size_t>(v)] ^ (e.obs ? 1 : 0);
                    heap.push_back({nd, e.to});
                    std::push_heap(heap.begin(), heap.end(), by_dist);
                }
            }
        }
        for (size_t t = src; t < n; ++t) {
            if (sc.gen[t] != sc.cur)
                continue; // unreachable: stays at infinity
            const size_t idx = triIndex(static_cast<int>(src),
                                        static_cast<int>(t));
            dist_[idx] = static_cast<float>(sc.d[t]);
            obs_[idx] = sc.par[t];
        }
    };
    if (pool)
        pool->parallelFor(n, fillRow);
    else
        for (size_t src = 0; src < n; ++src)
            fillRow(src, 0);
}

} // namespace surf
