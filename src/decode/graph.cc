#include "decode/graph.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace surf {

namespace {

double
edgeWeight(double p)
{
    // Clamp into (0, 0.5) so weights stay positive and finite.
    const double q = std::clamp(p, 1e-14, 0.499999);
    return std::log((1.0 - q) / q);
}

} // namespace

MatchingBackend
defaultMatchingBackend()
{
    static const MatchingBackend def = [] {
        const char *env = std::getenv("SURF_MATCHING_BACKEND");
        if (env && std::strcmp(env, "dense") == 0)
            return MatchingBackend::Dense;
        if (env && (std::strcmp(env, "sparse_blossom") == 0 ||
                    std::strcmp(env, "blossom") == 0))
            return MatchingBackend::SparseBlossom;
        if (env && *env && std::strcmp(env, "sparse") != 0 &&
            std::strcmp(env, "rows") != 0)
            warn(std::string("SURF_MATCHING_BACKEND='") + env +
                 "' is not a known backend (dense, sparse, rows, "
                 "sparse_blossom); using the sparse default");
        return MatchingBackend::Sparse;
    }();
    return def;
}

DecodingGraph::DecodingGraph(const DetectorErrorModel &dem, uint8_t tag,
                             ThreadPool *pool, MatchingBackend backend)
    : backend_(backend), tag_(tag)
{
    local_of_.assign(dem.numDetectors, -1);
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        if (dem.detectorTag[d] == tag) {
            local_of_[d] = static_cast<int>(global_of_.size());
            global_of_.push_back(d);
        }
    }
    const int bnode = boundaryNode();
    // Build per-node adjacency in DEM edge order (both directions of an
    // edge appended as encountered), then flatten to CSR. The neighbor
    // order fixes the Dijkstra relaxation order, which both backends
    // share — identical witnesses for tie-broken shortest paths.
    struct Dir
    {
        int to;
        double w;
        bool obs;
    };
    std::vector<std::vector<Dir>> adj(numNodes() + 1);
    size_t n_dirs = 0;
    for (const DemEdge &e : dem.edges[tag]) {
        const int a = (e.a < 0) ? bnode : local_of_[static_cast<size_t>(e.a)];
        const int b = (e.b < 0) ? bnode : local_of_[static_cast<size_t>(e.b)];
        SURF_ASSERT(a >= 0 && b >= 0, "edge references a foreign detector");
        if (a == b)
            continue;
        const double w = edgeWeight(e.p);
        adj[static_cast<size_t>(a)].push_back({b, w, e.flipsObs});
        adj[static_cast<size_t>(b)].push_back({a, w, e.flipsObs});
        n_dirs += 2;
    }
    csr_off_.resize(numNodes() + 2);
    csr_to_.resize(n_dirs);
    csr_w_.resize(n_dirs);
    csr_obs_.resize(n_dirs);
    uint32_t off = 0;
    for (size_t v = 0; v <= numNodes(); ++v) {
        csr_off_[v] = off;
        for (const Dir &d : adj[v]) {
            csr_to_[off] = d.to;
            csr_w_[off] = d.w;
            csr_obs_[off] = d.obs ? 1 : 0;
            ++off;
        }
    }
    csr_off_[numNodes() + 1] = off;

    if (backend_ == MatchingBackend::Dense) {
        buildApsp(pool);
    } else {
        rows_ =
            std::vector<std::atomic<std::shared_ptr<const Row>>>(numNodes());
        fast_rows_ = std::vector<std::atomic<const Row *>>(numNodes());
        row_stamp_ = std::vector<std::atomic<uint64_t>>(numNodes());
    }
}

DecodingGraph::~DecodingGraph() = default;

int
DecodingGraph::localOf(uint32_t global_det) const
{
    SURF_ASSERT(global_det < local_of_.size());
    return local_of_[global_det];
}

size_t
DecodingGraph::memoryBytes() const
{
    const size_t row_bytes =
        (numNodes() + 1) * (sizeof(float) + 1) + sizeof(Row);
    size_t retired;
    {
        std::lock_guard<std::mutex> lock(evict_mutex_);
        retired = retired_.size();
    }
    return global_of_.capacity() * sizeof(uint32_t) +
           local_of_.capacity() * sizeof(int) +
           csr_off_.capacity() * sizeof(uint32_t) +
           csr_to_.capacity() * sizeof(int) +
           csr_w_.capacity() * sizeof(double) + csr_obs_.capacity() +
           dist_.capacity() * sizeof(float) + obs_.capacity() +
           rows_.size() * (sizeof(rows_[0]) + sizeof(fast_rows_[0]) +
                           sizeof(row_stamp_[0])) +
           (rows_resident_.load(std::memory_order_relaxed) + retired) *
               row_bytes;
}

void
DecodingGraph::setRowBudget(size_t max_rows)
{
    {
        std::lock_guard<std::mutex> lock(evict_mutex_);
        if (max_rows)
            // Sticky: readers must hold owned handles from here on
            // (eviction may free rows), so the raw fast path closes
            // for good. Must happen before any decode worker races.
            row_budget_ever_.store(true, std::memory_order_release);
        row_budget_ = max_rows;
    }
    enforceRowBudget();
}

void
DecodingGraph::enforceRowBudget() const
{
    std::lock_guard<std::mutex> lock(evict_mutex_);
    if (!row_budget_ ||
        rows_resident_.load(std::memory_order_relaxed) <= row_budget_)
        return;
    // Collect resident slots oldest-first and drop until within budget.
    // Readers holding shared_ptrs keep their rows alive; a dropped row
    // is rebuilt (identically) on its next use.
    std::vector<std::pair<uint64_t, int>> by_age;
    by_age.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i)
        if (rows_[i].load(std::memory_order_acquire))
            by_age.push_back(
                {row_stamp_[i].load(std::memory_order_relaxed),
                 static_cast<int>(i)});
    std::sort(by_age.begin(), by_age.end());
    for (const auto &[stamp, idx] : by_age) {
        if (rows_resident_.load(std::memory_order_relaxed) <= row_budget_)
            break;
        if (rows_[static_cast<size_t>(idx)].exchange(
                nullptr, std::memory_order_acq_rel)) {
            fast_rows_[static_cast<size_t>(idx)].store(
                nullptr, std::memory_order_release);
            rows_resident_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

void
DecodingGraph::search(int src, DijkstraScratch &sc, double cutoff,
                      Row *record, bool bound_at_boundary) const
{
    // Pairs whose true distance sits within the quantization margin of
    // the radius bound must stay inside a bounded row, because an
    // integer-tied edge can still appear in an optimal matching.
    constexpr double kTieMargin = kWeightTieMargin;
    const size_t n = numNodes() + 1;
    sc.bind(n);
    if (++sc.cur == 0) {
        std::fill(sc.gen.begin(), sc.gen.end(), 0);
        sc.cur = 1;
    }
    const int bnode = boundaryNode();
    using Item = std::pair<double, int>;
    const auto by_dist = std::greater<Item>();
    auto &heap = sc.heap;
    heap.clear();
    sc.dist[static_cast<size_t>(src)] = 0.0;
    sc.par[static_cast<size_t>(src)] = 0;
    sc.gen[static_cast<size_t>(src)] = sc.cur;
    heap.push_back({0.0, src});
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), by_dist);
        const auto [dv, v] = heap.back();
        heap.pop_back();
        if (dv > cutoff)
            break; // heap min beyond the radius: nothing closer remains
        const auto vi = static_cast<size_t>(v);
        if (dv > sc.dist[vi])
            continue; // stale entry: v already settled closer
        if (record) {
            record->dist[vi] = static_cast<float>(sc.dist[vi]);
            record->par[vi] = sc.par[vi];
            if (v == bnode && bound_at_boundary)
                cutoff = 2.0 * dv + kTieMargin;
        }
        const uint32_t b0 = csr_off_[vi], b1 = csr_off_[vi + 1];
        for (uint32_t i = b0; i < b1; ++i) {
            const auto to = static_cast<size_t>(csr_to_[i]);
            const double nd = dv + csr_w_[i];
            if (nd > cutoff)
                continue; // positive weights: can't help nodes in radius
            if (sc.gen[to] != sc.cur || nd < sc.dist[to] - 1e-12) {
                sc.gen[to] = sc.cur;
                sc.dist[to] = nd;
                sc.par[to] = sc.par[vi] ^ csr_obs_[i];
                heap.push_back({nd, csr_to_[i]});
                std::push_heap(heap.begin(), heap.end(), by_dist);
            }
        }
    }
    if (record)
        record->radius = cutoff;
}

DecodingGraph::Row *
DecodingGraph::buildRow(int src, bool exact, DijkstraScratch &sc) const
{
    auto *row = new Row;
    row->dist.assign(numNodes() + 1,
                     std::numeric_limits<float>::infinity());
    row->par.assign(numNodes() + 1, 0);
    search(src, sc, kInf, row, !exact);
    return row;
}

std::shared_ptr<const DecodingGraph::Row>
DecodingGraph::row(int src, bool exact, DijkstraScratch &sc) const
{
    SURF_ASSERT(backend_ != MatchingBackend::Dense &&
                    static_cast<size_t>(src) < rows_.size(),
                "row queries are a Sparse-backend defect-node facility");
    auto &slot = rows_[static_cast<size_t>(src)];
    // Unbudgeted graphs (the default) never evict, so warm hits read a
    // raw mirror pointer with no refcount traffic and return a
    // non-owning handle — the same lock-free fast path the raw-pointer
    // design had. Rows displaced by exactness upgrades are retired (not
    // freed) to keep those non-owning readers safe.
    if (!row_budget_ever_.load(std::memory_order_acquire)) {
        const Row *fast =
            fast_rows_[static_cast<size_t>(src)].load(
                std::memory_order_acquire);
        if (fast && (!exact || fast->radius == kInf))
            return {std::shared_ptr<const void>(), fast};
    }
    // LRU stamps only matter when a budget can evict; the unbudgeted
    // path skips the shared tick counter so workers don't contend on
    // it for every defect of every shot.
    auto touch = [&] {
        if (row_budget_.load(std::memory_order_relaxed))
            row_stamp_[static_cast<size_t>(src)].store(
                row_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    };
    std::shared_ptr<const Row> cur = slot.load(std::memory_order_acquire);
    if (cur && (!exact || cur->radius == kInf)) {
        touch();
        return cur;
    }
    std::shared_ptr<const Row> fresh{buildRow(src, exact, sc)};
    for (;;) {
        if (slot.compare_exchange_strong(cur, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
            rows_built_.fetch_add(1, std::memory_order_relaxed);
            if (!cur) {
                rows_resident_.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Upgrade over a truncated row: non-owning fast-path
                // readers may still hold it, so it lives with the graph.
                std::lock_guard<std::mutex> lock(evict_mutex_);
                retired_.push_back(std::move(cur));
            }
            fast_rows_[static_cast<size_t>(src)].store(
                fresh.get(), std::memory_order_release);
            touch();
            if (row_budget_ &&
                rows_resident_.load(std::memory_order_relaxed) >
                    row_budget_)
                enforceRowBudget();
            return fresh;
        }
        // Lost the race; `cur` now holds the winner.
        if (cur && (!exact || cur->radius == kInf)) {
            touch();
            return cur;
        }
    }
}

uint64_t
DecodingGraph::csrDigest() const
{
    // 64-bit FNV-1a over the CSR arrays' exact bit patterns (weights
    // hashed as their IEEE-754 images, so "equal digest" means
    // bit-identical relaxation inputs, not merely approximately equal).
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(numNodes());
    for (uint32_t v : csr_off_)
        mix(v);
    for (int v : csr_to_)
        mix(static_cast<uint64_t>(static_cast<int64_t>(v)));
    for (double w : csr_w_) {
        uint64_t bits;
        std::memcpy(&bits, &w, sizeof bits);
        mix(bits);
    }
    for (uint8_t v : csr_obs_)
        mix(v);
    return h;
}

void
DecodingGraph::forEachResidentRow(
    const std::function<void(int src, const Row &row)> &fn) const
{
    if (backend_ == MatchingBackend::Dense)
        return;
    for (size_t i = 0; i < rows_.size(); ++i) {
        // Owned handle: the row stays alive through the visit even if
        // the budget evicts the slot concurrently.
        std::shared_ptr<const Row> r =
            rows_[i].load(std::memory_order_acquire);
        if (r)
            fn(static_cast<int>(i), *r);
    }
}

bool
DecodingGraph::restoreRow(int src, Row &&row) const
{
    if (backend_ == MatchingBackend::Dense)
        return false;
    if (src < 0 || static_cast<size_t>(src) >= rows_.size())
        return false;
    const size_t n = numNodes() + 1;
    if (row.dist.size() != n || row.par.size() != n)
        return false;
    if (!(row.radius >= 0.0)) // rejects NaN and negative radii
        return false;
    auto &slot = rows_[static_cast<size_t>(src)];
    std::shared_ptr<const Row> cur = slot.load(std::memory_order_acquire);
    if (cur)
        return false; // a live row exists; values are identical anyway
    std::shared_ptr<const Row> fresh =
        std::make_shared<const Row>(std::move(row));
    if (!slot.compare_exchange_strong(cur, fresh,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return false; // lost a publish race to a decode worker
    // Same bookkeeping as row()'s first publication, except rows_built_
    // stays untouched: a restore avoids a build, it doesn't perform one.
    rows_resident_.fetch_add(1, std::memory_order_relaxed);
    fast_rows_[static_cast<size_t>(src)].store(fresh.get(),
                                               std::memory_order_release);
    if (row_budget_.load(std::memory_order_relaxed)) {
        row_stamp_[static_cast<size_t>(src)].store(
            row_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        if (rows_resident_.load(std::memory_order_relaxed) >
            row_budget_.load(std::memory_order_relaxed))
            enforceRowBudget();
    }
    return true;
}

void
DecodingGraph::buildApsp(ThreadPool *pool)
{
    const size_t n = numNodes() + 1;
    dist_.assign(n * (n + 1) / 2, std::numeric_limits<float>::infinity());
    obs_.assign(n * (n + 1) / 2, 0);

    // Exhaustive Dijkstra from every source through the shared kernel.
    // Each source fills its own triangular row, so rows can run on any
    // worker with an identical result.
    std::vector<DijkstraScratch> scratch(pool ? pool->size() : 1);
    auto fillRow = [&](size_t src, size_t worker) {
        DijkstraScratch &sc = scratch[worker];
        search(static_cast<int>(src), sc, kInf, nullptr, false);
        for (size_t t = src; t < n; ++t) {
            if (sc.gen[t] != sc.cur)
                continue; // unreachable: stays at infinity
            const size_t idx =
                triIndex(static_cast<int>(src), static_cast<int>(t));
            dist_[idx] = static_cast<float>(sc.dist[t]);
            obs_[idx] = sc.par[t];
        }
    };
    if (pool)
        pool->parallelFor(n, fillRow);
    else
        for (size_t src = 0; src < n; ++src)
            fillRow(src, 0);
}

} // namespace surf
