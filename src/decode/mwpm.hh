/**
 * @file
 * Minimum-weight perfect-matching decoder (the PyMatching-equivalent):
 * fired detectors are matched pairwise or to the boundary along shortest
 * paths of the decoding graph; the predicted observable flip is the XOR
 * of the observable parities along the matched paths.
 *
 * Two backends (see graph.hh): the default Sparse backend answers the
 * path queries with per-shot truncated Dijkstra searches from each
 * fired defect (O(defects x local search) per shot, O(edges) decoder
 * construction), while the Dense backend keeps the historical
 * precomputed all-pairs tables.
 *
 * The sparse backend memoizes one shortest-path row per fired defect
 * node (DecodingGraph::row): rows are built lazily by the decode
 * workers, shared lock-free, and persist with the graph — a decoder
 * living in the DeformedCodeCache reaches dense-table speed after its
 * first shots while never paying for rows no defect touches.
 *
 * Sparse exactness ladder:
 *  - setTruncation(SIZE_MAX): fully exact — rows cover the whole graph
 *    with values bit-identical to the dense tables, so predictions are
 *    bit-identical to the dense backend on every shot.
 *  - default (truncation K): rows are radius-bounded at 2 d(src, B);
 *    since max(2 d(i,B), 2 d(j,B)) >= d(i,B) + d(j,B), every pair that
 *    could appear in a minimum-weight perfect matching (farther pairs
 *    lose to matching both ends into the boundary) is present in at
 *    least one endpoint's row, so the returned matching is still
 *    minimum-weight — only the choice among equal-weight optima may
 *    differ from the dense backend. Shots with more than K+1 defects
 *    additionally truncate the matching graph to each defect's K
 *    nearest fellow defects (the PyMatching-style approximation), with
 *    an untruncated retry whenever that leaves the matching graph
 *    without a perfect matching.
 */

#ifndef SURF_DECODE_MWPM_HH
#define SURF_DECODE_MWPM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "decode/graph.hh"
#include "decode/sparse_blossom.hh"
#include "util/deadline.hh"

namespace surf {

/** Default per-defect neighbor budget of the sparse backend: searches
 *  stop after the K nearest fellow defects (plus the boundary), so any
 *  shot with at most K+1 defects is matched exactly. */
inline constexpr size_t kDefaultNearestDefects = 16;

/** Floor of the automatic sparse-blossom dispatch threshold: the Sparse
 *  backend hands a shot to the matrix-free matcher when its defect
 *  count reaches max(kDefaultBlossomDefects, numNodes() / 12). The
 *  density guard is what separates the two regimes on real workloads:
 *  a fired-defect count that is a sizable fraction of the whole graph
 *  only happens for contiguous burst clusters (cosmic-ray events),
 *  where ball growth stays a few edges wide and the matcher beats the
 *  rows + k x k matrix + O(k^3) blossom pipeline at every measured
 *  size — while scattered syndromes of any realistic count keep the
 *  memoized-rows fast path. Override with setBlossomThreshold(). */
inline constexpr size_t kDefaultBlossomDefects = 16;

/** Process-wide default for the sparse-blossom dispatch: automatic
 *  (count + density heuristic above), or never when
 *  SURF_MATCHING_BACKEND=rows pins the rows pipeline. Returns SIZE_MAX
 *  for "never", 0 for "automatic". */
size_t defaultBlossomThreshold();

/**
 * Reusable per-thread decode workspace. The defect list, the dense
 * matching weight matrix, the blossom mate buffer, the Dijkstra search
 * state and the per-shot path cache all keep their heap buffers across
 * calls, so a steady-state decode loop performs no allocation here.
 * Epoch-stamped arrays (Dijkstra state, defect-slot map) reset in O(1).
 * Each worker thread owns one scratch; the decoder itself stays
 * immutable and shareable, and one scratch may serve decoders of
 * different sizes.
 */
struct MwpmScratch
{
    std::vector<int> defects;
    std::vector<int64_t> weights;
    std::vector<int> mate; ///< blossom output buffer

    // Sparse backend: lazy-search state plus the per-shot path cache
    // (distance/parity per defect pair and per defect-boundary pair),
    // filled once from the graph's memoized rows so matrix assembly and
    // the final blossom re-queries are table reads.
    DijkstraScratch dijkstra;
    std::vector<float> pathDist;
    std::vector<uint8_t> pathPar;
    /** Shared row handles held for the duration of one shot, so a row
     *  budget eviction can never free a row mid-decode. */
    std::vector<std::shared_ptr<const DecodingGraph::Row>> rows;
    std::vector<uint8_t> pairKeep; ///< K-nearest matrix truncation mask
    std::vector<std::pair<float, int>> nearCand;

    // Matrix-free matcher arena (ball growth, candidate hash, blossom
    // solver); used by the SparseBlossom backend and by burst shots the
    // Sparse backend dispatches past the blossom threshold.
    SparseBlossomScratch blossom;

    /** Total weight of the last decode's matching, in the shared
     *  quantization (sum of llround(w * 1024) over matched pair and
     *  boundary paths). Identical across backends on every shot up to
     *  the choice among equal-weight optima — the cross-backend
     *  equivalence gates compare it directly. */
    int64_t lastWeight = 0;

    // --- Soft-deadline ladder (see util/deadline.hh). All default-off:
    // with `deadline` null every cooperative check is one pointer test
    // and decode() is bit-identical to a deadline-free build.
    /** Non-owning per-shot budget; armed by the engine, polled at
     *  coarse work boundaries inside the sparse decode paths. */
    DecodeDeadline *deadline = nullptr;
    /** Fault-injected virtual stall charged to each ladder stage at
     *  stage entry (all zero without a fault plan). */
    std::array<uint64_t, kNumDecodeStages> stallNs{};
    /** Trace of the last ladder decode (stages tried, latencies). */
    ShotLadderTrace ladder;
    /** True when the deadline expired before MWPM produced a trusted
     *  answer: the caller must fall back to the union-find floor. */
    bool timedOut = false;
};

/** MWPM decoder for one basis tag of a detector error model. */
class MwpmDecoder
{
  public:
    /**
     * @param pool optional workers for parallel table construction
     *             (Dense backend only; Sparse builds in O(edges))
     * @param backend query backend, default from SURF_MATCHING_BACKEND
     */
    MwpmDecoder(const DetectorErrorModel &dem, uint8_t tag,
                ThreadPool *pool = nullptr,
                MatchingBackend backend = defaultMatchingBackend())
        : graph_(dem, tag, pool, backend)
    {
    }

    const DecodingGraph &graph() const { return graph_; }
    MatchingBackend backend() const { return graph_.backend(); }

    /** Sparse truncation knob: each defect's searches stop after its K
     *  nearest fellow defects (and are radius-bounded via boundary
     *  distances). SIZE_MAX = fully exact: no truncation, no radius
     *  bound, bit-identical to Dense. Ignored by the Dense backend. */
    void setTruncation(size_t k) { truncate_k_ = k ? k : 1; }
    size_t truncation() const { return truncate_k_; }

    /** Fired-defect count at which Sparse-backend shots go to the
     *  matrix-free sparse blossom (0 = always, SIZE_MAX = never). The
     *  default is automatic: max(kDefaultBlossomDefects, nodes / 12) —
     *  see blossomThreshold() for the resolved value. The SparseBlossom
     *  backend ignores this and always uses the matcher; Dense always
     *  uses the tables. */
    void
    setBlossomThreshold(size_t k)
    {
        blossom_threshold_ = k;
        auto_threshold_ = false;
    }
    size_t
    blossomThreshold() const
    {
        return auto_threshold_
                   ? std::max(kDefaultBlossomDefects, graph_.numNodes() / 12)
                   : blossom_threshold_;
    }

    /** Rough heap footprint (cache accounting). */
    size_t memoryBytes() const { return graph_.memoryBytes(); }

    /** LRU bound on the memoized Dijkstra row pool (see
     *  DecodingGraph::setRowBudget); 0 = unbounded. */
    void setRowBudget(size_t max_rows) { graph_.setRowBudget(max_rows); }

    /**
     * Decode one shot: `fired` points at `n_fired` fired detector ids
     * (global); detectors of other tags are ignored. Thread-safe given a
     * per-thread scratch.
     *
     * When `scratch.deadline` is armed (and the backend is not Dense),
     * the shot runs the staged fallback ladder instead: sparse blossom
     * (burst shots only) → memoized-rows MWPM, each stage under the
     * soft per-stage budget. A stage that overruns is abandoned and the
     * next stage tried; if the rows stage also overruns, the partial
     * answer is returned with `scratch.timedOut` set and the caller is
     * expected to downgrade to its union-find floor.
     * `scratch.ladder` records stages tried and per-stage latencies.
     * @return predicted observable flip
     */
    bool decode(const uint32_t *fired, size_t n_fired,
                MwpmScratch &scratch) const;

  private:
    bool decodeDense(MwpmScratch &scratch) const;
    bool decodeSparse(MwpmScratch &scratch) const;
    bool decodeSparseBlossom(MwpmScratch &scratch) const;
    /** Deadline-armed path: blossom → rows with per-stage budgets. */
    bool decodeLadder(MwpmScratch &scratch) const;

    DecodingGraph graph_;
    size_t truncate_k_ = kDefaultNearestDefects;
    size_t blossom_threshold_ = defaultBlossomThreshold();
    bool auto_threshold_ = defaultBlossomThreshold() == 0;
};

} // namespace surf

#endif // SURF_DECODE_MWPM_HH
