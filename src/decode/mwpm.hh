/**
 * @file
 * Minimum-weight perfect-matching decoder (the PyMatching-equivalent):
 * fired detectors are matched pairwise or to the boundary along shortest
 * paths of the decoding graph; the predicted observable flip is the XOR
 * of the observable parities along the matched paths.
 */

#ifndef SURF_DECODE_MWPM_HH
#define SURF_DECODE_MWPM_HH

#include <cstdint>
#include <vector>

#include "decode/graph.hh"

namespace surf {

/**
 * Reusable per-thread decode workspace: the defect list and the dense
 * matching weight matrix keep their heap buffers across calls, so a
 * steady-state decode loop performs no allocation here. Each worker
 * thread owns one scratch; the decoder itself stays immutable and
 * shareable.
 */
struct MwpmScratch
{
    std::vector<int> defects;
    std::vector<int64_t> weights;
};

/** MWPM decoder for one basis tag of a detector error model. */
class MwpmDecoder
{
  public:
    /** @param pool optional workers for parallel graph construction */
    MwpmDecoder(const DetectorErrorModel &dem, uint8_t tag,
                ThreadPool *pool = nullptr)
        : graph_(dem, tag, pool)
    {
    }

    const DecodingGraph &graph() const { return graph_; }

    /**
     * Decode one shot: `fired` points at `n_fired` fired detector ids
     * (global); detectors of other tags are ignored. Thread-safe given a
     * per-thread scratch.
     * @return predicted observable flip
     */
    bool decode(const uint32_t *fired, size_t n_fired,
                MwpmScratch &scratch) const;

    /** Convenience overload allocating a throwaway scratch. */
    bool
    decode(const std::vector<uint32_t> &fired_global) const
    {
        MwpmScratch scratch;
        return decode(fired_global.data(), fired_global.size(), scratch);
    }

  private:
    DecodingGraph graph_;
};

} // namespace surf

#endif // SURF_DECODE_MWPM_HH
