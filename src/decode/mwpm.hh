/**
 * @file
 * Minimum-weight perfect-matching decoder (the PyMatching-equivalent):
 * fired detectors are matched pairwise or to the boundary along shortest
 * paths of the decoding graph; the predicted observable flip is the XOR
 * of the observable parities along the matched paths.
 */

#ifndef SURF_DECODE_MWPM_HH
#define SURF_DECODE_MWPM_HH

#include <memory>

#include "decode/graph.hh"

namespace surf {

/** MWPM decoder for one basis tag of a detector error model. */
class MwpmDecoder
{
  public:
    MwpmDecoder(const DetectorErrorModel &dem, uint8_t tag)
        : graph_(dem, tag)
    {
    }

    const DecodingGraph &graph() const { return graph_; }

    /**
     * Decode one shot: `fired_global` lists fired detector ids (global);
     * detectors of other tags are ignored.
     * @return predicted observable flip
     */
    bool decode(const std::vector<uint32_t> &fired_global) const;

  private:
    DecodingGraph graph_;
};

} // namespace surf

#endif // SURF_DECODE_MWPM_HH
