/**
 * @file
 * Exact maximum-weight general matching (blossom algorithm with dual
 * variables, dense O(n^3)) and the minimum-weight perfect matching
 * wrapper used by the MWPM decoder. This is the PyMatching-equivalent
 * core of the decoding stack; it is differential-tested against a
 * brute-force matcher on random graphs.
 */

#ifndef SURF_DECODE_BLOSSOM_HH
#define SURF_DECODE_BLOSSOM_HH

#include <cstdint>
#include <vector>

namespace surf {

/**
 * Minimum-weight perfect matching on a dense graph.
 *
 * @param n number of vertices (must be even for a perfect matching)
 * @param w n-by-n symmetric weight matrix (row-major);
 *          use kMatchForbidden for forbidden pairs
 * @return mate[v] for every vertex, or an empty vector when no perfect
 *         matching exists
 */
std::vector<int> minWeightPerfectMatching(int n,
                                          const std::vector<int64_t> &w);

/**
 * Scratch-output variant for decode loops: writes mate[v] into the
 * caller's reusable buffer (resized to n) instead of allocating one.
 * @return true iff a perfect matching exists (mate is cleared when not)
 */
bool minWeightPerfectMatching(int n, const std::vector<int64_t> &w,
                              std::vector<int> &mate);

/** Sentinel weight marking a forbidden pair (far above any real weight,
 *  including the tie-break-perturbed ones — see match_weights.hh). */
inline constexpr int64_t kMatchForbidden = INT64_C(1) << 58;

} // namespace surf

#endif // SURF_DECODE_BLOSSOM_HH
