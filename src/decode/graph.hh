/**
 * @file
 * Matching graph for one CSS basis: detector nodes plus a virtual
 * boundary node with edge weights w = log((1-p)/p), stored as a CSR
 * adjacency. Two query backends answer shortest-path questions:
 *
 *  - Sparse (default): no precompute. Distances and observable parities
 *    are answered by lazy Dijkstra searches from each fired defect,
 *    truncated to the nearest targets, using caller-owned epoch-stamped
 *    scratch state (reset is O(1), steady state allocates nothing).
 *    Graph construction is O(edges), so cold decoder builds are cheap.
 *  - Dense: the historical all-pairs shortest-path tables (flat
 *    triangular distance + observable-parity arrays). O(n^2 log n)
 *    build, O(1) queries. Kept for equivalence testing and for
 *    query-heavy workloads on small graphs.
 *
 * Both backends share one Dijkstra kernel (same relaxation order,
 * epsilon and float rounding), so every quantity the sparse backend
 * reports is bit-identical to the dense tables' entry for the same
 * (source, target) pair.
 */

#ifndef SURF_DECODE_GRAPH_HH
#define SURF_DECODE_GRAPH_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/dem.hh"

namespace surf {

class ThreadPool;

/** Shortest-path query backend of a decoding graph. */
enum class MatchingBackend : uint8_t
{
    Dense,  ///< precomputed all-pairs tables
    Sparse, ///< on-demand truncated Dijkstra rows + dense blossom
    /** Matrix-free sparse blossom (see sparse_blossom.hh): per-shot
     *  bounded ball growth on the CSR adjacency + an adjacency-list
     *  blossom solve; no rows, no k x k matrix. The graph itself stores
     *  only the CSR arrays, exactly like Sparse. */
    SparseBlossom,
};

/**
 * Process-wide default backend (read once, at first use) from the
 * environment variable SURF_MATCHING_BACKEND:
 *  - unset / "sparse": Sparse rows for small shots, with the decoder
 *    dispatching burst shots to the matrix-free sparse blossom
 *  - "dense": precomputed all-pairs tables
 *  - "rows": Sparse rows for every shot (no sparse-blossom dispatch)
 *  - "sparse_blossom" / "blossom": matrix-free matcher for every shot
 */
MatchingBackend defaultMatchingBackend();

/** Quantized matrix weights tie at 1/1024 granularity; radius-bounded
 *  searches keep this margin so integer-tied pairs stay inside bounded
 *  rows and balls (shared by the row builder and the sparse blossom). */
inline constexpr double kWeightTieMargin = 8.0 / 1024.0;

/**
 * Caller-owned state for on-demand Dijkstra queries. Arrays are
 * epoch-stamped (a generation counter marks which entries belong to the
 * current search), so resetting between searches is O(1) and a decode
 * loop performs no allocation in steady state. One scratch per thread;
 * a scratch may be shared across graphs of different sizes (arrays only
 * ever grow).
 */
struct DijkstraScratch
{
    std::vector<std::pair<double, int>> heap;
    std::vector<double> dist;
    std::vector<uint8_t> par;
    std::vector<uint32_t> gen;
    uint32_t cur = 0;

    /** Grow the arrays to cover `n` nodes (no-op when large enough). */
    void
    bind(size_t n)
    {
        if (dist.size() < n) {
            heap.reserve(n);
            dist.resize(n);
            par.resize(n);
            gen.resize(n, 0);
        }
    }
};

/** Decoding graph over the detectors of one basis tag. */
class DecodingGraph
{
  public:
    /**
     * @param tag 0 = X-check detectors, 1 = Z-check detectors
     * @param pool optional worker pool for the Dense backend: the
     *             all-pairs shortest-path rows are independent, so the
     *             table build parallelises cleanly (the result is
     *             identical for any worker count)
     * @param backend query backend; Sparse skips all precompute
     */
    DecodingGraph(const DetectorErrorModel &dem, uint8_t tag,
                  ThreadPool *pool = nullptr,
                  MatchingBackend backend = defaultMatchingBackend());
    ~DecodingGraph();

    DecodingGraph(const DecodingGraph &) = delete;
    DecodingGraph &operator=(const DecodingGraph &) = delete;

    size_t numNodes() const { return global_of_.size(); }
    int boundaryNode() const { return static_cast<int>(numNodes()); }
    MatchingBackend backend() const { return backend_; }
    /** The detector tag this graph was built over (snapshot identity). */
    uint8_t tag() const { return tag_; }

    /** Read-only CSR adjacency over numNodes()+1 nodes (last = the
     *  boundary), in DEM edge order — the shared relaxation order. The
     *  matrix-free matcher walks these directly. */
    const std::vector<uint32_t> &csrOffsets() const { return csr_off_; }
    const std::vector<int> &csrTargets() const { return csr_to_; }
    const std::vector<double> &csrWeights() const { return csr_w_; }
    const std::vector<uint8_t> &csrObsFlips() const { return csr_obs_; }

    /** Local node for a global detector id (-1 when not this tag). */
    int localOf(uint32_t global_det) const;

    /** Shortest-path distance between local nodes (Dense backend only;
     *  boundaryNode() ok). */
    double
    dist(int a, int b) const
    {
        return dist_[triIndex(a, b)];
    }

    /** Observable parity along one shortest path (Dense backend only). */
    bool
    obsParity(int a, int b) const
    {
        return obs_[triIndex(a, b)] != 0;
    }

    /**
     * One memoized shortest-path row (Sparse backend): distances and
     * parities from a source node to everything within `radius`
     * (infinity elsewhere: beyond the radius, or unreachable).
     * Immutable once published; shared lock-free across decode workers.
     */
    struct Row
    {
        double radius = 0.0;
        std::vector<float> dist; ///< numNodes()+1 entries, inf = absent
        std::vector<uint8_t> par;
    };

    /**
     * Memoized row for `src` (Sparse backend). Rows are built lazily by
     * whichever decode worker first needs them — the scratch supplies
     * the Dijkstra state — and then shared: a decoder that lives in the
     * DeformedCodeCache answers later shots and later epochs at
     * table-lookup speed, while a shape that is decoded once only ever
     * pays for the rows its own defects touch.
     *
     * When `exact`, the row covers the full graph and its entries are
     * bit-identical to the dense backend's table row. Otherwise the row
     * is truncated at radius 2 * d(src, boundary): for any defect pair
     * (i, j), max(2 d(i,B), 2 d(j,B)) >= d(i,B) + d(j,B), so every pair
     * that could appear in a minimum-weight perfect matching (farther
     * pairs lose to matching both ends into the boundary) is present in
     * at least one of its endpoints' rows.
     *
     * Concurrent builders may race; the first publication wins and the
     * values are identical either way, so results never depend on the
     * winner. The returned shared_ptr keeps the row alive for the
     * caller even if the row budget evicts it mid-shot; rows are pure
     * functions of (src, exact), so eviction and rebuild can never
     * change results, only cost.
     */
    std::shared_ptr<const Row> row(int src, bool exact,
                                   DijkstraScratch &sc) const;

    /**
     * Bound the memoized row pool: at most `max_rows` rows stay
     * resident (0 = unbounded). When a newly published row pushes the
     * pool past the budget, the least-recently-used rows are dropped —
     * long d >= 21 sweeps can no longer grow O(n^2) row memory. In-use
     * rows are safe (shared_ptr), and results are unchanged by
     * construction. Set the budget before decode workers start: the
     * first non-zero budget permanently switches readers from the
     * lock-free unbudgeted fast path to owned handles, and that switch
     * must not race in-flight row() calls.
     */
    void setRowBudget(size_t max_rows);
    size_t rowBudget() const
    {
        return row_budget_.load(std::memory_order_relaxed);
    }

    /** Rows currently resident (<= budget when one is set). */
    size_t rowsResident() const
    {
        return rows_resident_.load(std::memory_order_relaxed);
    }

    /** Total rows built over the graph's lifetime (diagnostics; counts
     *  rebuilds after eviction and exactness upgrades). */
    size_t rowsBuilt() const
    {
        return rows_built_.load(std::memory_order_relaxed);
    }

    /** Rough heap footprint (cache accounting). */
    size_t memoryBytes() const;

    /**
     * Structural digest of the CSR adjacency (offsets, targets, weight
     * bit patterns, parity flags). Two graphs built from the same DEM
     * have equal digests; the snapshot loader compares a restored
     * entry's recorded digest against the graph it rebuilds to catch
     * semantically inconsistent snapshots (a payload that passed its
     * CRC but belongs to different code) before any row is trusted.
     */
    uint64_t csrDigest() const;

    /**
     * Visit every currently resident memoized row (Sparse backends
     * only; no-op for Dense). Safe against concurrent publication and
     * budget eviction: each slot is loaded as an owned handle for the
     * duration of its visit. Used by the snapshot writer.
     */
    void forEachResidentRow(
        const std::function<void(int src, const Row &row)> &fn) const;

    /**
     * Publish a previously memoized row into an empty slot — the
     * snapshot-restore path. Rows are pure functions of (src, radius
     * policy), so a restored row is bit-identical to what the first
     * decode worker would have built; publishing uses the same CAS
     * discipline as row(), so restores race safely against concurrent
     * readers and row-budget reclamation. Rejects (returns false)
     * out-of-range sources, size-mismatched arrays, non-finite
     * negative radii and occupied slots; never aborts.
     */
    bool restoreRow(int src, Row &&row) const;

    static constexpr double kInf = std::numeric_limits<double>::infinity();

  private:
    void buildApsp(ThreadPool *pool);

    /**
     * The one Dijkstra kernel both backends run — identical relaxation
     * order, tie epsilon and float rounding, which is what makes sparse
     * rows bit-compatible with the dense tables. With `record` null the
     * frontier is exhausted into the scratch (dense table build);
     * otherwise every settled node is written into the record row, and
     * `bound_at_boundary` caps the radius at 2 * d(src, boundary) (plus
     * a quantized-tie margin) the moment the boundary settles.
     */
    void search(int src, DijkstraScratch &sc, double cutoff, Row *record,
                bool bound_at_boundary) const;

    /**
     * Index into the flat upper-triangular APSP storage (diagonal
     * included): row a holds entries for targets t >= a. Symmetric
     * lookups swap so (a, b) and (b, a) share one slot — shortest-path
     * distance is symmetric, and either direction's shortest path is a
     * valid witness for the observable parity.
     */
    size_t
    triIndex(int a, int b) const
    {
        auto lo = static_cast<size_t>(a < b ? a : b);
        auto hi = static_cast<size_t>(a < b ? b : a);
        const size_t n = numNodes() + 1;
        return lo * n - lo * (lo + 1) / 2 + hi;
    }

    /** Bounded Dijkstra for one row: explores freely until the boundary
     *  settles, then caps the radius (infinite when `exact`). */
    Row *buildRow(int src, bool exact, DijkstraScratch &sc) const;

    MatchingBackend backend_;
    uint8_t tag_ = 0;
    std::vector<uint32_t> global_of_;
    std::vector<int> local_of_;
    // CSR adjacency over numNodes()+1 nodes (last = boundary). Neighbor
    // order matches the DEM edge order, which fixes the relaxation
    // order shared by both backends.
    std::vector<uint32_t> csr_off_;
    std::vector<int> csr_to_;
    std::vector<double> csr_w_;
    std::vector<uint8_t> csr_obs_;
    // Dense backend only:
    std::vector<float> dist_;  // flat triangular, see triIndex()
    std::vector<uint8_t> obs_; // parities, same indexing; bytes so
                               // parallel row fills don't share words
                               // across rows
    /** Drop least-recently-used rows until the pool fits the budget. */
    void enforceRowBudget() const;

    // Sparse backend only: lazily built, immutable-once-published rows.
    // Slots are atomic shared_ptrs so the budget can evict concurrently
    // with readers; per-slot use stamps drive the LRU choice. While no
    // budget has ever been set (the default), readers take a lock-free
    // raw-pointer fast path instead (fast_rows_ mirrors the slots, and
    // rows displaced by exactness upgrades are retired, not freed, so
    // non-owning readers stay safe); the first setRowBudget permanently
    // switches readers to owned handles.
    mutable std::vector<std::atomic<std::shared_ptr<const Row>>> rows_;
    mutable std::vector<std::atomic<const Row *>> fast_rows_;
    mutable std::vector<std::atomic<uint64_t>> row_stamp_;
    mutable std::atomic<uint64_t> row_tick_{0};
    mutable std::atomic<size_t> rows_built_{0};
    mutable std::atomic<size_t> rows_resident_{0};
    std::atomic<size_t> row_budget_{0};      ///< 0 = unbounded
    std::atomic<bool> row_budget_ever_{false};
    mutable std::mutex evict_mutex_;
    mutable std::vector<std::shared_ptr<const Row>> retired_;
};

} // namespace surf

#endif // SURF_DECODE_GRAPH_HH
