/**
 * @file
 * Matching graph for one CSS basis: detector nodes plus a virtual
 * boundary node with edge weights w = log((1-p)/p), stored as a CSR
 * adjacency. Two query backends answer shortest-path questions:
 *
 *  - Sparse (default): no precompute. Distances and observable parities
 *    are answered by lazy Dijkstra searches from each fired defect,
 *    truncated to the nearest targets, using caller-owned epoch-stamped
 *    scratch state (reset is O(1), steady state allocates nothing).
 *    Graph construction is O(edges), so cold decoder builds are cheap.
 *  - Dense: the historical all-pairs shortest-path tables (flat
 *    triangular distance + observable-parity arrays). O(n^2 log n)
 *    build, O(1) queries. Kept for equivalence testing and for
 *    query-heavy workloads on small graphs.
 *
 * Both backends share one Dijkstra kernel (same relaxation order,
 * epsilon and float rounding), so every quantity the sparse backend
 * reports is bit-identical to the dense tables' entry for the same
 * (source, target) pair.
 */

#ifndef SURF_DECODE_GRAPH_HH
#define SURF_DECODE_GRAPH_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/dem.hh"

namespace surf {

class ThreadPool;

/** Shortest-path query backend of a decoding graph. */
enum class MatchingBackend : uint8_t
{
    Dense,  ///< precomputed all-pairs tables
    Sparse, ///< on-demand truncated Dijkstra
};

/**
 * Process-wide default backend: Sparse, unless the environment variable
 * SURF_MATCHING_BACKEND is set to "dense" (read once, at first use).
 */
MatchingBackend defaultMatchingBackend();

/**
 * Caller-owned state for on-demand Dijkstra queries. Arrays are
 * epoch-stamped (a generation counter marks which entries belong to the
 * current search), so resetting between searches is O(1) and a decode
 * loop performs no allocation in steady state. One scratch per thread;
 * a scratch may be shared across graphs of different sizes (arrays only
 * ever grow).
 */
struct DijkstraScratch
{
    std::vector<std::pair<double, int>> heap;
    std::vector<double> dist;
    std::vector<uint8_t> par;
    std::vector<uint32_t> gen;
    uint32_t cur = 0;

    /** Grow the arrays to cover `n` nodes (no-op when large enough). */
    void
    bind(size_t n)
    {
        if (dist.size() < n) {
            heap.reserve(n);
            dist.resize(n);
            par.resize(n);
            gen.resize(n, 0);
        }
    }
};

/** Decoding graph over the detectors of one basis tag. */
class DecodingGraph
{
  public:
    /**
     * @param tag 0 = X-check detectors, 1 = Z-check detectors
     * @param pool optional worker pool for the Dense backend: the
     *             all-pairs shortest-path rows are independent, so the
     *             table build parallelises cleanly (the result is
     *             identical for any worker count)
     * @param backend query backend; Sparse skips all precompute
     */
    DecodingGraph(const DetectorErrorModel &dem, uint8_t tag,
                  ThreadPool *pool = nullptr,
                  MatchingBackend backend = defaultMatchingBackend());
    ~DecodingGraph();

    DecodingGraph(const DecodingGraph &) = delete;
    DecodingGraph &operator=(const DecodingGraph &) = delete;

    size_t numNodes() const { return global_of_.size(); }
    int boundaryNode() const { return static_cast<int>(numNodes()); }
    MatchingBackend backend() const { return backend_; }

    /** Local node for a global detector id (-1 when not this tag). */
    int localOf(uint32_t global_det) const;

    /** Shortest-path distance between local nodes (Dense backend only;
     *  boundaryNode() ok). */
    double
    dist(int a, int b) const
    {
        return dist_[triIndex(a, b)];
    }

    /** Observable parity along one shortest path (Dense backend only). */
    bool
    obsParity(int a, int b) const
    {
        return obs_[triIndex(a, b)] != 0;
    }

    /**
     * One memoized shortest-path row (Sparse backend): distances and
     * parities from a source node to everything within `radius`
     * (infinity elsewhere: beyond the radius, or unreachable).
     * Immutable once published; shared lock-free across decode workers.
     */
    struct Row
    {
        double radius = 0.0;
        std::vector<float> dist; ///< numNodes()+1 entries, inf = absent
        std::vector<uint8_t> par;
    };

    /**
     * Memoized row for `src` (Sparse backend). Rows are built lazily by
     * whichever decode worker first needs them — the scratch supplies
     * the Dijkstra state — and then shared: a decoder that lives in the
     * DeformedCodeCache answers later shots and later epochs at
     * table-lookup speed, while a shape that is decoded once only ever
     * pays for the rows its own defects touch.
     *
     * When `exact`, the row covers the full graph and its entries are
     * bit-identical to the dense backend's table row. Otherwise the row
     * is truncated at radius 2 * d(src, boundary): for any defect pair
     * (i, j), max(2 d(i,B), 2 d(j,B)) >= d(i,B) + d(j,B), so every pair
     * that could appear in a minimum-weight perfect matching (farther
     * pairs lose to matching both ends into the boundary) is present in
     * at least one of its endpoints' rows.
     *
     * Concurrent builders may race; the first publication wins and the
     * values are identical either way, so results never depend on the
     * winner. Losing rows are retired and freed with the graph.
     */
    const Row &row(int src, bool exact, DijkstraScratch &sc) const;

    /** Number of rows built so far (diagnostics / cache accounting). */
    size_t rowsBuilt() const
    {
        return rows_built_.load(std::memory_order_relaxed);
    }

    /** Rough heap footprint (cache accounting). */
    size_t memoryBytes() const;

    static constexpr double kInf = std::numeric_limits<double>::infinity();

  private:
    void buildApsp(ThreadPool *pool);

    /**
     * The one Dijkstra kernel both backends run — identical relaxation
     * order, tie epsilon and float rounding, which is what makes sparse
     * rows bit-compatible with the dense tables. With `record` null the
     * frontier is exhausted into the scratch (dense table build);
     * otherwise every settled node is written into the record row, and
     * `bound_at_boundary` caps the radius at 2 * d(src, boundary) (plus
     * a quantized-tie margin) the moment the boundary settles.
     */
    void search(int src, DijkstraScratch &sc, double cutoff, Row *record,
                bool bound_at_boundary) const;

    /**
     * Index into the flat upper-triangular APSP storage (diagonal
     * included): row a holds entries for targets t >= a. Symmetric
     * lookups swap so (a, b) and (b, a) share one slot — shortest-path
     * distance is symmetric, and either direction's shortest path is a
     * valid witness for the observable parity.
     */
    size_t
    triIndex(int a, int b) const
    {
        auto lo = static_cast<size_t>(a < b ? a : b);
        auto hi = static_cast<size_t>(a < b ? b : a);
        const size_t n = numNodes() + 1;
        return lo * n - lo * (lo + 1) / 2 + hi;
    }

    /** Bounded Dijkstra for one row: explores freely until the boundary
     *  settles, then caps the radius (infinite when `exact`). */
    Row *buildRow(int src, bool exact, DijkstraScratch &sc) const;

    MatchingBackend backend_;
    std::vector<uint32_t> global_of_;
    std::vector<int> local_of_;
    // CSR adjacency over numNodes()+1 nodes (last = boundary). Neighbor
    // order matches the DEM edge order, which fixes the relaxation
    // order shared by both backends.
    std::vector<uint32_t> csr_off_;
    std::vector<int> csr_to_;
    std::vector<double> csr_w_;
    std::vector<uint8_t> csr_obs_;
    // Dense backend only:
    std::vector<float> dist_;  // flat triangular, see triIndex()
    std::vector<uint8_t> obs_; // parities, same indexing; bytes so
                               // parallel row fills don't share words
                               // across rows
    // Sparse backend only: lazily built, immutable-once-published rows.
    mutable std::vector<std::atomic<const Row *>> rows_;
    mutable std::atomic<size_t> rows_built_{0};
    mutable std::mutex retired_mutex_;
    mutable std::vector<const Row *> retired_; ///< freed in ~DecodingGraph
};

} // namespace surf

#endif // SURF_DECODE_GRAPH_HH
