/**
 * @file
 * Matching graph for one CSS basis: detector nodes plus a virtual
 * boundary node, edge weights w = log((1-p)/p), and all-pairs shortest
 * paths with the observable parity accumulated along each shortest path.
 */

#ifndef SURF_DECODE_GRAPH_HH
#define SURF_DECODE_GRAPH_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/dem.hh"

namespace surf {

class ThreadPool;

/** Decoding graph over the detectors of one basis tag. */
class DecodingGraph
{
  public:
    /**
     * @param tag 0 = X-check detectors, 1 = Z-check detectors
     * @param pool optional worker pool: the all-pairs shortest-path rows
     *             are independent, so construction parallelises cleanly
     *             (the result is identical for any worker count)
     */
    DecodingGraph(const DetectorErrorModel &dem, uint8_t tag,
                  ThreadPool *pool = nullptr);

    size_t numNodes() const { return global_of_.size(); }
    int boundaryNode() const { return static_cast<int>(numNodes()); }

    /** Local node for a global detector id (-1 when not this tag). */
    int localOf(uint32_t global_det) const;

    /** Shortest-path distance between local nodes (boundaryNode() ok). */
    double
    dist(int a, int b) const
    {
        return dist_[triIndex(a, b)];
    }

    /** Observable parity along one shortest path between local nodes. */
    bool
    obsParity(int a, int b) const
    {
        return obs_[triIndex(a, b)] != 0;
    }

    static constexpr double kInf = std::numeric_limits<double>::infinity();

  private:
    void buildApsp(ThreadPool *pool);

    /**
     * Index into the flat upper-triangular APSP storage (diagonal
     * included): row a holds entries for targets t >= a. Symmetric
     * lookups swap so (a, b) and (b, a) share one slot — shortest-path
     * distance is symmetric, and either direction's shortest path is a
     * valid witness for the observable parity.
     */
    size_t
    triIndex(int a, int b) const
    {
        auto lo = static_cast<size_t>(a < b ? a : b);
        auto hi = static_cast<size_t>(a < b ? b : a);
        const size_t n = numNodes() + 1;
        return lo * n - lo * (lo + 1) / 2 + hi;
    }

    struct Edge
    {
        int to;
        double w;
        bool obs;
    };

    std::vector<uint32_t> global_of_;
    std::vector<int> local_of_;
    std::vector<std::vector<Edge>> adj_; // index numNodes() = boundary
    std::vector<float> dist_;            // flat triangular, see triIndex()
    std::vector<uint8_t> obs_;           // parities, same indexing; bytes
                                         // so parallel row fills don't
                                         // share words across rows
};

} // namespace surf

#endif // SURF_DECODE_GRAPH_HH
