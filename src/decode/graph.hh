/**
 * @file
 * Matching graph for one CSS basis: detector nodes plus a virtual
 * boundary node, edge weights w = log((1-p)/p), and all-pairs shortest
 * paths with the observable parity accumulated along each shortest path.
 */

#ifndef SURF_DECODE_GRAPH_HH
#define SURF_DECODE_GRAPH_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "pauli/bitvec.hh"
#include "sim/dem.hh"

namespace surf {

/** Decoding graph over the detectors of one basis tag. */
class DecodingGraph
{
  public:
    /** @param tag 0 = X-check detectors, 1 = Z-check detectors */
    DecodingGraph(const DetectorErrorModel &dem, uint8_t tag);

    size_t numNodes() const { return global_of_.size(); }
    int boundaryNode() const { return static_cast<int>(numNodes()); }

    /** Local node for a global detector id (-1 when not this tag). */
    int localOf(uint32_t global_det) const;

    /** Shortest-path distance between local nodes (boundaryNode() ok). */
    double dist(int a, int b) const;

    /** Observable parity along one shortest path between local nodes. */
    bool obsParity(int a, int b) const;

    static constexpr double kInf = std::numeric_limits<double>::infinity();

  private:
    void buildApsp();

    struct Edge
    {
        int to;
        double w;
        bool obs;
    };

    std::vector<uint32_t> global_of_;
    std::vector<int> local_of_;
    std::vector<std::vector<Edge>> adj_; // index numNodes() = boundary
    std::vector<std::vector<float>> dist_;
    std::vector<BitVec> obs_;
};

} // namespace surf

#endif // SURF_DECODE_GRAPH_HH
