#include "decode/union_find.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace surf {

UnionFindDecoder::UnionFindDecoder(const DetectorErrorModel &dem, uint8_t tag)
{
    local_of_.assign(dem.numDetectors, -1);
    for (uint32_t d = 0; d < dem.numDetectors; ++d)
        if (dem.detectorTag[d] == tag)
            local_of_[d] = numNodes_++;
    incident_.assign(static_cast<size_t>(numNodes_) + 1, {});
    for (const DemEdge &e : dem.edges[tag]) {
        const int a = (e.a < 0) ? numNodes_
                                : local_of_[static_cast<size_t>(e.a)];
        const int b = (e.b < 0) ? numNodes_
                                : local_of_[static_cast<size_t>(e.b)];
        if (a == b)
            continue;
        const double p = std::clamp(e.p, 1e-14, 0.499999);
        const double w = std::log((1.0 - p) / p);
        const int units = std::max<int>(1, static_cast<int>(
                                               std::llround(4.0 * w)));
        const int id = static_cast<int>(edges_.size());
        edges_.push_back({a, b, units, e.flipsObs});
        incident_[static_cast<size_t>(a)].push_back(id);
        incident_[static_cast<size_t>(b)].push_back(id);
    }
}

void
UfScratch::prepare(size_t n, size_t n_edges)
{
    has_boundary.assign(n, 0);
    growth.assign(n_edges, 0);
    fused.assign(n_edges, 0);
    forest.clear();
}

size_t
UnionFindDecoder::memoryBytes() const
{
    size_t bytes = local_of_.capacity() * sizeof(int) +
                   edges_.capacity() * sizeof(Edge) +
                   incident_.capacity() * sizeof(std::vector<int>);
    for (const auto &inc : incident_)
        bytes += inc.capacity() * sizeof(int);
    return bytes;
}

bool
UnionFindDecoder::decode(const uint32_t *fired, size_t n_fired,
                         UfScratch &sc) const
{
    const int nb = numNodes_; // boundary node id
    const size_t n = static_cast<size_t>(numNodes_) + 1;
    sc.defect.assign(n, 0);
    int n_defects = 0;
    for (size_t i = 0; i < n_fired; ++i) {
        const int l = local_of_[fired[i]];
        if (l >= 0) {
            sc.defect[static_cast<size_t>(l)] ^= 1;
            ++n_defects;
        }
    }
    if (n_defects == 0)
        return false;

    // Union-find with cluster parity and boundary flags. All state lives
    // in the scratch, so repeated decodes reuse the same buffers (and
    // the growth workspace is only cleared past the zero-defect exit).
    sc.prepare(n, edges_.size());
    sc.parent.resize(n);
    std::iota(sc.parent.begin(), sc.parent.end(), 0);
    sc.parity.assign(sc.defect.begin(), sc.defect.end());
    sc.has_boundary[static_cast<size_t>(nb)] = 1;
    auto &parent = sc.parent;
    auto find = [&parent](int v) {
        while (parent[static_cast<size_t>(v)] != v) {
            parent[static_cast<size_t>(v)] =
                parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
            v = parent[static_cast<size_t>(v)];
        }
        return v;
    };

    auto active = [&](int root) {
        return sc.parity[static_cast<size_t>(root)] &&
               !sc.has_boundary[static_cast<size_t>(root)];
    };

    bool any_active = true;
    int guard = 0;
    while (any_active) {
        SURF_ASSERT(++guard < 100000, "union-find growth failed to halt");
        any_active = false;
        // Grow every edge incident to an active cluster.
        for (size_t e = 0; e < edges_.size(); ++e) {
            if (sc.fused[e])
                continue;
            const int ra = find(edges_[e].a), rb = find(edges_[e].b);
            if (ra == rb) {
                sc.fused[e] = 1;
                continue;
            }
            int add = 0;
            if (active(ra))
                ++add;
            if (active(rb))
                ++add;
            if (add == 0)
                continue;
            sc.growth[e] += add;
            if (sc.growth[e] >= edges_[e].units) {
                sc.fused[e] = 1;
                sc.forest.push_back(static_cast<int>(e));
                // Union rb into ra.
                sc.parent[static_cast<size_t>(rb)] = ra;
                sc.parity[static_cast<size_t>(ra)] ^=
                    sc.parity[static_cast<size_t>(rb)];
                sc.has_boundary[static_cast<size_t>(ra)] |=
                    sc.has_boundary[static_cast<size_t>(rb)];
            }
        }
        for (int v = 0; v <= numNodes_; ++v)
            if (find(v) == v && active(v)) {
                any_active = true;
                break;
            }
    }

    // Peeling over the spanning forest: include an edge iff the subtree
    // hanging off it has odd defect parity. Roots prefer the boundary.
    if (sc.tree.size() != n)
        sc.tree.assign(n, {});
    else
        for (auto &t : sc.tree)
            t.clear();
    for (int e : sc.forest) {
        sc.tree[static_cast<size_t>(edges_[static_cast<size_t>(e)].a)]
            .push_back({e, edges_[static_cast<size_t>(e)].b});
        sc.tree[static_cast<size_t>(edges_[static_cast<size_t>(e)].b)]
            .push_back({e, edges_[static_cast<size_t>(e)].a});
    }
    sc.visited.assign(n, 0);
    bool obs = false;
    // Iterative post-order from each root; boundary first so boundary
    // clusters are rooted there.
    sc.order.clear();
    sc.parent_edge.assign(n, {-1, -1});
    auto bfs_from = [&](int root) {
        sc.visited[static_cast<size_t>(root)] = 1;
        sc.bfs_queue.clear();
        sc.bfs_queue.push_back(root);
        for (size_t h = 0; h < sc.bfs_queue.size(); ++h) {
            const int v = sc.bfs_queue[h];
            sc.order.push_back(v);
            for (const auto &[e, to] : sc.tree[static_cast<size_t>(v)]) {
                if (!sc.visited[static_cast<size_t>(to)]) {
                    sc.visited[static_cast<size_t>(to)] = 1;
                    sc.parent_edge[static_cast<size_t>(to)] = {e, v};
                    sc.bfs_queue.push_back(to);
                }
            }
        }
    };
    bfs_from(nb);
    for (int v = 0; v < numNodes_; ++v)
        if (!sc.visited[static_cast<size_t>(v)] &&
            !sc.tree[static_cast<size_t>(v)].empty())
            bfs_from(v);
    sc.sub.assign(sc.defect.begin(), sc.defect.end());
    for (size_t i = sc.order.size(); i-- > 0;) {
        const int v = sc.order[static_cast<size_t>(i)];
        const auto &[e, par] = sc.parent_edge[static_cast<size_t>(v)];
        if (e < 0)
            continue;
        if (sc.sub[static_cast<size_t>(v)]) {
            obs ^= edges_[static_cast<size_t>(e)].obs;
            sc.sub[static_cast<size_t>(par)] ^= 1;
            sc.sub[static_cast<size_t>(v)] = 0;
        }
    }
    return obs;
}

} // namespace surf
