#include "decode/union_find.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "util/logging.hh"

namespace surf {

UnionFindDecoder::UnionFindDecoder(const DetectorErrorModel &dem, uint8_t tag)
{
    local_of_.assign(dem.numDetectors, -1);
    for (uint32_t d = 0; d < dem.numDetectors; ++d)
        if (dem.detectorTag[d] == tag)
            local_of_[d] = numNodes_++;
    incident_.assign(static_cast<size_t>(numNodes_) + 1, {});
    for (const DemEdge &e : dem.edges[tag]) {
        const int a = (e.a < 0) ? numNodes_
                                : local_of_[static_cast<size_t>(e.a)];
        const int b = (e.b < 0) ? numNodes_
                                : local_of_[static_cast<size_t>(e.b)];
        if (a == b)
            continue;
        const double p = std::clamp(e.p, 1e-14, 0.499999);
        const double w = std::log((1.0 - p) / p);
        const int units = std::max<int>(1, static_cast<int>(
                                               std::llround(4.0 * w)));
        const int id = static_cast<int>(edges_.size());
        edges_.push_back({a, b, units, e.flipsObs});
        incident_[static_cast<size_t>(a)].push_back(id);
        incident_[static_cast<size_t>(b)].push_back(id);
    }
}

bool
UnionFindDecoder::decode(const std::vector<uint32_t> &fired_global) const
{
    const int nb = numNodes_; // boundary node id
    std::vector<uint8_t> defect(static_cast<size_t>(numNodes_) + 1, 0);
    int n_defects = 0;
    for (uint32_t g : fired_global) {
        const int l = local_of_[g];
        if (l >= 0) {
            defect[static_cast<size_t>(l)] ^= 1;
            ++n_defects;
        }
    }
    if (n_defects == 0)
        return false;

    // Union-find with cluster parity and boundary flags.
    std::vector<int> parent(static_cast<size_t>(numNodes_) + 1);
    std::iota(parent.begin(), parent.end(), 0);
    std::vector<uint8_t> parity(defect);
    std::vector<uint8_t> has_boundary(static_cast<size_t>(numNodes_) + 1, 0);
    has_boundary[static_cast<size_t>(nb)] = 1;
    std::function<int(int)> find = [&](int v) {
        while (parent[static_cast<size_t>(v)] != v) {
            parent[static_cast<size_t>(v)] =
                parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
            v = parent[static_cast<size_t>(v)];
        }
        return v;
    };

    std::vector<int> growth(edges_.size(), 0);
    std::vector<uint8_t> fused(edges_.size(), 0);
    std::vector<int> forest; // edges that performed a union (spanning)
    auto active = [&](int root) {
        return parity[static_cast<size_t>(root)] &&
               !has_boundary[static_cast<size_t>(root)];
    };

    bool any_active = true;
    int guard = 0;
    while (any_active) {
        SURF_ASSERT(++guard < 100000, "union-find growth failed to halt");
        any_active = false;
        // Grow every edge incident to an active cluster.
        for (size_t e = 0; e < edges_.size(); ++e) {
            if (fused[e])
                continue;
            const int ra = find(edges_[e].a), rb = find(edges_[e].b);
            if (ra == rb) {
                fused[e] = 1;
                continue;
            }
            int add = 0;
            if (active(ra))
                ++add;
            if (active(rb))
                ++add;
            if (add == 0)
                continue;
            growth[e] += add;
            if (growth[e] >= edges_[e].units) {
                fused[e] = 1;
                forest.push_back(static_cast<int>(e));
                // Union rb into ra.
                parent[static_cast<size_t>(rb)] = ra;
                parity[static_cast<size_t>(ra)] ^=
                    parity[static_cast<size_t>(rb)];
                has_boundary[static_cast<size_t>(ra)] |=
                    has_boundary[static_cast<size_t>(rb)];
            }
        }
        for (int v = 0; v <= numNodes_; ++v)
            if (find(v) == v && active(v)) {
                any_active = true;
                break;
            }
    }

    // Peeling over the spanning forest: include an edge iff the subtree
    // hanging off it has odd defect parity. Roots prefer the boundary.
    std::vector<std::vector<std::pair<int, int>>> tree(
        static_cast<size_t>(numNodes_) + 1); // node -> (edge, other)
    for (int e : forest) {
        tree[static_cast<size_t>(edges_[static_cast<size_t>(e)].a)]
            .push_back({e, edges_[static_cast<size_t>(e)].b});
        tree[static_cast<size_t>(edges_[static_cast<size_t>(e)].b)]
            .push_back({e, edges_[static_cast<size_t>(e)].a});
    }
    std::vector<uint8_t> visited(static_cast<size_t>(numNodes_) + 1, 0);
    bool obs = false;
    // Iterative post-order from each root; boundary first so boundary
    // clusters are rooted there.
    std::vector<int> order;
    std::vector<std::pair<int, int>> parent_edge(
        static_cast<size_t>(numNodes_) + 1, {-1, -1});
    auto bfs_from = [&](int root) {
        visited[static_cast<size_t>(root)] = 1;
        std::vector<int> queue{root};
        for (size_t h = 0; h < queue.size(); ++h) {
            const int v = queue[h];
            order.push_back(v);
            for (const auto &[e, to] : tree[static_cast<size_t>(v)]) {
                if (!visited[static_cast<size_t>(to)]) {
                    visited[static_cast<size_t>(to)] = 1;
                    parent_edge[static_cast<size_t>(to)] = {e, v};
                    queue.push_back(to);
                }
            }
        }
    };
    bfs_from(nb);
    for (int v = 0; v < numNodes_; ++v)
        if (!visited[static_cast<size_t>(v)] &&
            !tree[static_cast<size_t>(v)].empty())
            bfs_from(v);
    std::vector<uint8_t> sub(defect);
    for (size_t i = order.size(); i-- > 0;) {
        const int v = order[static_cast<size_t>(i)];
        const auto &[e, par] = parent_edge[static_cast<size_t>(v)];
        if (e < 0)
            continue;
        if (sub[static_cast<size_t>(v)]) {
            obs ^= edges_[static_cast<size_t>(e)].obs;
            sub[static_cast<size_t>(par)] ^= 1;
            sub[static_cast<size_t>(v)] = 0;
        }
    }
    return obs;
}

} // namespace surf
