/**
 * @file
 * End-to-end memory experiment harness: builds the syndrome circuit for a
 * patch, extracts the detector error model, Monte-Carlo samples detector
 * data with the frame simulator, decodes each shot, and estimates the
 * logical error rate (per shot and per round). This is the engine behind
 * the paper's figures 11(a), 13(a), 14(a) and 14(b).
 */

#ifndef SURF_DECODE_MEMORY_EXPERIMENT_HH
#define SURF_DECODE_MEMORY_EXPERIMENT_HH

#include "lattice/patch.hh"
#include "sim/syndrome_circuit.hh"

namespace surf {

/** Which decoder runs the shots. */
enum class DecoderKind : uint8_t
{
    Mwpm,      ///< exact minimum-weight perfect matching
    UnionFind, ///< union-find cluster decoder
    Auto,      ///< MWPM unless the shot's defect count exceeds the cap
};

/** Monte-Carlo configuration. */
struct MemoryExperimentConfig
{
    MemorySpec spec;
    NoiseParams noise;
    uint64_t maxShots = 200000;
    uint64_t targetFailures = 100; ///< stop early once reached
    uint64_t seed = 0x5eedULL;
    DecoderKind decoder = DecoderKind::Auto;
    size_t mwpmDefectCap = 120; ///< Auto: defect count above which UF runs
    size_t batchShots = 4096;
    /** Decode worker threads per batch; 0 = hardware concurrency. The
     *  result is bit-identical for any thread count: sampling stays
     *  serial per batch and every shot decodes independently, so the
     *  failure count is invariant under sharding. */
    size_t threads = 0;
    /** When false (paper-faithful default), the decoding graph is built
     *  from the defect-free error rates: an untreated defective code is
     *  decoded without knowledge of the elevated rates. Set true to give
     *  the decoder oracle knowledge of the defect locations (ablation). */
    bool decoderKnowsDefects = false;
};

/** Estimated logical performance. */
struct MemoryExperimentResult
{
    uint64_t shots = 0;
    uint64_t failures = 0;
    double pShot = 0.0;   ///< logical error probability per shot
    double pRound = 0.0;  ///< per-round rate (compounding-corrected)
    double se = 0.0;      ///< standard error of pShot
    size_t rounds = 0;
    size_t numDetectors = 0;
    size_t decomposedHyperedges = 0;
    double undetectableObsProb = 0.0;
};

/** Run the experiment for a (possibly deformed) patch. */
MemoryExperimentResult runMemoryExperiment(const CodePatch &patch,
                                           const MemoryExperimentConfig &cfg);

} // namespace surf

#endif // SURF_DECODE_MEMORY_EXPERIMENT_HH
