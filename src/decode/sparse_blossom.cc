#include "decode/sparse_blossom.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "decode/match_weights.hh"
#include "util/deadline.hh"
#include "util/logging.hh"

namespace surf {

namespace {

constexpr float kInfF = std::numeric_limits<float>::infinity();
constexpr double kInfD = std::numeric_limits<double>::infinity();

int64_t
quantize(float w)
{
    // Quantize the float-valued distance exactly like the matrix paths
    // do (their per-shot caches store float rows), so the total matched
    // weight is comparable bit-for-bit across backends.
    return quantizeMatchWeight(static_cast<double>(w));
}

/**
 * The sparse blossom solver: maximum-weight general matching on an
 * adjacency-list graph, primal-dual with alternating trees, blossom
 * contraction and expansion. The architecture follows the classic
 * multiple-tree formulation (Galil's survey; the well-known reference
 * implementation is van Rantwijk's): vertices 0..n-1, contracted
 * blossoms n..2n-1, labels S/T per top-level blossom, one shared scan
 * queue, and dual updates computed by a direct scan over the edge list
 * (matrix-free: every per-edge quantity is recomputed from the duals on
 * demand; nothing is ever stored per vertex pair).
 *
 * Weights are pre-transformed by the caller so that maximization solves
 * the minimum-weight perfect-matching instance. Called with integer
 * (internally doubled) weights, all duals and slacks stay integral.
 */
class SparseMatcher
{
  public:
    SparseMatcher(int n, size_t n_edges, SparseMatcherScratch &sc)
        : n_(n), m_(static_cast<int>(n_edges)), sc_(sc)
    {
        sc_.endpoint.resize(2 * n_edges);
        sc_.edgeW.resize(n_edges);
        sc_.label.assign(2 * static_cast<size_t>(n), 0);
        sc_.labelEnd.assign(2 * static_cast<size_t>(n), -1);
        sc_.inBlossom.resize(n);
        sc_.blossomParent.assign(2 * static_cast<size_t>(n), -1);
        sc_.blossomBase.resize(2 * static_cast<size_t>(n));
        if (sc_.blossomChilds.size() < 2 * static_cast<size_t>(n)) {
            sc_.blossomChilds.resize(2 * static_cast<size_t>(n));
            sc_.blossomEndps.resize(2 * static_cast<size_t>(n));
        }
        sc_.dual.assign(2 * static_cast<size_t>(n), 0);
        sc_.allowEdge.assign(n_edges, 0);
        sc_.unusedBlossoms.clear();
        for (int b = 2 * n - 1; b >= n; --b)
            sc_.unusedBlossoms.push_back(b);
        sc_.queue.clear();
        sc_.mate.assign(n, -1);
        for (int v = 0; v < n; ++v) {
            sc_.inBlossom[v] = v;
            sc_.blossomBase[v] = v;
        }
        for (int b = n; b < 2 * n; ++b)
            sc_.blossomBase[b] = -1;
    }

    /** Load edge e = (i, j, w); weights must be pre-transformed. */
    void
    setEdge(int e, int i, int j, int64_t w)
    {
        sc_.endpoint[2 * static_cast<size_t>(e)] = i;
        sc_.endpoint[2 * static_cast<size_t>(e) + 1] = j;
        sc_.edgeW[static_cast<size_t>(e)] = w;
    }

    /**
     * Run the solver. mate[v] afterwards holds the remote endpoint index
     * of v's matched edge (-1 = unmatched); edge index = mate[v] / 2.
     */
    void
    solve()
    {
        buildIncidence();
        // Greedy initialization (Blossom-V style): start each dual at
        // its vertex's maximum incident weight — feasible under the
        // slack convention y_u + y_v >= 2 w_uv, and tight exactly on
        // mutual-best edges — then pre-match those tight edges
        // outright. On burst clusters this matches most defects to an
        // immediate neighbour before the first alternating tree grows.
        for (int v = 0; v < n_; ++v)
            sc_.dual[static_cast<size_t>(v)] = 0;
        for (int e = 0; e < m_; ++e) {
            const int i = sc_.endpoint[2 * static_cast<size_t>(e)];
            const int j = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
            const int64_t we = sc_.edgeW[static_cast<size_t>(e)];
            sc_.dual[static_cast<size_t>(i)] =
                std::max(sc_.dual[static_cast<size_t>(i)], we);
            sc_.dual[static_cast<size_t>(j)] =
                std::max(sc_.dual[static_cast<size_t>(j)], we);
        }
        for (int e = 0; e < m_; ++e) {
            const int i = sc_.endpoint[2 * static_cast<size_t>(e)];
            const int j = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
            if (sc_.mate[static_cast<size_t>(i)] == -1 &&
                sc_.mate[static_cast<size_t>(j)] == -1 && slack(e) == 0) {
                sc_.mate[static_cast<size_t>(i)] = 2 * e + 1;
                sc_.mate[static_cast<size_t>(j)] = 2 * e;
            }
        }

        for (int stage = 0; stage < n_; ++stage) {
            std::fill(sc_.label.begin(),
                      sc_.label.begin() + 2 * static_cast<size_t>(n_), 0);
            std::fill(sc_.allowEdge.begin(),
                      sc_.allowEdge.begin() + static_cast<size_t>(m_), 0);
            sc_.queue.clear();
            for (int v = 0; v < n_; ++v)
                if (sc_.mate[static_cast<size_t>(v)] == -1 &&
                    label(inBlossom(v)) == 0)
                    assignLabel(v, 1, -1);
            bool augmented = false;
            for (;;) {
                while (!sc_.queue.empty() && !augmented) {
                    const int v = sc_.queue.back();
                    sc_.queue.pop_back();
                    SURF_ASSERT(label(inBlossom(v)) == 1);
                    const uint32_t b0 = sc_.neighOff[static_cast<size_t>(v)];
                    const uint32_t b1 =
                        sc_.neighOff[static_cast<size_t>(v) + 1];
                    for (uint32_t pi = b0; pi < b1; ++pi) {
                        const int p = sc_.neigh[pi];
                        const int e = p >> 1;
                        const int w = sc_.endpoint[static_cast<size_t>(p)];
                        if (inBlossom(v) == inBlossom(w))
                            continue;
                        if (!sc_.allowEdge[static_cast<size_t>(e)] &&
                            slack(e) <= 0)
                            sc_.allowEdge[static_cast<size_t>(e)] = 1;
                        if (!sc_.allowEdge[static_cast<size_t>(e)])
                            continue;
                        const int bw = inBlossom(w);
                        if (label(bw) == 0) {
                            assignLabel(w, 2, p ^ 1);
                        } else if (label(bw) == 1) {
                            const int base = scanBlossom(v, w);
                            if (base >= 0) {
                                addBlossom(base, e);
                            } else {
                                augmentMatching(e);
                                augmented = true;
                                break;
                            }
                        } else if (label(w) == 0) {
                            SURF_ASSERT(label(bw) == 2);
                            setLabel(w, 2);
                            sc_.labelEnd[static_cast<size_t>(w)] = p ^ 1;
                        }
                    }
                }
                if (augmented)
                    break;

                // Dual update: the minimum over (2) slack of S-to-free
                // edges, (3) half-slack of S-to-S edges across blossoms
                // and (4) duals of top-level T-blossoms, found by a
                // direct edge scan. No min-dual stop rule: the weights
                // are offset-transformed so maximum weight coincides
                // with maximum cardinality, and the stage simply ends
                // when no tree can grow any further (which also makes
                // the greedy non-uniform dual start valid).
                int deltatype = -1;
                int64_t delta = 0;
                int deltaedge = -1, deltablossom = -1;
                for (int e = 0; e < m_; ++e) {
                    const int i = sc_.endpoint[2 * static_cast<size_t>(e)];
                    const int j =
                        sc_.endpoint[2 * static_cast<size_t>(e) + 1];
                    const int bi = inBlossom(i), bj = inBlossom(j);
                    if (bi == bj)
                        continue;
                    const int li = label(bi), lj = label(bj);
                    if ((li == 1 && lj == 0) || (li == 0 && lj == 1)) {
                        const int64_t d = slack(e);
                        if (deltatype == -1 || d < delta) {
                            delta = d;
                            deltatype = 2;
                            deltaedge = e;
                        }
                    } else if (li == 1 && lj == 1) {
                        const int64_t d = slack(e) / 2;
                        if (deltatype == -1 || d < delta) {
                            delta = d;
                            deltatype = 3;
                            deltaedge = e;
                        }
                    }
                }
                for (int b = n_; b < 2 * n_; ++b) {
                    if (sc_.blossomBase[static_cast<size_t>(b)] >= 0 &&
                        sc_.blossomParent[static_cast<size_t>(b)] == -1 &&
                        label(b) == 2 &&
                        (deltatype == -1 ||
                         sc_.dual[static_cast<size_t>(b)] < delta)) {
                        delta = sc_.dual[static_cast<size_t>(b)];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }
                if (deltatype == -1)
                    break; // no growable structure: stage is optimal

                for (int v = 0; v < n_; ++v) {
                    const int l = label(inBlossom(v));
                    if (l == 1)
                        sc_.dual[static_cast<size_t>(v)] -= delta;
                    else if (l == 2)
                        sc_.dual[static_cast<size_t>(v)] += delta;
                }
                for (int b = n_; b < 2 * n_; ++b) {
                    if (sc_.blossomBase[static_cast<size_t>(b)] >= 0 &&
                        sc_.blossomParent[static_cast<size_t>(b)] == -1) {
                        if (label(b) == 1)
                            sc_.dual[static_cast<size_t>(b)] += delta;
                        else if (label(b) == 2)
                            sc_.dual[static_cast<size_t>(b)] -= delta;
                    }
                }

                if (deltatype == 2) {
                    sc_.allowEdge[static_cast<size_t>(deltaedge)] = 1;
                    int i = sc_.endpoint[2 * static_cast<size_t>(deltaedge)];
                    if (label(inBlossom(i)) == 0)
                        i = sc_.endpoint[2 * static_cast<size_t>(deltaedge) +
                                         1];
                    SURF_ASSERT(label(inBlossom(i)) == 1);
                    sc_.queue.push_back(i);
                } else if (deltatype == 3) {
                    sc_.allowEdge[static_cast<size_t>(deltaedge)] = 1;
                    const int i =
                        sc_.endpoint[2 * static_cast<size_t>(deltaedge)];
                    SURF_ASSERT(label(inBlossom(i)) == 1);
                    sc_.queue.push_back(i);
                } else {
                    expandBlossom(deltablossom, false);
                }
            }
            if (!augmented)
                break;
            // End of stage: expand S-blossoms whose dual fell to zero.
            for (int b = n_; b < 2 * n_; ++b)
                if (sc_.blossomParent[static_cast<size_t>(b)] == -1 &&
                    sc_.blossomBase[static_cast<size_t>(b)] >= 0 &&
                    label(b) == 1 && sc_.dual[static_cast<size_t>(b)] == 0)
                    expandBlossom(b, true);
        }
    }

  private:
    int n_, m_;
    SparseMatcherScratch &sc_;

    int label(int b) const { return sc_.label[static_cast<size_t>(b)]; }
    void setLabel(int b, int8_t l) { sc_.label[static_cast<size_t>(b)] = l; }
    int inBlossom(int v) const
    {
        return sc_.inBlossom[static_cast<size_t>(v)];
    }

    /** slack of edge e under the current duals (>= 0 on unmatched
     *  tight-tree edges; 0 = tight). */
    int64_t
    slack(int e) const
    {
        const int i = sc_.endpoint[2 * static_cast<size_t>(e)];
        const int j = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
        return sc_.dual[static_cast<size_t>(i)] +
               sc_.dual[static_cast<size_t>(j)] -
               2 * sc_.edgeW[static_cast<size_t>(e)];
    }

    void
    buildIncidence()
    {
        sc_.neighOff.assign(static_cast<size_t>(n_) + 1, 0);
        for (int e = 0; e < m_; ++e) {
            ++sc_.neighOff[static_cast<size_t>(
                               sc_.endpoint[2 * static_cast<size_t>(e)]) +
                           1];
            ++sc_.neighOff[static_cast<size_t>(
                               sc_.endpoint[2 * static_cast<size_t>(e) + 1]) +
                           1];
        }
        for (int v = 0; v < n_; ++v)
            sc_.neighOff[static_cast<size_t>(v) + 1] +=
                sc_.neighOff[static_cast<size_t>(v)];
        sc_.neigh.resize(2 * static_cast<size_t>(m_));
        auto &fill = sc_.fill;
        fill.assign(sc_.neighOff.begin(), sc_.neighOff.end() - 1);
        for (int e = 0; e < m_; ++e) {
            const int i = sc_.endpoint[2 * static_cast<size_t>(e)];
            const int j = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
            // The neighbour list of i holds the *remote* endpoint index.
            sc_.neigh[fill[static_cast<size_t>(i)]++] = 2 * e + 1;
            sc_.neigh[fill[static_cast<size_t>(j)]++] = 2 * e;
        }
    }

    /** Push every vertex inside blossom b onto the scan queue. */
    void
    queueLeaves(int b)
    {
        auto &stack = sc_.leafStack;
        stack.clear();
        stack.push_back(b);
        while (!stack.empty()) {
            const int x = stack.back();
            stack.pop_back();
            if (x < n_) {
                sc_.queue.push_back(x);
            } else {
                for (int t : sc_.blossomChilds[static_cast<size_t>(x)])
                    stack.push_back(t);
            }
        }
    }

    /** Visit every vertex inside blossom b. */
    template <typename F>
    void
    forLeaves(int b, F &&f)
    {
        auto &stack = sc_.leafStack;
        stack.clear();
        stack.push_back(b);
        while (!stack.empty()) {
            const int x = stack.back();
            stack.pop_back();
            if (x < n_) {
                f(x);
            } else {
                for (int t : sc_.blossomChilds[static_cast<size_t>(x)])
                    stack.push_back(t);
            }
        }
    }

    void
    assignLabel(int w, int8_t t, int p)
    {
        const int b = inBlossom(w);
        SURF_ASSERT(label(w) == 0 && label(b) == 0);
        setLabel(w, t);
        setLabel(b, t);
        sc_.labelEnd[static_cast<size_t>(w)] = p;
        sc_.labelEnd[static_cast<size_t>(b)] = p;
        if (t == 1) {
            queueLeaves(b);
        } else {
            const int base = sc_.blossomBase[static_cast<size_t>(b)];
            const int m = sc_.mate[static_cast<size_t>(base)];
            SURF_ASSERT(m >= 0);
            assignLabel(sc_.endpoint[static_cast<size_t>(m)], 1, m ^ 1);
        }
    }

    /** Trace back from v and w towards their tree roots; returns the
     *  base of the first common blossom (the LCA), or -1 when the paths
     *  reach two distinct roots (an augmenting path was found). */
    int
    scanBlossom(int v, int w)
    {
        auto &path = sc_.path;
        path.clear();
        int base = -1;
        while (v != -1 || w != -1) {
            int b = inBlossom(v);
            if (label(b) & 4) {
                base = sc_.blossomBase[static_cast<size_t>(b)];
                break;
            }
            SURF_ASSERT(label(b) == 1);
            path.push_back(b);
            setLabel(b, 5);
            SURF_ASSERT(
                sc_.labelEnd[static_cast<size_t>(b)] ==
                sc_.mate[static_cast<size_t>(
                    sc_.blossomBase[static_cast<size_t>(b)])]);
            if (sc_.labelEnd[static_cast<size_t>(b)] == -1) {
                v = -1; // reached a root
            } else {
                v = sc_.endpoint[static_cast<size_t>(
                    sc_.labelEnd[static_cast<size_t>(b)])];
                b = inBlossom(v);
                SURF_ASSERT(label(b) == 2);
                SURF_ASSERT(sc_.labelEnd[static_cast<size_t>(b)] >= 0);
                v = sc_.endpoint[static_cast<size_t>(
                    sc_.labelEnd[static_cast<size_t>(b)])];
            }
            if (w != -1)
                std::swap(v, w);
        }
        for (int b : path)
            setLabel(b, 1);
        return base;
    }

    /** Contract the odd cycle through edge e and base vertex `base`
     *  into a new blossom (region merging). */
    void
    addBlossom(int base, int e)
    {
        int v = sc_.endpoint[2 * static_cast<size_t>(e)];
        int w = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
        const int bb = inBlossom(base);
        int bv = inBlossom(v);
        int bw = inBlossom(w);
        SURF_ASSERT(!sc_.unusedBlossoms.empty());
        const int b = sc_.unusedBlossoms.back();
        sc_.unusedBlossoms.pop_back();
        sc_.blossomBase[static_cast<size_t>(b)] = base;
        sc_.blossomParent[static_cast<size_t>(b)] = -1;
        sc_.blossomParent[static_cast<size_t>(bb)] = b;
        auto &childs = sc_.blossomChilds[static_cast<size_t>(b)];
        auto &endps = sc_.blossomEndps[static_cast<size_t>(b)];
        childs.clear();
        endps.clear();
        while (bv != bb) {
            sc_.blossomParent[static_cast<size_t>(bv)] = b;
            childs.push_back(bv);
            endps.push_back(sc_.labelEnd[static_cast<size_t>(bv)]);
            SURF_ASSERT(sc_.labelEnd[static_cast<size_t>(bv)] >= 0);
            v = sc_.endpoint[static_cast<size_t>(
                sc_.labelEnd[static_cast<size_t>(bv)])];
            bv = inBlossom(v);
        }
        childs.push_back(bb);
        std::reverse(childs.begin(), childs.end());
        std::reverse(endps.begin(), endps.end());
        endps.push_back(2 * e);
        while (bw != bb) {
            sc_.blossomParent[static_cast<size_t>(bw)] = b;
            childs.push_back(bw);
            endps.push_back(sc_.labelEnd[static_cast<size_t>(bw)] ^ 1);
            SURF_ASSERT(sc_.labelEnd[static_cast<size_t>(bw)] >= 0);
            w = sc_.endpoint[static_cast<size_t>(
                sc_.labelEnd[static_cast<size_t>(bw)])];
            bw = inBlossom(w);
        }
        SURF_ASSERT(label(bb) == 1);
        setLabel(b, 1);
        sc_.labelEnd[static_cast<size_t>(b)] =
            sc_.labelEnd[static_cast<size_t>(bb)];
        sc_.dual[static_cast<size_t>(b)] = 0;
        forLeaves(b, [&](int x) {
            if (label(inBlossom(x)) == 2)
                sc_.queue.push_back(x);
            sc_.inBlossom[static_cast<size_t>(x)] = b;
        });
    }

    /** Python-style cyclic indexing into a blossom's child list. */
    static int
    cyc(const std::vector<int> &v, int j)
    {
        const int len = static_cast<int>(v.size());
        return v[static_cast<size_t>(((j % len) + len) % len)];
    }

    /** Dissolve blossom b back into its children. Mid-stage (a T-blossom
     *  whose dual reached zero) the even alternating path from the entry
     *  child to the base keeps T/S labels; other children become free. */
    void
    expandBlossom(int b, bool endstage)
    {
        auto &childs = sc_.blossomChilds[static_cast<size_t>(b)];
        auto &endps = sc_.blossomEndps[static_cast<size_t>(b)];
        for (int s : childs) {
            sc_.blossomParent[static_cast<size_t>(s)] = -1;
            if (s < n_) {
                sc_.inBlossom[static_cast<size_t>(s)] = s;
            } else if (endstage && sc_.dual[static_cast<size_t>(s)] == 0) {
                expandBlossom(s, endstage);
            } else {
                forLeaves(s, [&](int x) {
                    sc_.inBlossom[static_cast<size_t>(x)] = s;
                });
            }
        }
        if (!endstage && label(b) == 2) {
            const int entry_v = sc_.endpoint[static_cast<size_t>(
                sc_.labelEnd[static_cast<size_t>(b)] ^ 1)];
            const int entrychild = inBlossom(entry_v);
            int j = static_cast<int>(
                std::find(childs.begin(), childs.end(), entrychild) -
                childs.begin());
            int jstep, endptrick;
            if (j & 1) {
                j -= static_cast<int>(childs.size());
                jstep = 1;
                endptrick = 0;
            } else {
                jstep = -1;
                endptrick = 1;
            }
            int p = sc_.labelEnd[static_cast<size_t>(b)];
            while (j != 0) {
                // Relabel the T-sub-blossom.
                const int q = cyc(endps, j - endptrick) ^ endptrick;
                setLabel(sc_.endpoint[static_cast<size_t>(p ^ 1)], 0);
                setLabel(sc_.endpoint[static_cast<size_t>(q ^ 1)], 0);
                assignLabel(sc_.endpoint[static_cast<size_t>(p ^ 1)], 2, p);
                sc_.allowEdge[static_cast<size_t>(q >> 1)] = 1;
                j += jstep;
                p = cyc(endps, j - endptrick) ^ endptrick;
                sc_.allowEdge[static_cast<size_t>(p >> 1)] = 1;
                j += jstep;
            }
            // Relabel the base T-sub-blossom without stepping through to
            // its mate (so the label chain is kept consistent).
            const int bv = cyc(childs, j);
            setLabel(sc_.endpoint[static_cast<size_t>(p ^ 1)], 2);
            setLabel(bv, 2);
            sc_.labelEnd[static_cast<size_t>(
                sc_.endpoint[static_cast<size_t>(p ^ 1)])] = p;
            sc_.labelEnd[static_cast<size_t>(bv)] = p;
            // Continue along the blossom until we get back to entrychild;
            // leave the remaining sub-blossoms unlabelled (any that carry
            // a vertex-level T label get properly relabelled).
            j += jstep;
            while (cyc(childs, j) != entrychild) {
                const int bx = cyc(childs, j);
                if (label(bx) == 1) {
                    j += jstep;
                    continue;
                }
                int labelled_v = -1;
                forLeaves(bx, [&](int x) {
                    if (labelled_v == -1 && label(x) != 0)
                        labelled_v = x;
                });
                if (labelled_v >= 0) {
                    SURF_ASSERT(label(labelled_v) == 2);
                    SURF_ASSERT(inBlossom(labelled_v) == bx);
                    setLabel(labelled_v, 0);
                    setLabel(sc_.endpoint[static_cast<size_t>(
                                 sc_.mate[static_cast<size_t>(
                                     sc_.blossomBase[static_cast<size_t>(
                                         bx)])])],
                             0);
                    assignLabel(labelled_v, 2,
                                sc_.labelEnd[static_cast<size_t>(
                                    labelled_v)]);
                }
                j += jstep;
            }
        }
        setLabel(b, -1);
        sc_.labelEnd[static_cast<size_t>(b)] = -1;
        sc_.blossomBase[static_cast<size_t>(b)] = -1;
        childs.clear();
        endps.clear();
        sc_.unusedBlossoms.push_back(b);
    }

    /** Swap matched/unmatched edges around blossom b so that vertex v
     *  becomes its base. */
    void
    augmentBlossom(int b, int v)
    {
        int t = v;
        while (sc_.blossomParent[static_cast<size_t>(t)] != b)
            t = sc_.blossomParent[static_cast<size_t>(t)];
        if (t >= n_)
            augmentBlossom(t, v);
        auto &childs = sc_.blossomChilds[static_cast<size_t>(b)];
        auto &endps = sc_.blossomEndps[static_cast<size_t>(b)];
        const int i = static_cast<int>(
            std::find(childs.begin(), childs.end(), t) - childs.begin());
        int j = i;
        int jstep, endptrick;
        if (i & 1) {
            j -= static_cast<int>(childs.size());
            jstep = 1;
            endptrick = 0;
        } else {
            jstep = -1;
            endptrick = 1;
        }
        while (j != 0) {
            j += jstep;
            int tc = cyc(childs, j);
            const int p = cyc(endps, j - endptrick) ^ endptrick;
            if (tc >= n_)
                augmentBlossom(tc, sc_.endpoint[static_cast<size_t>(p)]);
            j += jstep;
            tc = cyc(childs, j);
            if (tc >= n_)
                augmentBlossom(tc,
                               sc_.endpoint[static_cast<size_t>(p ^ 1)]);
            sc_.mate[static_cast<size_t>(
                sc_.endpoint[static_cast<size_t>(p)])] = p ^ 1;
            sc_.mate[static_cast<size_t>(
                sc_.endpoint[static_cast<size_t>(p ^ 1)])] = p;
        }
        std::rotate(childs.begin(), childs.begin() + i, childs.end());
        std::rotate(endps.begin(), endps.begin() + i, endps.end());
        sc_.blossomBase[static_cast<size_t>(b)] =
            sc_.blossomBase[static_cast<size_t>(childs[0])];
        SURF_ASSERT(sc_.blossomBase[static_cast<size_t>(b)] == v);
    }

    /** Augment the matching along the path through tight edge e. */
    void
    augmentMatching(int e)
    {
        const int ev = sc_.endpoint[2 * static_cast<size_t>(e)];
        const int ew = sc_.endpoint[2 * static_cast<size_t>(e) + 1];
        for (const auto &[sv, sp] :
             {std::pair<int, int>{ev, 2 * e + 1},
              std::pair<int, int>{ew, 2 * e}}) {
            int s = sv;
            int p = sp;
            for (;;) {
                const int bs = inBlossom(s);
                SURF_ASSERT(label(bs) == 1);
                SURF_ASSERT(
                    sc_.labelEnd[static_cast<size_t>(bs)] ==
                    sc_.mate[static_cast<size_t>(
                        sc_.blossomBase[static_cast<size_t>(bs)])]);
                if (bs >= n_)
                    augmentBlossom(bs, s);
                sc_.mate[static_cast<size_t>(s)] = p;
                if (sc_.labelEnd[static_cast<size_t>(bs)] == -1)
                    break; // reached a root
                const int t = sc_.endpoint[static_cast<size_t>(
                    sc_.labelEnd[static_cast<size_t>(bs)])];
                const int bt = inBlossom(t);
                SURF_ASSERT(label(bt) == 2);
                SURF_ASSERT(sc_.labelEnd[static_cast<size_t>(bt)] >= 0);
                s = sc_.endpoint[static_cast<size_t>(
                    sc_.labelEnd[static_cast<size_t>(bt)])];
                const int jv = sc_.endpoint[static_cast<size_t>(
                    sc_.labelEnd[static_cast<size_t>(bt)] ^ 1)];
                SURF_ASSERT(sc_.blossomBase[static_cast<size_t>(bt)] == t);
                if (bt >= n_)
                    augmentBlossom(bt, jv);
                sc_.mate[static_cast<size_t>(jv)] =
                    sc_.labelEnd[static_cast<size_t>(bt)];
                p = sc_.labelEnd[static_cast<size_t>(bt)] ^ 1;
            }
        }
    }
};

} // namespace

bool
sparseMinWeightPerfectMatching(int n,
                               const std::vector<SparseMatchEdge> &edges,
                               SparseMatcherScratch &scratch,
                               std::vector<int> &mate, int64_t *totalWeight)
{
    mate.assign(static_cast<size_t>(n), -1);
    if (totalWeight)
        *totalWeight = 0;
    if (n == 0)
        return true;
    if (n % 2 != 0)
        return false;

    // Transform minimization into maximization: w' = offset - w with an
    // offset large enough that higher-cardinality matchings always win,
    // then doubled so every dual quantity stays integral.
    int64_t max_w = 1;
    for (const SparseMatchEdge &e : edges)
        max_w = std::max(max_w, e.w);
    const int64_t offset = max_w * (n / 2 + 1) + 1;
    scratch.lastOffset = offset;
    SparseMatcher matcher(n, edges.size(), scratch);
    for (size_t e = 0; e < edges.size(); ++e) {
        SURF_ASSERT(edges[e].a != edges[e].b && edges[e].a >= 0 &&
                        edges[e].b >= 0 && edges[e].a < n &&
                        edges[e].b < n && edges[e].w >= 0,
                    "malformed sparse matching edge");
        matcher.setEdge(static_cast<int>(e), edges[e].a, edges[e].b,
                        2 * (offset - edges[e].w));
    }
    matcher.solve();

    int64_t total = 0;
    for (int v = 0; v < n; ++v) {
        const int p = scratch.mate[static_cast<size_t>(v)];
        if (p < 0) {
            mate.assign(static_cast<size_t>(n), -1);
            return false;
        }
        const int partner = scratch.endpoint[static_cast<size_t>(p)];
        mate[static_cast<size_t>(v)] = partner;
        if (partner > v)
            total += edges[static_cast<size_t>(p >> 1)].w;
    }
    if (totalWeight)
        *totalWeight = total;
    return true;
}

namespace {

/** Key of an unordered defect-slot pair in the candidate hash. */
uint64_t
pairKey(int a, int b)
{
    const auto lo = static_cast<uint64_t>(a < b ? a : b);
    const auto hi = static_cast<uint64_t>(a < b ? b : a);
    return (lo << 32 | hi) + 1; // +1 so key 0 can mark empty slots
}

uint64_t
hashKey(uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return k;
}

/** Double the candidate hash and reinsert every live entry. */
void
growCandTable(SparseBlossomScratch &sc)
{
    std::vector<SparseBlossomScratch::Cand> old;
    old.swap(sc.candTable);
    sc.candTable.assign(2 * old.size(), {});
    sc.candSlots.clear();
    const size_t mask = sc.candTable.size() - 1;
    for (const auto &c : old) {
        if (c.key == 0)
            continue;
        size_t slot = hashKey(c.key) & mask;
        while (sc.candTable[slot].key != 0)
            slot = (slot + 1) & mask;
        sc.candTable[slot] = c;
        sc.candSlots.push_back(static_cast<uint32_t>(slot));
    }
}

/** Record a candidate pair edge, keeping the best (weight, witness
 *  rank) per pair. Rank prefers the same witnesses the dense tables
 *  store: a ball landing exactly on the lower-id defect's row wins over
 *  the higher-id one, which wins over frontier-crossing candidates. */
void
addCandidate(SparseBlossomScratch &sc, int a, int b, double w, uint8_t par,
             uint8_t rank)
{
    if (4 * (sc.candSlots.size() + 1) > 3 * sc.candTable.size())
        growCandTable(sc);
    const uint64_t key = pairKey(a, b);
    const auto wf = static_cast<float>(w);
    const size_t mask = sc.candTable.size() - 1;
    size_t slot = hashKey(key) & mask;
    for (;;) {
        auto &c = sc.candTable[slot];
        if (c.key == 0) {
            c = {key, wf, par, rank};
            sc.candSlots.push_back(static_cast<uint32_t>(slot));
            return;
        }
        if (c.key == key) {
            if (wf < c.w || (wf == c.w && rank < c.rank)) {
                c.w = wf;
                c.par = par;
                c.rank = rank;
            }
            return;
        }
        slot = (slot + 1) & mask;
    }
}

const SparseBlossomScratch::Cand *
findCandidate(const SparseBlossomScratch &sc, int a, int b)
{
    const uint64_t key = pairKey(a, b);
    const size_t mask = sc.candTable.size() - 1;
    size_t slot = hashKey(key) & mask;
    for (;;) {
        const auto &c = sc.candTable[slot];
        if (c.key == 0)
            return nullptr;
        if (c.key == key)
            return &c;
        slot = (slot + 1) & mask;
    }
}

} // namespace

bool
sparseBlossomDecode(const DecodingGraph &graph,
                    const std::vector<int> &defects,
                    SparseBlossomScratch &sc, int64_t *totalWeight,
                    const DecodeDeadline *deadline, bool *timedOut)
{
    const int k = static_cast<int>(defects.size());
    if (totalWeight)
        *totalWeight = 0;
    if (timedOut)
        *timedOut = false;
    if (k == 0)
        return false;
    auto outOfTime = [&] {
        if (deadline == nullptr || !deadline->expired())
            return false;
        if (timedOut)
            *timedOut = true;
        return true;
    };
    if (outOfTime())
        return false;
    const size_t n_nodes = graph.numNodes() + 1;
    const int bnode = graph.boundaryNode();
    const auto &csr_off = graph.csrOffsets();
    const auto &csr_to = graph.csrTargets();
    const auto &csr_w = graph.csrWeights();
    const auto &csr_obs = graph.csrObsFlips();

    // --- Multi-source ball growth (discovery) -------------------------
    // One shared heap, globally increasing distance; each fired defect
    // owns a ball with a certified radius cap (ballCap). Pops beyond a
    // ball's cap are deferred, not dropped, so the search resumes
    // exactly where it stopped when a cap is raised. Ball fronts
    // colliding at shared nodes or across single CSR edges emit
    // candidate pair edges; the best per pair lives in a small hash,
    // never a k x k matrix.
    //
    // Caps: for k <= 2 a ball grows until its boundary settles (the
    // proven exact closed-form regime). For k >= 3 growth is adaptive:
    // balls start with a few settled nodes each, the sparse blossom
    // solves the discovered instance, and its dual variables certify
    // optimality — a defect's (symmetrized, min-instance) dual Y_t
    // bounds how far an undiscovered edge could still matter, so
    // Y_t <= radius(t) for every defect proves no absent pair or
    // boundary edge can improve the matching. Failing balls grow to
    // their dual bound and the loop repeats; typical bursts certify in
    // one or two rounds with balls a few edges wide, instead of growing
    // every ball out to its boundary distance.
    if (sc.coverHead.size() < n_nodes) {
        sc.coverHead.resize(n_nodes);
        sc.coverGen.resize(n_nodes, 0);
    }
    if (++sc.coverCur == 0) {
        std::fill(sc.coverGen.begin(), sc.coverGen.end(), 0);
        sc.coverCur = 1;
    }
    const uint32_t gen = sc.coverCur;
    auto headOf = [&](size_t node) -> int {
        return sc.coverGen[node] == gen ? sc.coverHead[node] : -1;
    };
    sc.coverPool.clear();
    sc.heap.clear();
    sc.deferred.clear();
    sc.ballCap.assign(static_cast<size_t>(k), kInfD);
    sc.ballSettled.assign(static_cast<size_t>(k), 0);
    sc.ballLive.assign(static_cast<size_t>(k), 1);
    sc.bDist.assign(static_cast<size_t>(k), kInfF);
    sc.bPar.assign(static_cast<size_t>(k), 0);
    // Candidate hash: wipe the slots the previous shot used (the table
    // is empty between shots), then make sure it starts large enough.
    for (uint32_t slot : sc.candSlots)
        sc.candTable[static_cast<size_t>(slot)] = {};
    sc.candSlots.clear();
    {
        size_t want = 64;
        while (want < 8 * static_cast<size_t>(k))
            want <<= 1;
        if (sc.candTable.size() < want)
            sc.candTable.assign(want, {});
    }

    const bool closed_form = k <= 2;
    /** Initial per-ball settle budget of the adaptive regime: enough to
     *  reach the immediate neighbourhood (cluster fellows), cheap when
     *  the certificate then demands more. */
    constexpr int kInitialSettles = 2;
    /** Growth rounds before forcing fully exact coverage (safety; the
     *  1.5x-or-dual-bound growth reaches any radius long before). */
    constexpr int kMaxRounds = 24;

    const auto by_dist = std::greater<SparseBlossomScratch::HeapItem>();
    // Slot lookup for landing candidates: defects are sorted ascending.
    auto slotOfNode = [&](int node) -> int {
        const auto it =
            std::lower_bound(defects.begin(), defects.end(), node);
        return (it != defects.end() && *it == node)
                   ? static_cast<int>(it - defects.begin())
                   : -1;
    };
    auto coverOf = [&](size_t node, int defect)
        -> SparseBlossomScratch::Cover * {
        for (int c = headOf(node); c >= 0;
             c = sc.coverPool[static_cast<size_t>(c)].next) {
            if (sc.coverPool[static_cast<size_t>(c)].defect == defect)
                return &sc.coverPool[static_cast<size_t>(c)];
        }
        return nullptr;
    };
    auto addCover = [&](size_t node, int defect, double dist, uint8_t par) {
        const int idx = static_cast<int>(sc.coverPool.size());
        sc.coverPool.push_back({defect, headOf(node), dist, par, 0});
        sc.coverHead[node] = idx;
        sc.coverGen[node] = gen;
    };

    for (int t = 0; t < k; ++t) {
        addCover(static_cast<size_t>(defects[static_cast<size_t>(t)]), t,
                 0.0, 0);
        sc.heap.push_back({0.0, defects[static_cast<size_t>(t)], t});
    }
    std::make_heap(sc.heap.begin(), sc.heap.end(), by_dist);

    // Settle everything within the current caps; park the rest.
    auto drain = [&] {
        while (!sc.heap.empty()) {
            std::pop_heap(sc.heap.begin(), sc.heap.end(), by_dist);
            const auto item = sc.heap.back();
            sc.heap.pop_back();
            const auto [dv, node, defect] = item;
            if (dv > sc.ballCap[static_cast<size_t>(defect)]) {
                sc.deferred.push_back(item); // resumes if the cap grows
                continue;
            }
            const auto ni = static_cast<size_t>(node);
            SparseBlossomScratch::Cover *me = coverOf(ni, defect);
            SURF_ASSERT(me != nullptr);
            if (me->settled || dv > me->dist)
                continue; // stale heap entry
            me->settled = 1;
            const double d = me->dist;
            const uint8_t par = me->par;
            const int settled = ++sc.ballSettled[static_cast<size_t>(defect)];

            if (node == bnode) {
                sc.bDist[static_cast<size_t>(defect)] =
                    static_cast<float>(d);
                sc.bPar[static_cast<size_t>(defect)] = par;
                if (closed_form)
                    sc.ballCap[static_cast<size_t>(defect)] =
                        d + kWeightTieMargin;
            } else if (!closed_form && settled >= kInitialSettles &&
                       sc.ballCap[static_cast<size_t>(defect)] == kInfD) {
                // Initial sizing: stop after the local neighbourhood;
                // the certificate loop grows whatever proves too small.
                sc.ballCap[static_cast<size_t>(defect)] = d;
            }
            // Landing on another fired defect's node: the witness is
            // the same Dijkstra the row builder would run, so distance
            // and parity are bit-identical to the table entry.
            if (const int s2 = slotOfNode(node); s2 >= 0 && s2 != defect)
                addCandidate(sc, defect, s2, d, par, defect < s2 ? 0 : 1);
            // Collisions with balls already settled at this node. Both
            // legs are settles, hence within their balls' caps, so
            // every candidate recorded here is within reach of the
            // instance-build filter (radiusOf) — which is where
            // beyond-range pairs are actually dropped.
            for (int c = headOf(ni); c >= 0;
                 c = sc.coverPool[static_cast<size_t>(c)].next) {
                const auto &o = sc.coverPool[static_cast<size_t>(c)];
                if (o.settled && o.defect != defect)
                    addCandidate(sc, defect, o.defect, d + o.dist,
                                 par ^ o.par, 2);
            }
            const uint32_t b0 = csr_off[ni], b1 = csr_off[ni + 1];
            for (uint32_t i = b0; i < b1; ++i) {
                const auto to = static_cast<size_t>(csr_to[i]);
                const double nd = d + csr_w[i];
                // Crossing collisions: my front reaches across this
                // edge into nodes other balls have settled.
                for (int c = headOf(to); c >= 0;
                     c = sc.coverPool[static_cast<size_t>(c)].next) {
                    const auto &o = sc.coverPool[static_cast<size_t>(c)];
                    if (o.settled && o.defect != defect)
                        addCandidate(sc, defect, o.defect, nd + o.dist,
                                     par ^ csr_obs[i] ^ o.par, 2);
                }
                SparseBlossomScratch::Cover *cv = coverOf(to, defect);
                if (!cv) {
                    addCover(to, defect, nd, par ^ csr_obs[i]);
                    sc.heap.push_back({nd, csr_to[i], defect});
                    std::push_heap(sc.heap.begin(), sc.heap.end(),
                                   by_dist);
                } else if (!cv->settled && nd < cv->dist - 1e-12) {
                    cv->dist = nd;
                    cv->par = par ^ csr_obs[i];
                    sc.heap.push_back({nd, csr_to[i], defect});
                    std::push_heap(sc.heap.begin(), sc.heap.end(),
                                   by_dist);
                }
            }
        }
    };
    // Resume a parked frontier after caps changed.
    auto resume = [&] {
        sc.heap.swap(sc.deferred);
        sc.deferred.clear();
        std::make_heap(sc.heap.begin(), sc.heap.end(), by_dist);
    };

    const auto bd = [&](int t) {
        return static_cast<double>(sc.bDist[static_cast<size_t>(t)]);
    };

    // --- Closed forms for the common low-weight syndromes, identical
    // decisions to the matrix paths (same float values, same compares).
    if (closed_form) {
        drain();
        if (k == 1) {
            if (totalWeight && std::isfinite(bd(0)))
                *totalWeight = quantize(sc.bDist[0]);
            return sc.bPar[0] != 0;
        }
        const SparseBlossomScratch::Cand *c01 = findCandidate(sc, 0, 1);
        const double pair_w = c01 ? static_cast<double>(c01->w) : kInfD;
        const double bdry_w = bd(0) + bd(1);
        if (pair_w <= bdry_w) {
            if (!std::isfinite(pair_w))
                return false;
            if (totalWeight)
                *totalWeight = quantize(c01->w);
            return c01->par != 0;
        }
        if (totalWeight)
            *totalWeight = quantize(sc.bDist[0]) + quantize(sc.bDist[1]);
        return (sc.bPar[0] ^ sc.bPar[1]) != 0;
    }

    // --- Adaptive growth + mirror reduction + sparse blossom ----------
    // Nodes 0..k-1 are the defects, k..2k-1 their mirrors. Pair edges
    // appear in both copies at the discovered weight; each defect joins
    // its own mirror at twice its boundary cost. A minimum perfect
    // matching restricted to the first copy is exactly an optimal
    // pair-or-boundary assignment (both copies cost the optimum, so the
    // doubled total is twice the matching weight dense blossom reports).
    bool solved = false;
    for (int round = 0; !solved; ++round) {
        // Cooperative deadline poll between growth/certificate rounds:
        // each round is a bounded chunk of work (drain to current caps +
        // one sparse matching), so an expired budget is noticed within
        // one round and the partially grown state is simply abandoned
        // (the scratch resets per shot).
        if (round > 0 && outOfTime())
            return false;
        const bool exact_round = round >= kMaxRounds;
        if (exact_round)
            // Safety net: fully exact coverage (every ball explores its
            // whole component; equivalent to the dense instance).
            std::fill(sc.ballCap.begin(), sc.ballCap.end(), kInfD);
        drain();
        // A ball is live while parked frontier remains; an exhausted
        // ball has settled its entire component, so nothing involving
        // it is undiscovered and no certificate is needed for it.
        std::fill(sc.ballLive.begin(), sc.ballLive.end(), 0);
        for (const auto &item : sc.deferred)
            sc.ballLive[static_cast<size_t>(item.defect)] = 1;
        const auto radiusOf = [&](int t) {
            return sc.ballLive[static_cast<size_t>(t)]
                       ? sc.ballCap[static_cast<size_t>(t)]
                       : kInfD;
        };

        // Build the doubled instance from provably exact candidates: a
        // stored pair weight within radius(a) + radius(b) is the true
        // shortest-path distance (the two balls jointly cover the path);
        // anything farther is dropped and left to the certificate.
        sc.edges.clear();
        for (uint32_t slot : sc.candSlots) {
            const auto &c = sc.candTable[static_cast<size_t>(slot)];
            const int a = static_cast<int>((c.key - 1) >> 32);
            const int b = static_cast<int>((c.key - 1) & 0xffffffffu);
            if (static_cast<double>(c.w) > radiusOf(a) + radiusOf(b))
                continue;
            // Perturbed weights (same node-id tie-break hash the matrix
            // paths bake into their k x k entries), so every backend
            // picks the same optimum even among equal-weight matchings.
            const int64_t pw = perturbedMatchWeight(
                static_cast<double>(c.w), defects[static_cast<size_t>(a)],
                defects[static_cast<size_t>(b)]);
            sc.edges.push_back({a, b, pw});
            sc.edges.push_back({k + a, k + b, pw});
        }
        for (int t = 0; t < k; ++t)
            if (std::isfinite(bd(t)))
                sc.edges.push_back(
                    {t, k + t,
                     2 * perturbedMatchWeight(
                             static_cast<double>(
                                 sc.bDist[static_cast<size_t>(t)]),
                             defects[static_cast<size_t>(t)], bnode)});

        const bool perfect = sparseMinWeightPerfectMatching(
            2 * k, sc.edges, sc.matcher, sc.mate, nullptr);
        if (!perfect) {
            // Not matchable yet: boundaries unreached or clusters still
            // split. Grow every ball that still has frontier; if none
            // does, the instance is final and genuinely has no perfect
            // matching (the matrix paths' all-boundary fallback).
            bool grew = false;
            for (int t = 0; t < k; ++t)
                if (sc.ballLive[static_cast<size_t>(t)]) {
                    auto &cap = sc.ballCap[static_cast<size_t>(t)];
                    cap = (cap == kInfD) ? kInfD
                                         : std::max(2.0 * cap,
                                                    cap + 8.0 / 1024.0);
                    grew = true;
                }
            if (!grew) {
                bool obs = false;
                int64_t total = 0;
                for (int t = 0; t < k; ++t) {
                    obs ^= sc.bPar[static_cast<size_t>(t)] != 0;
                    if (std::isfinite(bd(t)))
                        total += quantize(sc.bDist[static_cast<size_t>(t)]);
                }
                if (totalWeight)
                    *totalWeight = total;
                return obs;
            }
            resume();
            continue;
        }
        if (exact_round)
            break; // fully exact coverage: no certificate needed

        // Dual certificate: the absent-edge constraint y'_u + y'_v >=
        // 4*(offset - w) holds for every undiscovered pair/boundary if
        // each defect's symmetrized min-instance dual
        //   Y_t = (4*offset - y'_t - y'_{t+k}) / 8
        // stays within the ball's certified radius (one quantization
        // step of slack absorbs the rounding at the rim). Exhausted
        // balls pass vacuously.
        const int64_t offset = sc.matcher.lastOffset;
        bool all_pass = true, grew = false;
        for (int t = 0; t < k; ++t) {
            if (!sc.ballLive[static_cast<size_t>(t)])
                continue;
            const int64_t ys =
                sc.matcher.dual[static_cast<size_t>(t)] +
                sc.matcher.dual[static_cast<size_t>(k + t)];
            const int64_t y8 = 4 * offset - ys; // 8 * Y_t, perturbed scale
            const double cap = sc.ballCap[static_cast<size_t>(t)];
            const int64_t threshold = (quantizeMatchWeight(cap) - 1)
                                      << kMatchTieBits;
            if (8 * threshold >= y8)
                continue;
            all_pass = false;
            // Grow to the dual bound (plus slack), at least 1.5x.
            const double need =
                static_cast<double>(y8) /
                    (8.0 * (INT64_C(1) << kMatchTieBits) *
                     kMatchWeightScale) +
                4.0 * kWeightTieMargin;
            sc.ballCap[static_cast<size_t>(t)] =
                std::max(need, 1.5 * cap);
            grew = true;
        }
        if (all_pass || !grew)
            solved = true; // certified optimal (or nothing left to grow)
        else
            resume();
    }

    bool obs = false;
    int64_t total = 0;
    for (int t = 0; t < k; ++t) {
        const int m = sc.mate[static_cast<size_t>(t)];
        if (m == k + t) {
            obs ^= sc.bPar[static_cast<size_t>(t)] != 0;
            total += quantize(sc.bDist[static_cast<size_t>(t)]);
        } else if (m > t && m < k) {
            const SparseBlossomScratch::Cand *c = findCandidate(sc, t, m);
            SURF_ASSERT(c != nullptr);
            obs ^= c->par != 0;
            total += quantize(c->w);
        }
    }
    if (totalWeight)
        *totalWeight = total;
    return obs;
}

} // namespace surf
