#include "decode/mwpm.hh"

#include <cmath>

#include "decode/blossom.hh"
#include "util/logging.hh"

namespace surf {

bool
MwpmDecoder::decode(const uint32_t *fired, size_t n_fired,
                    MwpmScratch &scratch) const
{
    auto &defects = scratch.defects;
    defects.clear();
    for (size_t i = 0; i < n_fired; ++i) {
        const int l = graph_.localOf(fired[i]);
        if (l >= 0)
            defects.push_back(l);
    }
    const int k = static_cast<int>(defects.size());
    if (k == 0)
        return false;
    const int bnode = graph_.boundaryNode();

    // Closed-form fast paths for the overwhelmingly common low-weight
    // syndromes — no blossom workspace needed. k = 1: the only perfect
    // matching pairs the defect with its boundary copy. k = 2: either
    // both defects match each other (their virtuals pair for free) or
    // each goes to the boundary; pick the lighter total.
    if (k == 1)
        return graph_.obsParity(defects[0], bnode);
    if (k == 2) {
        const double pair_w = graph_.dist(defects[0], defects[1]);
        const double bdry_w =
            graph_.dist(defects[0], bnode) + graph_.dist(defects[1], bnode);
        if (pair_w <= bdry_w)
            return std::isfinite(pair_w)
                       ? graph_.obsParity(defects[0], defects[1])
                       : false;
        return graph_.obsParity(defects[0], bnode) ^
               graph_.obsParity(defects[1], bnode);
    }

    // Complete graph on defects plus one virtual boundary copy each:
    // defect i <-> defect j at path distance, defect i <-> its own virtual
    // at boundary distance, virtual <-> virtual free.
    const int n = 2 * k;
    constexpr double kScale = 1024.0;
    auto &w = scratch.weights;
    w.assign(static_cast<size_t>(n) * n, kMatchForbidden);
    auto at = [&](int a, int b) -> int64_t & {
        return w[static_cast<size_t>(a) * n + b];
    };
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
            const double d = graph_.dist(defects[static_cast<size_t>(i)],
                                         defects[static_cast<size_t>(j)]);
            if (std::isfinite(d)) {
                const auto iw = static_cast<int64_t>(std::llround(d * kScale));
                at(i, j) = iw;
                at(j, i) = iw;
            }
        }
        const double db =
            graph_.dist(defects[static_cast<size_t>(i)], bnode);
        if (std::isfinite(db)) {
            const auto iw = static_cast<int64_t>(std::llround(db * kScale));
            at(i, k + i) = iw;
            at(k + i, i) = iw;
        }
        for (int j = 0; j < k; ++j)
            if (j != i) {
                at(k + i, k + j) = 0;
                at(k + j, k + i) = 0;
            }
    }
    const auto mate = minWeightPerfectMatching(n, w);
    bool obs = false;
    if (mate.empty()) {
        // No perfect matching (disconnected leftovers): fall back to
        // matching every defect to the boundary.
        for (int i = 0; i < k; ++i)
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
        return obs;
    }
    for (int i = 0; i < k; ++i) {
        const int m = mate[static_cast<size_t>(i)];
        if (m < k) {
            if (m > i)
                obs ^= graph_.obsParity(defects[static_cast<size_t>(i)],
                                        defects[static_cast<size_t>(m)]);
        } else {
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
        }
    }
    return obs;
}

} // namespace surf
