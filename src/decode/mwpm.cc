#include "decode/mwpm.hh"

#include <cmath>

#include "decode/blossom.hh"
#include "util/logging.hh"

namespace surf {

bool
MwpmDecoder::decode(const std::vector<uint32_t> &fired_global) const
{
    std::vector<int> defects;
    for (uint32_t g : fired_global) {
        const int l = graph_.localOf(g);
        if (l >= 0)
            defects.push_back(l);
    }
    const int k = static_cast<int>(defects.size());
    if (k == 0)
        return false;
    const int bnode = graph_.boundaryNode();

    // Complete graph on defects plus one virtual boundary copy each:
    // defect i <-> defect j at path distance, defect i <-> its own virtual
    // at boundary distance, virtual <-> virtual free.
    const int n = 2 * k;
    constexpr double kScale = 1024.0;
    std::vector<int64_t> w(static_cast<size_t>(n) * n, kMatchForbidden);
    auto at = [&](int a, int b) -> int64_t & {
        return w[static_cast<size_t>(a) * n + b];
    };
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
            const double d = graph_.dist(defects[static_cast<size_t>(i)],
                                         defects[static_cast<size_t>(j)]);
            if (std::isfinite(d)) {
                const auto iw = static_cast<int64_t>(std::llround(d * kScale));
                at(i, j) = iw;
                at(j, i) = iw;
            }
        }
        const double db =
            graph_.dist(defects[static_cast<size_t>(i)], bnode);
        if (std::isfinite(db)) {
            const auto iw = static_cast<int64_t>(std::llround(db * kScale));
            at(i, k + i) = iw;
            at(k + i, i) = iw;
        }
        for (int j = 0; j < k; ++j)
            if (j != i) {
                at(k + i, k + j) = 0;
                at(k + j, k + i) = 0;
            }
    }
    const auto mate = minWeightPerfectMatching(n, w);
    bool obs = false;
    if (mate.empty()) {
        // No perfect matching (disconnected leftovers): fall back to
        // matching every defect to the boundary.
        for (int i = 0; i < k; ++i)
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
        return obs;
    }
    for (int i = 0; i < k; ++i) {
        const int m = mate[static_cast<size_t>(i)];
        if (m < k) {
            if (m > i)
                obs ^= graph_.obsParity(defects[static_cast<size_t>(i)],
                                        defects[static_cast<size_t>(m)]);
        } else {
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
        }
    }
    return obs;
}

} // namespace surf
