#include "decode/mwpm.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "decode/blossom.hh"
#include "decode/match_weights.hh"
#include "util/logging.hh"

namespace surf {

namespace {

int64_t
quantizeW(double w)
{
    return quantizeMatchWeight(w);
}

} // namespace

size_t
defaultBlossomThreshold()
{
    static const size_t def = [] {
        const char *env = std::getenv("SURF_MATCHING_BACKEND");
        if (env && std::strcmp(env, "rows") == 0)
            return SIZE_MAX;
        return size_t{0}; // automatic count + density heuristic
    }();
    return def;
}

bool
MwpmDecoder::decode(const uint32_t *fired, size_t n_fired,
                    MwpmScratch &scratch) const
{
    auto &defects = scratch.defects;
    defects.clear();
    for (size_t i = 0; i < n_fired; ++i) {
        const int l = graph_.localOf(fired[i]);
        if (l >= 0)
            defects.push_back(l);
    }
    // Both sparse paths rely on ascending defect node ids (the rows
    // path's lo/hi pair cells, the matcher's binary-searched landing
    // collisions). Sorted fired lists (the simulator's CSR output) pass
    // the check for free; arbitrary callers get sorted here.
    if (!std::is_sorted(defects.begin(), defects.end()))
        std::sort(defects.begin(), defects.end());
    scratch.lastWeight = 0;
    scratch.timedOut = false;
    if (scratch.deadline != nullptr && scratch.deadline->armed())
        // Even empty shots clear the trace, so a caller that records the
        // ladder per decode never re-reads a previous shot's trip.
        scratch.ladder.reset();
    if (defects.empty())
        return false;
    if (scratch.deadline != nullptr && scratch.deadline->armed() &&
        graph_.backend() != MatchingBackend::Dense)
        // Deadline-armed shots run the staged fallback ladder. The Dense
        // backend is pure table lookups + one bounded blossom with no
        // cheaper stage to fall to, so it stays on its normal path.
        return decodeLadder(scratch);
    switch (graph_.backend()) {
      case MatchingBackend::Dense:
        return decodeDense(scratch);
      case MatchingBackend::SparseBlossom:
        return decodeSparseBlossom(scratch);
      case MatchingBackend::Sparse:
      default:
        // Burst dispatch: past the threshold the matrix-free matcher
        // avoids the k x k weight matrix and the dense O(k^3) blossom.
        // Fully-exact mode (truncation SIZE_MAX) keeps the rows path on
        // every shot — its contract is bit-identity with Dense, which
        // the matcher only guarantees up to equal-weight ties.
        return defects.size() >= blossomThreshold() &&
                       truncate_k_ != SIZE_MAX
                   ? decodeSparseBlossom(scratch)
                   : decodeSparse(scratch);
    }
}

bool
MwpmDecoder::decodeLadder(MwpmScratch &sc) const
{
    DecodeDeadline &dl = *sc.deadline;
    sc.ladder.reset();

    // Stage 1 — matrix-free sparse blossom, for the shots that would
    // use it anyway (SparseBlossom backend, or Sparse past the burst
    // threshold). Non-burst shots skip straight to the rows stage: the
    // matcher is slower there and a downgrade must never be one.
    const bool burst =
        graph_.backend() == MatchingBackend::SparseBlossom ||
        (sc.defects.size() >= blossomThreshold() &&
         truncate_k_ != SIZE_MAX);
    if (burst) {
        dl.beginStage(sc.stallNs[kStageBlossom]);
        bool timed_out = false;
        const bool obs =
            sparseBlossomDecode(graph_, sc.defects, sc.blossom,
                                &sc.lastWeight, &dl, &timed_out);
        sc.ladder.note(kStageBlossom, dl.stageElapsedNs(), timed_out);
        if (!timed_out) {
            sc.ladder.answer = kStageBlossom;
            return obs;
        }
        sc.lastWeight = 0; // abandoned stage: discard partial weight
    }

    // Stage 2 — memoized-rows MWPM under its own fresh budget.
    dl.beginStage(sc.stallNs[kStageRows]);
    const bool obs = decodeSparse(sc);
    sc.ladder.note(kStageRows, dl.stageElapsedNs(), sc.timedOut);
    if (!sc.timedOut) {
        sc.ladder.answer = kStageRows;
        return obs;
    }
    // Stage 3 (union-find) lives with the caller: sc.timedOut tells it
    // to discard this answer and run its floor decoder.
    sc.lastWeight = 0;
    return obs;
}

bool
MwpmDecoder::decodeSparseBlossom(MwpmScratch &scratch) const
{
    return sparseBlossomDecode(graph_, scratch.defects, scratch.blossom,
                               &scratch.lastWeight);
}

bool
MwpmDecoder::decodeDense(MwpmScratch &scratch) const
{
    const auto &defects = scratch.defects;
    const int k = static_cast<int>(defects.size());
    const int bnode = graph_.boundaryNode();

    // Closed-form fast paths for the overwhelmingly common low-weight
    // syndromes — no blossom workspace needed. k = 1: the only perfect
    // matching pairs the defect with its boundary copy. k = 2: either
    // both defects match each other (their virtuals pair for free) or
    // each goes to the boundary; pick the lighter total.
    if (k == 1) {
        const double db = graph_.dist(defects[0], bnode);
        if (std::isfinite(db))
            scratch.lastWeight = quantizeW(db);
        return graph_.obsParity(defects[0], bnode);
    }
    if (k == 2) {
        const double pair_w = graph_.dist(defects[0], defects[1]);
        const double bdry_w =
            graph_.dist(defects[0], bnode) + graph_.dist(defects[1], bnode);
        if (pair_w <= bdry_w) {
            if (!std::isfinite(pair_w))
                return false;
            scratch.lastWeight = quantizeW(pair_w);
            return graph_.obsParity(defects[0], defects[1]);
        }
        scratch.lastWeight = quantizeW(graph_.dist(defects[0], bnode)) +
                             quantizeW(graph_.dist(defects[1], bnode));
        return graph_.obsParity(defects[0], bnode) ^
               graph_.obsParity(defects[1], bnode);
    }

    // Complete graph on defects plus one virtual boundary copy each:
    // defect i <-> defect j at path distance, defect i <-> its own virtual
    // at boundary distance, virtual <-> virtual free.
    const int n = 2 * k;
    auto &w = scratch.weights;
    w.assign(static_cast<size_t>(n) * n, kMatchForbidden);
    auto at = [&](int a, int b) -> int64_t & {
        return w[static_cast<size_t>(a) * n + b];
    };
    for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
            const double d = graph_.dist(defects[static_cast<size_t>(i)],
                                         defects[static_cast<size_t>(j)]);
            if (std::isfinite(d)) {
                const int64_t iw = perturbedMatchWeight(
                    d, defects[static_cast<size_t>(i)],
                    defects[static_cast<size_t>(j)]);
                at(i, j) = iw;
                at(j, i) = iw;
            }
        }
        const double db =
            graph_.dist(defects[static_cast<size_t>(i)], bnode);
        if (std::isfinite(db)) {
            const int64_t iw = perturbedMatchWeight(
                db, defects[static_cast<size_t>(i)], bnode);
            at(i, k + i) = iw;
            at(k + i, i) = iw;
        }
        for (int j = 0; j < k; ++j)
            if (j != i) {
                at(k + i, k + j) = 0;
                at(k + j, k + i) = 0;
            }
    }
    bool obs = false;
    if (!minWeightPerfectMatching(n, w, scratch.mate)) {
        // No perfect matching (disconnected leftovers): fall back to
        // matching every defect to the boundary.
        for (int i = 0; i < k; ++i) {
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
            const double db =
                graph_.dist(defects[static_cast<size_t>(i)], bnode);
            if (std::isfinite(db))
                scratch.lastWeight += quantizeW(db);
        }
        return obs;
    }
    for (int i = 0; i < k; ++i) {
        const int m = scratch.mate[static_cast<size_t>(i)];
        if (m < k) {
            if (m > i) {
                obs ^= graph_.obsParity(defects[static_cast<size_t>(i)],
                                        defects[static_cast<size_t>(m)]);
                scratch.lastWeight += trueMatchWeight(at(i, m));
            }
        } else {
            obs ^= graph_.obsParity(defects[static_cast<size_t>(i)], bnode);
            scratch.lastWeight += trueMatchWeight(at(i, k + i));
        }
    }
    return obs;
}

bool
MwpmDecoder::decodeSparse(MwpmScratch &sc) const
{
    const auto &defects = sc.defects; // ascending local node ids
    const int k = static_cast<int>(defects.size());
    const int bnode = graph_.boundaryNode();
    const size_t cols = static_cast<size_t>(k) + 1; // slot k = boundary
    constexpr float kInf = std::numeric_limits<float>::infinity();

    // Per-shot path cache over defect slots (and the boundary slot):
    // filled once by the lazy searches; the closed forms, the matrix
    // assembly and the post-blossom parity reads are all table lookups.
    // Pairs share one (lo, hi) cell, filled by the run rooted at the
    // smaller node id first — the same witness the dense tables store.
    auto tri = [cols](int a, int b) {
        const auto lo = static_cast<size_t>(a < b ? a : b);
        const auto hi = static_cast<size_t>(a < b ? b : a);
        return lo * cols + hi;
    };
    // Fill the per-shot path cache from the graph's memoized rows (each
    // row is one lazy bounded Dijkstra, built at most once per graph and
    // shared across shots, epochs and cache reuses). The (i, j) cell is
    // witnessed by the smaller node id's row when it holds the pair —
    // the same witness the dense tables store — and by the other
    // endpoint's row otherwise: for any pair that can matter to the
    // matching, max(2 d(i,B), 2 d(j,B)) >= d(i,B) + d(j,B) puts it
    // within at least one of the two radii.
    const bool exact = truncate_k_ == SIZE_MAX;
    // Cooperative deadline poll (no-op with a null/disarmed deadline):
    // row construction and the O(k^3) blossom solve are the two
    // unbounded work chunks of this path, so the budget is checked
    // before each row build and before each solve.
    auto outOfTime = [&sc] {
        if (sc.deadline == nullptr || !sc.deadline->expired())
            return false;
        sc.timedOut = true;
        return true;
    };
    sc.pathDist.assign(cols * cols, kInf);
    sc.pathPar.assign(cols * cols, 0);
    sc.rows.clear();
    for (int i = 0; i < k; ++i) {
        if (outOfTime())
            return false;
        sc.rows.push_back(graph_.row(defects[static_cast<size_t>(i)],
                                     exact, sc.dijkstra));
    }
    for (int i = 0; i < k; ++i) {
        const DecodingGraph::Row &ri = *sc.rows[static_cast<size_t>(i)];
        const size_t bi = tri(i, k);
        sc.pathDist[bi] = ri.dist[static_cast<size_t>(bnode)];
        sc.pathPar[bi] = ri.par[static_cast<size_t>(bnode)];
        for (int j = i + 1; j < k; ++j) {
            const auto tj =
                static_cast<size_t>(defects[static_cast<size_t>(j)]);
            const size_t idx = tri(i, j);
            if (std::isfinite(ri.dist[tj])) {
                sc.pathDist[idx] = ri.dist[tj];
                sc.pathPar[idx] = ri.par[tj];
            } else {
                const DecodingGraph::Row &rj =
                    *sc.rows[static_cast<size_t>(j)];
                const auto ti =
                    static_cast<size_t>(defects[static_cast<size_t>(i)]);
                if (std::isfinite(rj.dist[ti])) {
                    sc.pathDist[idx] = rj.dist[ti];
                    sc.pathPar[idx] = rj.par[ti];
                }
            }
        }
    }

    // Closed forms, identical to the dense backend (the table entries
    // are bit-equal to the dense tables' for these always-exact cases).
    if (k == 1) {
        if (std::isfinite(sc.pathDist[tri(0, 1)]))
            sc.lastWeight = quantizeW(sc.pathDist[tri(0, 1)]);
        return sc.pathPar[tri(0, 1)] != 0;
    }
    if (k == 2) {
        const double pair_w = sc.pathDist[tri(0, 1)];
        const double bdry_w = static_cast<double>(sc.pathDist[tri(0, 2)]) +
                              static_cast<double>(sc.pathDist[tri(1, 2)]);
        if (pair_w <= bdry_w) {
            if (!std::isfinite(pair_w))
                return false;
            sc.lastWeight = quantizeW(pair_w);
            return sc.pathPar[tri(0, 1)] != 0;
        }
        sc.lastWeight = quantizeW(sc.pathDist[tri(0, 2)]) +
                        quantizeW(sc.pathDist[tri(1, 2)]);
        return (sc.pathPar[tri(0, 2)] ^ sc.pathPar[tri(1, 2)]) != 0;
    }

    // K-nearest truncation of the matching graph (PyMatching-style):
    // when the shot has more than K+1 defects, each defect only offers
    // edges to its K nearest fellow defects (kept if either endpoint
    // nominates the pair) plus its boundary edge.
    const bool truncate =
        !exact && static_cast<size_t>(k - 1) > truncate_k_;
    if (truncate) {
        sc.pairKeep.assign(static_cast<size_t>(k) * k, 0);
        for (int i = 0; i < k; ++i) {
            sc.nearCand.clear();
            for (int j = 0; j < k; ++j) {
                if (j == i)
                    continue;
                const float d = sc.pathDist[tri(i, j)];
                if (std::isfinite(d))
                    sc.nearCand.push_back({d, j});
            }
            if (sc.nearCand.size() > truncate_k_)
                std::nth_element(
                    sc.nearCand.begin(),
                    sc.nearCand.begin() +
                        static_cast<std::ptrdiff_t>(truncate_k_),
                    sc.nearCand.end());
            const size_t keep = std::min(truncate_k_, sc.nearCand.size());
            for (size_t c = 0; c < keep; ++c)
                sc.pairKeep[static_cast<size_t>(i) * k +
                            sc.nearCand[c].second] = 1;
        }
    }

    const int n = 2 * k;
    auto &w = sc.weights;
    auto at = [&](int a, int b) -> int64_t & {
        return w[static_cast<size_t>(a) * n + b];
    };
    auto buildMatrix = [&](bool use_mask) {
        w.assign(static_cast<size_t>(n) * n, kMatchForbidden);
        for (int i = 0; i < k; ++i) {
            for (int j = i + 1; j < k; ++j) {
                if (use_mask &&
                    !(sc.pairKeep[static_cast<size_t>(i) * k + j] |
                      sc.pairKeep[static_cast<size_t>(j) * k + i]))
                    continue;
                const double d = sc.pathDist[tri(i, j)];
                if (std::isfinite(d)) {
                    const int64_t iw = perturbedMatchWeight(
                        d, defects[static_cast<size_t>(i)],
                        defects[static_cast<size_t>(j)]);
                    at(i, j) = iw;
                    at(j, i) = iw;
                }
            }
            const double db = sc.pathDist[tri(i, k)];
            if (std::isfinite(db)) {
                const int64_t iw = perturbedMatchWeight(
                    db, defects[static_cast<size_t>(i)], bnode);
                at(i, k + i) = iw;
                at(k + i, i) = iw;
            }
            for (int j = 0; j < k; ++j)
                if (j != i) {
                    at(k + i, k + j) = 0;
                    at(k + j, k + i) = 0;
                }
        }
    };
    if (outOfTime())
        return false;
    buildMatrix(truncate);
    bool found = minWeightPerfectMatching(n, w, sc.mate);
    if (!found && truncate) {
        // Truncation left the matching graph without a perfect matching
        // (isolated far-apart defects): retry with every known pair.
        if (outOfTime())
            return false;
        buildMatrix(false);
        found = minWeightPerfectMatching(n, w, sc.mate);
    }
    bool obs = false;
    if (!found) {
        // Genuinely disconnected leftovers: fall back to matching every
        // defect to the boundary, exactly like the dense backend.
        for (int i = 0; i < k; ++i) {
            obs ^= sc.pathPar[tri(i, k)] != 0;
            if (std::isfinite(sc.pathDist[tri(i, k)]))
                sc.lastWeight += quantizeW(sc.pathDist[tri(i, k)]);
        }
        return obs;
    }
    for (int i = 0; i < k; ++i) {
        const int m = sc.mate[static_cast<size_t>(i)];
        if (m < k) {
            if (m > i) {
                obs ^= sc.pathPar[tri(i, m)] != 0;
                sc.lastWeight += trueMatchWeight(at(i, m));
            }
        } else {
            obs ^= sc.pathPar[tri(i, k)] != 0;
            sc.lastWeight += trueMatchWeight(at(i, k + i));
        }
    }
    return obs;
}

} // namespace surf
