/**
 * @file
 * Shared integer weight construction of the MWPM decode paths. All
 * backends (dense tables, sparse rows + dense blossom, matrix-free
 * sparse blossom) build their matching instances through these helpers,
 * which is what makes their results comparable shot for shot:
 *
 *  - distances are quantized at 1/1024 (llround(w * 1024)), so total
 *    matched weight is an exact cross-backend invariant;
 *  - below the quantized weight, kMatchTieBits low-order bits hold a
 *    deterministic hash of the endpoint *node ids*. Ordering by true
 *    weight is unchanged (the tie-break can never bridge a 1/1024
 *    step), but equal-weight matchings become generically distinct, so
 *    every backend — whichever blossom algorithm it runs — picks the
 *    same optimum on ties instead of an arbitrary algorithm-dependent
 *    one. Node ids are backend-independent, which makes the perturbed
 *    instance, and therefore the matching, backend-independent too.
 */

#ifndef SURF_DECODE_MATCH_WEIGHTS_HH
#define SURF_DECODE_MATCH_WEIGHTS_HH

#include <cmath>
#include <cstdint>

namespace surf {

/** Quantization scale of matching weights (1/1024 granularity). */
inline constexpr double kMatchWeightScale = 1024.0;

/** Low-order bits reserved for the deterministic tie-break hash. */
inline constexpr int kMatchTieBits = 16;

/** Quantize a path distance (no tie-break bits). */
inline int64_t
quantizeMatchWeight(double w)
{
    return static_cast<int64_t>(std::llround(w * kMatchWeightScale));
}

/** Symmetric tie-break hash of an unordered node-id pair, < 2^16. */
inline int64_t
matchTieBreak(int a, int b)
{
    const auto lo = static_cast<uint64_t>(a < b ? a : b);
    const auto hi = static_cast<uint64_t>(a < b ? b : a);
    uint64_t h = (lo + 1) * 0x9e3779b97f4a7c15ULL ^
                 (hi + 1) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 32;
    return static_cast<int64_t>(h & 0xffffu);
}

/** Full matching weight: quantized distance + endpoint tie-break. */
inline int64_t
perturbedMatchWeight(double w, int node_a, int node_b)
{
    return (quantizeMatchWeight(w) << kMatchTieBits) |
           matchTieBreak(node_a, node_b);
}

/** Recover the quantized (true) weight of one perturbed edge. */
inline int64_t
trueMatchWeight(int64_t perturbed)
{
    return perturbed >> kMatchTieBits;
}

} // namespace surf

#endif // SURF_DECODE_MATCH_WEIGHTS_HH
