/**
 * @file
 * Matrix-free sparse blossom matcher for burst syndromes (the
 * PyMatching-2-style backend of the MWPM decoder). Instead of building a
 * k x k weight matrix from per-defect shortest-path rows and running the
 * dense O(k^3) blossom, the matcher works directly on the decoding
 * graph's CSR adjacency:
 *
 *  1. Discovery: one multi-source Dijkstra grows a ball outward from
 *     every fired defect simultaneously (one shared heap, globally
 *     increasing distance; pops beyond a ball's cap are parked, so
 *     growth resumes exactly where it stopped). Ball collisions (at
 *     shared nodes and across single CSR edges) emit sparse candidate
 *     edges (weight + observable parity); the best candidate per pair
 *     is kept in a small open-addressing hash, never a k x k matrix. A
 *     pair whose distance is within the two balls' cap sum is provably
 *     discovered at its exact shortest-path value.
 *  2. Matching: an adjacency-list blossom solver (alternating-tree
 *     growth with dual variables, region merging via blossom
 *     contraction, greedy mutual-best initialization) runs on the
 *     discovered defect graph. Boundary matching uses the mirror
 *     reduction — a second copy of the defect graph with each defect
 *     joined to its mirror at twice its boundary cost — whose minimum
 *     perfect matching restricted to the first copy is exactly an
 *     optimal pair-or-boundary assignment.
 *  3. Certification: the solve's own dual variables bound how far an
 *     undiscovered edge could still matter. Each defect whose
 *     (symmetrized, min-instance) dual exceeds its certified ball
 *     radius grows to the dual bound and the solve repeats; when every
 *     defect's dual fits inside its radius (or its ball exhausted its
 *     component), no absent pair or boundary edge can improve the
 *     matching and the result is provably optimal for the full graph.
 *     Typical bursts certify in a round or two with balls a few edges
 *     wide; a bounded-round safety net falls back to full coverage.
 *     (For k <= 2 the closed forms need exact boundary distances, so
 *     those balls simply grow until the boundary settles.)
 *
 * Total matched weight (in the shared 1/1024 quantization) is exactly
 * equal to the dense backend's blossom on the same shot, and the shared
 * tie-break perturbation (match_weights.hh) makes even the choice among
 * equal-weight optima backend-independent. Per-shot cost scales with
 * the syndrome's local neighbourhood instead of k^2/k^3, which is what
 * makes high-defect burst syndromes (cosmic-ray clusters) affordable.
 *
 * All state lives in caller-owned scratch arenas (epoch-stamped arrays,
 * pooled lists), so steady-state decoding performs no allocation.
 */

#ifndef SURF_DECODE_SPARSE_BLOSSOM_HH
#define SURF_DECODE_SPARSE_BLOSSOM_HH

#include <cstdint>
#include <vector>

#include "decode/graph.hh"

namespace surf {

/** One weighted edge of a sparse matching graph. */
struct SparseMatchEdge
{
    int a = 0;
    int b = 0;
    int64_t w = 0;
};

/**
 * Reusable arena of the sparse blossom solver: alternating-tree labels,
 * blossom structure (children / cyclic edges), dual variables and the
 * scan queue. Buffers only ever grow; one arena may serve graphs of any
 * size.
 */
struct SparseMatcherScratch
{
    // Edge incidence (CSR over directed endpoints).
    std::vector<int> endpoint;   ///< endpoint[p]: vertex at endpoint p
    std::vector<int64_t> edgeW;  ///< transformed (maximization) weights
    std::vector<uint32_t> neighOff;
    std::vector<int> neigh;      ///< remote endpoint indices per vertex
    // Per-vertex / per-blossom state (2n slots: n vertices + n blossoms).
    std::vector<int8_t> label;
    std::vector<int> labelEnd;
    std::vector<int> inBlossom;
    std::vector<int> blossomParent;
    std::vector<int> blossomBase;
    std::vector<std::vector<int>> blossomChilds;
    std::vector<std::vector<int>> blossomEndps;
    std::vector<int64_t> dual;
    std::vector<uint8_t> allowEdge;
    std::vector<int> unusedBlossoms;
    std::vector<int> queue;
    std::vector<int> mate; ///< remote endpoint index or -1
    /** Offset of the last min->max weight transform: dual variables
     *  relate to min-instance potentials via Y_v = (2*offset - y_v)/4,
     *  which is what the burst matcher's growth certificate reads. */
    int64_t lastOffset = 0;
    // Temporaries.
    std::vector<int> path;        ///< scanBlossom trail
    std::vector<int> leafStack;   ///< blossomLeaves traversal
    std::vector<uint32_t> fill;   ///< CSR incidence fill cursor
};

/**
 * Minimum-weight perfect matching on a sparse graph given as an edge
 * list (parallel edges allowed; the cheapest wins). Exact: total weight
 * equals the dense blossom's on the equivalent complete graph with
 * absent pairs forbidden.
 *
 * @param n vertex count
 * @param edges undirected weighted edges, weights >= 0
 * @param mate output: mate[v] partner vertex, or -1 when no perfect
 *             matching exists (mate is then all -1)
 * @param totalWeight optional: sum of matched edge weights
 * @return true iff a perfect matching exists
 */
bool sparseMinWeightPerfectMatching(int n,
                                    const std::vector<SparseMatchEdge> &edges,
                                    SparseMatcherScratch &scratch,
                                    std::vector<int> &mate,
                                    int64_t *totalWeight = nullptr);

/**
 * Reusable arena of the burst matcher: the multi-source Dijkstra state
 * (shared heap + per-node cover lists), the candidate-edge hash, the
 * reduced matching graph and the solver arena.
 */
struct SparseBlossomScratch
{
    // Multi-source ball growth: per node, a pooled linked list of the
    // balls covering it (defect slot, distance, parity, settled flag).
    struct Cover
    {
        int defect;
        int next;       ///< pool index or -1
        double dist;
        uint8_t par;
        uint8_t settled;
    };
    std::vector<int> coverHead;   ///< node -> pool index; epoch-stamped
    std::vector<uint32_t> coverGen;
    uint32_t coverCur = 0;
    std::vector<Cover> coverPool;
    struct HeapItem
    {
        double dist;
        int node;
        int defect;
        bool operator>(const HeapItem &o) const
        {
            if (dist != o.dist)
                return dist > o.dist;
            if (node != o.node)
                return node > o.node;
            return defect > o.defect;
        }
    };
    std::vector<HeapItem> heap;
    std::vector<HeapItem> deferred; ///< pops beyond a ball's current cap
    std::vector<double> ballCap;    ///< per defect: certified radius
    std::vector<int> ballSettled;   ///< settle count (initial sizing)
    std::vector<uint8_t> ballLive;  ///< frontier not yet exhausted

    // Per-defect boundary matching data.
    std::vector<float> bDist;
    std::vector<uint8_t> bPar;

    // Candidate defect-pair edges: open-addressing hash keyed on the
    // (lo, hi) defect-slot pair, best (weight, witness rank) kept.
    struct Cand
    {
        uint64_t key = 0; ///< 0 = empty slot
        float w = 0.0f;
        uint8_t par = 0;
        uint8_t rank = 0; ///< 0: lo ball landed on hi; 1: hi on lo;
                          ///< 2: frontier crossing
    };
    std::vector<Cand> candTable;     ///< power-of-two open addressing
    std::vector<uint32_t> candSlots; ///< used slots (reset + iteration)

    // Reduced (mirror) matching graph + solver.
    std::vector<SparseMatchEdge> edges;
    SparseMatcherScratch matcher;
    std::vector<int> mate;
};

class DecodeDeadline;

/**
 * Decode one shot with the matrix-free matcher.
 *
 * @param graph CSR decoding graph (any backend; only adjacency is used)
 * @param defects ascending local node ids of the fired defects
 * @param sc burst-matcher arena
 * @param totalWeight optional: matched weight in the shared quantization
 *        (sum of llround(w * 1024) over matched pair/boundary paths)
 * @param deadline optional soft budget (util/deadline.hh), polled at
 *        entry and between growth/certificate rounds; null = never
 * @param timedOut set when the deadline expired and the decode was
 *        abandoned (the returned prediction is then untrusted)
 * @return predicted observable flip
 */
bool sparseBlossomDecode(const DecodingGraph &graph,
                         const std::vector<int> &defects,
                         SparseBlossomScratch &sc,
                         int64_t *totalWeight = nullptr,
                         const DecodeDeadline *deadline = nullptr,
                         bool *timedOut = nullptr);

} // namespace surf

#endif // SURF_DECODE_SPARSE_BLOSSOM_HH
