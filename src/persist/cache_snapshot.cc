#include "persist/cache_snapshot.hh"

#include <cmath>
#include <utility>
#include <vector>

#include <unistd.h>

#include "persist/snapshot.hh"

namespace surf {

namespace {

enum RecordType : uint8_t
{
    kRecSegment = 1,
    kRecTimeline = 2,
};

constexpr uint8_t kMaxOp = static_cast<uint8_t>(Op::FrameProbe);
constexpr uint8_t kMaxBackend =
    static_cast<uint8_t>(MatchingBackend::SparseBlossom);

void
writeCircuit(ByteWriter &w, const Circuit &c)
{
    const auto &instrs = c.instructions();
    w.u64(instrs.size());
    for (const Instruction &ins : instrs) {
        w.u8(static_cast<uint8_t>(ins.op));
        w.f64(ins.arg);
        w.u32(ins.aux);
        w.u64(ins.targets.size());
        for (uint32_t t : ins.targets)
            w.u32(t);
    }
}

/** Replay a serialized circuit through Circuit::appendRaw, which
 *  re-validates every instruction against the bookkeeping built so far —
 *  a detector referencing a future measurement, an odd pairwise list or
 *  a bad noise probability rejects the record, never aborts. */
bool
readCircuit(ByteReader &r, Circuit &out)
{
    const uint64_t n = r.u64();
    // Each instruction occupies >= 21 bytes, so a count beyond the
    // remaining payload is a lie; checking it first bounds the loop.
    if (!r.ok() || n > r.remaining())
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Instruction ins;
        const uint8_t op = r.u8();
        ins.arg = r.f64();
        ins.aux = r.u32();
        const uint64_t nt = r.u64();
        if (!r.ok() || op > kMaxOp || nt * 4 > r.remaining())
            return false;
        ins.op = static_cast<Op>(op);
        ins.targets.reserve(static_cast<size_t>(nt));
        for (uint64_t t = 0; t < nt; ++t)
            ins.targets.push_back(r.u32());
        if (!r.ok() || !out.appendRaw(std::move(ins)))
            return false;
    }
    return true;
}

void
writeDem(ByteWriter &w, const DetectorErrorModel &dem)
{
    w.u64(dem.numDetectors);
    w.bytes(dem.detectorTag.data(), dem.detectorTag.size());
    for (int t = 0; t < 2; ++t) {
        w.u64(dem.edges[t].size());
        for (const DemEdge &e : dem.edges[t]) {
            w.i64(e.a);
            w.i64(e.b);
            w.f64(e.p);
            w.u8(e.flipsObs ? 1 : 0);
        }
    }
    w.f64(dem.undetectableObsProb);
    w.u64(dem.decomposedComponents);
}

/** Read + validate a DEM. The decoding-graph constructors assert on
 *  malformed models (foreign detector ids), so every id, tag byte and
 *  probability is checked here before any constructor runs. */
bool
readDem(ByteReader &r, DetectorErrorModel &dem)
{
    const uint64_t n_det = r.u64();
    if (!r.ok() || n_det > r.remaining())
        return false;
    dem.numDetectors = static_cast<size_t>(n_det);
    const char *tags = r.bytes(static_cast<size_t>(n_det));
    if (!tags)
        return false;
    dem.detectorTag.resize(static_cast<size_t>(n_det));
    for (uint64_t i = 0; i < n_det; ++i) {
        const auto tag = static_cast<uint8_t>(tags[i]);
        if (tag > 1)
            return false;
        dem.detectorTag[i] = tag;
    }
    for (int t = 0; t < 2; ++t) {
        const uint64_t n_edges = r.u64();
        if (!r.ok() || n_edges > r.remaining())
            return false;
        dem.edges[t].reserve(static_cast<size_t>(n_edges));
        for (uint64_t i = 0; i < n_edges; ++i) {
            DemEdge e;
            const int64_t a = r.i64();
            const int64_t b = r.i64();
            e.p = r.f64();
            e.flipsObs = r.u8() != 0;
            if (!r.ok())
                return false;
            // Endpoints: boundary (-1) or a detector of this graph's tag.
            for (int64_t id : {a, b}) {
                if (id < -1 || id >= static_cast<int64_t>(n_det))
                    return false;
                if (id >= 0 && dem.detectorTag[static_cast<size_t>(id)] !=
                                   static_cast<uint8_t>(t))
                    return false;
            }
            if (!(std::isfinite(e.p) && e.p >= 0.0 && e.p <= 1.0))
                return false;
            e.a = static_cast<int>(a);
            e.b = static_cast<int>(b);
            dem.edges[t].push_back(e);
        }
    }
    dem.undetectableObsProb = r.f64();
    const uint64_t decomposed = r.u64();
    if (!r.ok() ||
        !(std::isfinite(dem.undetectableObsProb) &&
          dem.undetectableObsProb >= 0.0 && dem.undetectableObsProb <= 1.0))
        return false;
    dem.decomposedComponents = static_cast<size_t>(decomposed);
    return true;
}

struct SavedRow
{
    int src;
    DecodingGraph::Row row;
};

void
writeSegmentRecord(SnapshotWriter &snap, const std::string &key,
                   const CachedSegment &seg, double cost, uint64_t &rowsOut)
{
    // Collect the resident rows once (a single coherent pass), then
    // write; forEachResidentRow holds each row as an owned handle.
    const DecodingGraph &g = seg.mwpm->graph();
    std::vector<SavedRow> rows;
    g.forEachResidentRow([&](int src, const DecodingGraph::Row &row) {
        rows.push_back({src, row});
    });
    rowsOut += rows.size();

    std::string &payload = snap.beginRecord(kRecSegment);
    ByteWriter w(payload);
    w.str(key);
    w.u8(g.tag());
    w.u8(static_cast<uint8_t>(g.backend()));
    w.u64(g.rowBudget());
    writeCircuit(w, seg.circuit);
    writeDem(w, seg.dem);
    w.u64(g.csrDigest());
    w.u64(rows.size());
    for (const SavedRow &sr : rows) {
        w.u64(static_cast<uint64_t>(sr.src));
        w.f64(sr.row.radius);
        w.u64(sr.row.dist.size());
        for (float d : sr.row.dist)
            w.f32(d);
        w.bytes(sr.row.par.data(), sr.row.par.size());
    }
    w.f64(cost);
    snap.endRecord();
}

/** Restore one segment record; returns rows restored, or nullopt-style
 *  false on rejection (nothing inserted). */
bool
restoreSegmentRecord(ByteReader &r, DeformedCodeCache &cache,
                     SnapshotRestoreStats &stats)
{
    const std::string key = r.str();
    const uint8_t tag = r.u8();
    const uint8_t backend = r.u8();
    const uint64_t row_budget = r.u64();
    if (!r.ok() || key.empty() || tag > 1 || backend > kMaxBackend)
        return false;

    CachedSegment cs;
    if (!readCircuit(r, cs.circuit))
        return false;
    if (!readDem(r, cs.dem))
        return false;
    // Cross-field invariant the engine relies on: the standalone circuit
    // and its DEM agree on the detector count.
    if (cs.circuit.numDetectors() != cs.dem.numDetectors)
        return false;

    const uint64_t digest = r.u64();
    const uint64_t n_rows = r.u64();
    if (!r.ok() || n_rows > r.remaining())
        return false;
    size_t n_tag_nodes = 0;
    for (uint8_t t : cs.dem.detectorTag)
        n_tag_nodes += t == tag;
    const uint64_t row_len = n_tag_nodes + 1;

    std::vector<SavedRow> rows;
    rows.reserve(static_cast<size_t>(n_rows));
    for (uint64_t i = 0; i < n_rows; ++i) {
        const uint64_t src = r.u64();
        const double radius = r.f64();
        const uint64_t len = r.u64();
        if (!r.ok() || len != row_len || src >= n_tag_nodes ||
            len * 5 > r.remaining() || !(radius >= 0.0))
            return false;
        SavedRow sr;
        sr.src = static_cast<int>(src);
        sr.row.radius = radius;
        sr.row.dist.reserve(static_cast<size_t>(len));
        for (uint64_t k = 0; k < len; ++k)
            sr.row.dist.push_back(r.f32());
        const char *par = r.bytes(static_cast<size_t>(len));
        if (!par)
            return false;
        sr.row.par.assign(par, par + len);
        rows.push_back(std::move(sr));
    }
    const double cost = r.f64();
    if (!r.ok() || !(std::isfinite(cost) && cost >= 0.0))
        return false;

    // Rebuild the decoders from the validated DEM (O(edges), the cheap
    // part the sparse backends made cheap), then verify the rebuilt
    // graph's CSR digest against the recorded one: a payload that passed
    // its CRC but describes a different code — the semantic-signature
    // mismatch — is rejected here, before any row is trusted.
    cs.mwpm = std::make_unique<MwpmDecoder>(
        cs.dem, tag, nullptr, static_cast<MatchingBackend>(backend));
    cs.uf = std::make_unique<UnionFindDecoder>(cs.dem, tag);
    if (cs.mwpm->graph().csrDigest() != digest)
        return false;
    if (row_budget)
        cs.mwpm->setRowBudget(static_cast<size_t>(row_budget));
    for (SavedRow &sr : rows)
        if (cs.mwpm->graph().restoreRow(sr.src, std::move(sr.row)))
            ++stats.rows;

    if (cache.restoreSegment(key, std::move(cs), cost))
        ++stats.segments;
    return true;
}

void
writeTimelineRecord(SnapshotWriter &snap, const std::string &key,
                    const CachedTimeline &tl, double cost)
{
    std::string &payload = snap.beginRecord(kRecTimeline);
    ByteWriter w(payload);
    w.str(key);
    w.u8(tl.alive ? 1 : 0);
    writeCircuit(w, tl.circuit);
    w.u64(tl.epochs.size());
    for (const CachedTimelineEpoch &ep : tl.epochs) {
        w.u64(ep.startRound);
        w.u64(ep.rounds);
        w.u64(ep.distX);
        w.u64(ep.distZ);
        w.u64(ep.activeDefects);
        w.u64(ep.detBegin);
        w.u64(ep.detEnd);
        w.str(ep.segKey);
    }
    w.f64(cost);
    snap.endRecord();
}

bool
restoreTimelineRecord(ByteReader &r, DeformedCodeCache &cache,
                      SnapshotRestoreStats &stats)
{
    const std::string key = r.str();
    const uint8_t alive = r.u8();
    if (!r.ok() || key.empty() || alive > 1)
        return false;
    CachedTimeline tl;
    tl.alive = alive != 0;
    if (!readCircuit(r, tl.circuit))
        return false;
    const uint64_t n_epochs = r.u64();
    if (!r.ok() || n_epochs > r.remaining())
        return false;
    if (!tl.alive && n_epochs != 0)
        return false; // dead timelines carry no epochs by construction
    tl.epochs.reserve(static_cast<size_t>(n_epochs));
    size_t prev_end = 0;
    for (uint64_t i = 0; i < n_epochs; ++i) {
        CachedTimelineEpoch ep;
        ep.startRound = r.u64();
        ep.rounds = r.u64();
        ep.distX = static_cast<size_t>(r.u64());
        ep.distZ = static_cast<size_t>(r.u64());
        ep.activeDefects = static_cast<size_t>(r.u64());
        ep.detBegin = static_cast<size_t>(r.u64());
        ep.detEnd = static_cast<size_t>(r.u64());
        ep.segKey = r.str();
        if (!r.ok() || ep.segKey.empty())
            return false;
        // The decode loop slices the concatenated fired list by these
        // ranges: they must be monotone and inside the circuit.
        if (ep.detBegin < prev_end || ep.detEnd < ep.detBegin ||
            ep.detEnd > tl.circuit.numDetectors())
            return false;
        prev_end = ep.detEnd;
        // Re-pin the segment through the cache (segments restore first);
        // a missing or mismatched segment rejects the whole timeline.
        ep.seg = cache.peekSegment(ep.segKey);
        if (!ep.seg ||
            ep.seg->dem.numDetectors != ep.detEnd - ep.detBegin)
            return false;
        tl.epochs.push_back(std::move(ep));
    }
    const double cost = r.f64();
    if (!r.ok() || !(std::isfinite(cost) && cost >= 0.0))
        return false;
    if (cache.restoreTimeline(key, std::move(tl), cost))
        ++stats.timelines;
    return true;
}

} // namespace

bool
snapshotFileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

StatusOr<SnapshotSaveStats>
saveCacheSnapshot(const DeformedCodeCache &cache, const std::string &path,
                  const FaultInjector *inject, uint64_t faultSalt)
{
    SnapshotSaveStats stats;
    SnapshotWriter snap;
    // Segments first: timeline restore resolves its epoch pins against
    // segments already in the cache, in one forward pass.
    cache.forEachSegment([&](const std::string &key, const CachedSegment &seg,
                             double cost) {
        writeSegmentRecord(snap, key, seg, cost, stats.rows);
        ++stats.segments;
    });
    cache.forEachTimeline([&](const std::string &key,
                              const CachedTimeline &tl, double cost) {
        // A timeline whose pinned segment lost its own cache entry (an
        // eviction orphan) would dangle on restore — skip it; the next
        // run rebuilds that timeline against restored segments.
        for (const CachedTimelineEpoch &ep : tl.epochs)
            if (ep.segKey.empty() || !cache.peekSegment(ep.segKey)) {
                ++stats.skippedTimelines;
                return;
            }
        writeTimelineRecord(snap, key, tl, cost);
        ++stats.timelines;
    });
    stats.fileBytes = snap.bytesBuffered();
    if (Status s = snap.finish(path, inject, faultSalt); !s.ok())
        return s;
    return stats;
}

StatusOr<SnapshotRestoreStats>
loadCacheSnapshot(DeformedCodeCache &cache, const std::string &path)
{
    StatusOr<std::string> bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.status();
    StatusOr<SnapshotReader> reader = SnapshotReader::open(std::move(*bytes));
    if (!reader.ok())
        return reader.status();
    SnapshotReader &snap = reader.value();

    SnapshotRestoreStats stats;
    stats.fileBytes = snap.fileBytes();
    uint8_t type = 0;
    ByteReader payload(nullptr, 0);
    while (snap.next(type, payload)) {
        bool ok;
        switch (type) {
          case kRecSegment:
            ok = restoreSegmentRecord(payload, cache, stats);
            break;
          case kRecTimeline:
            ok = restoreTimelineRecord(payload, cache, stats);
            break;
          default:
            ok = false; // unknown record type: a future writer's data
            break;
        }
        if (!ok)
            ++stats.rejectedRecords;
    }
    stats.truncated = snap.truncated();
    return stats;
}

} // namespace surf
