#include "persist/checkpoint.hh"

#include <cmath>
#include <cstring>

#include "persist/snapshot.hh"

namespace surf {

namespace {

enum RecordType : uint8_t
{
    kRecMeta = 1,
    kRecTimeline = 2,
};

/** FNV-1a accumulator for the config signature. */
struct SigHash
{
    uint64_t h = 0xcbf29ce484222325ull;
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
};

void
writeLedger(ByteWriter &w, const DegradationLedger &led)
{
    w.u64(led.ladderDecodes);
    w.u64(led.degradedDecodes);
    for (size_t s = 0; s < kNumDecodeStages; ++s) {
        w.u64(led.stageAttempts[s]);
        w.u64(led.stageTimeouts[s]);
        w.u64(led.stageCompleted[s]);
        const LatencyHistogram &hist = led.stageLatency[s];
        for (uint64_t b : hist.buckets)
            w.u64(b);
        w.u64(hist.samples);
        w.u64(hist.totalNs);
        w.u64(hist.maxNs);
    }
    w.u64(led.injectedStalls);
    w.u64(led.injectedBursts);
    w.u64(led.injectedBurstDetectors);
    w.u64(led.cacheStorms);
    w.u64(led.snapRestoredEntries);
    w.u64(led.snapRejectedRecords);
    w.u64(led.snapRecoveries);
    w.u64(led.fabDeadPatches);
    w.u64(led.fabAdaptedPatches);
    w.u64(led.fabDistanceLoss);
}

bool
readLedger(ByteReader &r, DegradationLedger &led)
{
    led.ladderDecodes = r.u64();
    led.degradedDecodes = r.u64();
    for (size_t s = 0; s < kNumDecodeStages; ++s) {
        led.stageAttempts[s] = r.u64();
        led.stageTimeouts[s] = r.u64();
        led.stageCompleted[s] = r.u64();
        LatencyHistogram &hist = led.stageLatency[s];
        for (uint64_t &b : hist.buckets)
            b = r.u64();
        hist.samples = r.u64();
        hist.totalNs = r.u64();
        hist.maxNs = r.u64();
    }
    led.injectedStalls = r.u64();
    led.injectedBursts = r.u64();
    led.injectedBurstDetectors = r.u64();
    led.cacheStorms = r.u64();
    led.snapRestoredEntries = r.u64();
    led.snapRejectedRecords = r.u64();
    led.snapRecoveries = r.u64();
    led.fabDeadPatches = r.u64();
    led.fabAdaptedPatches = r.u64();
    led.fabDistanceLoss = r.u64();
    return r.ok();
}

void
writeTimelineStats(ByteWriter &w, const TimelineStats &tl)
{
    w.u64(tl.shots);
    w.u64(tl.failures);
    w.u64(tl.events);
    w.u8(tl.dead ? 1 : 0);
    w.u64(tl.epochs.size());
    for (const EpochStats &ep : tl.epochs) {
        w.u64(ep.startRound);
        w.u64(ep.rounds);
        w.u64(ep.distX);
        w.u64(ep.distZ);
        w.u64(ep.activeDefects);
        w.u64(ep.numDetectors);
        w.u64(ep.decomposedHyperedges);
        w.f64(ep.undetectableObsProb);
        w.u64(ep.shots);
        w.u64(ep.mismatches);
    }
    writeLedger(w, tl.ledger);
}

bool
readTimelineStats(ByteReader &r, TimelineStats &tl)
{
    tl.shots = r.u64();
    tl.failures = r.u64();
    tl.events = static_cast<size_t>(r.u64());
    const uint8_t dead = r.u8();
    const uint64_t n_epochs = r.u64();
    if (!r.ok() || dead > 1 || n_epochs > r.remaining())
        return false;
    tl.dead = dead != 0;
    tl.epochs.reserve(static_cast<size_t>(n_epochs));
    for (uint64_t i = 0; i < n_epochs; ++i) {
        EpochStats ep;
        ep.startRound = r.u64();
        ep.rounds = r.u64();
        ep.distX = static_cast<size_t>(r.u64());
        ep.distZ = static_cast<size_t>(r.u64());
        ep.activeDefects = static_cast<size_t>(r.u64());
        ep.numDetectors = static_cast<size_t>(r.u64());
        ep.decomposedHyperedges = static_cast<size_t>(r.u64());
        ep.undetectableObsProb = r.f64();
        ep.shots = r.u64();
        ep.mismatches = r.u64();
        if (!r.ok())
            return false;
        tl.epochs.push_back(ep);
    }
    return readLedger(r, tl.ledger);
}

} // namespace

uint64_t
scenarioConfigSignature(const ScenarioConfig &cfg)
{
    SigHash sig;
    // Epoch planner.
    sig.u64(static_cast<uint64_t>(cfg.timeline.strategy));
    sig.u64(static_cast<uint64_t>(cfg.timeline.d));
    sig.u64(static_cast<uint64_t>(cfg.timeline.deltaD));
    sig.u64(cfg.timeline.horizonRounds);
    sig.u64(cfg.timeline.windowRounds);
    sig.u64(cfg.timeline.maxEpochRounds);
    sig.u64(cfg.timeline.forceEpochBoundaries);
    // Caller-pinned permanent defects (distinct from cfg.fabDefects,
    // whose sites the engine derives and must not double-hash).
    sig.u64(cfg.timeline.permanentSites.size());
    for (const Coord &c : cfg.timeline.permanentSites) {
        sig.u64(static_cast<uint64_t>(static_cast<int64_t>(c.x)));
        sig.u64(static_cast<uint64_t>(static_cast<int64_t>(c.y)));
    }
    // Fabrication-defect chip model (canonical zeros when disabled, so a
    // config predating the field keeps its signature).
    const bool fab_on = cfg.fabDefects.enabled();
    sig.f64(fab_on ? cfg.fabDefects.qubitRate : 0.0);
    sig.f64(fab_on ? cfg.fabDefects.couplerRate : 0.0);
    sig.u64(fab_on ? cfg.fabDefects.seed : 0);
    // Defect model + event stream.
    sig.f64(cfg.defectModel.eventRatePerQubitSec);
    sig.f64(cfg.defectModel.durationSec);
    sig.u64(static_cast<uint64_t>(cfg.defectModel.regionQubits));
    sig.u64(static_cast<uint64_t>(cfg.defectModel.regionDiameter));
    sig.f64(cfg.defectModel.cycleTimeSec);
    sig.f64(cfg.eventRateScale);
    sig.u64(static_cast<uint64_t>(cfg.numTimelines));
    // Noise (defectiveSites is per-epoch planner output, not config).
    sig.f64(cfg.noise.p);
    sig.f64(cfg.noise.pDefect);
    sig.f64(cfg.noise.pCorrelated2q);
    // Decode configuration.
    sig.u64(static_cast<uint64_t>(cfg.basis));
    sig.u64(static_cast<uint64_t>(cfg.decoder));
    sig.u64(cfg.mwpmDefectCap);
    sig.u64(static_cast<uint64_t>(cfg.matching));
    // Shot schedule + seeding.
    sig.u64(cfg.maxShotsPerTimeline);
    sig.u64(cfg.targetFailures);
    sig.u64(cfg.batchShots);
    sig.u64(cfg.decoderKnowsDefects);
    sig.u64(cfg.seed);
    sig.u64(cfg.decodeDeadlineNs);
    // Fault plan, minus the snap.* clauses: snapshot corruption and the
    // simulated crash change durability, never the decoded results, so a
    // resume may drop or alter them (the kill/resume harness does).
    // When no non-snap clause is live the whole plan (seed included) is
    // result-inert, and a snap-only killed run must match a later clean
    // resume — hash canonical zeros in that case.
    const FaultPlan &f = cfg.faults;
    const bool live_faults = f.stallProb > 0.0 || f.stormEveryEpochs ||
                             f.stormEveryBatches || f.truncateFrac >= 0.0 ||
                             f.corruptProb > 0.0 || f.burstProb > 0.0 ||
                             f.fabQubitProb > 0.0 || f.fabCouplerProb > 0.0;
    sig.u64(live_faults ? f.seed : 0);
    sig.f64(live_faults ? f.stallProb : 0.0);
    sig.u64(live_faults ? f.stallNs : 0);
    sig.u64(live_faults ? f.stallStages : 0);
    sig.u64(live_faults ? f.stormEveryEpochs : 0);
    sig.u64(live_faults ? f.stormEveryBatches : 0);
    sig.f64(live_faults ? f.truncateFrac : 0.0);
    sig.f64(live_faults ? f.corruptProb : 0.0);
    sig.f64(live_faults ? f.burstProb : 0.0);
    sig.u64(live_faults ? f.burstSize : 0);
    sig.f64(live_faults ? f.fabQubitProb : 0.0);
    sig.f64(live_faults ? f.fabCouplerProb : 0.0);
    // Deliberately excluded (result-invariant by the engine's contract):
    // threads, useCache, cache pointer, cacheMaxBytes/Entries,
    // mwpmRowBudget, persistDir, snap.*.
    return sig.h;
}

Status
saveRunCheckpoint(const std::string &path, uint64_t configSignature,
                  const std::vector<TimelineStats> &completed,
                  const FaultInjector *inject, uint64_t faultSalt)
{
    SnapshotWriter snap;
    {
        std::string &payload = snap.beginRecord(kRecMeta);
        ByteWriter w(payload);
        w.u64(configSignature);
        w.u64(completed.size());
        snap.endRecord();
    }
    for (const TimelineStats &tl : completed) {
        std::string &payload = snap.beginRecord(kRecTimeline);
        ByteWriter w(payload);
        writeTimelineStats(w, tl);
        snap.endRecord();
    }
    return snap.finish(path, inject, faultSalt);
}

StatusOr<RunCheckpoint>
loadRunCheckpoint(const std::string &path)
{
    StatusOr<std::string> bytes = readFileBytes(path);
    if (!bytes.ok())
        return bytes.status();
    StatusOr<SnapshotReader> reader = SnapshotReader::open(std::move(*bytes));
    if (!reader.ok())
        return reader.status();
    SnapshotReader &snap = reader.value();

    RunCheckpoint out;
    uint8_t type = 0;
    ByteReader payload(nullptr, 0);
    if (!snap.next(type, payload) || type != kRecMeta)
        return Status::corruptSnapshot(
            "checkpoint '" + path + "' has no meta record");
    out.configSignature = payload.u64();
    const uint64_t declared = payload.u64();
    if (!payload.ok())
        return Status::corruptSnapshot(
            "checkpoint '" + path + "': meta record truncated");
    while (snap.next(type, payload)) {
        if (type != kRecTimeline)
            return Status::corruptSnapshot(
                "checkpoint '" + path + "': unexpected record type " +
                std::to_string(type));
        TimelineStats tl;
        if (!readTimelineStats(payload, tl))
            return Status::corruptSnapshot(
                "checkpoint '" + path + "': malformed timeline record " +
                std::to_string(out.completed.size()));
        out.completed.push_back(std::move(tl));
    }
    // A torn tail (fewer records than declared) is the state of an
    // earlier checkpoint — a valid resume point. More than declared
    // means the meta record lies: reject.
    if (out.completed.size() > declared)
        return Status::corruptSnapshot(
            "checkpoint '" + path + "': " +
            std::to_string(out.completed.size()) +
            " timeline records but meta declares " +
            std::to_string(declared));
    return out;
}

} // namespace surf
