/**
 * @file
 * DeformedCodeCache snapshot: serialize the expensive warm state — segment
 * circuits, detector error models, memoized Dijkstra rows and stitched
 * timelines — so a later run (or a run resumed after a crash) starts at
 * warm-cache speed instead of rebuilding everything from scratch.
 *
 * Restore strategy: decoders are NOT serialized. A segment record carries
 * its circuit, its DEM, a digest of the decoding graph's CSR arrays, and
 * the memoized rows; the loader rebuilds the decoders from the DEM (an
 * O(edges) construction) and then verifies that the rebuilt graph's CSR
 * digest matches the recorded one before trusting a single row. Entries
 * are pure functions of their cache keys, so a restored entry answers
 * every query bit-identically to a cold-built one — corruption can only
 * cost a rebuild, never change a result.
 *
 * The loader is paranoid by design: every length, enum, detector id,
 * probability and cross-field invariant is validated before anything is
 * constructed, and any inconsistency rejects the record (counted in
 * SnapshotRestoreStats::rejectedRecords) rather than crashing. Header
 * corruption rejects the whole file with CORRUPT_SNAPSHOT; record
 * corruption keeps the CRC-valid prefix.
 */

#ifndef SURF_PERSIST_CACHE_SNAPSHOT_HH
#define SURF_PERSIST_CACHE_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "scenario/deformed_code_cache.hh"
#include "util/status.hh"

namespace surf {

class FaultInjector;

/** What saveCacheSnapshot wrote. */
struct SnapshotSaveStats
{
    uint64_t segments = 0;
    uint64_t timelines = 0;
    /** Timeline entries skipped because a pinned segment's own cache
     *  entry was evicted (the timeline would dangle on restore). */
    uint64_t skippedTimelines = 0;
    uint64_t rows = 0;     ///< memoized Dijkstra rows serialized
    uint64_t fileBytes = 0; ///< bytes written (pre-fault-injection)
};

/** What loadCacheSnapshot restored (and refused). */
struct SnapshotRestoreStats
{
    uint64_t segments = 0;
    uint64_t timelines = 0;
    uint64_t rows = 0;            ///< rows rehydrated into graphs
    uint64_t rejectedRecords = 0; ///< CRC-valid but semantically bad
    bool truncated = false;       ///< a torn/corrupt record ended the file
    uint64_t fileBytes = 0;       ///< bytes read
};

/** True when `path` names an existing file (loader cold-start probe). */
bool snapshotFileExists(const std::string &path);

/**
 * Serialize every resident cache entry to `path` (atomic write). Segment
 * records precede timeline records so the loader can resolve timeline
 * epoch pins in one pass. `inject` (nullable) applies snap.* fault
 * clauses to the finished bytes; `faultSalt` decorrelates this file's
 * fault decisions from other snapshot files in the same plan.
 */
StatusOr<SnapshotSaveStats>
saveCacheSnapshot(const DeformedCodeCache &cache, const std::string &path,
                  const FaultInjector *inject = nullptr,
                  uint64_t faultSalt = 0);

/**
 * Restore entries from `path` into `cache` (insert-if-absent; resident
 * entries win). Missing file / unreadable file / corrupt header is a
 * non-OK Status — the caller falls back to a cold build and counts the
 * recovery. Per-record rejections (CRC, truncation, semantic
 * inconsistency, a CSR digest that does not match the rebuilt graph) are
 * reported in the returned stats, never thrown, never fatal.
 */
StatusOr<SnapshotRestoreStats>
loadCacheSnapshot(DeformedCodeCache &cache, const std::string &path);

} // namespace surf

#endif // SURF_PERSIST_CACHE_SNAPSHOT_HH
