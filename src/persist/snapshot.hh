/**
 * @file
 * Crash-safe snapshot container: the low-level byte format shared by the
 * deformed-code cache snapshot and the scenario run checkpoint. Design
 * goals, in order: (1) a torn, flipped or stale file can never produce a
 * wrong answer — only a rejected record or a rejected file, both of which
 * the callers turn into a cold rebuild; (2) writes are atomic on POSIX
 * (write to a temp file, fsync, rename over the target, fsync the
 * directory), so a reader never observes a half-written snapshot under a
 * crash-free filesystem; (3) corruption detection is local — every record
 * carries its own CRC32, so a flipped bit invalidates one record and the
 * valid prefix before it stays usable.
 *
 * File layout:
 *   header:  magic "SURFSNP1" (8) | format u32 | abi u32 | crc32 u32
 *   record:  type u8 | payload length u64 | payload | crc32 u32
 *            (the CRC covers type + length + payload)
 *
 * The format version changes when this container layout changes; the ABI
 * version changes whenever any serialized payload struct changes shape.
 * A reader that sees an unknown version rejects the whole file with
 * CORRUPT_SNAPSHOT — version skew degrades to a cold build, by design.
 *
 * Fault injection (faultinject/fault_plan.hh `snap.*` clauses) mutates
 * the finished byte buffer right before it hits the disk: deterministic
 * torn-write truncation, seeded single-bit flips, and a stale version
 * stamp — so every recovery path is replayable bit-for-bit.
 */

#ifndef SURF_PERSIST_SNAPSHOT_HH
#define SURF_PERSIST_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.hh"

namespace surf {

class FaultInjector;

/** Container format version (layout of header/records). */
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/** Payload ABI version: bump when any serialized struct changes.
 *  v2: DegradationLedger gained the three fab* counters. */
inline constexpr uint32_t kSnapshotAbiVersion = 2;
/** Header size: magic (8) | format u32 | abi u32 | header crc32. */
inline constexpr size_t kSnapshotHeaderBytes = 8 + 4 + 4 + 4;

/** CRC32 (IEEE 802.3, reflected 0xEDB88320) of a byte range. */
uint32_t crc32(const void *data, size_t n, uint32_t seed = 0);

/**
 * Write `bytes` to `path` atomically: temp file in the same directory,
 * write, fsync, rename over `path`, fsync the directory. On any failure
 * the temp file is unlinked and the previous `path` contents (if any)
 * are untouched.
 */
Status atomicWriteFile(const std::string &path, const std::string &bytes);

/** Read a whole file. A missing file is NOT_FOUND-shaped: callers treat
 *  it as "no snapshot yet", which is kDataLoss here to keep the code
 *  set small — the loader maps it to a silent cold start. */
StatusOr<std::string> readFileBytes(const std::string &path);

/** Append little-endian scalars / length-prefixed blobs to a buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::string &out) : out_(out) {}

    void
    u8(uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }
    void
    u32(uint32_t v)
    {
        appendLe(&v, sizeof v);
    }
    void
    u64(uint64_t v)
    {
        appendLe(&v, sizeof v);
    }
    void
    i32(int32_t v)
    {
        appendLe(&v, sizeof v);
    }
    void
    i64(int64_t v)
    {
        appendLe(&v, sizeof v);
    }
    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }
    void
    bytes(const void *data, size_t n)
    {
        out_.append(static_cast<const char *>(data), n);
    }

  private:
    void
    appendLe(const void *data, size_t n)
    {
        // Little-endian hosts only (the toolchains this repo targets);
        // a big-endian port would byte-swap here.
        out_.append(static_cast<const char *>(data), n);
    }

    std::string &out_;
};

/**
 * Bounds-checked reader over a byte view. Every accessor checks the
 * remaining length first; once a read overruns, ok() latches false and
 * every later accessor returns zero values — so record decoders can read
 * a whole struct and test ok() once, with no UB on truncated payloads.
 */
class ByteReader
{
  public:
    ByteReader(const char *data, size_t n) : data_(data), size_(n) {}

    bool ok() const { return ok_; }
    size_t remaining() const { return size_ - pos_; }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        take(&v, sizeof v);
        return v;
    }
    uint32_t
    u32()
    {
        uint32_t v = 0;
        take(&v, sizeof v);
        return v;
    }
    uint64_t
    u64()
    {
        uint64_t v = 0;
        take(&v, sizeof v);
        return v;
    }
    int32_t
    i32()
    {
        int32_t v = 0;
        take(&v, sizeof v);
        return v;
    }
    int64_t
    i64()
    {
        int64_t v = 0;
        take(&v, sizeof v);
        return v;
    }
    float
    f32()
    {
        const uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    std::string
    str()
    {
        const uint64_t n = u64();
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return {};
        }
        std::string s(data_ + pos_, static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return s;
    }
    /** Raw view of `n` bytes (nullptr + !ok() on overrun). */
    const char *
    bytes(size_t n)
    {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return nullptr;
        }
        const char *p = data_ + pos_;
        pos_ += n;
        return p;
    }

  private:
    void
    take(void *out, size_t n)
    {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    const char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Buffered snapshot writer: records accumulate in memory, finish()
 * seals the buffer (header CRC, per-record CRCs are already in place)
 * and writes it atomically. An optional FaultInjector mutates the
 * finished buffer first — torn truncation, seeded bit flips, a stale
 * version stamp — which is how the corruption-recovery tests and the
 * corrupted-snapshot CI smoke manufacture their inputs deterministically.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    /** Begin a record of `type`; write its payload into the returned
     *  ByteWriter-backed buffer, then call endRecord(). */
    std::string &beginRecord(uint8_t type);
    void endRecord();

    /** Bytes accumulated so far (records sealed so far + header). */
    size_t bytesBuffered() const { return buf_.size() + payload_.size(); }

    /**
     * Seal and atomically write the snapshot. `inject` (nullable)
     * applies the plan's snap.* faults to the final buffer; `faultSalt`
     * decorrelates the decision streams of different snapshot files.
     */
    Status finish(const std::string &path,
                  const FaultInjector *inject = nullptr,
                  uint64_t faultSalt = 0);

  private:
    std::string buf_;     ///< sealed bytes (header + finished records)
    std::string payload_; ///< payload of the in-flight record
    uint8_t type_ = 0;
    bool in_record_ = false;
};

/**
 * Snapshot reader: validates the header eagerly (magic, versions, header
 * CRC — any mismatch is CORRUPT_SNAPSHOT for the whole file), then hands
 * out records one at a time. A record whose length field overruns the
 * file or whose CRC mismatches ends iteration; the records before it
 * remain trustworthy (each carried its own CRC). truncated() reports
 * whether iteration ended early, so callers can count the recovery.
 */
class SnapshotReader
{
  public:
    /** Empty reader (StatusOr storage); use open() to get a real one. */
    SnapshotReader() = default;

    /** Validate the header of `bytes` (moved in). */
    static StatusOr<SnapshotReader> open(std::string bytes);

    /**
     * Fetch the next record. Returns true with type/payload set, or
     * false at end-of-file — clean or corrupt; check truncated().
     */
    bool next(uint8_t &type, ByteReader &payload);

    /** True once a torn or corrupt record ended iteration early. */
    bool truncated() const { return truncated_; }
    /** Total records handed out. */
    size_t recordsRead() const { return records_; }
    size_t fileBytes() const { return bytes_.size(); }

  private:
    std::string bytes_;
    size_t pos_ = 0;
    size_t records_ = 0;
    bool truncated_ = false;
};

} // namespace surf

#endif // SURF_PERSIST_SNAPSHOT_HH
