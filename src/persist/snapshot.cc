#include "persist/snapshot.hh"

#include <array>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "faultinject/fault_plan.hh"
#include "util/logging.hh"

namespace surf {

namespace {

constexpr char kMagic[8] = {'S', 'U', 'R', 'F', 'S', 'N', 'P', '1'};
constexpr size_t kHeaderBytes = kSnapshotHeaderBytes;

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

Status
ioError(const std::string &what, const std::string &path)
{
    return Status::dataLoss(what + " '" + path + "': " +
                            std::strerror(errno));
}

} // namespace

uint32_t
crc32(const void *data, size_t n, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

Status
atomicWriteFile(const std::string &path, const std::string &bytes)
{
    // Temp file in the target's directory so the rename stays within one
    // filesystem (rename across filesystems is not atomic).
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return ioError("snapshot: cannot create", tmp);
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return ioError("snapshot: write failed on", tmp);
        }
        off += static_cast<size_t>(n);
    }
    // fsync before rename: the rename must never become visible ahead of
    // the data it points at, or a crash between the two would leave a
    // torn file under the final name.
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return ioError("snapshot: fsync failed on", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return ioError("snapshot: close failed on", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return ioError("snapshot: rename failed onto", path);
    }
    // Persist the directory entry too; failure here is not fatal to
    // correctness (the data is durable, the name may revert on crash).
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return Status::okStatus();
}

StatusOr<std::string>
readFileBytes(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return ioError("snapshot: cannot open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return ioError("snapshot: read failed on", path);
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
}

SnapshotWriter::SnapshotWriter()
{
    ByteWriter w(buf_);
    w.bytes(kMagic, sizeof kMagic);
    w.u32(kSnapshotFormatVersion);
    w.u32(kSnapshotAbiVersion);
    w.u32(crc32(buf_.data(), buf_.size()));
}

std::string &
SnapshotWriter::beginRecord(uint8_t type)
{
    SURF_ASSERT(!in_record_, "beginRecord without endRecord");
    in_record_ = true;
    type_ = type;
    payload_.clear();
    return payload_;
}

void
SnapshotWriter::endRecord()
{
    SURF_ASSERT(in_record_, "endRecord without beginRecord");
    in_record_ = false;
    const size_t start = buf_.size();
    ByteWriter w(buf_);
    w.u8(type_);
    w.u64(payload_.size());
    w.bytes(payload_.data(), payload_.size());
    w.u32(crc32(buf_.data() + start, buf_.size() - start));
}

Status
SnapshotWriter::finish(const std::string &path, const FaultInjector *inject,
                       uint64_t faultSalt)
{
    SURF_ASSERT(!in_record_, "finish with a record still open");
    std::string bytes = buf_;
    if (inject)
        inject->mutateSnapshotBytes(faultSalt, bytes);
    return atomicWriteFile(path, bytes);
}

StatusOr<SnapshotReader>
SnapshotReader::open(std::string bytes)
{
    if (bytes.size() < kHeaderBytes)
        return Status::corruptSnapshot(
            "snapshot header truncated (" + std::to_string(bytes.size()) +
            " bytes)");
    ByteReader r(bytes.data(), kHeaderBytes);
    const char *magic = r.bytes(sizeof kMagic);
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        return Status::corruptSnapshot("snapshot magic mismatch");
    const uint32_t format = r.u32();
    const uint32_t abi = r.u32();
    const uint32_t stored_crc = r.u32();
    const uint32_t actual_crc = crc32(bytes.data(), kHeaderBytes - 4);
    if (stored_crc != actual_crc)
        return Status::corruptSnapshot("snapshot header CRC mismatch");
    if (format != kSnapshotFormatVersion)
        return Status::corruptSnapshot(
            "snapshot format version " + std::to_string(format) +
            " (this build reads " +
            std::to_string(kSnapshotFormatVersion) + ")");
    if (abi != kSnapshotAbiVersion)
        return Status::corruptSnapshot(
            "snapshot ABI version " + std::to_string(abi) +
            " (this build reads " + std::to_string(kSnapshotAbiVersion) +
            ")");
    SnapshotReader out;
    out.bytes_ = std::move(bytes);
    out.pos_ = kHeaderBytes;
    return out;
}

bool
SnapshotReader::next(uint8_t &type, ByteReader &payload)
{
    if (truncated_ || pos_ >= bytes_.size())
        return false;
    // type u8 | len u64 | payload | crc u32 — every length is checked
    // against the real remaining file size before any payload is touched.
    const size_t remain = bytes_.size() - pos_;
    if (remain < 1 + 8 + 4) {
        truncated_ = true; // torn mid-frame
        return false;
    }
    ByteReader frame(bytes_.data() + pos_, remain);
    type = frame.u8();
    const uint64_t len = frame.u64();
    if (len > remain - (1 + 8 + 4)) {
        truncated_ = true; // length field overruns the file
        return false;
    }
    const size_t framed = 1 + 8 + static_cast<size_t>(len);
    const uint32_t actual = crc32(bytes_.data() + pos_, framed);
    ByteReader tail(bytes_.data() + pos_ + framed, 4);
    if (tail.u32() != actual) {
        truncated_ = true; // flipped bit or torn tail
        return false;
    }
    payload = ByteReader(bytes_.data() + pos_ + 1 + 8,
                         static_cast<size_t>(len));
    pos_ += framed + 4;
    ++records_;
    return true;
}

} // namespace surf
