/**
 * @file
 * Resumable scenario runs: after every completed timeline the engine
 * atomically rewrites a checkpoint file holding the run's config
 * signature and the full TimelineStats of every finished timeline. A
 * killed run (crash, deadline, the fault harness's snap.kill site)
 * restarts, loads the checkpoint, replays the completed tally into its
 * aggregate state and continues at the first unfinished timeline —
 * finishing bit-identical to an uninterrupted run at any thread count,
 * because per-timeline seeds are derived independently and per-timeline
 * results are already thread-count invariant.
 *
 * The config signature hashes every field that influences results
 * (strategy, distances, horizons, noise, seeds, decoder and fault plan)
 * and deliberately excludes the result-invariant knobs (thread count,
 * cache budgets, row budgets, persist directory, snap.* fault clauses):
 * a resume may change those freely, while a checkpoint written under a
 * different physics config is ignored as stale.
 */

#ifndef SURF_PERSIST_CHECKPOINT_HH
#define SURF_PERSIST_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_experiment.hh"
#include "util/status.hh"

namespace surf {

/** Resumable state of a partially completed scenario run. */
struct RunCheckpoint
{
    uint64_t configSignature = 0;
    std::vector<TimelineStats> completed; ///< finished timelines, in order
};

/** Hash of the result-relevant ScenarioConfig fields (see file doc). */
uint64_t scenarioConfigSignature(const ScenarioConfig &cfg);

/** Atomically (re)write the checkpoint after a completed timeline. */
Status saveRunCheckpoint(const std::string &path, uint64_t configSignature,
                         const std::vector<TimelineStats> &completed,
                         const FaultInjector *inject = nullptr,
                         uint64_t faultSalt = 0);

/**
 * Load a checkpoint. Missing/corrupt files and header damage come back
 * as a non-OK Status (cold start + recovery counter at the caller). A
 * torn tail yields the valid prefix of completed timelines — exactly
 * the state of an earlier crash, still safe to resume from. The caller
 * compares configSignature against its own config and ignores stale
 * checkpoints.
 */
StatusOr<RunCheckpoint> loadRunCheckpoint(const std::string &path);

} // namespace surf

#endif // SURF_PERSIST_CHECKPOINT_HH
