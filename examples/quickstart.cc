/**
 * @file
 * Quickstart: build a surface code patch, strike it with a defect, let
 * the Surf-Deformer deformation unit remove the defect and restore the
 * code distance, and inspect the instruction trace.
 */

#include <cstdio>

#include "core/deformation_unit.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"

using namespace surf;

int
main()
{
    // A distance-7 rotated surface code patch.
    CodePatch patch = squarePatch(7);
    std::printf("pristine d=7 patch (%zu data + %zu checks):\n%s\n",
                patch.numData(), patch.checks().size(),
                patch.render().c_str());
    std::printf("X distance = %zu, Z distance = %zu\n\n",
                graphDistance(patch, PauliType::X).distance,
                graphDistance(patch, PauliType::Z).distance);

    // A dynamic defect hits an interior data qubit and a syndrome qubit.
    const std::set<Coord> defects{{7, 7}, {6, 6}};
    std::printf("defect strikes data qubit (7,7) and syndrome qubit "
                "(6,6)\n\n");

    // The deformation unit removes the defects and adaptively enlarges.
    DeformConfig cfg;
    cfg.d = 7;
    cfg.deltaD = 4; // layout head-room (Sec. VI)
    DeformationUnit unit(cfg);
    const auto out = unit.apply(defects);

    std::printf("deformed patch:\n%s\n", out.result.patch.render().c_str());
    std::printf("X distance = %zu, Z distance = %zu (restored: %s, "
                "layers grown: %d)\n\n",
                out.result.distX, out.result.distZ,
                out.restored ? "yes" : "no", out.totalGrown());
    std::printf("instruction trace:\n%s", out.trace.str().c_str());

    // When the defect subsides, the code shrinks back.
    const auto calm = unit.apply({});
    std::printf("\nafter the defect subsides: %zu data qubits, "
                "distance %zu\n",
                calm.result.patch.numData(),
                std::min(calm.result.distX, calm.result.distZ));
    return 0;
}
