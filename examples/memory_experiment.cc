/**
 * @file
 * Full QEC pipeline example: run Monte-Carlo memory experiments on a
 * pristine patch, an untreated defective patch, and a Surf-Deformer
 * deformed patch, and compare logical error rates. The results are
 * identical for any decode thread count.
 *
 * Usage: example_memory_experiment [threads] [d] [rounds] [seed]
 * (defaults: threads=hardware, d=5, rounds=d, seed=0x5eed)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/deformation_unit.hh"
#include "decode/memory_experiment.hh"
#include "lattice/rotated.hh"
#include "util/thread_pool.hh"

using namespace surf;

int
main(int argc, char **argv)
{
    const int d = argc > 2 ? std::max(3, std::atoi(argv[2])) : 5;
    const std::set<Coord> defects{{5, 5}, {4, 4}};

    MemoryExperimentConfig cfg;
    cfg.spec.basis = PauliType::Z;
    cfg.spec.rounds = argc > 3 ? std::max(1, std::atoi(argv[3])) : d;
    cfg.noise.p = 2e-3;
    cfg.maxShots = 20000;
    cfg.targetFailures = 1u << 30;
    cfg.threads = argc > 1 ? static_cast<size_t>(std::max(0, std::atoi(argv[1]))) : 0;
    if (argc > 4)
        cfg.seed = static_cast<uint64_t>(std::atoll(argv[4]));

    const size_t threads =
        cfg.threads ? cfg.threads : ThreadPool::hardwareThreads();
    std::printf("memory-Z, %d rounds, p = %.0e, MWPM decoding, %lu "
                "shots per configuration, %zu decode thread%s\n\n",
                cfg.spec.rounds, cfg.noise.p,
                static_cast<unsigned long>(cfg.maxShots), threads,
                threads == 1 ? "" : "s");
    const auto t_start = std::chrono::steady_clock::now();

    // 1. Pristine distance-d code.
    const auto pristine = runMemoryExperiment(squarePatch(d), cfg);
    std::printf("pristine d=%-2d:           p_L/round = %.3e (+/- %.1e)\n",
                d, pristine.pRound, pristine.se);

    // 2. Same code with a defective region left untreated (50%% rates).
    auto bad_cfg = cfg;
    bad_cfg.noise.defectiveSites = defects;
    const auto untreated = runMemoryExperiment(squarePatch(d), bad_cfg);
    std::printf("untreated defects:       p_L/round = %.3e\n",
                untreated.pRound);

    // 3. Surf-Deformer removes the defective qubits.
    DeformConfig dc;
    dc.d = d;
    dc.deltaD = 0;
    dc.enlargement = false;
    const auto deformed = DeformationUnit(dc).apply(defects);
    const auto removed = runMemoryExperiment(deformed.result.patch, cfg);
    std::printf("Surf-Deformer removal:   p_L/round = %.3e "
                "(deformed distance %zu)\n",
                removed.pRound,
                std::min(deformed.result.distX, deformed.result.distZ));

    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t_start)
                                .count();
    std::printf("\nremoval recovers %.0fx of the untreated error rate.\n",
                untreated.pRound / std::max(removed.pRound, 1e-12));
    std::printf("%.0f ms total: %.0f kshots/s through the "
                "sample-decode pipeline.\n",
                total_ms, 3 * cfg.maxShots / total_ms);
    return 0;
}
