/**
 * @file
 * Strategy comparison example on a single defect pattern: what each
 * mitigation strategy (ASC-S, Q3DE, Surf-Deformer) does to the code, its
 * distances and its qubit cost (paper fig. 1 in miniature).
 */

#include <cstdio>

#include "baselines/strategies.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"

using namespace surf;

int
main()
{
    const int d = 9;
    // One cosmic-ray strike near the middle of the patch.
    const auto sites = DefectSampler::regionSites({8, 8}, 3);
    std::printf("distance-%d patch struck by a %zu-site burst around "
                "(8,8)\n\n", d, sites.size());

    for (const Strategy s :
         {Strategy::LatticeSurgery, Strategy::Ascs, Strategy::Q3de,
          Strategy::SurfDeformer}) {
        const auto out = applyStrategy(s, d, 4, sites);
        std::printf("%-16s: distance %zu/%zu, %zu data qubits, "
                    "%zu residual defects, %d layers grown\n",
                    strategyName(s), out.distX, out.distZ,
                    out.patch.numData(), out.residualDefects.size(),
                    out.grownLayers);
    }

    std::printf("\nSurf-Deformer is the only strategy that removes the "
                "defects AND restores the\ncode distance with a bounded "
                "footprint (Q3DE doubles the patch but keeps the\ndefects "
                "inside; ASC-S removes them but cannot recover the lost "
                "distance).\n");
    return 0;
}
