/**
 * @file
 * Compile-time layout planning example (paper Sec. VI): given a program
 * profile and the dynamic-defect model, pick the code distance d for the
 * target retry risk and the extra inter-space Delta_d for the target
 * block probability, and account physical qubits across layout schemes.
 */

#include <cstdio>

#include "endtoend/retry_risk.hh"

using namespace surf;

int
main()
{
    const BenchmarkProgram prog = paperPrograms()[5]; // QFT-100-20
    std::printf("planning layout for %s (%lu CX, %lu T, %d qubits)\n\n",
                prog.name.c_str(), static_cast<unsigned long>(prog.numCx),
                static_cast<unsigned long>(prog.numT), prog.numQubits);

    // A pre-calibrated logical error model (run bench_table2 to
    // re-calibrate from Monte Carlo).
    LogicalErrorModel model;
    model.A = 0.1;
    model.Lambda = 10.0;

    std::printf("%3s | %-12s %-12s %-8s\n", "d", "retry risk", "qubits",
                "Delta_d");
    int chosen = -1;
    for (int d = 15; d <= 33; d += 2) {
        RetryRiskConfig cfg;
        cfg.strategy = Strategy::SurfDeformer;
        cfg.d = d;
        cfg.errorModel = model;
        const auto r = estimateRetryRisk(prog, cfg);
        std::printf("%3d | %-12.3e %-12.3e %-8d\n", d, r.retryRisk,
                    static_cast<double>(r.physicalQubits), r.deltaD);
        if (chosen < 0 && r.retryRisk <= 0.001)
            chosen = d;
    }
    if (chosen > 0)
        std::printf("\nsmallest d with retry risk <= 0.1%%: d = %d\n",
                    chosen);

    std::printf("\nscheme comparison at the chosen distance:\n");
    LayoutGenerator gen{DefectModelParams{}};
    const int d = chosen > 0 ? chosen : 27;
    for (const Strategy s :
         {Strategy::LatticeSurgery, Strategy::Q3deRevised,
          Strategy::SurfDeformer}) {
        const auto plan = gen.plan(prog.numQubits, d, schemeOf(s));
        std::printf("  %-16s: %.3e physical qubits (Delta_d=%d, "
                    "p_block=%.4f)\n",
                    strategyName(s),
                    static_cast<double>(plan.physicalQubits), plan.deltaD,
                    plan.pBlock);
    }
    return 0;
}
