/**
 * @file
 * Timeline example on the scenario engine: sample cosmic-ray burst events
 * over a memory run, let the chosen strategy reshape the patch epoch by
 * epoch (the runtime loop of paper fig. 5), and *measure* the logical
 * error of every epoch with Monte-Carlo frame sampling — not just the
 * structural distances the old window-loop demo printed.
 *
 * Usage: example_cosmic_ray_timeline [d] [rounds] [threads] [seed]
 *                                    [deadline_ns] [persist_dir]
 *                                    [--fab_q_rate=R] [--fab_c_rate=R]
 *                                    [--fab_seed=S]
 * (defaults: d=7, rounds=240, threads=hardware, seed=20240610,
 *  deadline_ns=0 i.e. no per-shot decode budget, persistence off,
 *  fabrication rates 0 i.e. a pristine chip)
 *
 * Passing a deadline_ns arms the staged fallback ladder (sparse-blossom
 * -> memoized rows -> union-find) and prints the degradation ledger at
 * the end; setting SURF_FAULT_PLAN (e.g. "seed=3;stall.p=0.3") injects
 * deterministic decoder stalls to force it. Passing a persist_dir (or
 * setting SURF_PERSIST_DIR) snapshots the deformed-code cache there, so
 * a second invocation warm-starts its decoders from disk. The --fab_*
 * flags break the chip before the run starts: defective qubits/couplers
 * are sampled at the given rates, the strategy adapts the patch around
 * them (bandage super-stabilizers), and every cosmic-ray deformation
 * then stacks on top of the broken-chip baseline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "scenario/scenario_experiment.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

using namespace surf;

int
main(int argc, char **argv)
{
    ScenarioConfig cfg;

    // Pull the --fab_* flags out first; the rest stays positional.
    auto fabFlag = [](const char *arg, const char *name,
                      double &out) -> bool {
        const size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
            return false;
        out = std::atof(arg + n + 1);
        return true;
    };
    int keep = 1;
    double fab_seed = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (fabFlag(argv[i], "--fab_q_rate", cfg.fabDefects.qubitRate) ||
            fabFlag(argv[i], "--fab_c_rate", cfg.fabDefects.couplerRate))
            continue;
        if (fabFlag(argv[i], "--fab_seed", fab_seed)) {
            cfg.fabDefects.seed = static_cast<uint64_t>(fab_seed);
            continue;
        }
        argv[keep++] = argv[i];
    }
    argc = keep;

    cfg.timeline.strategy = Strategy::SurfDeformer;
    cfg.timeline.d = argc > 1 ? std::atoi(argv[1]) : 7;
    cfg.timeline.deltaD = 2;
    cfg.timeline.horizonRounds =
        argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 240;
    cfg.timeline.windowRounds = 20;
    // Scale the cosmic-ray model to a simulable horizon: bursts persist
    // for ~2 windows instead of 25k cycles, and the event rate is cranked
    // so a short demo run sees a few strikes.
    cfg.defectModel.durationSec = 40e-6;
    cfg.defectModel.regionDiameter = 2;
    cfg.eventRateScale = 20000.0;
    cfg.numTimelines = 1;
    cfg.noise.p = 2e-3;
    cfg.maxShotsPerTimeline = 4096;
    cfg.batchShots = 2048;
    cfg.threads = argc > 3
                      ? static_cast<size_t>(std::max(0, std::atoi(argv[3])))
                      : 0;
    cfg.seed = argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4]))
                        : 20240610;
    cfg.decodeDeadlineNs =
        argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 0;
    if (argc > 6)
        cfg.persistDir = argv[6];

    const size_t threads =
        cfg.threads ? cfg.threads : ThreadPool::hardwareThreads();
    std::printf("Surf-Deformer scenario: d=%d memory-Z for %lu rounds, "
                "deformation window %lu rounds, p=%.0e, %lu shots, "
                "%zu decode thread%s\n\n",
                cfg.timeline.d,
                static_cast<unsigned long>(cfg.timeline.horizonRounds),
                static_cast<unsigned long>(cfg.timeline.windowRounds),
                cfg.noise.p,
                static_cast<unsigned long>(cfg.maxShotsPerTimeline), threads,
                threads == 1 ? "" : "s");

    // The checked entry returns a Status for malformed configs or defect
    // streams instead of killing the process, and picks up SURF_FAULT_PLAN
    // from the environment when cfg.faults is empty.
    const StatusOr<ScenarioResult> run = runScenarioExperimentChecked(cfg);
    if (!run.ok()) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     run.status().str().c_str());
        return 1;
    }
    const ScenarioResult &res = *run;
    if (cfg.fabDefects.enabled()) {
        std::printf("fabrication: %lu defective qubit%s + %lu defective "
                    "coupler%s (q rate %g, c rate %g, seed %lu)\n",
                    static_cast<unsigned long>(res.fabDefectiveQubits),
                    res.fabDefectiveQubits == 1 ? "" : "s",
                    static_cast<unsigned long>(res.fabDefectiveCouplers),
                    res.fabDefectiveCouplers == 1 ? "" : "s",
                    cfg.fabDefects.qubitRate, cfg.fabDefects.couplerRate,
                    static_cast<unsigned long>(cfg.fabDefects.seed));
        if (res.fabDefectiveQubits || res.fabDefectiveCouplers) {
            if (res.fabChipAlive)
                std::printf("  adapted chip: %lu data qubit%s disabled, "
                            "%lu super-stabilizer cluster%s, distance "
                            "%zu/%zu\n\n",
                            static_cast<unsigned long>(res.fabDisabledData),
                            res.fabDisabledData == 1 ? "" : "s",
                            static_cast<unsigned long>(res.fabSuperClusters),
                            res.fabSuperClusters == 1 ? "" : "s",
                            res.fabDistX, res.fabDistZ);
            else
                std::printf("  chip is DEAD after adaptation (distance "
                            "collapsed): a yield loss, every shot counts "
                            "as a logical failure\n\n");
        } else {
            std::printf("  chip came out pristine at these rates\n\n");
        }
    }
    for (const auto &tl : res.timelines) {
        std::printf("timeline: %zu burst event%s -> %zu epoch%s\n",
                    tl.events, tl.events == 1 ? "" : "s", tl.epochs.size(),
                    tl.epochs.size() == 1 ? "" : "s");
        for (const auto &ep : tl.epochs)
            std::printf("  rounds %5lu..%-5lu  %2zu defective sites -> "
                        "distance %zu/%zu  p_epoch = %.3e  (%lu/%lu shots)"
                        "%s\n",
                        static_cast<unsigned long>(ep.startRound),
                        static_cast<unsigned long>(ep.startRound + ep.rounds),
                        ep.activeDefects, ep.distX, ep.distZ, ep.pEpoch(),
                        static_cast<unsigned long>(ep.mismatches),
                        static_cast<unsigned long>(ep.shots),
                        ep.activeDefects ? "  <- deformed" : "");
    }

    std::printf("\nend to end: p_shot = %.3e (+/- %.1e), p_round = %.3e "
                "over %lu rounds\n",
                res.pShot, res.se, res.pRound,
                static_cast<unsigned long>(res.horizonRounds));
    std::printf("segment cache: %lu hits / %lu lookups (%.0f%%) across "
                "%lu epochs\n",
                static_cast<unsigned long>(res.cacheHits),
                static_cast<unsigned long>(res.cacheHits + res.cacheMisses),
                100.0 * res.cacheHits /
                    std::max<uint64_t>(1, res.cacheHits + res.cacheMisses),
                static_cast<unsigned long>(res.totalEpochs));
    if (!res.ledger.empty())
        std::printf("\ndegradation ledger:\n%s", res.ledger.summary().c_str());
    if (!cfg.persistDir.empty())
        std::printf("\npersistence: restored %lu segments + %lu rows in "
                    "%.1f ms; snapshot %.1f KiB in %s\n",
                    static_cast<unsigned long>(res.persistRestoredSegments),
                    static_cast<unsigned long>(res.persistRestoredRows),
                    1e3 * res.persistRestoreSeconds,
                    res.persistSnapshotBytes / 1024.0,
                    cfg.persistDir.c_str());
    std::printf("\nThe patch returns to its pristine footprint whenever no "
                "event is active; every recurrence of a deformed shape "
                "reuses the cached decoder.\n");
    return 0;
}
