/**
 * @file
 * Timeline example: sample cosmic-ray burst events over a long memory
 * run and show the deformation unit reacting round window by round
 * window — removing struck qubits, enlarging, and shrinking back as
 * events expire (the runtime loop of paper fig. 5).
 */

#include <cstdio>

#include "core/deformation_unit.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"

using namespace surf;

int
main()
{
    const int d = 9;
    CodePatch patch = squarePatch(d);

    DefectModelParams params;
    // Crank the event rate up so a short demo window sees a few strikes.
    params.eventRatePerQubitSec *= 100.0;
    DefectSampler sampler(params, 20240610);

    const uint64_t horizon = 200000; // QEC cycles simulated
    const auto events = sampler.sampleEvents(patch, horizon);
    std::printf("sampled %zu burst events over %lu cycles "
                "(duration %lu cycles each)\n\n",
                events.size(), static_cast<unsigned long>(horizon),
                static_cast<unsigned long>(params.durationCycles()));

    DeformConfig cfg;
    cfg.d = d;
    cfg.deltaD = 4;
    DeformationUnit unit(cfg);

    const uint64_t window = 20000;
    for (uint64_t t = 0; t < horizon; t += window) {
        const auto active = DefectSampler::activeSites(events, t);
        const auto out = unit.apply(active);
        std::printf("cycle %7lu: %2zu defective sites -> distance %zu/%zu"
                    "%s%s\n",
                    static_cast<unsigned long>(t), active.size(),
                    out.result.distX, out.result.distZ,
                    out.totalGrown() ? ", enlarged" : "",
                    out.restored ? "" : " (NOT fully restored)");
    }

    std::printf("\nThe patch returns to its original %dx%d footprint "
                "whenever no event is active.\n", d, d);
    return 0;
}
