/**
 * @file
 * Shared synthetic burst-syndrome generator: the detectors of a
 * contiguous decoding-graph region around a random center (BFS over the
 * CSR adjacency), modelling the paper's Q3DE-style cosmic-ray events
 * that light up whole clusters of checks. Used by both the
 * burst-throughput bench (the CI weight gate) and the sparse-matching
 * equivalence tests, so the two always exercise the same burst model.
 */

#ifndef SURF_BENCH_BURST_SYNDROMES_HH
#define SURF_BENCH_BURST_SYNDROMES_HH

#include <set>
#include <vector>

#include "decode/graph.hh"
#include "sim/dem.hh"
#include "util/rng.hh"

namespace surf::benchutil {

/** Fired detector ids (global, ascending) of one cluster of about
 *  `target` nodes around a random center. */
inline std::vector<uint32_t>
burstCluster(const DetectorErrorModel &dem, const DecodingGraph &g,
             size_t target, Rng &rng)
{
    const int n = static_cast<int>(g.numNodes());
    std::vector<int> frontier{static_cast<int>(rng.below(n))};
    std::set<int> seen(frontier.begin(), frontier.end());
    const auto &off = g.csrOffsets();
    const auto &to = g.csrTargets();
    while (!frontier.empty() && seen.size() < target) {
        const int v = frontier.back();
        frontier.pop_back();
        for (uint32_t i = off[static_cast<size_t>(v)];
             i < off[static_cast<size_t>(v) + 1]; ++i) {
            const int u = to[i];
            if (u >= n || !seen.insert(u).second)
                continue;
            frontier.push_back(u);
            if (seen.size() >= target)
                break;
        }
    }
    std::vector<uint32_t> fired;
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        const int l = g.localOf(d);
        if (l >= 0 && seen.count(l))
            fired.push_back(d);
    }
    return fired;
}

} // namespace surf::benchutil

#endif // SURF_BENCH_BURST_SYNDROMES_HH
