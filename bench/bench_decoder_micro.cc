/**
 * @file
 * Decoder-backend micro-bench: dense (precomputed all-pairs tables) vs
 * sparse (on-demand truncated Dijkstra) MWPM across distances. Measures
 * the cold path every new deformed-patch shape pays — decoding-graph
 * construction — and steady-state decode throughput, and verifies that
 * both backends predict identically on every sampled shot in the exact
 * regime (defect count <= truncation + 1). Emits BENCH_decoder.json.
 *
 * Flags: --scale=S (shot budget), --dmax=N (default 13), --json=DIR.
 * Exits non-zero if the exact-mode sparse decoder (truncation SIZE_MAX,
 * bit-identity guaranteed) disagrees with dense on any shot, so CI
 * smoke runs double as an equivalence check. The default sparse config
 * (truncated, radius-bounded) is timed as well and its agreement rate
 * reported — it may differ from dense only on equal-weight ties.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "decode/mwpm.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"

using namespace surf;
using namespace surf::benchutil;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const double s = scale(argc, argv);
    const int dmax = static_cast<int>(flagValue(argc, argv, "dmax", 13));
    const size_t shots = std::max<size_t>(
        64, static_cast<size_t>(flagValue(argc, argv, "shots", 1024) * s));
    const int build_reps = 5;
    JsonReport report(argc, argv, "decoder");

    header("MWPM backends: dense APSP tables vs sparse on-demand Dijkstra");
    std::printf("%zu shots per distance, %d build reps, p=2e-3\n\n", shots,
                build_reps);
    std::printf("  d    nodes  build dense  build sparse   speedup"
                "   decode dense   decode sparse\n");

    bool all_agree = true;
    for (int d = 3; d <= dmax; d += 2) {
        MemorySpec spec;
        spec.rounds = d;
        NoiseParams noise;
        noise.p = 2e-3;
        const BuiltCircuit built =
            buildMemoryCircuit(squarePatch(d), spec, noise);
        const auto dem = buildDem(built.circuit, PauliType::Z);

        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < build_reps; ++r) {
            const MwpmDecoder probe(dem, 1, nullptr, MatchingBackend::Dense);
            (void)probe;
        }
        const double dense_build = secondsSince(t0) / build_reps;
        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < build_reps; ++r) {
            const MwpmDecoder probe(dem, 1, nullptr, MatchingBackend::Sparse);
            (void)probe;
        }
        const double sparse_build = secondsSince(t0) / build_reps;

        const MwpmDecoder dense(dem, 1, nullptr, MatchingBackend::Dense);
        const MwpmDecoder sparse(dem, 1, nullptr, MatchingBackend::Sparse);
        MwpmDecoder exact(dem, 1, nullptr, MatchingBackend::Sparse);
        exact.setTruncation(SIZE_MAX);
        FrameSimulator sim(built.circuit, shots, 20240731);
        const SparseSyndromes syndromes = sim.sparseFiredDetectors();
        MwpmScratch scratch;

        std::vector<uint8_t> dense_pred(shots), sparse_pred(shots);
        t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < shots; ++i)
            dense_pred[i] =
                dense.decode(syndromes.data(i), syndromes.count(i), scratch);
        const double dense_decode = secondsSince(t0);
        t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < shots; ++i)
            sparse_pred[i] =
                sparse.decode(syndromes.data(i), syndromes.count(i), scratch);
        const double sparse_decode = secondsSince(t0);

        size_t exact_disagree = 0, default_disagree = 0;
        for (size_t i = 0; i < shots; ++i) {
            exact_disagree +=
                dense_pred[i] != exact.decode(syndromes.data(i),
                                              syndromes.count(i), scratch);
            default_disagree += dense_pred[i] != sparse_pred[i];
        }
        if (exact_disagree)
            all_agree = false;

        const size_t nodes = dense.graph().numNodes();
        std::printf("%3d  %7zu  %8.3f ms  %9.4f ms  %7.1fx  %9.0f sh/s"
                    "  %9.0f sh/s%s\n",
                    d, nodes, 1e3 * dense_build, 1e3 * sparse_build,
                    dense_build / std::max(1e-9, sparse_build),
                    shots / std::max(1e-9, dense_decode),
                    shots / std::max(1e-9, sparse_decode),
                    exact_disagree ? "  DISAGREE (BUG)" : "");

        const std::string suffix = "_d" + std::to_string(d);
        report.metric("build_ms_dense" + suffix, 1e3 * dense_build);
        report.metric("build_ms_sparse" + suffix, 1e3 * sparse_build);
        report.metric("build_speedup" + suffix,
                      dense_build / std::max(1e-9, sparse_build));
        report.metric("decode_shots_per_sec_dense" + suffix,
                      shots / std::max(1e-9, dense_decode));
        report.metric("decode_shots_per_sec_sparse" + suffix,
                      shots / std::max(1e-9, sparse_decode));
        report.metric("exact_disagreements" + suffix,
                      static_cast<double>(exact_disagree));
        report.metric("default_agreement_rate" + suffix,
                      1.0 - static_cast<double>(default_disagree) / shots);
    }
    report.metric("backends_agree", all_agree ? 1.0 : 0.0);
    std::printf("\nbackends agree on every exact-regime shot: %s\n",
                all_agree ? "yes" : "NO (BUG)");
    return all_agree ? 0 : 1;
}
