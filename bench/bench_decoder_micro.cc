/**
 * @file
 * Decoder-backend micro-bench: dense (precomputed all-pairs tables) vs
 * sparse rows (on-demand truncated Dijkstra) vs the matrix-free sparse
 * blossom. Measures the cold path every new deformed-patch shape pays —
 * decoding-graph construction — steady-state decode throughput, and
 * burst-syndrome throughput (shots/sec vs fired-defect count, the
 * Q3DE-style cosmic-ray regime where the matrix-free matcher is the
 * designed winner). Verifies on every sampled shot that the exact-mode
 * sparse rows decoder predicts bit-identically to dense, and that the
 * sparse blossom's matched weight equals the dense blossom's exactly on
 * every burst shot. Emits BENCH_decoder.json.
 *
 * Flags: --scale=S (shot budget), --dmax=N (default 13), --dburst=N
 * (default 11, burst-section distance), --json=DIR.
 * Exits non-zero on any equivalence violation, so CI smoke runs double
 * as the cross-backend gate. The default sparse config (truncated,
 * radius-bounded, burst dispatch) is timed as well and its agreement
 * rate reported — it may differ from dense only on equal-weight ties.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "burst_syndromes.hh"
#include "decode/mwpm.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"
#include "util/rng.hh"

using namespace surf;
using namespace surf::benchutil;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const double s = scale(argc, argv);
    const int dmax = static_cast<int>(flagValue(argc, argv, "dmax", 13));
    const size_t shots = std::max<size_t>(
        64, static_cast<size_t>(flagValue(argc, argv, "shots", 1024) * s));
    const int build_reps = 5;
    JsonReport report(argc, argv, "decoder");

    header("MWPM backends: dense APSP tables vs sparse on-demand Dijkstra");
    std::printf("%zu shots per distance, %d build reps, p=2e-3\n\n", shots,
                build_reps);
    std::printf("  d    nodes  build dense  build sparse   speedup"
                "   decode dense   decode sparse\n");

    bool all_agree = true;
    for (int d = 3; d <= dmax; d += 2) {
        MemorySpec spec;
        spec.rounds = d;
        NoiseParams noise;
        noise.p = 2e-3;
        const BuiltCircuit built =
            buildMemoryCircuit(squarePatch(d), spec, noise);
        const auto dem = buildDem(built.circuit, PauliType::Z);

        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < build_reps; ++r) {
            const MwpmDecoder probe(dem, 1, nullptr, MatchingBackend::Dense);
            (void)probe;
        }
        const double dense_build = secondsSince(t0) / build_reps;
        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < build_reps; ++r) {
            const MwpmDecoder probe(dem, 1, nullptr, MatchingBackend::Sparse);
            (void)probe;
        }
        const double sparse_build = secondsSince(t0) / build_reps;

        const MwpmDecoder dense(dem, 1, nullptr, MatchingBackend::Dense);
        const MwpmDecoder sparse(dem, 1, nullptr, MatchingBackend::Sparse);
        MwpmDecoder exact(dem, 1, nullptr, MatchingBackend::Sparse);
        exact.setTruncation(SIZE_MAX);
        FrameSimulator sim(built.circuit, shots, 20240731);
        const SparseSyndromes syndromes = sim.sparseFiredDetectors();
        MwpmScratch scratch;

        std::vector<uint8_t> dense_pred(shots), sparse_pred(shots);
        t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < shots; ++i)
            dense_pred[i] =
                dense.decode(syndromes.data(i), syndromes.count(i), scratch);
        const double dense_decode = secondsSince(t0);
        t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < shots; ++i)
            sparse_pred[i] =
                sparse.decode(syndromes.data(i), syndromes.count(i), scratch);
        const double sparse_decode = secondsSince(t0);

        size_t exact_disagree = 0, default_disagree = 0;
        for (size_t i = 0; i < shots; ++i) {
            exact_disagree +=
                dense_pred[i] != exact.decode(syndromes.data(i),
                                              syndromes.count(i), scratch);
            default_disagree += dense_pred[i] != sparse_pred[i];
        }
        if (exact_disagree)
            all_agree = false;

        const size_t nodes = dense.graph().numNodes();
        std::printf("%3d  %7zu  %8.3f ms  %9.4f ms  %7.1fx  %9.0f sh/s"
                    "  %9.0f sh/s%s\n",
                    d, nodes, 1e3 * dense_build, 1e3 * sparse_build,
                    dense_build / std::max(1e-9, sparse_build),
                    shots / std::max(1e-9, dense_decode),
                    shots / std::max(1e-9, sparse_decode),
                    exact_disagree ? "  DISAGREE (BUG)" : "");

        const std::string suffix = "_d" + std::to_string(d);
        report.metric("build_ms_dense" + suffix, 1e3 * dense_build);
        report.metric("build_ms_sparse" + suffix, 1e3 * sparse_build);
        report.metric("build_speedup" + suffix,
                      dense_build / std::max(1e-9, sparse_build));
        report.metric("decode_shots_per_sec_dense" + suffix,
                      shots / std::max(1e-9, dense_decode));
        report.metric("decode_shots_per_sec_sparse" + suffix,
                      shots / std::max(1e-9, sparse_decode));
        report.metric("exact_disagreements" + suffix,
                      static_cast<double>(exact_disagree));
        report.metric("default_agreement_rate" + suffix,
                      1.0 - static_cast<double>(default_disagree) / shots);
    }
    // ---- Burst syndromes: decode throughput vs fired-defect count ----
    // The regime Surf-Deformer's dynamic-defect scenarios produce:
    // cosmic-ray events fire large contiguous detector clusters. The
    // dense path pays the k x k matrix + O(k^3) blossom; the rows path
    // additionally builds (memoized) full Dijkstra rows; the matrix-free
    // sparse blossom grows bounded balls and solves a sparse instance.
    const int dburst = static_cast<int>(flagValue(argc, argv, "dburst", 11));
    bool burst_weights_equal = true;
    {
        MemorySpec spec;
        spec.rounds = dburst;
        NoiseParams noise;
        noise.p = 2e-3;
        const BuiltCircuit built =
            buildMemoryCircuit(squarePatch(dburst), spec, noise);
        const auto dem = buildDem(built.circuit, PauliType::Z);
        const MwpmDecoder dense(dem, 1, nullptr, MatchingBackend::Dense);
        MwpmDecoder rows(dem, 1, nullptr, MatchingBackend::Sparse);
        rows.setBlossomThreshold(SIZE_MAX); // pin the rows + matrix path
        const MwpmDecoder blossom(dem, 1, nullptr,
                                  MatchingBackend::SparseBlossom);
        std::printf("\nburst syndromes at d=%d (cluster-fired detectors; "
                    "dense-vs-blossom weight gate on every shot):\n",
                    dburst);
        std::printf("    k    dense sh/s     rows sh/s  blossom sh/s"
                    "   vs dense   vs rows\n");
        Rng rng(0xbadbeef);
        MwpmScratch sd, sr, sb;
        for (const size_t kk : {8u, 16u, 32u, 64u, 128u}) {
            const size_t reps = std::max<size_t>(
                4, static_cast<size_t>(s * 4096 / kk));
            std::vector<std::vector<uint32_t>> bursts;
            bursts.reserve(reps);
            for (size_t r = 0; r < reps; ++r)
                bursts.push_back(
                    burstCluster(dem, dense.graph(), kk, rng));
            auto t0 = std::chrono::steady_clock::now();
            for (const auto &b : bursts)
                (void)dense.decode(b.data(), b.size(), sd);
            const double t_dense = secondsSince(t0);
            t0 = std::chrono::steady_clock::now();
            for (const auto &b : bursts)
                (void)rows.decode(b.data(), b.size(), sr);
            const double t_rows = secondsSince(t0);
            t0 = std::chrono::steady_clock::now();
            for (const auto &b : bursts)
                (void)blossom.decode(b.data(), b.size(), sb);
            const double t_blossom = secondsSince(t0);
            size_t weight_mismatch = 0;
            for (const auto &b : bursts) {
                (void)dense.decode(b.data(), b.size(), sd);
                (void)blossom.decode(b.data(), b.size(), sb);
                weight_mismatch += sd.lastWeight != sb.lastWeight;
            }
            if (weight_mismatch)
                burst_weights_equal = false;
            const double sps_dense = reps / std::max(1e-9, t_dense);
            const double sps_rows = reps / std::max(1e-9, t_rows);
            const double sps_blossom = reps / std::max(1e-9, t_blossom);
            std::printf("  %3zu  %10.0f    %10.0f    %10.0f   %7.2fx  "
                        "%7.2fx%s\n",
                        kk, sps_dense, sps_rows, sps_blossom,
                        sps_blossom / std::max(1e-9, sps_dense),
                        sps_blossom / std::max(1e-9, sps_rows),
                        weight_mismatch ? "  WEIGHT MISMATCH (BUG)" : "");
            const std::string suffix = "_k" + std::to_string(kk);
            report.metric("burst_shots_per_sec_dense" + suffix, sps_dense);
            report.metric("burst_shots_per_sec_rows" + suffix, sps_rows);
            report.metric("burst_shots_per_sec_blossom" + suffix,
                          sps_blossom);
            report.metric("burst_blossom_vs_rows" + suffix,
                          sps_blossom / std::max(1e-9, sps_rows));
            report.metric("burst_weight_mismatches" + suffix,
                          static_cast<double>(weight_mismatch));
        }

        // ---- Row budget: resident row memory with and without a cap.
        // The rows decoder above memoized full-graph rows for every
        // defect the bursts touched; a budgeted decoder replays the
        // same load under an LRU cap.
        MwpmDecoder budgeted(dem, 1, nullptr, MatchingBackend::Sparse);
        budgeted.setBlossomThreshold(SIZE_MAX);
        budgeted.setRowBudget(64);
        {
            Rng rng2(0xbadbeef);
            MwpmScratch sq;
            for (const size_t kk : {8u, 16u, 32u, 64u, 128u}) {
                const size_t reps = std::max<size_t>(
                    4, static_cast<size_t>(s * 4096 / kk));
                for (size_t r = 0; r < reps; ++r) {
                    const auto b =
                        burstCluster(dem, dense.graph(), kk, rng2);
                    (void)budgeted.decode(b.data(), b.size(), sq);
                }
            }
        }
        const double unbudgeted_mib =
            static_cast<double>(rows.memoryBytes()) / (1 << 20);
        const double budgeted_mib =
            static_cast<double>(budgeted.memoryBytes()) / (1 << 20);
        std::printf("\nrow pool after the burst load: unbudgeted %zu rows "
                    "(%.1f MiB), budget=64 -> %zu resident (%.1f MiB, "
                    "%zu built)\n",
                    rows.graph().rowsResident(), unbudgeted_mib,
                    budgeted.graph().rowsResident(), budgeted_mib,
                    budgeted.graph().rowsBuilt());
        report.metric("rows_resident_unbudgeted",
                      static_cast<double>(rows.graph().rowsResident()));
        report.metric("rows_resident_budget64",
                      static_cast<double>(budgeted.graph().rowsResident()));
        report.metric("row_mem_mib_unbudgeted", unbudgeted_mib);
        report.metric("row_mem_mib_budget64", budgeted_mib);
    }

    const bool ok = all_agree && burst_weights_equal;
    report.metric("backends_agree", all_agree ? 1.0 : 0.0);
    report.metric("burst_weights_equal", burst_weights_equal ? 1.0 : 0.0);
    std::printf("\nbackends agree on every exact-regime shot: %s\n",
                all_agree ? "yes" : "NO (BUG)");
    std::printf("sparse blossom weight-equal to dense on every burst "
                "shot: %s\n",
                burst_weights_equal ? "yes" : "NO (BUG)");
    return ok ? 0 : 1;
}
