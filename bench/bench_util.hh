/**
 * @file
 * Small shared helpers for the benchmark harnesses: command-line flag
 * parsing (--key=value) and a global scale knob so `--scale=10` (or the
 * SURF_BENCH_SCALE environment variable) buys more Monte-Carlo precision.
 */

#ifndef SURF_BENCH_BENCH_UTIL_HH
#define SURF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace surf::benchutil {

/** Parse --key=value (double) from argv, else fall back to `fallback`. */
inline double
flagValue(int argc, char **argv, const char *key, double fallback)
{
    const std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::atof(argv[i] + prefix.size());
    return fallback;
}

/** Monte-Carlo budget multiplier: --scale flag or SURF_BENCH_SCALE env. */
inline double
scale(int argc, char **argv)
{
    double s = flagValue(argc, argv, "scale", 0.0);
    if (s > 0.0)
        return s;
    if (const char *env = std::getenv("SURF_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

inline void
header(const char *title)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("==========================================================\n");
}

} // namespace surf::benchutil

#endif // SURF_BENCH_BENCH_UTIL_HH
