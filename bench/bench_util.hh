/**
 * @file
 * Small shared helpers for the benchmark harnesses: command-line flag
 * parsing (--key=value), a global scale knob so `--scale=10` (or the
 * SURF_BENCH_SCALE environment variable) buys more Monte-Carlo precision,
 * and machine-readable JSON result emission (`BENCH_<name>.json`) so the
 * performance trajectory can be tracked across commits.
 */

#ifndef SURF_BENCH_BENCH_UTIL_HH
#define SURF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace surf::benchutil {

/** Parse --key=value (double) from argv, else fall back to `fallback`. */
inline double
flagValue(int argc, char **argv, const char *key, double fallback)
{
    const std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::atof(argv[i] + prefix.size());
    return fallback;
}

/** Monte-Carlo budget multiplier: --scale flag or SURF_BENCH_SCALE env. */
inline double
scale(int argc, char **argv)
{
    double s = flagValue(argc, argv, "scale", 0.0);
    if (s > 0.0)
        return s;
    if (const char *env = std::getenv("SURF_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

inline void
header(const char *title)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("==========================================================\n");
}

/** Parse --key=value (string) from argv, else `fallback` (may be null). */
inline const char *
flagString(int argc, char **argv, const char *key, const char *fallback)
{
    const std::string prefix = std::string("--") + key + "=";
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    return fallback;
}

/**
 * Machine-readable benchmark results. Metrics are recorded as flat
 * (name, value) pairs; on destruction, if JSON output is enabled via
 * `--json=DIR` or the SURF_BENCH_JSON environment variable (a directory,
 * or "1" for the working directory), the file `DIR/BENCH_<bench>.json`
 * is written with the schema
 *
 *   { "schema": 1, "bench": "<bench>",
 *     "metrics": [ {"name": "...", "value": <double>}, ... ] }
 *
 * so CI and future PRs can diff perf numbers without scraping stdout.
 */
class JsonReport
{
  public:
    JsonReport(int argc, char **argv, const char *bench) : bench_(bench)
    {
        const char *dir =
            flagString(argc, argv, "json", std::getenv("SURF_BENCH_JSON"));
        if (dir)
            dir_ = (std::strcmp(dir, "1") == 0) ? "." : dir;
    }

    bool enabled() const { return !dir_.empty(); }

    void
    metric(const std::string &name, double value)
    {
        metrics_.push_back({name, value});
    }

    ~JsonReport()
    {
        if (!enabled())
            return;
        const std::string path = dir_ + "/BENCH_" + bench_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": \"%s\",\n"
                        "  \"metrics\": [\n", bench_.c_str());
        for (size_t i = 0; i < metrics_.size(); ++i)
            std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.17g}%s\n",
                         metrics_[i].first.c_str(), metrics_[i].second,
                         i + 1 < metrics_.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (%zu metrics)\n", path.c_str(),
                    metrics_.size());
    }

  private:
    std::string bench_;
    std::string dir_;
    std::vector<std::pair<std::string, double>> metrics_;
};

} // namespace surf::benchutil

#endif // SURF_BENCH_BENCH_UTIL_HH
