/**
 * @file
 * Regenerates paper Table I: the instruction sets of the surface code
 * implementations, plus measured atomic-operation costs of each
 * Surf-Deformer instruction on a d=7 patch (fig. 6 compositions).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/instructions.hh"
#include "lattice/rotated.hh"

using namespace surf;

int
main()
{
    benchutil::header("Table I: instruction sets of surface code "
                      "implementations");
    std::printf("%-16s| %-44s| %s\n", "Method", "Extended instructions "
                                                "over LS",
                "Supported operations");
    std::printf("%-16s| %-44s| %s\n", "Lattice Surgery", "N/A",
                "logical operations");
    std::printf("%-16s| %-44s| %s\n", "Q3DE", "N/A",
                "logical ops, fixed enlargement");
    std::printf("%-16s| %-44s| %s\n", "ASC-S", "DataQ_RM",
                "logical ops, fixed qubit removal");
    std::printf("%-16s| %-44s| %s\n", "Surf-Deformer",
                "DataQ_RM, SyndromeQ_RM, PatchQ_RM, PatchQ_ADD",
                "logical ops, adaptive removal, adaptive enlargement");

    std::printf("\nMeasured atomic gauge-transformation costs (d=7 patch):\n");
    std::printf("%-24s %6s %6s %6s %6s\n", "instruction", "S2G", "G2S",
                "S2S", "G2G");
    {
        CodePatch p = squarePatch(7);
        DeformTrace t;
        dataQRm(p, {7, 7}, &t);
        const auto r = t.records().back();
        std::printf("%-24s %6d %6d %6d %6d\n", "DataQ_RM (interior)", r.s2g,
                    r.g2s, r.s2s, r.g2g);
    }
    {
        CodePatch p = squarePatch(7);
        DeformTrace t;
        syndromeQRm(p, {6, 6}, &t);
        const auto r = t.records().back();
        std::printf("%-24s %6d %6d %6d %6d\n", "SyndromeQ_RM (interior)",
                    r.s2g, r.g2s, r.s2s, r.g2g);
    }
    {
        CodePatch p = squarePatch(7);
        DeformTrace t;
        pinData(p, {7, 1}, PauliType::X, &t);
        const auto r = t.records().back();
        std::printf("%-24s %6d %6d %6d %6d\n", "PatchQ_RM (boundary)",
                    r.s2g, r.g2s, r.s2s, r.g2g);
    }
    std::printf("\nPatchQ_ADD grows one boundary layer; its cost scales "
                "with the layer length\n(one G2S per introduced check).\n");
    return 0;
}
