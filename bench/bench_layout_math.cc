/**
 * @file
 * Regenerates the layout generator's Sec.-VI worked example and tabulates
 * Delta_d and block probabilities across code distances, plus the
 * inter-space qubit overhead comparison of fig. 10.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/layout_gen.hh"

using namespace surf;

int
main()
{
    benchutil::header("Sec. VI layout math: Delta_d selection and "
                      "inter-space overheads");
    const DefectModelParams model;
    LayoutGenerator gen(model);

    std::printf("worked example (paper): d=27, rho=0.1/26 Hz, T=25 ms, "
                "D=4\n");
    std::printf("  lambda        = %.4f (paper ~0.14)\n",
                model.lambdaForPatch(27));
    std::printf("  Delta_d       = %d  (paper: 4)\n", gen.chooseDeltaD(27));
    std::printf("  p_block       = %.4f (paper ~0.0089 < 0.01)\n\n",
                gen.blockProbability(27, 4));

    std::printf("%4s | %8s %10s\n", "d", "Delta_d", "p_block");
    for (int d = 9; d <= 51; d += 6)
        std::printf("%4d | %8d %10.4f\n", d, gen.chooseDeltaD(d),
                    gen.blockProbability(d, gen.chooseDeltaD(d)));

    std::printf("\nInter-space overhead at N=100 logical qubits:\n");
    std::printf("%-16s %6s %14s %10s\n", "scheme", "space", "phys qubits",
                "vs LS");
    const int d = 27;
    const auto ls = gen.plan(100, d, InterspaceScheme::LatticeSurgery);
    for (auto scheme :
         {InterspaceScheme::LatticeSurgery, InterspaceScheme::Q3de,
          InterspaceScheme::Q3deRevised, InterspaceScheme::SurfDeformer}) {
        const auto p = gen.plan(100, d, scheme);
        const char *name;
        switch (scheme) {
          case InterspaceScheme::LatticeSurgery: name = "LatticeSurgery"; break;
          case InterspaceScheme::Q3de:           name = "Q3DE"; break;
          case InterspaceScheme::Q3deRevised:    name = "Q3DE* (2d)"; break;
          default:                               name = "Surf-Deformer"; break;
        }
        std::printf("%-16s %6d %14.3e %9.2fx\n", name,
                    LayoutGenerator::interspace(d, p.deltaD, scheme),
                    static_cast<double>(p.physicalQubits),
                    static_cast<double>(p.physicalQubits) /
                        static_cast<double>(ls.physicalQubits));
    }
    std::printf("\nExpected (paper fig. 10): Q3DE* costs ~2.25x of LS;\n"
                "Surf-Deformer stays within ~1.2-1.4x.\n");
    return 0;
}
