/**
 * @file
 * Regenerates paper fig. 11(a): logical error rate (per round) versus the
 * number of defective qubits, comparing the untreated surface code
 * (defective qubits stay at saturated error rates; decoder unaware) with
 * Surf-Deformer's defect removal. Defective qubits arrive in cosmic-ray
 * style clusters.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/deformation_unit.hh"
#include "decode/memory_experiment.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"
#include "util/rng.hh"

using namespace surf;

namespace {

/** Sample k defective sites as one-or-more burst clusters. */
std::set<Coord>
clusteredDefects(const CodePatch &patch, int k, Rng &rng)
{
    std::set<Coord> sites;
    while (static_cast<int>(sites.size()) < k) {
        const Coord center{
            patch.xMin() + static_cast<int>(rng.below(static_cast<uint64_t>(
                               patch.xMax() - patch.xMin() + 1))),
            patch.yMin() + static_cast<int>(rng.below(static_cast<uint64_t>(
                               patch.yMax() - patch.yMin() + 1)))};
        for (const Coord &c : DefectSampler::regionSites(center, 2)) {
            if (static_cast<int>(sites.size()) >= k)
                break;
            if (c.x >= patch.xMin() && c.x <= patch.xMax() &&
                c.y >= patch.yMin() && c.y <= patch.yMax())
                sites.insert(c);
        }
    }
    return sites;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    benchutil::header("Fig. 11(a): logical error rate vs #defective qubits "
                      "(surface code untreated vs Surf-Deformer removal)");
    std::printf("circuit noise p = 1e-3, defect rate 0.5, memory-Z, "
                "MWPM decoding\n\n");
    std::printf("%4s %4s | %-24s | %-24s\n", "d", "#def", "untreated p_L/round",
                "Surf-Deformer p_L/round");

    Rng rng(2024);
    for (int d : {9, 13}) {
        const auto shots = static_cast<uint64_t>(
            (d == 9 ? 8000 : 2500) * scale);
        for (int k : {0, 4, 8, 16, 24}) {
            const CodePatch pristine = squarePatch(d);
            const auto defects =
                k ? clusteredDefects(pristine, k, rng) : std::set<Coord>{};

            // Untreated: defective sites saturate, decoder unaware.
            MemoryExperimentConfig cfg;
            cfg.spec.rounds = d;
            cfg.noise.p = 1e-3;
            cfg.noise.defectiveSites = defects;
            cfg.maxShots = shots;
            cfg.targetFailures = static_cast<uint64_t>(60 * scale);
            cfg.seed = 7 + static_cast<uint64_t>(k);
            const auto untreated = runMemoryExperiment(pristine, cfg);

            // Surf-Deformer removal (no enlargement: pure QEC capability
            // of the deformed code, as in the paper's ablation).
            DeformConfig dc;
            dc.d = d;
            dc.deltaD = 0;
            dc.enlargement = false;
            const auto deformed = DeformationUnit(dc).apply(defects);
            std::string sd_text;
            if (!deformed.result.alive) {
                sd_text = "destroyed";
            } else {
                MemoryExperimentConfig cfg2 = cfg;
                cfg2.noise.defectiveSites.clear();
                const auto removed =
                    runMemoryExperiment(deformed.result.patch, cfg2);
                char buf[64];
                std::snprintf(buf, sizeof buf, "%.3e (dist %zu)",
                              removed.pRound,
                              std::min(deformed.result.distX,
                                       deformed.result.distZ));
                sd_text = buf;
            }
            std::printf("%4d %4d | %-24.3e | %-24s\n", d, k,
                        untreated.pRound, sd_text.c_str());
        }
        std::printf("\n");
    }
    std::printf("Expected shape (paper): untreated codes plateau at high\n"
                "error rates once defects appear; removed codes track the\n"
                "rate of a pristine code at the reduced distance.\n");
    return 0;
}
