/**
 * @file
 * Regenerates paper fig. 13(b): yield rate of deforming an l=35 patch
 * with k static faulty qubits into a surface code of distance >= 27,
 * ASC-S versus Surf-Deformer removal.
 */

#include <cstdio>

#include "baselines/strategies.hh"
#include "bench_util.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"

using namespace surf;

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    const int samples = std::max(2, static_cast<int>(4 * scale));
    const int l = 35, target = 27;
    benchutil::header("Fig. 13(b): yield rate for deforming an l=35 patch "
                      "to distance >= 27");
    std::printf("%d fault samples per point\n\n", samples);
    std::printf("%8s | %-10s %-14s\n", "#faulty", "ASC-S", "Surf-Deformer");

    for (int k : {0, 10, 20, 30, 40}) {
        int ok_ascs = 0, ok_sd = 0;
        for (int s = 0; s < samples; ++s) {
            DefectModelParams params;
            DefectSampler sampler(params,
                                  static_cast<uint64_t>(k) * 7919 +
                                      static_cast<uint64_t>(s));
            const CodePatch ref = squarePatch(l);
            const auto faults = sampler.sampleStaticFaults(ref, k);
            const auto a = applyStrategy(Strategy::Ascs, l, 0, faults);
            const auto d = applyStrategy(Strategy::SurfDeformer, l, 0,
                                         faults);
            ok_ascs += (a.alive && a.minDist() >= static_cast<size_t>(target));
            ok_sd += (d.alive && d.minDist() >= static_cast<size_t>(target));
        }
        std::printf("%8d | %-10.2f %-14.2f\n", k,
                    static_cast<double>(ok_ascs) / samples,
                    static_cast<double>(ok_sd) / samples);
    }
    std::printf("\nExpected shape (paper): Surf-Deformer's yield stays high\n"
                "much longer (e.g. ~2x ASC-S at 20 faults).\n");
    return 0;
}
