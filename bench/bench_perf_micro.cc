/**
 * @file
 * Google-benchmark micro-benchmarks of the performance-critical kernels:
 * frame-simulator sampling, DEM extraction, MWPM decoding, deformation,
 * and graph distance computation.
 */

#include <benchmark/benchmark.h>

#include "core/deformation_unit.hh"
#include "decode/mwpm.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"

using namespace surf;

namespace {

BuiltCircuit
standardCircuit(int d)
{
    MemorySpec spec;
    spec.rounds = d;
    NoiseParams noise;
    noise.p = 1e-3;
    return buildMemoryCircuit(squarePatch(d), spec, noise);
}

void
BM_FrameSimulator(benchmark::State &state)
{
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    uint64_t seed = 1;
    for (auto _ : state) {
        FrameSimulator sim(built.circuit, 1024, seed++);
        benchmark::DoNotOptimize(sim.numDetectors());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FrameSimulator)->Arg(3)->Arg(5)->Arg(9);

void
BM_DemExtraction(benchmark::State &state)
{
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto dem = buildDem(built.circuit, PauliType::Z);
        benchmark::DoNotOptimize(dem.numDetectors);
    }
}
BENCHMARK(BM_DemExtraction)->Arg(3)->Arg(5)->Arg(9);

void
BM_MwpmDecode(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    const auto built = standardCircuit(d);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder decoder(dem, 1);
    FrameSimulator sim(built.circuit, 256, 7);
    size_t shot = 0;
    for (auto _ : state) {
        const auto fired = sim.firedDetectors(shot % 256);
        benchmark::DoNotOptimize(decoder.decode(fired));
        ++shot;
    }
}
BENCHMARK(BM_MwpmDecode)->Arg(3)->Arg(5)->Arg(9);

void
BM_DeformationUnit(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    DeformConfig cfg;
    cfg.d = d;
    cfg.deltaD = 4;
    DeformationUnit unit(cfg);
    const std::set<Coord> defects{{d, d}, {d + 1, d + 1}, {d - 2, d}};
    for (auto _ : state) {
        auto out = unit.apply(defects);
        benchmark::DoNotOptimize(out.result.distX);
    }
}
BENCHMARK(BM_DeformationUnit)->Arg(9)->Arg(15)->Arg(21);

void
BM_GraphDistance(benchmark::State &state)
{
    const CodePatch p = squarePatch(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(graphDistance(p, PauliType::Z).distance);
    }
}
BENCHMARK(BM_GraphDistance)->Arg(9)->Arg(21)->Arg(35);

} // namespace

BENCHMARK_MAIN();
