/**
 * @file
 * Google-benchmark micro-benchmarks of the performance-critical kernels:
 * frame-simulator sampling, DEM extraction, MWPM decoding, deformation,
 * and graph distance computation.
 */

#include <benchmark/benchmark.h>

#include "core/deformation_unit.hh"
#include "decode/memory_experiment.hh"
#include "decode/mwpm.hh"
#include "lattice/distance.hh"
#include "lattice/rotated.hh"
#include "sim/dem.hh"
#include "sim/frame.hh"
#include "sim/syndrome_circuit.hh"

using namespace surf;

namespace {

BuiltCircuit
standardCircuit(int d)
{
    MemorySpec spec;
    spec.rounds = d;
    NoiseParams noise;
    noise.p = 1e-3;
    return buildMemoryCircuit(squarePatch(d), spec, noise);
}

void
BM_FrameSimulator(benchmark::State &state)
{
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    uint64_t seed = 1;
    for (auto _ : state) {
        FrameSimulator sim(built.circuit, 1024, seed++);
        benchmark::DoNotOptimize(sim.numDetectors());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FrameSimulator)->Arg(3)->Arg(5)->Arg(9);

void
BM_FrameSimulatorReuse(benchmark::State &state)
{
    // Same sampling work as BM_FrameSimulator, but reusing one simulator's
    // frame/record/detector buffers via reset() + run() instead of
    // reconstructing: measures the allocation overhead removed per batch.
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    FrameSimulator sim(built.circuit, 1024, 0);
    uint64_t seed = 1;
    for (auto _ : state) {
        sim.reset(seed++);
        sim.run();
        benchmark::DoNotOptimize(sim.numDetectors());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FrameSimulatorReuse)->Arg(3)->Arg(5)->Arg(9);

void
BM_SyndromeExtractDense(benchmark::State &state)
{
    // Seed extraction path: one O(numDetectors) bit-scan per shot.
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    FrameSimulator sim(built.circuit, 1024, 7);
    for (auto _ : state) {
        size_t fired = 0;
        for (size_t s = 0; s < sim.shots(); ++s)
            fired += sim.firedDetectors(s).size();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SyndromeExtractDense)->Arg(3)->Arg(5)->Arg(9);

void
BM_SyndromeExtractSparse(benchmark::State &state)
{
    // Batched transpose: word-scan over detector planes, zero words
    // skipped, CSR buffers reused across batches.
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    FrameSimulator sim(built.circuit, 1024, 7);
    SparseSyndromes syndromes;
    for (auto _ : state) {
        sim.sparseFiredDetectors(syndromes);
        benchmark::DoNotOptimize(syndromes.flat.size());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SyndromeExtractSparse)->Arg(3)->Arg(5)->Arg(9);

void
BM_DemExtraction(benchmark::State &state)
{
    const auto built = standardCircuit(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto dem = buildDem(built.circuit, PauliType::Z);
        benchmark::DoNotOptimize(dem.numDetectors);
    }
}
BENCHMARK(BM_DemExtraction)->Arg(3)->Arg(5)->Arg(9);

void
BM_MwpmDecode(benchmark::State &state)
{
    // Decode throughput per backend: args are (distance, backend).
    const int d = static_cast<int>(state.range(0));
    const auto backend = state.range(1) ? MatchingBackend::Sparse
                                        : MatchingBackend::Dense;
    const auto built = standardCircuit(d);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    const MwpmDecoder decoder(dem, 1, nullptr, backend);
    FrameSimulator sim(built.circuit, 256, 7);
    const SparseSyndromes syndromes = sim.sparseFiredDetectors();
    MwpmScratch scratch;
    size_t shot = 0;
    for (auto _ : state) {
        const size_t s = shot % 256;
        benchmark::DoNotOptimize(decoder.decode(
            syndromes.data(s), syndromes.count(s), scratch));
        ++shot;
    }
}
BENCHMARK(BM_MwpmDecode)
    ->Args({3, 0})
    ->Args({5, 0})
    ->Args({9, 0})
    ->Args({3, 1})
    ->Args({5, 1})
    ->Args({9, 1});

void
BM_DecodingGraphBuild(benchmark::State &state)
{
    // Cold-path decoder-graph construction per backend: args are
    // (distance, backend). This is the cost every new deformed-patch
    // shape pays before its first decoded shot; Sparse keeps only the
    // CSR adjacency while Dense builds the all-pairs tables.
    const int d = static_cast<int>(state.range(0));
    const auto backend = state.range(1) ? MatchingBackend::Sparse
                                        : MatchingBackend::Dense;
    const auto built = standardCircuit(d);
    const auto dem = buildDem(built.circuit, PauliType::Z);
    for (auto _ : state) {
        const MwpmDecoder decoder(dem, 1, nullptr, backend);
        benchmark::DoNotOptimize(decoder.graph().numNodes());
    }
}
BENCHMARK(BM_DecodingGraphBuild)
    ->Args({3, 0})
    ->Args({5, 0})
    ->Args({9, 0})
    ->Args({13, 0})
    ->Args({3, 1})
    ->Args({5, 1})
    ->Args({9, 1})
    ->Args({13, 1});

void
BM_PipelineDecode(benchmark::State &state)
{
    // End-to-end sampling + decoding pipeline throughput (the engine
    // behind fig. 11 and Table II): args are (distance, threads).
    const int d = static_cast<int>(state.range(0));
    MemoryExperimentConfig cfg;
    cfg.spec.rounds = d;
    cfg.noise.p = 1e-3;
    cfg.maxShots = 4096;
    cfg.batchShots = 1024;
    cfg.targetFailures = 1u << 30;
    cfg.threads = static_cast<size_t>(state.range(1));
    const CodePatch patch = squarePatch(d);
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.seed = seed++;
        const auto res = runMemoryExperiment(patch, cfg);
        benchmark::DoNotOptimize(res.failures);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(cfg.maxShots));
}
BENCHMARK(BM_PipelineDecode)
    ->Args({3, 1})
    ->Args({5, 1})
    ->Args({9, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->Args({9, 2})
    ->Args({9, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_DeformationUnit(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    DeformConfig cfg;
    cfg.d = d;
    cfg.deltaD = 4;
    DeformationUnit unit(cfg);
    const std::set<Coord> defects{{d, d}, {d + 1, d + 1}, {d - 2, d}};
    for (auto _ : state) {
        auto out = unit.apply(defects);
        benchmark::DoNotOptimize(out.result.distX);
    }
}
BENCHMARK(BM_DeformationUnit)->Arg(9)->Arg(15)->Arg(21);

void
BM_GraphDistance(benchmark::State &state)
{
    const CodePatch p = squarePatch(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(graphDistance(p, PauliType::Z).distance);
    }
}
BENCHMARK(BM_GraphDistance)->Arg(9)->Arg(21)->Arg(35);

} // namespace

BENCHMARK_MAIN();
