/**
 * @file
 * Regenerates paper Table II: end-to-end physical-qubit counts and retry
 * risks for the eight benchmark programs under Q3DE, ASC-S and
 * Surf-Deformer at the two paper code distances. The logical-error model
 * is calibrated from this repository's own Monte-Carlo pipeline and
 * extrapolated with the standard exponential suppression law.
 */

#include <cstdio>

#include "bench_util.hh"
#include "endtoend/retry_risk.hh"

using namespace surf;

namespace {

void
printCell(const RetryRiskResult &r)
{
    if (r.overRuntime) {
        std::printf(" %10.2e %-12s", static_cast<double>(r.physicalQubits),
                    "OverRuntime");
        return;
    }
    char risk[32];
    if (r.retryRisk >= 0.9995)
        std::snprintf(risk, sizeof risk, "~100%%");
    else
        std::snprintf(risk, sizeof risk, "%.3g%%", 100.0 * r.retryRisk);
    std::printf(" %10.2e %-12s", static_cast<double>(r.physicalQubits),
                risk);
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    benchutil::JsonReport report(argc, argv, "table2_end_to_end");
    benchutil::header("Table II: end-to-end results (Q3DE / ASC-S / "
                      "Surf-Deformer)");
    std::printf("calibrating logical error model at p = 1e-3 ...\n");
    const auto model = LogicalErrorModel::calibrate(
        1e-3, static_cast<uint64_t>(80000 * scale), 4242, scale >= 4.0);
    std::printf("  p_L(d) = %.3g * %.3g^-(d+1)/2 per round\n\n", model.A,
                model.Lambda);
    report.metric("calibration_A", model.A);
    report.metric("calibration_Lambda", model.Lambda);

    std::printf("%-16s %3s |%-24s|%-24s|%-24s\n", "Benchmark", "d",
                "   Q3DE qubits/risk", "   ASC-S qubits/risk",
                "   Surf-Deformer");
    for (const auto &prog : paperPrograms()) {
        for (const int d : {prog.dLow, prog.dHigh}) {
            std::printf("%-16s %3d |", prog.name.c_str(), d);
            for (const Strategy s :
                 {Strategy::Q3de, Strategy::Ascs, Strategy::SurfDeformer}) {
                RetryRiskConfig cfg;
                cfg.strategy = s;
                cfg.d = d;
                cfg.errorModel = model;
                const auto r = estimateRetryRisk(prog, cfg);
                printCell(r);
                std::printf("|");
                const char *sname = s == Strategy::Q3de    ? "q3de"
                                    : s == Strategy::Ascs ? "ascs"
                                                          : "surfdef";
                const std::string prefix =
                    prog.name + "_d" + std::to_string(d) + "_" + sname;
                report.metric(prefix + "_qubits",
                              static_cast<double>(r.physicalQubits));
                report.metric(prefix + "_risk",
                              r.overRuntime ? 1.0 : r.retryRisk);
            }
            std::printf("\n");
        }
    }
    std::printf("\nExpected shape (paper): Q3DE rows are OverRuntime or\n"
                "~100%% risk; Surf-Deformer reduces the ASC-S retry risk by\n"
                "roughly 35-70x at matched d with ~20%% more qubits.\n");
    return 0;
}
