/**
 * @file
 * Regenerates paper fig. 14(a): robustness to elevated correlated
 * two-qubit gate errors. Logical error rate of a distance-9 code with k
 * defective qubits, untreated versus Surf-Deformer-removed, for
 * correlated 2q rates in {1e-3, 2e-3, 4e-3}.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/deformation_unit.hh"
#include "decode/memory_experiment.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"
#include "util/rng.hh"

using namespace surf;

namespace {

std::set<Coord>
clusteredDefects(const CodePatch &p, int k, Rng &rng)
{
    std::set<Coord> sites;
    while (static_cast<int>(sites.size()) < k) {
        const Coord center{
            p.xMin() + static_cast<int>(rng.below(static_cast<uint64_t>(
                           p.xMax() - p.xMin() + 1))),
            p.yMin() + static_cast<int>(rng.below(static_cast<uint64_t>(
                           p.yMax() - p.yMin() + 1)))};
        for (const Coord &c : DefectSampler::regionSites(center, 2)) {
            if (static_cast<int>(sites.size()) >= k)
                break;
            if (c.x >= p.xMin() && c.x <= p.xMax() && c.y >= p.yMin() &&
                c.y <= p.yMax())
                sites.insert(c);
        }
    }
    return sites;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    const int d = 9;
    benchutil::header("Fig. 14(a): robustness to correlated 2q errors "
                      "(d=9)");
    std::printf("%-10s %4s | %-16s %-16s\n", "p_corr", "#def",
                "untreated", "Surf-Deformer");

    Rng rng(31337);
    for (double pc : {1e-3, 2e-3, 4e-3}) {
        for (int k : {4, 12, 20}) {
            const CodePatch pristine = squarePatch(d);
            const auto defects = clusteredDefects(pristine, k, rng);

            MemoryExperimentConfig cfg;
            cfg.spec.rounds = d;
            cfg.noise.p = 1e-3;
            cfg.noise.pCorrelated2q = pc;
            cfg.noise.defectiveSites = defects;
            cfg.maxShots = static_cast<uint64_t>(5000 * scale);
            cfg.targetFailures = static_cast<uint64_t>(60 * scale);
            cfg.seed = 11 + k;
            const auto untreated = runMemoryExperiment(pristine, cfg);

            DeformConfig dc;
            dc.d = d;
            dc.deltaD = 0;
            dc.enlargement = false;
            const auto deformed = DeformationUnit(dc).apply(defects);
            double sd_rate = 0.5;
            if (deformed.result.alive) {
                MemoryExperimentConfig cfg2 = cfg;
                cfg2.noise.defectiveSites.clear();
                sd_rate = runMemoryExperiment(deformed.result.patch, cfg2)
                              .pRound;
            }
            std::printf("%-10.1e %4d | %-16.3e %-16.3e\n", pc, k,
                        untreated.pRound, sd_rate);
        }
    }
    std::printf("\nExpected shape (paper): the removed code maintains a\n"
                "~10x improvement as the correlated rate grows.\n");
    return 0;
}
