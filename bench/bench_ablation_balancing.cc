/**
 * @file
 * Ablation: the value of the two Surf-Deformer design choices that
 * distinguish it from ASC-S at the removal level (paper figs. 7-8):
 * SyndromeQ_RM vs DataQ_RM-based syndrome treatment, and the balanced
 * boundary fix choice vs minimal-disable, measured as retained distance.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/deformation_unit.hh"
#include "defects/defect_sampler.hh"
#include "lattice/rotated.hh"
#include "util/rng.hh"

using namespace surf;

namespace {

double
meanDistance(int d, bool balanced, bool syndrome_via_data, int samples,
             bool boundary_only)
{
    double total = 0;
    for (int s = 0; s < samples; ++s) {
        Rng rng(static_cast<uint64_t>(s) * 31 + (balanced ? 7 : 0) +
                (syndrome_via_data ? 3 : 0) + static_cast<uint64_t>(d));
        const CodePatch ref = squarePatch(d);
        std::set<Coord> defects;
        while (defects.size() < 3) {
            int x, y;
            if (boundary_only) {
                x = ref.xMin() + 2 * static_cast<int>(rng.below(
                                         static_cast<uint64_t>(d)));
                y = (rng.bernoulli(0.5)) ? ref.yMin() : ref.yMax();
            } else {
                x = ref.xMin() + static_cast<int>(rng.below(
                                     static_cast<uint64_t>(2 * d - 1)));
                y = ref.yMin() + static_cast<int>(rng.below(
                                     static_cast<uint64_t>(2 * d - 1)));
            }
            const Coord c{x, y};
            if (c.isDataSite() || c.isCheckSite())
                defects.insert(c);
        }
        DeformConfig cfg;
        cfg.d = d;
        cfg.deltaD = 0;
        cfg.enlargement = false;
        cfg.policy = balanced ? RemovalPolicy::Balanced
                              : RemovalPolicy::MinimalDisable;
        cfg.syndromeViaDataRemoval = syndrome_via_data;
        const auto out = DeformationUnit(cfg).apply(defects);
        total += out.result.alive
                     ? static_cast<double>(
                           std::min(out.result.distX, out.result.distZ))
                     : 0.0;
    }
    return total / samples;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    const int samples = std::max(4, static_cast<int>(16 * scale));
    benchutil::header("Ablation: Surf-Deformer removal design choices");
    std::printf("mean retained min-distance over %d samples of 3 "
                "defects\n\n", samples);
    std::printf("%4s %-10s | %-18s %-18s %-18s\n", "d", "defects",
                "full SD removal", "no balancing", "ASC-S removal");

    for (int d : {9, 15}) {
        for (int boundary_only : {0, 1}) {
            const double full = meanDistance(d, true, false, samples,
                                             boundary_only);
            const double no_bal = meanDistance(d, false, false, samples,
                                               boundary_only);
            const double ascs = meanDistance(d, false, true, samples,
                                             boundary_only);
            std::printf("%4d %-10s | %-18.2f %-18.2f %-18.2f\n", d,
                        boundary_only ? "boundary" : "anywhere", full,
                        no_bal, ascs);
        }
    }
    std::printf("\nExpected: each design choice (SyndromeQ_RM, balancing)\n"
                "contributes retained distance; full SD removal dominates.\n");
    return 0;
}
