/**
 * @file
 * Regenerates paper fig. 11(c): throughput of quantum task sets on the
 * Surf-Deformer layout versus the Q3DE layout versus the no-defect
 * lattice-surgery optimum, as the dynamic defect rate grows. 100 logical
 * qubits; three task sets of five 25-CNOT tasks on 50 distinct qubits.
 */

#include <cstdio>

#include "bench_util.hh"
#include "surgery/throughput.hh"

using namespace surf;

int
main(int argc, char **argv)
{
    const double scale = benchutil::scale(argc, argv);
    const int reps = std::max(1, static_cast<int>(8 * scale));
    benchutil::JsonReport report(argc, argv, "fig11c_throughput");
    benchutil::header("Fig. 11(c): task-set throughput vs defect rate");
    std::printf("100 logical qubits; 5 tasks x 25 CNOTs on 50 qubits; "
                "%d defect samples per point\n\n", reps);
    std::printf("%-10s %-8s | %-10s %-10s %-10s\n", "rate", "taskset",
                "LS(no-def)", "Q3DE", "Surf-Def");

    for (double rate : {0.0, 0.5e-4, 1.0e-4, 1.5e-4, 2.0e-4}) {
        for (int set = 0; set < 3; ++set) {
            const auto tasks =
                makeTaskSet(100, 5, 25, 50,
                            1000 + static_cast<uint64_t>(set));
            double thr[3] = {0, 0, 0};
            for (int r = 0; r < reps; ++r) {
                ThroughputConfig cfg;
                cfg.defectRatePerQubitStep = rate;
                cfg.seed = 77 + static_cast<uint64_t>(r) * 13 +
                           static_cast<uint64_t>(set);
                cfg.strategy = Strategy::LatticeSurgery;
                cfg.defectRatePerQubitStep = 0.0; // optimum baseline
                thr[0] += simulateThroughput(tasks, cfg).throughput;
                cfg.defectRatePerQubitStep = rate;
                cfg.strategy = Strategy::Q3de;
                thr[1] += simulateThroughput(tasks, cfg).throughput;
                cfg.strategy = Strategy::SurfDeformer;
                thr[2] += simulateThroughput(tasks, cfg).throughput;
            }
            std::printf("%-10.1e task%-4d | %-10.3f %-10.3f %-10.3f\n",
                        rate, set + 1, thr[0] / reps, thr[1] / reps,
                        thr[2] / reps);
            char prefix[64];
            std::snprintf(prefix, sizeof prefix, "rate%.1e_task%d_",
                          rate, set + 1);
            report.metric(std::string(prefix) + "ls", thr[0] / reps);
            report.metric(std::string(prefix) + "q3de", thr[1] / reps);
            report.metric(std::string(prefix) + "surfdef", thr[2] / reps);
        }
    }
    std::printf("\nExpected shape (paper): Q3DE throughput collapses with\n"
                "the defect rate (blocked ancilla channels); Surf-Deformer\n"
                "stays near the no-defect optimum.\n");
    return 0;
}
